package mcchecker

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// TestReportsByteIdenticalAcrossWorkers is the contract behind the
// pipeline-parallel front end: for every bundled bug case, analyzing the
// same trace set at any worker count — and analyzing it again after a
// WriteDir → ReadDir round trip through the concurrent decoder — must
// produce byte-identical text and JSON reports.
func TestReportsByteIdenticalAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, bc := range apps.BugCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			ranks := bc.Ranks
			if ranks > 8 {
				ranks = 8
			}
			sink := trace.NewMemorySink()
			var rel profiler.Relevance
			if bc.RelevantBuffers != nil {
				rel = profiler.FromNames(bc.RelevantBuffers)
			}
			pr := profiler.New(sink, rel)
			if err := mpi.Run(ranks, mpi.Options{Hook: pr}, bc.Buggy); err != nil {
				t.Fatal(err)
			}
			set := sink.Set()

			analyze := func(s *trace.Set, workers int) (string, []byte) {
				opts := core.DefaultOptions()
				opts.Workers = workers
				rep, err := core.AnalyzeWith(s, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				js, err := rep.JSON()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return rep.String(), js
			}

			baseText, baseJSON := analyze(set, workerCounts[0])
			if baseText == "" {
				t.Fatal("empty report text")
			}
			for _, w := range workerCounts[1:] {
				text, js := analyze(set, w)
				if text != baseText {
					t.Errorf("workers=%d: report text diverged\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						w, baseText, w, text)
				}
				if !bytes.Equal(js, baseJSON) {
					t.Errorf("workers=%d: report JSON diverged", w)
				}
			}

			// File round trip: the concurrent per-rank decode must hand the
			// analyzer the identical set.
			dir := t.TempDir()
			if err := trace.WriteDir(dir, set); err != nil {
				t.Fatal(err)
			}
			loaded, err := trace.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			text, js := analyze(loaded, runtime.GOMAXPROCS(0))
			if text != baseText {
				t.Errorf("after ReadDir: report text diverged\n--- in-memory ---\n%s\n--- decoded ---\n%s",
					baseText, text)
			}
			if !bytes.Equal(js, baseJSON) {
				t.Error("after ReadDir: report JSON diverged")
			}
		})
	}
}

// simulate runs a per-rank body under the profiler and returns the trace
// set, exactly like the offline front end would capture it.
func simulate(ranks int, rel profiler.Relevance, body func(p *mpi.Proc) error) (*trace.Set, error) {
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, rel)
	if err := mpi.Run(ranks, mpi.Options{Hook: pr}, body); err != nil {
		return nil, err
	}
	return sink.Set(), nil
}

// genCase builds one injected generator program for a pattern, retrying
// a few seeds because not every seed offers sites for every pattern.
func genCase(pattern string, seed uint64) (*gen.Program, error) {
	var lastErr error
	for attempt := 0; attempt < 16; attempt++ {
		s := seed + uint64(attempt)*31
		base := gen.Generate(s, gen.Options{Ranks: 2 + int(s%3)})
		pr, err := gen.Inject(base, pattern, s^0x9e3779b9)
		if err == nil {
			return pr, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// checkEngineAgreement asserts that the pairwise and shadow engines
// render byte-identical reports on the set at the given worker count and
// that the differential engine (which re-derives both and compares
// violation identities internally) accepts the trace.
func checkEngineAgreement(t *testing.T, set *trace.Set, workers int) {
	t.Helper()
	run := func(engine core.Engine) (string, []byte) {
		opts := core.DefaultOptions()
		opts.Workers = workers
		opts.Engine = engine
		rep, err := core.AnalyzeWith(set, opts)
		if err != nil {
			t.Fatalf("workers=%d engine=%s: %v", workers, engine, err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatalf("workers=%d engine=%s: %v", workers, engine, err)
		}
		return rep.String(), js
	}
	pText, pJSON := run(core.EnginePairwise)
	sText, sJSON := run(core.EngineShadow)
	if sText != pText {
		t.Errorf("workers=%d: shadow report diverged from pairwise\n--- pairwise ---\n%s\n--- shadow ---\n%s",
			workers, pText, sText)
	}
	if !bytes.Equal(sJSON, pJSON) {
		t.Errorf("workers=%d: shadow JSON diverged from pairwise", workers)
	}
	opts := core.DefaultOptions()
	opts.Workers = workers
	opts.Engine = core.EngineDifferential
	if _, err := core.AnalyzeWith(set, opts); err != nil {
		t.Errorf("workers=%d: differential engine: %v", workers, err)
	}
}

// TestShadowPairwiseDifferentialSweep is the cross-engine contract: over
// every bundled bug case and one injected generator program per bug
// pattern, the shadow engine must render byte-identical reports to the
// pairwise reference at every worker count, and the differential engine
// must find no disagreement.
func TestShadowPairwiseDifferentialSweep(t *testing.T) {
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}

	type sweepCase struct {
		name  string
		ranks int
		rel   profiler.Relevance
		body  func(p *mpi.Proc) error
	}
	var cases []sweepCase
	for _, bc := range apps.BugCases() {
		ranks := bc.Ranks
		if ranks > 8 {
			ranks = 8
		}
		var rel profiler.Relevance
		if bc.RelevantBuffers != nil {
			rel = profiler.FromNames(bc.RelevantBuffers)
		}
		cases = append(cases, sweepCase{"app/" + bc.Name, ranks, rel, bc.Buggy})
	}
	for pi, p := range gen.Patterns() {
		pr, err := genCase(p.Name, uint64(400+17*pi))
		if err != nil {
			t.Fatalf("gen/%s: %v", p.Name, err)
		}
		cases = append(cases, sweepCase{"gen/" + p.Name, pr.Ranks, nil, pr.Body()})
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			set, err := simulate(c.ranks, c.rel, c.body)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				checkEngineAgreement(t, set, w)
			}
		})
	}
}

// FuzzShadowDifferential drives the differential engine over generated
// RMA programs: any seed/pattern combination on which the shadow engine
// disagrees with the pairwise reference is a crasher.
func FuzzShadowDifferential(f *testing.F) {
	for pi := range gen.Patterns() {
		f.Add(uint64(500+17*pi), uint8(pi))
		f.Add(uint64(42+13*pi), uint8(pi))
	}
	patterns := gen.Patterns()
	f.Fuzz(func(t *testing.T, seed uint64, pi uint8) {
		p := patterns[int(pi)%len(patterns)]
		base := gen.Generate(seed, gen.Options{Ranks: 2 + int(seed%3)})
		pr, err := gen.Inject(base, p.Name, seed^0x9e3779b9)
		if err != nil {
			// Not every seed offers sites for every pattern; exercise the
			// clean base program instead of discarding the input.
			pr = base
		}
		set, err := simulate(pr.Ranks, nil, pr.Body())
		if err != nil {
			t.Skip(fmt.Sprintf("simulate: %v", err))
		}
		checkEngineAgreement(t, set, 1)
		checkEngineAgreement(t, set, runtime.GOMAXPROCS(0))
	})
}
