package mcchecker

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// TestReportsByteIdenticalAcrossWorkers is the contract behind the
// pipeline-parallel front end: for every bundled bug case, analyzing the
// same trace set at any worker count — and analyzing it again after a
// WriteDir → ReadDir round trip through the concurrent decoder — must
// produce byte-identical text and JSON reports.
func TestReportsByteIdenticalAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, bc := range apps.BugCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			ranks := bc.Ranks
			if ranks > 8 {
				ranks = 8
			}
			sink := trace.NewMemorySink()
			var rel profiler.Relevance
			if bc.RelevantBuffers != nil {
				rel = profiler.FromNames(bc.RelevantBuffers)
			}
			pr := profiler.New(sink, rel)
			if err := mpi.Run(ranks, mpi.Options{Hook: pr}, bc.Buggy); err != nil {
				t.Fatal(err)
			}
			set := sink.Set()

			analyze := func(s *trace.Set, workers int) (string, []byte) {
				opts := core.DefaultOptions()
				opts.Workers = workers
				rep, err := core.AnalyzeWith(s, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				js, err := rep.JSON()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return rep.String(), js
			}

			baseText, baseJSON := analyze(set, workerCounts[0])
			if baseText == "" {
				t.Fatal("empty report text")
			}
			for _, w := range workerCounts[1:] {
				text, js := analyze(set, w)
				if text != baseText {
					t.Errorf("workers=%d: report text diverged\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						w, baseText, w, text)
				}
				if !bytes.Equal(js, baseJSON) {
					t.Errorf("workers=%d: report JSON diverged", w)
				}
			}

			// File round trip: the concurrent per-rank decode must hand the
			// analyzer the identical set.
			dir := t.TempDir()
			if err := trace.WriteDir(dir, set); err != nil {
				t.Fatal(err)
			}
			loaded, err := trace.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			text, js := analyze(loaded, runtime.GOMAXPROCS(0))
			if text != baseText {
				t.Errorf("after ReadDir: report text diverged\n--- in-memory ---\n%s\n--- decoded ---\n%s",
					baseText, text)
			}
			if !bytes.Equal(js, baseJSON) {
				t.Error("after ReadDir: report JSON diverged")
			}
		})
	}
}
