# MC-Checker reproduction — common targets.

GO ?= go

.PHONY: all build test check staticcheck race cover bench bench-smoke microbench fuzz fuzz-gen fuzz-shadow soak explore experiments table2 fig8 fig9 trace-smoke serve-smoke serve-bench corpus corpus-smoke fix-smoke shadow-smoke clean

all: build test check

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full gate: vet, the test suite under the race detector, the determinism
# soak, the static-checker golden report, the auto-repair gate, and the
# shadow/pairwise differential gate.
check: soak staticcheck fix-smoke shadow-smoke
	$(GO) vet ./...
	$(GO) test -race ./...

# Shadow-engine differential gate: the shadow cross-process engine must
# render byte-identical reports to the pairwise reference over every
# bundled bug case and every injection pattern (at 1 and GOMAXPROCS
# workers), and the differential engine must pass on the benchmark's
# multi-origin worst-case region (exercised via the experiments suite).
shadow-smoke:
	$(GO) test -race -run 'TestShadowPairwiseDifferentialSweep' .
	$(GO) test -race -run 'TestBenchShadowAgreement' ./internal/experiments

# Fuzz the shadow engine against the pairwise oracle on generated RMA
# programs: any disagreement between the two engines is a crasher.
fuzz-shadow:
	$(GO) test -fuzz FuzzShadowDifferential -fuzztime 30s .

# Static epoch-state checker over the bundled apps (buggy variants),
# compared against the checked-in golden report; exits 1 on drift.
# Regenerate with: make staticcheck GOLDEN_FLAGS=-update-golden
staticcheck:
	$(GO) run ./cmd/stanalyzer -check -define buggy=true \
		-golden internal/apps/testdata/static_golden.txt $(GOLDEN_FLAGS) internal/apps

# Determinism soak: repeat example apps under seed-varied perturbations
# (scheduler yields, legal RMA completion reordering) and fail if any
# iteration's report diverges from the first.
soak:
	$(GO) run ./cmd/mcchecker run -app emulate -fixed -soak 9
	$(GO) run ./cmd/mcchecker run -app ping-pong -fixed -soak 8
	$(GO) run ./cmd/mcchecker run -app jacobi -fixed -soak 8

race:
	$(GO) test -race ./...

# Schedule-space exploration demo: find the planted interleaving-dependent
# bug, dedup 1000 schedules to one violation, print a minimized reproducer
# (the leading `-` tolerates the exit-3 findings convention), then measure
# sweep throughput across worker counts.
explore:
	-$(GO) run ./cmd/mcchecker explore -app schedrace -schedules 1000
	$(GO) run ./cmd/mcbench -exp explore

cover:
	$(GO) test -cover ./internal/...

# Benchmark-regression harness: measures the pipeline's hot paths
# (pooled decode, cached signatures, worker-parallel analysis, linear vs
# quadratic detection) and writes the baseline to BENCH.json.
bench:
	$(GO) run ./cmd/mcbench -exp bench -json BENCH.json

# One-iteration pass of the same harness plus the go-test benchmarks:
# proves every timing loop still runs, cheap enough for CI.
bench-smoke:
	$(GO) run ./cmd/mcbench -exp bench -json BENCH.json -benchtime 1x -amplify 2
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Causal-timeline smoke: run a bug case, analyze its traces recording a
# Chrome trace JSON timeline (with witness tracks), and validate the
# file's shape with mcviz. The leading `-` on run/analyze tolerates the
# exit-3 findings convention; the validation itself must pass strictly.
TRACE_TMP ?= /tmp/mcchecker-trace-smoke
trace-smoke:
	rm -rf $(TRACE_TMP) && mkdir -p $(TRACE_TMP)
	-$(GO) run ./cmd/mcchecker run -app emulate -trace $(TRACE_TMP)/traces
	-$(GO) run ./cmd/mcchecker analyze -trace $(TRACE_TMP)/analyze.json $(TRACE_TMP)/traces
	-$(GO) run ./cmd/mcchecker run -app ping-pong -trace $(TRACE_TMP)/run.json
	$(GO) run ./cmd/mcbench -exp bench -benchtime 1x -amplify 2 \
		-json $(TRACE_TMP)/BENCH.json -trace $(TRACE_TMP)/bench.json
	$(GO) run ./cmd/mcviz -check-trace $(TRACE_TMP)/analyze.json
	$(GO) run ./cmd/mcviz -check-trace $(TRACE_TMP)/run.json
	$(GO) run ./cmd/mcviz -check-trace $(TRACE_TMP)/bench.json

# Daemon smoke: start `mcchecker serve`, submit one clean and one
# truncated job over real HTTP, assert healthy/degraded results, then
# SIGTERM and assert a clean drain with exit 0.
serve-smoke:
	sh scripts/serve_smoke.sh

# Daemon load experiment: saturate the serve queue from concurrent
# clients (a fraction with damaged payloads) and record p50/p99 latency,
# shed rate, and throughput into the serve section of BENCH.json.
serve-bench:
	$(GO) run ./cmd/mcbench -exp serve -json BENCH.json

# The go-test micro benchmarks alone (full timing).
microbench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz FuzzReadTrace -fuzztime 30s ./internal/trace

# Fuzz the seeded RMA program generator: any seed must yield a program
# that simulates without deadlock and round-trips the trace codec.
fuzz-gen:
	$(GO) test -fuzz FuzzGenerate -fuzztime 30s ./internal/gen

# Differential engine scoring at full scale: dynamic, static, and
# explore engines over every registry bug case plus generated programs
# (3 per injection pattern) and a 200-program clean-generation gate.
# Writes the markdown detection matrix and the BENCH.json corpus section.
corpus:
	$(GO) run ./cmd/mcchecker corpus -matrix corpus_matrix.md
	$(GO) run ./cmd/mcbench -exp corpus -json BENCH.json

# CI-sized pass of the same gate under the race detector: one generated
# program per injection pattern, a small clean batch, fixed seeds, and
# the matrix artifact written to /tmp.
corpus-smoke:
	$(GO) test -race -run 'TestCorpus' ./internal/experiments ./cmd/mcchecker
	$(GO) run ./cmd/mcchecker corpus -programs 9 -clean 20 -schedules 6 \
		-matrix /tmp/mcchecker-corpus-matrix.md

# Auto-repair gate: `mcchecker fix` must patch every planted-bug corpus
# variant into a program whose dynamic and explore verdicts match its
# checked-in fixed variant. Exits non-zero if any repair fails to
# verify; the unified patch diffs land in FIX_TMP for inspection (CI
# uploads them as an artifact).
FIX_TMP ?= /tmp/mcchecker-fix-patches
fix-smoke:
	rm -rf $(FIX_TMP) && mkdir -p $(FIX_TMP)
	$(GO) run ./cmd/mcchecker fix -diff-dir $(FIX_TMP)

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/mcbench -exp all

table2:
	$(GO) run ./cmd/mcbench -exp table2 -paper-scale

fig8:
	$(GO) run ./cmd/mcbench -exp fig8 -ranks 64 -scale 1.0 -repeats 3

fig9:
	$(GO) run ./cmd/mcbench -exp fig9 -lu-n 192 -repeats 2

clean:
	$(GO) clean ./...
