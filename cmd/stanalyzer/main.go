// Command stanalyzer runs ST-Analyzer (paper §IV-A) over the Go source of
// an MPI one-sided application and prints the relevant-variable report —
// the variables whose loads and stores the Profiler must instrument, plus
// the runtime buffer names to pass to the checker.
//
// Usage:
//
//	stanalyzer [-names-only] DIR
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stanalyzer"
)

func main() {
	namesOnly := flag.Bool("names-only", false, "print only the runtime buffer names, one per line")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: stanalyzer [-names-only] DIR")
		os.Exit(2)
	}
	rep, err := stanalyzer.AnalyzeDir(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "stanalyzer:", err)
		os.Exit(1)
	}
	if *namesOnly {
		for _, n := range rep.BufferNames() {
			fmt.Println(n)
		}
		return
	}
	fmt.Print(rep)
}
