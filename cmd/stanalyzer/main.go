// Command stanalyzer runs ST-Analyzer (paper §IV-A) over the Go source of
// an MPI one-sided application.
//
// The default mode prints the relevant-variable report — the variables
// whose loads and stores the Profiler must instrument, plus the runtime
// buffer names to pass to the checker. With -check it instead runs the
// static epoch-state checker: a flow-sensitive pass that tracks epoch
// state per window and reports memory consistency error patterns
// (get-origin-use, put-origin-store, epoch-target-conflict,
// exposure-access, cross-local-conflict, cross-target-conflict) with
// confidence grades and fix hints, without running the program.
//
// Usage:
//
//	stanalyzer [-names-only] DIR
//	stanalyzer -check [-define name=bool] [-min-confidence L] [-json]
//	           [-golden FILE] [-update-golden] [-stats] DIR
//	stanalyzer -list-kinds
//
// -define fixes boolean identifiers for branch pruning (repeatable;
// "buggy=true" walks only the planted variants of the bundled apps).
// -golden compares the text report against a checked-in file and exits 1
// on drift; -update-golden rewrites it. -list-kinds takes no DIR: it
// prints every diagnostic kind with its error class, fix hint, and the
// `mcchecker fix` repair templates that mechanize the hint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/stanalyzer"
)

// defineFlag collects repeated -define name=bool flags.
type defineFlag map[string]bool

func (d defineFlag) String() string { return fmt.Sprint(map[string]bool(d)) }

func (d defineFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=bool, got %q", s)
	}
	b, err := strconv.ParseBool(val)
	if err != nil {
		return fmt.Errorf("bad bool in %q: %v", s, err)
	}
	d[name] = b
	return nil
}

func main() {
	namesOnly := flag.Bool("names-only", false, "print only the runtime buffer names, one per line")
	check := flag.Bool("check", false, "run the static epoch-state checker instead of the relevance report")
	jsonOut := flag.Bool("json", false, "with -check: print the diagnostics as JSON")
	minConf := flag.String("min-confidence", "low", "with -check: report only diagnostics at or above this confidence (low, medium, high)")
	golden := flag.String("golden", "", "with -check: compare the text report against this golden file, exit 1 on drift")
	updateGolden := flag.Bool("update-golden", false, "with -check -golden: rewrite the golden file instead of comparing")
	stats := flag.Bool("stats", false, "with -check: print the mcchecker_static_* counters")
	listKinds := flag.Bool("list-kinds", false, "print every diagnostic kind with its class, fix hint, and repair templates, then exit")
	defines := defineFlag{}
	flag.Var(defines, "define", "with -check: fix a boolean identifier for branch pruning, e.g. -define buggy=true (repeatable)")
	flag.Parse()
	if *listKinds {
		printKinds(os.Stdout)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: stanalyzer [-names-only] DIR\n       stanalyzer -check [-define name=bool] [-min-confidence L] [-json] [-golden FILE] [-update-golden] [-stats] DIR\n       stanalyzer -list-kinds")
		os.Exit(2)
	}
	if *check {
		if err := runCheck(flag.Arg(0), defines, *minConf, *jsonOut, *golden, *updateGolden, *stats); err != nil {
			fmt.Fprintln(os.Stderr, "stanalyzer:", err)
			os.Exit(1)
		}
		return
	}
	rep, err := stanalyzer.AnalyzeDir(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "stanalyzer:", err)
		os.Exit(1)
	}
	if *namesOnly {
		for _, n := range rep.BufferNames() {
			fmt.Println(n)
		}
		return
	}
	fmt.Print(rep)
}

// printKinds renders the canonical kind inventory: one block per
// diagnostic kind with its error class, the free-text fix hint, and the
// structured repair templates `mcchecker fix` can apply mechanically.
func printKinds(w io.Writer) {
	fmt.Fprintln(w, "diagnostic kinds (confidence-graded; repair templates applied by `mcchecker fix`):")
	for _, k := range stanalyzer.Kinds() {
		names := make([]string, 0, 4)
		for _, t := range k.RepairTemplates() {
			names = append(names, string(t))
		}
		fmt.Fprintf(w, "\n%s  [%s]\n", k, k.Class())
		fmt.Fprintf(w, "  fix:       %s\n", k.Fix())
		fmt.Fprintf(w, "  templates: %s\n", strings.Join(names, ", "))
	}
}

func runCheck(dir string, defines map[string]bool, minConf string, jsonOut bool, golden string, updateGolden, stats bool) error {
	min, err := stanalyzer.ParseConfidence(minConf)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if stats {
		reg = obs.NewRegistry()
	}
	rep, err := stanalyzer.CheckDir(dir, stanalyzer.Options{Defines: defines, Obs: reg})
	if err != nil {
		return err
	}
	diags := rep.Filter(min)
	text := fmt.Sprintf("static checker: %d diagnostic(s) in %d function(s), %d file(s)\n%s",
		len(diags), rep.FuncsChecked, rep.FilesParsed, stanalyzer.RenderDiags(diags))

	switch {
	case golden != "" && updateGolden:
		if err := os.WriteFile(golden, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d diagnostics)\n", golden, len(diags))
	case golden != "":
		want, err := os.ReadFile(golden)
		if err != nil {
			return err
		}
		if string(want) != text {
			fmt.Print(text)
			return fmt.Errorf("diagnostics drifted from golden report %s (run with -update-golden to accept)", golden)
		}
		fmt.Printf("diagnostics match golden report %s (%d diagnostics)\n", golden, len(diags))
	case jsonOut:
		data, err := stanalyzer.MarshalDiags(diags)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	default:
		fmt.Print(text)
	}
	if reg != nil {
		fmt.Println("--- static checker stats ---")
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
