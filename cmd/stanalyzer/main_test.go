package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/stanalyzer"
)

// kindConstants parses internal/stanalyzer/diag.go and returns the
// string values of every constant declared with type Kind — the source
// of truth `-list-kinds` must track.
func kindConstants(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "../../internal/stanalyzer/diag.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing diag.go: %v", err)
	}
	var kinds []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if id, ok := vs.Type.(*ast.Ident); !ok || id.Name != "Kind" {
				continue
			}
			for _, v := range vs.Values {
				lit, ok := v.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				kinds = append(kinds, strings.Trim(lit.Value, `"`))
			}
		}
	}
	return kinds
}

// TestListKindsTracksDiagGo is the doc-drift gate: a Kind constant added
// to diag.go without appearing in Kinds() — and so in the -list-kinds
// output — fails here, as does a kind without a fix hint or repair
// templates.
func TestListKindsTracksDiagGo(t *testing.T) {
	declared := kindConstants(t)
	if len(declared) != 6 {
		t.Fatalf("diag.go declares %d Kind constants, want 6: %v", len(declared), declared)
	}
	listed := map[string]bool{}
	for _, k := range stanalyzer.Kinds() {
		listed[string(k)] = true
	}
	for _, name := range declared {
		if !listed[name] {
			t.Errorf("Kind constant %q in diag.go is missing from stanalyzer.Kinds()", name)
		}
	}
	if len(listed) != len(declared) {
		t.Errorf("Kinds() returns %d kinds, diag.go declares %d", len(listed), len(declared))
	}

	var sb strings.Builder
	printKinds(&sb)
	out := sb.String()
	for _, k := range stanalyzer.Kinds() {
		if !strings.Contains(out, string(k)) {
			t.Errorf("-list-kinds output lacks kind %q", k)
		}
		if k.Fix() == "" {
			t.Errorf("kind %q has no fix hint", k)
		}
		templates := k.RepairTemplates()
		if len(templates) == 0 {
			t.Errorf("kind %q has no repair templates", k)
		}
		for _, tmpl := range templates {
			if !strings.Contains(out, string(tmpl)) {
				t.Errorf("-list-kinds output lacks template %q of kind %q", tmpl, k)
			}
		}
	}
}
