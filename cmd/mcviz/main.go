// Command mcviz renders the data-access DAG of a trace directory as
// Graphviz DOT — the visualization of the paper's Figure 4: vertices are
// runtime events grouped per rank, intra-rank program order and matched
// synchronization form the edges, and concurrent regions appear as
// horizontal bands.
//
// Usage:
//
//	mcviz -trace DIR [-max-events N] > dag.dot
//	dot -Tsvg dag.dot > dag.svg
//
//	mcviz -check-trace timeline.json
//	    Validate a Chrome trace JSON timeline written by
//	    `mcchecker ... -trace` or `mcbench -trace` and print a summary
//	    (event, track, and lane counts). Exits nonzero on malformed input.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dag"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/obs/tracing"
	"repro/internal/trace"
)

func main() {
	traceDir := flag.String("trace", "", "trace directory")
	maxEvents := flag.Int("max-events", 400, "refuse to render more events than this")
	checkTrace := flag.String("check-trace", "", "validate a Chrome trace JSON timeline file and print a summary")
	flag.Parse()
	if *checkTrace != "" {
		if err := checkTimeline(*checkTrace); err != nil {
			fmt.Fprintln(os.Stderr, "mcviz:", err)
			os.Exit(1)
		}
		return
	}
	if *traceDir == "" {
		fmt.Fprintln(os.Stderr, "usage: mcviz -trace DIR [-max-events N] > dag.dot\n       mcviz -check-trace timeline.json")
		os.Exit(2)
	}
	if err := run(*traceDir, *maxEvents); err != nil {
		fmt.Fprintln(os.Stderr, "mcviz:", err)
		os.Exit(1)
	}
}

// checkTimeline validates a recorded timeline and prints its shape.
func checkTimeline(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sum, err := tracing.ValidateChromeTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid Chrome trace JSON: %d event(s), %d track(s), %d lane(s), %d metadata record(s)\n",
		path, sum.Events, sum.Tracks, sum.Lanes, sum.Metadata)
	return nil
}

func run(dir string, maxEvents int) error {
	set, err := trace.ReadDir(dir)
	if err != nil {
		return err
	}
	if set.TotalEvents() > maxEvents {
		return fmt.Errorf("trace has %d events; raise -max-events to render anyway", set.TotalEvents())
	}
	m, err := model.Build(set)
	if err != nil {
		return err
	}
	ms, err := match.Run(m)
	if err != nil {
		return err
	}
	d, err := dag.Build(m, ms)
	if err != nil {
		return err
	}
	return writeDOT(os.Stdout, set, ms, d)
}

func nodeID(id trace.ID) string { return fmt.Sprintf("r%d_%d", id.Rank, id.Seq) }

func esc(s string) string { return strings.ReplaceAll(s, `"`, `\"`) }

func writeDOT(w *os.File, set *trace.Set, ms *match.Matches, d *dag.DAG) error {
	fmt.Fprintln(w, "digraph mcchecker {")
	fmt.Fprintln(w, `  rankdir=TB; node [shape=box, fontsize=9, fontname="monospace"];`)

	// One column (cluster) per rank, program order as invisible backbone.
	for _, t := range set.Traces {
		fmt.Fprintf(w, "  subgraph cluster_rank%d {\n    label=\"P%d\";\n", t.Rank, t.Rank)
		for i := range t.Events {
			ev := &t.Events[i]
			label := fmt.Sprintf("%s\\n%s", ev.Kind, esc(ev.Loc()))
			style := ""
			if ev.Kind.IsRMAComm() {
				style = `, style=filled, fillcolor="#ffe0b0"`
			} else if ev.Kind.IsLocalAccess() {
				style = `, style=filled, fillcolor="#d0e8ff"`
			} else if ev.Kind.IsSync() {
				style = `, style=filled, fillcolor="#e0ffe0"`
			}
			fmt.Fprintf(w, "    %s [label=\"%s\"%s];\n", nodeID(ev.ID()), label, style)
		}
		for i := 1; i < len(t.Events); i++ {
			fmt.Fprintf(w, "    %s -> %s [weight=10, color=gray];\n",
				nodeID(t.Events[i-1].ID()), nodeID(t.Events[i].ID()))
		}
		fmt.Fprintln(w, "  }")
	}

	// Cross-process edges.
	edge := func(a, b trace.ID, color, label string) {
		fmt.Fprintf(w, "  %s -> %s [color=%s, constraint=false, label=\"%s\", fontsize=8];\n",
			nodeID(a), nodeID(b), color, label)
	}
	for _, p := range ms.P2P {
		edge(p.From, p.To, "blue", "msg")
	}
	for _, p := range ms.PostStart {
		edge(p.From, p.To, "purple", "post")
	}
	for _, p := range ms.CompleteWait {
		edge(p.From, p.To, "purple", "complete")
	}
	for i := range ms.Groups {
		g := &ms.Groups[i]
		switch g.Direction {
		case match.DirFromRoot:
			for _, id := range g.Events {
				if id != g.Root {
					edge(g.Root, id, "darkgreen", "root")
				}
			}
		case match.DirToRoot:
			for _, id := range g.Events {
				if id != g.Root {
					edge(id, g.Root, "darkgreen", "root")
				}
			}
		default:
			// Barrier-like: draw a ring through the members.
			for j := range g.Events {
				k := (j + 1) % len(g.Events)
				fmt.Fprintf(w, "  %s -> %s [color=darkgreen, dir=both, constraint=false, style=dashed];\n",
					nodeID(g.Events[j]), nodeID(g.Events[k]))
			}
		}
	}

	// Region annotations.
	fmt.Fprintf(w, "  label=\"%d concurrent regions\"; labelloc=t;\n", len(d.Regions()))
	fmt.Fprintln(w, "}")
	return nil
}
