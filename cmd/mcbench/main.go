// Command mcbench regenerates the tables and figures of the paper's
// evaluation (§VI–§VII) on the simulated substrate.
//
// Usage:
//
//	mcbench -exp table1                      # compatibility matrix
//	mcbench -exp table2 [-paper-scale]       # bug detection results
//	mcbench -exp fig8   [-ranks N] [-scale S] [-repeats R]
//	mcbench -exp fig9   [-lu-n N] [-repeats R]   # also prints fig10 data
//	mcbench -exp fig10  [-lu-n N] [-repeats R]
//	mcbench -exp phases [-ranks N] [-scale S]    # analysis phase breakdown
//	mcbench -exp ablation                    # linear vs quadratic detector
//	mcbench -exp synccheck                   # SyncChecker comparison
//	mcbench -exp explore [-schedules N]      # schedule-exploration throughput
//	mcbench -exp bench [-json BENCH.json] [-benchtime T] [-amplify M] [-trace timeline.json]
//	mcbench -exp serve [-json BENCH.json] [-clients N] [-serve-jobs N] [-serve-queue N] [-fault-frac F]
//	mcbench -exp corpus [-json BENCH.json] [-corpus-programs N] [-corpus-clean N] [-seed N]
//
// Global flags: -cpuprofile FILE and -memprofile FILE write pprof
// profiles of the whole invocation.
//	mcbench -exp all
//
// Absolute times are machine-local; the reproduction targets are the
// paper's shapes: which configuration wins, by roughly what factor, and in
// which direction overhead moves with scale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"repro/internal/experiments"
	"repro/internal/obs/tracing"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|fig8|fig9|fig10|phases|ablation|synccheck|explore|bench|serve|corpus|all")
	ranks := flag.Int("ranks", 64, "rank count for fig8 (paper: 64)")
	scale := flag.Float64("scale", 1.0, "workload scale factor for fig8")
	repeats := flag.Int("repeats", 3, "timing repetitions (minimum kept)")
	luN := flag.Int("lu-n", 192, "LU matrix order for fig9/fig10 (paper: 1500)")
	paperScale := flag.Bool("paper-scale", false, "table2: use the paper's full process counts (lockopts at 64)")
	schedules := flag.Int("schedules", 2000, "schedule count for the explore experiment")
	benchJSON := flag.String("json", "BENCH.json", "bench: output path for the regression baseline")
	benchTime := flag.String("benchtime", "", "bench: -test.benchtime forwarded to the timing loops (e.g. 1x, 100ms)")
	amplify := flag.Int("amplify", 8, "bench: bug-case body repetition factor")
	tracePath := flag.String("trace", "", "bench: record the instrumented phase pass as Chrome trace JSON")
	clients := flag.Int("clients", 8, "serve: concurrent load-generator clients")
	serveJobs := flag.Int("serve-jobs", 120, "serve: total jobs to push through the daemon")
	serveQueue := flag.Int("serve-queue", 0, "serve: daemon queue budget (0 = 2x workers)")
	faultFrac := flag.Float64("fault-frac", 0.25, "serve: fraction of submissions with damaged uploads")
	corpusPrograms := flag.Int("corpus-programs", 0, "corpus: generated programs with injected bugs (0 = 3 per pattern)")
	corpusClean := flag.Int("corpus-clean", 0, "corpus: clean generated programs (0 = 200)")
	corpusSeed := flag.Uint64("seed", 1, "corpus: base seed for program generation")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	stopCPU := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	finish := func() {
		stopCPU()
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err == nil {
				runtime.GC()
				err = pprof.WriteHeapProfile(f)
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mcbench: memprofile: %v\n", err)
				os.Exit(1)
			}
		}
	}
	defer finish()

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench %s: %v\n", name, err)
			finish()
			os.Exit(1)
		}
	}

	run("table1", table1)
	run("table2", func() error { return table2(*paperScale) })
	run("fig8", func() error { return fig8(*ranks, *scale, *repeats) })
	run("fig9", func() error { return fig9and10(*luN, *repeats, true, *exp == "all") })
	run("fig10", func() error {
		if *exp == "all" {
			return nil // fig9 already printed it
		}
		return fig9and10(*luN, *repeats, false, true)
	})
	run("phases", func() error { return phases(*ranks, *scale) })
	run("weak", func() error { return weakScaling(*repeats) })
	run("ablation", ablation)
	run("synccheck", synccheck)
	run("explore", func() error { return exploreThroughput(*schedules) })
	if *exp == "bench" { // excluded from "all": it re-times what the others already print
		run("bench", func() error { return bench(*benchJSON, *benchTime, *amplify, *tracePath) })
	}
	if *exp == "serve" { // excluded from "all": saturating the daemon takes a while
		run("serve", func() error {
			return serveLoad(*benchJSON, *clients, *serveJobs, *serveQueue, *faultFrac)
		})
	}
	if *exp == "corpus" { // excluded from "all": the 200-program clean gate takes a while
		run("corpus", func() error {
			return corpusScore(*benchJSON, *corpusPrograms, *corpusClean, *corpusSeed)
		})
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func table1() error {
	header("Table I: compatibility matrix of RMA operations")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, row := range experiments.Table1() {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	return w.Flush()
}

func table2(paperScale bool) error {
	header("Table II: detecting memory consistency bugs")
	rows, err := experiments.Table2(paperScale)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tRanks\tOrigin\tError location\tRoot cause\tDetected\tFixed clean\tDiagnosis")
	detected := 0
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%v\t%v\t%s\n",
			r.App, r.Ranks, r.Origin, r.ErrorLocation, r.RootCause, r.Detected, r.FixedClean, r.Diagnosis)
		if r.Detected {
			detected++
		}
	}
	w.Flush()
	fmt.Printf("detected %d/%d bugs (paper: 5/5)\n", detected, len(rows))

	ext, err := experiments.Table2Extensions()
	if err != nil {
		return err
	}
	header("Table II extensions (beyond the paper: PSCW, MPI-3)")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tRanks\tOrigin\tError location\tDetected\tFixed clean\tDiagnosis")
	for _, r := range ext {
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%v\t%v\t%s\n",
			r.App, r.Ranks, r.Origin, r.ErrorLocation, r.Detected, r.FixedClean, r.Diagnosis)
	}
	return w.Flush()
}

func fig8(ranks int, scale float64, repeats int) error {
	header(fmt.Sprintf("Figure 8: profiling overhead, %d ranks (paper: +24.6%%..+71.1%%, avg +45.2%%)", ranks))
	rows, err := experiments.Fig8(ranks, scale, repeats)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tNative\tProfiled\tOverhead\tFull-instr\tFull overhead\tload/store events\tMPI events")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%+.1f%%\t%v\t%+.1f%%\t%d\t%d\n",
			r.App, r.Native.Round(100_000), r.Profiled.Round(100_000), r.OverheadPct,
			r.Full.Round(100_000), r.FullOverheadPct, r.Stats.LoadStore, r.Stats.MPIEvents())
		sum += r.OverheadPct
	}
	w.Flush()
	fmt.Printf("average selective overhead: %+.1f%% (paper: +45.2%%)\n", sum/float64(len(rows)))
	return nil
}

func fig9and10(luN, repeats int, printFig9, printFig10 bool) error {
	ranksList := []int{8, 16, 32, 64, 128}
	rows, err := experiments.Fig9(luN, ranksList, repeats)
	if err != nil {
		return err
	}
	if printFig9 {
		header(fmt.Sprintf("Figure 9: LU (N=%d) profiling overhead vs ranks (paper: 147.2%%→37.1%%, decreasing)", luN))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "Ranks\tNative\tProfiled\tOverhead")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%v\t%v\t%+.1f%%\n", r.Ranks, r.Native.Round(100_000), r.Profiled.Round(100_000), r.OverheadPct)
		}
		w.Flush()
	}
	if printFig10 {
		header("Figure 10: per-rank event rates vs ranks (paper: load/store rate decreasing)")
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "Ranks\tload/store events/rank\tMPI events/rank\tload/store rate (ev/s/rank)\tMPI rate (ev/s/rank)")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%d\t%d\t%.0f\t%.0f\n",
				r.Ranks, r.LoadStoreEvents/int64(r.Ranks), r.MPIEvents/int64(r.Ranks), r.LoadStoreRate, r.MPIRate)
		}
		w.Flush()
	}
	return nil
}

func phases(ranks int, scale float64) error {
	header(fmt.Sprintf("Analysis phase breakdown, %d ranks (observability spans)", ranks))
	rows, err := experiments.PhaseBreakdown(ranks, scale)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tEvents\tModel\tMatch\tDAG\tEpochs\tIntra\tCross\tAnalysis\tEvents/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\t%v\t%v\t%v\t%.0f\n",
			r.App, r.Events,
			r.Model.Round(10_000), r.Match.Round(10_000), r.DAG.Round(10_000),
			r.Epochs.Round(10_000), r.DetectIntra.Round(10_000), r.DetectCross.Round(10_000),
			r.Analysis.Round(10_000), r.EventsPerSec)
	}
	return w.Flush()
}

func weakScaling(repeats int) error {
	header("Weak scaling (paper §VII-B prediction: constant overhead as ranks grow)")
	rows, err := experiments.WeakScaling(192, 30, []int{4, 8, 16, 32, 64}, repeats)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Ranks\tNative\tProfiled\tOverhead\tload/store events/rank")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\t%+.1f%%\t%d\n",
			r.Ranks, r.Native.Round(100_000), r.Profiled.Round(100_000),
			r.OverheadPct, r.LoadStoreEvents/int64(r.Ranks))
	}
	return w.Flush()
}

func ablation() error {
	header("Ablation §IV-C-4: linear vs quadratic cross-process detection")
	rows, err := experiments.Ablation([]int{256, 512, 1024, 2048, 4096})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Ops in region\tLinear\tQuadratic\tSpeedup\tAgree\tViolations")
	for _, r := range rows {
		speed := float64(r.Quadratic) / float64(r.Linear)
		fmt.Fprintf(w, "%d\t%v\t%v\t%.1fx\t%v\t%d\n",
			r.Ops, r.Linear.Round(10_000), r.Quadratic.Round(10_000), speed, r.Agreement, r.Violations)
	}
	return w.Flush()
}

func exploreThroughput(schedules int) error {
	header(fmt.Sprintf("Schedule exploration throughput: schedrace, sweep strategy, %d schedules", schedules))
	jobsList := []int{1, 2, runtime.GOMAXPROCS(0)}
	if jobsList[2] <= jobsList[1] {
		jobsList = jobsList[:2]
	}
	rows, err := experiments.ExploreThroughput(schedules, jobsList)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Jobs\tSchedules\tElapsed\tSchedules/s\tSpeedup\tDistinct violations")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%.0f\t%.2fx\t%d\n",
			r.Jobs, r.Schedules, r.Elapsed.Round(100_000), r.SchedulesPerSec, r.Speedup, r.Distinct)
	}
	w.Flush()
	fmt.Println("the distinct-violation column must not vary with jobs; speedup should grow toward GOMAXPROCS")
	return nil
}

func bench(jsonPath, benchTime string, amplify int, tracePath string) error {
	header("Benchmark-regression harness (hot paths, amplified Table II corpora)")
	var tr *tracing.Recorder
	if tracePath != "" {
		tr = tracing.New()
	}
	res, err := experiments.Bench(experiments.BenchConfig{Amplify: amplify, BenchTime: benchTime, Trace: tr})
	if err != nil {
		return err
	}
	if tr != nil {
		f, err := os.Create(tracePath)
		if err == nil {
			err = tr.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("timeline: %w", err)
		}
		fmt.Printf("wrote timeline (%d events) to %s — open in https://ui.perfetto.dev\n", tr.Len(), tracePath)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Measurement\tns/op\tB/op\tallocs/op\tevents/s")
	line := func(name string, s experiments.BenchStat) {
		fmt.Fprintf(w, "%s\t%.0f\t%d\t%d\t%.0f\n", name, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp, s.EventsPerSec)
	}
	line("decode (pooled)", res.Decode.Pooled)
	line("decode (pool off)", res.Decode.Unpooled)
	line("signature", res.Signature)
	line("analyze (workers=1)", res.Analyze.Workers1)
	line(fmt.Sprintf("analyze (workers=%d)", res.Analyze.MaxWorkers), res.Analyze.WorkersMax)
	line("cross-process linear", res.Cross.Linear)
	line("cross-process quadratic", res.Cross.Quadratic)
	line("cross-process shadow", res.Shadow.Shadow)
	line("cross-process pairwise", res.Shadow.Pairwise)
	w.Flush()
	fmt.Printf("decode alloc reduction: %.1f%% (ns/op %+.1f%%)  analyze speedup: %.2fx (GOMAXPROCS=%d, cpus=%d)  linear vs quadratic: %.1fx\n",
		res.Decode.AllocReductionPct, res.Decode.NsPerOpDeltaPct, res.Analyze.Speedup, res.GOMAXPROCS, res.NumCPU, res.Cross.Speedup)
	fmt.Printf("shadow vs pairwise: %.1fx on %d ops across %d ranks (agreement=%v)\n",
		res.Shadow.Speedup, res.Shadow.Ops, res.Shadow.Ranks, res.Shadow.Agreement)
	if err := mergeBenchJSON(jsonPath, res, "serve", "corpus"); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// mergeBenchJSON writes `section` into jsonPath, preserving the listed
// other top-level keys from an existing file — so `-exp bench` and
// `-exp serve` each own their part of BENCH.json without wiping the
// other's baseline. With a struct section, its own fields replace the
// file's; a corrupt existing file is rewritten from scratch.
func mergeBenchJSON(jsonPath string, section any, preserve ...string) error {
	kept := map[string]json.RawMessage{}
	if old, err := os.ReadFile(jsonPath); err == nil {
		var prev map[string]json.RawMessage
		if json.Unmarshal(old, &prev) == nil {
			for _, k := range preserve {
				if v, ok := prev[k]; ok {
					kept[k] = v
				}
			}
		}
	}
	data, err := json.Marshal(section)
	if err != nil {
		return err
	}
	merged := map[string]json.RawMessage{}
	if err := json.Unmarshal(data, &merged); err != nil {
		return err
	}
	for k, v := range kept {
		if _, ok := merged[k]; !ok {
			merged[k] = v
		}
	}
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(out, '\n'), 0o644)
}

// serveLoad drives the analysis daemon to saturation with concurrent,
// partly fault-injected clients and folds the latency/shed numbers into
// BENCH.json next to the bench section.
func serveLoad(jsonPath string, clients, jobs, queue int, faultFrac float64) error {
	header("Serve-load: daemon under concurrent, fault-injected submissions")
	res, err := experiments.ServeLoad(experiments.ServeLoadConfig{
		Clients: clients, Jobs: jobs, QueueBudget: queue, FaultFraction: faultFrac,
	})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Clients\t%d\n", res.Clients)
	fmt.Fprintf(w, "Jobs\t%d (done %d, degraded %d, quarantined %d, failed %d)\n",
		res.Jobs, res.Done, res.Degraded, res.Quarantined, res.Failed)
	fmt.Fprintf(w, "Workers / queue budget\t%d / %d\n", res.Workers, res.QueueBudget)
	fmt.Fprintf(w, "Submit attempts\t%d (shed %d, rate %.1f%%)\n", res.SubmitAttempts, res.Shed, 100*res.ShedRate)
	fmt.Fprintf(w, "Job latency p50 / p99\t%.1f ms / %.1f ms\n", res.P50LatencyMs, res.P99LatencyMs)
	fmt.Fprintf(w, "Saturation throughput\t%.1f jobs/s over %.2fs\n", res.JobsPerSec, res.ElapsedSec)
	fmt.Fprintf(w, "Panics recovered / retries\t%d / %d\n", res.PanicsRecovered, res.Retries)
	fmt.Fprintf(w, "Drained cleanly\t%v\n", res.DrainedCleanly)
	w.Flush()
	if !res.DrainedCleanly {
		return fmt.Errorf("daemon failed to drain")
	}
	if err := mergeBenchJSON(jsonPath, map[string]any{"serve": res},
		"corpus", "gomaxprocs", "num_cpu", "amplify", "benchtime", "decode", "signature", "analyze", "phases", "cross_process", "shadow_vs_pairwise"); err != nil {
		return err
	}
	fmt.Printf("wrote serve section to %s\n", jsonPath)
	return nil
}

// corpusScore runs the differential engine-scoring harness and folds the
// detection matrix into BENCH.json next to the bench and serve sections.
func corpusScore(jsonPath string, programs, clean int, seed uint64) error {
	header("Corpus: differential engine scoring over planted and injected bugs")
	res, err := experiments.Corpus(experiments.CorpusConfig{
		Generated: programs, Clean: clean, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.MarkdownMatrix())
	if !res.Gate {
		return fmt.Errorf("differential gate failed (apps=%v fixed=%v generated=%v clean=%v)",
			res.AppsCaught, res.AppsFixedClean, res.GeneratedCaught, res.CleanOK)
	}
	if err := mergeBenchJSON(jsonPath, map[string]any{"corpus": res},
		"serve", "gomaxprocs", "num_cpu", "amplify", "benchtime", "decode", "signature", "analyze", "phases", "cross_process", "shadow_vs_pairwise"); err != nil {
		return err
	}
	fmt.Printf("wrote corpus section to %s\n", jsonPath)
	return nil
}

func synccheck() error {
	header("§VII comparison: MC-Checker vs SyncChecker-style intra-epoch detection")
	rows, err := experiments.SyncCheckerComparison()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "App\tError location\tMC-Checker\tSyncChecker")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%v\t%v\n", r.App, r.ErrorLocation, r.MCCheckerDetects, r.SyncCheckerDetects)
	}
	return w.Flush()
}
