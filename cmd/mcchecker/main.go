// Command mcchecker runs MC-Checker end to end on the bundled MPI
// one-sided applications, or analyzes previously collected trace
// directories offline.
//
// Usage:
//
//	mcchecker apps
//	    List the bundled applications (the paper's bug suite).
//
//	mcchecker run -app NAME [-fixed] [-ranks N] [-trace DIR] [-full] [-intra-only]
//	              [-engine shadow|pairwise|differential] [-online] [-json] [-stats] [-stats-format text|prom|json]
//	              [-faults PLAN] [-failstop] [-timeout D] [-soak N]
//	    Run an application on the simulated MPI with the Profiler attached
//	    and analyze the trace. By default the buggy variant runs with the
//	    application's ST-Analyzer instrumentation set; -full instruments
//	    every buffer; -intra-only reproduces the SyncChecker baseline;
//	    -online analyzes concurrent regions while the program still runs
//	    (streaming mode); -json prints the report as JSON; -stats collects
//	    and prints run metrics (per-phase wall times, simulator/profiler
//	    counters) in the chosen -stats-format.
//
//	    -faults injects a deterministic fault plan, e.g.
//	    "seed=7,crash=1@120,trunc=0.5,reorder,yield=20" (see internal/faults).
//	    Crashes default to the fault-tolerant survival model (-failstop
//	    selects job-wide abort instead); truncated or crash-shortened traces
//	    are analyzed in degraded mode, and the report lists what was lost.
//	    -timeout adjusts the deadlock watchdog. -soak N repeats the run N
//	    times under seed-varied perturbations and fails on any report
//	    divergence.
//
//	mcchecker explore -app NAME [-fixed] [-n N] [-schedules N] [-strategy S]
//	                  [-jobs K] [-budget D] [-seed N] [-minimize] [-json] [-stats]
//	    Sweep the schedule space (internal/explore): run the application
//	    under many distinct deterministic schedules, deduplicate the
//	    violations by canonical signature, and minimize each finding to a
//	    -faults string replayable with `mcchecker run`. Strategies: sweep
//	    (seeded completion reordering), walk (reordering + scheduler
//	    yields), pct (rank priorities with change points), delay
//	    (delay-bounded completion steps).
//
//	mcchecker analyze [-trace timeline.json] [-intra-only] [-engine E] [-json] [-stats]
//	              [-stats-format F] [-cpuprofile FILE] [-memprofile FILE] [-stats-listen ADDR] DIR
//	    Run DN-Analyzer offline over per-rank trace files. With a
//	    positional DIR (flags first), -trace names a Chrome trace JSON timeline of the
//	    pipeline (per-worker decode/model/epochs/detect lanes plus one
//	    track per violation's happens-before witness chain; open it in
//	    ui.perfetto.dev). The legacy `analyze -trace DIR` spelling, with
//	    no positional argument, still reads DIR and records no timeline.
//	    -cpuprofile/-memprofile write pprof profiles; -stats-listen
//	    serves /metrics and /debug/pprof while the analysis runs.
//
//	mcchecker analyze -static [-app NAME] [-fixed] [-min-confidence L] [-json] [-stats]
//	    Cross-validate the static epoch-state checker (internal/stanalyzer)
//	    against the dynamic analyzer: run the checker over the embedded
//	    application sources, run each app dynamically on the default
//	    schedule, and classify every finding as confirmed (static
//	    diagnostic matches a dynamic violation's class and location),
//	    static-only, or dynamic-only. `mcchecker explore -static-seed`
//	    prioritizes the ranks named by static-only findings.
//
//	mcchecker corpus [-programs N] [-clean N] [-seed N] [-schedules N] [-json] [-matrix FILE]
//	    Differential engine scoring (internal/experiments): run the dynamic
//	    analyzer, the static checker, and the schedule explorer over every
//	    registry bug case plus freshly generated RMA programs (internal/gen)
//	    with injected bugs, and score them against ground truth. The gate
//	    requires every planted or injected bug to be caught by at least one
//	    engine and every fixed variant or clean generated program to be
//	    violation-free; a failed gate exits 3. -matrix also writes the
//	    markdown detection matrix to FILE.
//
//	mcchecker fix [-app NAME] [-schedules N] [-seed N] [-json] [-diff-dir DIR]
//	    Auto-repair the planted-bug corpus (internal/fix): consume
//	    ST-Analyzer diagnostics with their structured fix actions, apply
//	    the per-kind AST rewrite templates to a copy of the application
//	    source until the diagnostics drain, go/format and re-type-check
//	    the patch, then prove it dynamically — the patched planted variant
//	    must analyze clean under the DN-Analyzer and a schedule-exploration
//	    sweep, with verdicts matching the checked-in fixed variant, and the
//	    clean variant's behavior must be unchanged. -diff-dir writes each
//	    repair's unified diff to DIR/<case>.patch. Any unverified repair
//	    exits 3.
//
//	mcchecker serve [-addr HOST:PORT] [-workers N] [-queue N] [-job-timeout D]
//	                [-max-attempts N] [-retry-backoff D] [-analyze-workers N] [-engine E] [-drain-timeout D]
//	    Run the analysis daemon (internal/serve): clients POST trace sets
//	    to /jobs (inline uploads or a server-local directory) and poll
//	    /jobs/{id} for the report. Admission is bounded by -queue (excess
//	    submissions get 429 + Retry-After), each attempt runs under the
//	    -job-timeout watchdog, failures retry with backoff until
//	    -max-attempts then quarantine, and damaged uploads degrade via
//	    the salvage pipeline. SIGTERM drains: in-flight jobs finish, new
//	    ones are refused, then the process exits 0.
//
//	mcchecker dump -trace DIR [-rank N] [-limit N] [-format text|jsonl]
//	    Pretty-print trace files for debugging instrumented runs.
//
// With -json, the stats snapshot is embedded in the report's "stats"
// field instead of being printed separately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/fix"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/profiler"
	"repro/internal/stanalyzer"
	"repro/internal/stream"
	"repro/internal/trace"
)

// command is one mcchecker subcommand: its dispatch name, the one-line
// summary `mcchecker help` prints, and the synopsis lines shown under it.
// usage() and the help regression test both render from this table, so a
// subcommand cannot be added without appearing in the help text.
type command struct {
	name     string
	summary  string
	synopsis []string
	run      func(args []string) error
}

func commands() []command {
	return []command{
		{
			name:    "apps",
			summary: "list the bundled applications (the paper's bug suite)",
			synopsis: []string{
				"mcchecker apps",
			},
			run: func([]string) error { return listApps() },
		},
		{
			name:    "run",
			summary: "run one application with the Profiler attached and analyze the trace",
			synopsis: []string{
				"mcchecker run -app NAME [-fixed] [-ranks N] [-trace DIR|timeline.json] [-full] [-intra-only] [-engine shadow|pairwise|differential] [-online] [-json] [-stats] [-stats-format text|prom|json]",
				"              [-faults PLAN] [-failstop] [-timeout D] [-soak N] [-stats-listen ADDR]",
			},
			run: runCmd,
		},
		{
			name:    "explore",
			summary: "sweep the schedule space and deduplicate violations by signature",
			synopsis: []string{
				"mcchecker explore -app NAME [-fixed] [-n N] [-schedules N] [-strategy sweep|walk|pct|delay] [-jobs K] [-budget D] [-seed N]",
				"              [-minimize] [-minimize-runs N] [-static-seed] [-full] [-intra-only] [-engine E] [-json] [-stats] [-stats-format text|prom|json] [-timeout D]",
				"              [-trace timeline.json] [-stats-listen ADDR]",
			},
			run: exploreCmd,
		},
		{
			name:    "analyze",
			summary: "run DN-Analyzer offline over trace files, or cross-validate the static checker",
			synopsis: []string{
				"mcchecker analyze [-trace timeline.json] [-intra-only] [-engine shadow|pairwise|differential] [-json] [-stats] [-stats-format text|prom|json]",
				"              [-cpuprofile FILE] [-memprofile FILE] [-stats-listen ADDR] DIR",
				"mcchecker analyze -trace DIR [...]          (legacy spelling, no timeline)",
				"mcchecker analyze -static [-app NAME] [-fixed] [-min-confidence low|medium|high] [-json] [-stats]",
			},
			run: analyzeCmd,
		},
		{
			name:    "corpus",
			summary: "score every engine against the planted-bug corpus and generated programs",
			synopsis: []string{
				"mcchecker corpus [-programs N] [-clean N] [-seed N] [-schedules N] [-json] [-matrix FILE]",
			},
			run: corpusCmd,
		},
		{
			name:    "fix",
			summary: "auto-repair the planted-bug corpus with verified AST rewrites",
			synopsis: []string{
				"mcchecker fix [-app NAME] [-schedules N] [-seed N] [-json] [-diff-dir DIR]",
			},
			run: fixCmd,
		},
		{
			name:    "serve",
			summary: "run the analysis daemon (POST trace sets to /jobs)",
			synopsis: []string{
				"mcchecker serve [-addr HOST:PORT] [-workers N] [-queue N] [-job-timeout D] [-max-attempts N]",
				"              [-retry-backoff D] [-analyze-workers N] [-engine E] [-drain-timeout D]",
			},
			run: serveCmd,
		},
		{
			name:    "dump",
			summary: "pretty-print trace files for debugging instrumented runs",
			synopsis: []string{
				"mcchecker dump -trace DIR [-rank N] [-limit N] [-format text|jsonl]",
			},
			run: dumpCmd,
		},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "-h" || name == "--help" || name == "help" {
		usage(os.Stderr)
		return
	}
	for _, c := range commands() {
		if c.name != name {
			continue
		}
		if err := c.run(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "mcchecker:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "mcchecker: unknown command %q\n", name)
	usage(os.Stderr)
	os.Exit(2)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: mcchecker COMMAND [flags]")
	fmt.Fprintln(w, "\ncommands:")
	for _, c := range commands() {
		fmt.Fprintf(w, "  %-8s %s\n", c.name, c.summary)
	}
	fmt.Fprintln(w, "\nsynopsis:")
	for _, c := range commands() {
		for _, line := range c.synopsis {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
}

func listApps() error {
	fmt.Println("bundled applications (paper Table II):")
	for _, bc := range apps.BugCases() {
		fmt.Printf("  %-14s %d ranks  %-11s %s\n", bc.Name, bc.Ranks, bc.Origin, bc.RootCause)
	}
	fmt.Println("extension applications (MPI-3, paper §V):")
	for _, bc := range apps.ExtensionCases() {
		fmt.Printf("  %-14s %d ranks  %-11s %s\n", bc.Name, bc.Ranks, bc.Origin, bc.RootCause)
	}
	fmt.Println("schedule-dependent applications (use `mcchecker explore`):")
	for _, bc := range apps.ScheduleCases() {
		fmt.Printf("  %-14s %d ranks  %-11s %s\n", bc.Name, bc.Ranks, bc.Origin, bc.RootCause)
	}
	fmt.Println("planted-bug corpus (literature patterns, use `mcchecker corpus`):")
	for _, bc := range apps.CorpusCases() {
		fmt.Printf("  %-14s %d ranks  %-11s %s\n", bc.Name, bc.Ranks, bc.Origin, bc.RootCause)
	}
	fmt.Println("overhead workloads (paper Figure 8): use cmd/mcbench")
	return nil
}

func findApp(name string) (apps.BugCase, bool) {
	for _, bc := range apps.AllCases() {
		if bc.Name == name {
			return bc, true
		}
	}
	return apps.BugCase{}, false
}

// runConfig carries one end-to-end run's settings, shared between the
// single-run path and the soak loop.
type runConfig struct {
	body      func(p *mpi.Proc) error
	n         int
	rel       profiler.Relevance
	intraOnly bool
	engine    core.Engine
	plan      *faults.Plan
	failstop  bool
	timeout   time.Duration
	traceDir  string
	tl        *timeline
	reg       *obs.Registry
	progress  io.Writer
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	appName := fs.String("app", "", "application name (see `mcchecker apps`)")
	fixed := fs.Bool("fixed", false, "run the fixed variant instead of the buggy one")
	ranks := fs.Int("ranks", 0, "process count (default: the paper's count for the app)")
	traceDir := fs.String("trace", "", "write per-rank trace files to this directory; a .json path records a pipeline timeline instead")
	statsListen := fs.String("stats-listen", "", "serve /metrics and /debug/pprof on this address while running (e.g. :6060)")
	full := fs.Bool("full", false, "instrument every buffer (no static analysis)")
	intraOnly := fs.Bool("intra-only", false, "intra-epoch detection only (SyncChecker baseline)")
	engineName := fs.String("engine", "shadow", "cross-process detector: shadow, pairwise, or differential")
	online := fs.Bool("online", false, "analyze regions while the program runs (streaming mode)")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	stats := fs.Bool("stats", false, "collect and print run metrics")
	statsFormat := fs.String("stats-format", "text", "stats output format: text, prom, or json")
	faultsFlag := fs.String("faults", "", `deterministic fault plan, e.g. "seed=7,crash=1@120,trunc=0.5"`)
	failstop := fs.Bool("failstop", false, "abort the whole job on an injected crash (default: fault-tolerant survival)")
	timeout := fs.Duration("timeout", 0, "deadlock watchdog (0 = default 2m)")
	soak := fs.Int("soak", 0, "repeat the run N times under seed-varied perturbations, failing on report divergence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, err := statsRegistry(*stats, *statsFormat)
	if err != nil {
		return err
	}
	// -stats-listen without -stats still needs a live registry so
	// /metrics serves real data; printing stays gated on -stats.
	printReg := reg
	if *statsListen != "" && reg == nil {
		reg = obs.NewRegistry()
	}
	plan, err := faults.Parse(*faultsFlag)
	if err != nil {
		return err
	}
	engine, err := core.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	bc, ok := findApp(*appName)
	if !ok {
		return fmt.Errorf("unknown app %q (try `mcchecker apps`)", *appName)
	}
	n := bc.Ranks
	if *ranks > 0 {
		n = *ranks
	}
	body := bc.Buggy
	variant := "buggy"
	if *fixed {
		body, variant = bc.Fixed, "fixed"
	}

	var rel profiler.Relevance
	mode := "full instrumentation"
	if !*full {
		rel = profiler.FromNames(bc.RelevantBuffers)
		mode = fmt.Sprintf("selective instrumentation %v", bc.RelevantBuffers)
	}
	// Progress goes to stderr under -json so stdout stays parseable.
	progress := os.Stdout
	if *jsonOut {
		progress = os.Stderr
	}
	// A .json -trace path means "record the pipeline timeline there";
	// anything else keeps the original meaning of a trace directory.
	outDir := *traceDir
	var tl *timeline
	if strings.HasSuffix(outDir, ".json") {
		tl, outDir = newTimeline(outDir), ""
	}
	closeStats, err := startStatsListener(*statsListen, reg, progress)
	if err != nil {
		return err
	}
	defer closeStats()
	cfg := runConfig{
		body: body, n: n, rel: rel, intraOnly: *intraOnly, engine: engine,
		plan: plan, failstop: *failstop, timeout: *timeout,
		traceDir: outDir, tl: tl, reg: reg, progress: progress,
	}

	if *soak > 0 {
		if *online || *traceDir != "" || *stats {
			return fmt.Errorf("-soak runs offline in memory (drop -online, -trace, and -stats)")
		}
		fmt.Fprintf(progress, "soaking %s (%s) on %d simulated ranks, %d iterations\n", bc.Name, variant, n, *soak)
		return soakRun(cfg, *soak, *jsonOut, *statsFormat)
	}
	fmt.Fprintf(progress, "running %s (%s) on %d simulated ranks, %s\n", bc.Name, variant, n, mode)

	if *online && tl != nil {
		return fmt.Errorf("timeline recording (-trace %s) requires the offline pipeline (drop -online)", tl.path)
	}
	if *online {
		sc := stream.New(n, func(v *core.Violation) {
			fmt.Fprintf(progress, "[online] %s\n", v)
		})
		sc.SetObs(reg)
		sc.SetEngine(engine)
		sc.SetTolerant(cfg.tolerant())
		pr := profiler.NewObs(sc, rel, reg)
		var notes []string
		if err := mpi.Run(n, cfg.mpiOptions(pr), body); err != nil {
			if !mpi.Degraded(err) {
				return fmt.Errorf("run failed: %w", err)
			}
			fmt.Fprintf(progress, "warning: run degraded: %v\n", err)
			notes = flattenErrs(err)
		}
		rep, err := sc.Finish()
		if err != nil {
			return err
		}
		rep.Degraded = append(notes, rep.Degraded...)
		fmt.Fprintf(progress, "analyzed %d slab(s) online\n", sc.Slabs())
		return printReport(rep, *jsonOut, printReg, *statsFormat)
	}

	rep, err := runOffline(cfg)
	if err != nil {
		return err
	}
	core.AddWitnessTracks(tl.recorder(), rep)
	if err := tl.flush(progress); err != nil {
		return err
	}
	return printReport(rep, *jsonOut, printReg, *statsFormat)
}

// tolerant reports whether injected crashes use the survival model.
func (cfg *runConfig) tolerant() bool {
	return cfg.plan.HasCrash() && !cfg.failstop
}

func (cfg *runConfig) mpiOptions(hook mpi.Hook) mpi.Options {
	return mpi.Options{
		Hook: hook, Obs: cfg.reg, Timeout: cfg.timeout,
		Faults: cfg.plan, FaultTolerant: cfg.tolerant(),
	}
}

// exploreCmd sweeps the schedule space of one application with
// internal/explore and reports the distinct violations, each with a
// replayable (and, by default, ddmin-minimized) -faults string.
func exploreCmd(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	appName := fs.String("app", "", "application name (see `mcchecker apps`)")
	fixed := fs.Bool("fixed", false, "explore the fixed variant instead of the buggy one")
	ranks := fs.Int("n", 0, "process count (default: the paper's count for the app)")
	schedules := fs.Int("schedules", 1000, "number of distinct schedules to try")
	strategyName := fs.String("strategy", "sweep", "schedule strategy: sweep, walk, pct, or delay")
	jobs := fs.Int("jobs", 0, "worker pool width (0 = GOMAXPROCS)")
	budget := fs.Duration("budget", 0, "wall-clock budget for the sweep (0 = unlimited)")
	seed := fs.Uint64("seed", 1, "base seed the strategy derives schedules from")
	minimize := fs.Bool("minimize", true, "ddmin-minimize each finding's schedule")
	minimizeRuns := fs.Int("minimize-runs", 64, "max extra runs spent minimizing each finding")
	staticSeed := fs.Bool("static-seed", false, "seed the sweep from static-checker diagnostics (delay the ranks they name first)")
	full := fs.Bool("full", false, "instrument every buffer (no static analysis)")
	intraOnly := fs.Bool("intra-only", false, "intra-epoch detection only (SyncChecker baseline)")
	engineName := fs.String("engine", "shadow", "cross-process detector: shadow, pairwise, or differential")
	jsonOut := fs.Bool("json", false, "print the result as JSON")
	stats := fs.Bool("stats", false, "collect and print run metrics")
	statsFormat := fs.String("stats-format", "text", "stats output format: text, prom, or json")
	timeout := fs.Duration("timeout", 0, "per-run deadlock watchdog (0 = default 2m)")
	tracePath := fs.String("trace", "", "record a per-schedule timeline to this Chrome trace JSON file")
	statsListen := fs.String("stats-listen", "", "serve /metrics and /debug/pprof on this address while exploring (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, err := statsRegistry(*stats, *statsFormat)
	if err != nil {
		return err
	}
	// As in runCmd: a listener needs a registry even without -stats.
	printReg := reg
	if *statsListen != "" && reg == nil {
		reg = obs.NewRegistry()
	}
	strat, err := explore.ParseStrategy(*strategyName)
	if err != nil {
		return err
	}
	engine, err := core.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	bc, ok := findApp(*appName)
	if !ok {
		return fmt.Errorf("unknown app %q (try `mcchecker apps`)", *appName)
	}
	n := bc.Ranks
	if *ranks > 0 {
		n = *ranks
	}
	body := bc.Buggy
	variant := "buggy"
	if *fixed {
		body, variant = bc.Fixed, "fixed"
	}
	var rel profiler.Relevance
	if !*full {
		rel = profiler.FromNames(bc.RelevantBuffers)
	}
	progress := io.Writer(os.Stdout)
	if *jsonOut {
		progress = os.Stderr
	}
	if *staticSeed {
		srep, serr := stanalyzer.CheckFS(apps.SourceFS(), stanalyzer.Options{
			Defines: map[string]bool{"buggy": !*fixed},
		})
		if serr != nil {
			return fmt.Errorf("static seeding: %w", serr)
		}
		hints := explore.HintsFromDiagnostics(srep.ForFunctions(srep.Reachable(bc.StaticRoot)))
		if len(hints) > 0 {
			strat = explore.Hinted{Base: strat, Ranks: hints}
			fmt.Fprintf(progress, "static seeding: prioritizing origin rank(s) %v from %s diagnostics\n", hints, bc.StaticRoot)
		} else {
			fmt.Fprintf(progress, "static seeding: no rank hints for %s; using plain %s\n", bc.Name, strat.Name())
		}
	}
	fmt.Fprintf(progress, "exploring %s (%s) on %d simulated ranks: %d schedules, strategy %s\n",
		bc.Name, variant, n, *schedules, strat.Name())

	closeStats, err := startStatsListener(*statsListen, reg, progress)
	if err != nil {
		return err
	}
	defer closeStats()
	tl := newTimeline(*tracePath)
	res, err := explore.Explore(explore.Config{
		Runner: &explore.Runner{
			Body: body, Ranks: n, Rel: rel,
			Timeout: *timeout, IntraOnly: *intraOnly, Engine: engine, Obs: reg,
		},
		Strategy:     strat,
		Schedules:    *schedules,
		Jobs:         *jobs,
		Budget:       *budget,
		Seed:         *seed,
		Minimize:     *minimize,
		MinimizeRuns: *minimizeRuns,
		Progress:     progress,
		Trace:        tl.recorder(),
	})
	if err != nil {
		return err
	}
	if err := tl.flush(progress); err != nil {
		return err
	}
	if err := printExplore(res, bc.Name, *jsonOut, printReg, *statsFormat); err != nil {
		return err
	}
	if res.Distinct() > 0 {
		os.Exit(3)
	}
	return nil
}

// corpusCmd runs the differential engine-scoring harness: every engine
// over every registry bug case plus generated programs with injected
// bugs, gated on "all bugs caught, all clean programs clean".
func corpusCmd(args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	programs := fs.Int("programs", 0, "generated programs with injected bugs (0 = 3 per pattern)")
	clean := fs.Int("clean", 0, "clean generated programs (0 = 200)")
	seed := fs.Uint64("seed", 1, "base seed for program generation")
	schedules := fs.Int("schedules", 0, "explorer schedules per program (0 = 12)")
	jsonOut := fs.Bool("json", false, "print the result as JSON")
	matrixPath := fs.String("matrix", "", "also write the markdown detection matrix to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("corpus takes no positional arguments")
	}
	progress := io.Writer(os.Stdout)
	if *jsonOut {
		progress = os.Stderr
	}
	fmt.Fprintf(progress, "scoring engines over %d registry case(s) + generated programs (seed %d)\n",
		len(apps.AllCases()), *seed)
	res, err := experiments.Corpus(experiments.CorpusConfig{
		Generated: *programs, Clean: *clean, Seed: *seed, Schedules: *schedules,
	})
	if err != nil {
		return err
	}
	matrix := res.MarkdownMatrix()
	if *matrixPath != "" {
		if err := os.WriteFile(*matrixPath, []byte(matrix), 0o644); err != nil {
			return fmt.Errorf("matrix: %w", err)
		}
		fmt.Fprintf(progress, "wrote detection matrix to %s\n", *matrixPath)
	}
	if *jsonOut {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(matrix)
	}
	if !res.Gate {
		os.Exit(3)
	}
	return nil
}

// fixCmd auto-repairs the planted-bug corpus: every buggy variant is
// patched from its static diagnostics and the repair proven against the
// dynamic engines (internal/fix). Any unverified repair exits 3.
func fixCmd(args []string) error {
	fs := flag.NewFlagSet("fix", flag.ExitOnError)
	appName := fs.String("app", "", "repair only this corpus case (default: all)")
	schedules := fs.Int("schedules", 0, "explorer schedules per verification sweep (0 = 6)")
	seed := fs.Uint64("seed", 1, "explorer seed for the verification sweeps")
	jsonOut := fs.Bool("json", false, "print the per-case results as JSON")
	diffDir := fs.String("diff-dir", "", "write each repair's unified diff to DIR/<case>.patch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fix takes no positional arguments")
	}
	cases := apps.CorpusCases()
	if *appName != "" {
		var picked []apps.BugCase
		for _, bc := range cases {
			if bc.Name == *appName {
				picked = append(picked, bc)
			}
		}
		if len(picked) == 0 {
			return fmt.Errorf("unknown corpus case %q (see `mcchecker apps`)", *appName)
		}
		cases = picked
	}
	progress := io.Writer(os.Stdout)
	if *jsonOut {
		progress = os.Stderr
	}
	if *diffDir != "" {
		if err := os.MkdirAll(*diffDir, 0o755); err != nil {
			return fmt.Errorf("diff-dir: %w", err)
		}
	}
	fmt.Fprintf(progress, "repairing %d corpus case(s), verification: dynamic + %d-schedule sweep (seed %d)\n",
		len(cases), fixSchedules(*schedules), *seed)
	results, err := fix.RepairAll(cases, fix.VerifyConfig{Schedules: *schedules, Seed: *seed})
	if err != nil {
		return err
	}
	verified := 0
	for _, res := range results {
		status := "FAIL"
		if res.Verified {
			status = "ok"
			verified++
		}
		fmt.Fprintf(progress, "  %-16s %s  %d step(s)", res.Name, status, len(res.Steps))
		for _, st := range res.Steps {
			fmt.Fprintf(progress, "  [%s]", st.Action)
		}
		if !res.Verified {
			fmt.Fprintf(progress, "  (%s)", res.Reason)
		}
		fmt.Fprintln(progress)
		if *diffDir != "" && res.Diff != "" {
			path := filepath.Join(*diffDir, res.Name+".patch")
			if err := os.WriteFile(path, []byte(res.Diff), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
	}
	if *diffDir != "" {
		fmt.Fprintf(progress, "wrote patch diffs to %s\n", *diffDir)
	}
	fmt.Fprintf(progress, "%d/%d repair(s) verified\n", verified, len(results))
	if *jsonOut {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	}
	if verified != len(results) {
		os.Exit(3)
	}
	return nil
}

// fixSchedules mirrors fix.VerifyConfig's default for the progress line.
func fixSchedules(n int) int {
	if n == 0 {
		return 6
	}
	return n
}

// printExplore renders an exploration result (text or JSON). Like
// printReport it is called before any error exit so -stats always lands.
func printExplore(res *explore.Result, appName string, asJSON bool, reg *obs.Registry, statsFormat string) error {
	var snap *obs.Snapshot
	if reg != nil {
		snap = reg.Snapshot()
	}
	if asJSON {
		type findingJSON struct {
			Signature    string `json:"signature"`
			Count        int    `json:"count"`
			FirstIndex   int    `json:"first_schedule"`
			Replay       string `json:"replay"`
			Minimized    string `json:"minimized,omitempty"`
			MinimizeRuns int    `json:"minimize_runs,omitempty"`
			Example      string `json:"example"`
		}
		out := struct {
			Strategy        string        `json:"strategy"`
			Schedules       int           `json:"schedules"`
			Violating       int           `json:"violating"`
			Failures        int           `json:"failures"`
			Distinct        int           `json:"distinct"`
			ElapsedSec      float64       `json:"elapsed_seconds"`
			SchedulesPerSec float64       `json:"schedules_per_sec"`
			Findings        []findingJSON `json:"findings"`
			Stats           *obs.Snapshot `json:"stats,omitempty"`
		}{
			Strategy: res.Strategy, Schedules: res.Schedules,
			Violating: res.Violating, Failures: res.Failures,
			Distinct: res.Distinct(), ElapsedSec: res.Elapsed.Seconds(),
			SchedulesPerSec: res.SchedulesPerSec(),
			Findings:        []findingJSON{}, Stats: snap,
		}
		for _, f := range res.Findings {
			out.Findings = append(out.Findings, findingJSON{
				Signature: f.Signature, Count: f.Count, FirstIndex: f.FirstIndex,
				Replay: f.FirstPlan.String(), Minimized: f.Minimized,
				MinimizeRuns: f.MinimizeRuns, Example: f.Example.String(),
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Printf("explored %d schedule(s) in %.2fs (%.0f schedules/s): %d violating run(s), %d distinct violation(s)\n",
			res.Schedules, res.Elapsed.Seconds(), res.SchedulesPerSec(), res.Violating, res.Distinct())
		if res.Failures > 0 {
			fmt.Printf("%d run(s) failed outright\n", res.Failures)
		}
		for i, f := range res.Findings {
			fmt.Printf("\n#%d %s\n", i+1, f.Example)
			fmt.Printf("  seen in %d schedule(s), first at schedule %d\n", f.Count, f.FirstIndex)
			fmt.Printf("  replay:    mcchecker run -app %s -faults %q\n", appName, f.FirstPlan.String())
			if f.Minimized != "" {
				fmt.Printf("  minimized: mcchecker run -app %s -faults %q  (%d minimization runs)\n",
					appName, f.Minimized, f.MinimizeRuns)
			}
		}
		if res.Distinct() == 0 {
			fmt.Println("no violations under any explored schedule")
		}
		if snap != nil {
			fmt.Println("--- run stats ---")
			var err error
			switch statsFormat {
			case "prom":
				err = snap.WritePrometheus(os.Stdout)
			case "json":
				err = snap.WriteJSON(os.Stdout)
			default:
				err = snap.WriteText(os.Stdout)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// runner builds the explore.Runner equivalent of this configuration:
// the single-run primitive shared by the run, soak, and explore paths.
func (cfg *runConfig) runner() *explore.Runner {
	r := &explore.Runner{
		Body: cfg.body, Ranks: cfg.n, Rel: cfg.rel,
		Timeout: cfg.timeout, Failstop: cfg.failstop,
		IntraOnly: cfg.intraOnly, Engine: cfg.engine, Obs: cfg.reg,
		Trace: cfg.tl.recorder(),
	}
	if cfg.traceDir != "" {
		r.OnTrace = func(set *trace.Set) {
			// A failed trace write must be a visible warning, not a lost
			// report: analysis continues from the in-memory events.
			if err := trace.WriteDirObs(cfg.traceDir, set, cfg.reg); err != nil {
				fmt.Fprintf(cfg.progress, "warning: writing trace files: %v\n", err)
			} else {
				fmt.Fprintf(cfg.progress, "wrote %d events to %s\n", set.TotalEvents(), cfg.traceDir)
				truncateTraceFiles(cfg.traceDir, cfg.plan, cfg.n, cfg.progress)
			}
		}
	}
	return r
}

// runOffline executes one offline run → trace → analyze pass through the
// explore.Runner primitive. With an active fault plan (or a degraded
// simulation) the analysis runs in degraded mode and the report carries
// the loss diagnostics; without one the strict path is used unchanged.
func runOffline(cfg runConfig) (*core.Report, error) {
	rep, err := cfg.runner().Run(cfg.plan)
	if err != nil {
		return nil, err
	}
	for _, note := range rep.Degraded {
		fmt.Fprintf(cfg.progress, "warning: run degraded: %s\n", note)
	}
	return rep, nil
}

// flattenErrs splits a joined error tree into one note per leaf.
func flattenErrs(err error) []string {
	if err == nil {
		return nil
	}
	if j, ok := err.(interface{ Unwrap() []error }); ok {
		var notes []string
		for _, sub := range j.Unwrap() {
			notes = append(notes, flattenErrs(sub)...)
		}
		return notes
	}
	return []string{err.Error()}
}

// truncateTraceFiles applies the plan's truncation faults to the on-disk
// trace files, so a later `mcchecker analyze` faces the same damage the
// in-memory pipeline simulated.
func truncateTraceFiles(dir string, plan *faults.Plan, n int, progress io.Writer) {
	for r := 0; r < n; r++ {
		frac, ok := plan.TruncFor(r)
		if !ok || frac >= 1 {
			continue
		}
		path := filepath.Join(dir, trace.FileName(int32(r)))
		data, err := os.ReadFile(path)
		if err == nil {
			err = os.WriteFile(path, faults.TruncateBytes(data, frac), 0o644)
		}
		if err != nil {
			fmt.Fprintf(progress, "warning: truncation fault on %s: %v\n", path, err)
			continue
		}
		fmt.Fprintf(progress, "fault: truncated %s to fraction %g\n", path, frac)
	}
}

// soakRun is a thin wrapper over explore.Soak: repeat the offline run
// under seed-varied perturbations and verify the report is invariant.
func soakRun(cfg runConfig, iters int, jsonOut bool, statsFormat string) error {
	first, err := explore.Soak(cfg.runner(), cfg.plan, iters)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.progress, "soak: %d iterations, reports identical\n", iters)
	return printReport(first, jsonOut, nil, statsFormat)
}

// statsRegistry validates the -stats flags and returns the registry to
// thread through the run — nil (metrics disabled) unless -stats was given.
func statsRegistry(enabled bool, format string) (*obs.Registry, error) {
	switch format {
	case "text", "prom", "json":
	default:
		return nil, fmt.Errorf("unknown -stats-format %q (want text, prom, or json)", format)
	}
	if !enabled {
		return nil, nil
	}
	return obs.NewRegistry(), nil
}

// timeline owns one -trace timeline recording: the span recorder threaded
// through the pipeline and the Chrome trace JSON file it is written to.
// A nil *timeline is inert, so call sites can thread tl.recorder()
// unconditionally.
type timeline struct {
	rec  *tracing.Recorder
	path string
}

func newTimeline(path string) *timeline {
	if path == "" {
		return nil
	}
	return &timeline{rec: tracing.New(), path: path}
}

func (tl *timeline) recorder() *tracing.Recorder {
	if tl == nil {
		return nil
	}
	return tl.rec
}

// flush writes the recorded timeline. It must run before printReport or
// printExplore, which may os.Exit(3) on findings.
func (tl *timeline) flush(progress io.Writer) error {
	if tl == nil {
		return nil
	}
	f, err := os.Create(tl.path)
	if err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	if err := tl.rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("timeline: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	fmt.Fprintf(progress, "wrote timeline (%d events) to %s — open in https://ui.perfetto.dev\n",
		tl.rec.Len(), tl.path)
	return nil
}

// startCPUProfile begins a CPU profile to path ("" = disabled). The
// returned stop function must run before any os.Exit, including the
// findings exit in printReport.
func startCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile dumps a heap profile to path ("" = disabled) after a GC,
// so the profile reflects live objects rather than garbage.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// startStatsListener serves /metrics, /stats, and /debug/pprof/ on addr
// for the duration of the command ("" = disabled). The registry may be
// nil, leaving the pprof endpoints as the useful surface.
func startStatsListener(addr string, reg *obs.Registry, progress io.Writer) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	srv, err := obs.ServeStats(addr, reg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(progress, "stats listener on http://%s (/metrics, /stats, /debug/pprof/)\n", srv.Addr())
	return func() { srv.Close() }, nil
}

// printReport renders the report (text or JSON) and exits with status 3
// when errors were found, like compilers and linters signal findings.
// When reg is non-nil its snapshot is printed before any error exit: as a
// separate section in text mode, embedded in the report in JSON mode.
func printReport(rep *core.Report, asJSON bool, reg *obs.Registry, statsFormat string) error {
	var snap *obs.Snapshot
	if reg != nil {
		snap = reg.Snapshot()
	}
	if asJSON {
		rep.Stats = snap
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(rep)
		if snap != nil {
			fmt.Println("--- run stats ---")
			var err error
			switch statsFormat {
			case "prom":
				err = snap.WritePrometheus(os.Stdout)
			case "json":
				err = snap.WriteJSON(os.Stdout)
			default:
				err = snap.WriteText(os.Stdout)
			}
			if err != nil {
				return err
			}
		}
	}
	if len(rep.Errors()) > 0 {
		os.Exit(3)
	}
	return nil
}

func analyzeCmd(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	traceDir := fs.String("trace", "", "trace directory to analyze; with a positional DIR argument, the timeline output file instead")
	static := fs.Bool("static", false, "cross-validate the static checker against dynamic runs of the bundled apps")
	appName := fs.String("app", "", "with -static: cross-validate only this app (default: all)")
	fixed := fs.Bool("fixed", false, "with -static: cross-validate the fixed variants")
	minConf := fs.String("min-confidence", "low", "with -static: consider only diagnostics at or above this confidence")
	intraOnly := fs.Bool("intra-only", false, "intra-epoch detection only")
	engineName := fs.String("engine", "shadow", "cross-process detector: shadow, pairwise, or differential")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	stats := fs.Bool("stats", false, "collect and print analysis metrics")
	statsFormat := fs.String("stats-format", "text", "stats output format: text, prom, or json")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	statsListen := fs.String("stats-listen", "", "serve /metrics and /debug/pprof on this address while analyzing (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *static {
		if fs.NArg() > 0 {
			return fmt.Errorf("-static takes no positional arguments")
		}
		reg, err := statsRegistry(*stats, *statsFormat)
		if err != nil {
			return err
		}
		min, err := stanalyzer.ParseConfidence(*minConf)
		if err != nil {
			return err
		}
		return staticCrossValidate(*appName, *fixed, *jsonOut, min, reg, *statsFormat)
	}
	// Two spellings: `analyze DIR [-trace timeline.json]` (positional
	// input, -trace names the timeline output) and the legacy
	// `analyze -trace DIR` (no timeline).
	inputDir := *traceDir
	timelinePath := ""
	switch {
	case fs.NArg() > 1:
		return fmt.Errorf("at most one trace directory argument, got %d", fs.NArg())
	case fs.NArg() == 1:
		inputDir = fs.Arg(0)
		timelinePath = *traceDir
	}
	if inputDir == "" {
		return fmt.Errorf("a trace directory is required (positional, or -trace DIR; or -static)")
	}
	reg, err := statsRegistry(*stats, *statsFormat)
	if err != nil {
		return err
	}
	// As in runCmd: a listener needs a registry even without -stats.
	printReg := reg
	if *statsListen != "" && reg == nil {
		reg = obs.NewRegistry()
	}
	stopCPU, err := startCPUProfile(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopCPU()
	closeStats, err := startStatsListener(*statsListen, reg, os.Stderr)
	if err != nil {
		return err
	}
	defer closeStats()
	tl := newTimeline(timelinePath)
	engine, err := core.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	if *intraOnly {
		opts.CrossProcess = false
	}
	opts.Engine = engine
	opts.Obs = reg
	opts.Trace = tl.recorder()

	// finish flushes everything that must not be lost to the findings
	// exit inside printReport: profiles, witness tracks, the timeline.
	finish := func(rep *core.Report) error {
		stopCPU()
		if err := writeMemProfile(*memprofile); err != nil {
			return err
		}
		core.AddWitnessTracks(tl.recorder(), rep)
		if err := tl.flush(os.Stderr); err != nil {
			return err
		}
		return printReport(rep, *jsonOut, printReg, *statsFormat)
	}

	set, err := trace.ReadDirTraced(inputDir, reg, tl.recorder())
	if err != nil {
		// Strict reading failed (truncated or damaged files): salvage the
		// valid per-rank prefixes and produce a degraded report instead of
		// nothing.
		fmt.Fprintf(os.Stderr, "mcchecker: strict trace read failed (%v); salvaging\n", err)
		salvaged, notes, serr := trace.ReadDirSalvageTraced(inputDir, reg, tl.recorder())
		if serr != nil {
			return serr
		}
		notes = append([]string{fmt.Sprintf("strict read failed: %v", err)}, notes...)
		rep, derr := core.AnalyzeDegraded(salvaged, opts, notes)
		if derr != nil {
			return derr
		}
		return finish(rep)
	}
	rep, err := core.AnalyzeWith(set, opts)
	if err != nil {
		return err
	}
	return finish(rep)
}

// dumpCmd pretty-prints trace files for debugging instrumented runs.
func dumpCmd(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	traceDir := fs.String("trace", "", "trace directory")
	rank := fs.Int("rank", -1, "dump only this rank (-1 = all)")
	limit := fs.Int("limit", 0, "stop after this many events per rank (0 = all)")
	format := fs.String("format", "text", "output format: text or jsonl")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceDir == "" {
		return fmt.Errorf("-trace is required")
	}
	set, err := trace.ReadDir(*traceDir)
	if err != nil {
		return err
	}
	if *format == "jsonl" {
		return trace.WriteJSONL(os.Stdout, set)
	}
	for _, t := range set.Traces {
		if *rank >= 0 && int(t.Rank) != *rank {
			continue
		}
		fmt.Printf("--- rank %d: %d events ---\n", t.Rank, len(t.Events))
		for i := range t.Events {
			if *limit > 0 && i >= *limit {
				fmt.Printf("... %d more\n", len(t.Events)-i)
				break
			}
			fmt.Println(t.Events[i].String())
		}
	}
	return nil
}
