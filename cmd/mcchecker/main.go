// Command mcchecker runs MC-Checker end to end on the bundled MPI
// one-sided applications, or analyzes previously collected trace
// directories offline.
//
// Usage:
//
//	mcchecker apps
//	    List the bundled applications (the paper's bug suite).
//
//	mcchecker run -app NAME [-fixed] [-ranks N] [-trace DIR] [-full] [-intra-only]
//	              [-online] [-json] [-stats] [-stats-format text|prom|json]
//	    Run an application on the simulated MPI with the Profiler attached
//	    and analyze the trace. By default the buggy variant runs with the
//	    application's ST-Analyzer instrumentation set; -full instruments
//	    every buffer; -intra-only reproduces the SyncChecker baseline;
//	    -online analyzes concurrent regions while the program still runs
//	    (streaming mode); -json prints the report as JSON; -stats collects
//	    and prints run metrics (per-phase wall times, simulator/profiler
//	    counters) in the chosen -stats-format.
//
//	mcchecker analyze -trace DIR [-intra-only] [-json] [-stats] [-stats-format F]
//	    Run DN-Analyzer offline over per-rank trace files.
//
//	mcchecker dump -trace DIR [-rank N] [-limit N] [-format text|jsonl]
//	    Pretty-print trace files for debugging instrumented runs.
//
// With -json, the stats snapshot is embedded in the report's "stats"
// field instead of being printed separately.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/stream"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "apps":
		err = listApps()
	case "run":
		err = runCmd(os.Args[2:])
	case "analyze":
		err = analyzeCmd(os.Args[2:])
	case "dump":
		err = dumpCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mcchecker: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcchecker:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mcchecker apps
  mcchecker run -app NAME [-fixed] [-ranks N] [-trace DIR] [-full] [-intra-only] [-online] [-json] [-stats] [-stats-format text|prom|json]
  mcchecker analyze -trace DIR [-intra-only] [-json] [-stats] [-stats-format text|prom|json]
  mcchecker dump -trace DIR [-rank N] [-limit N]`)
}

func listApps() error {
	fmt.Println("bundled applications (paper Table II):")
	for _, bc := range apps.BugCases() {
		fmt.Printf("  %-14s %d ranks  %-11s %s\n", bc.Name, bc.Ranks, bc.Origin, bc.RootCause)
	}
	fmt.Println("extension applications (MPI-3, paper §V):")
	for _, bc := range apps.ExtensionCases() {
		fmt.Printf("  %-14s %d ranks  %-11s %s\n", bc.Name, bc.Ranks, bc.Origin, bc.RootCause)
	}
	fmt.Println("overhead workloads (paper Figure 8): use cmd/mcbench")
	return nil
}

func findApp(name string) (apps.BugCase, bool) {
	for _, bc := range apps.BugCases() {
		if bc.Name == name {
			return bc, true
		}
	}
	for _, bc := range apps.ExtensionCases() {
		if bc.Name == name {
			return bc, true
		}
	}
	return apps.BugCase{}, false
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	appName := fs.String("app", "", "application name (see `mcchecker apps`)")
	fixed := fs.Bool("fixed", false, "run the fixed variant instead of the buggy one")
	ranks := fs.Int("ranks", 0, "process count (default: the paper's count for the app)")
	traceDir := fs.String("trace", "", "also write per-rank trace files to this directory")
	full := fs.Bool("full", false, "instrument every buffer (no static analysis)")
	intraOnly := fs.Bool("intra-only", false, "intra-epoch detection only (SyncChecker baseline)")
	online := fs.Bool("online", false, "analyze regions while the program runs (streaming mode)")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	stats := fs.Bool("stats", false, "collect and print run metrics")
	statsFormat := fs.String("stats-format", "text", "stats output format: text, prom, or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, err := statsRegistry(*stats, *statsFormat)
	if err != nil {
		return err
	}
	bc, ok := findApp(*appName)
	if !ok {
		return fmt.Errorf("unknown app %q (try `mcchecker apps`)", *appName)
	}
	n := bc.Ranks
	if *ranks > 0 {
		n = *ranks
	}
	body := bc.Buggy
	variant := "buggy"
	if *fixed {
		body, variant = bc.Fixed, "fixed"
	}

	var rel profiler.Relevance
	mode := "full instrumentation"
	if !*full {
		rel = profiler.FromNames(bc.RelevantBuffers)
		mode = fmt.Sprintf("selective instrumentation %v", bc.RelevantBuffers)
	}
	// Progress goes to stderr under -json so stdout stays parseable.
	progress := os.Stdout
	if *jsonOut {
		progress = os.Stderr
	}
	fmt.Fprintf(progress, "running %s (%s) on %d simulated ranks, %s\n", bc.Name, variant, n, mode)

	if *online {
		sc := stream.New(n, func(v *core.Violation) {
			fmt.Fprintf(progress, "[online] %s\n", v)
		})
		sc.SetObs(reg)
		pr := profiler.NewObs(sc, rel, reg)
		if err := mpi.Run(n, mpi.Options{Hook: pr, Obs: reg}, body); err != nil {
			return fmt.Errorf("run failed: %w", err)
		}
		rep, err := sc.Finish()
		if err != nil {
			return err
		}
		fmt.Fprintf(progress, "analyzed %d slab(s) online\n", sc.Slabs())
		return printReport(rep, *jsonOut, reg, *statsFormat)
	}

	sink := trace.NewMemorySink()
	pr := profiler.NewObs(sink, rel, reg)
	if err := mpi.Run(n, mpi.Options{Hook: pr, Obs: reg}, body); err != nil {
		return fmt.Errorf("run failed: %w", err)
	}
	set := sink.Set()
	if *traceDir != "" {
		if err := trace.WriteDirObs(*traceDir, set, reg); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %d events to %s\n", set.TotalEvents(), *traceDir)
	}

	opts := core.DefaultOptions()
	if *intraOnly {
		opts.CrossProcess = false
	}
	opts.Obs = reg
	rep, err := core.AnalyzeWith(set, opts)
	if err != nil {
		return fmt.Errorf("analysis failed: %w", err)
	}
	return printReport(rep, *jsonOut, reg, *statsFormat)
}

// statsRegistry validates the -stats flags and returns the registry to
// thread through the run — nil (metrics disabled) unless -stats was given.
func statsRegistry(enabled bool, format string) (*obs.Registry, error) {
	switch format {
	case "text", "prom", "json":
	default:
		return nil, fmt.Errorf("unknown -stats-format %q (want text, prom, or json)", format)
	}
	if !enabled {
		return nil, nil
	}
	return obs.NewRegistry(), nil
}

// printReport renders the report (text or JSON) and exits with status 3
// when errors were found, like compilers and linters signal findings.
// When reg is non-nil its snapshot is printed before any error exit: as a
// separate section in text mode, embedded in the report in JSON mode.
func printReport(rep *core.Report, asJSON bool, reg *obs.Registry, statsFormat string) error {
	var snap *obs.Snapshot
	if reg != nil {
		snap = reg.Snapshot()
	}
	if asJSON {
		rep.Stats = snap
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(rep)
		if snap != nil {
			fmt.Println("--- run stats ---")
			var err error
			switch statsFormat {
			case "prom":
				err = snap.WritePrometheus(os.Stdout)
			case "json":
				err = snap.WriteJSON(os.Stdout)
			default:
				err = snap.WriteText(os.Stdout)
			}
			if err != nil {
				return err
			}
		}
	}
	if len(rep.Errors()) > 0 {
		os.Exit(3)
	}
	return nil
}

func analyzeCmd(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	traceDir := fs.String("trace", "", "trace directory written by `mcchecker run -trace`")
	intraOnly := fs.Bool("intra-only", false, "intra-epoch detection only")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	stats := fs.Bool("stats", false, "collect and print analysis metrics")
	statsFormat := fs.String("stats-format", "text", "stats output format: text, prom, or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceDir == "" {
		return fmt.Errorf("-trace is required")
	}
	reg, err := statsRegistry(*stats, *statsFormat)
	if err != nil {
		return err
	}
	set, err := trace.ReadDirObs(*traceDir, reg)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	if *intraOnly {
		opts.CrossProcess = false
	}
	opts.Obs = reg
	rep, err := core.AnalyzeWith(set, opts)
	if err != nil {
		return err
	}
	return printReport(rep, *jsonOut, reg, *statsFormat)
}

// dumpCmd pretty-prints trace files for debugging instrumented runs.
func dumpCmd(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	traceDir := fs.String("trace", "", "trace directory")
	rank := fs.Int("rank", -1, "dump only this rank (-1 = all)")
	limit := fs.Int("limit", 0, "stop after this many events per rank (0 = all)")
	format := fs.String("format", "text", "output format: text or jsonl")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceDir == "" {
		return fmt.Errorf("-trace is required")
	}
	set, err := trace.ReadDir(*traceDir)
	if err != nil {
		return err
	}
	if *format == "jsonl" {
		return trace.WriteJSONL(os.Stdout, set)
	}
	for _, t := range set.Traces {
		if *rank >= 0 && int(t.Rank) != *rank {
			continue
		}
		fmt.Printf("--- rank %d: %d events ---\n", t.Rank, len(t.Events))
		for i := range t.Events {
			if *limit > 0 && i >= *limit {
				fmt.Printf("... %d more\n", len(t.Events)-i)
				break
			}
			fmt.Println(t.Events[i].String())
		}
	}
	return nil
}
