// Command mcchecker runs MC-Checker end to end on the bundled MPI
// one-sided applications, or analyzes previously collected trace
// directories offline.
//
// Usage:
//
//	mcchecker apps
//	    List the bundled applications (the paper's bug suite).
//
//	mcchecker run -app NAME [-fixed] [-ranks N] [-trace DIR] [-full] [-intra-only]
//	    Run an application on the simulated MPI with the Profiler attached
//	    and analyze the trace. By default the buggy variant runs with the
//	    application's ST-Analyzer instrumentation set; -full instruments
//	    every buffer; -intra-only reproduces the SyncChecker baseline.
//
//	mcchecker analyze -trace DIR
//	    Run DN-Analyzer offline over per-rank trace files.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/stream"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "apps":
		err = listApps()
	case "run":
		err = runCmd(os.Args[2:])
	case "analyze":
		err = analyzeCmd(os.Args[2:])
	case "dump":
		err = dumpCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mcchecker: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcchecker:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mcchecker apps
  mcchecker run -app NAME [-fixed] [-ranks N] [-trace DIR] [-full] [-intra-only] [-online] [-json]
  mcchecker analyze -trace DIR [-intra-only] [-json]
  mcchecker dump -trace DIR [-rank N] [-limit N]`)
}

func listApps() error {
	fmt.Println("bundled applications (paper Table II):")
	for _, bc := range apps.BugCases() {
		fmt.Printf("  %-14s %d ranks  %-11s %s\n", bc.Name, bc.Ranks, bc.Origin, bc.RootCause)
	}
	fmt.Println("extension applications (MPI-3, paper §V):")
	for _, bc := range apps.ExtensionCases() {
		fmt.Printf("  %-14s %d ranks  %-11s %s\n", bc.Name, bc.Ranks, bc.Origin, bc.RootCause)
	}
	fmt.Println("overhead workloads (paper Figure 8): use cmd/mcbench")
	return nil
}

func findApp(name string) (apps.BugCase, bool) {
	for _, bc := range apps.BugCases() {
		if bc.Name == name {
			return bc, true
		}
	}
	for _, bc := range apps.ExtensionCases() {
		if bc.Name == name {
			return bc, true
		}
	}
	return apps.BugCase{}, false
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	appName := fs.String("app", "", "application name (see `mcchecker apps`)")
	fixed := fs.Bool("fixed", false, "run the fixed variant instead of the buggy one")
	ranks := fs.Int("ranks", 0, "process count (default: the paper's count for the app)")
	traceDir := fs.String("trace", "", "also write per-rank trace files to this directory")
	full := fs.Bool("full", false, "instrument every buffer (no static analysis)")
	intraOnly := fs.Bool("intra-only", false, "intra-epoch detection only (SyncChecker baseline)")
	online := fs.Bool("online", false, "analyze regions while the program runs (streaming mode)")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	bc, ok := findApp(*appName)
	if !ok {
		return fmt.Errorf("unknown app %q (try `mcchecker apps`)", *appName)
	}
	n := bc.Ranks
	if *ranks > 0 {
		n = *ranks
	}
	body := bc.Buggy
	variant := "buggy"
	if *fixed {
		body, variant = bc.Fixed, "fixed"
	}

	var rel profiler.Relevance
	mode := "full instrumentation"
	if !*full {
		rel = profiler.FromNames(bc.RelevantBuffers)
		mode = fmt.Sprintf("selective instrumentation %v", bc.RelevantBuffers)
	}
	fmt.Printf("running %s (%s) on %d simulated ranks, %s\n", bc.Name, variant, n, mode)

	if *online {
		sc := stream.New(n, func(v *core.Violation) {
			fmt.Printf("[online] %s\n", v)
		})
		pr := profiler.New(sc, rel)
		if err := mpi.Run(n, mpi.Options{Hook: pr}, body); err != nil {
			return fmt.Errorf("run failed: %w", err)
		}
		rep, err := sc.Finish()
		if err != nil {
			return err
		}
		fmt.Printf("analyzed %d slab(s) online\n", sc.Slabs())
		return printReport(rep, *jsonOut)
	}

	sink := trace.NewMemorySink()
	pr := profiler.New(sink, rel)
	if err := mpi.Run(n, mpi.Options{Hook: pr}, body); err != nil {
		return fmt.Errorf("run failed: %w", err)
	}
	set := sink.Set()
	if *traceDir != "" {
		if err := trace.WriteDir(*traceDir, set); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", set.TotalEvents(), *traceDir)
	}

	opts := core.DefaultOptions()
	if *intraOnly {
		opts.CrossProcess = false
	}
	rep, err := core.AnalyzeWith(set, opts)
	if err != nil {
		return fmt.Errorf("analysis failed: %w", err)
	}
	return printReport(rep, *jsonOut)
}

// printReport renders the report (text or JSON) and exits with status 3
// when errors were found, like compilers and linters signal findings.
func printReport(rep *core.Report, asJSON bool) error {
	if asJSON {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(rep)
	}
	if len(rep.Errors()) > 0 {
		os.Exit(3)
	}
	return nil
}

func analyzeCmd(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	traceDir := fs.String("trace", "", "trace directory written by `mcchecker run -trace`")
	intraOnly := fs.Bool("intra-only", false, "intra-epoch detection only")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceDir == "" {
		return fmt.Errorf("-trace is required")
	}
	set, err := trace.ReadDir(*traceDir)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	if *intraOnly {
		opts.CrossProcess = false
	}
	rep, err := core.AnalyzeWith(set, opts)
	if err != nil {
		return err
	}
	return printReport(rep, *jsonOut)
}

// dumpCmd pretty-prints trace files for debugging instrumented runs.
func dumpCmd(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	traceDir := fs.String("trace", "", "trace directory")
	rank := fs.Int("rank", -1, "dump only this rank (-1 = all)")
	limit := fs.Int("limit", 0, "stop after this many events per rank (0 = all)")
	format := fs.String("format", "text", "output format: text or jsonl")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceDir == "" {
		return fmt.Errorf("-trace is required")
	}
	set, err := trace.ReadDir(*traceDir)
	if err != nil {
		return err
	}
	if *format == "jsonl" {
		return trace.WriteJSONL(os.Stdout, set)
	}
	for _, t := range set.Traces {
		if *rank >= 0 && int(t.Rank) != *rank {
			continue
		}
		fmt.Printf("--- rank %d: %d events ---\n", t.Rank, len(t.Events))
		for i := range t.Events {
			if *limit > 0 && i >= *limit {
				fmt.Printf("... %d more\n", len(t.Events)-i)
				break
			}
			fmt.Println(t.Events[i].String())
		}
	}
	return nil
}
