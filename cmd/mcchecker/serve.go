package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// serveCmd runs the analysis daemon until SIGTERM/SIGINT, then drains:
// admission stops, in-flight jobs finish, and the process exits 0. A
// second signal — or the drain timeout — forces shutdown instead.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7787", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 0, "analysis worker pool width (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "queue budget: jobs admitted but unfinished before shedding (0 = 4x workers)")
	jobTimeout := fs.Duration("job-timeout", 30*time.Second, "per-attempt watchdog deadline")
	maxAttempts := fs.Int("max-attempts", 3, "attempts before a failing job is quarantined")
	retryBackoff := fs.Duration("retry-backoff", 100*time.Millisecond, "base retry backoff, doubled per attempt")
	analyzeWorkers := fs.Int("analyze-workers", 1, "core pipeline workers per job")
	engineName := fs.String("engine", "shadow", "cross-process detector: shadow, pairwise, or differential")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "max wait for in-flight jobs on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve takes no positional arguments")
	}
	engine, err := core.ParseEngine(*engineName)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueBudget:    *queue,
		JobTimeout:     *jobTimeout,
		MaxAttempts:    *maxAttempts,
		RetryBackoff:   *retryBackoff,
		AnalyzeWorkers: *analyzeWorkers,
		Engine:         engine,
		Obs:            reg,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	fmt.Printf("mcchecker serve: listening on http://%s (POST /jobs, /healthz, /metrics, /debug/pprof/)\n", ln.Addr())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("mcchecker serve: signal received; draining (new submissions refused)")
	srv.BeginDrain()

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()
	select {
	case err := <-drainErr:
		if err != nil {
			srv.Close()
			hs.Close()
			return fmt.Errorf("serve: %w", err)
		}
	case <-sig:
		fmt.Println("mcchecker serve: second signal; forcing shutdown")
		srv.Close()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx)
	fmt.Println("mcchecker serve: drained; bye")
	return nil
}
