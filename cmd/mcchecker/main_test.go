package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

func TestFindApp(t *testing.T) {
	for _, name := range []string{"emulate", "lockopts", "jacobi", "counter", "jacobi2d"} {
		bc, ok := findApp(name)
		if !ok || bc.Name != name {
			t.Errorf("findApp(%q) = %v, %v", name, bc.Name, ok)
		}
	}
	if _, ok := findApp("nope"); ok {
		t.Error("unknown app found")
	}
}

func TestListApps(t *testing.T) {
	if err := listApps(); err != nil {
		t.Fatal(err)
	}
}

func writeDemoTrace(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	sink, err := trace.NewFileSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	pr := profiler.New(sink, nil)
	err = mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		win := p.Alloc(16, "w")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestAnalyzeCmdCleanTrace(t *testing.T) {
	dir := writeDemoTrace(t)
	// Clean trace: analyzeCmd must not exit and must not error.
	if err := analyzeCmd([]string{"-trace", dir}); err != nil {
		t.Fatal(err)
	}
	if err := analyzeCmd([]string{"-trace", dir, "-json"}); err != nil {
		t.Fatal(err)
	}
	if err := analyzeCmd([]string{"-trace", dir, "-intra-only"}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeCmdErrors(t *testing.T) {
	if err := analyzeCmd([]string{}); err == nil {
		t.Error("missing -trace must error")
	}
	if err := analyzeCmd([]string{"-trace", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("missing dir must error")
	}
}

func TestDumpCmd(t *testing.T) {
	dir := writeDemoTrace(t)
	// Redirect stdout noise away from the test log.
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; null.Close(); devnull.Close() }()

	if err := dumpCmd([]string{"-trace", dir}); err != nil {
		t.Fatal(err)
	}
	if err := dumpCmd([]string{"-trace", dir, "-rank", "1", "-limit", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := dumpCmd([]string{"-trace", dir, "-format", "jsonl"}); err != nil {
		t.Fatal(err)
	}
	if err := dumpCmd([]string{}); err == nil {
		t.Error("missing -trace must error")
	}
}
