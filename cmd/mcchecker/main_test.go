package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

func TestFindApp(t *testing.T) {
	for _, name := range []string{"emulate", "lockopts", "jacobi", "counter", "jacobi2d", "schedrace"} {
		bc, ok := findApp(name)
		if !ok || bc.Name != name {
			t.Errorf("findApp(%q) = %v, %v", name, bc.Name, ok)
		}
	}
	if _, ok := findApp("nope"); ok {
		t.Error("unknown app found")
	}
}

func TestListApps(t *testing.T) {
	out := captureStdout(t, listApps)
	for _, bc := range apps.AllCases() {
		if !strings.Contains(out, bc.Name) {
			t.Errorf("listApps output missing registered case %q", bc.Name)
		}
	}
}

func writeDemoTrace(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	sink, err := trace.NewFileSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	pr := profiler.New(sink, nil)
	err = mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		win := p.Alloc(16, "w")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestAnalyzeCmdCleanTrace(t *testing.T) {
	dir := writeDemoTrace(t)
	// Clean trace: analyzeCmd must not exit and must not error.
	if err := analyzeCmd([]string{"-trace", dir}); err != nil {
		t.Fatal(err)
	}
	if err := analyzeCmd([]string{"-trace", dir, "-json"}); err != nil {
		t.Fatal(err)
	}
	if err := analyzeCmd([]string{"-trace", dir, "-intra-only"}); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestRunCmdStats(t *testing.T) {
	// The fixed variant reports no errors, so printReport does not exit.
	out := captureStdout(t, func() error {
		return runCmd([]string{"-app", "emulate", "-fixed", "-stats"})
	})
	// Per-phase wall times and simulator/profiler counters must be printed.
	for _, want := range []string{
		"--- run stats ---",
		`mcchecker_phase_seconds{phase="model"}`,
		`mcchecker_phase_seconds{phase="match"}`,
		`mcchecker_phase_seconds{phase="detect_cross"}`,
		"mcchecker_sim_messages_total",
		"mcchecker_profiler_events_total",
		"mcchecker_analysis_events_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q", want)
		}
	}
}

func TestRunCmdStatsProm(t *testing.T) {
	out := captureStdout(t, func() error {
		return runCmd([]string{"-app", "emulate", "-fixed", "-stats", "-stats-format", "prom"})
	})
	if !strings.Contains(out, "# TYPE mcchecker_phase_seconds summary") {
		t.Errorf("prom output missing phase summary:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE mcchecker_sim_epochs_total counter") {
		t.Errorf("prom output missing epoch counter family:\n%s", out)
	}
}

func TestRunCmdStatsJSONEmbeds(t *testing.T) {
	out := captureStdout(t, func() error {
		return runCmd([]string{"-app", "emulate", "-fixed", "-json", "-stats"})
	})
	var rep struct {
		Stats *struct {
			Counters []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"counters"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if rep.Stats == nil || len(rep.Stats.Counters) == 0 || len(rep.Stats.Spans) == 0 {
		t.Errorf("stats not embedded in JSON report:\n%s", out)
	}
}

func TestStatsRegistryValidation(t *testing.T) {
	if _, err := statsRegistry(true, "yaml"); err == nil {
		t.Error("bad format must be rejected")
	}
	if reg, err := statsRegistry(false, "text"); err != nil || reg != nil {
		t.Error("disabled stats must yield a nil registry")
	}
	if reg, err := statsRegistry(true, "prom"); err != nil || reg == nil {
		t.Error("enabled stats must yield a registry")
	}
}

func TestAnalyzeCmdStats(t *testing.T) {
	dir := writeDemoTrace(t)
	out := captureStdout(t, func() error {
		return analyzeCmd([]string{"-trace", dir, "-stats"})
	})
	for _, want := range []string{
		`mcchecker_phase_seconds{phase="model"}`,
		"mcchecker_trace_decoded_events_total",
		"mcchecker_analysis_events_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze stats output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeCmdErrors(t *testing.T) {
	if err := analyzeCmd([]string{}); err == nil {
		t.Error("missing -trace must error")
	}
	if err := analyzeCmd([]string{"-trace", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("missing dir must error")
	}
}

// Two runs with the same fault seed must print byte-identical JSON
// reports — the determinism contract of the fault plan.
func TestRunCmdFaultsDeterministic(t *testing.T) {
	args := []string{"-app", "jacobi", "-fixed", "-json", "-faults", "seed=7,yield=30,reorder"}
	a := captureStdout(t, func() error { return runCmd(args) })
	b := captureStdout(t, func() error { return runCmd(args) })
	if a != b {
		t.Fatalf("same seed, different reports:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, `"violations"`) {
		t.Fatalf("no JSON report printed:\n%s", a)
	}
}

// An injected crash under the fault-tolerant model still yields a report,
// marked degraded.
func TestRunCmdCrashFaultDegrades(t *testing.T) {
	out := captureStdout(t, func() error {
		return runCmd([]string{"-app", "emulate", "-fixed", "-faults", "seed=1,crash=0@10"})
	})
	for _, want := range []string{"run degraded", "crashed by fault injection", "DEGRADED"} {
		if !strings.Contains(out, want) {
			t.Errorf("crash-fault output missing %q:\n%s", want, out)
		}
	}
}

// A truncation fault cuts both the analyzed set and the written files, so
// a later offline analyze faces the same damage — and salvages it.
func TestRunCmdTruncFaultAndAnalyzeSalvage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	out := captureStdout(t, func() error {
		return runCmd([]string{"-app", "emulate", "-fixed", "-trace", dir,
			"-faults", "trunc=0.5@1"})
	})
	if !strings.Contains(out, "DEGRADED") {
		t.Fatalf("truncated run not marked degraded:\n%s", out)
	}
	out = captureStdout(t, func() error {
		return analyzeCmd([]string{"-trace", dir})
	})
	if !strings.Contains(out, "DEGRADED") {
		t.Fatalf("analyze of truncated files not marked degraded:\n%s", out)
	}
}

func TestRunCmdSoak(t *testing.T) {
	out := captureStdout(t, func() error {
		return runCmd([]string{"-app", "emulate", "-fixed", "-soak", "4"})
	})
	if !strings.Contains(out, "soak: 4 iterations, reports identical") {
		t.Fatalf("soak output:\n%s", out)
	}
}

func TestRunCmdFlagValidation(t *testing.T) {
	if err := runCmd([]string{"-app", "emulate", "-faults", "crash=oops"}); err == nil {
		t.Error("bad fault DSL must be rejected")
	}
	if err := runCmd([]string{"-app", "emulate", "-soak", "2", "-online"}); err == nil {
		t.Error("-soak with -online must be rejected")
	}
	if err := runCmd([]string{"-app", "emulate", "-soak", "2", "-trace", t.TempDir()}); err == nil {
		t.Error("-soak with -trace must be rejected")
	}
}

// The fixed schedrace variant stays clean across a sweep, so exploreCmd
// neither errors nor exits (findings would exit 3, untestable in-process).
func TestExploreCmdFixedClean(t *testing.T) {
	out := captureStdout(t, func() error {
		return exploreCmd([]string{"-app", "schedrace", "-fixed", "-schedules", "8"})
	})
	if !strings.Contains(out, "no violations under any explored schedule") {
		t.Fatalf("explore output:\n%s", out)
	}
}

func TestExploreCmdJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return exploreCmd([]string{"-app", "schedrace", "-fixed", "-schedules", "6",
			"-strategy", "delay", "-json", "-stats"})
	})
	var res struct {
		Strategy  string `json:"strategy"`
		Schedules int    `json:"schedules"`
		Distinct  int    `json:"distinct"`
		Findings  []any  `json:"findings"`
		Stats     *struct {
			Counters []any `json:"counters"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if res.Strategy != "delay" || res.Schedules != 6 || res.Distinct != 0 || len(res.Findings) != 0 {
		t.Errorf("unexpected explore JSON: %+v\n%s", res, out)
	}
	if res.Stats == nil || len(res.Stats.Counters) == 0 {
		t.Errorf("stats not embedded in explore JSON:\n%s", out)
	}
}

func TestExploreCmdValidation(t *testing.T) {
	if err := exploreCmd([]string{"-app", "nope"}); err == nil {
		t.Error("unknown app must be rejected")
	}
	if err := exploreCmd([]string{"-app", "schedrace", "-strategy", "dfs"}); err == nil {
		t.Error("unknown strategy must be rejected")
	}
	if err := exploreCmd([]string{"-app", "schedrace", "-schedules", "0"}); err == nil {
		t.Error("zero schedules must be rejected")
	}
}

// Strict analyze fails on a damaged directory; the salvage fallback still
// produces a (degraded) report.
func TestAnalyzeCmdSalvageFallback(t *testing.T) {
	dir := writeDemoTrace(t)
	path := filepath.Join(dir, trace.FileName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return analyzeCmd([]string{"-trace", dir})
	})
	if !strings.Contains(out, "DEGRADED") {
		t.Fatalf("salvaged analyze not marked degraded:\n%s", out)
	}
}

func TestDumpCmd(t *testing.T) {
	dir := writeDemoTrace(t)
	// Redirect stdout noise away from the test log.
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; null.Close(); devnull.Close() }()

	if err := dumpCmd([]string{"-trace", dir}); err != nil {
		t.Fatal(err)
	}
	if err := dumpCmd([]string{"-trace", dir, "-rank", "1", "-limit", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := dumpCmd([]string{"-trace", dir, "-format", "jsonl"}); err != nil {
		t.Fatal(err)
	}
	if err := dumpCmd([]string{}); err == nil {
		t.Error("missing -trace must error")
	}
}

// The emulate bug fires on the default schedule, so its static diagnostic
// must be confirmed by the dynamic run.
func TestAnalyzeCmdStaticConfirmed(t *testing.T) {
	out := captureStdout(t, func() error {
		return analyzeCmd([]string{"-static", "-app", "emulate"})
	})
	for _, want := range []string{
		"== emulate: 1 confirmed, 0 static-only, 0 dynamic-only ==",
		"get-origin-use/high",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("static cross-validation output missing %q:\n%s", want, out)
		}
	}
}

// The schedrace bug needs a hostile schedule, so the default dynamic run
// stays clean and the static finding is classified static-only — the case
// `explore -static-seed` exists for.
func TestAnalyzeCmdStaticOnly(t *testing.T) {
	out := captureStdout(t, func() error {
		return analyzeCmd([]string{"-static", "-app", "schedrace"})
	})
	if !strings.Contains(out, "== schedrace: 0 confirmed, 1 static-only, 0 dynamic-only ==") {
		t.Errorf("schedrace must be static-only on the default schedule:\n%s", out)
	}
}

func TestAnalyzeCmdStaticFixedClean(t *testing.T) {
	out := captureStdout(t, func() error {
		return analyzeCmd([]string{"-static", "-app", "emulate", "-fixed",
			"-min-confidence", "high"})
	})
	if !strings.Contains(out, "== emulate: 0 confirmed, 0 static-only, 0 dynamic-only ==") {
		t.Errorf("fixed emulate must be clean at high confidence:\n%s", out)
	}
}

func TestAnalyzeCmdStaticJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return analyzeCmd([]string{"-static", "-app", "emulate", "-json", "-stats"})
	})
	var res struct {
		Apps []struct {
			App       string `json:"app"`
			Confirmed []struct {
				Kind string `json:"kind"`
				Rule string `json:"rule"`
			} `json:"confirmed"`
		} `json:"apps"`
		Stats *struct {
			Counters []struct {
				Name string `json:"name"`
			} `json:"counters"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-static -json output is not valid JSON: %v\n%s", err, out)
	}
	if len(res.Apps) != 1 || res.Apps[0].App != "emulate" || len(res.Apps[0].Confirmed) != 1 {
		t.Errorf("unexpected cross-validation JSON: %+v\n%s", res, out)
	}
	if res.Stats == nil {
		t.Fatalf("stats not embedded:\n%s", out)
	}
	foundStatic := false
	for _, c := range res.Stats.Counters {
		if strings.HasPrefix(c.Name, "mcchecker_static_") {
			foundStatic = true
		}
	}
	if !foundStatic {
		t.Errorf("mcchecker_static_* counters missing from stats:\n%s", out)
	}
}

func TestAnalyzeCmdStaticValidation(t *testing.T) {
	if err := analyzeCmd([]string{"-static", "-app", "nope"}); err == nil {
		t.Error("unknown app must be rejected")
	}
	if err := analyzeCmd([]string{"-static", "-min-confidence", "shaky"}); err == nil {
		t.Error("bad confidence must be rejected")
	}
}

// -static-seed on the fixed variant finds no static diagnostics, so the
// seeding degrades to the plain strategy with a notice — and stays clean.
// (The hinted path with real hints is covered by the explore package's
// TestHintedCatchesScheduleBug; the buggy CLI path exits 3 on findings,
// which is untestable in-process.)
func TestExploreCmdStaticSeedFixedClean(t *testing.T) {
	out := captureStdout(t, func() error {
		return exploreCmd([]string{"-app", "schedrace", "-fixed", "-schedules", "8",
			"-static-seed"})
	})
	for _, want := range []string{"no rank hints", "no violations under any explored schedule"} {
		if !strings.Contains(out, want) {
			t.Errorf("static-seed explore output missing %q:\n%s", want, out)
		}
	}
}

// TestUsageNamesEveryCommand pins the help contract: the top-level usage
// text renders from the command table, so every dispatchable subcommand
// must appear in it with a summary and every synopsis line.
func TestUsageNamesEveryCommand(t *testing.T) {
	var sb strings.Builder
	usage(&sb)
	help := sb.String()

	cmds := commands()
	if len(cmds) == 0 {
		t.Fatal("empty command table")
	}
	for _, c := range cmds {
		if c.summary == "" {
			t.Errorf("%s: no summary", c.name)
		}
		if len(c.synopsis) == 0 {
			t.Errorf("%s: no synopsis", c.name)
		}
		if c.run == nil {
			t.Errorf("%s: no run function", c.name)
		}
		if !strings.Contains(help, c.name+" ") && !strings.Contains(help, c.name+"\n") {
			t.Errorf("usage text does not name %q:\n%s", c.name, help)
		}
		for _, line := range c.synopsis {
			if !strings.Contains(help, line) {
				t.Errorf("usage text missing synopsis line %q", line)
			}
		}
	}

	// The full expected command set, spelled out so dropping a command
	// from the table (which would silently drop it from help) fails too.
	for _, want := range []string{"apps", "run", "explore", "analyze", "corpus", "serve", "dump"} {
		found := false
		for _, c := range cmds {
			if c.name == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("command table is missing %q", want)
		}
	}
}

// TestCommandNamesUnique: duplicate names would shadow each other in the
// dispatch loop.
func TestCommandNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range commands() {
		if seen[c.name] {
			t.Errorf("duplicate command %q", c.name)
		}
		seen[c.name] = true
	}
}

// TestCorpusCmdGate runs the differential scoring CLI at smoke scale:
// the gate passes (no exit 3), the matrix is written, and -json parses.
func TestCorpusCmdGate(t *testing.T) {
	matrixPath := filepath.Join(t.TempDir(), "matrix.md")
	out := captureStdout(t, func() error {
		return corpusCmd([]string{"-programs", "2", "-clean", "3", "-schedules", "4",
			"-matrix", matrixPath})
	})
	for _, want := range []string{"Registry corpus", "Generated programs", "Gate:"} {
		if !strings.Contains(out, want) {
			t.Errorf("corpus output missing %q:\n%s", want, out)
		}
	}
	matrix, err := os.ReadFile(matrixPath)
	if err != nil {
		t.Fatalf("matrix artifact not written: %v", err)
	}
	if !strings.Contains(string(matrix), "| Case | Ranks | Class |") {
		t.Errorf("matrix artifact malformed:\n%s", matrix)
	}
	if err := corpusCmd([]string{"-programs", "2", "-clean", "3", "-schedules", "4", "extra"}); err == nil {
		t.Error("positional arguments must be rejected")
	}
}
