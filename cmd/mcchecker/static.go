package main

// static.go: `mcchecker analyze -static` — cross-validation of the static
// epoch-state checker (internal/stanalyzer) against the dynamic analyzer.
// The checker runs over the embedded application sources; each selected
// app then runs dynamically on the default schedule, and the static
// diagnostics are matched against the dynamic core.Violation positions:
//
//	confirmed    — a static diagnostic whose class and source location
//	               coincide with a dynamic violation
//	static-only  — flagged statically, silent dynamically (either a false
//	               positive, or a bug the default schedule does not reach —
//	               `mcchecker explore -static-seed` targets these)
//	dynamic-only — found dynamically but missed by the static rules
//	               (runtime-dependent offsets, aliasing beyond the taint
//	               pass, schedule-injected faults)

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/stanalyzer"
)

// crossApp is the cross-validation outcome for one application.
type crossApp struct {
	App         string
	Confirmed   []crossMatch
	StaticOnly  []stanalyzer.Diagnostic
	DynamicOnly []*core.Violation
}

// crossMatch pairs a static diagnostic with the dynamic violation that
// confirms it.
type crossMatch struct {
	Diag stanalyzer.Diagnostic
	Viol *core.Violation
}

// staticCrossValidate runs the static checker and the dynamic pipeline
// over the selected apps and classifies each finding.
func staticCrossValidate(appName string, fixed, jsonOut bool, minConf stanalyzer.Confidence, reg *obs.Registry, statsFormat string) error {
	var cases []apps.BugCase
	if appName != "" {
		bc, ok := findApp(appName)
		if !ok {
			return fmt.Errorf("unknown app %q (try `mcchecker apps`)", appName)
		}
		cases = []apps.BugCase{bc}
	} else {
		cases = apps.AllCases()
	}

	srep, err := stanalyzer.CheckFS(apps.SourceFS(), stanalyzer.Options{
		Defines: map[string]bool{"buggy": !fixed},
		Obs:     reg,
	})
	if err != nil {
		return fmt.Errorf("static check of embedded sources: %w", err)
	}

	progress := io.Writer(os.Stdout)
	if jsonOut {
		progress = os.Stderr
	}
	variant := "buggy"
	if fixed {
		variant = "fixed"
	}
	fmt.Fprintf(progress, "cross-validating %d app(s), %s variant: static checker vs dynamic analyzer\n", len(cases), variant)

	plan, err := faults.Parse("")
	if err != nil {
		return err
	}
	var results []crossApp
	for _, bc := range cases {
		diags := srep.ForFunctions(srep.Reachable(bc.StaticRoot))
		var kept []stanalyzer.Diagnostic
		for _, d := range diags {
			if d.Confidence >= minConf {
				kept = append(kept, d)
			}
		}
		body := bc.Buggy
		if fixed {
			body = bc.Fixed
		}
		runner := &explore.Runner{
			Body: body, Ranks: bc.Ranks,
			Rel: profiler.FromNames(bc.RelevantBuffers), Obs: reg,
		}
		drep, err := runner.Run(plan)
		if err != nil {
			return fmt.Errorf("dynamic run of %s: %w", bc.Name, err)
		}
		results = append(results, classify(bc.Name, kept, drep.Violations))
	}

	if jsonOut {
		return printCrossJSON(results, reg)
	}
	printCrossText(results, reg, statsFormat)
	return nil
}

// classify matches static diagnostics against dynamic violations by class
// and source position (Diagnostic.MatchesViolation).
func classify(name string, diags []stanalyzer.Diagnostic, viols []*core.Violation) crossApp {
	res := crossApp{App: name}
	matched := make([]bool, len(viols))
	for _, d := range diags {
		found := false
		for i, v := range viols {
			if d.MatchesViolation(v) {
				matched[i] = true
				if !found {
					res.Confirmed = append(res.Confirmed, crossMatch{Diag: d, Viol: v})
					found = true
				}
			}
		}
		if !found {
			res.StaticOnly = append(res.StaticOnly, d)
		}
	}
	for i, v := range viols {
		if !matched[i] {
			res.DynamicOnly = append(res.DynamicOnly, v)
		}
	}
	return res
}

func shortViolation(v *core.Violation) string {
	return fmt.Sprintf("%s [%s] %s vs %s", v.Rule, v.Class, v.A.Loc(), v.B.Loc())
}

func shortDiag(d *stanalyzer.Diagnostic) string {
	return fmt.Sprintf("%s/%s at %s (%s)", d.Kind, d.Confidence, d.Pos.Filename+":"+fmt.Sprint(d.Pos.Line), d.Fn)
}

func printCrossText(results []crossApp, reg *obs.Registry, statsFormat string) {
	var nc, ns, nd int
	for _, r := range results {
		fmt.Printf("== %s: %d confirmed, %d static-only, %d dynamic-only ==\n",
			r.App, len(r.Confirmed), len(r.StaticOnly), len(r.DynamicOnly))
		for _, m := range r.Confirmed {
			fmt.Printf("  confirmed     %s\n                ↔ %s\n", shortDiag(&m.Diag), shortViolation(m.Viol))
		}
		for i := range r.StaticOnly {
			fmt.Printf("  static-only   %s\n", shortDiag(&r.StaticOnly[i]))
		}
		for _, v := range r.DynamicOnly {
			fmt.Printf("  dynamic-only  %s\n", shortViolation(v))
		}
		nc += len(r.Confirmed)
		ns += len(r.StaticOnly)
		nd += len(r.DynamicOnly)
	}
	fmt.Printf("cross-validation: %d confirmed, %d static-only, %d dynamic-only across %d app(s)\n",
		nc, ns, nd, len(results))
	if reg != nil {
		fmt.Println("--- run stats ---")
		snap := reg.Snapshot()
		switch statsFormat {
		case "prom":
			snap.WritePrometheus(os.Stdout)
		case "json":
			snap.WriteJSON(os.Stdout)
		default:
			snap.WriteText(os.Stdout)
		}
	}
}

func printCrossJSON(results []crossApp, reg *obs.Registry) error {
	type matchJSON struct {
		Kind       string `json:"kind"`
		Confidence string `json:"confidence"`
		Pos        string `json:"pos"`
		Rule       string `json:"rule"`
		Violation  string `json:"violation"`
	}
	type appJSON struct {
		App         string      `json:"app"`
		Confirmed   []matchJSON `json:"confirmed"`
		StaticOnly  []string    `json:"static_only"`
		DynamicOnly []string    `json:"dynamic_only"`
	}
	out := struct {
		Apps  []appJSON     `json:"apps"`
		Stats *obs.Snapshot `json:"stats,omitempty"`
	}{Apps: []appJSON{}}
	for _, r := range results {
		aj := appJSON{App: r.App, Confirmed: []matchJSON{}, StaticOnly: []string{}, DynamicOnly: []string{}}
		for _, m := range r.Confirmed {
			aj.Confirmed = append(aj.Confirmed, matchJSON{
				Kind:       string(m.Diag.Kind),
				Confidence: m.Diag.Confidence.String(),
				Pos:        fmt.Sprintf("%s:%d", m.Diag.Pos.Filename, m.Diag.Pos.Line),
				Rule:       m.Viol.Rule,
				Violation:  shortViolation(m.Viol),
			})
		}
		for i := range r.StaticOnly {
			aj.StaticOnly = append(aj.StaticOnly, shortDiag(&r.StaticOnly[i]))
		}
		for _, v := range r.DynamicOnly {
			aj.DynamicOnly = append(aj.DynamicOnly, shortViolation(v))
		}
		out.Apps = append(out.Apps, aj)
	}
	if reg != nil {
		out.Stats = reg.Snapshot()
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}
