package apps

import (
	"fmt"

	"repro/internal/mpi"
)

// SCF ports the Global Arrays self-consistent-field workload shape: a
// distributed symmetric matrix is assembled iteratively. Each rank owns a
// block of rows of the Fock and density matrices in its window; every SCF
// cycle it fetches density blocks from the other ranks with Get, contracts
// them with two-electron-like terms against its own block, accumulates
// contributions into the owners' Fock blocks, and the cycle ends with an
// Allreduce of the energy for the convergence test.
//
// Window layout per rank (float64): fock[rows*n] ++ density[rows*n].
// RMA-involved buffers are touched at row/block granularity (the
// instrumented accesses); the `scfscratch` work area never reaches an RMA
// call and carries fine-grained traffic only full instrumentation pays for.
func SCF(rowsPerRank, n, iters int) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		rows := rowsPerRank
		if rows < 1 || n < 1 {
			return fmt.Errorf("scf: empty block")
		}
		fockOff := uint64(0)
		densOff := uint64(rows * n * 8)
		win := p.AllocFloat64(2*rows*n, "scfwin")
		w := p.WinCreate(win, 8, p.CommWorld())

		// Initial density guess (block store).
		guess := make([]float64, rows*n)
		for i := range guess {
			guess[i] = 1.0/float64(n) + 0.001*float64((i+p.Rank())%5)
		}
		win.SetFloat64Slice(densOff, guess)

		remote := p.AllocFloat64(rows*n, "densblk")
		contrib := p.AllocFloat64(rows*n, "fockblk")
		scratch := p.AllocFloat64(n, "scfscratch")
		energy := p.AllocFloat64(1, "energy")
		etot := p.AllocFloat64(1, "etot")
		zero := make([]float64, rows*n)

		w.Fence(mpi.AssertNone)
		for it := 0; it < iters; it++ {
			win.SetFloat64Slice(fockOff, zero)
			w.Fence(mpi.AssertNone)

			for d := 0; d < p.Size(); d++ {
				peer := (p.Rank() + d) % p.Size()
				w.Get(remote, 0, rows*n, mpi.Float64, peer, uint64(rows*n), rows*n, mpi.Float64)
				w.Fence(mpi.AssertNone)

				// Contract: contrib[i][j] = Σ_k D_peer[i][k]·g(i,j,k) with
				// a cheap separable integral surrogate.
				out := make([]float64, rows*n)
				for i := 0; i < rows; i++ {
					drow := remote.Float64SliceAt(uint64(i*n)*8, n) // instrumented row load
					for j := 0; j < n; j++ {
						var s float64
						for k := 0; k < n; k += 4 {
							g := 1.0 / float64(1+((i+j+k)&7))
							s += drow[k] * g
						}
						out[i*n+j] = s
						// Fine-grained traffic on the irrelevant scratch.
						scratch.SetFloat64(uint64(j)*8, s)
					}
				}
				contrib.SetFloat64Slice(0, out) // instrumented block store
				w.Accumulate(contrib, 0, rows*n, mpi.Float64, peer, 0, rows*n, mpi.Float64, mpi.OpSum)
				w.Fence(mpi.AssertNone)
			}

			// Local energy contribution and new density from the Fock block.
			fock := win.Float64SliceAt(fockOff, rows*n)
			dens := win.Float64SliceAt(densOff, rows*n)
			var e float64
			for i := 0; i < rows*n; i++ {
				e += fock[i] * dens[i]
				dens[i] = 0.9*dens[i] + 0.1/(1.0+fock[i]*fock[i])
			}
			win.SetFloat64Slice(densOff, dens)
			energy.SetFloat64(0, e)
			p.Allreduce(p.CommWorld(), energy, 0, etot, 0, 1, mpi.Float64, mpi.OpSum)
			w.Fence(mpi.AssertNone)
		}
		w.Free()
		return nil
	}
}
