package apps

import (
	"fmt"

	"repro/internal/mpi"
)

// Lockopts ports the MPICH RMA test case of the paper's second case study
// (§VII-A-2, Figure 7; svn r10308). A master rank owns a counter window;
// worker ranks lock it, put new values and get old ones, while the master
// reads and writes the same cells with plain loads and stores.
//
// The real-world bug (evaluated with the lock changed from exclusive to
// shared, as in the paper): the master's local load/store of the window is
// concurrent with the workers' Put/Get — conflicting local load/store and
// remote Put/Get across processes, yielding nondeterministic results.
//
// The fixed variant separates the master's local accesses from the
// workers' epochs with barriers.
func Lockopts(buggy bool) func(p *mpi.Proc) error {
	return LockoptsWithLock(buggy, mpi.LockShared)
}

// LockoptsOriginal is the original MPICH bug with the exclusive lock; the
// paper detects it but reports only a warning, since the exclusive locks
// serialize the transfers.
func LockoptsOriginal() func(p *mpi.Proc) error {
	return LockoptsWithLock(true, mpi.LockExclusive)
}

// LockoptsWithLock selects the lock mode explicitly.
func LockoptsWithLock(buggy bool, lock mpi.LockType) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("lockopts: needs at least 2 ranks")
		}
		const master = 0
		counters := p.AllocInt32(p.Size(), "counters")
		w := p.WinCreate(counters, 4, p.CommWorld())
		p.Barrier(p.CommWorld())

		if p.Rank() == master {
			if buggy {
				// BUG (section A of Figure 7): local load/store of the
				// window while workers' epochs are open.
				for i := 0; i < p.Size(); i++ {
					v := counters.Int32At(uint64(i) * 4)
					counters.SetInt32(uint64(i)*4, v+1)
				}
				p.Barrier(p.CommWorld())
			} else {
				// Fixed: local access only after all workers are done.
				p.Barrier(p.CommWorld())
				for i := 0; i < p.Size(); i++ {
					v := counters.Int32At(uint64(i) * 4)
					counters.SetInt32(uint64(i)*4, v+1)
				}
			}
		} else {
			// Workers: put a fresh value into their slot and read back the
			// master's slot (section D of Figure 7).
			val := p.AllocInt32(1, "val")
			old := p.AllocInt32(1, "old")
			val.SetInt32(0, int32(1000+p.Rank()))
			w.Lock(lock, master)
			w.Put(val, 0, 1, mpi.Int32, master, uint64(p.Rank()), 1, mpi.Int32)
			w.Get(old, 0, 1, mpi.Int32, master, 0, 1, mpi.Int32)
			w.Unlock(master)
			p.Barrier(p.CommWorld())
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}
