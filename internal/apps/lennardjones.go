package apps

import (
	"fmt"

	"repro/internal/mpi"
)

// LennardJones ports the Global Arrays Lennard-Jones workload: particles
// are block-distributed; each iteration every rank fetches remote particle
// blocks with Get, computes pairwise LJ forces against its own block, and
// adds the partial forces back into the owners' windows with Accumulate —
// the canonical GA get/compute/accumulate pattern over ARMCI-MPI.
//
// Window layout per rank (float64): positions[3*local] ++ forces[3*local].
// Buffers that participate in one-sided communication (the window, the Get
// destination, the Accumulate source) are accessed at block granularity —
// the accesses ST-Analyzer selects for instrumentation. The private force
// scratch (`ownfrc`) never reaches an RMA call: selective instrumentation
// skips it, full instrumentation pays for its per-element traffic.
func LennardJones(particlesPerRank, iters int) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		n := particlesPerRank
		if n < 1 {
			return fmt.Errorf("lennardjones: empty block")
		}
		posOff := uint64(0)
		frcOff := uint64(3 * n * 8)
		win := p.AllocFloat64(6*n, "ga")
		w := p.WinCreate(win, 8, p.CommWorld())

		// Initialize positions on a jittered lattice (block store).
		pos := make([]float64, 3*n)
		for i := 0; i < n; i++ {
			pos[3*i] = float64(p.Rank()) + float64(i)*0.01
			pos[3*i+1] = float64(i%7) * 0.5
			pos[3*i+2] = float64(i%3) * 0.25
		}
		win.SetFloat64Slice(posOff, pos)

		remote := p.AllocFloat64(3*n, "remote")
		partial := p.AllocFloat64(3*n, "partial")
		ownfrc := p.AllocFloat64(3*n, "ownfrc")
		zero := make([]float64, 3*n)

		w.Fence(mpi.AssertNone)
		for it := 0; it < iters; it++ {
			own := make([]float64, 3*n)

			// Compute phase: fetch each peer block, compute pair forces,
			// accumulate the peer's share remotely.
			for d := 1; d < p.Size(); d++ {
				peer := (p.Rank() + d) % p.Size()
				w.Get(remote, 0, 3*n, mpi.Float64, peer, 0, 3*n, mpi.Float64)
				w.Fence(mpi.AssertNone) // completes the Get (and prior Accs)

				mine := win.Float64SliceAt(posOff, 3*n) // instrumented block load
				theirs := remote.Float64SliceAt(0, 3*n) // instrumented block load
				part := make([]float64, 3*n)
				for i := 0; i < n; i++ {
					xi, yi, zi := mine[3*i], mine[3*i+1], mine[3*i+2]
					var fx, fy, fz float64
					for j := 0; j < n; j++ {
						dx := xi - theirs[3*j]
						dy := yi - theirs[3*j+1]
						dz := zi - theirs[3*j+2]
						r2 := dx*dx + dy*dy + dz*dz + 0.01
						inv2 := 1.0 / r2
						inv6 := inv2 * inv2 * inv2
						f := 24 * inv6 * (2*inv6 - 1) * inv2
						fx += f * dx
						fy += f * dy
						fz += f * dz
						// Newton's third law: opposite share for particle j.
						part[3*j] -= f * dx
						part[3*j+1] -= f * dy
						part[3*j+2] -= f * dz
					}
					// Private per-particle accumulation: fine-grained
					// traffic on a buffer ST-Analyzer proves irrelevant.
					ownfrc.SetFloat64(uint64(3*i)*8, ownfrc.Float64At(uint64(3*i)*8)+fx)
					ownfrc.SetFloat64(uint64(3*i+1)*8, ownfrc.Float64At(uint64(3*i+1)*8)+fy)
					ownfrc.SetFloat64(uint64(3*i+2)*8, ownfrc.Float64At(uint64(3*i+2)*8)+fz)
				}
				partial.SetFloat64Slice(0, part) // instrumented block store
				w.Accumulate(partial, 0, 3*n, mpi.Float64, peer, uint64(3*n), 3*n, mpi.Float64, mpi.OpSum)
			}
			w.Fence(mpi.AssertNone) // completes the last Accumulate

			// Integration phase: no one-sided traffic in flight, so the
			// rank may read and rewrite its own window freely.
			copy(own, ownfrc.Float64SliceAt(0, 3*n))
			ownfrc.SetFloat64Slice(0, zero)
			frc := win.Float64SliceAt(frcOff, 3*n)
			cur := win.Float64SliceAt(posOff, 3*n)
			for i := 0; i < 3*n; i++ {
				cur[i] += 1e-6 * (frc[i] + own[i])
			}
			win.SetFloat64Slice(posOff, cur)
			win.SetFloat64Slice(frcOff, zero)
			w.Fence(mpi.AssertNone)
		}
		w.Free()
		return nil
	}
}
