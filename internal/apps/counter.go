package apps

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mpi"
)

// Counter is a dynamic load-balancing work queue in the style of ADLB (the
// library whose deferred-Put bug motivates the paper's introduction),
// rebuilt on MPI-3: rank 0 hosts a shared next-work-item counter, and every
// rank claims items until the queue is exhausted.
//
// The correct variant claims items with the atomic MPI_Fetch_and_op; the
// accumulate-family atomicity makes concurrent claims race-free, and
// MC-Checker's MPI-3 rules (paper §V extension) analyze it clean.
//
// The buggy variant emulates fetch-and-add with Get + local increment +
// Put — the classic lost-update race. MC-Checker flags the conflicting
// Get/Put pairs from different processes; at runtime, ranks observably
// claim duplicate work items.
func Counter(buggy bool, itemsPerRank int) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		w, buf := p.WinAllocate(8, 8, p.CommWorld(), "workqueue")
		if p.Rank() == 0 {
			buf.SetInt64(0, 0)
		}
		p.Barrier(p.CommWorld())

		claimed := make([]int64, 0, itemsPerRank)
		if buggy {
			old := p.Alloc(8, "old")
			next := p.Alloc(8, "next")
			for i := 0; i < itemsPerRank; i++ {
				w.Lock(mpi.LockShared, 0)
				w.Get(old, 0, 1, mpi.Int64, 0, 0, 1, mpi.Int64)
				w.Unlock(0)
				item := old.Int64At(0)
				next.SetInt64(0, item+1) // BUG: non-atomic read-modify-write
				w.Lock(mpi.LockShared, 0)
				w.Put(next, 0, 1, mpi.Int64, 0, 0, 1, mpi.Int64)
				w.Unlock(0)
				claimed = append(claimed, item)
			}
		} else {
			one := p.Alloc(8, "one")
			one.SetInt64(0, 1)
			old := p.Alloc(8, "old")
			for i := 0; i < itemsPerRank; i++ {
				w.LockAll()
				w.FetchAndOp(one, 0, old, 0, 0, 0, mpi.Int64, mpi.OpSum)
				w.UnlockAll()
				claimed = append(claimed, old.Int64At(0))
			}
		}
		p.Barrier(p.CommWorld())

		// Verify in the fixed variant: the counter equals the total number
		// of claims, and no two ranks claimed the same item.
		if !buggy {
			total := int64(p.Size() * itemsPerRank)
			if p.Rank() == 0 {
				if got := buf.Int64At(0); got != total {
					return fmt.Errorf("counter: final value %d, want %d", got, total)
				}
			}
			for _, item := range claimed {
				if item < 0 || item >= total {
					return fmt.Errorf("counter: claimed out-of-range item %d", item)
				}
			}
			markClaims(p.Rank(), claimed)
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}

// claimTracker detects duplicate claims across ranks within one process
// (test support; reset per run by CounterDuplicates).
var claimTracker struct {
	slots      []atomic.Int32
	duplicates atomic.Int64
}

// ResetClaimTracker prepares duplicate detection for a run claiming up to
// n items.
func ResetClaimTracker(n int) {
	claimTracker.slots = make([]atomic.Int32, n)
	claimTracker.duplicates.Store(0)
}

// CounterDuplicates returns the number of duplicate claims observed since
// the last reset.
func CounterDuplicates() int64 { return claimTracker.duplicates.Load() }

func markClaims(rank int, items []int64) {
	if claimTracker.slots == nil {
		return
	}
	for _, it := range items {
		if it >= 0 && int(it) < len(claimTracker.slots) {
			if claimTracker.slots[it].Add(1) > 1 {
				claimTracker.duplicates.Add(1)
			}
		}
	}
}
