package apps

import (
	"fmt"

	"repro/internal/mpi"
)

// Emulate is a small distributed-shared-memory emulation: rank 0 is a
// client reading and updating cells of a shared table that lives in rank
// 1's window, using lock/unlock passive-target epochs.
//
// The real-world bug (Table II, "emulate", 2 processes): the client issues
// an MPI_Get for a table cell and dereferences the destination buffer
// before closing the epoch; because the Get is nonblocking, the load reads
// whatever the buffer held before — conflicting MPI_Get and local
// load/store within an epoch. The fixed variant moves the accesses after
// the unlock.
func Emulate(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("emulate: needs at least 2 ranks")
		}
		const cells = 8
		table := p.AllocFloat64(cells, "table")
		if p.Rank() == 1 {
			for i := 0; i < cells; i++ {
				table.SetFloat64(uint64(i)*8, float64(100+i))
			}
		}
		w := p.WinCreate(table, 8, p.CommWorld())
		p.Barrier(p.CommWorld())

		var sum float64
		if p.Rank() == 0 {
			cache := p.AllocFloat64(1, "cache")
			for i := 0; i < cells; i++ {
				w.Lock(mpi.LockShared, 1)
				w.Get(cache, 0, 1, mpi.Float64, 1, uint64(i), 1, mpi.Float64)
				if buggy {
					// BUG: read the cache line inside the epoch; the Get
					// has not completed.
					sum += cache.Float64At(0)
					w.Unlock(1)
				} else {
					w.Unlock(1)
					sum += cache.Float64At(0)
				}
			}
			want := 0.0
			for i := 0; i < cells; i++ {
				want += float64(100 + i)
			}
			if !buggy && sum != want {
				return fmt.Errorf("emulate: read %v, want %v", sum, want)
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}
