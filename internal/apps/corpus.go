package apps

import (
	"fmt"

	"repro/internal/mpi"
)

// This file is the planted-bug corpus: eight small MPI-RMA applications,
// each modeling one memory-consistency error pattern documented in the
// one-sided literature (the MPI standard's semantics chapter, the
// MC-Checker paper's motivating bugs, and the MPI-3 RMA errata). Every
// app has a buggy variant that plants exactly one bug and a fixed
// variant that repairs it with the idiomatic synchronization, so the
// corpus doubles as ground truth for the differential engine scoring in
// internal/experiments: every buggy variant must be caught by at least
// one engine, and every fixed variant must analyze clean.

// LockallFlush models the MPI-3 passive-target flush protocol: a rank
// gathers one shard from every peer under a single lock-all epoch. A Get
// completes at the epoch's closing synchronization or at an intervening
// flush — not at the call. The buggy variant reduces over the gathered
// snapshot before MPI_Win_flush_all, reading origin buffers of still
// pending Gets; the fixed variant flushes first.
func LockallFlush(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("lockall-flush needs >= 2 ranks")
		}
		shards := p.AllocFloat64(p.Size(), "shards")
		w := p.WinCreate(shards, 8, p.CommWorld())
		shards.SetFloat64(uint64(p.Rank())*8, float64(p.Rank()+1))
		p.Barrier(p.CommWorld())

		snap := p.AllocFloat64(p.Size(), "snap")
		sum := 0.0
		w.LockAll()
		for t := 0; t < p.Size(); t++ {
			if t != p.Rank() {
				w.Get(snap, uint64(t)*8, 1, mpi.Float64, t, uint64(t), 1, mpi.Float64)
			}
		}
		if buggy {
			// BUG: origin buffers still pending until the flush
			for t := 0; t < p.Size(); t++ {
				if t != p.Rank() {
					sum += snap.Float64At(uint64(t) * 8)
				}
			}
			w.FlushAll()
		} else {
			w.FlushAll()
			for t := 0; t < p.Size(); t++ {
				if t != p.Rank() {
					sum += snap.Float64At(uint64(t) * 8)
				}
			}
		}
		w.UnlockAll()
		p.Barrier(p.CommWorld())
		w.Free()

		if !buggy {
			want := 0.0
			for t := 0; t < p.Size(); t++ {
				if t != p.Rank() {
					want += float64(t + 1)
				}
			}
			if sum != want {
				return fmt.Errorf("lockall-flush: reduced %v, want %v", sum, want)
			}
		}
		return nil
	}
}

// AllocAlias models direct stores through the buffer returned by
// MPI_Win_allocate (the aliasing idiom MPI_Win_allocate_shared
// encourages): the owner updates its pool in place while a peer's
// passive-target Put to the same cell is still in flight. The fixed
// variant defers the local update past the barrier that orders it after
// the remote epoch.
func AllocAlias(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("alloc-alias needs >= 2 ranks")
		}
		const consumer = 1
		w, pool := p.WinAllocate(4*8, 8, p.CommWorld(), "pool")
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			seed := p.AllocFloat64(1, "poolseed")
			seed.SetFloat64(0, 42)
			w.Lock(mpi.LockShared, consumer)
			w.Put(seed, 0, 1, mpi.Float64, consumer, 0, 1, mpi.Float64)
			w.Unlock(consumer)
			p.Barrier(p.CommWorld())
		} else if p.Rank() == consumer {
			if buggy {
				pool.SetFloat64(0, 7) // BUG: store races the in-flight Put
				p.Barrier(p.CommWorld())
			} else {
				p.Barrier(p.CommWorld())
				if got := pool.Float64At(0); got != 42 {
					return fmt.Errorf("alloc-alias: pool holds %v before overwrite, want 42", got)
				}
				pool.SetFloat64(0, 7)
			}
		} else {
			p.Barrier(p.CommWorld())
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}

// PSCWUpdate models the general-active-target exposure rule: between
// MPI_Win_post and MPI_Win_wait the target has ceded its window to the
// access group, and local stores to exposed memory race the incoming
// Put. The fixed variant performs the local update only after the wait
// (and the barrier that separates it from the origin's epoch).
func PSCWUpdate(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("pscw-update needs >= 2 ranks")
		}
		tile := p.AllocFloat64(4, "tile")
		w := p.WinCreate(tile, 8, p.CommWorld())
		if p.Rank() == 0 {
			w.Post(mpi.NewGroup([]int{1}))
			if buggy {
				tile.SetFloat64(0, 1) // BUG: store inside the exposure epoch
			}
			w.WaitEpoch()
			p.Barrier(p.CommWorld())
			if !buggy {
				tile.SetFloat64(0, tile.Float64At(0)+1)
				if got := tile.Float64At(0); got != 4 {
					return fmt.Errorf("pscw-update: tile holds %v, want 4", got)
				}
			}
		} else if p.Rank() == 1 {
			fresh := p.AllocFloat64(1, "tilesrc")
			fresh.SetFloat64(0, 3)
			w.Start(mpi.NewGroup([]int{0}))
			w.Put(fresh, 0, 1, mpi.Float64, 0, 0, 1, mpi.Float64)
			w.Complete()
			p.Barrier(p.CommWorld())
		} else {
			p.Barrier(p.CommWorld())
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}

// RputCompletion models request-based RMA completion misuse: waiting on
// an MPI_Rput request (here MPI_Win_flush_local) completes the operation
// locally — the origin buffer is reusable — but says nothing about the
// target. Streaming a second update to the same target cell on the
// strength of local completion leaves two writes racing within one
// epoch. The fixed variant uses MPI_Win_flush, which also completes the
// transfer at the target.
func RputCompletion(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("rput-completion needs >= 2 ranks")
		}
		slab := p.AllocFloat64(2, "slab")
		w := p.WinCreate(slab, 8, p.CommWorld())
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			chunk := p.AllocFloat64(1, "chunk")
			w.Lock(mpi.LockShared, 1)
			chunk.SetFloat64(0, 1)
			w.Put(chunk, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
			if buggy {
				w.FlushLocal(1) // BUG: local completion only; target still pending
			} else {
				w.Flush(1)
			}
			chunk.SetFloat64(0, 2) // legal either way: the origin buffer is done
			w.Put(chunk, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
			w.Unlock(1)
		}
		p.Barrier(p.CommWorld())
		if !buggy && p.Rank() == 1 {
			if got := slab.Float64At(0); got != 2 {
				return fmt.Errorf("rput-completion: slab holds %v, want 2", got)
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}

// StrideOverlap models derived-datatype footprint overlap: two vector
// Puts scatter columns into a remote board within one fence epoch. The
// buggy variant lands both on the same base column — every fourth word
// collides; the fixed variant shifts the second Put to the adjacent
// column, interleaving the strided footprints disjointly.
func StrideOverlap(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("stride-overlap needs >= 2 ranks")
		}
		const rows, cols = 4, 4
		board := p.AllocFloat64(rows*cols, "board")
		w := p.WinCreate(board, 8, p.CommWorld())
		col := p.TypeVector(rows, 1, cols, mpi.Float64)
		cola := p.AllocFloat64(rows*cols, "cola")
		colb := p.AllocFloat64(rows*cols, "colb")
		if p.Rank() == 0 {
			for i := 0; i < rows; i++ {
				cola.SetFloat64(uint64(i*cols)*8, float64(i))
				colb.SetFloat64(uint64(i*cols)*8, float64(10+i))
			}
		}
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			w.Put(cola, 0, 1, col, 1, 0, 1, col)
			if buggy {
				w.Put(colb, 0, 1, col, 1, 0, 1, col) // BUG: same base column
			} else {
				w.Put(colb, 0, 1, col, 1, 1, 1, col)
			}
		}
		w.Fence(mpi.AssertNone)
		p.Barrier(p.CommWorld())
		if !buggy && p.Rank() == 1 {
			if a, b := board.Float64At(1*cols*8), board.Float64At((1*cols+1)*8); a != 1 || b != 11 {
				return fmt.Errorf("stride-overlap: row 1 holds (%v, %v), want (1, 11)", a, b)
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}

// FenceOverlap models the fence-epoch span-overlap rule: two origins
// update one target's ledger in the same fence epoch. Their spans abut
// in the fixed variant but share a word in the buggy one — a conflict no
// single process can see locally, caught only by cross-process analysis.
func FenceOverlap(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 3 {
			return fmt.Errorf("fence-overlap needs >= 3 ranks")
		}
		ledger := p.AllocFloat64(4, "ledger")
		w := p.WinCreate(ledger, 8, p.CommWorld())
		debit := p.AllocFloat64(2, "debit")
		credit := p.AllocFloat64(2, "credit")
		debit.SetFloat64(0, 1)
		debit.SetFloat64(8, 2)
		credit.SetFloat64(0, 3)
		credit.SetFloat64(8, 4)
		w.Fence(mpi.AssertNone)
		if p.Rank() == 1 {
			w.Put(debit, 0, 2, mpi.Float64, 0, 0, 2, mpi.Float64)
		}
		if p.Rank() == 2 {
			if buggy {
				w.Put(credit, 0, 2, mpi.Float64, 0, 1, 2, mpi.Float64) // BUG: overlaps word 1
			} else {
				w.Put(credit, 0, 2, mpi.Float64, 0, 2, 2, mpi.Float64)
			}
		}
		w.Fence(mpi.AssertNone)
		if !buggy && p.Rank() == 0 {
			for i, want := range []float64{1, 2, 3, 4} {
				if got := ledger.Float64At(uint64(i) * 8); got != want {
					return fmt.Errorf("fence-overlap: ledger[%d] = %v, want %v", i, got, want)
				}
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}

// GetaccMix models mixed-atomicity access to a hot cell: one rank
// fetch-and-adds into a shared counter while another blind-writes a
// correction with plain MPI_Put. Accumulate-family operations are atomic
// only against same-op accumulates; the Put breaks the family and races
// the read-modify-write. The fixed variant applies the correction with
// MPI_Accumulate(MPI_SUM) — the same reduction the fetch-and-add uses,
// which MPI permits to overlap.
func GetaccMix(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 3 {
			return fmt.Errorf("getacc-mix needs >= 3 ranks")
		}
		hot := p.AllocFloat64(2, "hotcell")
		if p.Rank() == 0 {
			hot.SetFloat64(0, 10)
		}
		w := p.WinCreate(hot, 8, p.CommWorld())
		p.Barrier(p.CommWorld())
		if p.Rank() == 1 {
			bump := p.AllocFloat64(1, "bump")
			prior := p.AllocFloat64(1, "prior")
			bump.SetFloat64(0, 1)
			w.LockAll()
			w.FetchAndOp(bump, 0, prior, 0, 0, 0, mpi.Float64, mpi.OpSum)
			w.UnlockAll()
		}
		if p.Rank() == 2 {
			reset := p.AllocFloat64(1, "reset")
			reset.SetFloat64(0, -10)
			w.LockAll()
			if buggy {
				w.Put(reset, 0, 1, mpi.Float64, 0, 0, 1, mpi.Float64) // BUG: non-atomic overwrite
			} else {
				w.Accumulate(reset, 0, 1, mpi.Float64, 0, 0, 1, mpi.Float64, mpi.OpSum)
			}
			w.UnlockAll()
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}

// PollFlag models unsynchronized flag polling: a consumer reads a ready
// flag directly out of its own window while the producer's
// passive-target Put may still be applying. The fixed variant reads the
// flag only after the barrier that closes the producer's epoch.
func PollFlag(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("poll-flag needs >= 2 ranks")
		}
		mailbox := p.AllocFloat64(2, "mailbox")
		w := p.WinCreate(mailbox, 8, p.CommWorld())
		if p.Rank() == 0 {
			flag := p.AllocFloat64(1, "flagval")
			flag.SetFloat64(0, 1)
			w.Lock(mpi.LockShared, 1)
			w.Put(flag, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
			w.Unlock(1)
			p.Barrier(p.CommWorld())
		} else if p.Rank() == 1 {
			if buggy {
				_ = mailbox.Float64At(0) // BUG: unsynchronized poll of the flag
				p.Barrier(p.CommWorld())
			} else {
				p.Barrier(p.CommWorld())
				if got := mailbox.Float64At(0); got != 1 {
					return fmt.Errorf("poll-flag: flag reads %v after sync, want 1", got)
				}
			}
		} else {
			p.Barrier(p.CommWorld())
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}
