package apps

import (
	"fmt"

	"repro/internal/mpi"
)

// Boltzmann ports the Global Arrays lattice-Boltzmann workload shape: a
// 1-D D1Q3 lattice (three velocity populations per cell) decomposed in
// slabs. Each time step performs a local collision (BGK relaxation), a
// streaming step within the slab, and a halo exchange of the boundary
// populations by Put into the neighbours' windows under fences.
//
// Window layout per rank: 3 populations × (cells+2 halo) float64s, stored
// population-major: f[q][x]. Window rows are loaded and stored as blocks
// (the instrumented accesses); the per-cell macroscopic moments go to an
// RMA-irrelevant diagnostic buffer, fine-grained traffic only full
// instrumentation observes.
func Boltzmann(cellsPerRank, steps int) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		cells := cellsPerRank
		if cells < 2 {
			return fmt.Errorf("boltzmann: slab too small")
		}
		stride := cells + 2 // halo cells at 0 and cells+1
		rowOff := func(q int) uint64 { return uint64(q*stride) * 8 }
		win := p.AllocFloat64(3*stride, "lattice")
		w := p.WinCreate(win, 8, p.CommWorld())
		moments := p.AllocFloat64(2*stride, "moments") // rho, u diagnostics

		// Equilibrium init with a density bump on rank 0.
		weights := [3]float64{4.0 / 6, 1.0 / 6, 1.0 / 6}
		for q := 0; q < 3; q++ {
			row := make([]float64, stride)
			for x := 1; x <= cells; x++ {
				rho := 1.0
				if p.Rank() == 0 && x == cells/2 {
					rho = 1.2
				}
				row[x] = weights[q] * rho
			}
			win.SetFloat64Slice(rowOff(q), row)
		}

		left := (p.Rank() - 1 + p.Size()) % p.Size()
		right := (p.Rank() + 1) % p.Size()
		const tau = 0.8

		w.Fence(mpi.AssertNone)
		for s := 0; s < steps; s++ {
			// Collision: BGK relaxation toward local equilibrium.
			f0 := win.Float64SliceAt(rowOff(0), stride)
			f1 := win.Float64SliceAt(rowOff(1), stride)
			f2 := win.Float64SliceAt(rowOff(2), stride)
			for x := 1; x <= cells; x++ {
				rho := f0[x] + f1[x] + f2[x]
				u := (f1[x] - f2[x]) / rho
				eq0 := weights[0] * rho * (1 - 1.5*u*u)
				eq1 := weights[1] * rho * (1 + 3*u + 3*u*u)
				eq2 := weights[2] * rho * (1 - 3*u + 3*u*u)
				f0[x] -= (f0[x] - eq0) / tau
				f1[x] -= (f1[x] - eq1) / tau
				f2[x] -= (f2[x] - eq2) / tau
				// Per-cell diagnostics on the RMA-irrelevant buffer.
				moments.SetFloat64(uint64(x)*8, rho)
				moments.SetFloat64(uint64(stride+x)*8, u)
			}
			win.SetFloat64Slice(rowOff(0), f0)
			win.SetFloat64Slice(rowOff(1), f1)
			win.SetFloat64Slice(rowOff(2), f2)

			// Halo exchange: outgoing boundary populations to neighbours.
			// f1 streams right: my cell `cells` value → right's halo 0.
			// f2 streams left: my cell 1 value → left's halo cells+1.
			w.Fence(mpi.AssertNone)
			w.Put(win, rowOff(1)+uint64(cells)*8, 1, mpi.Float64, right, uint64(1*stride+0), 1, mpi.Float64)
			w.Put(win, rowOff(2)+1*8, 1, mpi.Float64, left, uint64(2*stride+cells+1), 1, mpi.Float64)
			w.Fence(mpi.AssertNone)

			// Streaming: shift f1 right, f2 left, consuming the halos.
			s1 := win.Float64SliceAt(rowOff(1), stride)
			s2 := win.Float64SliceAt(rowOff(2), stride)
			for x := cells; x >= 1; x-- {
				s1[x] = s1[x-1]
			}
			for x := 1; x <= cells; x++ {
				s2[x] = s2[x+1]
			}
			win.SetFloat64Slice(rowOff(1), s1)
			win.SetFloat64Slice(rowOff(2), s2)
			w.Fence(mpi.AssertNone)
		}
		w.Free()
		return nil
	}
}
