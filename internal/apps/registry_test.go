package apps

import (
	"fmt"
	"io/fs"
	"strings"
	"testing"
)

// TestRegistryInvariants pins the structural contract every harness in
// the repo assumes of the bug-case registry: names are unique, every
// planted bug ships a fixed variant, metadata is complete, and every
// declared StaticRoot is a real function in the embedded sources.
func TestRegistryInvariants(t *testing.T) {
	cases := AllCases()
	if len(cases) == 0 {
		t.Fatal("empty registry")
	}

	// Collect "func Name(" declarations from the embedded package source
	// so StaticRoot references cannot silently dangle.
	funcs := map[string]bool{}
	err := fs.WalkDir(SourceFS(), ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := fs.ReadFile(SourceFS(), path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(src), "\n") {
			if name, ok := strings.CutPrefix(line, "func "); ok {
				if i := strings.IndexByte(name, '('); i > 0 {
					funcs[strings.TrimSpace(name[:i])] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	seen := map[string]bool{}
	for _, bc := range cases {
		if bc.Name == "" {
			t.Error("registry case with empty name")
			continue
		}
		if seen[bc.Name] {
			t.Errorf("%s: duplicate case name", bc.Name)
		}
		seen[bc.Name] = true
		if bc.Buggy == nil {
			t.Errorf("%s: nil Buggy variant", bc.Name)
		}
		if bc.Fixed == nil {
			t.Errorf("%s: nil Fixed variant — every planted bug needs its repair", bc.Name)
		}
		if bc.Ranks < 2 {
			t.Errorf("%s: one-sided bugs need at least 2 ranks, got %d", bc.Name, bc.Ranks)
		}
		switch bc.ErrorLocation {
		case "within an epoch", "across processes":
		default:
			t.Errorf("%s: bad ErrorLocation %q", bc.Name, bc.ErrorLocation)
		}
		if bc.RootCause == "" || bc.Symptom == "" || bc.Origin == "" {
			t.Errorf("%s: incomplete metadata", bc.Name)
		}
		if len(bc.RelevantBuffers) == 0 {
			t.Errorf("%s: empty RelevantBuffers (selective instrumentation would trace nothing)", bc.Name)
		}
		if bc.StaticRoot == "" {
			t.Errorf("%s: no StaticRoot", bc.Name)
		} else if !funcs[bc.StaticRoot] {
			t.Errorf("%s: StaticRoot %q is not a function in the embedded sources", bc.Name, bc.StaticRoot)
		}
	}

	// The corpus must stay in sync with the expected-kind table both ways.
	for name := range expectedStaticKind {
		if !seen[name] {
			t.Errorf("expectedStaticKind names %q, which is not a registry case", name)
		}
	}
}

// TestRegistryBufferNamesUnique: within one case the declared relevant
// buffers are distinct (duplicates would double-count in coverage math).
func TestRegistryBufferNamesUnique(t *testing.T) {
	for _, bc := range AllCases() {
		names := map[string]bool{}
		for _, n := range bc.RelevantBuffers {
			if names[n] {
				t.Errorf("%s: duplicate relevant buffer %q", bc.Name, n)
			}
			names[n] = true
		}
	}
}

func ExampleAllCases() {
	fmt.Println(len(AllCases()) >= 16)
	// Output: true
}
