package apps

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// runChecked executes a program under the profiler and analyzes the trace.
func runChecked(t *testing.T, ranks int, body func(p *mpi.Proc) error, relevant []string) *core.Report {
	t.Helper()
	sink := trace.NewMemorySink()
	var rel profiler.Relevance
	if relevant != nil {
		rel = profiler.FromNames(relevant)
	}
	pr := profiler.New(sink, rel)
	if err := mpi.Run(ranks, mpi.Options{Hook: pr}, body); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	rep, err := core.Analyze(sink.Set())
	if err != nil {
		t.Fatalf("analysis failed: %v", err)
	}
	return rep
}

// testRanks shrinks the paper's 64-rank cases for unit testing; the bench
// harness runs them at full scale.
func testRanks(paper int) int {
	if paper > 8 {
		return 8
	}
	return paper
}

// TestTableII is the headline detection experiment: every buggy variant is
// detected with the paper's error location; every fixed variant is clean.
func TestTableII(t *testing.T) {
	for _, bc := range BugCases() {
		bc := bc
		t.Run(bc.Name+"/buggy", func(t *testing.T) {
			rep := runChecked(t, testRanks(bc.Ranks), bc.Buggy, bc.RelevantBuffers)
			if len(rep.Errors()) == 0 {
				t.Fatalf("bug not detected:\n%s", rep)
			}
			wantClass := core.WithinEpoch
			if bc.ErrorLocation == "across processes" {
				wantClass = core.AcrossProcesses
			}
			found := false
			for _, v := range rep.Errors() {
				if v.Class == wantClass {
					found = true
					// Diagnostics must carry real locations.
					if v.A.Loc() == "?" || v.B.Loc() == "?" {
						t.Errorf("missing diagnostics: %v", v)
					}
				}
			}
			if !found {
				t.Errorf("no %v violation:\n%s", wantClass, rep)
			}
		})
		t.Run(bc.Name+"/fixed", func(t *testing.T) {
			rep := runChecked(t, testRanks(bc.Ranks), bc.Fixed, bc.RelevantBuffers)
			if len(rep.Violations) != 0 {
				t.Errorf("fixed variant flagged:\n%s", rep)
			}
		})
	}
}

// TestLockoptsOriginalWarning: the original exclusive-lock bug is reported
// as a warning only (paper §VII-A-2).
func TestLockoptsOriginalWarning(t *testing.T) {
	rep := runChecked(t, 8, LockoptsOriginal(), nil)
	if len(rep.Warnings()) == 0 {
		t.Fatalf("expected a warning:\n%s", rep)
	}
}

// TestBugsManifest: the buggy programs do not merely violate the model —
// they compute wrong results under the simulator's legal deferred
// completion, while the fixed variants compute right ones. (The fixed
// variants carry internal assertions; buggy ones would fail them.)
func TestBugsManifest(t *testing.T) {
	// emulate: buggy sum reads stale zeros. Run buggy raw (no profiler)
	// and confirm it completes (detection is separate) — the internal
	// assertion is only active in fixed mode precisely because buggy
	// results are wrong.
	for _, bc := range BugCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			if err := mpi.Run(testRanks(bc.Ranks), mpi.Options{}, bc.Buggy); err != nil {
				t.Fatalf("buggy %s did not complete: %v", bc.Name, err)
			}
			if err := mpi.Run(testRanks(bc.Ranks), mpi.Options{}, bc.Fixed); err != nil {
				t.Fatalf("fixed %s failed its assertions: %v", bc.Name, err)
			}
		})
	}
}

// TestWorkloadsClean: the overhead-suite applications are race-free — the
// checker must not report false positives on them.
func TestWorkloadsClean(t *testing.T) {
	for _, wl := range Workloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			rep := runChecked(t, 4, wl.Body(0.25), wl.RelevantBuffers)
			if len(rep.Violations) != 0 {
				t.Errorf("false positive on %s:\n%s", wl.Name, rep)
			}
		})
	}
}

// TestWorkloadsRunAtScaleRanks: the workloads run at larger rank counts
// (smoke test for the Figure 8 configuration).
func TestWorkloadsRunAtScaleRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, wl := range Workloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			if err := mpi.Run(16, mpi.Options{}, wl.Body(0.25)); err != nil {
				t.Fatalf("%s failed at 16 ranks: %v", wl.Name, err)
			}
		})
	}
}

// TestSyncCheckerComparisonOnSuite: the SyncChecker baseline finds the
// within-epoch bugs but misses the across-process ones (paper §VII).
func TestSyncCheckerComparisonOnSuite(t *testing.T) {
	for _, bc := range BugCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			sink := trace.NewMemorySink()
			pr := profiler.New(sink, nil)
			if err := mpi.Run(testRanks(bc.Ranks), mpi.Options{Hook: pr}, bc.Buggy); err != nil {
				t.Fatal(err)
			}
			rep, err := core.AnalyzeWith(sink.Set(), core.Options{IntraEpoch: true, CrossProcess: false})
			if err != nil {
				t.Fatal(err)
			}
			withinEpochBug := bc.ErrorLocation == "within an epoch"
			if withinEpochBug && len(rep.Errors()) == 0 {
				t.Errorf("SyncChecker baseline should catch %s", bc.Name)
			}
			if !withinEpochBug && len(rep.Errors()) != 0 {
				t.Errorf("SyncChecker baseline should miss %s:\n%s", bc.Name, rep)
			}
		})
	}
}

// TestRelevantBuffersSufficient: selective instrumentation with the
// declared ST-Analyzer sets detects the same bugs as full instrumentation.
func TestRelevantBuffersSufficient(t *testing.T) {
	for _, bc := range BugCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			full := runChecked(t, testRanks(bc.Ranks), bc.Buggy, nil)
			sel := runChecked(t, testRanks(bc.Ranks), bc.Buggy, bc.RelevantBuffers)
			if len(sel.Errors()) == 0 || len(full.Errors()) == 0 {
				t.Fatalf("detection failed: full=%d selective=%d", len(full.Errors()), len(sel.Errors()))
			}
			if len(sel.Errors()) != len(full.Errors()) {
				t.Errorf("selective instrumentation lost errors: full=%d selective=%d\nfull:\n%s\nsel:\n%s",
					len(full.Errors()), len(sel.Errors()), full, sel)
			}
		})
	}
}

func TestBugCaseMetadataComplete(t *testing.T) {
	cases := BugCases()
	if len(cases) != 5 {
		t.Fatalf("Table II has 5 rows, got %d", len(cases))
	}
	real, injected := 0, 0
	for _, bc := range cases {
		if bc.Name == "" || bc.RootCause == "" || bc.Symptom == "" || bc.ErrorLocation == "" {
			t.Errorf("%s: incomplete metadata", bc.Name)
		}
		switch bc.Origin {
		case "real-world":
			real++
		case "injected":
			injected++
		default:
			t.Errorf("%s: bad origin %q", bc.Name, bc.Origin)
		}
		if bc.Buggy == nil || bc.Fixed == nil || len(bc.RelevantBuffers) == 0 {
			t.Errorf("%s: missing variants or buffer list", bc.Name)
		}
	}
	if real != 3 || injected != 2 {
		t.Errorf("paper has 3 real + 2 injected, got %d + %d", real, injected)
	}
	if len(Workloads()) != 5 {
		t.Errorf("Figure 8 has 5 applications")
	}
}

// TestBTBroadcastStaleSpin: the buggy BT-broadcast actually spins on the
// stale flag (bounded), demonstrating the paper's infinite-loop symptom.
func TestBTBroadcastStaleSpin(t *testing.T) {
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	if err := mpi.Run(2, mpi.Options{Hook: pr}, BTBroadcast(true)); err != nil {
		t.Fatal(err)
	}
	// The buggy run must show SpinBound loads of `check` on rank 1.
	loads := 0
	for _, ev := range sink.Set().Traces[1].Events {
		if ev.Kind == trace.KindLoad && strings.HasSuffix(ev.File, "btbroadcast.go") {
			loads++
		}
	}
	if loads < SpinBound {
		t.Errorf("spin loop executed %d loads, want >= %d", loads, SpinBound)
	}
}
