package apps

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/stanalyzer"
)

// TestStaticAnalysisCoversDeclaredSets runs ST-Analyzer over this package's
// real source and checks that its conservative result covers every buffer
// the registry declares relevant — the soundness property of §IV-A ("it
// will not fail to mark those that need to be instrumented").
func TestStaticAnalysisCoversDeclaredSets(t *testing.T) {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate source")
	}
	dir := filepath.Dir(thisFile)
	rep, err := stanalyzer.AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, name := range rep.BufferNames() {
		found[name] = true
	}
	check := func(app string, buffers []string) {
		for _, b := range buffers {
			if !found[b] {
				t.Errorf("%s: ST-Analyzer missed relevant buffer %q (found %v)", app, b, rep.BufferNames())
			}
		}
	}
	for _, bc := range BugCases() {
		check(bc.Name, bc.RelevantBuffers)
	}
	for _, bc := range ExtensionCases() {
		check(bc.Name, bc.RelevantBuffers)
	}
	for _, bc := range ScheduleCases() {
		check(bc.Name, bc.RelevantBuffers)
	}
	for _, wl := range Workloads() {
		check(wl.Name, wl.RelevantBuffers)
	}
	// And selectivity: buffers that never reach RMA calls stay unmarked.
	for _, irrelevant := range []string{"scfscratch", "moments", "ownfrc"} {
		if found[irrelevant] {
			t.Errorf("ST-Analyzer over-marked %q, defeating selective instrumentation", irrelevant)
		}
	}
}
