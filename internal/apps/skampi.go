package apps

import (
	"repro/internal/mpi"
)

// SKaMPI ports the shape of the SKaMPI benchmark suite: a battery of
// communication micro-benchmarks — one-sided put/get/accumulate at
// increasing message sizes under both fence and lock synchronization,
// point-to-point echo, and collectives — each repeated a fixed number of
// times. It is communication-dominated with little local computation, the
// lightest profiling load of the overhead suite.
func SKaMPI(repeats int) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		sizes := []int{1, 8, 64, 256} // float64 counts
		maxN := sizes[len(sizes)-1]
		win := p.AllocFloat64(maxN, "skwin")
		w := p.WinCreate(win, 8, p.CommWorld())
		buf := p.AllocFloat64(maxN, "skbuf")
		right := (p.Rank() + 1) % p.Size()

		for r := 0; r < repeats; r++ {
			// Pattern 1: fence / put.
			for _, n := range sizes {
				w.Fence(mpi.AssertNone)
				buf.SetFloat64(0, float64(r))
				w.Put(buf, 0, n, mpi.Float64, right, 0, n, mpi.Float64)
				w.Fence(mpi.AssertNone)
			}
			// Pattern 2: fence / get.
			for _, n := range sizes {
				w.Fence(mpi.AssertNone)
				w.Get(buf, 0, n, mpi.Float64, right, 0, n, mpi.Float64)
				w.Fence(mpi.AssertNone)
				_ = buf.Float64At(0)
			}
			// Pattern 3: lock / put (each rank targets its right neighbour,
			// disjoint slots to stay race-free).
			for _, n := range sizes {
				w.Lock(mpi.LockShared, right)
				w.Put(buf, 0, n, mpi.Float64, right, 0, n, mpi.Float64)
				w.Unlock(right)
				p.Barrier(p.CommWorld())
			}
			// Pattern 4: accumulate (same op everywhere: race-free by the
			// MPI accumulate exception).
			w.Fence(mpi.AssertNone)
			w.Accumulate(buf, 0, maxN, mpi.Float64, right, 0, maxN, mpi.Float64, mpi.OpSum)
			w.Fence(mpi.AssertNone)

			// Pattern 5: point-to-point echo around the ring.
			p.Sendrecv(p.CommWorld(),
				buf, 0, 8, mpi.Float64, right, 7,
				buf, 0, 8, mpi.Float64, (p.Rank()-1+p.Size())%p.Size(), 7)

			// Pattern 6: collectives.
			p.Bcast(p.CommWorld(), buf, 0, 8, mpi.Float64, 0)
			p.Allreduce(p.CommWorld(), buf, 0, buf, 64, 4, mpi.Float64, mpi.OpMax)
			p.Barrier(p.CommWorld())
		}
		w.Free()
		return nil
	}
}
