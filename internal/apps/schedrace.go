package apps

import (
	"fmt"

	"repro/internal/mpi"
)

// SchedRace is the planted interleaving-dependent bug for the schedule
// explorer (internal/explore): a memory consistency error that a single
// default-schedule run of MC-Checker cannot see, because the erroneous
// code path is reached only under a minority of legal RMA completion
// orders.
//
// Ranks 0 and 1 race an atomic swap (MPI_Fetch_and_op with MPI_REPLACE)
// into the same word of rank 2's window inside one fence epoch. That is
// legal MPI — same-operation fetching atomics may overlap (paper §II-A,
// extended to MPI-3 in §V) — so the analyzer rightly stays quiet, but the
// word's final value depends on which swap completes last. The
// simulator's baseline applies completions in rank order, so rank 1's
// value (2) always wins a plain run. After the fence, rank 2 inspects
// the word — a mild but common "the race always goes my way in testing"
// assumption — and only when rank 0's value (1) won does it take the
// recovery path: issue a Get probing rank 0's window and, in the buggy
// variant, overwrite the probe buffer before the epoch closes. That is a
// classic conflicting local store on the origin buffer of a pending
// MPI_Get (paper Figure 1), but it manifests only when a schedule flips
// the swap completion order: seed-sweep reordering, rank completion
// priorities, a PCT change point, or a single delay step all expose it,
// and `mcchecker explore` shrinks any of those schedules back to a
// one-clause reproducer.
//
// The fixed variant takes the same data-dependent path but touches the
// probe buffer only after the closing fence, so it is clean under every
// legal schedule.
func SchedRace(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 3 {
			return fmt.Errorf("schedrace: needs at least 3 ranks")
		}
		sched := p.AllocInt32(1, "sched")
		w := p.WinCreate(sched, 4, p.CommWorld())
		probe := p.AllocInt32(1, "probe")
		src := p.AllocInt32(1, "src")
		fetched := p.AllocInt32(1, "fetched")
		src.SetInt32(0, int32(p.Rank()+1))

		w.Fence(mpi.AssertNone)
		if p.Rank() < 2 {
			// The legal race: both ranks atomically swap their value into
			// rank 2's word in the same epoch. MPI leaves the completion
			// order undefined.
			w.FetchAndOp(src, 0, fetched, 0, 2, 0, mpi.Int32, mpi.OpReplace)
		}
		w.Fence(mpi.AssertNone)

		raceFlipped := false
		if p.Rank() == 2 {
			// Safe read: the previous fence completed both swaps.
			raceFlipped = sched.Int32At(0) == 1
			if raceFlipped {
				// Recovery path, reached only when rank 0's swap completed
				// last: probe rank 0's window state.
				w.Get(probe, 0, 1, mpi.Int32, 0, 0, 1, mpi.Int32)
				if buggy {
					// BUG: reset the probe buffer while the Get is still in
					// flight; the epoch is not closed until the next fence.
					probe.SetInt32(0, -1)
				}
			}
		}
		w.Fence(mpi.AssertNone)
		if p.Rank() == 2 && raceFlipped && !buggy {
			probe.SetInt32(0, -1) // fixed: reset only after the epoch closed
		}
		w.Free()
		return nil
	}
}
