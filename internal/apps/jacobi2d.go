package apps

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Jacobi2D is a two-dimensional Jacobi relaxation with the grid distributed
// by columns and halo exchange over post/start/complete/wait (PSCW)
// general active-target synchronization. Because columns of a row-major
// grid are strided, the halo transfer uses a derived vector datatype — the
// combination of PSCW epochs and non-contiguous datatypes that stresses
// both the simulator's data-map machinery and the analyzer's footprint
// computation.
//
// Local layout per rank (row-major float64): rows × (cols+2), where column
// 0 and column cols+1 are halo columns owned by the neighbours.
//
// The buggy variant stores into its own halo column during the exposure
// epoch (between Win_post and Win_wait), racing with the neighbour's
// strided Put into the same cells — an across-processes conflict on a
// derived-datatype footprint.
func Jacobi2D(buggy bool) func(p *mpi.Proc) error {
	return Jacobi2DN(buggy, 12, 6, 8)
}

// Jacobi2DN configures rows, owned columns per rank, and iterations.
func Jacobi2DN(buggy bool, rows, cols, iters int) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("jacobi2d: needs at least 2 ranks")
		}
		stride := cols + 2
		idx := func(r, c int) uint64 { return uint64(r*stride+c) * 8 }
		grid := p.AllocFloat64(rows*stride, "grid2d")
		w := p.WinCreate(grid, 8, p.CommWorld())

		// Column datatype: rows elements, one per grid row.
		colType := p.TypeVector(rows, 1, stride, mpi.Float64)

		// Dirichlet boundary: hot left edge on rank 0.
		if p.Rank() == 0 {
			for r := 0; r < rows; r++ {
				grid.SetFloat64(idx(r, 0), 1.0)
			}
		}

		var neighbors []int
		left, right := p.Rank()-1, p.Rank()+1
		if left >= 0 {
			neighbors = append(neighbors, left)
		}
		if right < p.Size() {
			neighbors = append(neighbors, right)
		}
		group := mpi.NewGroup(neighbors)

		next := make([]float64, rows*stride)
		for it := 0; it < iters; it++ {
			// Halo exchange: expose my window to neighbours; put my
			// boundary columns into their halo columns.
			w.Post(group)
			w.Start(group)
			if left >= 0 {
				// My column 1 → left neighbour's halo column cols+1.
				w.Put(grid, idx(0, 1), 1, colType, left, uint64(cols+1), 1, colType)
			}
			if right < p.Size() {
				// My column cols → right neighbour's halo column 0.
				w.Put(grid, idx(0, cols), 1, colType, right, 0, 1, colType)
			}
			if buggy {
				// BUG: re-seed own halo columns during the exposure epoch,
				// racing with the neighbours' strided puts.
				if left >= 0 {
					grid.SetFloat64(idx(it%rows, 0), 0)
				}
				if right < p.Size() {
					grid.SetFloat64(idx(it%rows, cols+1), 0)
				}
			}
			w.Complete()
			w.WaitEpoch()
			p.Barrier(p.CommWorld())

			// Relax the interior (block loads/stores, like compiled code).
			cur := grid.Float64SliceAt(0, rows*stride)
			copy(next, cur)
			// The hot boundary lives in rank 0's (neighbourless) halo
			// column 0 and stays fixed; every owned column relaxes.
			for r := 1; r < rows-1; r++ {
				for c := 1; c <= cols; c++ {
					next[r*stride+c] = 0.25 * (cur[(r-1)*stride+c] + cur[(r+1)*stride+c] +
						cur[r*stride+c-1] + cur[r*stride+c+1])
				}
			}
			grid.SetFloat64Slice(0, next)
			p.Barrier(p.CommWorld())
		}

		if !buggy {
			v := grid.Float64At(idx(rows/2, 1))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("jacobi2d: diverged")
			}
			if p.Rank() == 0 && v == 0 {
				return fmt.Errorf("jacobi2d: heat did not propagate")
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}
