package apps

import (
	"repro/internal/mpi"
)

// BugCase describes one entry of the paper's Table II: a real-world or
// injected memory consistency bug, with the buggy and fixed program
// variants and the expected detection outcome.
type BugCase struct {
	Name   string
	Ranks  int    // process count the paper used to trigger the bug
	Origin string // "real-world" or "injected"

	// Table II columns.
	ErrorLocation string // "within an epoch" or "across processes"
	RootCause     string
	Symptom       string

	Buggy func(p *mpi.Proc) error
	Fixed func(p *mpi.Proc) error

	// ExpectWarningOnly is set for variants the paper reports as warnings
	// (the original exclusive-lock lockopts bug).
	ExpectWarningOnly bool

	// RelevantBuffers is the ST-Analyzer result for the application: the
	// tracked allocations that can participate in one-sided communication.
	RelevantBuffers []string

	// StaticRoot is the entry function of the application in this package's
	// source, the root for scoping static-checker diagnostics (the checker
	// reports per function; Reachable(StaticRoot) selects this app's).
	StaticRoot string
}

// BugCases returns the five bug cases of Table II in the paper's order.
func BugCases() []BugCase {
	return []BugCase{
		{
			Name: "emulate", Ranks: 2, Origin: "real-world",
			ErrorLocation: "within an epoch",
			RootCause:     "conflicting MPI_Get and local load/store",
			Symptom:       "stale values read from the DSM table",
			Buggy:         Emulate(true), Fixed: Emulate(false),
			RelevantBuffers: []string{"table", "cache"},
			StaticRoot:      "Emulate",
		},
		{
			Name: "BT-broadcast", Ranks: 2, Origin: "real-world",
			ErrorLocation: "within an epoch",
			RootCause:     "conflicting MPI_Get and local load",
			Symptom:       "infinite spin loop on a stale flag",
			Buggy:         BTBroadcast(true), Fixed: BTBroadcast(false),
			RelevantBuffers: []string{"bcastwin", "check", "payload"},
			StaticRoot:      "BTBroadcast",
		},
		{
			Name: "lockopts", Ranks: 64, Origin: "real-world",
			ErrorLocation: "across processes",
			RootCause:     "conflicting local load/store and remote MPI_Put/Get",
			Symptom:       "nondeterministic counter values",
			Buggy:         Lockopts(true), Fixed: Lockopts(false),
			RelevantBuffers: []string{"counters", "val", "old"},
			StaticRoot:      "Lockopts",
		},
		{
			Name: "ping-pong", Ranks: 2, Origin: "injected",
			ErrorLocation: "within an epoch",
			RootCause:     "conflicting MPI_Put and local store",
			Symptom:       "corrupted message payload",
			Buggy:         PingPong(true), Fixed: PingPong(false),
			RelevantBuffers: []string{"inbox", "msg"},
			StaticRoot:      "PingPong",
		},
		{
			Name: "jacobi", Ranks: 4, Origin: "injected",
			ErrorLocation: "across processes",
			RootCause:     "conflicting remote MPI_Put and local store",
			Symptom:       "corrupted halo cells, wrong relaxation",
			Buggy:         Jacobi(true), Fixed: Jacobi(false),
			RelevantBuffers: []string{"grid", "next"},
			StaticRoot:      "Jacobi",
		},
	}
}

// ExtensionCases returns bug cases beyond the paper's Table II,
// exercising the MPI-3 extension of §V.
func ExtensionCases() []BugCase {
	return []BugCase{
		{
			Name: "jacobi2d", Ranks: 4, Origin: "extension (PSCW)",
			ErrorLocation: "across processes",
			RootCause:     "conflicting strided remote MPI_Put and local store in an exposure epoch",
			Symptom:       "corrupted halo columns",
			Buggy:         Jacobi2D(true), Fixed: Jacobi2D(false),
			RelevantBuffers: []string{"grid2d"},
			StaticRoot:      "Jacobi2D",
		},
		{
			Name: "counter", Ranks: 8, Origin: "extension (MPI-3)",
			ErrorLocation: "across processes",
			RootCause:     "non-atomic Get/Put emulation of fetch-and-add",
			Symptom:       "lost updates, duplicate work items",
			Buggy:         Counter(true, 4), Fixed: Counter(false, 4),
			RelevantBuffers: []string{"workqueue", "old", "next", "one"},
			StaticRoot:      "Counter",
		},
	}
}

// ScheduleCases returns bug cases whose violation manifests only under a
// minority of legal RMA completion orders: a single default-schedule run
// stays clean, and `mcchecker explore` (internal/explore) has to sweep
// the schedule space to expose them. They are kept out of Table II — the
// paper's cases all manifest on the first run.
func ScheduleCases() []BugCase {
	return []BugCase{
		{
			Name: "schedrace", Ranks: 3, Origin: "injected (schedule)",
			ErrorLocation: "within an epoch",
			RootCause:     "conflicting local store and pending MPI_Get on a recovery path reached only when a racing atomic swap completes last",
			Symptom:       "clean on the default schedule; corrupted probe buffer when the completion order flips",
			Buggy:         SchedRace(true), Fixed: SchedRace(false),
			RelevantBuffers: []string{"sched", "probe", "src", "fetched"},
			StaticRoot:      "SchedRace",
		},
	}
}

// CorpusCases returns the planted-bug corpus (corpus.go): eight
// literature patterns beyond Table II that ground-truth the differential
// engine scoring of internal/experiments. Each pairs one planted bug
// with its idiomatic fix.
func CorpusCases() []BugCase {
	return []BugCase{
		{
			Name: "lockall-flush", Ranks: 3, Origin: "corpus (MPI-3)",
			ErrorLocation: "within an epoch",
			RootCause:     "origin buffers of pending MPI_Gets read before MPI_Win_flush_all",
			Symptom:       "reduction over stale shard snapshots",
			Buggy:         LockallFlush(true), Fixed: LockallFlush(false),
			RelevantBuffers: []string{"shards", "snap"},
			StaticRoot:      "LockallFlush",
		},
		{
			Name: "alloc-alias", Ranks: 2, Origin: "corpus (MPI-3)",
			ErrorLocation: "across processes",
			RootCause:     "direct store through the MPI_Win_allocate buffer while a remote MPI_Put is in flight",
			Symptom:       "pool cell holds producer or consumer value nondeterministically",
			Buggy:         AllocAlias(true), Fixed: AllocAlias(false),
			RelevantBuffers: []string{"pool", "poolseed"},
			StaticRoot:      "AllocAlias",
		},
		{
			Name: "pscw-update", Ranks: 2, Origin: "corpus (PSCW)",
			ErrorLocation: "across processes",
			RootCause:     "local store to exposed memory between MPI_Win_post and MPI_Win_wait",
			Symptom:       "tile update lost under the incoming MPI_Put",
			Buggy:         PSCWUpdate(true), Fixed: PSCWUpdate(false),
			RelevantBuffers: []string{"tile", "tilesrc"},
			StaticRoot:      "PSCWUpdate",
		},
		{
			Name: "rput-completion", Ranks: 2, Origin: "corpus (MPI-3)",
			ErrorLocation: "within an epoch",
			RootCause:     "second MPI_Put to the same target cell after local-only completion (MPI_Win_flush_local)",
			Symptom:       "target cell ordering undefined between the two writes",
			Buggy:         RputCompletion(true), Fixed: RputCompletion(false),
			RelevantBuffers: []string{"slab", "chunk"},
			StaticRoot:      "RputCompletion",
		},
		{
			Name: "stride-overlap", Ranks: 2, Origin: "corpus (datatype)",
			ErrorLocation: "within an epoch",
			RootCause:     "two vector MPI_Puts with overlapping derived-datatype footprints in one fence epoch",
			Symptom:       "every fourth board word holds either column's value",
			Buggy:         StrideOverlap(true), Fixed: StrideOverlap(false),
			RelevantBuffers: []string{"board", "cola", "colb"},
			StaticRoot:      "StrideOverlap",
		},
		{
			Name: "fence-overlap", Ranks: 3, Origin: "corpus (fence)",
			ErrorLocation: "across processes",
			RootCause:     "two origins' MPI_Put spans share a target word within one fence epoch",
			Symptom:       "ledger word 1 holds debit or credit nondeterministically",
			Buggy:         FenceOverlap(true), Fixed: FenceOverlap(false),
			RelevantBuffers: []string{"ledger", "debit", "credit"},
			StaticRoot:      "FenceOverlap",
		},
		{
			Name: "getacc-mix", Ranks: 3, Origin: "corpus (MPI-3)",
			ErrorLocation: "across processes",
			RootCause:     "plain MPI_Put races accumulate-family MPI_Fetch_and_op on the same hot cell",
			Symptom:       "fetch-and-add observes a torn or lost reset",
			Buggy:         GetaccMix(true), Fixed: GetaccMix(false),
			RelevantBuffers: []string{"hotcell", "bump", "prior", "reset"},
			StaticRoot:      "GetaccMix",
		},
		{
			Name: "poll-flag", Ranks: 2, Origin: "corpus (passive)",
			ErrorLocation: "across processes",
			RootCause:     "consumer polls its window flag while the producer's passive-target MPI_Put applies",
			Symptom:       "flag read returns stale zero",
			Buggy:         PollFlag(true), Fixed: PollFlag(false),
			RelevantBuffers: []string{"mailbox", "flagval"},
			StaticRoot:      "PollFlag",
		},
	}
}

// AllCases returns every bug case in the registry — the paper's Table II,
// the MPI-3 extensions, the schedule-dependent cases, and the planted-bug
// corpus — for harnesses that sweep the whole suite (the explore registry
// test, `mcchecker apps`).
func AllCases() []BugCase {
	var all []BugCase
	all = append(all, BugCases()...)
	all = append(all, ExtensionCases()...)
	all = append(all, ScheduleCases()...)
	all = append(all, CorpusCases()...)
	return all
}

// Workload is one overhead-suite application (Figures 8–10).
type Workload struct {
	Name  string
	Ranks int // the paper's Figure 8 runs all at 64 ranks

	// Body builds the program for a work scale factor (1.0 = the size used
	// by the Figure 8 harness; smaller for tests).
	Body func(scale float64) func(p *mpi.Proc) error

	// RelevantBuffers is the ST-Analyzer selection for the workload.
	RelevantBuffers []string
}

// Workloads returns the five overhead applications of Figure 8.
func Workloads() []Workload {
	scaleInt := func(base int, scale float64, min int) int {
		v := int(float64(base) * scale)
		if v < min {
			return min
		}
		return v
	}
	return []Workload{
		{
			Name: "Lennard-Jones", Ranks: 64,
			Body: func(s float64) func(p *mpi.Proc) error {
				return LennardJones(scaleInt(12, s, 2), 2)
			},
			RelevantBuffers: []string{"ga", "remote", "partial"},
		},
		{
			Name: "SCF", Ranks: 64,
			Body: func(s float64) func(p *mpi.Proc) error {
				return SCF(scaleInt(6, s, 2), scaleInt(48, s, 8), 2)
			},
			RelevantBuffers: []string{"scfwin", "densblk", "fockblk"},
		},
		{
			Name: "Boltzmann", Ranks: 64,
			Body: func(s float64) func(p *mpi.Proc) error {
				return Boltzmann(scaleInt(256, s, 16), scaleInt(40, s, 4))
			},
			RelevantBuffers: []string{"lattice"},
		},
		{
			Name: "SKaMPI", Ranks: 64,
			Body: func(s float64) func(p *mpi.Proc) error {
				return SKaMPI(scaleInt(12, s, 2))
			},
			RelevantBuffers: []string{"skwin", "skbuf"},
		},
		{
			Name: "LU", Ranks: 64,
			Body: func(s float64) func(p *mpi.Proc) error {
				return LU(scaleInt(192, s, 32))
			},
			RelevantBuffers: []string{"matrix", "panel"},
		},
	}
}

// LUWorkload returns the LU body for an explicit matrix order, used by the
// Figure 9/10 scalability harness (the paper runs N=1500 at 8–128 ranks).
func LUWorkload(n int) func(p *mpi.Proc) error { return LU(n) }
