package apps

import (
	"fmt"

	"repro/internal/mpi"
)

// BTBroadcast is the binary-tree broadcast algorithm of Luecke et al.
// (paper §VII-A-1, Figure 6): each process exposes a ready flag in a
// window; a parent puts the payload and sets the flag, and children spin
// on a local copy of the flag fetched with MPI_Get inside a lock epoch.
//
// The real-world bug: the spin loop loads the Get's destination variable
// (`check`) inside the epoch. The Get is nonblocking and need not complete
// before MPI_Win_unlock, so the loaded value stays 0 and the loop spins
// forever. The simulator reproduces the stale read faithfully; SpinBound
// caps the loop so the buggy run terminates and can be analyzed.
//
// The fixed variant closes the epoch before testing the value, re-locking
// for each poll — the repaired algorithm.
func BTBroadcast(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("btbroadcast: needs at least 2 ranks")
		}
		const payloadLen = 4
		// Window layout: [0]=ready flag (int32), [8..] payload float64s.
		win := p.Alloc(8+payloadLen*8, "bcastwin")
		w := p.WinCreate(win, 1, p.CommWorld())
		p.Barrier(p.CommWorld())

		rank, size := p.Rank(), p.Size()
		root := 0
		if rank == root {
			for i := 0; i < payloadLen; i++ {
				win.SetFloat64(8+uint64(i)*8, float64(10*i))
			}
			win.SetInt32(0, 1)
		}
		p.Barrier(p.CommWorld())

		parent := (rank - 1) / 2
		children := []int{2*rank + 1, 2*rank + 2}

		if rank != root {
			// Wait until the parent's flag is set, then pull the payload.
			check := p.AllocInt32(1, "check")
			check.SetInt32(0, 0) // line "check = 0" of Figure 6
			if buggy {
				w.Lock(mpi.LockShared, parent)
				for spin := 0; spin < SpinBound; spin++ {
					if check.Int32At(0) != 0 { // BUG: loads before the Get completes
						break
					}
					w.Get(check, 0, 1, mpi.Int32, parent, 0, 1, mpi.Int32)
				}
				w.Unlock(parent)
			} else {
				for {
					w.Lock(mpi.LockShared, parent)
					w.Get(check, 0, 1, mpi.Int32, parent, 0, 1, mpi.Int32)
					w.Unlock(parent) // epoch closed: the value is now valid
					if check.Int32At(0) != 0 {
						break
					}
				}
			}
			// Fetch the payload and publish the local flag for children.
			payload := p.AllocFloat64(payloadLen, "payload")
			w.Lock(mpi.LockShared, parent)
			w.Get(payload, 0, payloadLen, mpi.Float64, parent, 8, payloadLen, mpi.Float64)
			w.Unlock(parent)
			win.SetFloat64Slice(8, payload.Float64SliceAt(0, payloadLen))
			win.SetInt32(0, 1)
		}
		_ = children
		_ = size

		p.Barrier(p.CommWorld())
		if !buggy {
			// Every rank must have received the payload.
			if got := win.Float64At(8 + 8); got != 10 {
				return fmt.Errorf("btbroadcast: rank %d payload[1] = %v", rank, got)
			}
		}
		w.Free()
		return nil
	}
}

// SpinBound caps buggy spin loops so they terminate under simulation.
const SpinBound = 3
