package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
)

// TestCorpusDetection mirrors TestTableII for the planted-bug corpus:
// every buggy variant is detected with its declared error location, and
// every fixed variant analyzes clean.
func TestCorpusDetection(t *testing.T) {
	for _, bc := range CorpusCases() {
		bc := bc
		t.Run(bc.Name+"/buggy", func(t *testing.T) {
			rep := runChecked(t, testRanks(bc.Ranks), bc.Buggy, bc.RelevantBuffers)
			if len(rep.Errors()) == 0 {
				t.Fatalf("bug not detected:\n%s", rep)
			}
			wantClass := core.WithinEpoch
			if bc.ErrorLocation == "across processes" {
				wantClass = core.AcrossProcesses
			}
			found := false
			for _, v := range rep.Errors() {
				if v.Class == wantClass {
					found = true
					if v.A.Loc() == "?" || v.B.Loc() == "?" {
						t.Errorf("missing diagnostics: %v", v)
					}
				}
			}
			if !found {
				t.Errorf("no %v violation:\n%s", wantClass, rep)
			}
		})
		t.Run(bc.Name+"/fixed", func(t *testing.T) {
			rep := runChecked(t, testRanks(bc.Ranks), bc.Fixed, bc.RelevantBuffers)
			if len(rep.Violations) != 0 {
				t.Errorf("fixed variant flagged:\n%s", rep)
			}
		})
	}
}

// TestCorpusManifest: buggy corpus variants complete (detection is the
// analyzer's job, not a crash), and fixed variants pass their internal
// result assertions.
func TestCorpusManifest(t *testing.T) {
	for _, bc := range CorpusCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			if err := mpi.Run(testRanks(bc.Ranks), mpi.Options{}, bc.Buggy); err != nil {
				t.Fatalf("buggy %s did not complete: %v", bc.Name, err)
			}
			if err := mpi.Run(testRanks(bc.Ranks), mpi.Options{}, bc.Fixed); err != nil {
				t.Fatalf("fixed %s failed its assertions: %v", bc.Name, err)
			}
		})
	}
}
