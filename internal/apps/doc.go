// Package apps contains the MPI one-sided applications of the paper's
// evaluation, ported to the simulated MPI interface:
//
// The bug suite (Table II) — each with the paper's buggy behaviour and a
// fixed variant:
//
//   - emulate: distributed-shared-memory emulation; conflicting MPI_Get
//     and local load/store within an epoch (real-world bug).
//   - btbroadcast: the binary-tree broadcast of Luecke et al.; a load of
//     the Get origin inside the epoch spins on a value the nonblocking Get
//     has not delivered (real-world bug, Figure 6).
//   - lockopts: the MPICH RMA test case; local load/store at the target
//     conflicting with remote Put/Get across processes (real-world bug,
//     Figure 7; the paper evaluates the shared-lock revision).
//   - pingpong: an ARMCI-MPI-style ping-pong with an injected store to a
//     Put origin buffer within the epoch.
//   - jacobi: a one-sided Jacobi iteration with an injected local store to
//     the halo cell concurrently updated by a neighbour's Put.
//
// The overhead suite (Figures 8–10):
//
//   - lennardjones, scf, boltzmann: ports of the Global Arrays workloads
//     (force computation with get+accumulate, SCF-style matrix assembly,
//     lattice-Boltzmann halo exchange);
//   - skampi: an RMA micro-benchmark suite in the style of SKaMPI;
//   - lu: a blocked LU factorization with fence-synchronized panel
//     broadcast, the strong-scaling workload of Figures 9 and 10.
//
// All applications access window and origin buffers through tracked
// accessors, so the profiler observes their loads and stores exactly as
// LLVM instrumentation observes the originals'.
package apps
