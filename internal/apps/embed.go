package apps

import "embed"

// sources embeds this package's own Go files so that the static checker
// (internal/stanalyzer) can run over the application sources from any
// binary — `mcchecker analyze -static` cross-validates static diagnostics
// against dynamic violations without needing a source checkout.
//
//go:embed *.go
var sources embed.FS

// SourceFS returns the embedded application sources (this package's
// non-generated Go files, including the registry).
func SourceFS() embed.FS { return sources }
