package apps

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Jacobi is a one-sided implementation of the 1-D Jacobi method: each rank
// owns a chunk of the vector plus two halo cells exposed in a window;
// every iteration, ranks put their boundary values into the neighbours'
// halo cells between fences, then relax their interior.
//
// Window layout per rank (float64 cells):
//
//	[0]            left halo (written by the left neighbour)
//	[1..chunk]     owned cells
//	[chunk+1]      right halo (written by the right neighbour)
//
// The injected bug (Table II, "jacobi"): with buggy=true, ranks seed their
// halo cells with a local store during the exchange epoch, concurrently
// with the neighbour's Put into the same cell — a conflicting remote
// MPI_Put and local store across processes (Figure 2d). The fixed variant
// seeds the halos before the epoch opens.
func Jacobi(buggy bool) func(p *mpi.Proc) error {
	return JacobiN(buggy, 16, 10)
}

// JacobiN configures the per-rank chunk size and iteration count.
func JacobiN(buggy bool, chunk, iters int) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("jacobi: needs at least 2 ranks")
		}
		cells := chunk + 2
		grid := p.AllocFloat64(cells, "grid")
		next := p.AllocFloat64(cells, "next")
		w := p.WinCreate(grid, 8, p.CommWorld())

		// Boundary conditions: global edges fixed at 1 and 0.
		for i := 1; i <= chunk; i++ {
			grid.SetFloat64(uint64(i)*8, 0)
		}
		if p.Rank() == 0 {
			grid.SetFloat64(0, 1) // global left boundary
		}
		if p.Rank() == p.Size()-1 {
			grid.SetFloat64(uint64(chunk+1)*8, 0)
		}

		left, right := p.Rank()-1, p.Rank()+1
		for it := 0; it < iters; it++ {
			w.Fence(mpi.AssertNone)
			// Exchange: put boundary cells into neighbour halos.
			if left >= 0 {
				w.Put(grid, 1*8, 1, mpi.Float64, left, uint64(chunk+1), 1, mpi.Float64)
			}
			if right < p.Size() {
				w.Put(grid, uint64(chunk)*8, 1, mpi.Float64, right, 0, 1, mpi.Float64)
			}
			if buggy {
				// BUG: re-seed the halo cells inside the exchange epoch,
				// racing with the neighbours' puts into the same cells.
				if left >= 0 {
					grid.SetFloat64(0, 0)
				}
				if right < p.Size() {
					grid.SetFloat64(uint64(chunk+1)*8, 0)
				}
			}
			w.Fence(mpi.AssertNone)

			// Relax the interior.
			row := grid.Float64SliceAt(0, cells)
			out := make([]float64, cells)
			copy(out, row)
			for i := 1; i <= chunk; i++ {
				out[i] = 0.5 * (row[i-1] + row[i+1])
			}
			next.SetFloat64Slice(0, out)
			// Swap owned cells back into the window buffer.
			grid.SetFloat64Slice(8, next.Float64SliceAt(8, chunk))
		}

		// Convergence metric (not asserted; the fixed run must be finite).
		if !buggy {
			v := grid.Float64At(8)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("jacobi: diverged: %v", v)
			}
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	}
}
