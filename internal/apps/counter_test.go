package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
)

func TestCounterFixedClean(t *testing.T) {
	ResetClaimTracker(8 * 4)
	rep := runChecked(t, 8, Counter(false, 4), nil)
	if len(rep.Violations) != 0 {
		t.Errorf("atomic counter flagged:\n%s", rep)
	}
	if d := CounterDuplicates(); d != 0 {
		t.Errorf("atomic counter produced %d duplicate claims", d)
	}
}

func TestCounterBuggyDetected(t *testing.T) {
	rep := runChecked(t, 8, Counter(true, 4), nil)
	if len(rep.Errors()) == 0 {
		t.Fatalf("get/put counter not flagged:\n%s", rep)
	}
	found := false
	for _, v := range rep.Errors() {
		if v.Class == core.AcrossProcesses {
			found = true
		}
	}
	if !found {
		t.Errorf("expected across-process conflicts:\n%s", rep)
	}
}

func TestCounterBuggyRunsToCompletion(t *testing.T) {
	// The buggy variant still terminates (the corruption is silent — wrong
	// counts, not hangs), as with real lost-update races.
	if err := mpi.Run(8, mpi.Options{}, Counter(true, 4)); err != nil {
		t.Fatal(err)
	}
}
