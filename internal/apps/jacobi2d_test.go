package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
)

func TestJacobi2DFixedCleanAndConverging(t *testing.T) {
	rep := runChecked(t, 4, Jacobi2D(false), []string{"grid2d"})
	if len(rep.Violations) != 0 {
		t.Errorf("fixed jacobi2d flagged:\n%s", rep)
	}
}

func TestJacobi2DBugDetected(t *testing.T) {
	rep := runChecked(t, 4, Jacobi2D(true), []string{"grid2d"})
	if len(rep.Errors()) == 0 {
		t.Fatalf("pscw halo bug not detected:\n%s", rep)
	}
	foundCross := false
	for _, v := range rep.Errors() {
		if v.Class == core.AcrossProcesses {
			foundCross = true
			// One side of the conflict is the strided (derived-datatype) Put.
			if v.A.Kind.String() != "Put" && v.B.Kind.String() != "Put" {
				t.Errorf("expected a Put in the pair: %v", v)
			}
		}
	}
	if !foundCross {
		t.Errorf("no across-process violation:\n%s", rep)
	}
}

func TestJacobi2DManyRanks(t *testing.T) {
	if err := mpi.Run(8, mpi.Options{}, Jacobi2D(false)); err != nil {
		t.Fatal(err)
	}
}

func TestJacobi2DHeatPropagates(t *testing.T) {
	// The internal assertion in the fixed variant checks propagation; a
	// plain run must pass it.
	if err := mpi.Run(2, mpi.Options{}, Jacobi2DN(false, 8, 4, 20)); err != nil {
		t.Fatal(err)
	}
}
