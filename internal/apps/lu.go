package apps

import (
	"fmt"

	"repro/internal/mpi"
)

// LU is the strong-scaling workload of the paper's Figures 9 and 10 (NAS
// LU class run on a 1500×1500 problem): a dense LU factorization without
// pivoting, rows distributed cyclically across ranks. For each pivot row
// k, the owner publishes the row into every rank's panel window with Put
// under fences, and all ranks eliminate their owned rows below k.
//
// Per-rank computation is Θ(N³/P) while communication is Θ(N²), so with
// fixed N the per-rank load/store event rate falls as ranks are added —
// the effect behind the paper's decreasing profiling overhead (Fig 9-10).
func LU(n int) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		size := p.Size()
		if n < size {
			return fmt.Errorf("lu: matrix order %d smaller than %d ranks", n, size)
		}
		myRows := 0
		for i := p.Rank(); i < n; i += size {
			myRows++
		}
		// Owned rows, stored densely; rowIdx maps global row → local slot.
		a := p.AllocFloat64(myRows*n, "matrix")
		slotOf := func(global int) int { return global / size }

		// Deterministic diagonally dominant matrix.
		for g := p.Rank(); g < n; g += size {
			s := slotOf(g)
			for j := 0; j < n; j++ {
				v := 1.0 / float64(1+abs(g-j))
				if g == j {
					v = float64(n)
				}
				a.SetFloat64(uint64(s*n+j)*8, v)
			}
		}

		// Panel window: the current pivot row.
		panel := p.AllocFloat64(n, "panel")
		w := p.WinCreate(panel, 8, p.CommWorld())

		for k := 0; k < n; k++ {
			owner := k % size
			w.Fence(mpi.AssertNone)
			if p.Rank() == owner {
				// Publish row k into every other rank's panel window.
				row := a.Float64SliceAt(uint64(slotOf(k)*n)*8, n)
				panel.SetFloat64Slice(0, row)
				for r := 0; r < size; r++ {
					if r != p.Rank() {
						w.Put(a, uint64(slotOf(k)*n)*8, n, mpi.Float64, r, 0, n, mpi.Float64)
					}
				}
			}
			w.Fence(mpi.AssertNone)

			// Eliminate owned rows below k.
			pivot := panel.Float64At(uint64(k) * 8)
			start := k + 1
			first := firstOwnedAtOrAfter(start, p.Rank(), size)
			for g := first; g < n; g += size {
				s := slotOf(g)
				mult := a.Float64At(uint64(s*n+k)*8) / pivot
				a.SetFloat64(uint64(s*n+k)*8, mult)
				// Update the trailing row segment in one tracked
				// load/store pair per row (vectorized access, as compiled
				// code would issue).
				rowSeg := a.Float64SliceAt(uint64(s*n+k+1)*8, n-k-1)
				pivSeg := panel.Float64SliceAt(uint64(k+1)*8, n-k-1)
				for j := range rowSeg {
					rowSeg[j] -= mult * pivSeg[j]
				}
				a.SetFloat64Slice(uint64(s*n+k+1)*8, rowSeg)
			}
		}

		// Verification element: the last pivot must be finite and nonzero.
		w.Fence(mpi.AssertNone)
		if p.Rank() == (n-1)%size {
			last := a.Float64At(uint64(slotOf(n-1)*n+n-1) * 8)
			if last == 0 {
				return fmt.Errorf("lu: zero pivot at %d", n-1)
			}
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// firstOwnedAtOrAfter returns the smallest global row index ≥ start owned
// by rank under cyclic distribution.
func firstOwnedAtOrAfter(start, rank, size int) int {
	r := start % size
	if r <= rank {
		return start + (rank - r)
	}
	return start + (size - r + rank)
}
