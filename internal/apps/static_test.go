package apps

import (
	"testing"

	"repro/internal/stanalyzer"
)

// expectedStaticKind maps each planted app to the diagnostic kind the
// static checker must raise for its bug. The kinds mirror Table II's error
// descriptions: within-epoch origin-buffer misuse for emulate /
// BT-broadcast / ping-pong / schedrace, across-process conflicts for the
// rest.
var expectedStaticKind = map[string]stanalyzer.Kind{
	"emulate":      stanalyzer.KindGetOriginUse,
	"BT-broadcast": stanalyzer.KindGetOriginUse,
	"lockopts":     stanalyzer.KindCrossLocalConflict,
	"ping-pong":    stanalyzer.KindPutOriginStore,
	"jacobi":       stanalyzer.KindCrossLocalConflict,
	"jacobi2d":     stanalyzer.KindExposureAccess,
	"counter":      stanalyzer.KindCrossTargetConflict,
	"schedrace":    stanalyzer.KindGetOriginUse,
	// Planted-bug corpus (corpus.go).
	"lockall-flush":   stanalyzer.KindGetOriginUse,
	"alloc-alias":     stanalyzer.KindCrossLocalConflict,
	"pscw-update":     stanalyzer.KindExposureAccess,
	"rput-completion": stanalyzer.KindEpochTargetConflict,
	"stride-overlap":  stanalyzer.KindEpochTargetConflict,
	"fence-overlap":   stanalyzer.KindCrossTargetConflict,
	"getacc-mix":      stanalyzer.KindCrossTargetConflict,
	"poll-flag":       stanalyzer.KindCrossLocalConflict,
}

func checkEmbedded(t *testing.T, buggy bool) *stanalyzer.CheckReport {
	t.Helper()
	rep, err := stanalyzer.CheckFS(SourceFS(), stanalyzer.Options{
		Defines: map[string]bool{"buggy": buggy},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestStaticCheckerFlagsPlantedBugs runs the checker over the buggy
// variants: every planted app must yield at least one diagnostic of the
// expected kind within its entry point's reach.
func TestStaticCheckerFlagsPlantedBugs(t *testing.T) {
	rep := checkEmbedded(t, true)
	for _, bc := range AllCases() {
		want, ok := expectedStaticKind[bc.Name]
		if !ok {
			t.Errorf("%s: registry case missing from expectedStaticKind — extend the table", bc.Name)
			continue
		}
		if bc.StaticRoot == "" {
			t.Errorf("%s: no StaticRoot declared", bc.Name)
			continue
		}
		diags := rep.ForFunctions(rep.Reachable(bc.StaticRoot))
		found := false
		for _, d := range diags {
			if d.Kind == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: static checker missed the planted %s (got %d diagnostics)\n%s",
				bc.Name, want, len(diags), stanalyzer.RenderDiags(diags))
		}
	}
}

// TestStaticCheckerCleanOnFixedVariants runs the checker over the fixed
// variants: no high-confidence diagnostic may survive anywhere in the
// package — the checker's false-positive budget at its strictest tier.
func TestStaticCheckerCleanOnFixedVariants(t *testing.T) {
	rep := checkEmbedded(t, false)
	if high := rep.Filter(stanalyzer.ConfHigh); len(high) != 0 {
		t.Errorf("fixed variants produced %d high-confidence diagnostics:\n%s",
			len(high), stanalyzer.RenderDiags(high))
	}
}

// TestStaticDiagnosticsCarryFixHints checks the reporting contract: every
// diagnostic names its enclosing function and carries a remediation hint.
func TestStaticDiagnosticsCarryFixHints(t *testing.T) {
	rep := checkEmbedded(t, true)
	if len(rep.Diags) == 0 {
		t.Fatal("no diagnostics at all on buggy variants")
	}
	for i := range rep.Diags {
		d := &rep.Diags[i]
		if d.Fix == "" {
			t.Errorf("%s has no fix hint", d.String())
		}
		if d.Fn == "" {
			t.Errorf("%s has no enclosing function", d.String())
		}
	}
}

// TestStaticRanksStayInWorld checks that the statically-extracted target
// ranks (the explorer's hints) fall inside each app's configured world.
func TestStaticRanksStayInWorld(t *testing.T) {
	rep := checkEmbedded(t, true)
	for _, bc := range AllCases() {
		if bc.StaticRoot == "" {
			continue
		}
		for _, d := range rep.ForFunctions(rep.Reachable(bc.StaticRoot)) {
			for _, r := range d.Ranks {
				if r < 0 || r >= bc.Ranks {
					t.Errorf("%s: diagnostic %s names rank %d outside world of %d",
						bc.Name, d.String(), r, bc.Ranks)
				}
			}
		}
	}
}
