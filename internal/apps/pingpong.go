package apps

import (
	"fmt"

	"repro/internal/mpi"
)

// PingPong is an ARMCI-MPI-style ping-pong benchmark: two ranks bounce a
// message back and forth by putting into each other's windows inside fence
// epochs.
//
// The injected bug (Table II, "ping-pong", 2 processes): after issuing the
// Put, the origin immediately writes the next iteration's value into the
// same buffer, before the fence closes the epoch — a conflicting MPI_Put
// and local store within an epoch, corrupting the message in flight
// (exactly the ADLB/GFMC failure mode of Figure 2a). The fixed variant
// prepares the next message only after the fence.
func PingPong(buggy bool) func(p *mpi.Proc) error {
	return PingPongN(buggy, 8, 4)
}

// PingPongN configures the number of round trips and message length.
func PingPongN(buggy bool, rounds, msgLen int) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() < 2 {
			return fmt.Errorf("pingpong: needs at least 2 ranks")
		}
		inbox := p.AllocFloat64(msgLen, "inbox")
		w := p.WinCreate(inbox, 8, p.CommWorld())
		msg := p.AllocFloat64(msgLen, "msg")

		w.Fence(mpi.AssertNone)
		me, other := p.Rank(), 1-p.Rank()
		active := me <= 1
		for r := 0; r < rounds; r++ {
			sender := r % 2
			if active && me == sender {
				for i := 0; i < msgLen; i++ {
					msg.SetFloat64(uint64(i)*8, float64(r*100+i))
				}
				w.Put(msg, 0, msgLen, mpi.Float64, other, 0, msgLen, mpi.Float64)
				if buggy {
					// BUG: overwrite the origin buffer before the epoch
					// closes; the nonblocking Put may transfer this value.
					msg.SetFloat64(0, -1)
				}
			}
			w.Fence(mpi.AssertNone)
			if active && me != sender && !buggy {
				if got := inbox.Float64At(8); msgLen > 1 && got != float64(r*100+1) {
					return fmt.Errorf("pingpong: round %d received %v", r, got)
				}
			}
		}
		w.Free()
		return nil
	}
}
