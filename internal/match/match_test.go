package match

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func build(t *testing.T, b *testutil.TraceBuilder) *model.Model {
	t.Helper()
	m, err := model.Build(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatchBarriers(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.Barrier()
	b.Barrier()
	ms, err := Run(build(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Groups) != 2 {
		t.Fatalf("groups = %d", len(ms.Groups))
	}
	for _, g := range ms.Groups {
		if g.Kind != trace.KindBarrier || g.Direction != DirAll || len(g.Events) != 3 {
			t.Errorf("group = %+v", g)
		}
	}
	// The k-th barrier at each rank must be in the same group.
	seqs := map[int64]bool{}
	for _, id := range ms.Groups[0].Events {
		seqs[id.Seq] = true
	}
	if len(seqs) != 1 {
		t.Errorf("first group mixes instances: %v", ms.Groups[0].Events)
	}
}

func TestMatchSendRecvFIFO(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	s1 := b.Add(0, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 9})
	s2 := b.Add(0, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 9})
	r1 := b.Add(1, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: 0, Tag: 9})
	r2 := b.Add(1, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: 0, Tag: 9})
	ms, err := Run(build(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.P2P) != 2 {
		t.Fatalf("p2p = %v", ms.P2P)
	}
	got := map[trace.ID]trace.ID{}
	for _, p := range ms.P2P {
		got[p.From] = p.To
	}
	if got[s1] != r1 || got[s2] != r2 {
		t.Errorf("FIFO violated: %v", got)
	}
}

func TestMatchTagsSeparateChannels(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	sA := b.Add(0, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 1})
	sB := b.Add(0, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 2})
	// Receiver consumes tag 2 first.
	rB := b.Add(1, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: 0, Tag: 2})
	rA := b.Add(1, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: 0, Tag: 1})
	ms, err := Run(build(t, b))
	if err != nil {
		t.Fatal(err)
	}
	got := map[trace.ID]trace.ID{}
	for _, p := range ms.P2P {
		got[p.From] = p.To
	}
	if got[sA] != rA || got[sB] != rB {
		t.Errorf("tag channels mixed: %v", got)
	}
}

func TestMatchIsendIrecvViaWait(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	is := b.Add(0, trace.Event{Kind: trace.KindIsend, Comm: 0, Peer: 1, Tag: 5, Req: 1})
	b.Add(0, trace.Event{Kind: trace.KindWaitReq, Req: 1})
	b.Add(1, trace.Event{Kind: trace.KindIrecv, Comm: 0, Peer: 0, Tag: 5, Req: 1})
	wr := b.Add(1, trace.Event{Kind: trace.KindWaitReq, Comm: 0, Peer: 0, Tag: 5, Req: 1})
	ms, err := Run(build(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.P2P) != 1 || ms.P2P[0].From != is || ms.P2P[0].To != wr {
		t.Errorf("isend/irecv match = %v", ms.P2P)
	}
}

func TestMatchRootedCollectives(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	for r := int32(0); r < 3; r++ {
		b.Add(r, trace.Event{Kind: trace.KindBcast, Comm: 0, Peer: 1})
	}
	for r := int32(0); r < 3; r++ {
		b.Add(r, trace.Event{Kind: trace.KindReduce, Comm: 0, Peer: 2})
	}
	ms, err := Run(build(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Groups) != 2 {
		t.Fatalf("groups = %d", len(ms.Groups))
	}
	var bcast, reduce *Group
	for i := range ms.Groups {
		switch ms.Groups[i].Kind {
		case trace.KindBcast:
			bcast = &ms.Groups[i]
		case trace.KindReduce:
			reduce = &ms.Groups[i]
		}
	}
	if bcast == nil || bcast.Direction != DirFromRoot || bcast.Root.Rank != 1 {
		t.Errorf("bcast group = %+v", bcast)
	}
	if reduce == nil || reduce.Direction != DirToRoot || reduce.Root.Rank != 2 {
		t.Errorf("reduce group = %+v", reduce)
	}
}

func TestMatchSubCommCollective(t *testing.T) {
	b := testutil.NewTraceBuilder(4)
	// Ranks 1 and 3 create comm 9 and barrier on it; 0 and 2 do nothing.
	b.Add(1, trace.Event{Kind: trace.KindCommCreate, Comm: 9, Members: []int32{1, 3}})
	b.Add(3, trace.Event{Kind: trace.KindCommCreate, Comm: 9, Members: []int32{1, 3}})
	b.Add(1, trace.Event{Kind: trace.KindBarrier, Comm: 9})
	b.Add(3, trace.Event{Kind: trace.KindBarrier, Comm: 9})
	ms, err := Run(build(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Groups) != 2 { // comm create + barrier
		t.Fatalf("groups = %+v", ms.Groups)
	}
	for _, g := range ms.Groups {
		if len(g.Events) != 2 {
			t.Errorf("group %v has %d events", g.Kind, len(g.Events))
		}
	}
}

func TestMatchFencesPerWindow(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.WinCreate(2, 0x2000, 64)
	b.Fence(1)
	b.Fence(2)
	b.Fence(1)
	ms, err := Run(build(t, b))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trace.Kind]int{}
	for _, g := range ms.Groups {
		counts[g.Kind]++
	}
	if counts[trace.KindWinCreate] != 2 || counts[trace.KindWinFence] != 3 {
		t.Errorf("counts = %v", counts)
	}
}

func TestMatchPSCW(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	post := b.Add(0, trace.Event{Kind: trace.KindWinPost, Win: 1, Members: []int32{1, 2}})
	wait := b.Add(0, trace.Event{Kind: trace.KindWinWait, Win: 1})
	st1 := b.Add(1, trace.Event{Kind: trace.KindWinStart, Win: 1, Members: []int32{0}})
	c1 := b.Add(1, trace.Event{Kind: trace.KindWinComplete, Win: 1})
	st2 := b.Add(2, trace.Event{Kind: trace.KindWinStart, Win: 1, Members: []int32{0}})
	c2 := b.Add(2, trace.Event{Kind: trace.KindWinComplete, Win: 1})
	ms, err := Run(build(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.PostStart) != 2 || len(ms.CompleteWait) != 2 {
		t.Fatalf("pscw: %v / %v", ms.PostStart, ms.CompleteWait)
	}
	gotPS := map[trace.ID]trace.ID{}
	for _, p := range ms.PostStart {
		gotPS[p.To] = p.From
	}
	if gotPS[st1] != post || gotPS[st2] != post {
		t.Errorf("post/start = %v", gotPS)
	}
	gotCW := map[trace.ID]trace.ID{}
	for _, p := range ms.CompleteWait {
		gotCW[p.From] = p.To
	}
	if gotCW[c1] != wait || gotCW[c2] != wait {
		t.Errorf("complete/wait = %v", gotCW)
	}
}

func TestMatchDetectsCollectiveMismatch(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.Add(0, trace.Event{Kind: trace.KindBarrier, Comm: 0})
	b.Add(1, trace.Event{Kind: trace.KindAllreduce, Comm: 0})
	_, err := Run(build(t, b))
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("err = %v", err)
	}
}

func TestMatchDetectsUnmatchedSend(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.Add(0, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 0})
	_, err := Run(build(t, b))
	if err == nil || !strings.Contains(err.Error(), "unreceived") {
		t.Errorf("err = %v", err)
	}
}

func TestMatchDetectsIncompleteBarrier(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.Add(0, trace.Event{Kind: trace.KindBarrier, Comm: 0})
	_, err := Run(build(t, b))
	if err == nil || !strings.Contains(err.Error(), "matched only") {
		t.Errorf("err = %v", err)
	}
}

func TestMatchLocksDoNotSynchronize(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared})
	b.Add(0, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1})
	ms, err := Run(build(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.P2P)+len(ms.PostStart)+len(ms.CompleteWait) != 0 {
		t.Error("locks must not create cross-process pairs")
	}
	if len(ms.Groups) != 1 { // only the WinCreate
		t.Errorf("groups = %v", ms.Groups)
	}
}

func TestMatchRootMismatch(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.Add(0, trace.Event{Kind: trace.KindBcast, Comm: 0, Peer: 0})
	b.Add(1, trace.Event{Kind: trace.KindBcast, Comm: 0, Peer: 1})
	_, err := Run(build(t, b))
	if err == nil || !strings.Contains(err.Error(), "root mismatch") {
		t.Errorf("err = %v", err)
	}
}
