package match

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// canonical renders matches order-independently for comparison.
func canonical(ms *Matches) ([]string, []Pair) {
	var groups []string
	for _, g := range ms.Groups {
		evs := append([]trace.ID(nil), g.Events...)
		sort.Slice(evs, func(i, j int) bool { return evs[i].Rank < evs[j].Rank })
		s := g.Kind.String() + "/" + g.Direction.String()
		for _, id := range evs {
			s += "|" + itoa(id)
		}
		groups = append(groups, s)
	}
	sort.Strings(groups)
	pairs := append([]Pair(nil), ms.P2P...)
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].From != pairs[j].From {
			return less(pairs[i].From, pairs[j].From)
		}
		return less(pairs[i].To, pairs[j].To)
	})
	return groups, pairs
}

func itoa(id trace.ID) string {
	return string(rune('0'+id.Rank)) + ":" + string(rune('0'+id.Seq%10)) + string(rune('a'+id.Seq/10))
}

func less(a, b trace.ID) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.Seq < b.Seq
}

// randomTrace builds a well-formed trace with collectives, fences, and
// FIFO p2p traffic.
func randomTrace(seed int64, ranks int) *testutil.TraceBuilder {
	rng := rand.New(rand.NewSource(seed))
	b := testutil.NewTraceBuilder(ranks)
	b.WinCreate(1, 0x1000, 256)
	rounds := 10 + rng.Intn(10)
	for round := 0; round < rounds; round++ {
		switch rng.Intn(4) {
		case 0:
			b.Barrier()
		case 1:
			b.Fence(1)
		case 2:
			root := int32(rng.Intn(ranks))
			for r := int32(0); r < int32(ranks); r++ {
				b.Add(r, trace.Event{Kind: trace.KindBcast, Comm: 0, Peer: root})
			}
		case 3:
			src := int32(rng.Intn(ranks))
			dst := int32(rng.Intn(ranks))
			if dst == src {
				dst = (src + 1) % int32(ranks)
			}
			tag := int32(rng.Intn(3))
			n := 1 + rng.Intn(3)
			for k := 0; k < n; k++ {
				b.Add(src, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: dst, Tag: tag})
			}
			for k := 0; k < n; k++ {
				b.Add(dst, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: src, Tag: tag})
			}
		}
	}
	return b
}

func TestNaiveMatchesEfficient(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m, err := model.Build(randomTrace(seed, 4).Set())
		if err != nil {
			t.Fatal(err)
		}
		eff, err := Run(m)
		if err != nil {
			t.Fatalf("seed %d: efficient: %v", seed, err)
		}
		naive, err := RunNaive(m)
		if err != nil {
			t.Fatalf("seed %d: naive: %v", seed, err)
		}
		eg, ep := canonical(eff)
		ng, np := canonical(naive)
		if !reflect.DeepEqual(eg, ng) {
			t.Errorf("seed %d: groups differ\neff:   %v\nnaive: %v", seed, eg, ng)
		}
		if !reflect.DeepEqual(ep, np) {
			t.Errorf("seed %d: p2p differ\neff:   %v\nnaive: %v", seed, ep, np)
		}
	}
}

func TestNaiveDetectsUnmatched(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.Add(0, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 0})
	m, err := model.Build(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunNaive(m); err == nil {
		t.Error("naive matcher must reject unreceived sends")
	}
}
