// Package match implements DN-Analyzer's synchronization matching
// (paper §IV-C-2a, Algorithm 1). It pairs up the synchronization calls
// recorded in the per-rank traces — collectives, blocking send/receive,
// nonblocking send/receive with their waits, and the PSCW one-sided
// synchronization calls — producing the cross-process ordering constraints
// from which the data-access DAG is built.
//
// Faithful to Algorithm 1, matching simulates the progress of the real MPI
// processes: a vector of progress counters (matched entries over total
// entries per rank) drives the scan, always advancing the rank with minimum
// progress. Collectives are matched by per-scope sequence number (the k-th
// collective on a communicator at one rank matches the k-th at every other
// member, since collectives on one communicator are totally ordered);
// point-to-point calls are matched FIFO per (source, destination, tag,
// communicator) channel, which is exact under MPI's non-overtaking rule.
package match

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/trace"
)

// Direction describes which way a matched collective orders its members.
type Direction uint8

const (
	// DirAll: every member synchronizes with every other (barrier-like).
	DirAll Direction = iota
	// DirFromRoot: the root's event happens-before the others (Bcast, Scatter).
	DirFromRoot
	// DirToRoot: the others' events happen-before the root's (Reduce, Gather).
	DirToRoot
)

func (d Direction) String() string {
	switch d {
	case DirFromRoot:
		return "from-root"
	case DirToRoot:
		return "to-root"
	default:
		return "all"
	}
}

// Group is one matched collective instance.
type Group struct {
	Kind      trace.Kind
	Direction Direction
	Root      trace.ID   // valid when Direction != DirAll
	Events    []trace.ID // one per participating rank
}

// Pair is one matched ordered pair: From happens-before To.
type Pair struct {
	From, To trace.ID
}

// Matches is the full matching result.
type Matches struct {
	Groups []Group
	// P2P pairs: Send/Isend → Recv (or the WaitReq completing an Irecv).
	P2P []Pair
	// PSCW pairs: Win_post → Win_start and Win_complete → Win_wait.
	PostStart    []Pair
	CompleteWait []Pair
}

// direction classifies a collective kind.
func direction(k trace.Kind) Direction {
	switch k {
	case trace.KindBcast, trace.KindScatter:
		return DirFromRoot
	case trace.KindReduce, trace.KindGather:
		return DirToRoot
	default:
		return DirAll
	}
}

type scopeKey struct {
	class byte // 'c' comm, 'w' window, 'n' new-comm definition
	id    int32
	seq   int // per-scope collective instance index
}

type pendingColl struct {
	kind     trace.Kind
	rootRel  int32
	expected int
	events   []trace.ID
	ranks    map[int32]bool
}

type chanKey struct {
	comm     int32
	src, dst int32 // world ranks
	tag      int32
}

type pscwKey struct {
	win            int32
	origin, target int32 // world ranks
	seq            int
}

type matcher struct {
	m   *model.Model
	out Matches

	collSeq map[byte]map[int32]map[int32]int // class → id → rank → next seq
	pending map[scopeKey]*pendingColl

	sendQ map[chanKey][]trace.ID
	recvQ map[chanKey][]trace.ID

	reqKind map[reqID]trace.Kind // rank+req → Isend/Irecv

	postSeq  map[[3]int32]int // (win, target, origin) → next post instance at target
	startSeq map[[3]int32]int // (win, origin, target) → next start instance at origin
	posts    map[pscwKey]trace.ID
	starts   map[pscwKey]trace.ID

	openStarts map[[2]int32][][]int32 // (rank, win) → queue of open start groups (world ranks)
	compSeq    map[[3]int32]int       // (win, origin, target) → next complete instance
	waitSeq    map[[3]int32]int       // (win, target, origin) → next wait instance
	completes  map[pscwKey]trace.ID
	waits      map[pscwKey][]trace.ID // wait event, by (win, target, origin, seq)

	openPosts map[[2]int32][][]int32 // (rank, win) → queue of posted origin groups
}

type reqID struct {
	rank int32
	req  int32
}

// Run matches all synchronization calls in the model's trace set.
func Run(m *model.Model) (*Matches, error) {
	mt := &matcher{
		m:          m,
		collSeq:    map[byte]map[int32]map[int32]int{'c': {}, 'w': {}, 'n': {}},
		pending:    map[scopeKey]*pendingColl{},
		sendQ:      map[chanKey][]trace.ID{},
		recvQ:      map[chanKey][]trace.ID{},
		reqKind:    map[reqID]trace.Kind{},
		postSeq:    map[[3]int32]int{},
		startSeq:   map[[3]int32]int{},
		posts:      map[pscwKey]trace.ID{},
		starts:     map[pscwKey]trace.ID{},
		openStarts: map[[2]int32][][]int32{},
		compSeq:    map[[3]int32]int{},
		waitSeq:    map[[3]int32]int{},
		completes:  map[pscwKey]trace.ID{},
		waits:      map[pscwKey][]trace.ID{},
		openPosts:  map[[2]int32][][]int32{},
	}
	if err := mt.scan(); err != nil {
		return nil, err
	}
	if err := mt.finish(); err != nil {
		return nil, err
	}
	return &mt.out, nil
}

// scan is Algorithm 1's main loop: repeatedly advance the rank with minimum
// progress, processing synchronization entries and skipping the rest.
func (mt *matcher) scan() error {
	set := mt.m.Set
	n := set.Ranks()
	cursor := make([]int, n)
	for {
		r := -1
		best := 2.0
		for q := 0; q < n; q++ {
			total := len(set.Traces[q].Events)
			if cursor[q] >= total {
				continue
			}
			prog := 0.0
			if total > 0 {
				prog = float64(cursor[q]) / float64(total)
			}
			if prog < best {
				best, r = prog, q
			}
		}
		if r < 0 {
			return nil // all traces fully scanned
		}
		ev := &set.Traces[r].Events[cursor[r]]
		cursor[r]++
		if !ev.Kind.IsSync() {
			continue
		}
		if err := mt.process(ev); err != nil {
			return err
		}
	}
}

func (mt *matcher) process(ev *trace.Event) error {
	switch {
	case ev.Kind.IsCollective():
		return mt.processCollective(ev)
	case ev.Kind == trace.KindSend || ev.Kind == trace.KindIsend:
		if ev.Kind == trace.KindIsend {
			mt.reqKind[reqID{ev.Rank, ev.Req}] = trace.KindIsend
		}
		return mt.processSendSide(ev)
	case ev.Kind == trace.KindRecv:
		return mt.processRecvSide(ev)
	case ev.Kind == trace.KindIrecv:
		mt.reqKind[reqID{ev.Rank, ev.Req}] = trace.KindIrecv
		return nil // completion point is the Wait
	case ev.Kind == trace.KindWaitReq:
		if mt.reqKind[reqID{ev.Rank, ev.Req}] == trace.KindIrecv {
			return mt.processRecvSide(ev)
		}
		return nil // Isend wait: local completion only
	case ev.Kind == trace.KindWinPost:
		return mt.processPost(ev)
	case ev.Kind == trace.KindWinStart:
		return mt.processStart(ev)
	case ev.Kind == trace.KindWinComplete:
		return mt.processComplete(ev)
	case ev.Kind == trace.KindWinWait:
		return mt.processWait(ev)
	case ev.Kind == trace.KindWinLock || ev.Kind == trace.KindWinUnlock,
		ev.Kind == trace.KindWinLockAll || ev.Kind == trace.KindWinUnlockAll,
		ev.Kind == trace.KindWinFlush || ev.Kind == trace.KindWinFlushLocal:
		// Passive-target locks and flushes do not synchronize processes by
		// themselves (paper §III-C: passive mode requires other MPI calls
		// such as MPI_Barrier for interprocess synchronization); flush
		// orders operations only within the issuing process.
		return nil
	}
	return nil
}

// scopeOf determines the matching scope and expected membership of a
// collective event.
func (mt *matcher) scopeOf(ev *trace.Event) (class byte, id int32, members []int32, err error) {
	switch ev.Kind {
	case trace.KindWinFence:
		wi, werr := mt.m.Win(ev.Win)
		if werr != nil {
			return 0, 0, nil, werr
		}
		ci, cerr := mt.m.Comm(wi.Comm)
		if cerr != nil {
			return 0, 0, nil, cerr
		}
		return 'w', ev.Win, ci.Members, nil
	case trace.KindWinCreate, trace.KindWinFree:
		ci, cerr := mt.m.Comm(ev.Comm)
		if cerr != nil {
			return 0, 0, nil, cerr
		}
		return 'w', ev.Win, ci.Members, nil
	case trace.KindCommCreate:
		// Only the members of the new communicator log this event.
		return 'n', ev.Comm, ev.Members, nil
	default:
		ci, cerr := mt.m.Comm(ev.Comm)
		if cerr != nil {
			return 0, 0, nil, cerr
		}
		return 'c', ev.Comm, ci.Members, nil
	}
}

func (mt *matcher) processCollective(ev *trace.Event) error {
	class, id, members, err := mt.scopeOf(ev)
	if err != nil {
		return fmt.Errorf("match: %s at %s: %w", ev.Kind, ev.Loc(), err)
	}
	seqs := mt.collSeq[class]
	if seqs[id] == nil {
		seqs[id] = map[int32]int{}
	}
	seq := seqs[id][ev.Rank]
	seqs[id][ev.Rank]++
	key := scopeKey{class: class, id: id, seq: seq}
	pc := mt.pending[key]
	if pc == nil {
		pc = &pendingColl{kind: ev.Kind, rootRel: ev.Peer, expected: len(members), ranks: map[int32]bool{}}
		mt.pending[key] = pc
	}
	if pc.kind != ev.Kind {
		return fmt.Errorf("match: collective mismatch in scope %c%d instance %d: %s at %s vs %s",
			class, id, seq, ev.Kind, ev.Loc(), pc.kind)
	}
	if direction(ev.Kind) != DirAll && pc.rootRel != ev.Peer {
		return fmt.Errorf("match: root mismatch in %s instance %d: rank %d uses root %d, others %d",
			ev.Kind, seq, ev.Rank, ev.Peer, pc.rootRel)
	}
	if pc.ranks[ev.Rank] {
		return fmt.Errorf("match: rank %d appears twice in %s instance %d on scope %c%d",
			ev.Rank, ev.Kind, seq, class, id)
	}
	pc.ranks[ev.Rank] = true
	pc.events = append(pc.events, ev.ID())
	if len(pc.events) == pc.expected {
		g := Group{Kind: pc.kind, Direction: direction(pc.kind), Events: pc.events}
		if g.Direction != DirAll {
			rootWorld := members[pc.rootRel]
			for _, id := range pc.events {
				if id.Rank == rootWorld {
					g.Root = id
					break
				}
			}
		}
		mt.out.Groups = append(mt.out.Groups, g)
		delete(mt.pending, key)
	}
	return nil
}

func (mt *matcher) chanKeyOf(ev *trace.Event, sendSide bool) (chanKey, error) {
	ci, err := mt.m.Comm(ev.Comm)
	if err != nil {
		return chanKey{}, err
	}
	peer, err := ci.World(ev.Peer)
	if err != nil {
		return chanKey{}, fmt.Errorf("match: %s at %s: %w", ev.Kind, ev.Loc(), err)
	}
	if sendSide {
		return chanKey{comm: ev.Comm, src: ev.Rank, dst: peer, tag: ev.Tag}, nil
	}
	return chanKey{comm: ev.Comm, src: peer, dst: ev.Rank, tag: ev.Tag}, nil
}

func (mt *matcher) processSendSide(ev *trace.Event) error {
	key, err := mt.chanKeyOf(ev, true)
	if err != nil {
		return err
	}
	if rq := mt.recvQ[key]; len(rq) > 0 {
		mt.out.P2P = append(mt.out.P2P, Pair{From: ev.ID(), To: rq[0]})
		mt.recvQ[key] = rq[1:]
		return nil
	}
	mt.sendQ[key] = append(mt.sendQ[key], ev.ID())
	return nil
}

func (mt *matcher) processRecvSide(ev *trace.Event) error {
	key, err := mt.chanKeyOf(ev, false)
	if err != nil {
		return err
	}
	if sq := mt.sendQ[key]; len(sq) > 0 {
		mt.out.P2P = append(mt.out.P2P, Pair{From: sq[0], To: ev.ID()})
		mt.sendQ[key] = sq[1:]
		return nil
	}
	mt.recvQ[key] = append(mt.recvQ[key], ev.ID())
	return nil
}

func (mt *matcher) processPost(ev *trace.Event) error {
	rk := [2]int32{ev.Rank, ev.Win}
	mt.openPosts[rk] = append(mt.openPosts[rk], ev.Members)
	for _, origin := range ev.Members {
		k := [3]int32{ev.Win, ev.Rank, origin}
		seq := mt.postSeq[k]
		mt.postSeq[k]++
		pk := pscwKey{win: ev.Win, origin: origin, target: ev.Rank, seq: seq}
		if start, ok := mt.starts[pk]; ok {
			mt.out.PostStart = append(mt.out.PostStart, Pair{From: ev.ID(), To: start})
			delete(mt.starts, pk)
		} else {
			mt.posts[pk] = ev.ID()
		}
	}
	return nil
}

func (mt *matcher) processStart(ev *trace.Event) error {
	rk := [2]int32{ev.Rank, ev.Win}
	mt.openStarts[rk] = append(mt.openStarts[rk], ev.Members)
	for _, target := range ev.Members {
		k := [3]int32{ev.Win, ev.Rank, target}
		seq := mt.startSeq[k]
		mt.startSeq[k]++
		pk := pscwKey{win: ev.Win, origin: ev.Rank, target: target, seq: seq}
		if post, ok := mt.posts[pk]; ok {
			mt.out.PostStart = append(mt.out.PostStart, Pair{From: post, To: ev.ID()})
			delete(mt.posts, pk)
		} else {
			mt.starts[pk] = ev.ID()
		}
	}
	return nil
}

func (mt *matcher) processComplete(ev *trace.Event) error {
	rk := [2]int32{ev.Rank, ev.Win}
	q := mt.openStarts[rk]
	if len(q) == 0 {
		return fmt.Errorf("match: %s at %s without an open access epoch", ev.Kind, ev.Loc())
	}
	targets := q[0]
	mt.openStarts[rk] = q[1:]
	for _, target := range targets {
		k := [3]int32{ev.Win, ev.Rank, target}
		seq := mt.compSeq[k]
		mt.compSeq[k]++
		pk := pscwKey{win: ev.Win, origin: ev.Rank, target: target, seq: seq}
		if wq, ok := mt.waits[pk]; ok && len(wq) > 0 {
			mt.out.CompleteWait = append(mt.out.CompleteWait, Pair{From: ev.ID(), To: wq[0]})
			mt.waits[pk] = wq[1:]
		} else {
			mt.completes[pk] = ev.ID()
		}
	}
	return nil
}

func (mt *matcher) processWait(ev *trace.Event) error {
	rk := [2]int32{ev.Rank, ev.Win}
	q := mt.openPosts[rk]
	if len(q) == 0 {
		return fmt.Errorf("match: %s at %s without an open exposure epoch", ev.Kind, ev.Loc())
	}
	origins := q[0]
	mt.openPosts[rk] = q[1:]
	for _, origin := range origins {
		k := [3]int32{ev.Win, ev.Rank, origin}
		seq := mt.waitSeq[k]
		mt.waitSeq[k]++
		pk := pscwKey{win: ev.Win, origin: origin, target: ev.Rank, seq: seq}
		if comp, ok := mt.completes[pk]; ok {
			mt.out.CompleteWait = append(mt.out.CompleteWait, Pair{From: comp, To: ev.ID()})
			delete(mt.completes, pk)
		} else {
			mt.waits[pk] = append(mt.waits[pk], ev.ID())
		}
	}
	return nil
}

// finish validates that nothing is left unmatched; a correct trace of a
// completed run matches everything.
func (mt *matcher) finish() error {
	for key, pc := range mt.pending {
		return fmt.Errorf("match: collective %s on scope %c%d instance %d matched only %d of %d ranks",
			pc.kind, key.class, key.id, key.seq, len(pc.events), pc.expected)
	}
	for key, q := range mt.sendQ {
		if len(q) > 0 {
			ev := mt.m.Set.Get(q[0])
			return fmt.Errorf("match: %d unreceived message(s) from rank %d to rank %d tag %d (first sent at %s)",
				len(q), key.src, key.dst, key.tag, ev.Loc())
		}
	}
	for key, q := range mt.recvQ {
		if len(q) > 0 {
			ev := mt.m.Set.Get(q[0])
			return fmt.Errorf("match: %d receive(s) at rank %d from rank %d tag %d never matched (first at %s)",
				len(q), key.dst, key.src, key.tag, ev.Loc())
		}
	}
	if len(mt.posts) > 0 || len(mt.starts) > 0 {
		return fmt.Errorf("match: %d post(s) and %d start(s) unmatched", len(mt.posts), len(mt.starts))
	}
	for _, q := range mt.waits {
		if len(q) > 0 {
			return fmt.Errorf("match: unmatched Win_wait")
		}
	}
	if len(mt.completes) > 0 {
		return fmt.Errorf("match: %d Win_complete(s) unmatched", len(mt.completes))
	}
	return nil
}
