package match

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/trace"
)

// RunNaive is the straightforward matching algorithm the paper describes
// and rejects (§IV-C-2a): "For each synchronization call, one scans
// through all the traces in the corresponding processes and locates its
// matching synchronization calls. This algorithm is time-consuming ...
// especially for large trace files."
//
// For every synchronization event, it scans the peer traces from the
// beginning, skipping entries already consumed by earlier matches, to find
// the partner call. Results are identical to Run's (the progress-counter
// matcher of Algorithm 1); the cost is quadratic in trace length per
// channel instead of linear. It exists as the ablation baseline for the
// matching benchmark.
func RunNaive(m *model.Model) (*Matches, error) {
	set := m.Set
	out := &Matches{}

	// consumed marks events already matched (per event id).
	consumed := map[trace.ID]bool{}

	// Collectives: for each unconsumed collective event, scan every member
	// rank's trace from the beginning for its first unconsumed event of
	// the same scope.
	scopeEq := func(a, b *trace.Event) bool {
		if a.Kind != b.Kind {
			return false
		}
		switch a.Kind {
		case trace.KindWinFence, trace.KindWinCreate, trace.KindWinFree:
			return a.Win == b.Win
		case trace.KindCommCreate:
			return a.Comm == b.Comm
		default:
			return a.Comm == b.Comm
		}
	}

	mt := &matcher{m: m} // reuse scope resolution
	for r := 0; r < set.Ranks(); r++ {
		for i := range set.Traces[r].Events {
			ev := &set.Traces[r].Events[i]
			if !ev.Kind.IsCollective() || consumed[ev.ID()] {
				continue
			}
			class, id, members, err := mt.scopeOf(ev)
			if err != nil {
				return nil, err
			}
			_ = class
			_ = id
			g := Group{Kind: ev.Kind, Direction: direction(ev.Kind)}
			rootRel := ev.Peer
			for _, member := range members {
				found := false
				for j := range set.Traces[member].Events {
					cand := &set.Traces[member].Events[j]
					if consumed[cand.ID()] || !scopeEq(ev, cand) {
						continue
					}
					if direction(ev.Kind) != DirAll && cand.Peer != rootRel {
						return nil, fmt.Errorf("match: root mismatch in %s: rank %d uses root %d, others %d",
							ev.Kind, member, cand.Peer, rootRel)
					}
					consumed[cand.ID()] = true
					g.Events = append(g.Events, cand.ID())
					found = true
					break
				}
				if !found {
					return nil, fmt.Errorf("match: collective %s at %s matched only %d of %d ranks",
						ev.Kind, ev.Loc(), len(g.Events), len(members))
				}
			}
			if g.Direction != DirAll {
				rootWorld := members[rootRel]
				for _, gid := range g.Events {
					if gid.Rank == rootWorld {
						g.Root = gid
						break
					}
				}
			}
			out.Groups = append(out.Groups, g)
		}
	}

	// Point-to-point: for every send(-like) event, scan the destination's
	// trace from the beginning for the first unconsumed matching receive
	// completion.
	reqKind := map[reqID]trace.Kind{}
	for r := 0; r < set.Ranks(); r++ {
		for i := range set.Traces[r].Events {
			ev := &set.Traces[r].Events[i]
			if ev.Kind == trace.KindIsend || ev.Kind == trace.KindIrecv {
				reqKind[reqID{ev.Rank, ev.Req}] = ev.Kind
			}
		}
	}
	isRecvSide := func(ev *trace.Event) bool {
		if ev.Kind == trace.KindRecv {
			return true
		}
		return ev.Kind == trace.KindWaitReq && reqKind[reqID{ev.Rank, ev.Req}] == trace.KindIrecv
	}
	for r := 0; r < set.Ranks(); r++ {
		for i := range set.Traces[r].Events {
			ev := &set.Traces[r].Events[i]
			if ev.Kind != trace.KindSend && ev.Kind != trace.KindIsend {
				continue
			}
			ci, err := m.Comm(ev.Comm)
			if err != nil {
				return nil, err
			}
			dst, err := ci.World(ev.Peer)
			if err != nil {
				return nil, err
			}
			found := false
			for j := range set.Traces[dst].Events {
				cand := &set.Traces[dst].Events[j]
				if consumed[cand.ID()] || !isRecvSide(cand) {
					continue
				}
				if cand.Comm != ev.Comm || cand.Tag != ev.Tag {
					continue
				}
				srcWorld, err := ci.World(cand.Peer)
				if err != nil {
					return nil, err
				}
				if srcWorld != ev.Rank {
					continue
				}
				consumed[cand.ID()] = true
				out.P2P = append(out.P2P, Pair{From: ev.ID(), To: cand.ID()})
				found = true
				break
			}
			if !found {
				return nil, fmt.Errorf("match: unreceived message from rank %d at %s", ev.Rank, ev.Loc())
			}
		}
	}

	// PSCW matching reuses the progress-based implementation: the paper's
	// naive-vs-efficient contrast concerns collectives and point-to-point
	// scans, which dominate trace volume.
	eff, err := Run(m)
	if err != nil {
		return nil, err
	}
	out.PostStart = eff.PostStart
	out.CompleteWait = eff.CompleteWait
	return out, nil
}
