// Package par provides the deterministic fan-out helper shared by the
// pipeline's per-rank stages (trace decode, model build, epoch
// extraction). The contract that keeps parallel analysis byte-identical
// to serial analysis lives here in one place: workers write only to
// per-index state, results are consumed in index order by the caller,
// and the error reported is always the one of the lowest failing index —
// the same error a serial left-to-right loop would have returned.
package par

import "sync"

// Ranks runs fn(0) … fn(n-1) on min(workers, n) goroutines and returns
// the error of the lowest index that failed, or nil. With workers <= 1
// the calls run inline in index order (no goroutines, fail-fast), which
// is the reference behaviour the parallel path must reproduce: fn must
// write only to state owned by its index.
func Ranks(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
