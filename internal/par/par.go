// Package par provides the deterministic fan-out helper shared by the
// pipeline's per-rank stages (trace decode, model build, epoch
// extraction). The contract that keeps parallel analysis byte-identical
// to serial analysis lives here in one place: workers write only to
// per-index state, results are consumed in index order by the caller,
// and the error reported is always the one of the lowest failing index —
// the same error a serial left-to-right loop would have returned.
package par

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/obs/tracing"
)

// PanicError is a worker panic converted into an ordinary error: under a
// long-running daemon a panicking unit of work must degrade the one job
// that contained it, not kill the process. Index is the unit of work that
// panicked, Worker the pool goroutine executing it (0 in serial mode),
// Value the recovered panic value, and Stack the goroutine stack captured
// at recovery.
type PanicError struct {
	Index  int
	Worker int
	Value  any
	Stack  []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: panic in work %d (worker %d): %v", e.Index, e.Worker, e.Value)
}

// safeCall runs one unit of work, converting a panic into a *PanicError.
// Both the serial and parallel paths route through it, so the
// serial-identical error-semantics contract extends to panics: either
// mode reports the same *PanicError for the same panicking index.
func safeCall(i, worker int, sp *tracing.Span, fn func(i int, sp *tracing.Span) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Worker: worker, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i, sp)
}

// Ranks runs fn(0) … fn(n-1) on min(workers, n) goroutines and returns
// the error of the lowest index that failed, or nil. With workers <= 1
// the calls run inline in index order (no goroutines, fail-fast), which
// is the reference behaviour the parallel path must reproduce: fn must
// write only to state owned by its index.
func Ranks(n, workers int, fn func(i int) error) error {
	return RanksTraced(n, workers, nil, "", nil, func(i int, _ *tracing.Span) error {
		return fn(i)
	})
}

// RanksTraced is Ranks with each index's execution recorded as a span on
// tr: track is the pipeline stage, scope names the unit of work (e.g.
// "rank 3"), and the lane is the executing worker (wall mode) or the
// scope itself (deterministic mode) via tracing.Recorder.Lane. fn
// receives its span for annotation; both tr and the span may be nil
// (tracing off), which is exactly Ranks.
func RanksTraced(n, workers int, tr *tracing.Recorder, track string,
	scope func(i int) string, fn func(i int, sp *tracing.Span) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			sp := startSpan(tr, track, 0, scope, i)
			err := safeCall(i, 0, sp, fn)
			sp.End()
			if err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				sp := startSpan(tr, track, w, scope, i)
				errs[i] = safeCall(i, w, sp, fn)
				sp.End()
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// startSpan opens one unit-of-work span, or returns nil when tracing is
// off (the scope string is then never built — fan-out sites run in hot
// loops).
func startSpan(tr *tracing.Recorder, track string, worker int, scope func(i int) string, i int) *tracing.Span {
	if tr == nil {
		return nil
	}
	s := fmt.Sprintf("work %d", i)
	if scope != nil {
		s = scope(i)
	}
	return tr.Start(track, tr.Lane(fmt.Sprintf("worker %d", worker), s), s)
}
