package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRanksRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		var hits [50]atomic.Int32
		if err := Ranks(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRanksLowestIndexError(t *testing.T) {
	// Whatever the worker count, the reported error must be the lowest
	// failing index's — the one a serial loop would have hit first.
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0) + 2} {
		err := Ranks(40, workers, func(i int) error {
			if i == 7 || i == 23 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 7" {
			t.Fatalf("workers=%d: got %v, want fail 7", workers, err)
		}
	}
}

func TestRanksEmpty(t *testing.T) {
	if err := Ranks(0, 4, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestRanksRecoversPanics(t *testing.T) {
	// A worker panic must come back as an error carrying the panicking
	// index and a stack, not kill the process — regression for the serve
	// daemon, where one poisoned job must not take down the pool.
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0) + 2} {
		err := Ranks(20, workers, func(i int) error {
			if i == 11 {
				panic(fmt.Sprintf("poison %d", i))
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v (%T), want *PanicError", workers, err, err)
		}
		if pe.Index != 11 {
			t.Fatalf("workers=%d: panic index = %d, want 11", workers, pe.Index)
		}
		if pe.Value != "poison 11" {
			t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
	}
}

func TestRanksPanicLowestIndexWins(t *testing.T) {
	// The serial-identical contract extends to panics: among several
	// failing indexes (panic at 5, error at 9) the lowest wins in every
	// mode, and it is the panic converted to an error.
	for _, workers := range []int{1, 4} {
		err := Ranks(30, workers, func(i int) error {
			switch i {
			case 5:
				panic("first")
			case 9:
				return fmt.Errorf("fail 9")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 5 {
			t.Fatalf("workers=%d: got %v, want panic at index 5", workers, err)
		}
	}
}
