package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRanksRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		var hits [50]atomic.Int32
		if err := Ranks(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRanksLowestIndexError(t *testing.T) {
	// Whatever the worker count, the reported error must be the lowest
	// failing index's — the one a serial loop would have hit first.
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0) + 2} {
		err := Ranks(40, workers, func(i int) error {
			if i == 7 || i == 23 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 7" {
			t.Fatalf("workers=%d: got %v, want fail 7", workers, err)
		}
	}
}

func TestRanksEmpty(t *testing.T) {
	if err := Ranks(0, 4, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Fatal(err)
	}
}
