package profiler

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// runEmulateLike runs a 2-rank program with one window put and local
// accesses on two buffers, returning the collected trace set.
func runEmulateLike(t *testing.T, relevant Relevance) *trace.Set {
	t.Helper()
	sink := trace.NewMemorySink()
	pr := New(sink, relevant)
	err := mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		win := p.Alloc(16, "window")
		scratch := p.Alloc(16, "scratch")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(8, "srcbuf")
			src.SetInt64(0, 5)     // store on srcbuf
			scratch.SetInt64(0, 1) // store on scratch
			_ = scratch.Int64At(0) // load on scratch
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	set := sink.Set()
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	return set
}

func countKind(set *trace.Set, rank int32, k trace.Kind) int {
	n := 0
	for _, ev := range set.Traces[rank].Events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func TestFullInstrumentationSeesAllAccesses(t *testing.T) {
	set := runEmulateLike(t, nil)
	if got := countKind(set, 0, trace.KindStore); got != 2 {
		t.Errorf("stores = %d, want 2", got)
	}
	if got := countKind(set, 0, trace.KindLoad); got != 1 {
		t.Errorf("loads = %d, want 1", got)
	}
}

func TestSelectiveInstrumentationFilters(t *testing.T) {
	// ST-Analyzer-style report: only the window and the put origin matter.
	set := runEmulateLike(t, FromNames([]string{"window", "srcbuf"}))
	if got := countKind(set, 0, trace.KindStore); got != 1 {
		t.Errorf("stores = %d, want 1 (scratch must be filtered)", got)
	}
	if got := countKind(set, 0, trace.KindLoad); got != 0 {
		t.Errorf("loads = %d, want 0", got)
	}
	// MPI call events are always logged regardless of relevance.
	if got := countKind(set, 0, trace.KindPut); got != 1 {
		t.Errorf("puts = %d", got)
	}
	if got := countKind(set, 1, trace.KindWinFence); got != 2 {
		t.Errorf("fences on rank 1 = %d", got)
	}
}

func TestEventOrderInterleavesCallsAndAccesses(t *testing.T) {
	set := runEmulateLike(t, nil)
	// On rank 0 the program order is:
	// WinCreate, Fence, store(srcbuf), store(scratch), load(scratch), Put, Fence, Free.
	var kinds []trace.Kind
	for _, ev := range set.Traces[0].Events {
		kinds = append(kinds, ev.Kind)
	}
	want := []trace.Kind{
		trace.KindWinCreate, trace.KindWinFence,
		trace.KindStore, trace.KindStore, trace.KindLoad,
		trace.KindPut, trace.KindWinFence, trace.KindWinFree,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestAccessEventsCarryLocation(t *testing.T) {
	set := runEmulateLike(t, nil)
	for _, ev := range set.Traces[0].Events {
		if ev.Kind.IsLocalAccess() {
			if !strings.HasSuffix(ev.File, "profiler_test.go") || ev.Line == 0 {
				t.Errorf("access without app location: %v", ev.String())
			}
		}
	}
}

func TestFromNames(t *testing.T) {
	r := FromNames([]string{"a", "b"})
	if !r("a") || !r("b") || r("c") || r("") {
		t.Error("FromNames predicate wrong")
	}
}

func TestAllInstrumentsEveryBuffer(t *testing.T) {
	if !All("anything") || !All("") {
		t.Error("All must accept every buffer name")
	}
	// All is equivalent to a nil Relevance — unlike FromNames(nil), which
	// instruments nothing.
	none := FromNames(nil)
	if none("anything") {
		t.Error("FromNames(nil) must accept nothing")
	}
	set := runEmulateLike(t, All)
	if got := countKind(set, 0, trace.KindStore); got != 2 {
		t.Errorf("stores under All = %d, want 2", got)
	}
	if got := countKind(set, 0, trace.KindLoad); got != 1 {
		t.Errorf("loads under All = %d, want 1", got)
	}
}

// TestMPICallNoAllocWithoutRegistry guards the emit hot path: with no
// observability registry attached, logging an MPI call event must not
// allocate (the disabled instrumentation is a nil check, nothing more).
func TestMPICallNoAllocWithoutRegistry(t *testing.T) {
	pr := New(trace.NewCountingSink(nil), nil)
	ev := trace.Event{Kind: trace.KindBarrier, Rank: 0}
	if allocs := testing.AllocsPerRun(1000, func() {
		pr.MPICall(nil, ev)
	}); allocs != 0 {
		t.Errorf("MPICall allocates %.1f times per event with nil registry, want 0", allocs)
	}
}

func TestObsCountersMatchTrace(t *testing.T) {
	reg := obs.NewRegistry()
	sink := trace.NewMemorySink()
	pr := NewObs(sink, FromNames([]string{"window", "srcbuf"}), reg)
	err := mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		win := p.Alloc(16, "window")
		scratch := p.Alloc(16, "scratch")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(8, "srcbuf")
			src.SetInt64(0, 5)
			scratch.SetInt64(0, 1)
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	set := sink.Set()
	snap := reg.Snapshot()

	// Per-kind counters must agree with the trace the sink collected.
	for _, k := range []trace.Kind{trace.KindWinFence, trace.KindPut, trace.KindStore} {
		want := int64(countKind(set, 0, k) + countKind(set, 1, k))
		if got := snap.CounterValue("mcchecker_profiler_events_total", "kind", k.String()); got != want {
			t.Errorf("events_total{kind=%q} = %d, want %d", k, got, want)
		}
	}
	// Relevance: window+srcbuf hit (window twice: once per rank), scratch
	// misses on both ranks.
	if hits := snap.CounterValue("mcchecker_profiler_relevance_total", "result", "hit"); hits != 3 {
		t.Errorf("relevance hits = %d, want 3", hits)
	}
	if misses := snap.CounterValue("mcchecker_profiler_relevance_total", "result", "miss"); misses != 2 {
		t.Errorf("relevance misses = %d, want 2", misses)
	}
	// Exact per-rank totals come from the collector.
	for rank := int32(0); rank < 2; rank++ {
		want := int64(len(set.Traces[rank].Events))
		got := snap.GaugeValue("mcchecker_profiler_rank_events", "rank", strconv.Itoa(int(rank)))
		if got != want {
			t.Errorf("rank_events{rank=%d} = %d, want %d", rank, got, want)
		}
	}
}

func TestCountingSinkIntegration(t *testing.T) {
	sink := trace.NewCountingSink(nil)
	pr := New(sink, nil)
	err := mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		b := p.Alloc(8, "x")
		b.SetInt64(0, 1)
		p.Barrier(p.CommWorld())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sink.Stats()
	if st.LoadStore != 2 || st.Collect != 2 {
		t.Errorf("stats = %+v", st)
	}
}
