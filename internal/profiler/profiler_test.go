package profiler

import (
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/trace"
)

// runEmulateLike runs a 2-rank program with one window put and local
// accesses on two buffers, returning the collected trace set.
func runEmulateLike(t *testing.T, relevant Relevance) *trace.Set {
	t.Helper()
	sink := trace.NewMemorySink()
	pr := New(sink, relevant)
	err := mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		win := p.Alloc(16, "window")
		scratch := p.Alloc(16, "scratch")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(8, "srcbuf")
			src.SetInt64(0, 5)     // store on srcbuf
			scratch.SetInt64(0, 1) // store on scratch
			_ = scratch.Int64At(0) // load on scratch
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	set := sink.Set()
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	return set
}

func countKind(set *trace.Set, rank int32, k trace.Kind) int {
	n := 0
	for _, ev := range set.Traces[rank].Events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func TestFullInstrumentationSeesAllAccesses(t *testing.T) {
	set := runEmulateLike(t, nil)
	if got := countKind(set, 0, trace.KindStore); got != 2 {
		t.Errorf("stores = %d, want 2", got)
	}
	if got := countKind(set, 0, trace.KindLoad); got != 1 {
		t.Errorf("loads = %d, want 1", got)
	}
}

func TestSelectiveInstrumentationFilters(t *testing.T) {
	// ST-Analyzer-style report: only the window and the put origin matter.
	set := runEmulateLike(t, FromNames([]string{"window", "srcbuf"}))
	if got := countKind(set, 0, trace.KindStore); got != 1 {
		t.Errorf("stores = %d, want 1 (scratch must be filtered)", got)
	}
	if got := countKind(set, 0, trace.KindLoad); got != 0 {
		t.Errorf("loads = %d, want 0", got)
	}
	// MPI call events are always logged regardless of relevance.
	if got := countKind(set, 0, trace.KindPut); got != 1 {
		t.Errorf("puts = %d", got)
	}
	if got := countKind(set, 1, trace.KindWinFence); got != 2 {
		t.Errorf("fences on rank 1 = %d", got)
	}
}

func TestEventOrderInterleavesCallsAndAccesses(t *testing.T) {
	set := runEmulateLike(t, nil)
	// On rank 0 the program order is:
	// WinCreate, Fence, store(srcbuf), store(scratch), load(scratch), Put, Fence, Free.
	var kinds []trace.Kind
	for _, ev := range set.Traces[0].Events {
		kinds = append(kinds, ev.Kind)
	}
	want := []trace.Kind{
		trace.KindWinCreate, trace.KindWinFence,
		trace.KindStore, trace.KindStore, trace.KindLoad,
		trace.KindPut, trace.KindWinFence, trace.KindWinFree,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestAccessEventsCarryLocation(t *testing.T) {
	set := runEmulateLike(t, nil)
	for _, ev := range set.Traces[0].Events {
		if ev.Kind.IsLocalAccess() {
			if !strings.HasSuffix(ev.File, "profiler_test.go") || ev.Line == 0 {
				t.Errorf("access without app location: %v", ev.String())
			}
		}
	}
}

func TestFromNames(t *testing.T) {
	r := FromNames([]string{"a", "b"})
	if !r("a") || !r("b") || r("c") || r("") {
		t.Error("FromNames predicate wrong")
	}
}

func TestCountingSinkIntegration(t *testing.T) {
	sink := trace.NewCountingSink(nil)
	pr := New(sink, nil)
	err := mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		b := p.Alloc(8, "x")
		b.SetInt64(0, 1)
		p.Barrier(p.CommWorld())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sink.Stats()
	if st.LoadStore != 2 || st.Collect != 2 {
		t.Errorf("stats = %+v", st)
	}
}
