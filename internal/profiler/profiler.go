// Package profiler implements MC-Checker's online component (paper §IV-B):
// it interposes on MPI calls and on the loads/stores of statically selected
// variables, logging runtime events to a trace sink.
//
// In the paper the Profiler is an LLVM pass instrumenting the binary; here
// it implements mpi.Hook. The selective-instrumentation decision made by
// ST-Analyzer (paper §IV-A) arrives as a relevance predicate over buffer
// names: the profiler attaches load/store observers only to buffers the
// predicate accepts. Passing a nil predicate observes every tracked buffer
// — the "no static analysis" configuration whose overhead the paper
// contrasts with the selective one (§VII-B).
//
// The hot path is engineered like real instrumentation: source locations
// resolve through a per-PC cache (static knowledge in the original), and
// sequence numbers are per-rank counters touched only by the rank's own
// goroutine, so emitting an event costs on the order of the instrumented
// access itself.
package profiler

import (
	"fmt"
	"strconv"

	"repro/internal/memory"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Relevance decides which buffers' loads and stores are instrumented.
// It is the runtime form of the ST-Analyzer report.
type Relevance func(bufferName string) bool

// All instruments every tracked buffer — the "no static analysis"
// configuration. It is equivalent to passing a nil Relevance, but explicit:
// note that FromNames(nil) is the opposite (an empty relevant set that
// instruments nothing), so callers wanting full instrumentation should use
// All rather than rebuilding the every-buffer predicate by hand.
var All Relevance = func(string) bool { return true }

// FromNames builds a Relevance from an explicit set of variable names, the
// shape of the report ST-Analyzer produces. An empty or nil list yields a
// predicate that accepts nothing; use All (or nil) for full
// instrumentation.
func FromNames(names []string) Relevance {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return func(name string) bool { return set[name] }
}

// MaxRanks bounds the number of ranks one Profiler can serve.
const MaxRanks = 4096

// Profiler collects runtime events from a simulated MPI world. One Profiler
// serves all ranks of one run. Each rank's events are emitted from that
// rank's own goroutine; the sink must be safe for concurrent use.
type Profiler struct {
	sink     trace.Sink
	relevant Relevance // nil = instrument everything

	// seq[r] is rank r's next sequence number; only rank r's goroutine
	// touches it, so no synchronization is needed. Counters are padded to
	// cache lines to avoid false sharing between rank goroutines.
	seq [MaxRanks]paddedCounter

	// Observability handles (all nil when no registry is attached, making
	// the disabled path one nil check per event with no allocation).
	// events is indexed by trace.Kind; the counters are rank-sharded so the
	// instrumentation does not serialize the rank goroutines it measures.
	events  [trace.KindCount]*obs.RankCounter
	relHit  *obs.Counter
	relMiss *obs.Counter
}

type paddedCounter struct {
	v int64
	_ [56]byte
}

var _ mpi.Hook = (*Profiler)(nil)

// New returns a profiler writing to sink. relevant may be nil (or All) to
// instrument all buffers (full instrumentation, no static analysis).
func New(sink trace.Sink, relevant Relevance) *Profiler {
	return NewObs(sink, relevant, nil)
}

// NewObs is New with an observability registry attached: the profiler
// records events emitted per kind, exact per-rank event counts, and
// relevance-filter hits and misses (ST-Analyzer's selectivity, the lever
// behind the paper's Figure 8 overhead comparison). reg may be nil, which
// is exactly New.
func NewObs(sink trace.Sink, relevant Relevance, reg *obs.Registry) *Profiler {
	pr := &Profiler{sink: sink, relevant: relevant}
	if reg == nil {
		return pr
	}
	for k := 1; k < trace.KindCount; k++ {
		pr.events[k] = reg.RankCounter("mcchecker_profiler_events_total", "kind", trace.Kind(k).String())
	}
	pr.relHit = reg.Counter("mcchecker_profiler_relevance_total", "result", "hit")
	pr.relMiss = reg.Counter("mcchecker_profiler_relevance_total", "result", "miss")
	reg.AddCollector(pr.rankEventCounts)
	return pr
}

// rankEventCounts exposes the exact events-per-rank tallies (the per-rank
// sequence counters) as gauges at snapshot time, at zero hot-path cost.
// The sequence counters are rank-local and unsynchronized, so a snapshot
// taken while ranks are still running may read mid-update values; take
// snapshots after mpi.Run returns for exact counts.
func (pr *Profiler) rankEventCounts() []obs.GaugeValue {
	var out []obs.GaugeValue
	for r := 0; r < MaxRanks; r++ {
		if n := pr.seq[r].v; n > 0 {
			out = append(out, obs.GaugeValue{
				Name:   "mcchecker_profiler_rank_events",
				Labels: `rank="` + strconv.Itoa(r) + `"`,
				Value:  n,
			})
		}
	}
	return out
}

func (pr *Profiler) counter(rank int32) *int64 {
	if rank < 0 || rank >= MaxRanks {
		panic(fmt.Sprintf("profiler: rank %d exceeds MaxRanks %d", rank, MaxRanks))
	}
	return &pr.seq[rank].v
}

// MPICall implements mpi.Hook: every MPI call event is logged.
func (pr *Profiler) MPICall(p *mpi.Proc, ev trace.Event) {
	c := pr.counter(ev.Rank)
	ev.Seq = *c
	*c++
	pr.events[ev.Kind].Inc(ev.Rank)
	pr.sink.Emit(ev)
}

// BufferAllocated implements mpi.Hook: buffers selected by the relevance
// predicate get a load/store observer that logs access events interleaved
// (by sequence number) with the rank's MPI call events.
func (pr *Profiler) BufferAllocated(p *mpi.Proc, b *memory.Buffer) {
	if pr.relevant != nil && !pr.relevant(b.Name()) {
		pr.relMiss.Inc()
		return
	}
	pr.relHit.Inc()
	rank := int32(p.Rank())
	c := pr.counter(rank)
	sink := pr.sink
	loadCtr, storeCtr := pr.events[trace.KindLoad], pr.events[trace.KindStore]
	b.SetObserver(memory.ObserverFunc(func(_ *memory.Buffer, a memory.Access) {
		kind := trace.KindLoad
		ctr := loadCtr
		if a.Kind == memory.Store {
			kind = trace.KindStore
			ctr = storeCtr
		}
		ctr.Inc(rank)
		ev := trace.Event{
			Kind: kind,
			Rank: rank,
			Seq:  *c,
			Addr: a.Addr,
			Size: a.Size,
			File: a.File,
			Line: int32(a.Line),
			Func: a.Func,
		}
		*c++
		sink.Emit(ev)
	}))
}
