package stanalyzer

// epoch.go: the flow-sensitive walk behind the static checker. Each
// function body is interpreted abstractly, statement by statement,
// tracking per-window epoch state (fence / lock-unlock / PSCW), the RMA
// operations pending in each open epoch, and a global synchronization
// phase counter that advances at barriers and fences. Control flow is
// handled conservatively: branches that the Defines table cannot decide
// are walked on cloned states and merged at the join (union of pending
// operations, minimum phase), and loop bodies are walked twice so that
// loop-carried pending operations (the BT-broadcast spin loop) become
// visible on the second pass.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// epochKind classifies an open synchronization epoch.
type epochKind uint8

const (
	epFence    epochKind = iota // Fence..Fence active-target span
	epLock                      // Lock(target)..Unlock(target)
	epLockAll                   // LockAll..UnlockAll
	epAccess                    // Start..Complete (PSCW access)
	epExposure                  // Post..Wait (PSCW exposure)
)

func (k epochKind) String() string {
	switch k {
	case epFence:
		return "fence"
	case epLock:
		return "lock"
	case epLockAll:
		return "lock-all"
	case epAccess:
		return "pscw-access"
	}
	return "pscw-exposure"
}

// bufUse is one buffer region an RMA operation reads or writes locally.
type bufUse struct {
	key string // canonical buffer identity
	sp  span
}

// pendingOp is an issued, not-yet-completed RMA operation.
type pendingOp struct {
	call   string // "Put", "Get", ...
	pos    token.Pos
	winKey string

	targetText string // target-rank expression, canonical text
	targetVal  *int64 // constant target rank, if known

	tgtSpan      span // byte footprint in the target window
	writesTarget bool
	readsTarget  bool
	accFamily    bool

	reads  []bufUse // origin regions MPI reads (local stores conflict)
	writes []bufUse // origin/result regions MPI writes (loads and stores conflict)

	localDone bool // origin reusable after Flush_local
	merged    bool // survived a control-flow join on one side only
}

func (op *pendingOp) cloneOp() *pendingOp {
	c := *op
	return &c
}

// epochState is one open epoch on one window.
type epochState struct {
	kind    epochKind
	winKey  string
	target  string // lock target text, "" otherwise
	openPos token.Pos
	ops     []*pendingOp
}

func (e *epochState) cloneEpoch() *epochState {
	c := &epochState{kind: e.kind, winKey: e.winKey, target: e.target, openPos: e.openPos}
	c.ops = make([]*pendingOp, len(e.ops))
	for i, op := range e.ops {
		c.ops[i] = op.cloneOp()
	}
	return c
}

// walkState is the mutable abstract state of one walk: the phase counter
// and the open epochs.
type walkState struct {
	phase      int
	phaseFuzzy bool // phases diverged at a join; cross-phase matches demote
	epochs     []*epochState
}

func (s *walkState) clone() *walkState {
	c := &walkState{phase: s.phase, phaseFuzzy: s.phaseFuzzy}
	c.epochs = make([]*epochState, len(s.epochs))
	for i, e := range s.epochs {
		c.epochs[i] = e.cloneEpoch()
	}
	return c
}

func epochSig(e *epochState) string {
	return strconv.Itoa(int(e.kind)) + "|" + e.winKey + "|" + e.target + "|" + strconv.Itoa(int(e.openPos))
}

func opSig(op *pendingOp) string {
	return op.call + "|" + strconv.Itoa(int(op.pos))
}

// mergeStates joins two branch states conservatively: the phase is the
// minimum (marking fuzziness when they differ), and epochs/pending
// operations are unioned, with anything present on only one side marked
// merged so downstream findings demote their confidence.
func mergeStates(a, b *walkState) *walkState {
	out := &walkState{phase: a.phase, phaseFuzzy: a.phaseFuzzy || b.phaseFuzzy}
	if b.phase < out.phase {
		out.phase = b.phase
	}
	if a.phase != b.phase {
		out.phaseFuzzy = true
	}
	bByKey := map[string]*epochState{}
	for _, e := range b.epochs {
		bByKey[epochSig(e)] = e
	}
	seenB := map[string]bool{}
	for _, ea := range a.epochs {
		sig := epochSig(ea)
		eb, ok := bByKey[sig]
		if !ok {
			// Open in one branch only: keep, all ops conditional.
			m := ea.cloneEpoch()
			for _, op := range m.ops {
				op.merged = true
			}
			out.epochs = append(out.epochs, m)
			continue
		}
		seenB[sig] = true
		m := &epochState{kind: ea.kind, winKey: ea.winKey, target: ea.target, openPos: ea.openPos}
		opsB := map[string]*pendingOp{}
		for _, op := range eb.ops {
			opsB[opSig(op)] = op
		}
		seenOpB := map[string]bool{}
		for _, opA := range ea.ops {
			c := opA.cloneOp()
			if opB, ok := opsB[opSig(opA)]; ok {
				seenOpB[opSig(opA)] = true
				c.localDone = c.localDone && opB.localDone
				c.merged = c.merged || opB.merged
			} else {
				c.merged = true
			}
			m.ops = append(m.ops, c)
		}
		for _, opB := range eb.ops {
			if !seenOpB[opSig(opB)] {
				c := opB.cloneOp()
				c.merged = true
				m.ops = append(m.ops, c)
			}
		}
		out.epochs = append(out.epochs, m)
	}
	for _, eb := range b.epochs {
		if !seenB[epochSig(eb)] {
			m := eb.cloneEpoch()
			for _, op := range m.ops {
				op.merged = true
			}
			out.epochs = append(out.epochs, m)
		}
	}
	return out
}

// winInfo is a window registration discovered during the walk.
type winInfo struct {
	key      string // canonical window-variable identity
	bufKey   string // canonical identity of the backing buffer
	bufName  string // runtime allocation name, if tracked
	text     string // source spelling of the window variable
	dispUnit int64  // 0 = unknown
}

// methodRef resolves a method-value binding (f := w.Put).
type methodRef struct {
	win    *winInfo
	method string
}

// rmaEvent is one RMA call recorded for the cross-process phase rules.
type rmaEvent struct {
	call         string
	pos          token.Pos
	winKey       string
	targetText   string
	targetVal    *int64
	tgtSpan      span
	phase        int
	fuzzy        bool
	rankGuard    string
	writesTarget bool
	readsTarget  bool
	accFamily    bool

	accOp string // reduction-op expression of accumulate-family calls

	// Epoch identity at issue time, for repair-action planning: a
	// split-epoch action is only sound when both events share one fence
	// epoch.
	inEpoch   bool
	epoch     epochKind
	epochOpen token.Pos
}

// localEvent is one load/store through a buffer accessor.
type localEvent struct {
	bufKey     string
	write      bool
	sp         span
	phase      int
	fuzzy      bool
	rankGuard  string
	pos        token.Pos
	inExposure string // window key when inside that window's exposure epoch
}

// walker interprets one function.
type walker struct {
	c       *checker
	fnScope string // scope for name resolution (matches the taint pass)
	st      *walkState

	wins       map[string]*winInfo  // canonical key → window
	methodVals map[string]methodRef // canonical key → bound RMA method

	rankGuards []string // active rank-exclusive branch guards

	rma   []rmaEvent
	local []localEvent

	subst map[string]ast.Expr // summary replay: callee param → caller arg
	outer *walker             // summary replay: caller walker
	depth int
}

// resolveKey maps an identifier to its canonical alias-set representative.
func (w *walker) resolveKey(name string) string {
	scoped := scopedName(w.fnScope, name)
	if c, ok := w.c.canon[scoped]; ok {
		return c
	}
	if c, ok := w.c.canon["pkg."+name]; ok {
		return c
	}
	return scoped
}

func (w *walker) rankGuard() string {
	return strings.Join(w.rankGuards, "&")
}

// exprText renders an expression canonically for target/guard comparison.
func exprText(e ast.Expr) string { return types.ExprString(e) }

// isRankExpr reports whether the expression is a rank query (p.Rank()).
func isRankExpr(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Rank"
}

// branchGuards inspects an if condition and returns the rank-exclusivity
// markers for the then and else branches. A branch is rank-exclusive when
// the condition pins p.Rank() to one value (`p.Rank() == expr` then-side,
// `p.Rank() != expr` else-side): at most one rank executes it per value
// of expr, so two operations inside it are program-ordered, not
// concurrent across processes.
func branchGuards(cond ast.Expr) (then, els string) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return "", ""
	}
	if !isRankExpr(bin.X) && !isRankExpr(bin.Y) {
		return "", ""
	}
	switch bin.Op {
	case token.EQL:
		return "rank==" + exprText(cond), ""
	case token.NEQ:
		return "", "rank==" + exprText(cond)
	}
	return "", ""
}

// evalCond decides a branch condition from the Defines table:
// 1 true, 0 false, -1 unknown. Short-circuit operators prune chains like
// `active && me == sender && !buggy` as soon as one leg is decided.
func (w *walker) evalCond(e ast.Expr) int {
	switch v := e.(type) {
	case *ast.Ident:
		if b, ok := w.c.opts.Defines[v.Name]; ok {
			if b {
				return 1
			}
			return 0
		}
	case *ast.ParenExpr:
		return w.evalCond(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			switch w.evalCond(v.X) {
			case 1:
				return 0
			case 0:
				return 1
			}
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			l, r := w.evalCond(v.X), w.evalCond(v.Y)
			if l == 0 || r == 0 {
				return 0
			}
			if l == 1 && r == 1 {
				return 1
			}
		case token.LOR:
			l, r := w.evalCond(v.X), w.evalCond(v.Y)
			if l == 1 || r == 1 {
				return 1
			}
			if l == 0 && r == 0 {
				return 0
			}
		}
	}
	return -1
}

func (w *walker) walkBlock(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.walkStmt(s)
	}
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch v := s.(type) {
	case *ast.BlockStmt:
		w.walkBlock(v)
	case *ast.ExprStmt:
		w.processExpr(v.X)
	case *ast.AssignStmt:
		for _, r := range v.Rhs {
			w.processExpr(r)
		}
		for _, l := range v.Lhs {
			if _, ok := l.(*ast.Ident); !ok {
				w.processExpr(l)
			}
		}
		w.handleBindings(v)
	case *ast.IfStmt:
		w.walkIf(v)
	case *ast.ForStmt:
		if v.Init != nil {
			w.walkStmt(v.Init)
		}
		pre := w.st.clone()
		for pass := 0; pass < 2; pass++ {
			if v.Cond != nil {
				w.processExpr(v.Cond)
			}
			w.walkBlock(v.Body)
			if v.Post != nil {
				w.walkStmt(v.Post)
			}
		}
		w.st = mergeStates(pre, w.st)
	case *ast.RangeStmt:
		w.processExpr(v.X)
		pre := w.st.clone()
		for pass := 0; pass < 2; pass++ {
			w.walkBlock(v.Body)
		}
		w.st = mergeStates(pre, w.st)
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.walkStmt(v.Init)
		}
		if v.Tag != nil {
			w.processExpr(v.Tag)
		}
		w.walkClauses(v.Body)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			w.walkStmt(v.Init)
		}
		w.walkClauses(v.Body)
	case *ast.SelectStmt:
		w.walkClauses(v.Body)
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			w.processExpr(r)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.processExpr(val)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.processExpr(v.X)
	case *ast.SendStmt:
		w.processExpr(v.Chan)
		w.processExpr(v.Value)
	case *ast.LabeledStmt:
		w.walkStmt(v.Stmt)
	case *ast.GoStmt, *ast.DeferStmt:
		// Deferred and spawned work runs outside the statement order the
		// epoch machine models; skipped (documented limitation).
	}
}

// walkClauses walks every case body of a switch/select on a cloned state
// and merges all outcomes with the fallthrough-free entry state.
func (w *walker) walkClauses(body *ast.BlockStmt) {
	pre := w.st
	merged := pre.clone()
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.st = pre // expressions evaluate in the entry state
				w.processExpr(e)
			}
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		w.st = pre.clone()
		for _, s := range stmts {
			w.walkStmt(s)
		}
		merged = mergeStates(merged, w.st)
	}
	w.st = merged
}

func (w *walker) walkIf(v *ast.IfStmt) {
	if v.Init != nil {
		w.walkStmt(v.Init)
	}
	w.processExpr(v.Cond)
	switch w.evalCond(v.Cond) {
	case 1:
		w.walkBlock(v.Body)
		return
	case 0:
		if v.Else != nil {
			w.walkStmt(v.Else)
		}
		return
	}
	thenGuard, elseGuard := branchGuards(v.Cond)
	entry := w.st
	w.st = entry.clone()
	if thenGuard != "" {
		w.rankGuards = append(w.rankGuards, thenGuard)
	}
	w.walkBlock(v.Body)
	if thenGuard != "" {
		w.rankGuards = w.rankGuards[:len(w.rankGuards)-1]
	}
	thenSt := w.st
	w.st = entry
	if v.Else != nil {
		if elseGuard != "" {
			w.rankGuards = append(w.rankGuards, elseGuard)
		}
		w.walkStmt(v.Else)
		if elseGuard != "" {
			w.rankGuards = w.rankGuards[:len(w.rankGuards)-1]
		}
	}
	w.st = mergeStates(thenSt, w.st)
}

// processExpr records the events of every call in the expression, and
// walks the bodies of function literals inline (the app pattern
// `return func(p *mpi.Proc) error { ... }` makes the closure the body).
func (w *walker) processExpr(e ast.Expr) {
	if e == nil {
		return
	}
	var lits []*ast.FuncLit
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			w.handleCall(v)
		case *ast.FuncLit:
			lits = append(lits, v)
			return false
		}
		return true
	})
	for _, lit := range lits {
		w.walkBlock(lit.Body)
	}
}

// handleCall dispatches one call: buffer accessors become local access
// events, window methods drive the epoch machine, barriers advance the
// phase, bound method values resolve to their window, and same-package
// callees are replayed from their summaries.
func (w *walker) handleCall(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if name == "Barrier" {
			w.st.phase++
			return
		}
		recv := baseIdent(fun.X)
		if recv == nil {
			return
		}
		if _, ok := accessors[name]; ok {
			w.localAccess(w.resolveKey(recv.Name), name, call)
			return
		}
		if info, ok := w.wins[w.resolveKey(recv.Name)]; ok {
			w.winCall(info, name, call)
		}
	case *ast.Ident:
		if mv, ok := w.methodVals[w.resolveKey(fun.Name)]; ok {
			w.rmaCall(mv.win, mv.method, call)
			return
		}
		if fd, ok := w.c.an.funcs[fun.Name]; ok && fun.Name != w.fnScope {
			w.applySummary(fd, call)
		}
	}
}

// winCall drives the epoch state machine for a window method.
func (w *walker) winCall(info *winInfo, name string, call *ast.CallExpr) {
	st := w.st
	switch name {
	case "Fence":
		// A fence closes the window's previous active-target span,
		// completing its pending operations, opens the next one, and is
		// collective: the synchronization phase advances.
		w.closeEpochs(info.key, func(e *epochState) bool { return e.kind == epFence })
		st.epochs = append(st.epochs, &epochState{kind: epFence, winKey: info.key, openPos: call.Pos()})
		st.phase++
	case "Lock":
		target := ""
		if len(call.Args) >= 2 {
			target = exprText(call.Args[1])
		}
		st.epochs = append(st.epochs, &epochState{kind: epLock, winKey: info.key, target: target, openPos: call.Pos()})
	case "Unlock":
		target := ""
		if len(call.Args) >= 1 {
			target = exprText(call.Args[0])
		}
		if !w.closeOne(info.key, func(e *epochState) bool { return e.kind == epLock && e.target == target }) {
			w.closeOne(info.key, func(e *epochState) bool { return e.kind == epLock })
		}
	case "LockAll":
		st.epochs = append(st.epochs, &epochState{kind: epLockAll, winKey: info.key, openPos: call.Pos()})
	case "UnlockAll":
		w.closeEpochs(info.key, func(e *epochState) bool { return e.kind == epLockAll })
	case "Post":
		st.epochs = append(st.epochs, &epochState{kind: epExposure, winKey: info.key, openPos: call.Pos()})
	case "WaitEpoch":
		w.closeEpochs(info.key, func(e *epochState) bool { return e.kind == epExposure })
	case "Start":
		st.epochs = append(st.epochs, &epochState{kind: epAccess, winKey: info.key, openPos: call.Pos()})
	case "Complete":
		w.closeEpochs(info.key, func(e *epochState) bool { return e.kind == epAccess })
	case "Flush":
		target := ""
		if len(call.Args) >= 1 {
			target = exprText(call.Args[0])
		}
		w.completeOps(info.key, target, false)
	case "FlushAll":
		w.completeOps(info.key, "", false)
	case "FlushLocal":
		target := ""
		if len(call.Args) >= 1 {
			target = exprText(call.Args[0])
		}
		w.completeOps(info.key, target, true)
	case "FlushLocalAll":
		w.completeOps(info.key, "", true)
	case "Free":
		w.closeEpochs(info.key, func(e *epochState) bool { return true })
	default:
		if _, ok := rmaShapes[name]; ok {
			w.rmaCall(info, name, call)
		}
	}
}

// closeEpochs removes the window's epochs matching the predicate,
// completing their pending operations.
func (w *walker) closeEpochs(winKey string, match func(*epochState) bool) {
	var keep []*epochState
	for _, e := range w.st.epochs {
		if e.winKey == winKey && match(e) {
			continue
		}
		keep = append(keep, e)
	}
	w.st.epochs = keep
}

// closeOne removes the most recently opened matching epoch, returning
// whether one was found.
func (w *walker) closeOne(winKey string, match func(*epochState) bool) bool {
	for i := len(w.st.epochs) - 1; i >= 0; i-- {
		e := w.st.epochs[i]
		if e.winKey == winKey && match(e) {
			w.st.epochs = append(w.st.epochs[:i], w.st.epochs[i+1:]...)
			return true
		}
	}
	return false
}

// completeOps completes pending passive-target operations on the window:
// fully for Flush, origin-only (localDone) for Flush_local. An empty
// target completes every operation.
func (w *walker) completeOps(winKey, target string, localOnly bool) {
	for _, e := range w.st.epochs {
		if e.winKey != winKey || (e.kind != epLock && e.kind != epLockAll) {
			continue
		}
		var keep []*pendingOp
		for _, op := range e.ops {
			if target != "" && op.targetText != target {
				keep = append(keep, op)
				continue
			}
			if localOnly {
				op.localDone = true
				keep = append(keep, op)
			}
		}
		e.ops = keep
	}
}

// currentEpoch returns the epoch a new operation on the window joins: the
// most recently opened epoch that can carry operations (exposure epochs
// receive no local operations).
func (w *walker) currentEpoch(winKey string) *epochState {
	for i := len(w.st.epochs) - 1; i >= 0; i-- {
		e := w.st.epochs[i]
		if e.winKey == winKey && e.kind != epExposure {
			return e
		}
	}
	return nil
}

// exposureEpoch returns the window's open exposure epoch, if any.
func (w *walker) exposureEpoch(bufKey string) *winInfo {
	for _, e := range w.st.epochs {
		if e.kind != epExposure {
			continue
		}
		for _, info := range w.wins {
			if info.key == e.winKey && info.bufKey == bufKey {
				return info
			}
		}
	}
	return nil
}

// handleBindings tracks the assignments the epoch machine cares about:
// window registrations and method-value bindings.
func (w *walker) handleBindings(st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	switch r := st.Rhs[0].(type) {
	case *ast.CallExpr:
		switch calleeName(r) {
		case "WinCreate":
			if len(st.Lhs) >= 1 && len(r.Args) >= 2 {
				wid, bufID := baseIdent(st.Lhs[0]), baseIdent(r.Args[0])
				if wid != nil && bufID != nil && wid.Name != "_" {
					w.registerWin(wid, bufID.Name, r.Args[1])
				}
			}
		case "WinAllocate":
			// w, buf := p.WinAllocate(size, dispUnit, comm, "name")
			if len(st.Lhs) >= 2 && len(r.Args) >= 2 {
				wid, bufID := baseIdent(st.Lhs[0]), baseIdent(st.Lhs[1])
				if wid != nil && bufID != nil && wid.Name != "_" {
					w.registerWin(wid, bufID.Name, r.Args[1])
				}
			}
		}
	case *ast.SelectorExpr:
		// Method value: f := w.Put binds f to the window's method, so the
		// later f(buf, ...) drives the same epoch machinery.
		recv := baseIdent(r.X)
		if recv == nil || len(st.Lhs) != 1 {
			return
		}
		info, ok := w.wins[w.resolveKey(recv.Name)]
		if !ok {
			return
		}
		if _, isRMA := rmaShapes[r.Sel.Name]; !isRMA {
			return
		}
		if id := baseIdent(st.Lhs[0]); id != nil && id.Name != "_" {
			w.methodVals[w.resolveKey(id.Name)] = methodRef{win: info, method: r.Sel.Name}
		}
	}
}

func (w *walker) registerWin(wid *ast.Ident, bufName string, dispUnitExpr ast.Expr) {
	key := w.resolveKey(wid.Name)
	info := &winInfo{key: key, bufKey: w.resolveKey(bufName), text: wid.Name}
	if du, ok := w.evalInt(dispUnitExpr); ok && du > 0 {
		info.dispUnit = du
	}
	info.bufName = w.c.allocNames[info.bufKey]
	w.wins[key] = info
}
