package stanalyzer

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/memory"
	"repro/internal/mpi"
)

// These tests pin the checker's call tables to the real internal/mpi API
// via reflection: when someone adds an RMA verb or allocation entry point
// to internal/mpi, the corresponding rmaSeedCalls / rmaShapes / allocCalls
// entry must be added here too, or instrumentation silently goes blind.

// winMethodsWithoutState are exported *mpi.Win methods that neither move
// data nor change epoch state, so the checker may ignore them.
var winMethodsWithoutState = map[string]bool{
	"ID":          true,
	"Comm":        true,
	"LocalBuffer": true,
}

func bufferParamIndexes(m reflect.Method) []int {
	bufT := reflect.TypeOf((*memory.Buffer)(nil))
	var idx []int
	// In(0) is the receiver.
	for j := 1; j < m.Type.NumIn(); j++ {
		if m.Type.In(j) == bufT {
			idx = append(idx, j-1)
		}
	}
	return idx
}

func TestWinMethodsCoveredBySeedCalls(t *testing.T) {
	winT := reflect.TypeOf((*mpi.Win)(nil))
	for i := 0; i < winT.NumMethod(); i++ {
		m := winT.Method(i)
		bufIdx := bufferParamIndexes(m)
		if len(bufIdx) == 0 {
			continue
		}
		got, ok := rmaSeedCalls[m.Name]
		if !ok {
			t.Errorf("Win.%s takes *memory.Buffer params %v but has no rmaSeedCalls entry", m.Name, bufIdx)
			continue
		}
		sorted := append([]int(nil), got...)
		sort.Ints(sorted)
		if !reflect.DeepEqual(sorted, bufIdx) {
			t.Errorf("Win.%s: rmaSeedCalls = %v, but buffer params are at %v", m.Name, got, bufIdx)
		}
		if _, ok := rmaShapes[m.Name]; !ok {
			t.Errorf("Win.%s moves buffer data but has no rmaShapes entry (static checker ignores it)", m.Name)
		}
	}
}

func TestWinMethodsKnownToEpochMachine(t *testing.T) {
	winT := reflect.TypeOf((*mpi.Win)(nil))
	for i := 0; i < winT.NumMethod(); i++ {
		name := winT.Method(i).Name
		if winMethodsWithoutState[name] {
			continue
		}
		_, isRMA := rmaShapes[name]
		_, isEpoch := epochMethods[name]
		if !isRMA && !isEpoch {
			t.Errorf("Win.%s is neither an rmaShapes nor an epochMethods entry; add it or list it in winMethodsWithoutState", name)
		}
	}
}

func TestRMAShapesMatchBufferParams(t *testing.T) {
	winT := reflect.TypeOf((*mpi.Win)(nil))
	for name, shape := range rmaShapes {
		m, ok := winT.MethodByName(name)
		if !ok {
			t.Errorf("rmaShapes[%q] has no matching *mpi.Win method", name)
			continue
		}
		want := bufferParamIndexes(m)
		seen := map[int]bool{}
		for _, a := range shape.reads {
			seen[a.buf] = true
		}
		for _, a := range shape.writes {
			seen[a.buf] = true
		}
		var got []int
		for idx := range seen {
			got = append(got, idx)
		}
		sort.Ints(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Win.%s: rmaShapes covers buffer args %v, signature has %v", name, got, want)
		}
	}
}

func TestProcAllocatorsCoveredByAllocCalls(t *testing.T) {
	procT := reflect.TypeOf((*mpi.Proc)(nil))
	bufT := reflect.TypeOf((*memory.Buffer)(nil))
	strT := reflect.TypeOf("")
	for i := 0; i < procT.NumMethod(); i++ {
		m := procT.Method(i)
		returnsBuf := false
		for j := 0; j < m.Type.NumOut(); j++ {
			if m.Type.Out(j) == bufT {
				returnsBuf = true
			}
		}
		if !returnsBuf {
			continue
		}
		nameIdx := -1
		for j := 1; j < m.Type.NumIn(); j++ {
			if m.Type.In(j) == strT {
				nameIdx = j - 1
			}
		}
		if nameIdx < 0 {
			continue // no runtime buffer name to track
		}
		got, ok := allocCalls[m.Name]
		if !ok {
			t.Errorf("Proc.%s returns a named *memory.Buffer but has no allocCalls entry", m.Name)
			continue
		}
		if got != nameIdx {
			t.Errorf("Proc.%s: allocCalls name index = %d, string param is at %d", m.Name, got, nameIdx)
		}
	}
}

func TestProcWindowConstructorsSeeded(t *testing.T) {
	procT := reflect.TypeOf((*mpi.Proc)(nil))
	winT := reflect.TypeOf((*mpi.Win)(nil))
	for i := 0; i < procT.NumMethod(); i++ {
		m := procT.Method(i)
		returnsWin := false
		for j := 0; j < m.Type.NumOut(); j++ {
			if m.Type.Out(j) == winT {
				returnsWin = true
			}
		}
		if !returnsWin {
			continue
		}
		bufIdx := bufferParamIndexes(m)
		if len(bufIdx) == 0 {
			continue // allocator-style constructor (e.g. WinAllocate), covered by allocCalls
		}
		got, ok := rmaSeedCalls[m.Name]
		if !ok {
			t.Errorf("Proc.%s attaches buffers %v to a window but has no rmaSeedCalls entry", m.Name, bufIdx)
			continue
		}
		sorted := append([]int(nil), got...)
		sort.Ints(sorted)
		if !reflect.DeepEqual(sorted, bufIdx) {
			t.Errorf("Proc.%s: rmaSeedCalls = %v, buffer params at %v", m.Name, got, bufIdx)
		}
	}
}
