package stanalyzer

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
)

// Confidence grades a static diagnostic. The checker has no runtime
// information, so every finding carries how sure it is: High findings are
// backed by constant offsets that definitely overlap; Medium findings
// involve symbolic offsets or merged control flow; Low findings rest on
// patterns that are frequently intentional (polling flags).
type Confidence uint8

const (
	ConfLow Confidence = iota
	ConfMedium
	ConfHigh
)

func (c Confidence) String() string {
	switch c {
	case ConfHigh:
		return "high"
	case ConfMedium:
		return "medium"
	}
	return "low"
}

// ParseConfidence reads a confidence name ("low", "medium", "high").
func ParseConfidence(s string) (Confidence, error) {
	switch strings.ToLower(s) {
	case "low":
		return ConfLow, nil
	case "medium":
		return ConfMedium, nil
	case "high":
		return ConfHigh, nil
	}
	return ConfLow, fmt.Errorf("stanalyzer: unknown confidence %q (want low, medium, or high)", s)
}

// Kind names a static error pattern. Each kind mirrors a rule family of
// the dynamic analyzer (internal/core), so that static diagnostics can be
// cross-validated against dynamic core.Violation reports.
type Kind string

const (
	// KindGetOriginUse: a buffer that a pending Get (or the result buffer
	// of a fetching atomic) will write is loaded or stored before the
	// epoch completes the transfer — paper Figure 1.
	KindGetOriginUse Kind = "get-origin-use"
	// KindPutOriginStore: the origin buffer of a pending Put or
	// Accumulate is overwritten before the epoch closes — Figure 2a.
	KindPutOriginStore Kind = "put-origin-store"
	// KindEpochTargetConflict: two operations of one process target
	// overlapping window regions within a single epoch — Figure 2b/2c.
	KindEpochTargetConflict Kind = "epoch-target-conflict"
	// KindExposureAccess: local load/store of the exposed window buffer
	// inside a PSCW exposure epoch (Post..Wait) — §III-C.
	KindExposureAccess Kind = "exposure-access"
	// KindCrossLocalConflict: a local load/store of window memory can be
	// concurrent with a remote Put/Get/Accumulate to the same region in
	// the same synchronization phase — Figure 2d.
	KindCrossLocalConflict Kind = "cross-local-conflict"
	// KindCrossTargetConflict: incompatible RMA operations from
	// different processes can target the same window region in the same
	// synchronization phase (Table I).
	KindCrossTargetConflict Kind = "cross-target-conflict"
)

// Kinds returns every diagnostic kind in report order — the canonical
// list `stanalyzer -list-kinds` prints and the doc-drift test pins
// against the constant block above.
func Kinds() []Kind {
	return []Kind{
		KindGetOriginUse, KindPutOriginStore, KindEpochTargetConflict,
		KindExposureAccess, KindCrossLocalConflict, KindCrossTargetConflict,
	}
}

// Class maps the kind to the paper's error-location class, matching
// core.Violation.Class.
func (k Kind) Class() core.Class {
	switch k {
	case KindGetOriginUse, KindPutOriginStore, KindEpochTargetConflict:
		return core.WithinEpoch
	}
	return core.AcrossProcesses
}

// Fix returns the remediation hint for the kind, phrased like core.Hint.
func (k Kind) Fix() string {
	switch k {
	case KindGetOriginUse:
		return "close the epoch (unlock, fence, or flush) before using the destination buffer"
	case KindPutOriginStore:
		return "delay reuse of the origin buffer until the epoch closes, or use a fresh buffer per transfer"
	case KindEpochTargetConflict:
		return "separate the conflicting operations into different epochs, or use accumulate operations"
	case KindExposureAccess:
		return "move local accesses out of the Post..Wait exposure epoch"
	case KindCrossLocalConflict:
		return "separate local access and remote communication with a barrier, fence, or lock"
	case KindCrossTargetConflict:
		return "synchronize the competing origins, or replace the emulated read-modify-write with an atomic (Fetch_and_op / Compare_and_swap)"
	}
	return ""
}

// FixActionKind names one mechanical repair template of internal/fix.
// Unlike the free-text Fix hint, an action kind is a contract: the repair
// engine maps each kind to one AST rewrite and never parses prose.
type FixActionKind string

const (
	// FixInsertFlushAll: insert `win.FlushAll()` before the anchor so
	// every pending passive-target operation completes first.
	FixInsertFlushAll FixActionKind = "insert-flush-all"
	// FixInsertFlush: insert `win.Flush(target)` before the anchor,
	// completing the pending operations to that target.
	FixInsertFlush FixActionKind = "insert-flush"
	// FixWidenFlushLocal: rewrite the `FlushLocal(target)` between the
	// conflicting operations into a full `Flush(target)` — local
	// completion is not target completion.
	FixWidenFlushLocal FixActionKind = "widen-flush-local"
	// FixSplitEpoch: insert a collective `win.Fence(mpi.AssertNone)`
	// between the conflicting operations, splitting the fence epoch that
	// opened at Open into two.
	FixSplitEpoch FixActionKind = "split-epoch"
	// FixMoveAfterSync: move the flagged local access (with its variant
	// guard, if any) past the next synchronization statement.
	FixMoveAfterSync FixActionKind = "move-after-sync"
	// FixMoveOutOfExposure: move the flagged local access past the
	// `WaitEpoch` that closes the Post..Wait exposure epoch.
	FixMoveOutOfExposure FixActionKind = "move-out-of-exposure"
	// FixRewriteAccumulate: rewrite the plain `Put` at the anchor into an
	// `Accumulate` using Op — the reduction the conflicting
	// accumulate-family operation already uses — restoring Table I
	// compatibility.
	FixRewriteAccumulate FixActionKind = "rewrite-accumulate"
)

// FixAction is the machine-readable companion of a diagnostic's Fix
// hint: which repair template applies, where it anchors, and the
// expressions the rewrite needs. A nil action means the checker knows no
// mechanical repair for the finding.
type FixAction struct {
	Kind   FixActionKind
	Anchor token.Position // the flagged statement the template anchors on

	Win    string         // window variable spelling, for inserted calls
	Target string         // target-rank expression (insert-flush, widen-flush-local)
	Op     string         // reduction-op expression (rewrite-accumulate)
	Open   token.Position // epoch-opening statement (split-epoch)
}

// RepairTemplates lists the fix-action kinds the checker can attach to
// diagnostics of this kind, in preference order.
func (k Kind) RepairTemplates() []FixActionKind {
	switch k {
	case KindGetOriginUse:
		return []FixActionKind{FixInsertFlush, FixInsertFlushAll, FixSplitEpoch, FixMoveAfterSync}
	case KindPutOriginStore:
		return []FixActionKind{FixInsertFlush, FixInsertFlushAll, FixSplitEpoch, FixMoveAfterSync}
	case KindEpochTargetConflict:
		return []FixActionKind{FixWidenFlushLocal, FixInsertFlush, FixSplitEpoch}
	case KindExposureAccess:
		return []FixActionKind{FixMoveOutOfExposure}
	case KindCrossLocalConflict:
		return []FixActionKind{FixMoveAfterSync}
	case KindCrossTargetConflict:
		return []FixActionKind{FixRewriteAccumulate, FixSplitEpoch}
	}
	return nil
}

// Diagnostic is one static finding: the analogue of core.Violation for
// the compile-time checker.
type Diagnostic struct {
	Kind       Kind
	Confidence Confidence
	Class      core.Class

	// Pos is the flagged access (the later operation in program order);
	// Ref is the operation it conflicts with.
	Pos token.Position
	Ref token.Position

	Fn     string // enclosing function
	Win    string // window variable, if resolved
	Buffer string // runtime buffer name, if the allocation is tracked

	Message string
	Fix     string

	// Action is the structured repair the free-text Fix hint describes;
	// nil when no mechanical template applies.
	Action *FixAction

	// Ranks lists the statically-known target ranks of the involved
	// operations; the schedule explorer seeds its strategies from them.
	Ranks []int
}

// locString renders a position as base-file:line for stable reports.
func locString(p token.Position) string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func (d *Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: [%s/%s] %s: %s", locString(d.Pos), d.Kind, d.Confidence, d.Fn, d.Message)
	if d.Ref.IsValid() {
		fmt.Fprintf(&sb, " (with %s)", locString(d.Ref))
	}
	return sb.String()
}

// key identifies a diagnostic for deduplication (loop bodies are walked
// twice and report the same finding at the same positions).
func (d *Diagnostic) key() string {
	return fmt.Sprintf("%s|%s|%s|%s", d.Kind, locString(d.Pos), locString(d.Ref), d.Fn)
}

// MatchesViolation reports whether a dynamic violation confirms this
// diagnostic: the classes agree and at least one of the violation's two
// event locations coincides with the diagnostic's flagged positions.
// Trace events carry full runtime paths while parsed positions carry the
// analyzed file's path, so files compare by base name.
func (d *Diagnostic) MatchesViolation(v *core.Violation) bool {
	if d.Class != v.Class {
		return false
	}
	for _, ev := range []struct {
		file string
		line int
	}{{v.A.File, int(v.A.Line)}, {v.B.File, int(v.B.Line)}} {
		if ev.file == "" {
			continue
		}
		for _, p := range []token.Position{d.Pos, d.Ref} {
			if p.IsValid() && p.Line == ev.line && filepath.Base(p.Filename) == filepath.Base(ev.file) {
				return true
			}
		}
	}
	return false
}

// CheckReport is the static checker's output.
type CheckReport struct {
	Diags []Diagnostic

	// Analysis size, for the obs counters and -stats.
	FilesParsed     int
	FuncsChecked    int
	FuncsSummarized int

	// calls is the same-package callgraph (function name → callees),
	// used to scope diagnostics to one application's entry point.
	calls map[string][]string
}

// sortDiags orders diagnostics for stable output: by position, then kind.
func (r *CheckReport) sortDiags() {
	sort.Slice(r.Diags, func(i, j int) bool {
		a, b := &r.Diags[i], &r.Diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return locString(a.Ref) < locString(b.Ref)
	})
}

// Filter returns the diagnostics at or above the confidence threshold.
func (r *CheckReport) Filter(min Confidence) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Confidence >= min {
			out = append(out, d)
		}
	}
	return out
}

// Reachable returns the functions reachable from root over the
// same-package callgraph, including root itself.
func (r *CheckReport) Reachable(root string) map[string]bool {
	seen := map[string]bool{root: true}
	queue := []string{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, callee := range r.calls[cur] {
			if !seen[callee] {
				seen[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return seen
}

// ForFunctions returns the diagnostics whose enclosing function is in the
// set — used to scope a whole-package report to one app's entry point.
func (r *CheckReport) ForFunctions(fns map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if fns[d.Fn] {
			out = append(out, d)
		}
	}
	return out
}

func (r *CheckReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "static checker: %d diagnostic(s) in %d function(s)\n", len(r.Diags), r.FuncsChecked)
	sb.WriteString(RenderDiags(r.Diags))
	return sb.String()
}

// RenderDiags renders a diagnostic slice in the report's indented text
// format — used for filtered subsets and the golden report.
func RenderDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for i := range diags {
		fmt.Fprintf(&sb, "  %s\n", diags[i].String())
		if fix := diags[i].Fix; fix != "" {
			fmt.Fprintf(&sb, "      fix: %s\n", fix)
		}
	}
	return sb.String()
}

// diagJSON is the JSON shape of one diagnostic.
type diagJSON struct {
	Kind       string         `json:"kind"`
	Confidence string         `json:"confidence"`
	Class      string         `json:"class"`
	Pos        string         `json:"pos"`
	Ref        string         `json:"ref,omitempty"`
	Fn         string         `json:"func"`
	Win        string         `json:"win,omitempty"`
	Buffer     string         `json:"buffer,omitempty"`
	Message    string         `json:"message"`
	Fix        string         `json:"fix,omitempty"`
	Action     *fixActionJSON `json:"action,omitempty"`
	Ranks      []int          `json:"ranks,omitempty"`
}

// fixActionJSON is the JSON shape of a structured repair action.
type fixActionJSON struct {
	Kind   string `json:"kind"`
	Anchor string `json:"anchor"`
	Win    string `json:"win,omitempty"`
	Target string `json:"target,omitempty"`
	Op     string `json:"op,omitempty"`
	Open   string `json:"open,omitempty"`
}

// MarshalJSON renders the report as a JSON array of diagnostics.
func (r *CheckReport) MarshalJSON() ([]byte, error) {
	return MarshalDiags(r.Diags)
}

// MarshalDiags renders a diagnostic slice (e.g. a filtered or app-scoped
// subset) as a JSON array.
func MarshalDiags(diags []Diagnostic) ([]byte, error) {
	out := make([]diagJSON, 0, len(diags))
	for i := range diags {
		d := &diags[i]
		j := diagJSON{
			Kind:       string(d.Kind),
			Confidence: d.Confidence.String(),
			Class:      d.Class.String(),
			Pos:        locString(d.Pos),
			Fn:         d.Fn,
			Win:        d.Win,
			Buffer:     d.Buffer,
			Message:    d.Message,
			Fix:        d.Fix,
			Ranks:      d.Ranks,
		}
		if d.Ref.IsValid() {
			j.Ref = locString(d.Ref)
		}
		if a := d.Action; a != nil {
			ja := &fixActionJSON{
				Kind: string(a.Kind), Anchor: locString(a.Anchor),
				Win: a.Win, Target: a.Target, Op: a.Op,
			}
			if a.Open.IsValid() {
				ja.Open = locString(a.Open)
			}
			j.Action = ja
		}
		out = append(out, j)
	}
	return json.Marshal(out)
}
