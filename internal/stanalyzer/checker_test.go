package stanalyzer

import (
	"strings"
	"testing"
)

// check runs the static checker over one source string and fails the test
// on parse errors.
func check(t *testing.T, src string, opts Options) *CheckReport {
	t.Helper()
	rep, err := CheckSource(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// kinds collects the diagnostic kinds at or above min confidence.
func kinds(rep *CheckReport, min Confidence) map[Kind]int {
	out := map[Kind]int{}
	for _, d := range rep.Filter(min) {
		out[d.Kind]++
	}
	return out
}

func TestGetOriginUseInLockEpoch(t *testing.T) {
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	buf := p.AllocFloat64(1, "cache")
	w := p.WinCreate(buf, 8, p.CommWorld())
	w.Lock(mpi.LockShared, 1)
	w.Get(buf, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	_ = buf.Float64At(0) // BUG: Get not complete
	w.Unlock(1)
}
`
	rep := check(t, src, Options{})
	if kinds(rep, ConfHigh)[KindGetOriginUse] == 0 {
		t.Errorf("missed get-origin-use:\n%s", rep)
	}
}

func TestGetOriginUseAfterUnlockIsClean(t *testing.T) {
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	buf := p.AllocFloat64(1, "cache")
	w := p.WinCreate(buf, 8, p.CommWorld())
	w.Lock(mpi.LockShared, 1)
	w.Get(buf, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	w.Unlock(1)
	_ = buf.Float64At(0) // epoch closed: fine
}
`
	rep := check(t, src, Options{})
	if n := kinds(rep, ConfHigh)[KindGetOriginUse]; n != 0 {
		t.Errorf("false positive after Unlock:\n%s", rep)
	}
}

func TestFlushCompletesPendingGet(t *testing.T) {
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	buf := p.AllocFloat64(1, "cache")
	w := p.WinCreate(buf, 8, p.CommWorld())
	w.Lock(mpi.LockShared, 1)
	w.Get(buf, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	w.Flush(1)
	_ = buf.Float64At(0) // flushed: fine
	w.Unlock(1)
}
`
	rep := check(t, src, Options{})
	if n := kinds(rep, ConfHigh)[KindGetOriginUse]; n != 0 {
		t.Errorf("Flush must complete the Get:\n%s", rep)
	}
}

func TestPutOriginStoreInFenceEpoch(t *testing.T) {
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	src := p.AllocFloat64(1, "src")
	win := p.AllocFloat64(4, "shared")
	w := p.WinCreate(win, 8, p.CommWorld())
	w.Fence(0)
	w.Put(src, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	src.SetFloat64(0, 2.0) // BUG: Put may read either value
	w.Fence(0)
}
`
	rep := check(t, src, Options{})
	if kinds(rep, ConfHigh)[KindPutOriginStore] == 0 {
		t.Errorf("missed put-origin-store:\n%s", rep)
	}
}

func TestEpochTargetConflictConstantOffsets(t *testing.T) {
	// Two Puts to the same constant target offset in one epoch: the target
	// ends up with whichever lands last (paper Figure 2b).
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	a := p.AllocFloat64(1, "a")
	b := p.AllocFloat64(1, "b")
	win := p.AllocFloat64(4, "shared")
	w := p.WinCreate(win, 8, p.CommWorld())
	w.Lock(mpi.LockExclusive, 1)
	w.Put(a, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	w.Put(b, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	w.Unlock(1)
}
`
	rep := check(t, src, Options{})
	if kinds(rep, ConfHigh)[KindEpochTargetConflict] == 0 {
		t.Errorf("missed epoch-target-conflict:\n%s", rep)
	}
}

func TestEpochTargetDisjointOffsetsClean(t *testing.T) {
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	a := p.AllocFloat64(1, "a")
	b := p.AllocFloat64(1, "b")
	win := p.AllocFloat64(4, "shared")
	w := p.WinCreate(win, 8, p.CommWorld())
	w.Lock(mpi.LockExclusive, 1)
	w.Put(a, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	w.Put(b, 0, 1, mpi.Float64, 1, 1, 1, mpi.Float64)
	w.Unlock(1)
}
`
	rep := check(t, src, Options{})
	if n := kinds(rep, ConfLow)[KindEpochTargetConflict]; n != 0 {
		t.Errorf("disjoint offsets flagged:\n%s", rep)
	}
}

func TestAccumulatePairIsCompatible(t *testing.T) {
	// Same-op accumulates to the same location are well-defined (Table I).
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	a := p.AllocFloat64(1, "a")
	win := p.AllocFloat64(4, "shared")
	w := p.WinCreate(win, 8, p.CommWorld())
	w.Lock(mpi.LockShared, 1)
	w.Accumulate(a, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64, mpi.OpSum)
	w.Accumulate(a, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64, mpi.OpSum)
	w.Unlock(1)
}
`
	rep := check(t, src, Options{})
	if n := kinds(rep, ConfLow)[KindEpochTargetConflict]; n != 0 {
		t.Errorf("accumulate pair flagged:\n%s", rep)
	}
}

func TestExposureEpochLocalStore(t *testing.T) {
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc, g *mpi.Group) {
	win := p.AllocFloat64(4, "shared")
	w := p.WinCreate(win, 8, p.CommWorld())
	w.Post(g)
	win.SetFloat64(0, 1.0) // local store while exposed
	w.WaitEpoch()
}
`
	rep := check(t, src, Options{})
	if kinds(rep, ConfMedium)[KindExposureAccess] == 0 {
		t.Errorf("missed exposure-access:\n%s", rep)
	}
}

func TestInterprocRMAInHelper(t *testing.T) {
	// The Get happens inside a helper; the use of its destination buffer
	// back in the caller, still inside the epoch, must be diagnosed.
	src := `package app

import "repro/internal/mpi"

func fetch(w *mpi.Win, buf *memBuf) {
	w.Get(buf, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
}

func body(p *mpi.Proc) {
	buf := p.AllocFloat64(1, "cache")
	w := p.WinCreate(buf, 8, p.CommWorld())
	w.Lock(mpi.LockShared, 1)
	fetch(w, buf)
	_ = buf.Float64At(0) // BUG: helper's Get still pending
	w.Unlock(1)
}
`
	rep := check(t, src, Options{})
	found := false
	for _, d := range rep.Diags {
		if d.Kind == KindGetOriginUse && d.Fn == "body" {
			found = true
		}
	}
	if !found {
		t.Errorf("interprocedural get-origin-use missed:\n%s", rep)
	}
}

func TestInterprocEpochOpenedInHelper(t *testing.T) {
	// The epoch itself is opened and closed by helpers around the caller's
	// RMA call; the checker must thread epoch state through the inlining.
	src := `package app

import "repro/internal/mpi"

func begin(w *mpi.Win) { w.Lock(mpi.LockShared, 1) }
func end(w *mpi.Win)   { w.Unlock(1) }

func body(p *mpi.Proc) {
	buf := p.AllocFloat64(1, "cache")
	w := p.WinCreate(buf, 8, p.CommWorld())
	begin(w)
	w.Get(buf, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	_ = buf.Float64At(0)
	end(w)
}
`
	rep := check(t, src, Options{})
	if kinds(rep, ConfMedium)[KindGetOriginUse] == 0 {
		t.Errorf("epoch opened in helper not threaded:\n%s", rep)
	}
}

func TestDefinesPruneVariant(t *testing.T) {
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc, buggy bool) {
	buf := p.AllocFloat64(1, "cache")
	w := p.WinCreate(buf, 8, p.CommWorld())
	w.Lock(mpi.LockShared, 1)
	w.Get(buf, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	if buggy {
		_ = buf.Float64At(0)
		w.Unlock(1)
	} else {
		w.Unlock(1)
		_ = buf.Float64At(0)
	}
}
`
	buggy := check(t, src, Options{Defines: map[string]bool{"buggy": true}})
	if kinds(buggy, ConfHigh)[KindGetOriginUse] == 0 {
		t.Errorf("buggy=true variant missed:\n%s", buggy)
	}
	fixed := check(t, src, Options{Defines: map[string]bool{"buggy": false}})
	if n := kinds(fixed, ConfLow)[KindGetOriginUse]; n != 0 {
		t.Errorf("buggy=false variant flagged:\n%s", fixed)
	}
}

func TestBranchMergeLowersConfidence(t *testing.T) {
	// Without Defines the checker walks both arms and merges: the pending
	// Get survives the merge only as a may-fact, so the use after the If is
	// reported at reduced confidence, not dropped.
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc, late bool) {
	buf := p.AllocFloat64(1, "cache")
	w := p.WinCreate(buf, 8, p.CommWorld())
	w.Lock(mpi.LockShared, 1)
	if late {
		w.Get(buf, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	}
	_ = buf.Float64At(0)
	w.Unlock(1)
}
`
	rep := check(t, src, Options{})
	var got *Diagnostic
	for i := range rep.Diags {
		if rep.Diags[i].Kind == KindGetOriginUse {
			got = &rep.Diags[i]
		}
	}
	if got == nil {
		t.Fatalf("merged pending op dropped:\n%s", rep)
	}
	if got.Confidence == ConfHigh {
		t.Errorf("merged op reported high confidence: %s", got)
	}
}

func TestMethodValueRMATracked(t *testing.T) {
	// f := w.Put; f(...) must open the same pending-op machinery as a
	// direct call (the taint blind spot this PR fixes).
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	src := p.AllocFloat64(1, "src")
	win := p.AllocFloat64(4, "shared")
	w := p.WinCreate(win, 8, p.CommWorld())
	put := w.Put
	w.Fence(0)
	put(src, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	src.SetFloat64(0, 2.0)
	w.Fence(0)
}
`
	rep := check(t, src, Options{})
	if kinds(rep, ConfHigh)[KindPutOriginStore] == 0 {
		t.Errorf("method-value Put not tracked:\n%s", rep)
	}
}

func TestRankGuardSuppressesCrossConflict(t *testing.T) {
	// Both operations run under the same rank guard, so they are issued by
	// the same process and cannot race across processes.
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	src := p.AllocFloat64(1, "src")
	win := p.AllocFloat64(4, "shared")
	w := p.WinCreate(win, 8, p.CommWorld())
	w.Fence(0)
	if p.Rank() == 0 {
		w.Put(src, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
		win.SetFloat64(8, 1.0)
	}
	w.Fence(0)
}
`
	rep := check(t, src, Options{})
	if n := kinds(rep, ConfLow)[KindCrossLocalConflict]; n != 0 {
		t.Errorf("same-rank pair flagged as cross-process:\n%s", rep)
	}
}

func TestCrossLocalConflictAcrossRanks(t *testing.T) {
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	src := p.AllocFloat64(1, "src")
	win := p.AllocFloat64(4, "shared")
	w := p.WinCreate(win, 8, p.CommWorld())
	w.Fence(0)
	if p.Rank() == 0 {
		w.Put(src, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	} else {
		win.SetFloat64(0, 1.0)
	}
	w.Fence(0)
}
`
	rep := check(t, src, Options{})
	if kinds(rep, ConfMedium)[KindCrossLocalConflict] == 0 {
		t.Errorf("missed cross-local-conflict:\n%s", rep)
	}
}

func TestCheckReportScoping(t *testing.T) {
	src := `package app

import "repro/internal/mpi"

func appA(p *mpi.Proc) {
	buf := p.AllocFloat64(1, "a")
	w := p.WinCreate(buf, 8, p.CommWorld())
	w.Lock(mpi.LockShared, 1)
	w.Get(buf, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	_ = buf.Float64At(0)
	w.Unlock(1)
}

func appB(p *mpi.Proc) {
	buf := p.AllocFloat64(1, "b")
	w := p.WinCreate(buf, 8, p.CommWorld())
	w.Lock(mpi.LockShared, 1)
	w.Get(buf, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	w.Unlock(1)
	_ = buf.Float64At(0)
}
`
	rep := check(t, src, Options{})
	scoped := rep.ForFunctions(rep.Reachable("appB"))
	for _, d := range scoped {
		if d.Fn != "appB" {
			t.Errorf("Reachable(appB) leaked diagnostic from %s: %s", d.Fn, d.String())
		}
	}
	scoped = rep.ForFunctions(rep.Reachable("appA"))
	found := false
	for _, d := range scoped {
		if d.Kind == KindGetOriginUse {
			found = true
		}
	}
	if !found {
		t.Errorf("Reachable(appA) lost its diagnostic:\n%s", rep)
	}
}

func TestDiagJSONAndRender(t *testing.T) {
	src := `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) {
	buf := p.AllocFloat64(1, "cache")
	w := p.WinCreate(buf, 8, p.CommWorld())
	w.Lock(mpi.LockShared, 1)
	w.Get(buf, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
	_ = buf.Float64At(0)
	w.Unlock(1)
}
`
	rep := check(t, src, Options{})
	data, err := MarshalDiags(rep.Diags)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"get-origin-use"`, `"confidence":"high"`, `"func":"body"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}
	text := rep.String()
	if !strings.Contains(text, "fix:") {
		t.Errorf("text report missing fix hint:\n%s", text)
	}
}

func TestCheckSourceSyntaxError(t *testing.T) {
	if _, err := CheckSource("package x\nfunc {", Options{}); err == nil {
		t.Error("syntax error must surface")
	}
}
