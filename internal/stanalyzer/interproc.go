package stanalyzer

// interproc.go: the driver of the static checker and its interprocedural
// layer. The checker reuses the taint pass's alias graph for buffer and
// window identity (connected components give every variable a canonical
// representative, so a window passed to a helper keeps its identity),
// computes per-function summaries over the callgraph (does this function,
// transitively, touch epoch/RMA/accessor machinery?), and walks each
// function flow-sensitively, inlining relevant same-package callees up to
// a fixed depth with parameter-to-argument substitution for constant
// reasoning. Events recorded inside an inlined callee stay local to the
// callee's own standalone walk — only the epoch/phase state crosses the
// call boundary — so a table-driver function calling ten applications does
// not cross-match their events.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Options configures a static check.
type Options struct {
	// Defines fixes boolean parameters/identifiers for branch pruning:
	// Defines{"buggy": true} walks only the planted variant of each app.
	Defines map[string]bool

	// Obs receives the mcchecker_static_* counters; nil disables.
	Obs *obs.Registry
}

// maxInlineDepth bounds callee inlining (and therefore recursion through
// mutually recursive helpers, together with the in-progress set).
const maxInlineDepth = 3

// funcSummary is the interprocedural summary of one function: whether it
// (transitively) touches MPI synchronization, RMA, or buffer accessors —
// only such callees are worth inlining — and its same-package callees.
type funcSummary struct {
	relevant bool
	callees  []string
}

// checker holds the cross-function state of one Check run.
type checker struct {
	fset *token.FileSet
	an   *analyzer
	opts Options

	canon      map[string]string // scoped name → canonical alias-set representative
	allocNames map[string]string // canonical key → runtime buffer name
	consts     map[string]int64  // scoped/pkg const name → value
	summaries  map[string]*funcSummary

	inlining map[string]bool // functions on the current inline stack

	rep     *CheckReport
	diagIdx map[string]int
}

// Check runs the static epoch-state checker over parsed files sharing one
// fileset and returns the diagnostics.
func Check(fset *token.FileSet, files []*ast.File, opts Options) (*CheckReport, error) {
	an := newAnalyzer(fset, files)
	c := &checker{
		fset:     fset,
		an:       an,
		opts:     opts,
		inlining: map[string]bool{},
		rep:      &CheckReport{FilesParsed: len(files)},
		diagIdx:  map[string]int{},
	}
	c.buildCanon()
	c.collectConsts(files)
	c.buildSummaries()

	names := make([]string, 0, len(an.funcs))
	for name := range an.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fd := an.funcs[name]
		if fd.Body == nil {
			continue
		}
		w := &walker{
			c: c, fnScope: name, st: &walkState{},
			wins:       map[string]*winInfo{},
			methodVals: map[string]methodRef{},
		}
		w.walkBlock(fd.Body)
		w.finalize()
		c.rep.FuncsChecked++
	}
	c.rep.sortDiags()
	c.exposeCounters()
	return c.rep, nil
}

// CheckDir parses the non-test Go files of a directory and checks them.
func CheckDir(dir string, opts Options) (*CheckReport, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("stanalyzer: no Go files in %s", dir)
	}
	return Check(fset, files, opts)
}

// CheckSource checks a single source string (tests, stdin mode).
func CheckSource(src string, opts Options) (*CheckReport, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "input.go", src, 0)
	if err != nil {
		return nil, err
	}
	return Check(fset, []*ast.File{f}, opts)
}

// CheckFS checks the non-test Go files of a filesystem root — the embedded
// application sources (apps.SourceFS) in particular, so that mcchecker can
// cross-validate without a source checkout.
func CheckFS(fsys fs.FS, opts Options) (*CheckReport, error) {
	entries, err := fs.ReadDir(fsys, ".")
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := fs.ReadFile(fsys, name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, src, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("stanalyzer: no Go files in file set")
	}
	return Check(fset, files, opts)
}

// buildCanon computes the connected components of the alias graph and maps
// every variable to its component's lexicographically smallest member, so
// that aliases (caller argument / callee parameter / assignment chains)
// compare equal by canonical key. Component choice is deterministic.
func (c *checker) buildCanon() {
	nameSet := map[string]bool{}
	for name := range c.an.nodes {
		nameSet[name] = true
	}
	for x, ys := range c.an.edges {
		nameSet[x] = true
		for y := range ys {
			nameSet[y] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)

	c.canon = map[string]string{}
	for _, root := range names {
		if _, done := c.canon[root]; done {
			continue
		}
		// BFS the component; starting from the smallest unvisited name in
		// sorted order makes it the representative.
		comp := []string{root}
		c.canon[root] = root
		for i := 0; i < len(comp); i++ {
			for nb := range c.an.edges[comp[i]] {
				if _, seen := c.canon[nb]; !seen {
					c.canon[nb] = root
					comp = append(comp, nb)
				}
			}
		}
	}

	c.allocNames = map[string]string{}
	for _, name := range names {
		n := c.an.nodes[name]
		if n == nil || n.allocName == "" {
			continue
		}
		key := c.canon[name]
		if _, taken := c.allocNames[key]; !taken {
			c.allocNames[key] = n.allocName
		}
	}
}

// collectConsts records integer constants — package-level and
// function-local — for offset/count/rank evaluation. Definitions may
// reference each other, so evaluation iterates to a fixpoint.
func (c *checker) collectConsts(files []*ast.File) {
	c.consts = map[string]int64{}
	type pending struct {
		scope string
		name  string
		expr  ast.Expr
	}
	var pend []pending
	collectSpecs := func(scope string, gd *ast.GenDecl) {
		if gd.Tok != token.CONST {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != len(vs.Names) {
				continue // iota groups and typed carriers are not needed
			}
			for i, name := range vs.Names {
				pend = append(pend, pending{scope: scope, name: name.Name, expr: vs.Values[i]})
			}
		}
	}
	for _, f := range files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.GenDecl:
				collectSpecs("pkg", decl)
			case *ast.FuncDecl:
				if decl.Body == nil {
					continue
				}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					if ds, ok := n.(*ast.DeclStmt); ok {
						if gd, ok := ds.Decl.(*ast.GenDecl); ok {
							collectSpecs(decl.Name.Name, gd)
						}
					}
					return true
				})
			}
		}
	}
	ev := &walker{c: c}
	for pass := 0; pass < 4; pass++ {
		progress := false
		for _, p := range pend {
			key := scopedName(p.scope, p.name)
			if _, done := c.consts[key]; done {
				continue
			}
			ev.fnScope = p.scope
			if v, ok := ev.evalInt(p.expr); ok {
				c.consts[key] = v
				progress = true
			}
		}
		if !progress {
			break
		}
	}
}

// epochMethods are the window/communicator methods that drive epoch or
// phase state — their presence makes a function relevant to inline.
var epochMethods = map[string]bool{
	"Fence": true, "Lock": true, "Unlock": true, "LockAll": true,
	"UnlockAll": true, "Post": true, "Start": true, "Complete": true,
	"WaitEpoch": true, "Flush": true, "FlushAll": true, "FlushLocal": true,
	"FlushLocalAll": true, "Free": true, "Barrier": true,
	"WinCreate": true, "WinAllocate": true,
}

// buildSummaries computes every function's summary and propagates
// relevance over the callgraph to a fixpoint.
func (c *checker) buildSummaries() {
	c.summaries = map[string]*funcSummary{}
	for name, fd := range c.an.funcs {
		s := &funcSummary{}
		seen := map[string]bool{}
		if fd.Body != nil {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.SelectorExpr:
					// Any mention of an accessor, RMA method, or epoch
					// method — calls and method-value bindings alike.
					nm := v.Sel.Name
					if _, ok := accessors[nm]; ok {
						s.relevant = true
					} else if _, ok := rmaShapes[nm]; ok {
						s.relevant = true
					} else if epochMethods[nm] {
						s.relevant = true
					}
				case *ast.CallExpr:
					if id, ok := v.Fun.(*ast.Ident); ok {
						if _, isFn := c.an.funcs[id.Name]; isFn && id.Name != name && !seen[id.Name] {
							seen[id.Name] = true
							s.callees = append(s.callees, id.Name)
						}
					}
				}
				return true
			})
		}
		sort.Strings(s.callees)
		c.summaries[name] = s
	}
	c.rep.FuncsSummarized = len(c.summaries)
	for changed := true; changed; {
		changed = false
		for _, s := range c.summaries {
			if s.relevant {
				continue
			}
			for _, callee := range s.callees {
				if cs := c.summaries[callee]; cs != nil && cs.relevant {
					s.relevant = true
					changed = true
					break
				}
			}
		}
	}
	c.rep.calls = map[string][]string{}
	for name, s := range c.summaries {
		c.rep.calls[name] = s.callees
	}
}

// applySummary handles a same-package call during the walk: callees whose
// summary touches MPI state are inlined (sharing the caller's epoch/phase
// state and window tables, substituting parameters by arguments for
// constant evaluation); irrelevant callees are skipped. The inlined
// callee's events are not merged into the caller's cross-process matching
// — the callee's own standalone walk reports those — which keeps
// table-driver functions from cross-matching unrelated applications.
func (w *walker) applySummary(fd *ast.FuncDecl, call *ast.CallExpr) {
	name := fd.Name.Name
	if sum := w.c.summaries[name]; sum != nil && !sum.relevant {
		return
	}
	if fd.Body == nil || w.depth >= maxInlineDepth || w.c.inlining[name] {
		return
	}
	w.c.inlining[name] = true
	sub := &walker{
		c: w.c, fnScope: name, st: w.st,
		wins: w.wins, methodVals: w.methodVals,
		rankGuards: append([]string(nil), w.rankGuards...),
		subst:      bindArgs(fd, call),
		outer:      w,
		depth:      w.depth + 1,
	}
	sub.walkBlock(fd.Body)
	w.st = sub.st
	delete(w.c.inlining, name)
}

// bindArgs maps callee parameter names to caller argument expressions.
func bindArgs(fd *ast.FuncDecl, call *ast.CallExpr) map[string]ast.Expr {
	m := map[string]ast.Expr{}
	if fd.Type.Params == nil {
		return m
	}
	for i, p := range flattenParams(fd) {
		if i < len(call.Args) && p != "_" {
			m[p] = call.Args[i]
		}
	}
	return m
}

// addDiag records a diagnostic, deduplicating by kind and positions (loop
// bodies are walked twice; inlined callees repeat their standalone walk's
// findings). When a duplicate arrives with higher confidence — constants
// visible through inline substitution — the stronger version wins.
func (c *checker) addDiag(d Diagnostic) {
	k := d.key()
	if i, ok := c.diagIdx[k]; ok {
		if d.Confidence > c.rep.Diags[i].Confidence {
			c.rep.Diags[i] = d
		}
		return
	}
	c.diagIdx[k] = len(c.rep.Diags)
	c.rep.Diags = append(c.rep.Diags, d)
}

// exposeCounters publishes the run's mcchecker_static_* counters.
func (c *checker) exposeCounters() {
	o := c.opts.Obs
	if o == nil {
		return
	}
	o.Counter("mcchecker_static_files_parsed_total").Add(int64(c.rep.FilesParsed))
	o.Counter("mcchecker_static_functions_checked_total").Add(int64(c.rep.FuncsChecked))
	o.Counter("mcchecker_static_functions_summarized_total").Add(int64(c.rep.FuncsSummarized))
	for i := range c.rep.Diags {
		d := &c.rep.Diags[i]
		o.Counter("mcchecker_static_diagnostics_total",
			"kind", string(d.Kind), "confidence", d.Confidence.String()).Inc()
	}
}
