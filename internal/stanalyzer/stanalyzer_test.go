package stanalyzer

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const quickSrc = `package app

import "repro/internal/mpi"

func body(p *mpi.Proc) error {
	win := p.Alloc(64, "window")
	scratch := p.Alloc(64, "scratch")
	_ = scratch
	w := p.WinCreate(win, 1, p.CommWorld())
	w.Fence(0)
	src := p.Alloc(8, "srcbuf")
	w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
	w.Fence(0)
	return nil
}
`

func TestSeedsFromRMACalls(t *testing.T) {
	rep, err := AnalyzeSource(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	names := rep.BufferNames()
	want := []string{"srcbuf", "window"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("BufferNames = %v, want %v\n%s", names, want, rep)
	}
	// scratch is allocated but never reaches an RMA call: not relevant.
	for _, v := range rep.Relevant {
		if v.AllocName == "scratch" {
			t.Error("scratch must not be relevant")
		}
	}
}

func TestPropagationThroughAssignment(t *testing.T) {
	src := `package app
func body(p *P) {
	buf := p.Alloc(8, "realbuf")
	alias := buf
	w.Put(alias, 0)
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.BufferNames(), []string{"realbuf"}) {
		t.Errorf("alias not propagated: %v\n%s", rep.BufferNames(), rep)
	}
	// Both the alias and the original are marked.
	names := rep.Names()
	if !contains(names, "body.alias") || !contains(names, "body.buf") {
		t.Errorf("names = %v", names)
	}
}

func TestPropagationThroughFunctionCall(t *testing.T) {
	src := `package app
func helper(dst *B) {
	w.Put(dst, 0)
}
func body(p *P) {
	buf := p.Alloc(8, "passed")
	helper(buf)
	other := p.Alloc(8, "unrelated")
	_ = other
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.BufferNames(), []string{"passed"}) {
		t.Errorf("call propagation failed: %v\n%s", rep.BufferNames(), rep)
	}
}

func TestPropagationThroughReturnValue(t *testing.T) {
	src := `package app
func makeBuf(p *P) *B {
	b := p.Alloc(8, "made")
	return b
}
func body(p *P) {
	buf := makeBuf(p)
	w.Get(buf, 0)
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.BufferNames(), []string{"made"}) {
		t.Errorf("return propagation failed: %v\n%s", rep.BufferNames(), rep)
	}
}

func TestConservativeOverBranches(t *testing.T) {
	// The analysis is branch-insensitive: a buffer passed to Put in a dead
	// branch is still marked (paper: "conservative in that it is
	// insensitive to branch and loop").
	src := `package app
func body(p *P) {
	buf := p.Alloc(8, "deadbranch")
	if false {
		w.Put(buf, 0)
	}
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.BufferNames(), []string{"deadbranch"}) {
		t.Errorf("branch-insensitivity violated: %v", rep.BufferNames())
	}
}

func TestScopingSeparatesFunctions(t *testing.T) {
	// A variable named buf in an unrelated function must not be marked.
	src := `package app
func body(p *P) {
	buf := p.Alloc(8, "hot")
	w.Put(buf, 0)
}
func other(p *P) {
	buf := p.Alloc(8, "cold")
	_ = buf
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.BufferNames(), []string{"hot"}) {
		t.Errorf("scoping failed: %v\n%s", rep.BufferNames(), rep)
	}
}

func TestIndexAndAddressOfUnwrap(t *testing.T) {
	src := `package app
func body(p *P) {
	bufs := p.Alloc(8, "vec")
	w.Accumulate(&bufs, 0)
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.BufferNames(), []string{"vec"}) {
		t.Errorf("unwrap failed: %v", rep.BufferNames())
	}
}

func TestMPI3Seeds(t *testing.T) {
	src := `package app
func body(p *P) {
	w, cnt := p.WinAllocate(8, 8, c, "cnt")
	one := p.Alloc(8, "one")
	old := p.Alloc(8, "old")
	other := p.Alloc(8, "other")
	_ = cnt
	_ = other
	w.FetchAndOp(one, 0, old, 0, 0, 0, T, Sum)
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	names := rep.BufferNames()
	want := map[string]bool{"cnt": true, "one": true, "old": true}
	for _, n := range names {
		if n == "other" {
			t.Error("'other' must not be relevant")
		}
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing relevant buffers %v; got %v\n%s", want, names, rep)
	}
}

func TestCompareAndSwapSeeds(t *testing.T) {
	src := `package app
func body(p *P) {
	nv := p.Alloc(8, "nv")
	cmp := p.Alloc(8, "cmp")
	res := p.Alloc(8, "res")
	w.CompareAndSwap(nv, 0, cmp, 0, res, 0, 1, 0, T)
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.BufferNames(), []string{"cmp", "nv", "res"}) {
		t.Errorf("CAS seeds = %v", rep.BufferNames())
	}
}

func TestAnalyzeDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(quickSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	// Test files must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "main_test.go"), []byte("package app\nfunc t(p *P){x:=p.Alloc(1,\"testonly\");w.Put(x,0)}"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if contains(rep.BufferNames(), "testonly") {
		t.Error("test file analyzed")
	}
	if !contains(rep.BufferNames(), "window") {
		t.Errorf("dir analysis missed window: %v", rep.BufferNames())
	}
}

func TestAnalyzeDirEmpty(t *testing.T) {
	if _, err := AnalyzeDir(t.TempDir()); err == nil {
		t.Error("empty dir must error")
	}
}

func TestAnalyzeSourceSyntaxError(t *testing.T) {
	if _, err := AnalyzeSource("package x\nfunc {"); err == nil {
		t.Error("syntax error must surface")
	}
}

func TestReportString(t *testing.T) {
	rep, err := AnalyzeSource(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"relevant variable", "passed to Put", "window"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestMethodValueSeeds(t *testing.T) {
	// f := w.Put binds the method; calling f must seed its buffer argument
	// exactly like a direct w.Put call.
	src := `package app
func body(p *P) {
	buf := p.Alloc(8, "viavalue")
	other := p.Alloc(8, "unrelated")
	_ = other
	f := w.Put
	f(buf, 0)
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.BufferNames(), []string{"viavalue"}) {
		t.Errorf("method-value seed failed: %v\n%s", rep.BufferNames(), rep)
	}
}

func TestCompositeLiteralAlias(t *testing.T) {
	// A buffer smuggled through a struct literal and pulled back out by
	// field selection still aliases the allocation.
	src := `package app
func body(p *P) {
	buf := p.Alloc(8, "wrapped")
	h := holder{data: buf}
	w.Put(h.data, 0)
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.BufferNames(), []string{"wrapped"}) {
		t.Errorf("composite-literal alias failed: %v\n%s", rep.BufferNames(), rep)
	}
}

func TestNestedCompositeLiteralAlias(t *testing.T) {
	src := `package app
func body(p *P) {
	buf := p.Alloc(8, "nested")
	hs := []holder{{data: buf}}
	w.Get(hs[0].data, 0)
}
`
	rep, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.BufferNames(), []string{"nested"}) {
		t.Errorf("nested literal alias failed: %v\n%s", rep.BufferNames(), rep)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
