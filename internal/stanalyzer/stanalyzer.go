// Package stanalyzer implements ST-Analyzer (paper §IV-A): a static
// analysis that identifies the variables whose loads and stores the
// profiler must instrument, so that instrumentation cost is paid only for
// memory that can participate in one-sided communication.
//
// The paper's ST-Analyzer runs on C via Clang; this one runs on the Go
// source of applications written against the simulator's MPI interface,
// with the same design: it identifies all variables that belong to window
// buffers or are passed to one-sided communication calls, labels them
// "relevant", and propagates the labels through assignments (aliases) and
// function calls involving those variables, to a fixpoint. Like the
// original it is insensitive to branches and loops — conservative: it may
// over-mark, but it does not miss variables that need instrumentation.
//
// The report lists the relevant variables with their positions, and — for
// variables bound to tracked allocations (p.Alloc(size, "name")) — the
// runtime buffer names the profiler should observe.
package stanalyzer

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// rmaSeedCalls maps method names to the argument indexes of the buffers
// that become relevant when the method is called (origin, result, and
// compare buffers of the MPI-3 fetching atomics included).
var rmaSeedCalls = map[string][]int{
	"Put":            {0}, // origin buffer
	"Get":            {0},
	"Accumulate":     {0},
	"WinCreate":      {0},       // window buffer
	"GetAccumulate":  {0, 4},    // origin, result
	"FetchAndOp":     {0, 2},    // origin, result
	"CompareAndSwap": {0, 2, 4}, // origin, compare, result
}

// allocCalls maps allocation method names to the argument index of the
// buffer-name string literal.
var allocCalls = map[string]int{
	"Alloc":        1,
	"AllocFloat64": 1,
	"AllocInt32":   1,
	"WinAllocate":  3,
}

// Var is one relevant variable in the report.
type Var struct {
	Name      string // scoped name: "func.var" or "pkg.var" for globals
	Pos       token.Position
	Reason    string // why it became relevant
	AllocName string // runtime buffer name, if bound to a tracked allocation
}

// Report is ST-Analyzer's output: the variables to instrument.
type Report struct {
	Relevant []Var
}

// BufferNames returns the runtime buffer names of the relevant variables,
// sorted and deduplicated — the input to profiler.FromNames.
func (r *Report) BufferNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range r.Relevant {
		if v.AllocName != "" && !seen[v.AllocName] {
			seen[v.AllocName] = true
			out = append(out, v.AllocName)
		}
	}
	sort.Strings(out)
	return out
}

// Names returns the scoped variable names, sorted.
func (r *Report) Names() []string {
	out := make([]string, len(r.Relevant))
	for i, v := range r.Relevant {
		out[i] = v.Name
	}
	sort.Strings(out)
	return out
}

func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ST-Analyzer: %d relevant variable(s)\n", len(r.Relevant))
	vs := append([]Var(nil), r.Relevant...)
	sort.Slice(vs, func(i, j int) bool { return vs[i].Name < vs[j].Name })
	for _, v := range vs {
		fmt.Fprintf(&sb, "  %-24s %s", v.Name, v.Reason)
		if v.AllocName != "" {
			fmt.Fprintf(&sb, " [buffer %q]", v.AllocName)
		}
		fmt.Fprintf(&sb, " (%s:%d)\n", filepath.Base(v.Pos.Filename), v.Pos.Line)
	}
	return sb.String()
}

// node is one variable in the alias graph.
type node struct {
	pos       token.Pos
	allocName string
	reason    string // non-empty once seeded
}

type analyzer struct {
	fset  *token.FileSet
	nodes map[string]*node
	edges map[string]map[string]bool
	seeds []string

	funcs map[string]*ast.FuncDecl // same-package functions by name

	// methodVals maps scoped variable names bound to RMA method values
	// (f := w.Put) to the method name, so calls through them seed too.
	methodVals map[string]string
}

// newAnalyzer builds the alias graph over the files: nodes, edges, seeds,
// and the function table. Shared by the relevance pass (AnalyzeFiles) and
// the static checker (Check), which reuses the graph for buffer identity.
func newAnalyzer(fset *token.FileSet, files []*ast.File) *analyzer {
	a := &analyzer{
		fset:       fset,
		nodes:      map[string]*node{},
		edges:      map[string]map[string]bool{},
		funcs:      map[string]*ast.FuncDecl{},
		methodVals: map[string]string{},
	}
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil {
				a.funcs[fd.Name.Name] = fd
			}
		}
	}
	for _, f := range files {
		a.walkFile(f)
	}
	return a
}

// AnalyzeFiles runs the analysis over parsed files sharing one fileset.
func AnalyzeFiles(fset *token.FileSet, files []*ast.File) (*Report, error) {
	a := newAnalyzer(fset, files)
	a.propagate()
	return a.report(), nil
}

// AnalyzeDir parses the non-test Go files of a directory and analyzes them.
func AnalyzeDir(dir string) (*Report, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("stanalyzer: no Go files in %s", dir)
	}
	return AnalyzeFiles(fset, files)
}

// AnalyzeSource analyzes a single source string (for tests and the CLI's
// stdin mode).
func AnalyzeSource(src string) (*Report, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "input.go", src, 0)
	if err != nil {
		return nil, err
	}
	return AnalyzeFiles(fset, []*ast.File{f})
}

func (a *analyzer) getNode(name string, pos token.Pos) *node {
	n, ok := a.nodes[name]
	if !ok {
		n = &node{pos: pos}
		a.nodes[name] = n
	}
	return n
}

func (a *analyzer) addEdge(x, y string) {
	if x == y {
		return
	}
	if a.edges[x] == nil {
		a.edges[x] = map[string]bool{}
	}
	if a.edges[y] == nil {
		a.edges[y] = map[string]bool{}
	}
	a.edges[x][y] = true
	a.edges[y][x] = true
}

func (a *analyzer) seed(name string, pos token.Pos, reason string) {
	n := a.getNode(name, pos)
	if n.reason == "" {
		n.reason = reason
		a.seeds = append(a.seeds, name)
	}
}

// baseIdent reduces an expression to its base identifier: &x → x,
// x[i] → x, x.f → x, (x) → x.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.UnaryExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func (a *analyzer) walkFile(f *ast.File) {
	// Package-level variables get package scope.
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *ast.GenDecl:
			for _, spec := range decl.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						a.getNode("pkg."+name.Name, name.Pos())
					}
				}
			}
		case *ast.FuncDecl:
			a.walkFunc(decl)
		}
	}
}

// scopedName qualifies a local variable with its function.
func scopedName(fn, v string) string { return fn + "." + v }

func (a *analyzer) walkFunc(fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	fn := fd.Name.Name
	resolve := func(id *ast.Ident) string {
		// Locals shadow globals; without full type information we choose
		// the local scope (conservative for propagation because seeds and
		// edges stay within matching scopes).
		return scopedName(fn, id.Name)
	}

	// Parameters are nodes.
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				a.getNode(resolve(name), name.Pos())
			}
		}
	}

	// Pre-pass: record method-value bindings (f := w.Put) so that calls
	// through the bound variable seed their buffer arguments like the
	// direct method call would. The binding is collected before the main
	// walk so that binding order in the source does not matter.
	ast.Inspect(fd.Body, func(nd ast.Node) bool {
		st, ok := nd.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return true
		}
		sel, ok := st.Rhs[0].(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if _, isRMA := rmaSeedCalls[sel.Sel.Name]; !isRMA {
			return true
		}
		if id := baseIdent(st.Lhs[0]); id != nil && id.Name != "_" {
			a.methodVals[resolve(id)] = sel.Sel.Name
		}
		return true
	})

	var retCount int
	ast.Inspect(fd.Body, func(nd ast.Node) bool {
		switch v := nd.(type) {
		case *ast.AssignStmt:
			a.handleAssign(fn, resolve, v)
		case *ast.CallExpr:
			a.handleCall(fn, resolve, v)
		case *ast.ReturnStmt:
			for i, res := range v.Results {
				if id := baseIdent(res); id != nil {
					a.addEdge(resolve(id), fmt.Sprintf("%s.__ret%d", fn, i))
				}
			}
			retCount++
		}
		return true
	})
}

func (a *analyzer) handleAssign(fn string, resolve func(*ast.Ident) string, st *ast.AssignStmt) {
	// x := call(...) forms are handled in handleCall via __ret nodes and
	// allocation binding here.
	if len(st.Rhs) == 1 {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
			a.bindCallResults(fn, resolve, st.Lhs, call)
			return
		}
	}
	n := len(st.Lhs)
	if len(st.Rhs) != n {
		return
	}
	for i := 0; i < n; i++ {
		lhs := baseIdent(st.Lhs[i])
		if lhs == nil || lhs.Name == "_" {
			continue
		}
		ln := resolve(lhs)
		// Composite literals alias the assigned variable with every
		// element: s := state{buf: b} makes s carry b, and the later
		// s.buf access reduces to s via baseIdent.
		if lit, ok := st.Rhs[i].(*ast.CompositeLit); ok {
			a.getNode(ln, lhs.Pos())
			a.linkComposite(ln, resolve, lit)
			continue
		}
		rhs := baseIdent(st.Rhs[i])
		if rhs == nil {
			continue
		}
		rn := resolve(rhs)
		a.getNode(ln, lhs.Pos())
		a.getNode(rn, rhs.Pos())
		a.addEdge(ln, rn)
	}
}

// linkComposite aliases a variable with the identifiers stored in a
// composite literal (struct fields, slice/array/map elements), descending
// into nested literals.
func (a *analyzer) linkComposite(ln string, resolve func(*ast.Ident) string, lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if inner, ok := v.(*ast.CompositeLit); ok {
			a.linkComposite(ln, resolve, inner)
			continue
		}
		if id := baseIdent(v); id != nil && id.Name != "_" {
			rn := resolve(id)
			a.getNode(rn, id.Pos())
			a.addEdge(ln, rn)
		}
	}
}

// bindCallResults connects assignment LHS variables to a call: tracked
// allocations record the buffer name; same-package calls connect to the
// callee's return nodes.
func (a *analyzer) bindCallResults(fn string, resolve func(*ast.Ident) string, lhs []ast.Expr, call *ast.CallExpr) {
	name := calleeName(call)
	if nameIdx, ok := allocCalls[name]; ok && len(call.Args) > nameIdx {
		if lit, ok := call.Args[nameIdx].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if bufName, err := strconv.Unquote(lit.Value); err == nil && len(lhs) >= 1 {
				// WinAllocate returns (window, buffer): both results refer
				// to the same tracked allocation, which is the window —
				// relevant by definition.
				for _, l := range lhs {
					if id := baseIdent(l); id != nil && id.Name != "_" {
						n := a.getNode(resolve(id), id.Pos())
						n.allocName = bufName
						if name == "WinAllocate" {
							a.seed(resolve(id), id.Pos(), "allocated by WinAllocate")
						}
					}
				}
			}
		}
	}
	if callee, ok := a.funcs[name]; ok && callee.Name.Name != fn {
		for i, l := range lhs {
			if id := baseIdent(l); id != nil && id.Name != "_" {
				a.getNode(resolve(id), id.Pos())
				a.addEdge(resolve(id), fmt.Sprintf("%s.__ret%d", callee.Name.Name, i))
			}
		}
	}
	// The call itself may also seed/propagate through its arguments.
	a.handleCall(fn, resolve, call)
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func (a *analyzer) handleCall(fn string, resolve func(*ast.Ident) string, call *ast.CallExpr) {
	name := calleeName(call)

	// Calls through a method value (f := w.Put; f(buf, ...)) seed the same
	// argument indexes as the underlying method.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if method, bound := a.methodVals[resolve(id)]; bound {
			for _, argIdx := range rmaSeedCalls[method] {
				if len(call.Args) <= argIdx {
					continue
				}
				if arg := baseIdent(call.Args[argIdx]); arg != nil {
					a.seed(resolve(arg), arg.Pos(), "passed to "+method+" (method value)")
				}
			}
		}
	}

	// Seed: buffers passed to one-sided communication calls.
	if argIdxs, ok := rmaSeedCalls[name]; ok {
		for _, argIdx := range argIdxs {
			if len(call.Args) <= argIdx {
				continue
			}
			if id := baseIdent(call.Args[argIdx]); id != nil {
				a.seed(resolve(id), id.Pos(), "passed to "+name)
			}
		}
	}

	// Propagation: arguments flowing into same-package function parameters.
	if callee, ok := a.funcs[name]; ok && callee.Type.Params != nil {
		paramNames := flattenParams(callee)
		for i, arg := range call.Args {
			if i >= len(paramNames) {
				break
			}
			id := baseIdent(arg)
			if id == nil {
				continue
			}
			a.getNode(resolve(id), id.Pos())
			a.addEdge(resolve(id), scopedName(callee.Name.Name, paramNames[i]))
		}
	}
}

func flattenParams(fd *ast.FuncDecl) []string {
	var out []string
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, "_")
			continue
		}
		for _, n := range field.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

// propagate spreads relevance along alias edges to a fixpoint (BFS).
func (a *analyzer) propagate() {
	queue := append([]string(nil), a.seeds...)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		reason := a.nodes[cur].reason
		for nb := range a.edges[cur] {
			n := a.getNode(nb, token.NoPos)
			if n.reason == "" {
				n.reason = "aliases " + cur + " (" + reason + ")"
				queue = append(queue, nb)
			}
		}
	}
}

func (a *analyzer) report() *Report {
	r := &Report{}
	for name, n := range a.nodes {
		if n.reason == "" || strings.Contains(name, ".__ret") {
			continue
		}
		r.Relevant = append(r.Relevant, Var{
			Name:      name,
			Pos:       a.fset.Position(n.pos),
			Reason:    n.reason,
			AllocName: n.allocName,
		})
	}
	sort.Slice(r.Relevant, func(i, j int) bool { return r.Relevant[i].Name < r.Relevant[j].Name })
	return r
}
