package stanalyzer

// conflicts.go: the static conflict rules. Byte footprints of local
// accesses and RMA transfers are computed as symbolic intervals (constant
// where the source is constant, bounded-below otherwise), and compared
// pairwise: within an epoch against the pending-operation sets the walk
// maintains, and across processes by matching events in the same
// synchronization phase under the SPMD assumption — every rank runs the
// same function, so a remote Put targeting window offset X can land in
// this rank's window while this rank accesses offset X locally.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// span is a symbolic byte interval: lo is the start (-1 unknown), min the
// guaranteed extent in bytes, max the largest possible extent (-1
// unbounded).
type span struct {
	lo  int64
	min int64
	max int64
}

func exactSpan(lo, size int64) span { return span{lo: lo, min: size, max: size} }

const (
	ovDisjoint = iota
	ovMaybe
	ovDefinite
)

// overlap compares two spans: ovDefinite when the guaranteed intervals
// intersect, ovDisjoint when even the maximal intervals cannot, ovMaybe
// otherwise.
func overlap(a, b span) int {
	if a.lo >= 0 && b.lo >= 0 {
		if a.lo < b.lo+b.min && b.lo < a.lo+a.min {
			return ovDefinite
		}
		if a.max >= 0 && b.lo >= a.lo+a.max {
			return ovDisjoint
		}
		if b.max >= 0 && a.lo >= b.lo+b.max {
			return ovDisjoint
		}
	}
	return ovMaybe
}

// evalInt evaluates an integer expression from literals, recorded
// constants, and integer conversions.
func (w *walker) evalInt(e ast.Expr) (int64, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind == token.INT {
			n, err := strconv.ParseInt(strings.ReplaceAll(v.Value, "_", ""), 0, 64)
			return n, err == nil
		}
	case *ast.ParenExpr:
		return w.evalInt(v.X)
	case *ast.UnaryExpr:
		n, ok := w.evalInt(v.X)
		if !ok {
			return 0, false
		}
		switch v.Op {
		case token.SUB:
			return -n, true
		case token.ADD:
			return n, true
		}
	case *ast.BinaryExpr:
		l, lok := w.evalInt(v.X)
		r, rok := w.evalInt(v.Y)
		if !lok || !rok {
			return 0, false
		}
		switch v.Op {
		case token.ADD:
			return l + r, true
		case token.SUB:
			return l - r, true
		case token.MUL:
			return l * r, true
		case token.QUO:
			if r != 0 {
				return l / r, true
			}
		case token.REM:
			if r != 0 {
				return l % r, true
			}
		case token.SHL:
			return l << uint(r), true
		case token.SHR:
			return l >> uint(r), true
		}
	case *ast.Ident:
		// Inlined callee: a parameter evaluates as the caller's argument,
		// in the caller's environment.
		if w.subst != nil && w.outer != nil {
			if arg, ok := w.subst[v.Name]; ok {
				return w.outer.evalInt(arg)
			}
		}
		if n, ok := w.c.consts[scopedName(w.fnScope, v.Name)]; ok {
			return n, true
		}
		if n, ok := w.c.consts["pkg."+v.Name]; ok {
			return n, true
		}
	case *ast.CallExpr:
		// Integer conversions: uint64(x), int(x), ...
		if id, ok := v.Fun.(*ast.Ident); ok && len(v.Args) == 1 && intConversions[id.Name] {
			return w.evalInt(v.Args[0])
		}
	}
	return 0, false
}

var intConversions = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "byte": true, "rune": true,
}

// dtypeSize resolves the element size of a predefined MPI datatype
// expression (mpi.Float64 → 8); derived datatypes are unknown (0).
func dtypeSize(e ast.Expr) int64 {
	name := ""
	switch v := e.(type) {
	case *ast.SelectorExpr:
		name = v.Sel.Name
	case *ast.Ident:
		name = v.Name
	}
	switch name {
	case "Byte":
		return 1
	case "Int32", "Float32":
		return 4
	case "Int64", "Float64":
		return 8
	}
	return 0
}

// accInfo describes one memory.Buffer accessor: element size, direction,
// and how the accessed extent is determined. countArg is the index of an
// element-count argument; sizeArg of a byte-size argument; -1 for a
// single element; -2 when the extent is not statically visible (slice or
// raw arguments).
type accInfo struct {
	elem     int64
	write    bool
	countArg int
	sizeArg  int
}

var accessors = map[string]accInfo{
	"Uint8At":         {elem: 1, countArg: -1},
	"SetUint8":        {elem: 1, write: true, countArg: -1},
	"Int32At":         {elem: 4, countArg: -1},
	"SetInt32":        {elem: 4, write: true, countArg: -1},
	"Int64At":         {elem: 8, countArg: -1},
	"SetInt64":        {elem: 8, write: true, countArg: -1},
	"Float64At":       {elem: 8, countArg: -1},
	"SetFloat64":      {elem: 8, write: true, countArg: -1},
	"Float64SliceAt":  {elem: 8, countArg: 1},
	"SetFloat64Slice": {elem: 8, write: true, countArg: -2},
	"LoadBytes":       {elem: 1, sizeArg: 1, countArg: -3},
	"StoreBytes":      {elem: 1, write: true, countArg: -2},
	"Fill":            {elem: 1, write: true, sizeArg: 1, countArg: -3},
	"ReadRaw":         {elem: 1, countArg: -2},
	"WriteRaw":        {elem: 1, write: true, countArg: -2},
	"UpdateRaw":       {elem: 1, write: true, sizeArg: 1, countArg: -3},
}

// accessSpan computes the byte footprint of an accessor call. All
// accessors take the byte offset as their first argument.
func (w *walker) accessSpan(info accInfo, call *ast.CallExpr) span {
	sp := span{lo: -1, min: 1, max: -1}
	if len(call.Args) >= 1 {
		if off, ok := w.evalInt(call.Args[0]); ok && off >= 0 {
			sp.lo = off
		}
	}
	switch {
	case info.countArg == -1:
		sp.min, sp.max = info.elem, info.elem
	case info.countArg == -3 && info.sizeArg >= 0 && len(call.Args) > info.sizeArg:
		if size, ok := w.evalInt(call.Args[info.sizeArg]); ok && size > 0 {
			sp.min, sp.max = size, size
		}
	case info.countArg >= 0 && len(call.Args) > info.countArg:
		if n, ok := w.evalInt(call.Args[info.countArg]); ok && n > 0 {
			sp.min, sp.max = n*info.elem, n*info.elem
		} else {
			sp.min = info.elem // at least one element for the call to matter
		}
	}
	return sp
}

// bufArg names the argument positions describing one buffer region of an
// RMA call: buffer, byte offset, element count (-1 = single element), and
// datatype.
type bufArg struct {
	buf, off, count, typ int
}

// rmaShape describes the argument layout and memory semantics of one
// window RMA method.
type rmaShape struct {
	reads  []bufArg // regions MPI reads from local memory
	writes []bufArg // regions MPI writes to local memory

	target, disp, tCount, tType int // target-side arguments; tCount -1 = 1

	// opArg is the reduction-op argument index of accumulate-family
	// calls (0 = none); its source text feeds rewrite-accumulate actions.
	opArg int

	writesTarget bool
	readsTarget  bool
	accFamily    bool
}

var rmaShapes = map[string]rmaShape{
	"Put": {
		reads:  []bufArg{{0, 1, 2, 3}},
		target: 4, disp: 5, tCount: 6, tType: 7,
		writesTarget: true,
	},
	"Get": {
		writes: []bufArg{{0, 1, 2, 3}},
		target: 4, disp: 5, tCount: 6, tType: 7,
		readsTarget: true,
	},
	"Accumulate": {
		reads:  []bufArg{{0, 1, 2, 3}},
		target: 4, disp: 5, tCount: 6, tType: 7, opArg: 8,
		writesTarget: true, accFamily: true,
	},
	"GetAccumulate": {
		reads:  []bufArg{{0, 1, 2, 3}},
		writes: []bufArg{{4, 5, 6, 7}},
		target: 8, disp: 9, tCount: 10, tType: 11, opArg: 12,
		writesTarget: true, readsTarget: true, accFamily: true,
	},
	"FetchAndOp": {
		reads:  []bufArg{{0, 1, -1, 6}},
		writes: []bufArg{{2, 3, -1, 6}},
		target: 4, disp: 5, tCount: -1, tType: 6, opArg: 7,
		writesTarget: true, readsTarget: true, accFamily: true,
	},
	"CompareAndSwap": {
		reads:  []bufArg{{0, 1, -1, 8}, {2, 3, -1, 8}},
		writes: []bufArg{{4, 5, -1, 8}},
		target: 6, disp: 7, tCount: -1, tType: 8,
		writesTarget: true, readsTarget: true, accFamily: true,
	},
}

// bufSpan computes the byte footprint of one RMA buffer region.
func (w *walker) bufSpan(ba bufArg, call *ast.CallExpr) span {
	sp := span{lo: -1, min: 1, max: -1}
	if len(call.Args) > ba.off {
		if off, ok := w.evalInt(call.Args[ba.off]); ok && off >= 0 {
			sp.lo = off
		}
	}
	elem := int64(0)
	if ba.typ >= 0 && len(call.Args) > ba.typ {
		elem = dtypeSize(call.Args[ba.typ])
	}
	count, countKnown := int64(1), ba.count == -1
	if ba.count >= 0 && len(call.Args) > ba.count {
		count, countKnown = w.evalInt(call.Args[ba.count])
	}
	if elem > 0 {
		if countKnown && count > 0 {
			sp.min, sp.max = count*elem, count*elem
		} else {
			sp.min = elem
		}
	}
	return sp
}

// rmaCall records an RMA operation: its pending-op joins the window's
// innermost open epoch (checking the within-epoch target rule on the
// way), and an event joins the cross-process phase matching.
func (w *walker) rmaCall(info *winInfo, name string, call *ast.CallExpr) {
	shape := rmaShapes[name]
	op := &pendingOp{
		call: name, pos: call.Pos(), winKey: info.key,
		writesTarget: shape.writesTarget, readsTarget: shape.readsTarget, accFamily: shape.accFamily,
	}
	if len(call.Args) > shape.target {
		t := call.Args[shape.target]
		op.targetText = exprText(t)
		if v, ok := w.evalInt(t); ok {
			val := v
			op.targetVal = &val
		}
	}
	op.tgtSpan = w.targetSpan(info, shape, call)
	for _, ba := range shape.reads {
		if u, ok := w.rmaBufUse(ba, call); ok {
			op.reads = append(op.reads, u)
		}
	}
	for _, ba := range shape.writes {
		if u, ok := w.rmaBufUse(ba, call); ok {
			op.writes = append(op.writes, u)
		}
	}

	ep := w.currentEpoch(info.key)
	if ep != nil {
		w.checkEpochTarget(info, ep, op)
		ep.ops = append(ep.ops, op)
	}

	ev := rmaEvent{
		call: name, pos: op.pos, winKey: info.key,
		targetText: op.targetText, targetVal: op.targetVal,
		tgtSpan: op.tgtSpan, phase: w.st.phase, fuzzy: w.st.phaseFuzzy,
		rankGuard:    w.rankGuard(),
		writesTarget: op.writesTarget, readsTarget: op.readsTarget, accFamily: op.accFamily,
	}
	if shape.accFamily && shape.opArg > 0 && len(call.Args) > shape.opArg {
		ev.accOp = exprText(call.Args[shape.opArg])
	}
	if ep != nil {
		ev.inEpoch, ev.epoch, ev.epochOpen = true, ep.kind, ep.openPos
	}
	w.rma = append(w.rma, ev)
}

func (w *walker) rmaBufUse(ba bufArg, call *ast.CallExpr) (bufUse, bool) {
	if len(call.Args) <= ba.buf {
		return bufUse{}, false
	}
	id := baseIdent(call.Args[ba.buf])
	if id == nil {
		return bufUse{}, false
	}
	return bufUse{key: w.resolveKey(id.Name), sp: w.bufSpan(ba, call)}, true
}

// targetSpan computes the byte footprint in the target window:
// displacement times displacement unit, extended by the transfer size.
func (w *walker) targetSpan(info *winInfo, shape rmaShape, call *ast.CallExpr) span {
	sp := span{lo: -1, min: 1, max: -1}
	if len(call.Args) > shape.disp {
		if disp, ok := w.evalInt(call.Args[shape.disp]); ok && disp >= 0 {
			if info.dispUnit > 0 {
				sp.lo = disp * info.dispUnit
			} else if disp == 0 {
				sp.lo = 0
			}
		}
	}
	elem := int64(0)
	if shape.tType >= 0 && len(call.Args) > shape.tType {
		elem = dtypeSize(call.Args[shape.tType])
	}
	count, countKnown := int64(1), shape.tCount == -1
	if shape.tCount >= 0 && len(call.Args) > shape.tCount {
		count, countKnown = w.evalInt(call.Args[shape.tCount])
	}
	if elem > 0 {
		if countKnown && count > 0 {
			sp.min, sp.max = count*elem, count*elem
		} else {
			sp.min = elem
		}
	}
	return sp
}

// sameTarget decides whether two operations can address the same target
// rank: constant ranks compare exactly; otherwise only identical source
// spellings are considered the same (distinct expressions like `left` and
// `right` coincide only under communicator wraparound, which would drown
// the report in noise).
func sameTarget(aText string, aVal *int64, bText string, bVal *int64) bool {
	if aVal != nil && bVal != nil {
		return *aVal == *bVal
	}
	return aText == bText
}

// checkEpochTarget flags incompatible same-epoch operations whose target
// regions definitely overlap (paper Figure 2b/2c). Symbolic maybes are
// left to the cross-process phase rule to keep the within-epoch rule
// precise.
func (w *walker) checkEpochTarget(info *winInfo, ep *epochState, op *pendingOp) {
	for _, prev := range ep.ops {
		if prev.pos == op.pos {
			continue // the same statement observed again by a loop re-walk
		}
		if compatibleOps(prev, op) {
			continue
		}
		if !sameTarget(prev.targetText, prev.targetVal, op.targetText, op.targetVal) {
			continue
		}
		if overlap(prev.tgtSpan, op.tgtSpan) != ovDefinite {
			continue
		}
		conf := ConfHigh
		if prev.merged {
			conf = ConfMedium
		}
		anchor := w.c.fset.Position(op.pos)
		var act *FixAction
		switch {
		case ep.kind == epFence:
			act = &FixAction{Kind: FixSplitEpoch, Anchor: anchor, Win: info.text,
				Open: w.c.fset.Position(ep.openPos)}
		case prev.localDone:
			act = &FixAction{Kind: FixWidenFlushLocal, Anchor: anchor, Win: info.text,
				Target: op.targetText}
		case ep.kind == epLock || ep.kind == epLockAll:
			act = &FixAction{Kind: FixInsertFlush, Anchor: anchor, Win: info.text,
				Target: op.targetText}
		}
		w.c.addDiag(Diagnostic{
			Kind: KindEpochTargetConflict, Confidence: conf, Class: KindEpochTargetConflict.Class(),
			Pos: anchor, Ref: w.c.fset.Position(prev.pos),
			Fn: w.fnScope, Win: info.text, Buffer: info.bufName,
			Message: fmt.Sprintf("%s and %s to overlapping regions of target %s within one %s epoch",
				prev.call, op.call, op.targetText, ep.kind),
			Fix:    KindEpochTargetConflict.Fix(),
			Action: act,
			Ranks:  constRanks(prev.targetVal, op.targetVal),
		})
	}
}

// compatibleOps mirrors the dynamic analyzer's Table I compatibility:
// concurrent reads agree, and accumulate-family operations are atomic
// with respect to each other.
func compatibleOps(a, b *pendingOp) bool {
	if !a.writesTarget && !b.writesTarget {
		return true
	}
	if a.accFamily && b.accFamily {
		return true
	}
	return false
}

// crossTargetAction plans the repair for a cross-target conflict. A plain
// Put racing an accumulate-family operation becomes an Accumulate with
// the same reduction op (Table I makes same-family operations
// compatible); two incompatible operations issued in one fence epoch are
// separated by an extra collective fence. Everything else has no
// single-edit mechanical repair.
func crossTargetAction(w *walker, a, b *rmaEvent, info *winInfo) *FixAction {
	if a.accFamily != b.accFamily {
		plain, acc := a, b
		if a.accFamily {
			plain, acc = b, a
		}
		if plain.call == "Put" && acc.accOp != "" {
			return &FixAction{Kind: FixRewriteAccumulate,
				Anchor: w.c.fset.Position(plain.pos), Op: acc.accOp}
		}
		return nil
	}
	if info != nil && a.inEpoch && b.inEpoch &&
		a.epoch == epFence && b.epoch == epFence && a.epochOpen == b.epochOpen {
		return &FixAction{Kind: FixSplitEpoch, Anchor: w.c.fset.Position(b.pos),
			Win: info.text, Open: w.c.fset.Position(a.epochOpen)}
	}
	return nil
}

func constRanks(vals ...*int64) []int {
	var out []int
	seen := map[int]bool{}
	for _, v := range vals {
		if v != nil && !seen[int(*v)] {
			seen[int(*v)] = true
			out = append(out, int(*v))
		}
	}
	return out
}

// localAccess handles one buffer accessor call: it is checked against
// every pending operation of every open epoch (the within-epoch rules),
// against open exposure epochs, and recorded for the phase rules.
func (w *walker) localAccess(bufKey, name string, call *ast.CallExpr) {
	info := accessors[name]
	sp := w.accessSpan(info, call)
	verb := "load"
	if info.write {
		verb = "store"
	}
	pos := call.Pos()

	for _, ep := range w.st.epochs {
		for _, op := range ep.ops {
			if op.localDone {
				continue
			}
			for _, u := range op.writes {
				if u.key != bufKey {
					continue
				}
				if ov := overlap(u.sp, sp); ov != ovDisjoint {
					w.pendingDiag(KindGetOriginUse, verb, ep, op, pos, bufKey, ov,
						fmt.Sprintf("local %s overlaps the destination buffer of a pending %s; the transfer completes only when the %s epoch closes",
							verb, op.call, ep.kind))
				}
			}
			if !info.write {
				continue
			}
			for _, u := range op.reads {
				if u.key != bufKey {
					continue
				}
				if ov := overlap(u.sp, sp); ov != ovDisjoint {
					w.pendingDiag(KindPutOriginStore, verb, ep, op, pos, bufKey, ov,
						fmt.Sprintf("local store overlaps the origin buffer of a pending %s; the in-flight transfer may send the new value", op.call))
				}
			}
		}
	}

	ev := localEvent{
		bufKey: bufKey, write: info.write, sp: sp,
		phase: w.st.phase, fuzzy: w.st.phaseFuzzy,
		rankGuard: w.rankGuard(), pos: pos,
	}
	if exp := w.exposureEpoch(bufKey); exp != nil {
		ev.inExposure = exp.key
	}
	w.local = append(w.local, ev)
}

// winText recovers the source spelling of the window a pending operation
// belongs to, for repair actions that insert window method calls.
func (w *walker) winText(winKey string) string {
	for _, info := range w.wins {
		if info.key == winKey {
			return info.text
		}
	}
	return ""
}

func (w *walker) pendingDiag(kind Kind, verb string, ep *epochState, op *pendingOp, pos token.Pos, bufKey string, ov int, msg string) {
	conf := ConfHigh
	if ov == ovMaybe || op.merged {
		conf = ConfMedium
	}
	anchor := w.c.fset.Position(pos)
	var act *FixAction
	if win := w.winText(op.winKey); win != "" {
		switch ep.kind {
		case epLockAll:
			act = &FixAction{Kind: FixInsertFlushAll, Anchor: anchor, Win: win}
		case epLock:
			act = &FixAction{Kind: FixInsertFlush, Anchor: anchor, Win: win, Target: op.targetText}
		case epFence:
			act = &FixAction{Kind: FixSplitEpoch, Anchor: anchor, Win: win,
				Open: w.c.fset.Position(ep.openPos)}
		case epAccess:
			act = &FixAction{Kind: FixMoveAfterSync, Anchor: anchor, Win: win}
		}
	}
	w.c.addDiag(Diagnostic{
		Kind: kind, Confidence: conf, Class: kind.Class(),
		Pos: anchor, Ref: w.c.fset.Position(op.pos),
		Fn: w.fnScope, Buffer: w.c.allocNames[bufKey],
		Message: msg, Fix: kind.Fix(),
		Action: act,
		Ranks:  constRanks(op.targetVal),
	})
}

// finalize runs the cross-process phase rules over the events of one
// fully walked function: under the SPMD assumption, two events can be
// concurrent exactly when they fall in the same synchronization phase
// (barriers and fences order phases globally; locks do not).
func (w *walker) finalize() {
	winByKey := map[string]*winInfo{}
	winByBuf := map[string]*winInfo{}
	for _, info := range w.wins {
		winByKey[info.key] = info
		winByBuf[info.bufKey] = info
	}

	// Exposure-epoch accesses (PSCW): any local access to the exposed
	// buffer races with whatever a started peer puts, high-confidence
	// when this very function issues same-phase writes to the window.
	for _, l := range w.local {
		if l.inExposure == "" {
			continue
		}
		info := winByKey[l.inExposure]
		verb := "load"
		if l.write {
			verb = "store"
		}
		d := Diagnostic{
			Kind: KindExposureAccess, Confidence: ConfMedium, Class: KindExposureAccess.Class(),
			Pos: w.c.fset.Position(l.pos), Fn: w.fnScope,
			Message: fmt.Sprintf("local %s of the exposed window buffer inside a Post..Wait exposure epoch", verb),
			Fix:     KindExposureAccess.Fix(),
		}
		d.Action = &FixAction{Kind: FixMoveOutOfExposure, Anchor: d.Pos}
		if info != nil {
			d.Win, d.Buffer = info.text, info.bufName
			d.Action.Win = info.text
		}
		for _, r := range w.rma {
			if r.winKey == l.inExposure && r.phase == l.phase && r.writesTarget {
				d.Confidence = ConfHigh
				d.Ref = w.c.fset.Position(r.pos)
				d.Ranks = constRanks(r.targetVal)
				break
			}
		}
		if l.fuzzy && d.Confidence > ConfMedium {
			d.Confidence = ConfMedium
		}
		w.c.addDiag(d)
	}

	// Local access vs remote RMA in the same phase (paper Figure 2d).
	for i := range w.local {
		l := &w.local[i]
		info := winByBuf[l.bufKey]
		if info == nil {
			continue
		}
		for j := range w.rma {
			r := &w.rma[j]
			if r.winKey != info.key || r.phase != l.phase {
				continue
			}
			if l.rankGuard != "" && l.rankGuard == r.rankGuard {
				continue // same rank-exclusive branch: program-ordered
			}
			if !l.write && !r.writesTarget {
				continue // concurrent reads agree
			}
			ov := overlap(l.sp, r.tgtSpan)
			if ov == ovDisjoint {
				continue
			}
			conf := ConfHigh
			if ov == ovMaybe || l.fuzzy || r.fuzzy {
				conf = ConfMedium
			}
			if !r.writesTarget && conf > ConfMedium {
				// A remote read racing a local store is the polling-flag
				// pattern — frequently ordered by application logic the
				// checker cannot see; needs dynamic confirmation.
				conf = ConfMedium
			}
			verb := "load"
			if l.write {
				verb = "store"
			}
			anchor := w.c.fset.Position(l.pos)
			w.c.addDiag(Diagnostic{
				Kind: KindCrossLocalConflict, Confidence: conf, Class: KindCrossLocalConflict.Class(),
				Pos: anchor, Ref: w.c.fset.Position(r.pos),
				Fn: w.fnScope, Win: info.text, Buffer: info.bufName,
				Message: fmt.Sprintf("local %s of the window buffer can be concurrent with a remote %s targeting the same region in this synchronization phase",
					verb, r.call),
				Fix:    KindCrossLocalConflict.Fix(),
				Action: &FixAction{Kind: FixMoveAfterSync, Anchor: anchor, Win: info.text},
				Ranks:  constRanks(r.targetVal),
			})
		}
	}

	// RMA vs RMA from different origins in the same phase (Table I).
	for i := range w.rma {
		for j := i + 1; j < len(w.rma); j++ {
			a, b := &w.rma[i], &w.rma[j]
			if a.winKey != b.winKey || a.phase != b.phase || a.pos == b.pos {
				continue
			}
			if (!a.writesTarget && !b.writesTarget) || (a.accFamily && b.accFamily) {
				continue
			}
			if !sameTarget(a.targetText, a.targetVal, b.targetText, b.targetVal) {
				continue
			}
			if a.rankGuard != "" && a.rankGuard == b.rankGuard {
				continue
			}
			ov := overlap(a.tgtSpan, b.tgtSpan)
			if ov == ovDisjoint {
				continue
			}
			conf := ConfMedium
			if ov == ovDefinite && a.targetVal != nil && b.targetVal != nil && !a.fuzzy && !b.fuzzy {
				conf = ConfHigh
			}
			info := winByKey[a.winKey]
			d := Diagnostic{
				Kind: KindCrossTargetConflict, Confidence: conf, Class: KindCrossTargetConflict.Class(),
				Pos: w.c.fset.Position(b.pos), Ref: w.c.fset.Position(a.pos),
				Fn: w.fnScope,
				Message: fmt.Sprintf("concurrent %s and %s from different processes can target overlapping regions of rank %s in this synchronization phase",
					a.call, b.call, a.targetText),
				Fix:   KindCrossTargetConflict.Fix(),
				Ranks: constRanks(a.targetVal, b.targetVal),
			}
			if info != nil {
				d.Win, d.Buffer = info.text, info.bufName
			}
			d.Action = crossTargetAction(w, a, b, info)
			w.c.addDiag(d)
		}
	}
}
