package experiments

import "testing"

// TestExploreThroughputInvariantFindings: the throughput experiment's
// core claim — jobs only change speed, never what is found.
func TestExploreThroughputInvariantFindings(t *testing.T) {
	schedules := 64
	if testing.Short() {
		schedules = 16
	}
	rows, err := ExploreThroughput(schedules, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Schedules != schedules {
			t.Errorf("jobs=%d completed %d schedules, want %d", r.Jobs, r.Schedules, schedules)
		}
		if r.SchedulesPerSec <= 0 {
			t.Errorf("jobs=%d reported %.1f schedules/s", r.Jobs, r.SchedulesPerSec)
		}
		if r.Distinct != rows[0].Distinct {
			t.Errorf("jobs=%d found %d distinct violations, jobs=%d found %d",
				r.Jobs, r.Distinct, rows[0].Jobs, rows[0].Distinct)
		}
	}
	if rows[0].Speedup != 1 {
		t.Errorf("first row speedup = %.2f, want 1", rows[0].Speedup)
	}
}
