package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fix"
	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/stanalyzer"
)

// This file is the differential engine-scoring harness: it runs every
// engine the repo ships — the dynamic DN-Analyzer on the default
// schedule, the static epoch-state checker, and the schedule explorer —
// over the registry's planted-bug corpus and over freshly generated
// programs with injected bugs (internal/gen), and scores them against
// ground truth. The gate is asymmetric by design: every planted or
// injected bug must be caught by at least one engine, and every fixed
// variant or clean generated program must be violation-free.

// CorpusConfig sizes one scoring run. Zero values pick defaults small
// enough for CI but large enough to exercise every pattern.
type CorpusConfig struct {
	Generated int    // injected generated programs (default: 3 per pattern)
	Clean     int    // clean generated programs (default 200)
	Seed      uint64 // base seed for generation (default 1)
	Schedules int    // explorer schedules per program (default 12)
	MaxRanks  int    // cap on registry rank counts (default 8)
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.Generated == 0 {
		c.Generated = 3 * len(gen.Patterns())
	}
	if c.Clean == 0 {
		c.Clean = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Schedules == 0 {
		c.Schedules = 12
	}
	if c.MaxRanks == 0 {
		c.MaxRanks = 8
	}
	return c
}

// EngineVerdict is one engine's outcome on one buggy/fixed pair.
type EngineVerdict struct {
	Ran        bool `json:"ran"`
	Detected   bool `json:"detected"`    // buggy variant flagged
	FixedClean bool `json:"fixed_clean"` // fixed variant produced nothing
}

// RepairVerdict is the auto-repair engine's outcome on one bug case:
// whether `mcchecker fix` repaired the planted variant and proved the
// patch against the dynamic engines. It only runs over the planted-bug
// corpus — the other registry cases have no source-level repair harness.
type RepairVerdict struct {
	Ran      bool   `json:"ran"`
	Verified bool   `json:"verified"`
	Steps    int    `json:"steps"`
	Reason   string `json:"reason,omitempty"`
}

// CorpusAppRow scores one registry bug case across the engines.
type CorpusAppRow struct {
	Name          string        `json:"name"`
	Ranks         int           `json:"ranks"`
	ErrorLocation string        `json:"error_location"`
	Dynamic       EngineVerdict `json:"dynamic"`
	Static        EngineVerdict `json:"static"`
	Explore       EngineVerdict `json:"explore"`
	Repair        RepairVerdict `json:"repair"`
}

// Caught reports whether any engine detected the planted bug.
func (r *CorpusAppRow) Caught() bool {
	return r.Dynamic.Detected || r.Static.Detected || r.Explore.Detected
}

// PatternStat aggregates generated-program scoring for one injection
// pattern. The static engine never runs here: generated programs exist
// only as closures, with no source for the checker to read.
type PatternStat struct {
	Pattern         string `json:"pattern"`
	Across          bool   `json:"across"`
	Programs        int    `json:"programs"`
	DynamicDetected int    `json:"dynamic_detected"`
	ExploreDetected int    `json:"explore_detected"`
	CaughtByAny     int    `json:"caught_by_any"`
}

// CorpusResult is the full differential scoring outcome: the
// engine-by-pattern detection matrix plus the pass/fail gates.
type CorpusResult struct {
	Apps     []CorpusAppRow `json:"apps"`
	Patterns []PatternStat  `json:"patterns"`

	CleanPrograms   int `json:"clean_programs"`
	CleanViolations int `json:"clean_violations"`

	AppsCaught      bool    `json:"apps_caught"`       // every registry bug caught by >= 1 engine
	AppsFixedClean  bool    `json:"apps_fixed_clean"`  // every fixed variant clean on every engine
	AppsRepaired    bool    `json:"apps_repaired"`     // every corpus case auto-repaired and verified
	GeneratedCaught bool    `json:"generated_caught"`  // every injected program caught by >= 1 engine
	CleanOK         bool    `json:"clean_ok"`          // zero violations across clean programs
	Gate            bool    `json:"gate"`              // all of the above
	ElapsedSec      float64 `json:"elapsed_seconds"`
	Seed            uint64  `json:"seed"`
}

// Corpus runs the differential scoring harness.
func Corpus(cfg CorpusConfig) (*CorpusResult, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	res := &CorpusResult{Seed: cfg.Seed}

	// One static pass per define set covers every app.
	staticBuggy, err := stanalyzer.CheckFS(apps.SourceFS(), stanalyzer.Options{
		Defines: map[string]bool{"buggy": true},
	})
	if err != nil {
		return nil, fmt.Errorf("static check (buggy): %w", err)
	}
	staticFixed, err := stanalyzer.CheckFS(apps.SourceFS(), stanalyzer.Options{
		Defines: map[string]bool{"buggy": false},
	})
	if err != nil {
		return nil, fmt.Errorf("static check (fixed): %w", err)
	}

	// The repair engine only covers the planted-bug corpus.
	corpusCase := map[string]bool{}
	for _, bc := range apps.CorpusCases() {
		corpusCase[bc.Name] = true
	}

	res.AppsCaught, res.AppsFixedClean, res.AppsRepaired = true, true, true
	for _, bc := range apps.AllCases() {
		ranks := bc.Ranks
		if ranks > cfg.MaxRanks {
			ranks = cfg.MaxRanks
		}
		row := CorpusAppRow{Name: bc.Name, Ranks: ranks, ErrorLocation: bc.ErrorLocation}

		wantClass := core.WithinEpoch
		if bc.ErrorLocation == "across processes" {
			wantClass = core.AcrossProcesses
		}

		// Dynamic engine: one default-schedule run of each variant.
		buggyRep, err := runChecked(ranks, bc.Buggy, bc.RelevantBuffers)
		if err != nil {
			return nil, fmt.Errorf("%s buggy: %w", bc.Name, err)
		}
		fixedRep, err := runChecked(ranks, bc.Fixed, bc.RelevantBuffers)
		if err != nil {
			return nil, fmt.Errorf("%s fixed: %w", bc.Name, err)
		}
		row.Dynamic = EngineVerdict{
			Ran:        true,
			Detected:   hasClass(buggyRep, wantClass),
			FixedClean: len(fixedRep.Violations) == 0,
		}

		// Static engine: diagnostics reachable from the app's entry point.
		// Detection counts any confidence; the fixed-side budget is
		// high-confidence only, matching the checker's contract.
		row.Static = EngineVerdict{
			Ran:        true,
			Detected:   len(staticBuggy.ForFunctions(staticBuggy.Reachable(bc.StaticRoot))) > 0,
			FixedClean: countHigh(staticFixed, bc.StaticRoot) == 0,
		}

		// Explore engine: a seeded sweep of legal completion schedules.
		expB, err := exploreBody(bc.Buggy, ranks, bc.RelevantBuffers, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s explore buggy: %w", bc.Name, err)
		}
		expF, err := exploreBody(bc.Fixed, ranks, bc.RelevantBuffers, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s explore fixed: %w", bc.Name, err)
		}
		row.Explore = EngineVerdict{
			Ran:        true,
			Detected:   expB.Distinct() > 0,
			FixedClean: expF.Distinct() == 0,
		}

		// Repair engine: patch the planted variant from its static
		// diagnostics and prove the repair (corpus cases only).
		if corpusCase[bc.Name] {
			cres, err := fix.Repair(bc, fix.VerifyConfig{
				Schedules: cfg.Schedules, Seed: cfg.Seed, MaxRanks: cfg.MaxRanks,
			})
			if err != nil {
				return nil, fmt.Errorf("%s repair: %w", bc.Name, err)
			}
			row.Repair = RepairVerdict{
				Ran: true, Verified: cres.Verified,
				Steps: len(cres.Steps), Reason: cres.Reason,
			}
			if !cres.Verified {
				res.AppsRepaired = false
			}
		}

		if !row.Caught() {
			res.AppsCaught = false
		}
		if !row.Dynamic.FixedClean || !row.Static.FixedClean || !row.Explore.FixedClean {
			res.AppsFixedClean = false
		}
		res.Apps = append(res.Apps, row)
	}

	// Generated programs: round-robin the injection catalog over seeds.
	patterns := gen.Patterns()
	stats := make([]PatternStat, len(patterns))
	for i, p := range patterns {
		stats[i] = PatternStat{Pattern: p.Name, Across: p.Across}
	}
	res.GeneratedCaught = true
	for i := 0; i < cfg.Generated; i++ {
		pi := i % len(patterns)
		seed := cfg.Seed + uint64(i)
		base := gen.Generate(seed, gen.Options{Ranks: 2 + int(seed%3)})
		pr, err := gen.Inject(base, patterns[pi].Name, seed^0x9e3779b9)
		if err != nil {
			return nil, fmt.Errorf("inject %s seed %d: %w", patterns[pi].Name, seed, err)
		}
		stats[pi].Programs++

		wantClass := core.WithinEpoch
		if pr.ExpectAcross {
			wantClass = core.AcrossProcesses
		}
		rep, err := runChecked(pr.Ranks, pr.Body(), nil)
		if err != nil {
			return nil, fmt.Errorf("generated %s seed %d: %w", patterns[pi].Name, seed, err)
		}
		dyn := hasClass(rep, wantClass)
		if dyn {
			stats[pi].DynamicDetected++
		}
		exp, err := exploreGenerated(pr, cfg)
		if err != nil {
			return nil, fmt.Errorf("explore generated %s seed %d: %w", patterns[pi].Name, seed, err)
		}
		if exp {
			stats[pi].ExploreDetected++
		}
		if dyn || exp {
			stats[pi].CaughtByAny++
		} else {
			res.GeneratedCaught = false
		}
	}
	res.Patterns = stats

	// Clean programs: valid-by-construction generation must analyze
	// violation-free — the generator's half of the differential gate.
	res.CleanPrograms = cfg.Clean
	for i := 0; i < cfg.Clean; i++ {
		seed := cfg.Seed + 100_000 + uint64(i)
		pr := gen.Generate(seed, gen.Options{Ranks: 2 + int(seed%3)})
		rep, err := runChecked(pr.Ranks, pr.Body(), nil)
		if err != nil {
			return nil, fmt.Errorf("clean seed %d: %w", seed, err)
		}
		res.CleanViolations += len(rep.Violations)
	}
	res.CleanOK = res.CleanViolations == 0

	res.Gate = res.AppsCaught && res.AppsFixedClean && res.AppsRepaired && res.GeneratedCaught && res.CleanOK
	res.ElapsedSec = time.Since(start).Seconds()
	return res, nil
}

func hasClass(rep *core.Report, want core.Class) bool {
	for _, v := range rep.Errors() {
		if v.Class == want {
			return true
		}
	}
	return false
}

func countHigh(rep *stanalyzer.CheckReport, root string) int {
	n := 0
	for _, d := range rep.ForFunctions(rep.Reachable(root)) {
		if d.Confidence >= stanalyzer.ConfHigh {
			n++
		}
	}
	return n
}

func exploreBody(body func(p *mpi.Proc) error, ranks int, relevant []string, cfg CorpusConfig) (*explore.Result, error) {
	var rel profiler.Relevance
	if relevant != nil {
		rel = profiler.FromNames(relevant)
	}
	strat, err := explore.ParseStrategy("sweep")
	if err != nil {
		return nil, err
	}
	return explore.Explore(explore.Config{
		Runner:    &explore.Runner{Body: body, Ranks: ranks, Rel: rel},
		Strategy:  strat,
		Schedules: cfg.Schedules,
		Seed:      cfg.Seed,
		Minimize:  false,
	})
}

func exploreGenerated(pr *gen.Program, cfg CorpusConfig) (bool, error) {
	res, err := exploreBody(pr.Body(), pr.Ranks, nil, cfg)
	if err != nil {
		return false, err
	}
	return res.Distinct() > 0, nil
}

// MarkdownMatrix renders the engine x pattern detection matrix as
// GitHub-flavored markdown — the artifact `mcchecker corpus -matrix`
// publishes and EXPERIMENTS.md embeds.
func (r *CorpusResult) MarkdownMatrix() string {
	var b strings.Builder
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "NO"
	}
	fmt.Fprintf(&b, "Registry corpus (%d cases):\n\n", len(r.Apps))
	b.WriteString("| Case | Ranks | Class | Dynamic | Static | Explore | Repair | Fixed clean |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for i := range r.Apps {
		row := &r.Apps[i]
		repair := "-"
		if row.Repair.Ran {
			repair = mark(row.Repair.Verified)
		}
		fmt.Fprintf(&b, "| %s | %d | %s | %s | %s | %s | %s | %s |\n",
			row.Name, row.Ranks, row.ErrorLocation,
			mark(row.Dynamic.Detected), mark(row.Static.Detected), mark(row.Explore.Detected),
			repair,
			mark(row.Dynamic.FixedClean && row.Static.FixedClean && row.Explore.FixedClean))
	}
	fmt.Fprintf(&b, "\nGenerated programs (seed %d):\n\n", r.Seed)
	b.WriteString("| Injected pattern | Class | Programs | Dynamic | Explore | Any engine |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, p := range r.Patterns {
		class := "within an epoch"
		if p.Across {
			class = "across processes"
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %d/%d | %d/%d | %d/%d |\n",
			p.Pattern, class, p.Programs,
			p.DynamicDetected, p.Programs, p.ExploreDetected, p.Programs,
			p.CaughtByAny, p.Programs)
	}
	fmt.Fprintf(&b, "\nClean generated programs: %d analyzed, %d violation(s).\n",
		r.CleanPrograms, r.CleanViolations)
	fmt.Fprintf(&b, "Gate: apps caught %v, fixed clean %v, repaired %v, generated caught %v, clean ok %v => %v\n",
		r.AppsCaught, r.AppsFixedClean, r.AppsRepaired, r.GeneratedCaught, r.CleanOK, r.Gate)
	return b.String()
}
