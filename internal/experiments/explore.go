package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/explore"
	"repro/internal/profiler"
)

// ExploreRow is one worker-pool configuration of the exploration
// throughput experiment: how fast the schedule sweep runs at a given
// `-jobs` width, and that the findings do not depend on it.
type ExploreRow struct {
	Jobs            int
	Schedules       int
	Elapsed         time.Duration
	SchedulesPerSec float64
	Distinct        int
	// Speedup is SchedulesPerSec relative to the first (jobs=1) row.
	Speedup float64
}

// ExploreThroughput sweeps the planted schedule-dependent bug
// (apps.ScheduleCases) with the plain seed-sweep strategy at each worker
// count in jobsList, reporting throughput and the deduplicated finding
// count. The distinct-violation column must be identical across rows —
// parallelism may only change speed, never results.
func ExploreThroughput(schedules int, jobsList []int) ([]ExploreRow, error) {
	bc := apps.ScheduleCases()[0]
	var rows []ExploreRow
	for _, jobs := range jobsList {
		res, err := explore.Explore(explore.Config{
			Runner: &explore.Runner{
				Body:  bc.Buggy,
				Ranks: bc.Ranks,
				Rel:   profiler.FromNames(bc.RelevantBuffers),
			},
			Strategy:  explore.Sweep{},
			Schedules: schedules,
			Jobs:      jobs,
			Seed:      1,
		})
		if err != nil {
			return nil, fmt.Errorf("explore with %d jobs: %w", jobs, err)
		}
		row := ExploreRow{
			Jobs: jobs, Schedules: res.Schedules, Elapsed: res.Elapsed,
			SchedulesPerSec: res.SchedulesPerSec(), Distinct: res.Distinct(),
		}
		if len(rows) == 0 {
			row.Speedup = 1
		} else {
			row.Speedup = row.SchedulesPerSec / rows[0].SchedulesPerSec
		}
		rows = append(rows, row)
	}
	return rows, nil
}
