// Serve-load experiment: drive the analysis daemon through its real HTTP
// surface with many concurrent clients, a fraction of them submitting
// damaged uploads, and measure what the robustness machinery delivers
// under saturation — job latency percentiles, shed rate, and the
// guarantee that every fault lands in a per-job degraded or quarantined
// result rather than in a process exit.
package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

// ServeLoadConfig parameterizes the load generator.
type ServeLoadConfig struct {
	// Clients is the number of concurrent submitters (default 8).
	Clients int
	// Jobs is the total number of jobs to push through (default 120).
	Jobs int
	// Workers is the daemon's analysis pool width (default GOMAXPROCS).
	Workers int
	// QueueBudget is the daemon's admission bound (default 2x Workers —
	// deliberately tight so the experiment actually saturates).
	QueueBudget int
	// FaultFraction of submissions carry damaged payloads: half
	// truncated (salvageable), half corrupt (poison). Default 0.25.
	FaultFraction float64
	// Ops sizes the per-job synthetic trace (default 256 operations).
	Ops int
}

func (c ServeLoadConfig) withDefaults() ServeLoadConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Jobs <= 0 {
		c.Jobs = 120
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueBudget <= 0 {
		c.QueueBudget = 2 * c.Workers
	}
	if c.FaultFraction <= 0 {
		c.FaultFraction = 0.25
	}
	if c.Ops <= 0 {
		c.Ops = 256
	}
	return c
}

// ServeLoadResult is the serve section of BENCH.json.
type ServeLoadResult struct {
	Clients     int `json:"clients"`
	Jobs        int `json:"jobs"`
	Workers     int `json:"workers"`
	QueueBudget int `json:"queue_budget"`

	SubmitAttempts int     `json:"submit_attempts"`
	Shed           int     `json:"shed"`
	ShedRate       float64 `json:"shed_rate"`

	Done        int `json:"done"`
	Degraded    int `json:"degraded"`
	Quarantined int `json:"quarantined"`
	Failed      int `json:"failed"`

	PanicsRecovered int64 `json:"panics_recovered"`
	Retries         int64 `json:"retries"`

	P50LatencyMs float64 `json:"p50_latency_ms"`
	P99LatencyMs float64 `json:"p99_latency_ms"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	JobsPerSec   float64 `json:"jobs_per_sec"`

	DrainedCleanly bool `json:"drained_cleanly"`
}

// serveLoadBodies prebuilds the three submission payloads the clients
// rotate through: clean, truncated (salvageable), and corrupt (poison).
func serveLoadBodies(ops int) (clean, truncated, corrupt []byte, err error) {
	set := SyntheticRegion(4, ops)
	ups := make([]serve.RankUpload, 0, set.Ranks())
	for _, t := range set.Traces {
		data, err := trace.EncodeTrace(t)
		if err != nil {
			return nil, nil, nil, err
		}
		ups = append(ups, serve.RankUpload{Rank: t.Rank, Data: data})
	}
	marshal := func(ups []serve.RankUpload) ([]byte, error) {
		return json.Marshal(&serve.Submission{Traces: ups})
	}
	if clean, err = marshal(ups); err != nil {
		return nil, nil, nil, err
	}
	cut := make([]serve.RankUpload, len(ups))
	copy(cut, ups)
	cut[1] = serve.RankUpload{Rank: 1, Data: ups[1].Data[:len(ups[1].Data)/2]}
	if truncated, err = marshal(cut); err != nil {
		return nil, nil, nil, err
	}
	// Corrupt: every rank's header is garbage, so nothing salvages and
	// the job is poison — it must end up quarantined, not crash anything.
	bad := make([]serve.RankUpload, len(ups))
	for i, u := range ups {
		junk := bytes.Repeat([]byte{0xde, 0xad}, 16)
		bad[i] = serve.RankUpload{Rank: u.Rank, Data: junk}
	}
	if corrupt, err = marshal(bad); err != nil {
		return nil, nil, nil, err
	}
	return clean, truncated, corrupt, nil
}

// ServeLoad runs the experiment: start a daemon, saturate it from
// cfg.Clients concurrent HTTP clients (shed submissions are retried
// after the Retry-After hint), wait for every job, then drain. The
// whole run happens in-process against the real handler stack.
func ServeLoad(cfg ServeLoadConfig) (*ServeLoadResult, error) {
	cfg = cfg.withDefaults()
	clean, truncated, corrupt, err := serveLoadBodies(cfg.Ops)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	srv := serve.New(serve.Config{
		Workers:      cfg.Workers,
		QueueBudget:  cfg.QueueBudget,
		JobTimeout:   30 * time.Second,
		MaxAttempts:  2,
		RetryBackoff: 5 * time.Millisecond,
		Obs:          reg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		attempts  int
		shed      int
		res       ServeLoadResult
	)
	var ticket int64
	client := ts.Client()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*7919 + 1))
			for {
				n := atomic.AddInt64(&ticket, 1)
				if n > int64(cfg.Jobs) {
					return
				}
				body := clean
				if r := rng.Float64(); r < cfg.FaultFraction {
					if r < cfg.FaultFraction/2 {
						body = corrupt
					} else {
						body = truncated
					}
				}
				t0 := time.Now()
				id, serr := submitUntilAdmitted(client, ts.URL, body, &mu, &attempts, &shed)
				if serr != nil {
					mu.Lock()
					res.Failed++
					mu.Unlock()
					continue
				}
				job, perr := pollJob(client, ts.URL, id)
				lat := time.Since(t0)
				mu.Lock()
				if perr != nil {
					res.Failed++
				} else {
					latencies = append(latencies, lat)
					switch job.Status {
					case serve.StatusDone:
						res.Done++
						if job.Degraded {
							res.Degraded++
						}
					case serve.StatusQuarantined:
						res.Quarantined++
					default:
						res.Failed++
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res.DrainedCleanly = srv.Drain(drainCtx) == nil

	snap := reg.Snapshot()
	res.Clients = cfg.Clients
	res.Jobs = cfg.Jobs
	res.Workers = cfg.Workers
	res.QueueBudget = cfg.QueueBudget
	res.SubmitAttempts = attempts
	res.Shed = shed
	if attempts > 0 {
		res.ShedRate = float64(shed) / float64(attempts)
	}
	res.PanicsRecovered = snap.CounterValue("mcchecker_serve_panics_recovered_total")
	res.Retries = snap.CounterValue("mcchecker_serve_retries_total")
	res.ElapsedSec = elapsed.Seconds()
	if elapsed > 0 {
		res.JobsPerSec = float64(len(latencies)) / elapsed.Seconds()
	}
	res.P50LatencyMs = percentileMs(latencies, 0.50)
	res.P99LatencyMs = percentileMs(latencies, 0.99)

	completed := res.Done + res.Quarantined + res.Failed
	if completed != cfg.Jobs {
		return &res, fmt.Errorf("serve load: %d of %d jobs unaccounted for", cfg.Jobs-completed, cfg.Jobs)
	}
	return &res, nil
}

// submitUntilAdmitted POSTs the body, honoring 429 shed responses with a
// short backoff until the daemon admits the job.
func submitUntilAdmitted(client *http.Client, base string, body []byte, mu *sync.Mutex, attempts, shed *int) (string, error) {
	for {
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		mu.Lock()
		*attempts++
		if resp.StatusCode == http.StatusTooManyRequests {
			*shed++
		}
		mu.Unlock()
		var out struct {
			ID string `json:"id"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			// The Retry-After hint is a full second; under a tight budget
			// with millisecond jobs, a short poll keeps the offered load
			// honest without idling the experiment.
			time.Sleep(2 * time.Millisecond)
		case resp.StatusCode != http.StatusAccepted:
			return "", fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		case decodeErr != nil:
			return "", decodeErr
		default:
			return out.ID, nil
		}
	}
}

// pollJob long-polls one job to a terminal state.
func pollJob(client *http.Client, base, id string) (serve.Job, error) {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := client.Get(base + "/jobs/" + id + "?wait=10s")
		if err != nil {
			return serve.Job{}, err
		}
		var out struct {
			Status   serve.Status `json:"status"`
			Degraded bool         `json:"degraded"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if decodeErr != nil {
			return serve.Job{}, decodeErr
		}
		if out.Status.Terminal() {
			return serve.Job{Status: out.Status, Degraded: out.Degraded}, nil
		}
		if time.Now().After(deadline) {
			return serve.Job{}, fmt.Errorf("job %s stuck in %s", id, out.Status)
		}
	}
}

func percentileMs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
