package experiments

import (
	"repro/internal/testutil"
	"repro/internal/trace"
)

// SyntheticRegion builds a single-concurrent-region trace with `ops`
// one-sided operations spread over `ranks` ranks, each rank putting to its
// own disjoint displacement range of the next rank's window under lock
// epochs. The workload is race-free, so detection cost is pure analysis
// cost; operations spread across (window, target) pairs, which is the case
// that separates the linear detector (per-target vectors) from the
// quadratic all-pairs baseline.
//
// The final operation is made conflicting (two ranks put to the same
// bytes) so that both detectors must do real work and their agreement is
// checkable.
func SyntheticRegion(ranks, ops int) *trace.Set {
	if ranks < 2 {
		ranks = 2
	}
	b := testutil.NewTraceBuilder(ranks)
	winSize := uint64(ops*8 + 64)
	b.WinCreate(1, 0x10000, winSize)

	perRank := ops / ranks
	if perRank < 1 {
		perRank = 1
	}
	line := int32(1)
	for r := int32(0); r < int32(ranks); r++ {
		target := (r + 1) % int32(ranks)
		b.Add(r, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: target,
			Lock: trace.LockShared, File: "synth.go", Line: line})
		line++
		for k := 0; k < perRank; k++ {
			// Disjoint displacement per (origin, k): origins write only to
			// their own stripe of the target window.
			disp := uint64(r)*uint64(perRank)*8 + uint64(k)*8
			b.Add(r, trace.Event{
				Kind: trace.KindPut, Win: 1, Target: target,
				OriginAddr: 0x500 + uint64(k)*8, OriginType: trace.TypeFloat64, OriginCount: 1,
				TargetDisp: disp, TargetType: trace.TypeFloat64, TargetCount: 1,
				File: "synth.go", Line: line,
			})
			line++
		}
		b.Add(r, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: target,
			File: "synth.go", Line: line})
		line++
	}
	// One deliberate conflict: ranks 0 and 1 both put byte 0 of rank 2..
	conflictTarget := int32(2 % ranks)
	for _, r := range []int32{0, 1} {
		b.Add(r, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: conflictTarget,
			Lock: trace.LockShared, File: "synth.go", Line: line})
		b.Add(r, trace.Event{
			Kind: trace.KindPut, Win: 1, Target: conflictTarget,
			OriginAddr: 0x400, OriginType: trace.TypeFloat64, OriginCount: 1,
			TargetDisp: winSize - 8, TargetType: trace.TypeFloat64, TargetCount: 1,
			File: "synth.go", Line: line + 1,
		})
		b.Add(r, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: conflictTarget,
			File: "synth.go", Line: line + 2})
		line += 3
	}
	return b.Set()
}

// ShadowSyntheticRegion builds the worst case for the pairwise detector:
// every rank except rank 0 puts to rank 0's window, so all operations land
// in ONE (window, target) vector and the per-vector rescan degenerates to
// O(ops^2) comparisons. Each origin writes its own disjoint stripe under a
// shared-lock epoch, so the operations are mutually concurrent but the
// shadow engine's interval cells stay disjoint and each query touches only
// its own stripe. A handful of planted overlaps at the tail of the window
// keep both engines emitting, so differential agreement is checkable on
// the same workload that is benchmarked.
func ShadowSyntheticRegion(ranks, ops int) *trace.Set {
	if ranks < 3 {
		ranks = 3
	}
	origins := ranks - 1
	perRank := ops / origins
	if perRank < 1 {
		perRank = 1
	}
	b := testutil.NewTraceBuilder(ranks)
	winSize := uint64(origins*perRank*8 + 64)
	b.WinCreate(1, 0x10000, winSize)

	line := int32(1)
	for r := int32(1); r < int32(ranks); r++ {
		b.Add(r, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 0,
			Lock: trace.LockShared, File: "synth.go", Line: line})
		line++
		for k := 0; k < perRank; k++ {
			disp := uint64(r-1)*uint64(perRank)*8 + uint64(k)*8
			b.Add(r, trace.Event{
				Kind: trace.KindPut, Win: 1, Target: 0,
				OriginAddr: 0x500 + uint64(k)*8, OriginType: trace.TypeFloat64, OriginCount: 1,
				TargetDisp: disp, TargetType: trace.TypeFloat64, TargetCount: 1,
				File: "synth.go", Line: line,
			})
			line++
		}
		b.Add(r, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 0,
			File: "synth.go", Line: line})
		line++
	}
	// Planted conflicts: ranks 1 and 2 both put the last word of the window.
	for _, r := range []int32{1, 2} {
		b.Add(r, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 0,
			Lock: trace.LockShared, File: "synth.go", Line: line})
		b.Add(r, trace.Event{
			Kind: trace.KindPut, Win: 1, Target: 0,
			OriginAddr: 0x400, OriginType: trace.TypeFloat64, OriginCount: 1,
			TargetDisp: winSize - 8, TargetType: trace.TypeFloat64, TargetCount: 1,
			File: "synth.go", Line: line + 1,
		})
		b.Add(r, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 0,
			File: "synth.go", Line: line + 2})
		line += 3
	}
	return b.Set()
}
