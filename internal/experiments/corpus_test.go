package experiments

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/gen"
)

// TestCorpusGate is the differential-scoring acceptance test at CI
// scale: every registry bug and every injected generated program must
// be caught by at least one engine, every fixed variant and clean
// generated program must be violation-free. The full-size run (200+
// clean programs) lives behind `make corpus`.
func TestCorpusGate(t *testing.T) {
	cfg := CorpusConfig{
		Generated: len(gen.Patterns()), // one program per pattern
		Clean:     25,
		Seed:      1,
		Schedules: 8,
	}
	res, err := Corpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != len(apps.AllCases()) {
		t.Errorf("scored %d apps, registry has %d", len(res.Apps), len(apps.AllCases()))
	}
	corpusCase := map[string]bool{}
	for _, bc := range apps.CorpusCases() {
		corpusCase[bc.Name] = true
	}
	for i := range res.Apps {
		row := &res.Apps[i]
		if !row.Caught() {
			t.Errorf("%s: no engine detected the planted bug", row.Name)
		}
		if !row.Dynamic.FixedClean || !row.Static.FixedClean || !row.Explore.FixedClean {
			t.Errorf("%s: fixed variant flagged (dynamic=%v static=%v explore=%v)",
				row.Name, row.Dynamic.FixedClean, row.Static.FixedClean, row.Explore.FixedClean)
		}
		if corpusCase[row.Name] {
			if !row.Repair.Ran {
				t.Errorf("%s: auto-repair did not run on a corpus case", row.Name)
			} else if !row.Repair.Verified {
				t.Errorf("%s: auto-repair not verified (%d steps): %s",
					row.Name, row.Repair.Steps, row.Repair.Reason)
			}
		} else if row.Repair.Ran {
			t.Errorf("%s: auto-repair ran on a non-corpus case", row.Name)
		}
	}
	for _, p := range res.Patterns {
		if p.Programs == 0 {
			t.Errorf("pattern %s: no generated programs scored", p.Pattern)
		}
		if p.CaughtByAny != p.Programs {
			t.Errorf("pattern %s: %d/%d injected programs caught", p.Pattern, p.CaughtByAny, p.Programs)
		}
	}
	if res.CleanViolations != 0 {
		t.Errorf("clean generated programs produced %d violations", res.CleanViolations)
	}
	if !res.Gate {
		t.Errorf("gate failed: apps=%v fixed=%v repaired=%v generated=%v clean=%v",
			res.AppsCaught, res.AppsFixedClean, res.AppsRepaired, res.GeneratedCaught, res.CleanOK)
	}
}

// TestCorpusDeterministic: two runs with the same seed yield the same
// matrix (modulo wall-clock).
func TestCorpusDeterministic(t *testing.T) {
	cfg := CorpusConfig{Generated: 3, Clean: 5, Seed: 7, Schedules: 4}
	a, err := Corpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Corpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.ElapsedSec, b.ElapsedSec = 0, 0
	if am, bm := a.MarkdownMatrix(), b.MarkdownMatrix(); am != bm {
		t.Errorf("matrix not deterministic:\n--- first\n%s\n--- second\n%s", am, bm)
	}
}

// TestCorpusMatrixRendering pins the matrix artifact's shape: one row
// per registry case, one per injection pattern, and the gate line.
func TestCorpusMatrixRendering(t *testing.T) {
	res := &CorpusResult{
		Apps: []CorpusAppRow{{
			Name: "demo", Ranks: 2, ErrorLocation: "within an epoch",
			Dynamic: EngineVerdict{Ran: true, Detected: true, FixedClean: true},
			Static:  EngineVerdict{Ran: true, FixedClean: true},
			Explore: EngineVerdict{Ran: true, Detected: true, FixedClean: true},
			Repair:  RepairVerdict{Ran: true, Verified: true, Steps: 1},
		}, {
			Name: "extra", Ranks: 2, ErrorLocation: "within an epoch",
			Dynamic: EngineVerdict{Ran: true, Detected: true, FixedClean: true},
			Static:  EngineVerdict{Ran: true, FixedClean: true},
			Explore: EngineVerdict{Ran: true, Detected: true, FixedClean: true},
		}},
		Patterns: []PatternStat{{
			Pattern: "get-origin-use", Programs: 3, DynamicDetected: 3, ExploreDetected: 2, CaughtByAny: 3,
		}},
		CleanPrograms: 10, Seed: 1,
		AppsCaught: true, AppsFixedClean: true, GeneratedCaught: true, CleanOK: true, Gate: true,
	}
	m := res.MarkdownMatrix()
	for _, want := range []string{
		"| demo | 2 | within an epoch | yes | NO | yes | yes | yes |",
		"| extra | 2 | within an epoch | yes | NO | yes | - | yes |",
		"| get-origin-use | within an epoch | 3 | 3/3 | 2/3 | 3/3 |",
		"Clean generated programs: 10 analyzed, 0 violation(s).",
		"Gate:",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("matrix missing %q:\n%s", want, m)
		}
	}
}
