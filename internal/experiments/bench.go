// Benchmark-regression harness: a reproducible measurement of the
// analyzer's hot paths that `make bench` serializes into BENCH.json, so a
// change that slows the pipeline down or re-inflates its allocation rate
// shows up as a diff. All measurements run through testing.Benchmark —
// the same machinery as `go test -bench` — so ns/op, B/op, and allocs/op
// mean exactly what they mean there.
package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// BenchStat is one benchmark measurement in go-test units.
type BenchStat struct {
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

func statOf(r testing.BenchmarkResult, events int) BenchStat {
	s := BenchStat{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if events > 0 && s.NsPerOp > 0 {
		s.EventsPerSec = float64(events) / (s.NsPerOp / float64(time.Second.Nanoseconds()))
	}
	return s
}

// BenchDecode compares the pooled decode path against the pool disabled.
// The pool trades allocations for per-op bookkeeping: AllocReductionPct
// records what it saves, NsPerOpDeltaPct records what it costs (positive
// = pooled is slower per op) — both are kept so a pool change that wins
// one axis by regressing the other shows up honestly in the diff.
type BenchDecode struct {
	Events            int       `json:"events"`
	Pooled            BenchStat `json:"pooled"`
	Unpooled          BenchStat `json:"unpooled"`
	AllocReductionPct float64   `json:"alloc_reduction_pct"`
	NsPerOpDeltaPct   float64   `json:"ns_per_op_delta_pct"`
}

// BenchAnalyze compares the analyzer at one front-end worker against the
// machine's width. EffectiveWorkers is the worker count the workers_max
// measurement actually ran with — on a single-CPU machine it is 1 and
// the speedup column is meaningless, which the field makes visible.
type BenchAnalyze struct {
	Events           int       `json:"events"`
	MaxWorkers       int       `json:"max_workers"`
	EffectiveWorkers int       `json:"effective_workers"`
	Workers1         BenchStat `json:"workers_1"`
	WorkersMax       BenchStat `json:"workers_max"`
	Speedup          float64   `json:"speedup"`
}

// BenchPhase is one pipeline phase's share of an instrumented analysis.
type BenchPhase struct {
	Phase        string  `json:"phase"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// BenchCross compares the linear cross-process detector against the
// quadratic baseline on one synthetic region.
type BenchCross struct {
	Ops       int       `json:"ops"`
	Linear    BenchStat `json:"linear"`
	Quadratic BenchStat `json:"quadratic"`
	Speedup   float64   `json:"speedup"`
}

// BenchShadow compares the shadow cross-process engine against the
// pairwise reference on an amplified multi-origin region — the shape
// where the pairwise per-vector scan is O(ops²). Agreement records that
// the differential engine verified byte-identical reports on the same
// trace before either engine was timed.
type BenchShadow struct {
	Ops       int       `json:"ops"`
	Ranks     int       `json:"ranks"`
	Events    int       `json:"events"`
	Pairwise  BenchStat `json:"pairwise"`
	Shadow    BenchStat `json:"shadow"`
	Speedup   float64   `json:"speedup"`
	Agreement bool      `json:"agreement"`
}

// BenchResult is the schema of BENCH.json.
type BenchResult struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Amplify    int    `json:"amplify"`
	BenchTime  string `json:"benchtime,omitempty"`

	Decode    BenchDecode  `json:"decode"`
	Signature BenchStat    `json:"signature"`
	Analyze   BenchAnalyze `json:"analyze"`
	Phases    []BenchPhase `json:"phases"`
	Cross     BenchCross   `json:"cross_process"`
	Shadow    BenchShadow  `json:"shadow_vs_pairwise"`
}

// BenchConfig parameterizes the harness.
type BenchConfig struct {
	// Amplify repeats each bug-case body this many times per rank, scaling
	// the Table II corpora into trace sets large enough to time.
	Amplify int
	// BenchTime forwards to -test.benchtime ("" keeps the 1s default;
	// "1x" is the CI smoke setting).
	BenchTime string
	// CrossOps sizes the synthetic region of the linear-vs-quadratic
	// comparison (the quadratic baseline is O(ops²)).
	CrossOps int
	// ShadowOps sizes the amplified multi-origin region of the
	// shadow-vs-pairwise comparison (the pairwise engine's per-vector
	// scan is O(ops²) there). Default 4096.
	ShadowOps int
	// Trace, when non-nil, records the instrumented phase pass (the one
	// benchPhases reads the span registry from) as a causal timeline with
	// per-worker lanes.
	Trace *tracing.Recorder
}

var benchInit sync.Once

// Bench measures the pipeline's hot paths on the amplified Table II
// corpora and returns the BENCH.json payload.
func Bench(cfg BenchConfig) (*BenchResult, error) {
	if cfg.Amplify < 1 {
		cfg.Amplify = 8
	}
	if cfg.CrossOps < 1 {
		cfg.CrossOps = 1024
	}
	if cfg.ShadowOps < 1 {
		cfg.ShadowOps = 4096
	}
	// Use the machine's full width: a harness invoked with a restricted
	// GOMAXPROCS (or from an environment that pinned it to 1) would
	// otherwise record a meaningless 1.00x analyze "speedup". Restore on
	// return so the caller's setting survives.
	if prev := runtime.GOMAXPROCS(0); prev < runtime.NumCPU() {
		runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(prev)
	}
	benchInit.Do(testing.Init)
	if cfg.BenchTime != "" {
		if err := flag.Set("test.benchtime", cfg.BenchTime); err != nil {
			return nil, fmt.Errorf("bench: invalid benchtime %q: %w", cfg.BenchTime, err)
		}
	}

	sets, err := benchCorpora(cfg.Amplify)
	if err != nil {
		return nil, err
	}
	events := 0
	for _, set := range sets {
		events += set.TotalEvents()
	}

	res := &BenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Amplify:    cfg.Amplify,
		BenchTime:  cfg.BenchTime,
	}
	if err := benchDecode(sets, events, &res.Decode); err != nil {
		return nil, err
	}
	res.Signature = benchSignature()
	if err := benchAnalyze(sets, events, &res.Analyze); err != nil {
		return nil, err
	}
	phases, err := benchPhases(sets, cfg.Trace)
	if err != nil {
		return nil, err
	}
	res.Phases = phases
	if err := benchCross(cfg.CrossOps, &res.Cross); err != nil {
		return nil, err
	}
	if err := benchShadow(cfg.ShadowOps, &res.Shadow); err != nil {
		return nil, err
	}
	return res, nil
}

// repeatBody amplifies a per-rank program: each repetition allocates
// fresh windows and communicators, so the repeated trace is a legal MPI
// execution m times the size.
func repeatBody(body func(p *mpi.Proc) error, times int) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		for i := 0; i < times; i++ {
			if err := body(p); err != nil {
				return err
			}
		}
		return nil
	}
}

// benchCorpora simulates every Table II buggy case (ranks clamped to 8,
// like the default bug table) with the body amplified, producing the
// trace sets the timing loops run over.
func benchCorpora(amplify int) ([]*trace.Set, error) {
	var sets []*trace.Set
	for _, bc := range apps.BugCases() {
		ranks := bc.Ranks
		if ranks > 8 {
			ranks = 8
		}
		sink := trace.NewMemorySink()
		var rel profiler.Relevance
		if bc.RelevantBuffers != nil {
			rel = profiler.FromNames(bc.RelevantBuffers)
		}
		pr := profiler.New(sink, rel)
		if err := mpi.Run(ranks, mpi.Options{Hook: pr}, repeatBody(bc.Buggy, amplify)); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", bc.Name, err)
		}
		sets = append(sets, sink.Set())
	}
	return sets, nil
}

// benchDecode times one full decode pass over the encoded corpora, with
// the decode-context pool on and off.
func benchDecode(sets []*trace.Set, events int, out *BenchDecode) error {
	var bufs [][]byte
	for _, set := range sets {
		for _, t := range set.Traces {
			b, err := trace.EncodeTrace(t)
			if err != nil {
				return fmt.Errorf("bench: encoding corpus: %w", err)
			}
			bufs = append(bufs, b)
		}
	}
	decodeAll := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, buf := range bufs {
				if _, err := trace.ReadTrace(bytes.NewReader(buf)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	prev := trace.SetDecodePool(true)
	pooled := testing.Benchmark(decodeAll)
	trace.SetDecodePool(false)
	unpooled := testing.Benchmark(decodeAll)
	trace.SetDecodePool(prev)

	out.Events = events
	out.Pooled = statOf(pooled, events)
	out.Unpooled = statOf(unpooled, events)
	if out.Unpooled.AllocsPerOp > 0 {
		out.AllocReductionPct = (1 - float64(out.Pooled.AllocsPerOp)/float64(out.Unpooled.AllocsPerOp)) * 100
	}
	if out.Unpooled.NsPerOp > 0 {
		out.NsPerOpDeltaPct = (out.Pooled.NsPerOp - out.Unpooled.NsPerOp) / out.Unpooled.NsPerOp * 100
	}
	return nil
}

// benchSignature times the cached violation-identity path on a fresh
// violation per iteration (the first, cache-filling computation — the
// cost every deduplicated violation pays exactly once).
func benchSignature() BenchStat {
	template := core.Violation{
		Severity: core.SevError,
		Class:    core.AcrossProcesses,
		Rule:     "concurrent Put and Get from different processes overlap in the target window",
		A: trace.Event{Kind: trace.KindPut, Rank: 0, File: "bench/origin.go", Line: 42,
			Func: "repro/internal/apps.benchOrigin"},
		B: trace.Event{Kind: trace.KindGet, Rank: 1, File: "bench/target.go", Line: 97,
			Func: "repro/internal/apps.benchTarget"},
		Win:     3,
		Overlap: memory.Iv(0x1000, 64),
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := template
			if v.Signature() == "" {
				b.Fatal("empty signature")
			}
		}
	})
	return statOf(r, 0)
}

// benchAnalyze times the full offline analysis over the corpora at one
// worker and at GOMAXPROCS workers.
func benchAnalyze(sets []*trace.Set, events int, out *BenchAnalyze) error {
	analyzeAll := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, set := range sets {
					opts := core.DefaultOptions()
					opts.Workers = workers
					if _, err := core.AnalyzeWith(set, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	max := runtime.GOMAXPROCS(0)
	w1 := testing.Benchmark(analyzeAll(1))
	wm := testing.Benchmark(analyzeAll(max))

	out.Events = events
	out.MaxWorkers = max
	// The pool can be configured wider than the machine; the schedulable
	// parallelism is what the speedup column should be read against.
	out.EffectiveWorkers = max
	if n := runtime.NumCPU(); out.EffectiveWorkers > n {
		out.EffectiveWorkers = n
	}
	out.Workers1 = statOf(w1, events)
	out.WorkersMax = statOf(wm, events)
	if out.WorkersMax.NsPerOp > 0 {
		out.Speedup = out.Workers1.NsPerOp / out.WorkersMax.NsPerOp
	}
	return nil
}

// benchPhases runs one instrumented analysis over the corpora and reads
// the per-phase wall times back from the observability spans. A non-nil
// tr additionally records the pass as a causal timeline.
func benchPhases(sets []*trace.Set, tr *tracing.Recorder) ([]BenchPhase, error) {
	reg := obs.NewRegistry()
	events := 0
	for _, set := range sets {
		opts := core.DefaultOptions()
		opts.Workers = runtime.GOMAXPROCS(0)
		opts.Obs = reg
		opts.Trace = tr
		if _, err := core.AnalyzeWith(set, opts); err != nil {
			return nil, err
		}
		events += set.TotalEvents()
	}
	snap := reg.Snapshot()
	var phases []BenchPhase
	for _, name := range []string{"model", "match", "dag", "epochs", "detect_intra", "detect_cross"} {
		secs := snap.Span(core.PhaseSpanName, "phase", name).Total().Seconds()
		p := BenchPhase{Phase: name, Seconds: secs}
		if secs > 0 {
			p.EventsPerSec = float64(events) / secs
		}
		phases = append(phases, p)
	}
	return phases, nil
}

// benchCross times the linear cross-process detector against the
// quadratic baseline on one synthetic concurrent region. The engine is
// pinned to pairwise so this section keeps measuring the original linear
// detector; the shadow engine has its own section.
func benchCross(ops int, out *BenchCross) error {
	set := SyntheticRegion(16, ops)
	linear := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.AnalyzeWith(set, core.Options{CrossProcess: true, Engine: core.EnginePairwise}); err != nil {
				b.Fatal(err)
			}
		}
	})
	quadratic := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.QuadraticAnalyze(set); err != nil {
				b.Fatal(err)
			}
		}
	})
	out.Ops = ops
	out.Linear = statOf(linear, set.TotalEvents())
	out.Quadratic = statOf(quadratic, set.TotalEvents())
	if out.Linear.NsPerOp > 0 {
		out.Speedup = out.Quadratic.NsPerOp / out.Linear.NsPerOp
	}
	return nil
}

// benchShadow times the shadow engine against the pairwise reference on
// the multi-origin region where every operation shares one (window,
// target) vector. The differential engine runs once first: if the two
// engines' reports are not byte-identical on this trace the harness fails
// instead of publishing a speedup for a detector that disagrees with its
// reference.
func benchShadow(ops int, out *BenchShadow) error {
	const ranks = 8
	set := ShadowSyntheticRegion(ranks, ops)
	if _, err := core.AnalyzeWith(set, core.Options{CrossProcess: true, Engine: core.EngineDifferential}); err != nil {
		return fmt.Errorf("bench: shadow/pairwise disagreement: %w", err)
	}
	out.Agreement = true

	run := func(engine core.Engine) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.AnalyzeWith(set, core.Options{CrossProcess: true, Engine: engine}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	shadow := run(core.EngineShadow)
	pairwise := run(core.EnginePairwise)

	out.Ops = ops
	out.Ranks = ranks
	out.Events = set.TotalEvents()
	out.Shadow = statOf(shadow, set.TotalEvents())
	out.Pairwise = statOf(pairwise, set.TotalEvents())
	if out.Shadow.NsPerOp > 0 {
		out.Speedup = out.Pairwise.NsPerOp / out.Shadow.NsPerOp
	}
	return nil
}
