package experiments

import (
	"testing"

	"repro/internal/core"
)

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot-check the published cells.
	if rows[4][2] != "ERROR" { // Put × Store
		t.Errorf("Put×Store = %q", rows[4][2])
	}
	if rows[1][1] != "BOTH" { // Load × Load
		t.Errorf("Load×Load = %q", rows[1][1])
	}
}

func TestTable2AllDetected(t *testing.T) {
	rows, err := Table2(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Detected {
			t.Errorf("%s not detected", r.App)
		}
		if !r.FixedClean {
			t.Errorf("%s fixed variant not clean", r.App)
		}
		if r.Diagnosis == "" {
			t.Errorf("%s missing diagnosis", r.App)
		}
	}
}

func TestFig8SmallRun(t *testing.T) {
	rows, err := Fig8(4, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Native <= 0 || r.Profiled <= 0 || r.Full <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.App, r)
		}
		if r.Stats.Total() == 0 {
			t.Errorf("%s: no events recorded", r.App)
		}
	}
}

func TestFig9SmallRun(t *testing.T) {
	rows, err := Fig9(64, []int{2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Strong scaling: per-rank load/store events must fall with more ranks.
	per2 := rows[0].LoadStoreEvents / int64(rows[0].Ranks)
	per4 := rows[1].LoadStoreEvents / int64(rows[1].Ranks)
	if per4 >= per2 {
		t.Errorf("per-rank load/store events did not fall: %d @2 ranks vs %d @4 ranks", per2, per4)
	}
}

func TestAblationAgreementAndScaling(t *testing.T) {
	rows, err := Ablation([]int{128, 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Agreement {
			t.Errorf("detectors disagree at %d ops", r.Ops)
		}
		if r.Violations == 0 {
			t.Errorf("synthetic region should contain the planted conflict")
		}
	}
	// The quadratic baseline must be slower at the larger size.
	last := rows[len(rows)-1]
	if last.Quadratic <= last.Linear {
		t.Logf("warning: quadratic (%v) not slower than linear (%v) at %d ops — acceptable at small sizes",
			last.Quadratic, last.Linear, last.Ops)
	}
}

func TestSyncCheckerComparison(t *testing.T) {
	rows, err := SyncCheckerComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.MCCheckerDetects {
			t.Errorf("MC-Checker missed %s", r.App)
		}
		within := r.ErrorLocation == "within an epoch"
		if within && !r.SyncCheckerDetects {
			t.Errorf("SyncChecker should detect within-epoch bug %s", r.App)
		}
		if !within && r.SyncCheckerDetects {
			t.Errorf("SyncChecker should miss across-process bug %s", r.App)
		}
	}
}

func TestSyntheticRegion(t *testing.T) {
	set := SyntheticRegion(8, 200)
	if set.Ranks() != 8 {
		t.Fatalf("ranks = %d", set.Ranks())
	}
	rep, err := core.Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 {
		t.Errorf("synthetic region should contain exactly the planted conflict, got:\n%s", rep)
	}
}

// TestBenchShadowAgreement runs the shadow-vs-pairwise benchmark's
// differential gate on its worst-case multi-origin region (sized down —
// the gate, not the timing, is what CI needs).
func TestBenchShadowAgreement(t *testing.T) {
	set := ShadowSyntheticRegion(8, 512)
	if set.Ranks() != 8 {
		t.Fatalf("ranks = %d", set.Ranks())
	}
	rep, err := core.AnalyzeWith(set, core.Options{CrossProcess: true, Engine: core.EngineDifferential})
	if err != nil {
		t.Fatalf("shadow/pairwise disagreement: %v", err)
	}
	if len(rep.Violations) == 0 {
		t.Error("multi-origin region should report its planted conflict")
	}
}
