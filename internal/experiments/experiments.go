// Package experiments implements the paper's evaluation (§VI–§VII): each
// table and figure has a function that runs the corresponding workloads and
// returns the rows the paper reports. The cmd/mcbench harness prints them;
// the repository-root benchmarks time their building blocks.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Table1 returns the compatibility matrix (paper Table I).
func Table1() [][]string { return core.TableRows() }

// Table2Row is one detection result (paper Table II).
type Table2Row struct {
	App           string
	Ranks         int
	Origin        string
	ErrorLocation string
	RootCause     string
	Symptom       string

	Detected   bool // an error of the expected class was reported
	FixedClean bool // the fixed variant reports nothing
	Diagnosis  string
}

// Table2 runs the five bug cases and reports detection results. fullScale
// uses the paper's process counts (lockopts at 64); otherwise large cases
// shrink to 8 ranks.
func Table2(fullScale bool) ([]Table2Row, error) {
	return runBugTable(apps.BugCases(), fullScale)
}

// Table2Extensions runs the beyond-the-paper bug cases (PSCW halo race,
// MPI-3 counter) through the same detection harness.
func Table2Extensions() ([]Table2Row, error) {
	return runBugTable(apps.ExtensionCases(), false)
}

func runBugTable(cases []apps.BugCase, fullScale bool) ([]Table2Row, error) {
	var rows []Table2Row
	for _, bc := range cases {
		ranks := bc.Ranks
		if !fullScale && ranks > 8 {
			ranks = 8
		}
		rep, err := runChecked(ranks, bc.Buggy, bc.RelevantBuffers)
		if err != nil {
			return nil, fmt.Errorf("%s buggy: %w", bc.Name, err)
		}
		wantClass := core.WithinEpoch
		if bc.ErrorLocation == "across processes" {
			wantClass = core.AcrossProcesses
		}
		row := Table2Row{
			App: bc.Name, Ranks: ranks, Origin: bc.Origin,
			ErrorLocation: bc.ErrorLocation, RootCause: bc.RootCause, Symptom: bc.Symptom,
		}
		for _, v := range rep.Errors() {
			if v.Class == wantClass {
				row.Detected = true
				row.Diagnosis = fmt.Sprintf("%s at %s vs %s at %s",
					v.A.Kind, v.A.Loc(), v.B.Kind, v.B.Loc())
				break
			}
		}
		fixedRep, err := runChecked(ranks, bc.Fixed, bc.RelevantBuffers)
		if err != nil {
			return nil, fmt.Errorf("%s fixed: %w", bc.Name, err)
		}
		row.FixedClean = len(fixedRep.Violations) == 0
		rows = append(rows, row)
	}
	return rows, nil
}

func runChecked(ranks int, body func(p *mpi.Proc) error, relevant []string) (*core.Report, error) {
	sink := trace.NewMemorySink()
	var rel profiler.Relevance
	if relevant != nil {
		rel = profiler.FromNames(relevant)
	}
	pr := profiler.New(sink, rel)
	if err := mpi.Run(ranks, mpi.Options{Hook: pr}, body); err != nil {
		return nil, err
	}
	return core.Analyze(sink.Set())
}

// OverheadRow is one bar group of Figure 8: one application's native,
// selectively profiled, and fully instrumented execution times.
type OverheadRow struct {
	App   string
	Ranks int

	Native   time.Duration
	Profiled time.Duration // selective instrumentation (ST-Analyzer set)
	Full     time.Duration // all buffers instrumented (no static analysis)

	OverheadPct     float64 // (Profiled-Native)/Native * 100
	FullOverheadPct float64

	Stats trace.Stats // selective-run event tallies
}

// Fig8 measures profiling overhead for the five workloads at the given
// rank count (the paper uses 64) and work scale. Each configuration runs
// `repeats` times; the minimum is kept (standard noise reduction).
func Fig8(ranks int, scale float64, repeats int) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, wl := range apps.Workloads() {
		body := wl.Body(scale)

		native, err := timeRun(ranks, nil, body, repeats)
		if err != nil {
			return nil, fmt.Errorf("%s native: %w", wl.Name, err)
		}
		var stats trace.Stats
		profiled, err := timeRunProfiled(ranks, wl.RelevantBuffers, body, repeats, &stats)
		if err != nil {
			return nil, fmt.Errorf("%s profiled: %w", wl.Name, err)
		}
		full, err := timeRunProfiled(ranks, nil, body, repeats, nil)
		if err != nil {
			return nil, fmt.Errorf("%s full: %w", wl.Name, err)
		}

		rows = append(rows, OverheadRow{
			App: wl.Name, Ranks: ranks,
			Native: native, Profiled: profiled, Full: full,
			OverheadPct:     pct(profiled, native),
			FullOverheadPct: pct(full, native),
			Stats:           stats,
		})
	}
	return rows, nil
}

func pct(with, without time.Duration) float64 {
	if without <= 0 {
		return 0
	}
	return (float64(with)/float64(without) - 1) * 100
}

// timeRun measures a native (unhooked) run.
func timeRun(ranks int, hook mpi.Hook, body func(p *mpi.Proc) error, repeats int) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		if err := mpi.Run(ranks, mpi.Options{Hook: hook}, body); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// timeRunProfiled measures runs with the profiler attached. Events go to a
// counting sink (tallied, not stored), mirroring the paper's setup where
// the Profiler writes to local disk and the time excludes offline analysis.
func timeRunProfiled(ranks int, relevant []string, body func(p *mpi.Proc) error, repeats int, stats *trace.Stats) (time.Duration, error) {
	var rel profiler.Relevance
	if relevant != nil {
		rel = profiler.FromNames(relevant)
	}
	best := time.Duration(0)
	for r := 0; r < repeats; r++ {
		sink := trace.NewCountingSink(nil)
		pr := profiler.New(sink, rel)
		start := time.Now()
		if err := mpi.Run(ranks, mpi.Options{Hook: pr}, body); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
		if stats != nil {
			*stats = sink.Stats()
		}
	}
	return best, nil
}

// PhaseRow is one application's offline-analysis phase breakdown, read
// from the observability layer's phase spans. It complements Figure 8's
// end-to-end overhead numbers with where DN-Analyzer time actually goes.
type PhaseRow struct {
	App    string
	Events int64 // events analyzed

	// Wall time per analysis phase (mcchecker_phase_seconds spans).
	Model, Match, DAG, Epochs, DetectIntra, DetectCross time.Duration

	Analysis     time.Duration // sum of the phases above
	EventsPerSec float64       // Events / Analysis
}

// PhaseBreakdown runs each overhead workload once with the observability
// registry attached and reports per-phase analysis wall times from the
// collected spans.
func PhaseBreakdown(ranks int, scale float64) ([]PhaseRow, error) {
	var rows []PhaseRow
	for _, wl := range apps.Workloads() {
		body := wl.Body(scale)
		reg := obs.NewRegistry()
		sink := trace.NewMemorySink()
		var rel profiler.Relevance
		if wl.RelevantBuffers != nil {
			rel = profiler.FromNames(wl.RelevantBuffers)
		}
		pr := profiler.NewObs(sink, rel, reg)
		if err := mpi.Run(ranks, mpi.Options{Hook: pr, Obs: reg}, body); err != nil {
			return nil, fmt.Errorf("%s: %w", wl.Name, err)
		}
		opts := core.DefaultOptions()
		opts.Obs = reg
		rep, err := core.AnalyzeWith(sink.Set(), opts)
		if err != nil {
			return nil, fmt.Errorf("%s analysis: %w", wl.Name, err)
		}
		snap := reg.Snapshot()
		phase := func(name string) time.Duration {
			return snap.Span(core.PhaseSpanName, "phase", name).Total()
		}
		row := PhaseRow{
			App:         wl.Name,
			Events:      int64(rep.EventsAnalyzed),
			Model:       phase("model"),
			Match:       phase("match"),
			DAG:         phase("dag"),
			Epochs:      phase("epochs"),
			DetectIntra: phase("detect_intra"),
			DetectCross: phase("detect_cross"),
		}
		row.Analysis = row.Model + row.Match + row.DAG + row.Epochs +
			row.DetectIntra + row.DetectCross
		if secs := row.Analysis.Seconds(); secs > 0 {
			row.EventsPerSec = float64(row.Events) / secs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScalingRow is one point of Figures 9 and 10: LU at a given rank count.
type ScalingRow struct {
	Ranks    int
	Native   time.Duration
	Profiled time.Duration

	OverheadPct float64 // Figure 9

	// Figure 10: per-rank event rates during the profiled run.
	LoadStoreEvents int64
	MPIEvents       int64
	LoadStoreRate   float64 // events per second per rank
	MPIRate         float64
}

// Fig9 runs the LU strong-scaling study: fixed matrix order n across the
// rank counts (the paper: n=1500, ranks 8…128).
func Fig9(n int, ranksList []int, repeats int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, ranks := range ranksList {
		body := apps.LUWorkload(n)
		native, err := timeRun(ranks, nil, body, repeats)
		if err != nil {
			return nil, fmt.Errorf("lu native %d ranks: %w", ranks, err)
		}
		var stats trace.Stats
		profiled, err := timeRunProfiled(ranks, []string{"matrix", "panel"}, body, repeats, &stats)
		if err != nil {
			return nil, fmt.Errorf("lu profiled %d ranks: %w", ranks, err)
		}
		row := ScalingRow{
			Ranks: ranks, Native: native, Profiled: profiled,
			OverheadPct:     pct(profiled, native),
			LoadStoreEvents: stats.LoadStore,
			MPIEvents:       stats.MPIEvents(),
		}
		secs := profiled.Seconds()
		if secs > 0 {
			row.LoadStoreRate = float64(stats.LoadStore) / secs / float64(ranks)
			row.MPIRate = float64(stats.MPIEvents()) / secs / float64(ranks)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WeakScaling runs the weak-scaling counterpart of Figure 9 that the paper
// predicts but does not measure (§VII-B: "For weak scaling experiments,
// the workload assigned to each processing node stays constant, we expect
// a constant overhead when the number of nodes increases"). The Boltzmann
// slab size per rank is fixed, so per-rank computation — and the
// instrumented load/store rate — stays constant as ranks are added.
func WeakScaling(cellsPerRank, steps int, ranksList []int, repeats int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, ranks := range ranksList {
		body := apps.Boltzmann(cellsPerRank, steps)
		native, err := timeRun(ranks, nil, body, repeats)
		if err != nil {
			return nil, fmt.Errorf("boltzmann native %d ranks: %w", ranks, err)
		}
		var stats trace.Stats
		profiled, err := timeRunProfiled(ranks, []string{"lattice"}, body, repeats, &stats)
		if err != nil {
			return nil, fmt.Errorf("boltzmann profiled %d ranks: %w", ranks, err)
		}
		row := ScalingRow{
			Ranks: ranks, Native: native, Profiled: profiled,
			OverheadPct:     pct(profiled, native),
			LoadStoreEvents: stats.LoadStore,
			MPIEvents:       stats.MPIEvents(),
		}
		if secs := profiled.Seconds(); secs > 0 {
			row.LoadStoreRate = float64(stats.LoadStore) / secs / float64(ranks)
			row.MPIRate = float64(stats.MPIEvents()) / secs / float64(ranks)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationRow compares the linear cross-process detector against the
// quadratic baseline on a synthetic region with a given operation count.
type AblationRow struct {
	Ops        int
	Linear     time.Duration
	Quadratic  time.Duration
	Agreement  bool // both report the same number of violations
	Violations int
}

// Ablation measures analysis time of the two cross-process detectors on
// synthetic single-region traces of growing size (§IV-C-4's complexity
// argument).
func Ablation(opCounts []int) ([]AblationRow, error) {
	for _, n := range opCounts {
		if n < 1 {
			return nil, fmt.Errorf("ablation: op count %d", n)
		}
	}
	var rows []AblationRow
	for _, ops := range opCounts {
		set := SyntheticRegion(16, ops)
		start := time.Now()
		lin, err := core.AnalyzeWith(set, core.Options{CrossProcess: true})
		if err != nil {
			return nil, err
		}
		linT := time.Since(start)

		start = time.Now()
		quad, err := baseline.QuadraticAnalyze(set)
		if err != nil {
			return nil, err
		}
		quadT := time.Since(start)

		rows = append(rows, AblationRow{
			Ops: ops, Linear: linT, Quadratic: quadT,
			Agreement:  len(lin.Violations) == len(quad.Violations),
			Violations: len(lin.Violations),
		})
	}
	return rows, nil
}

// SyncRow is one row of the SyncChecker comparison (paper §VII).
type SyncRow struct {
	App                string
	ErrorLocation      string
	MCCheckerDetects   bool
	SyncCheckerDetects bool
}

// SyncCheckerComparison runs the bug suite under both the full analyzer
// and the intra-epoch-only baseline.
func SyncCheckerComparison() ([]SyncRow, error) {
	var rows []SyncRow
	for _, bc := range apps.BugCases() {
		ranks := bc.Ranks
		if ranks > 8 {
			ranks = 8
		}
		sink := trace.NewMemorySink()
		pr := profiler.New(sink, nil)
		if err := mpi.Run(ranks, mpi.Options{Hook: pr}, bc.Buggy); err != nil {
			return nil, err
		}
		set := sink.Set()
		full, err := core.Analyze(set)
		if err != nil {
			return nil, err
		}
		sc, err := baseline.SyncCheckerAnalyze(set)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SyncRow{
			App:                bc.Name,
			ErrorLocation:      bc.ErrorLocation,
			MCCheckerDetects:   len(full.Errors()) > 0,
			SyncCheckerDetects: len(sc.Errors()) > 0,
		})
	}
	return rows, nil
}
