package trace

import (
	"fmt"
	"path"

	"repro/internal/memory"
)

// Kind identifies the MPI call or memory access an Event records.
type Kind uint8

const (
	KindInvalid Kind = iota

	// Local memory accesses on instrumented (relevant) buffers.
	KindLoad
	KindStore

	// One-sided communication calls.
	KindPut
	KindGet
	KindAccumulate

	// One-sided initialization and synchronization calls.
	KindWinCreate
	KindWinFree
	KindWinFence
	KindWinLock
	KindWinUnlock
	KindWinPost
	KindWinStart
	KindWinComplete
	KindWinWait

	// General synchronization: point-to-point.
	KindSend
	KindRecv
	KindIsend
	KindIrecv
	KindWaitReq

	// General synchronization: collectives.
	KindBarrier
	KindBcast
	KindReduce
	KindAllreduce
	KindGather
	KindScatter
	KindAllgather
	KindAlltoall

	// Support routines whose effects the analyzer must replay.
	KindCommCreate // user-defined communicator; Members lists world ranks
	KindTypeCreate // user-defined datatype; TypeMap holds its data-map

	// MPI-3 one-sided extensions (paper §V discusses applying the analysis
	// to the MPI-3 model; these kinds support that extension).
	KindWinLockAll // passive-target epoch to every rank
	KindWinUnlockAll
	KindWinFlush      // complete ops to Target (-1 = all) at origin and target
	KindWinFlushLocal // complete ops to Target (-1 = all) at origin only
	KindGetAccumulate // atomic read-modify-write returning the old value
	KindFetchOp       // single-element Get_accumulate
	KindCompareSwap   // atomic compare-and-swap

	kindMax // sentinel
)

// KindCount is one past the largest valid Kind, for building per-kind
// lookup tables (e.g. the observability layer's per-kind event counters).
const KindCount = int(kindMax)

var kindNames = [...]string{
	KindInvalid:     "invalid",
	KindLoad:        "load",
	KindStore:       "store",
	KindPut:         "Put",
	KindGet:         "Get",
	KindAccumulate:  "Accumulate",
	KindWinCreate:   "Win_create",
	KindWinFree:     "Win_free",
	KindWinFence:    "Win_fence",
	KindWinLock:     "Win_lock",
	KindWinUnlock:   "Win_unlock",
	KindWinPost:     "Win_post",
	KindWinStart:    "Win_start",
	KindWinComplete: "Win_complete",
	KindWinWait:     "Win_wait",
	KindSend:        "Send",
	KindRecv:        "Recv",
	KindIsend:       "Isend",
	KindIrecv:       "Irecv",
	KindWaitReq:     "Wait",
	KindBarrier:     "Barrier",
	KindBcast:       "Bcast",
	KindReduce:      "Reduce",
	KindAllreduce:   "Allreduce",
	KindGather:      "Gather",
	KindScatter:     "Scatter",
	KindAllgather:   "Allgather",
	KindAlltoall:    "Alltoall",
	KindCommCreate:  "Comm_create",
	KindTypeCreate:  "Type_create",

	KindWinLockAll:    "Win_lock_all",
	KindWinUnlockAll:  "Win_unlock_all",
	KindWinFlush:      "Win_flush",
	KindWinFlushLocal: "Win_flush_local",
	KindGetAccumulate: "Get_accumulate",
	KindFetchOp:       "Fetch_and_op",
	KindCompareSwap:   "Compare_and_swap",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsLocalAccess reports whether k is a program load or store.
func (k Kind) IsLocalAccess() bool { return k == KindLoad || k == KindStore }

// IsRMAComm reports whether k is a one-sided communication call.
func (k Kind) IsRMAComm() bool {
	switch k {
	case KindPut, KindGet, KindAccumulate,
		KindGetAccumulate, KindFetchOp, KindCompareSwap:
		return true
	}
	return false
}

// IsAccFamily reports whether k belongs to MPI's accumulate family, whose
// members are elementwise-atomic with each other when they use the same
// operation and basic datatype.
func (k Kind) IsAccFamily() bool {
	switch k {
	case KindAccumulate, KindGetAccumulate, KindFetchOp, KindCompareSwap:
		return true
	}
	return false
}

// ReadsTarget reports whether the operation reads target window memory
// (Get and the fetching accumulate-family calls).
func (k Kind) ReadsTarget() bool {
	switch k {
	case KindGet, KindGetAccumulate, KindFetchOp, KindCompareSwap:
		return true
	}
	return false
}

// IsRMASync reports whether k is a one-sided synchronization call.
func (k Kind) IsRMASync() bool {
	switch k {
	case KindWinFence, KindWinLock, KindWinUnlock,
		KindWinPost, KindWinStart, KindWinComplete, KindWinWait,
		KindWinLockAll, KindWinUnlockAll, KindWinFlush, KindWinFlushLocal:
		return true
	}
	return false
}

// IsCollective reports whether k is a collective call (these synchronize
// all members of the communicator and are matched by per-communicator
// sequence number).
func (k Kind) IsCollective() bool {
	switch k {
	case KindBarrier, KindBcast, KindReduce, KindAllreduce,
		KindGather, KindScatter, KindAllgather, KindAlltoall,
		KindWinCreate, KindWinFree, KindWinFence, KindCommCreate:
		return true
	}
	return false
}

// IsP2P reports whether k is a point-to-point call.
func (k Kind) IsP2P() bool {
	switch k {
	case KindSend, KindRecv, KindIsend, KindIrecv:
		return true
	}
	return false
}

// IsSync reports whether k can order operations across processes
// (paper §III-A: interprocess synchronization events must be captured
// because they partially order memory accesses).
func (k Kind) IsSync() bool {
	return k.IsCollective() || k.IsP2P() || k.IsRMASync() || k == KindWaitReq
}

// LockType distinguishes MPI_Win_lock modes.
type LockType uint8

const (
	LockNone LockType = iota
	LockShared
	LockExclusive
)

func (l LockType) String() string {
	switch l {
	case LockShared:
		return "shared"
	case LockExclusive:
		return "exclusive"
	default:
		return "none"
	}
}

// AccOp is the reduction operation of an accumulate call. MPI 2.2 permits
// concurrent accumulates to the same location only when they use the same
// operation and basic datatype (paper §II-A).
type AccOp uint8

const (
	OpNone AccOp = iota
	OpSum
	OpProd
	OpMax
	OpMin
	OpReplace // MPI_REPLACE: accumulate degenerates to put
)

var accOpNames = [...]string{"none", "SUM", "PROD", "MAX", "MIN", "REPLACE"}

func (op AccOp) String() string {
	if int(op) < len(accOpNames) {
		return accOpNames[op]
	}
	return fmt.Sprintf("AccOp(%d)", uint8(op))
}

// Event is one logged runtime event. Field use depends on Kind; unused
// fields are zero. Ranks stored in Peer and Target are relative to Comm,
// exactly as passed by the application.
type Event struct {
	Kind Kind
	Rank int32 // world rank of the logging process
	Seq  int64 // per-rank sequence number, dense from 0

	// Source location of the call or access in the application.
	File string
	Line int32
	Func string // routine containing the call site

	Comm int32 // communicator id (0 = world) for p2p, collectives, comm/win create
	Peer int32 // dest (send), source (recv), root (rooted collectives)
	Tag  int32 // p2p message tag
	Req  int32 // request id for Isend/Irecv and the WaitReq completing them

	// One-sided fields.
	Win         int32 // window id
	Target      int32 // comm-relative target rank (RMA comm, lock/unlock)
	Lock        LockType
	AccOp       AccOp
	OriginAddr  uint64 // simulated address of origin buffer
	OriginType  int32  // datatype id of origin elements
	OriginCount int32
	TargetDisp  uint64 // displacement into target window, in disp units
	TargetType  int32
	TargetCount int32
	Assert      int32 // fence assertion (unused by analysis; logged for fidelity)

	// Result buffer of fetching atomics (Get_accumulate, Fetch_and_op,
	// Compare_and_swap): written with the target's prior value when the
	// operation completes.
	ResultAddr  uint64
	ResultType  int32
	ResultCount int32

	// Local access fields.
	Addr uint64
	Size uint64

	// Payloads for definition events.
	TypeID   int32          // KindTypeCreate: id assigned to the new datatype
	TypeMap  memory.DataMap // KindTypeCreate
	Members  []int32        // KindCommCreate: world ranks of the new comm, in rank order
	WinBase  uint64         // KindWinCreate: local window base address
	WinSize  uint64         // KindWinCreate: local window size in bytes
	DispUnit uint32         // KindWinCreate
}

// Loc returns a compact "file:line" for diagnostics, using only the base
// name of the file.
func (e *Event) Loc() string {
	if e.File == "" {
		return "?"
	}
	return fmt.Sprintf("%s:%d", path.Base(e.File), e.Line)
}

// ID identifies an event globally as (rank, seq).
type ID struct {
	Rank int32
	Seq  int64
}

// ID returns the event's global identity.
func (e *Event) ID() ID { return ID{Rank: e.Rank, Seq: e.Seq} }

func (e *Event) String() string {
	switch {
	case e.Kind.IsLocalAccess():
		return fmt.Sprintf("P%d/%d %s addr=0x%x size=%d @%s",
			e.Rank, e.Seq, e.Kind, e.Addr, e.Size, e.Loc())
	case e.Kind.IsRMAComm():
		return fmt.Sprintf("P%d/%d %s win=%d target=%d origin=0x%x(%dx t%d) disp=%d(%dx t%d) op=%s @%s",
			e.Rank, e.Seq, e.Kind, e.Win, e.Target,
			e.OriginAddr, e.OriginCount, e.OriginType,
			e.TargetDisp, e.TargetCount, e.TargetType, e.AccOp, e.Loc())
	case e.Kind == KindWinLock:
		return fmt.Sprintf("P%d/%d %s(%s) win=%d target=%d @%s",
			e.Rank, e.Seq, e.Kind, e.Lock, e.Win, e.Target, e.Loc())
	case e.Kind.IsRMASync():
		return fmt.Sprintf("P%d/%d %s win=%d target=%d @%s",
			e.Rank, e.Seq, e.Kind, e.Win, e.Target, e.Loc())
	case e.Kind.IsP2P():
		return fmt.Sprintf("P%d/%d %s comm=%d peer=%d tag=%d @%s",
			e.Rank, e.Seq, e.Kind, e.Comm, e.Peer, e.Tag, e.Loc())
	case e.Kind == KindCommCreate:
		return fmt.Sprintf("P%d/%d %s comm=%d members=%v @%s",
			e.Rank, e.Seq, e.Kind, e.Comm, e.Members, e.Loc())
	case e.Kind == KindTypeCreate:
		return fmt.Sprintf("P%d/%d %s type=%d map=%s @%s",
			e.Rank, e.Seq, e.Kind, e.TypeID, e.TypeMap.String(), e.Loc())
	case e.Kind == KindWinCreate:
		return fmt.Sprintf("P%d/%d %s win=%d comm=%d base=0x%x size=%d unit=%d @%s",
			e.Rank, e.Seq, e.Kind, e.Win, e.Comm, e.WinBase, e.WinSize, e.DispUnit, e.Loc())
	default:
		return fmt.Sprintf("P%d/%d %s comm=%d @%s", e.Rank, e.Seq, e.Kind, e.Comm, e.Loc())
	}
}

// Predefined datatype ids. User-defined datatype ids start at TypeUserBase.
// The data-maps of predefined types are fixed and known to both the
// simulator and the analyzer.
const (
	TypeInvalid int32 = 0
	TypeByte    int32 = 1
	TypeInt32   int32 = 2
	TypeInt64   int32 = 3
	TypeFloat32 int32 = 4
	TypeFloat64 int32 = 5

	TypeUserBase int32 = 100
)

var predefined = map[int32]memory.DataMap{
	TypeByte:    memory.Contig(1),
	TypeInt32:   memory.Contig(4),
	TypeInt64:   memory.Contig(8),
	TypeFloat32: memory.Contig(4),
	TypeFloat64: memory.Contig(8),
}

// PredefinedType returns the data-map of a predefined datatype id.
func PredefinedType(id int32) (memory.DataMap, bool) {
	dm, ok := predefined[id]
	return dm, ok
}

// IsPredefinedType reports whether id names a predefined datatype.
func IsPredefinedType(id int32) bool {
	_, ok := predefined[id]
	return ok
}
