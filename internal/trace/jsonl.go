package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/memory"
)

// JSON-lines interchange: one event object per line, for consumption by
// external tooling (scripts, notebooks) without linking the binary decoder.
// The schema mirrors Event with zero fields omitted; Kind is rendered by
// name for readability and parsed back by name or number.

type eventJSONL struct {
	Kind string `json:"kind"`
	Rank int32  `json:"rank"`
	Seq  int64  `json:"seq"`
	File string `json:"file,omitempty"`
	Line int32  `json:"line,omitempty"`
	Func string `json:"func,omitempty"`

	Comm int32 `json:"comm,omitempty"`
	Peer int32 `json:"peer,omitempty"`
	Tag  int32 `json:"tag,omitempty"`
	Req  int32 `json:"req,omitempty"`

	Win         int32  `json:"win,omitempty"`
	Target      int32  `json:"target,omitempty"`
	Lock        string `json:"lock,omitempty"`
	AccOp       string `json:"accop,omitempty"`
	OriginAddr  uint64 `json:"origin_addr,omitempty"`
	OriginType  int32  `json:"origin_type,omitempty"`
	OriginCount int32  `json:"origin_count,omitempty"`
	TargetDisp  uint64 `json:"target_disp,omitempty"`
	TargetType  int32  `json:"target_type,omitempty"`
	TargetCount int32  `json:"target_count,omitempty"`
	ResultAddr  uint64 `json:"result_addr,omitempty"`
	ResultType  int32  `json:"result_type,omitempty"`
	ResultCount int32  `json:"result_count,omitempty"`
	Assert      int32  `json:"assert,omitempty"`

	Addr uint64 `json:"addr,omitempty"`
	Size uint64 `json:"size,omitempty"`

	TypeID   int32    `json:"type_id,omitempty"`
	TypeMap  []uint64 `json:"type_map,omitempty"` // flattened (disp,len) pairs + trailing extent
	Members  []int32  `json:"members,omitempty"`
	WinBase  uint64   `json:"win_base,omitempty"`
	WinSize  uint64   `json:"win_size,omitempty"`
	DispUnit uint32   `json:"disp_unit,omitempty"`
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, int(kindMax))
	for k := Kind(1); k < kindMax; k++ {
		m[k.String()] = k
	}
	return m
}()

// WriteJSONL writes every event of the set as one JSON object per line,
// ordered by rank then sequence.
func WriteJSONL(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range s.Traces {
		for i := range t.Events {
			ev := &t.Events[i]
			j := eventJSONL{
				Kind: ev.Kind.String(), Rank: ev.Rank, Seq: ev.Seq,
				File: ev.File, Line: ev.Line, Func: ev.Func,
				Comm: ev.Comm, Peer: ev.Peer, Tag: ev.Tag, Req: ev.Req,
				Win: ev.Win, Target: ev.Target,
				OriginAddr: ev.OriginAddr, OriginType: ev.OriginType, OriginCount: ev.OriginCount,
				TargetDisp: ev.TargetDisp, TargetType: ev.TargetType, TargetCount: ev.TargetCount,
				ResultAddr: ev.ResultAddr, ResultType: ev.ResultType, ResultCount: ev.ResultCount,
				Assert: ev.Assert, Addr: ev.Addr, Size: ev.Size,
				TypeID: ev.TypeID, Members: ev.Members,
				WinBase: ev.WinBase, WinSize: ev.WinSize, DispUnit: ev.DispUnit,
			}
			if ev.Lock != LockNone {
				j.Lock = ev.Lock.String()
			}
			if ev.AccOp != OpNone {
				j.AccOp = ev.AccOp.String()
			}
			if len(ev.TypeMap.Segments) > 0 {
				for _, seg := range ev.TypeMap.Segments {
					j.TypeMap = append(j.TypeMap, seg.Disp, seg.Len)
				}
				j.TypeMap = append(j.TypeMap, ev.TypeMap.Extent)
			}
			if err := enc.Encode(&j); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON-lines stream back into a Set.
func ReadJSONL(r io.Reader) (*Set, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	byRank := map[int32][]Event{}
	maxRank := int32(-1)
	for {
		var j eventJSONL
		if err := dec.Decode(&j); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: jsonl: %w", err)
		}
		kind, ok := kindByName[j.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: jsonl: unknown kind %q", j.Kind)
		}
		ev := Event{
			Kind: kind, Rank: j.Rank, Seq: j.Seq,
			File: j.File, Line: j.Line, Func: j.Func,
			Comm: j.Comm, Peer: j.Peer, Tag: j.Tag, Req: j.Req,
			Win: j.Win, Target: j.Target,
			OriginAddr: j.OriginAddr, OriginType: j.OriginType, OriginCount: j.OriginCount,
			TargetDisp: j.TargetDisp, TargetType: j.TargetType, TargetCount: j.TargetCount,
			ResultAddr: j.ResultAddr, ResultType: j.ResultType, ResultCount: j.ResultCount,
			Assert: j.Assert, Addr: j.Addr, Size: j.Size,
			TypeID: j.TypeID, Members: j.Members,
			WinBase: j.WinBase, WinSize: j.WinSize, DispUnit: j.DispUnit,
		}
		switch j.Lock {
		case "shared":
			ev.Lock = LockShared
		case "exclusive":
			ev.Lock = LockExclusive
		}
		for i, name := range accOpNames {
			if name == j.AccOp {
				ev.AccOp = AccOp(i)
			}
		}
		if n := len(j.TypeMap); n > 0 {
			if n%2 != 1 {
				return nil, fmt.Errorf("trace: jsonl: malformed type_map of %d values", n)
			}
			for i := 0; i+1 < n; i += 2 {
				ev.TypeMap.Segments = append(ev.TypeMap.Segments,
					segmentFrom(j.TypeMap[i], j.TypeMap[i+1]))
			}
			ev.TypeMap.Extent = j.TypeMap[n-1]
		}
		byRank[ev.Rank] = append(byRank[ev.Rank], ev)
		if ev.Rank > maxRank {
			maxRank = ev.Rank
		}
	}
	s := NewSet(int(maxRank + 1))
	for r, evs := range byRank {
		s.Traces[r].Events = evs
	}
	return s, s.Validate()
}

func segmentFrom(disp, length uint64) memory.Segment {
	return memory.Segment{Disp: disp, Len: length}
}
