package trace

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindLoad:       "load",
		KindPut:        "Put",
		KindWinFence:   "Win_fence",
		KindBarrier:    "Barrier",
		KindCommCreate: "Comm_create",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind should print numerically")
	}
}

func TestKindPredicates(t *testing.T) {
	type pred struct {
		local, rma, rmaSync, coll, p2p, sync bool
	}
	cases := map[Kind]pred{
		KindLoad:        {local: true},
		KindStore:       {local: true},
		KindPut:         {rma: true},
		KindGet:         {rma: true},
		KindAccumulate:  {rma: true},
		KindWinFence:    {rmaSync: true, coll: true, sync: true},
		KindWinLock:     {rmaSync: true, sync: true},
		KindWinUnlock:   {rmaSync: true, sync: true},
		KindWinPost:     {rmaSync: true, sync: true},
		KindWinStart:    {rmaSync: true, sync: true},
		KindWinComplete: {rmaSync: true, sync: true},
		KindWinWait:     {rmaSync: true, sync: true},
		KindSend:        {p2p: true, sync: true},
		KindRecv:        {p2p: true, sync: true},
		KindIsend:       {p2p: true, sync: true},
		KindIrecv:       {p2p: true, sync: true},
		KindWaitReq:     {sync: true},
		KindBarrier:     {coll: true, sync: true},
		KindBcast:       {coll: true, sync: true},
		KindAllreduce:   {coll: true, sync: true},
		KindWinCreate:   {coll: true, sync: true},
		KindWinFree:     {coll: true, sync: true},
		KindCommCreate:  {coll: true, sync: true},
		KindTypeCreate:  {},
	}
	for k, want := range cases {
		if k.IsLocalAccess() != want.local {
			t.Errorf("%v.IsLocalAccess() = %v", k, k.IsLocalAccess())
		}
		if k.IsRMAComm() != want.rma {
			t.Errorf("%v.IsRMAComm() = %v", k, k.IsRMAComm())
		}
		if k.IsRMASync() != want.rmaSync {
			t.Errorf("%v.IsRMASync() = %v", k, k.IsRMASync())
		}
		if k.IsCollective() != want.coll {
			t.Errorf("%v.IsCollective() = %v", k, k.IsCollective())
		}
		if k.IsP2P() != want.p2p {
			t.Errorf("%v.IsP2P() = %v", k, k.IsP2P())
		}
		if k.IsSync() != want.sync && !want.coll && !want.rmaSync {
			t.Errorf("%v.IsSync() = %v", k, k.IsSync())
		}
	}
}

func TestEventLocAndString(t *testing.T) {
	ev := Event{Kind: KindPut, Rank: 2, Seq: 5, File: "/a/b/app.go", Line: 42,
		Win: 1, Target: 3, OriginAddr: 0x2000, OriginCount: 4, OriginType: TypeInt32}
	if ev.Loc() != "app.go:42" {
		t.Errorf("Loc = %q", ev.Loc())
	}
	s := ev.String()
	for _, want := range []string{"P2/5", "Put", "win=1", "target=3", "app.go:42"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if (&Event{}).Loc() != "?" {
		t.Error("empty event Loc should be ?")
	}
	lockEv := Event{Kind: KindWinLock, Lock: LockExclusive}
	if !strings.Contains(lockEv.String(), "exclusive") {
		t.Errorf("lock String() = %q", lockEv.String())
	}
}

func TestEventID(t *testing.T) {
	ev := Event{Rank: 3, Seq: 9}
	if ev.ID() != (ID{Rank: 3, Seq: 9}) {
		t.Errorf("ID = %+v", ev.ID())
	}
}

func TestPredefinedTypes(t *testing.T) {
	for _, c := range []struct {
		id   int32
		size uint64
	}{
		{TypeByte, 1}, {TypeInt32, 4}, {TypeInt64, 8}, {TypeFloat32, 4}, {TypeFloat64, 8},
	} {
		dm, ok := PredefinedType(c.id)
		if !ok {
			t.Errorf("type %d not predefined", c.id)
			continue
		}
		if dm.Size() != c.size {
			t.Errorf("type %d size = %d, want %d", c.id, dm.Size(), c.size)
		}
	}
	if _, ok := PredefinedType(TypeUserBase); ok {
		t.Error("user type ids must not be predefined")
	}
	if IsPredefinedType(TypeInvalid) {
		t.Error("TypeInvalid must not be predefined")
	}
}

func TestLockAndAccOpStrings(t *testing.T) {
	if LockShared.String() != "shared" || LockExclusive.String() != "exclusive" || LockNone.String() != "none" {
		t.Error("LockType strings wrong")
	}
	if OpSum.String() != "SUM" || OpReplace.String() != "REPLACE" {
		t.Error("AccOp strings wrong")
	}
}
