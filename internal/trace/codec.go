package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/memory"
)

// Binary stream format, per rank:
//
//	magic "MCCT" | version u8 | rank varint
//	repeated records:
//	  0x01 strdef  | id uvarint | len uvarint | bytes   (file-name intern)
//	  0x02 event   | field-encoded Event (see below)
//	  0x00 end
//
// Events are encoded as kind byte followed by varint fields in a fixed
// order; slices/data-maps are length-prefixed. Seq is not stored (it is the
// record index); Rank is stored once in the header.

const (
	codecMagic   = "MCCT"
	codecVersion = 1

	recEnd    = 0x00
	recStrDef = 0x01
	recEvent  = 0x02
)

// Writer encodes one rank's events to an io.Writer.
type Writer struct {
	w       *bufio.Writer
	rank    int32
	nextSeq int64
	strs    map[string]uint64
	err     error
}

// NewWriter writes the stream header for rank and returns the Writer.
func NewWriter(w io.Writer, rank int32) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return nil, err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], int64(rank))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, rank: rank, strs: map[string]uint64{"": 0}}, nil
}

func (w *Writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	_, w.err = w.w.Write(tmp[:n])
}

func (w *Writer) varint(v int64) {
	if w.err != nil {
		return
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	_, w.err = w.w.Write(tmp[:n])
}

func (w *Writer) byte1(b byte) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(b)
}

func (w *Writer) internString(s string) uint64 {
	if id, ok := w.strs[s]; ok {
		return id
	}
	id := uint64(len(w.strs))
	w.strs[s] = id
	w.byte1(recStrDef)
	w.uvarint(id)
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
	return id
}

// Emit implements Sink: it appends ev to the stream. The event's Rank must
// match the writer's rank and Seq must be the next dense sequence number;
// a zero Seq/Rank event is stamped automatically.
func (w *Writer) Emit(ev Event) {
	if w.err != nil {
		return
	}
	if ev.Rank == 0 && ev.Seq == 0 {
		ev.Rank, ev.Seq = w.rank, w.nextSeq
	}
	if ev.Rank != w.rank || ev.Seq != w.nextSeq {
		w.err = fmt.Errorf("trace: event %v out of order for rank %d writer (want seq %d)",
			ev.ID(), w.rank, w.nextSeq)
		return
	}
	w.nextSeq++

	fileID := w.internString(ev.File)
	funcID := w.internString(ev.Func)
	w.byte1(recEvent)
	w.byte1(byte(ev.Kind))
	w.uvarint(fileID)
	w.uvarint(funcID)
	w.varint(int64(ev.Line))
	w.varint(int64(ev.Comm))
	w.varint(int64(ev.Peer))
	w.varint(int64(ev.Tag))
	w.varint(int64(ev.Req))
	w.varint(int64(ev.Win))
	w.varint(int64(ev.Target))
	w.byte1(byte(ev.Lock))
	w.byte1(byte(ev.AccOp))
	w.uvarint(ev.OriginAddr)
	w.varint(int64(ev.OriginType))
	w.varint(int64(ev.OriginCount))
	w.uvarint(ev.TargetDisp)
	w.varint(int64(ev.TargetType))
	w.varint(int64(ev.TargetCount))
	w.uvarint(ev.ResultAddr)
	w.varint(int64(ev.ResultType))
	w.varint(int64(ev.ResultCount))
	w.varint(int64(ev.Assert))
	w.uvarint(ev.Addr)
	w.uvarint(ev.Size)
	w.varint(int64(ev.TypeID))
	w.uvarint(uint64(len(ev.TypeMap.Segments)))
	for _, s := range ev.TypeMap.Segments {
		w.uvarint(s.Disp)
		w.uvarint(s.Len)
	}
	w.uvarint(ev.TypeMap.Extent)
	w.uvarint(uint64(len(ev.Members)))
	for _, m := range ev.Members {
		w.varint(int64(m))
	}
	w.uvarint(ev.WinBase)
	w.uvarint(ev.WinSize)
	w.uvarint(uint64(ev.DispUnit))
}

// Close terminates and flushes the stream.
func (w *Writer) Close() error {
	w.byte1(recEnd)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

type reader struct {
	r    *bufio.Reader
	strs []string
}

func (rd *reader) uvarint() (uint64, error) { return binary.ReadUvarint(rd.r) }
func (rd *reader) varint() (int64, error)   { return binary.ReadVarint(rd.r) }

func (rd *reader) varint32(dst *int32, err *error) {
	if *err != nil {
		return
	}
	v, e := rd.varint()
	if e != nil {
		*err = e
		return
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		*err = fmt.Errorf("trace: field value %d overflows int32", v)
		return
	}
	*dst = int32(v)
}

func (rd *reader) uvarint64(dst *uint64, err *error) {
	if *err != nil {
		return
	}
	v, e := rd.uvarint()
	if e != nil {
		*err = e
		return
	}
	*dst = v
}

// ReadTrace decodes one rank stream produced by Writer.
func ReadTrace(r io.Reader) (*Trace, error) {
	rd := &reader{r: bufio.NewReader(r), strs: []string{""}}
	hdr := make([]byte, len(codecMagic)+1)
	if _, err := io.ReadFull(rd.r, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:len(codecMagic)]) != codecMagic {
		return nil, errors.New("trace: bad magic")
	}
	if hdr[len(codecMagic)] != codecVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[len(codecMagic)])
	}
	rank64, err := rd.varint()
	if err != nil {
		return nil, fmt.Errorf("trace: reading rank: %w", err)
	}
	t := &Trace{Rank: int32(rank64)}

	for {
		tag, err := rd.r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: reading record tag: %w", err)
		}
		switch tag {
		case recEnd:
			return t, nil
		case recStrDef:
			id, err := rd.uvarint()
			if err != nil {
				return nil, err
			}
			n, err := rd.uvarint()
			if err != nil {
				return nil, err
			}
			if n > 1<<20 {
				return nil, fmt.Errorf("trace: string of %d bytes too long", n)
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(rd.r, buf); err != nil {
				return nil, err
			}
			if id != uint64(len(rd.strs)) {
				return nil, fmt.Errorf("trace: string id %d out of order", id)
			}
			rd.strs = append(rd.strs, string(buf))
		case recEvent:
			ev, err := rd.readEvent(t.Rank, int64(len(t.Events)))
			if err != nil {
				return nil, fmt.Errorf("trace: rank %d event %d: %w", t.Rank, len(t.Events), err)
			}
			t.Events = append(t.Events, ev)
		default:
			return nil, fmt.Errorf("trace: unknown record tag %#x", tag)
		}
	}
}

func (rd *reader) readEvent(rank int32, seq int64) (Event, error) {
	var ev Event
	ev.Rank, ev.Seq = rank, seq
	kb, err := rd.r.ReadByte()
	if err != nil {
		return ev, err
	}
	ev.Kind = Kind(kb)
	if ev.Kind == KindInvalid || ev.Kind >= kindMax {
		return ev, fmt.Errorf("invalid kind %d", kb)
	}

	fileID, err := rd.uvarint()
	if err != nil {
		return ev, err
	}
	if fileID >= uint64(len(rd.strs)) {
		return ev, fmt.Errorf("undefined string id %d", fileID)
	}
	ev.File = rd.strs[fileID]
	funcID, err := rd.uvarint()
	if err != nil {
		return ev, err
	}
	if funcID >= uint64(len(rd.strs)) {
		return ev, fmt.Errorf("undefined string id %d", funcID)
	}
	ev.Func = rd.strs[funcID]

	rd.varint32(&ev.Line, &err)
	rd.varint32(&ev.Comm, &err)
	rd.varint32(&ev.Peer, &err)
	rd.varint32(&ev.Tag, &err)
	rd.varint32(&ev.Req, &err)
	rd.varint32(&ev.Win, &err)
	rd.varint32(&ev.Target, &err)
	if err != nil {
		return ev, err
	}
	lb, err := rd.r.ReadByte()
	if err != nil {
		return ev, err
	}
	ev.Lock = LockType(lb)
	ab, err := rd.r.ReadByte()
	if err != nil {
		return ev, err
	}
	ev.AccOp = AccOp(ab)

	rd.uvarint64(&ev.OriginAddr, &err)
	rd.varint32(&ev.OriginType, &err)
	rd.varint32(&ev.OriginCount, &err)
	rd.uvarint64(&ev.TargetDisp, &err)
	rd.varint32(&ev.TargetType, &err)
	rd.varint32(&ev.TargetCount, &err)
	rd.uvarint64(&ev.ResultAddr, &err)
	rd.varint32(&ev.ResultType, &err)
	rd.varint32(&ev.ResultCount, &err)
	rd.varint32(&ev.Assert, &err)
	rd.uvarint64(&ev.Addr, &err)
	rd.uvarint64(&ev.Size, &err)
	rd.varint32(&ev.TypeID, &err)
	if err != nil {
		return ev, err
	}

	nseg, err := rd.uvarint()
	if err != nil {
		return ev, err
	}
	if nseg > 1<<16 {
		return ev, fmt.Errorf("datatype with %d segments too large", nseg)
	}
	if nseg > 0 {
		ev.TypeMap.Segments = make([]memory.Segment, nseg)
		for i := range ev.TypeMap.Segments {
			rd.uvarint64(&ev.TypeMap.Segments[i].Disp, &err)
			rd.uvarint64(&ev.TypeMap.Segments[i].Len, &err)
		}
	}
	rd.uvarint64(&ev.TypeMap.Extent, &err)
	if err != nil {
		return ev, err
	}

	nmem, err := rd.uvarint()
	if err != nil {
		return ev, err
	}
	if nmem > 1<<20 {
		return ev, fmt.Errorf("communicator with %d members too large", nmem)
	}
	if nmem > 0 {
		ev.Members = make([]int32, nmem)
		for i := range ev.Members {
			rd.varint32(&ev.Members[i], &err)
		}
	}
	rd.uvarint64(&ev.WinBase, &err)
	rd.uvarint64(&ev.WinSize, &err)
	var unit uint64
	rd.uvarint64(&unit, &err)
	ev.DispUnit = uint32(unit)
	return ev, err
}
