package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/memory"
)

// Binary stream format, per rank:
//
//	magic "MCCT" | version u8 | rank varint | count-hint uvarint (v2+)
//	repeated records:
//	  0x01 strdef  | id uvarint | len uvarint | bytes   (file-name intern)
//	  0x02 event   | field-encoded Event (see below)
//	  0x00 end
//
// Events are encoded as kind byte followed by varint fields in a fixed
// order; slices/data-maps are length-prefixed. Seq is not stored (it is the
// record index); Rank is stored once in the header.
//
// Version 2 adds the count hint: the expected event count (0 when the
// writer streams and cannot know it), letting readers preallocate the
// event slice in one shot. Readers accept both versions; the hint is
// advisory and clamped, never trusted.

const (
	codecMagic     = "MCCT"
	codecVersionV1 = 1
	codecVersion   = 2

	recEnd    = 0x00
	recStrDef = 0x01
	recEvent  = 0x02

	// maxPreallocEvents caps how many events the count hint may
	// preallocate, so a hostile header cannot force a huge allocation.
	maxPreallocEvents = 1 << 16
)

// Writer encodes one rank's events to an io.Writer.
type Writer struct {
	w       *bufio.Writer
	rank    int32
	nextSeq int64
	strs    map[string]uint64
	err     error
}

// NewWriter writes the stream header for rank and returns the Writer.
// The count hint is written as 0 (unknown): a streaming writer cannot
// know how many events will follow. Use NewWriterHint when the event
// count is known up front (whole-trace encoders), so readers can
// preallocate.
func NewWriter(w io.Writer, rank int32) (*Writer, error) {
	return NewWriterHint(w, rank, 0)
}

// NewWriterHint is NewWriter with an explicit event-count hint in the
// stream header. events <= 0 writes 0 ("unknown"); the hint is advisory
// only — emitting more or fewer events than hinted is legal.
func NewWriterHint(w io.Writer, rank int32, events int) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return nil, err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], int64(rank))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	if events < 0 {
		events = 0
	}
	n = binary.PutUvarint(tmp[:], uint64(events))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, rank: rank, strs: map[string]uint64{"": 0}}, nil
}

func (w *Writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	_, w.err = w.w.Write(tmp[:n])
}

func (w *Writer) varint(v int64) {
	if w.err != nil {
		return
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	_, w.err = w.w.Write(tmp[:n])
}

func (w *Writer) byte1(b byte) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(b)
}

func (w *Writer) internString(s string) uint64 {
	if id, ok := w.strs[s]; ok {
		return id
	}
	id := uint64(len(w.strs))
	w.strs[s] = id
	w.byte1(recStrDef)
	w.uvarint(id)
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
	return id
}

// Emit implements Sink: it appends ev to the stream. The event's Rank must
// match the writer's rank and Seq must be the next dense sequence number;
// a zero Seq/Rank event is stamped automatically.
func (w *Writer) Emit(ev Event) {
	if w.err != nil {
		return
	}
	if ev.Rank == 0 && ev.Seq == 0 {
		ev.Rank, ev.Seq = w.rank, w.nextSeq
	}
	if ev.Rank != w.rank || ev.Seq != w.nextSeq {
		w.err = fmt.Errorf("trace: event %v out of order for rank %d writer (want seq %d)",
			ev.ID(), w.rank, w.nextSeq)
		return
	}
	w.nextSeq++

	fileID := w.internString(ev.File)
	funcID := w.internString(ev.Func)
	w.byte1(recEvent)
	w.byte1(byte(ev.Kind))
	w.uvarint(fileID)
	w.uvarint(funcID)
	w.varint(int64(ev.Line))
	w.varint(int64(ev.Comm))
	w.varint(int64(ev.Peer))
	w.varint(int64(ev.Tag))
	w.varint(int64(ev.Req))
	w.varint(int64(ev.Win))
	w.varint(int64(ev.Target))
	w.byte1(byte(ev.Lock))
	w.byte1(byte(ev.AccOp))
	w.uvarint(ev.OriginAddr)
	w.varint(int64(ev.OriginType))
	w.varint(int64(ev.OriginCount))
	w.uvarint(ev.TargetDisp)
	w.varint(int64(ev.TargetType))
	w.varint(int64(ev.TargetCount))
	w.uvarint(ev.ResultAddr)
	w.varint(int64(ev.ResultType))
	w.varint(int64(ev.ResultCount))
	w.varint(int64(ev.Assert))
	w.uvarint(ev.Addr)
	w.uvarint(ev.Size)
	w.varint(int64(ev.TypeID))
	w.uvarint(uint64(len(ev.TypeMap.Segments)))
	for _, s := range ev.TypeMap.Segments {
		w.uvarint(s.Disp)
		w.uvarint(s.Len)
	}
	w.uvarint(ev.TypeMap.Extent)
	w.uvarint(uint64(len(ev.Members)))
	for _, m := range ev.Members {
		w.varint(int64(m))
	}
	w.uvarint(ev.WinBase)
	w.uvarint(ev.WinSize)
	w.uvarint(uint64(ev.DispUnit))
}

// Close terminates and flushes the stream.
func (w *Writer) Close() error {
	w.byte1(recEnd)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// reader is the per-stream decode context: the buffered reader, the
// string intern table, and a scratch buffer for string definitions. It is
// recycled through readerPool across streams — decoding a trace directory
// touches one context per rank file, and without pooling each decode pays
// a fresh bufio buffer, intern table, and scratch allocation.
type reader struct {
	r       *bufio.Reader
	strs    []string
	scratch []byte
}

// decodeReaderBufSize is the bufio buffer for pooled decode contexts —
// large enough that typical rank files decode in a few refills.
const decodeReaderBufSize = 1 << 16

var readerPool sync.Pool // of *reader

var (
	decodePoolOff    atomic.Bool
	decodePoolHits   atomic.Int64
	decodePoolMisses atomic.Int64
)

// SetDecodePool enables or disables decode-context recycling and returns
// the previous setting. It exists for the benchmark harness, which
// measures the pool's allocation effect by flipping it off; production
// paths leave it on.
func SetDecodePool(enabled bool) bool {
	return !decodePoolOff.Swap(!enabled)
}

// DecodePoolStats returns the cumulative decode-context pool hits and
// misses. ReadDirObs exposes the per-read deltas as
// mcchecker_pipeline_decode_pool_{hits,misses}_total.
func DecodePoolStats() (hits, misses int64) {
	return decodePoolHits.Load(), decodePoolMisses.Load()
}

// getReader returns a decode context wrapping r, recycled when possible.
func getReader(r io.Reader) *reader {
	if !decodePoolOff.Load() {
		if v := readerPool.Get(); v != nil {
			rd := v.(*reader)
			decodePoolHits.Add(1)
			rd.r.Reset(r)
			rd.strs = rd.strs[:1]
			return rd
		}
	}
	decodePoolMisses.Add(1)
	return &reader{r: bufio.NewReaderSize(r, decodeReaderBufSize), strs: []string{""}}
}

// putReader recycles a decode context. The interned strings handed out to
// decoded events are immutable Go strings; dropping the table references
// here cannot invalidate them.
func (rd *reader) release() {
	if decodePoolOff.Load() {
		return
	}
	strs := rd.strs[:cap(rd.strs)]
	for i := 1; i < len(strs); i++ {
		strs[i] = "" // do not pin decoded file/func names beyond this stream
	}
	rd.strs = strs[:1]
	rd.r.Reset(nil)
	readerPool.Put(rd)
}

func (rd *reader) uvarint() (uint64, error) { return binary.ReadUvarint(rd.r) }
func (rd *reader) varint() (int64, error)   { return binary.ReadVarint(rd.r) }

// readHeader parses the stream header (magic, version, rank, and the v2
// count hint) shared by the strict and salvage decoders. The hint is 0
// for v1 streams and for v2 writers that streamed without knowing their
// event count.
func (rd *reader) readHeader() (rank int32, hint uint64, err error) {
	var hdr [len(codecMagic) + 1]byte
	if _, err := io.ReadFull(rd.r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:len(codecMagic)]) != codecMagic {
		return 0, 0, errors.New("trace: bad magic")
	}
	version := hdr[len(codecMagic)]
	if version != codecVersionV1 && version != codecVersion {
		return 0, 0, fmt.Errorf("trace: unsupported version %d", version)
	}
	rank64, err := rd.varint()
	if err != nil {
		return 0, 0, fmt.Errorf("trace: reading rank: %w", err)
	}
	if version >= codecVersion {
		if hint, err = rd.uvarint(); err != nil {
			return 0, 0, fmt.Errorf("trace: reading event-count hint: %w", err)
		}
	}
	return int32(rank64), hint, nil
}

// preallocEvents sizes a trace's event slice from the header hint,
// clamped against hostile or mistaken headers.
func preallocEvents(t *Trace, hint uint64) {
	if hint == 0 {
		return
	}
	if hint > maxPreallocEvents {
		hint = maxPreallocEvents
	}
	t.Events = make([]Event, 0, hint)
}

func (rd *reader) varint32(dst *int32, err *error) {
	if *err != nil {
		return
	}
	v, e := rd.varint()
	if e != nil {
		*err = e
		return
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		*err = fmt.Errorf("trace: field value %d overflows int32", v)
		return
	}
	*dst = int32(v)
}

func (rd *reader) uvarint64(dst *uint64, err *error) {
	if *err != nil {
		return
	}
	v, e := rd.uvarint()
	if e != nil {
		*err = e
		return
	}
	*dst = v
}

// readStrDef decodes one string-definition record into the intern table,
// reusing the context's scratch buffer for the byte read.
func (rd *reader) readStrDef() error {
	id, err := rd.uvarint()
	if err != nil {
		return err
	}
	n, err := rd.uvarint()
	if err != nil {
		return err
	}
	if n > 1<<20 {
		return fmt.Errorf("trace: string of %d bytes too long", n)
	}
	if uint64(cap(rd.scratch)) < n {
		rd.scratch = make([]byte, n)
	}
	buf := rd.scratch[:n]
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		return err
	}
	if id != uint64(len(rd.strs)) {
		return fmt.Errorf("trace: string id %d out of order", id)
	}
	rd.strs = append(rd.strs, string(buf))
	return nil
}

// ReadTrace decodes one rank stream produced by Writer (codec version 1
// or 2).
func ReadTrace(r io.Reader) (*Trace, error) {
	rd := getReader(r)
	defer rd.release()
	rank, hint, err := rd.readHeader()
	if err != nil {
		return nil, err
	}
	t := &Trace{Rank: rank}
	preallocEvents(t, hint)

	for {
		tag, err := rd.r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: reading record tag: %w", err)
		}
		switch tag {
		case recEnd:
			return t, nil
		case recStrDef:
			if err := rd.readStrDef(); err != nil {
				return nil, err
			}
		case recEvent:
			ev, err := rd.readEvent(t.Rank, int64(len(t.Events)))
			if err != nil {
				return nil, fmt.Errorf("trace: rank %d event %d: %w", t.Rank, len(t.Events), err)
			}
			t.Events = append(t.Events, ev)
		default:
			return nil, fmt.Errorf("trace: unknown record tag %#x", tag)
		}
	}
}

func (rd *reader) readEvent(rank int32, seq int64) (Event, error) {
	var ev Event
	ev.Rank, ev.Seq = rank, seq
	kb, err := rd.r.ReadByte()
	if err != nil {
		return ev, err
	}
	ev.Kind = Kind(kb)
	if ev.Kind == KindInvalid || ev.Kind >= kindMax {
		return ev, fmt.Errorf("invalid kind %d", kb)
	}

	fileID, err := rd.uvarint()
	if err != nil {
		return ev, err
	}
	if fileID >= uint64(len(rd.strs)) {
		return ev, fmt.Errorf("undefined string id %d", fileID)
	}
	ev.File = rd.strs[fileID]
	funcID, err := rd.uvarint()
	if err != nil {
		return ev, err
	}
	if funcID >= uint64(len(rd.strs)) {
		return ev, fmt.Errorf("undefined string id %d", funcID)
	}
	ev.Func = rd.strs[funcID]

	rd.varint32(&ev.Line, &err)
	rd.varint32(&ev.Comm, &err)
	rd.varint32(&ev.Peer, &err)
	rd.varint32(&ev.Tag, &err)
	rd.varint32(&ev.Req, &err)
	rd.varint32(&ev.Win, &err)
	rd.varint32(&ev.Target, &err)
	if err != nil {
		return ev, err
	}
	lb, err := rd.r.ReadByte()
	if err != nil {
		return ev, err
	}
	ev.Lock = LockType(lb)
	ab, err := rd.r.ReadByte()
	if err != nil {
		return ev, err
	}
	ev.AccOp = AccOp(ab)

	rd.uvarint64(&ev.OriginAddr, &err)
	rd.varint32(&ev.OriginType, &err)
	rd.varint32(&ev.OriginCount, &err)
	rd.uvarint64(&ev.TargetDisp, &err)
	rd.varint32(&ev.TargetType, &err)
	rd.varint32(&ev.TargetCount, &err)
	rd.uvarint64(&ev.ResultAddr, &err)
	rd.varint32(&ev.ResultType, &err)
	rd.varint32(&ev.ResultCount, &err)
	rd.varint32(&ev.Assert, &err)
	rd.uvarint64(&ev.Addr, &err)
	rd.uvarint64(&ev.Size, &err)
	rd.varint32(&ev.TypeID, &err)
	if err != nil {
		return ev, err
	}

	nseg, err := rd.uvarint()
	if err != nil {
		return ev, err
	}
	if nseg > 1<<16 {
		return ev, fmt.Errorf("datatype with %d segments too large", nseg)
	}
	if nseg > 0 {
		ev.TypeMap.Segments = make([]memory.Segment, nseg)
		for i := range ev.TypeMap.Segments {
			rd.uvarint64(&ev.TypeMap.Segments[i].Disp, &err)
			rd.uvarint64(&ev.TypeMap.Segments[i].Len, &err)
		}
	}
	rd.uvarint64(&ev.TypeMap.Extent, &err)
	if err != nil {
		return ev, err
	}

	nmem, err := rd.uvarint()
	if err != nil {
		return ev, err
	}
	if nmem > 1<<20 {
		return ev, fmt.Errorf("communicator with %d members too large", nmem)
	}
	if nmem > 0 {
		ev.Members = make([]int32, nmem)
		for i := range ev.Members {
			rd.varint32(&ev.Members[i], &err)
		}
	}
	rd.uvarint64(&ev.WinBase, &err)
	rd.uvarint64(&ev.WinSize, &err)
	var unit uint64
	rd.uvarint64(&unit, &err)
	ev.DispUnit = uint32(unit)
	return ev, err
}
