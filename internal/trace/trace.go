package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

// Trace is the ordered event stream of one rank.
type Trace struct {
	Rank   int32
	Events []Event
}

// Len returns the number of events in the trace.
func (t *Trace) Len() int { return len(t.Events) }

// Set holds the traces of all ranks of one run, indexed by world rank.
type Set struct {
	Traces []*Trace
}

// NewSet creates a Set with n empty per-rank traces.
func NewSet(n int) *Set {
	s := &Set{Traces: make([]*Trace, n)}
	for i := range s.Traces {
		s.Traces[i] = &Trace{Rank: int32(i)}
	}
	return s
}

// Ranks returns the number of ranks in the set.
func (s *Set) Ranks() int { return len(s.Traces) }

// TotalEvents returns the number of events across all ranks.
func (s *Set) TotalEvents() int {
	n := 0
	for _, t := range s.Traces {
		n += len(t.Events)
	}
	return n
}

// Get returns the event identified by id. It panics on out-of-range ids;
// the analyzer only ever constructs ids from events it has read.
func (s *Set) Get(id ID) *Event {
	return &s.Traces[id.Rank].Events[id.Seq]
}

// Validate checks the per-rank sequence invariants: ranks labelled
// correctly and Seq dense from zero. Readers call it after loading.
func (s *Set) Validate() error { return s.ValidateWorkers(1) }

// ValidateWorkers is Validate with the per-rank scans fanned out over a
// worker pool; ranks are independent, and the error reported is the one
// the serial scan would have hit first (lowest failing rank).
func (s *Set) ValidateWorkers(workers int) error {
	return par.Ranks(len(s.Traces), workers, s.validateRank)
}

func (s *Set) validateRank(r int) error {
	t := s.Traces[r]
	if t == nil {
		return fmt.Errorf("trace: missing trace for rank %d", r)
	}
	if t.Rank != int32(r) {
		return fmt.Errorf("trace: trace at index %d labelled rank %d", r, t.Rank)
	}
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Rank != int32(r) {
			return fmt.Errorf("trace: rank %d event %d labelled rank %d", r, i, ev.Rank)
		}
		if ev.Seq != int64(i) {
			return fmt.Errorf("trace: rank %d event %d has seq %d", r, i, ev.Seq)
		}
		if ev.Kind == KindInvalid || ev.Kind >= kindMax {
			return fmt.Errorf("trace: rank %d event %d has invalid kind %d", r, i, ev.Kind)
		}
	}
	return nil
}

// Sink consumes events as the profiler emits them.
type Sink interface {
	// Emit records one event. The profiler assigns Rank and Seq before
	// emitting. Emit is called from the rank's own goroutine; a Sink shared
	// across ranks must be safe for concurrent use.
	Emit(ev Event)
}

// MemorySink collects events in memory, one stream per rank. It is safe
// for concurrent emission from multiple ranks; each rank's stream has its
// own lock, so ranks do not contend with each other on the hot path.
type MemorySink struct {
	mu     sync.RWMutex // guards the byRank map structure
	byRank map[int32]*rankStream
}

type rankStream struct {
	mu  sync.Mutex
	evs []Event
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink {
	return &MemorySink{byRank: make(map[int32]*rankStream)}
}

func (m *MemorySink) stream(rank int32) *rankStream {
	m.mu.RLock()
	rs, ok := m.byRank[rank]
	m.mu.RUnlock()
	if ok {
		return rs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rs, ok = m.byRank[rank]; ok {
		return rs
	}
	rs = &rankStream{}
	m.byRank[rank] = rs
	return rs
}

// Emit implements Sink.
func (m *MemorySink) Emit(ev Event) {
	rs := m.stream(ev.Rank)
	rs.mu.Lock()
	rs.evs = append(rs.evs, ev)
	rs.mu.Unlock()
}

// Set assembles the collected events into a Set covering ranks [0, n) where
// n is one past the highest rank seen (or 0 for an empty sink). The
// per-rank event slices are copies, independent of the sink's buffers.
func (m *MemorySink) Set() *Set {
	return m.assemble(true)
}

// TakeSet is Set without the copy: the returned Set's per-rank event
// slices alias the sink's internal buffers. It exists for run-recycling
// callers (internal/explore) that analyze the set, keep only value
// copies of events out of it, and then Reset the sink for the next run —
// which invalidates the aliased slices. Use Set when the result must
// outlive the sink.
func (m *MemorySink) TakeSet() *Set {
	return m.assemble(false)
}

func (m *MemorySink) assemble(copyEvents bool) *Set {
	m.mu.RLock()
	defer m.mu.RUnlock()
	maxRank := int32(-1)
	for r := range m.byRank {
		if r > maxRank {
			maxRank = r
		}
	}
	s := NewSet(int(maxRank + 1))
	for r, rs := range m.byRank {
		rs.mu.Lock()
		if copyEvents {
			s.Traces[r].Events = append([]Event(nil), rs.evs...)
		} else {
			s.Traces[r].Events = rs.evs
		}
		rs.mu.Unlock()
	}
	return s
}

// Reset clears the sink for reuse, keeping the per-rank buffers' capacity
// so a recycled sink re-collects a comparable run without reallocating.
// Any Set previously obtained through TakeSet is invalidated.
func (m *MemorySink) Reset() {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, rs := range m.byRank {
		rs.mu.Lock()
		rs.evs = rs.evs[:0]
		rs.mu.Unlock()
	}
}

// CountingSink wraps another sink and tallies events by class with atomic
// counters (no lock contention on the hot path); it backs the event-rate
// measurements of Figure 10.
type CountingSink struct {
	inner Sink // may be nil to count without storing

	loadStore atomic.Int64
	rmaComm   atomic.Int64
	rmaSync   atomic.Int64
	p2p       atomic.Int64
	collect   atomic.Int64
	other     atomic.Int64
}

// Stats tallies emitted events by class.
type Stats struct {
	LoadStore int64 // KindLoad + KindStore
	RMAComm   int64
	RMASync   int64
	P2P       int64
	Collect   int64
	Other     int64
}

// Total returns the total event count.
func (st Stats) Total() int64 {
	return st.LoadStore + st.RMAComm + st.RMASync + st.P2P + st.Collect + st.Other
}

// MPIEvents returns all MPI function-level events (everything that is not a
// local load/store).
func (st Stats) MPIEvents() int64 { return st.Total() - st.LoadStore }

// NewCountingSink wraps inner (which may be nil).
func NewCountingSink(inner Sink) *CountingSink {
	return &CountingSink{inner: inner}
}

// Emit implements Sink.
func (c *CountingSink) Emit(ev Event) {
	switch {
	case ev.Kind.IsLocalAccess():
		c.loadStore.Add(1)
	case ev.Kind.IsRMAComm():
		c.rmaComm.Add(1)
	case ev.Kind.IsRMASync():
		c.rmaSync.Add(1)
	case ev.Kind.IsP2P() || ev.Kind == KindWaitReq:
		c.p2p.Add(1)
	case ev.Kind.IsCollective():
		c.collect.Add(1)
	default:
		c.other.Add(1)
	}
	if c.inner != nil {
		c.inner.Emit(ev)
	}
}

// Stats returns a snapshot of the tallies.
func (c *CountingSink) Stats() Stats {
	return Stats{
		LoadStore: c.loadStore.Load(),
		RMAComm:   c.rmaComm.Load(),
		RMASync:   c.rmaSync.Load(),
		P2P:       c.p2p.Load(),
		Collect:   c.collect.Load(),
		Other:     c.other.Load(),
	}
}

// Merge combines per-rank partial sets (e.g. loaded from separate files)
// into one Set. Ranks must not repeat across parts.
func Merge(parts ...*Trace) (*Set, error) {
	maxRank := int32(-1)
	for _, p := range parts {
		if p.Rank > maxRank {
			maxRank = p.Rank
		}
	}
	s := &Set{Traces: make([]*Trace, maxRank+1)}
	for _, p := range parts {
		if s.Traces[p.Rank] != nil {
			return nil, fmt.Errorf("trace: duplicate trace for rank %d", p.Rank)
		}
		s.Traces[p.Rank] = p
	}
	for r, t := range s.Traces {
		if t == nil {
			return nil, fmt.Errorf("trace: missing trace for rank %d", r)
		}
	}
	return s, s.Validate()
}

// SortedKinds returns the distinct event kinds present in the set, sorted;
// useful in tests and reports.
func (s *Set) SortedKinds() []Kind {
	seen := map[Kind]bool{}
	for _, t := range s.Traces {
		for i := range t.Events {
			seen[t.Events[i].Kind] = true
		}
	}
	out := make([]Kind, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
