package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Observability wrappers around the trace codec: byte and event volumes of
// encoding and decoding, the "trace volume" axis of the paper's overhead
// evaluation (§VII-B). The codec itself stays untouched; the counting
// happens in thin io wrappers at the file boundary.

// codecMetrics resolves the codec's counters from a registry; a nil
// receiver (nil registry) makes every record call a no-op.
type codecMetrics struct {
	encodedEvents *obs.Counter
	encodedBytes  *obs.Counter
	decodedEvents *obs.Counter
	decodedBytes  *obs.Counter
}

func newCodecMetrics(reg *obs.Registry) *codecMetrics {
	if reg == nil {
		return nil
	}
	return &codecMetrics{
		encodedEvents: reg.Counter("mcchecker_trace_encoded_events_total"),
		encodedBytes:  reg.Counter("mcchecker_trace_encoded_bytes_total"),
		decodedEvents: reg.Counter("mcchecker_trace_decoded_events_total"),
		decodedBytes:  reg.Counter("mcchecker_trace_decoded_bytes_total"),
	}
}

// countingWriter tallies bytes flowing to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// countingReader tallies bytes consumed from the underlying reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// WriteDirObs is WriteDir with codec metrics recorded into reg (events and
// bytes encoded per rank file). reg may be nil, which is exactly WriteDir.
func WriteDirObs(dir string, s *Set, reg *obs.Registry) error {
	m := newCodecMetrics(reg)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range s.Traces {
		if err := writeFileObs(filepath.Join(dir, FileName(t.Rank)), t, m); err != nil {
			return err
		}
	}
	return nil
}

func writeFileObs(path string, t *Trace, m *codecMetrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var out io.Writer = f
	var cw *countingWriter
	if m != nil {
		cw = &countingWriter{w: f}
		out = cw
	}
	w, err := NewWriter(out, t.Rank)
	if err != nil {
		f.Close()
		return err
	}
	for i := range t.Events {
		w.Emit(t.Events[i])
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	if m != nil {
		m.encodedEvents.Add(int64(len(t.Events)))
		m.encodedBytes.Add(cw.n)
	}
	return f.Close()
}

// ReadDirObs is ReadDir with codec metrics recorded into reg (events and
// bytes decoded per rank file). reg may be nil, which is exactly ReadDir.
func ReadDirObs(dir string, reg *obs.Registry) (*Set, error) {
	m := newCodecMetrics(reg)
	if m == nil {
		return ReadDir(dir)
	}
	set, err := readDirWith(dir, func(f *os.File) (*Trace, error) {
		cr := &countingReader{r: f}
		t, err := ReadTrace(cr)
		if err != nil {
			return nil, err
		}
		m.decodedEvents.Add(int64(len(t.Events)))
		m.decodedBytes.Add(cr.n)
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	return set, nil
}

// readDirWith is the directory-scanning body of ReadDir with the per-file
// decode step parameterized.
func readDirWith(dir string, readOne func(f *os.File) (*Trace, error)) (*Set, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := traceFileNames(entries)
	var parts []*Trace
	for _, nr := range names {
		f, err := os.Open(filepath.Join(dir, nr.name))
		if err != nil {
			return nil, err
		}
		t, err := readOne(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", nr.name, err)
		}
		if int(t.Rank) != nr.rank {
			return nil, fmt.Errorf("%s contains rank %d", nr.name, t.Rank)
		}
		parts = append(parts, t)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: no trace files in %s", dir)
	}
	return Merge(parts...)
}
