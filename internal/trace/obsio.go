package trace

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/par"
)

// Observability wrappers around the trace codec: byte and event volumes of
// encoding and decoding, the "trace volume" axis of the paper's overhead
// evaluation (§VII-B). The codec itself stays untouched; the counting
// happens in thin io wrappers at the file boundary.

// codecMetrics resolves the codec's counters from a registry; a nil
// receiver (nil registry) makes every record call a no-op.
type codecMetrics struct {
	encodedEvents *obs.Counter
	encodedBytes  *obs.Counter
	decodedEvents *obs.Counter
	decodedBytes  *obs.Counter
}

func newCodecMetrics(reg *obs.Registry) *codecMetrics {
	if reg == nil {
		return nil
	}
	return &codecMetrics{
		encodedEvents: reg.Counter("mcchecker_trace_encoded_events_total"),
		encodedBytes:  reg.Counter("mcchecker_trace_encoded_bytes_total"),
		decodedEvents: reg.Counter("mcchecker_trace_decoded_events_total"),
		decodedBytes:  reg.Counter("mcchecker_trace_decoded_bytes_total"),
	}
}

// countingWriter tallies bytes flowing to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// countingReader tallies bytes consumed from the underlying reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// WriteDirObs is WriteDir with codec metrics recorded into reg (events and
// bytes encoded per rank file). reg may be nil, which is exactly WriteDir.
func WriteDirObs(dir string, s *Set, reg *obs.Registry) error {
	m := newCodecMetrics(reg)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range s.Traces {
		if err := writeFileObs(filepath.Join(dir, FileName(t.Rank)), t, m); err != nil {
			return err
		}
	}
	return nil
}

func writeFileObs(path string, t *Trace, m *codecMetrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var out io.Writer = f
	var cw *countingWriter
	if m != nil {
		cw = &countingWriter{w: f}
		out = cw
	}
	w, err := NewWriterHint(out, t.Rank, len(t.Events))
	if err != nil {
		f.Close()
		return err
	}
	for i := range t.Events {
		w.Emit(t.Events[i])
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	if m != nil {
		m.encodedEvents.Add(int64(len(t.Events)))
		m.encodedBytes.Add(cw.n)
	}
	return f.Close()
}

// ReadDirObs is ReadDir with codec metrics recorded into reg (events and
// bytes decoded per rank file) plus the pipeline front-end gauges: decode
// throughput, decode-pool hit/miss deltas, and the worker count used for
// the concurrent per-file decode. reg may be nil, which is exactly
// ReadDir.
func ReadDirObs(dir string, reg *obs.Registry) (*Set, error) {
	return ReadDirTraced(dir, reg, nil)
}

// ReadDirTraced is ReadDirObs with each rank file's decode recorded as a
// span on tr (track "decode", one lane per worker — or per rank in
// deterministic mode). Both reg and tr may be nil.
func ReadDirTraced(dir string, reg *obs.Registry, tr *tracing.Recorder) (*Set, error) {
	return ReadDirTracedContext(nil, dir, reg, tr)
}

// ReadDirTracedContext is ReadDirTraced with cooperative cancellation
// checked before each rank file decodes. A nil ctx never cancels.
func ReadDirTracedContext(ctx context.Context, dir string, reg *obs.Registry, tr *tracing.Recorder) (*Set, error) {
	m := newCodecMetrics(reg)
	if m == nil && tr == nil {
		return ReadDirContext(ctx, dir)
	}
	workers := decodeWorkers()
	hits0, misses0 := DecodePoolStats()
	start := time.Now()
	var decodedBytes atomic.Int64
	set, err := readDirWith(ctx, dir, workers, tr, func(f *os.File, sp *tracing.Span) (*Trace, error) {
		cr := &countingReader{r: f}
		t, err := ReadTrace(cr)
		if err != nil {
			return nil, err
		}
		if m != nil {
			m.decodedEvents.Add(int64(len(t.Events)))
			m.decodedBytes.Add(cr.n)
		}
		decodedBytes.Add(cr.n)
		sp.Annotate("events", strconv.Itoa(len(t.Events)))
		sp.Annotate("bytes", strconv.FormatInt(cr.n, 10))
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	if reg == nil {
		return set, nil
	}
	elapsed := time.Since(start)
	hits1, misses1 := DecodePoolStats()
	reg.Gauge("mcchecker_pipeline_decode_workers").Set(int64(workers))
	reg.Counter("mcchecker_pipeline_decode_pool_hits_total").Add(hits1 - hits0)
	reg.Counter("mcchecker_pipeline_decode_pool_misses_total").Add(misses1 - misses0)
	if secs := elapsed.Seconds(); secs > 0 {
		reg.Gauge("mcchecker_pipeline_decode_events_per_sec").Set(int64(float64(set.TotalEvents()) / secs))
	}
	return set, nil
}

// decodeWorkers is the concurrency used for per-file trace decoding:
// ranks are independent streams, so the front end fans them out across
// the machine.
func decodeWorkers() int { return runtime.GOMAXPROCS(0) }

// readDirWith is the directory-scanning body of ReadDir with the per-file
// decode step parameterized. Rank files decode concurrently on up to
// `workers` goroutines; assembly stays deterministic because each file's
// trace lands in its name's slot and errors surface in name order
// (par.Ranks picks the lowest failing index). ctx (which may be nil) is
// checked before each file decodes.
func readDirWith(ctx context.Context, dir string, workers int, tr *tracing.Recorder, readOne func(f *os.File, sp *tracing.Span) (*Trace, error)) (*Set, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := traceFileNames(entries)
	if len(names) == 0 {
		return nil, fmt.Errorf("trace: no trace files in %s", dir)
	}
	parts := make([]*Trace, len(names))
	scope := func(i int) string { return fmt.Sprintf("rank %d", names[i].rank) }
	err = par.RanksTraced(len(names), workers, tr, "decode", scope, func(i int, sp *tracing.Span) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("trace: read canceled: %w", err)
			}
		}
		nr := names[i]
		f, err := os.Open(filepath.Join(dir, nr.name))
		if err != nil {
			return err
		}
		t, err := readOne(f, sp)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", nr.name, err)
		}
		if int(t.Rank) != nr.rank {
			return fmt.Errorf("%s contains rank %d", nr.name, t.Rank)
		}
		parts[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return Merge(parts...)
}
