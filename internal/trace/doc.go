// Package trace defines the runtime event model of MC-Checker and its
// on-disk encoding.
//
// The Profiler (paper §IV-B) logs four classes of MPI calls — one-sided
// communication and synchronization, datatype manipulation, general
// synchronization, and support routines — plus the loads and stores of
// statically selected variables. Each logged call or access is one Event;
// the per-rank event streams are the input of DN-Analyzer (paper §IV-C).
//
// Events carry communicator-relative ranks exactly as the application
// passed them; translating them to absolute (world) ranks using the logged
// communicator-creation events is the analyzer's preprocessing job
// (paper §IV-C-1a), reproduced in internal/core.
//
// The binary encoding is a compact per-rank stream with an interned string
// table for source file names; a human-readable String form is provided for
// debugging and reports.
package trace
