package trace

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/par"
)

// Salvage-mode decoding: recover the longest valid event prefix from a
// truncated or corrupted rank stream instead of failing outright. The
// strict ReadTrace stays the default; salvage is the degraded path the
// analyzer falls back to when strict reading fails, so that a crashed
// writer or a half-copied trace directory still yields a (partial)
// report.

// SalvageResult describes what ReadTraceSalvage recovered and why it
// stopped.
type SalvageResult struct {
	// Complete is true when the stream ended with a clean end record —
	// nothing was lost and the result equals strict ReadTrace.
	Complete bool
	// Events is the number of events recovered.
	Events int
	// Reason is the decode error that ended recovery ("" when Complete).
	Reason string
}

// ReadTraceSalvage decodes one rank stream, recovering the longest valid
// event prefix. It returns an error only when the stream header itself is
// unreadable (no rank can be attributed); any later decode error ends
// recovery and is reported in the SalvageResult instead. The returned
// trace always has dense sequence numbers and valid event kinds.
func ReadTraceSalvage(r io.Reader) (*Trace, SalvageResult, error) {
	rd := getReader(r)
	defer rd.release()
	var res SalvageResult
	rank, hint, err := rd.readHeader()
	if err != nil {
		return nil, res, err
	}
	t := &Trace{Rank: rank}
	preallocEvents(t, hint)

	stop := func(format string, args ...any) (*Trace, SalvageResult, error) {
		res.Events = len(t.Events)
		res.Reason = fmt.Sprintf(format, args...)
		return t, res, nil
	}
	for {
		tag, err := rd.r.ReadByte()
		if err != nil {
			return stop("stream ended without end record: %v", err)
		}
		switch tag {
		case recEnd:
			res.Complete = true
			res.Events = len(t.Events)
			return t, res, nil
		case recStrDef:
			if err := rd.readStrDef(); err != nil {
				return stop("bad string definition: %v", err)
			}
		case recEvent:
			ev, err := rd.readEvent(t.Rank, int64(len(t.Events)))
			if err != nil {
				return stop("event %d undecodable: %v", len(t.Events), err)
			}
			t.Events = append(t.Events, ev)
		default:
			return stop("unknown record tag %#x", tag)
		}
	}
}

// salvageMetrics are the trace layer's degradation counters.
type salvageMetrics struct {
	salvagedEvents   *obs.Counter
	truncatedStreams *obs.Counter
}

func newSalvageMetrics(reg *obs.Registry) *salvageMetrics {
	if reg == nil {
		return nil
	}
	return &salvageMetrics{
		salvagedEvents:   reg.Counter("mcchecker_trace_salvaged_events_total"),
		truncatedStreams: reg.Counter("mcchecker_trace_truncated_streams_total"),
	}
}

func (m *salvageMetrics) record(res SalvageResult) {
	if m == nil {
		return
	}
	m.salvagedEvents.Add(int64(res.Events))
	if !res.Complete {
		m.truncatedStreams.Inc()
	}
}

// ReadDirSalvage loads a trace directory in salvage mode: every readable
// prefix is recovered, unreadable or missing ranks become empty traces,
// and each degradation is described by one diagnostic note. The returned
// notes are empty exactly when the directory was read losslessly. It
// fails only when the directory holds no trace files at all.
func ReadDirSalvage(dir string, reg *obs.Registry) (*Set, []string, error) {
	return ReadDirSalvageTraced(dir, reg, nil)
}

// ReadDirSalvageContext is ReadDirSalvage with cooperative cancellation
// checked before each rank file decodes (nil ctx never cancels) — the
// form the serving watchdog uses for directory-path jobs.
func ReadDirSalvageContext(ctx context.Context, dir string, reg *obs.Registry) (*Set, []string, error) {
	return readDirSalvage(ctx, dir, decodeWorkers(), reg, nil)
}

// ReadDirSalvageTraced is ReadDirSalvage with each rank file's salvage
// recorded as a span on tr (track "decode", one lane per worker — or per
// rank in deterministic mode). Spans are annotated with the recovered
// event count and, when the file degraded, the salvage reason. Both reg
// and tr may be nil.
func ReadDirSalvageTraced(dir string, reg *obs.Registry, tr *tracing.Recorder) (*Set, []string, error) {
	return readDirSalvage(nil, dir, decodeWorkers(), reg, tr)
}

// salvageFile is one rank file's decoded-but-unmerged salvage outcome.
type salvageFile struct {
	t       *Trace
	res     SalvageResult
	openErr error // file could not be opened
	lostErr error // header unreadable, nothing attributable
}

// readDirSalvage is the parameterized body of ReadDirSalvage. Rank files
// salvage-decode concurrently on up to `workers` goroutines (they are
// independent streams, exactly like the strict readDirWith path); the
// merge — note order, duplicate and rank-mismatch policing, metric
// recording — runs serially in name order afterward, so the returned
// set, notes, and error are identical at any worker count.
func readDirSalvage(ctx context.Context, dir string, workers int, reg *obs.Registry, tr *tracing.Recorder) (*Set, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	m := newSalvageMetrics(reg)
	names := traceFileNames(entries)
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("trace: no trace files in %s", dir)
	}
	files := make([]salvageFile, len(names))
	scope := func(i int) string { return fmt.Sprintf("rank %d (salvage)", names[i].rank) }
	err = par.RanksTraced(len(names), workers, tr, "decode", scope, func(i int, sp *tracing.Span) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("trace: salvage canceled: %w", err)
			}
		}
		nr := names[i]
		f, err := os.Open(filepath.Join(dir, nr.name))
		if err != nil {
			files[i].openErr = err
			sp.Annotate("outcome", "unreadable")
			return nil
		}
		t, res, err := ReadTraceSalvage(f)
		f.Close()
		if err != nil {
			files[i].lostErr = err
			sp.Annotate("outcome", "lost")
			return nil
		}
		files[i].t, files[i].res = t, res
		if !res.Complete {
			sp.Annotate("reason", res.Reason)
		}
		if sp != nil {
			sp.Annotate("events", strconv.Itoa(res.Events))
			sp.Annotate("complete", strconv.FormatBool(res.Complete))
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	var notes []string
	byRank := map[int32]*Trace{}
	maxRank := int32(-1)
	for i, nr := range names {
		if int32(nr.rank) > maxRank {
			maxRank = int32(nr.rank)
		}
		fr := &files[i]
		switch {
		case fr.openErr != nil:
			notes = append(notes, fmt.Sprintf("%s: unreadable: %v", nr.name, fr.openErr))
			continue
		case fr.lostErr != nil:
			notes = append(notes, fmt.Sprintf("%s: lost entirely: %v", nr.name, fr.lostErr))
			continue
		case int(fr.t.Rank) != nr.rank:
			notes = append(notes, fmt.Sprintf("%s: header claims rank %d; file ignored", nr.name, fr.t.Rank))
			continue
		case byRank[fr.t.Rank] != nil:
			notes = append(notes, fmt.Sprintf("%s: duplicate of rank %d; file ignored", nr.name, fr.t.Rank))
			continue
		}
		m.record(fr.res)
		if !fr.res.Complete {
			notes = append(notes, fmt.Sprintf("%s: truncated, salvaged %d-event prefix (%s)",
				nr.name, fr.res.Events, fr.res.Reason))
		}
		byRank[fr.t.Rank] = fr.t
	}
	if len(byRank) == 0 {
		return nil, notes, fmt.Errorf("trace: no salvageable trace files in %s", dir)
	}
	set := NewSet(int(maxRank + 1))
	for r := int32(0); r <= maxRank; r++ {
		if t := byRank[r]; t != nil {
			set.Traces[r] = t
		} else {
			notes = append(notes, fmt.Sprintf("rank %d: no events recovered", r))
		}
	}
	if err := set.Validate(); err != nil {
		return nil, notes, fmt.Errorf("trace: salvaged set invalid: %w", err)
	}
	return set, notes, nil
}

// EncodeTrace renders one rank's trace in the binary stream format, with
// the event count hinted in the header so decoders preallocate.
func EncodeTrace(t *Trace) ([]byte, error) {
	var buf bytes.Buffer
	w, err := NewWriterHint(&buf, t.Rank, len(t.Events))
	if err != nil {
		return nil, err
	}
	for i := range t.Events {
		w.Emit(t.Events[i])
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ApplyTruncFaults applies a plan's trace-truncation faults to an
// in-memory set: each affected rank's trace is encoded, cut to the
// planned byte fraction, and salvage-decoded back, exactly as if the
// on-disk file had been truncated. It returns the degraded set and one
// note per truncated rank; a plan without truncation faults returns the
// set unchanged.
func ApplyTruncFaults(s *Set, plan *faults.Plan, reg *obs.Registry) (*Set, []string, error) {
	if plan == nil || len(plan.Truncs) == 0 {
		return s, nil, nil
	}
	m := newSalvageMetrics(reg)
	var notes []string
	out := &Set{Traces: make([]*Trace, len(s.Traces))}
	for i, t := range s.Traces {
		frac, ok := plan.TruncFor(int(t.Rank))
		if !ok || frac >= 1 {
			out.Traces[i] = t
			continue
		}
		data, err := EncodeTrace(t)
		if err != nil {
			return nil, notes, fmt.Errorf("trace: encoding rank %d for truncation fault: %w", t.Rank, err)
		}
		cut := faults.TruncateBytes(data, frac)
		nt, res, err := ReadTraceSalvage(bytes.NewReader(cut))
		if err != nil {
			// Even the header was cut away: the rank contributes nothing.
			nt = &Trace{Rank: t.Rank}
			res = SalvageResult{Reason: err.Error()}
		}
		m.record(res)
		notes = append(notes, fmt.Sprintf(
			"rank %d: trace truncated to %d of %d bytes, salvaged %d of %d events",
			t.Rank, len(cut), len(data), len(nt.Events), len(t.Events)))
		out.Traces[i] = nt
	}
	if err := out.Validate(); err != nil {
		return nil, notes, fmt.Errorf("trace: truncated set invalid: %w", err)
	}
	return out, notes, nil
}
