package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSet(3)
	for r := range s.Traces {
		s.Traces[r].Events = sampleEvents(int32(r), 40, rng)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ranks() != 3 || got.TotalEvents() != 120 {
		t.Fatalf("ranks=%d events=%d", got.Ranks(), got.TotalEvents())
	}
	for r := range s.Traces {
		for i := range s.Traces[r].Events {
			a := normalize(s.Traces[r].Events[i])
			b := normalize(got.Traces[r].Events[i])
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("rank %d event %d:\n got %#v\nwant %#v", r, i, b, a)
			}
		}
	}
}

func TestJSONLHumanReadable(t *testing.T) {
	s := NewSet(1)
	s.Traces[0].Events = []Event{{
		Kind: KindPut, Rank: 0, Seq: 0, Win: 1, Target: 2,
		AccOp: OpSum, Lock: LockShared, File: "x.go", Line: 7,
	}}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, s); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, want := range []string{`"kind":"Put"`, `"accop":"SUM"`, `"lock":"shared"`, `"file":"x.go"`} {
		if !strings.Contains(line, want) {
			t.Errorf("jsonl missing %s:\n%s", want, line)
		}
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"NoSuchCall","rank":0,"seq":0}`)); err == nil {
		t.Error("unknown kind must error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{broken`)); err == nil {
		t.Error("malformed json must error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"Barrier","rank":0,"seq":5}`)); err == nil {
		t.Error("non-dense seq must fail validation")
	}
}

func TestJSONLEmpty(t *testing.T) {
	got, err := ReadJSONL(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if got.Ranks() != 0 {
		t.Errorf("ranks = %d", got.Ranks())
	}
}
