package trace

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// writeSalvageCorpus populates dir with ranks ranks, truncating every
// third file and leaving every seventh out entirely, and returns the rank
// count actually written.
func writeSalvageCorpus(t *testing.T, dir string, ranks int) {
	t.Helper()
	for r := 0; r < ranks; r++ {
		if r%7 == 5 {
			continue // missing rank
		}
		data, _ := buildTrace(t, int32(r), 30+r, int64(r+1))
		if r%3 == 1 {
			data = data[:len(data)*2/3] // truncated rank
		}
		if err := os.WriteFile(filepath.Join(dir, FileName(int32(r))), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReadDirSalvageConcurrentMatchesSerial pins the salvage refactor's
// contract: decoding rank files on many workers yields byte-identical
// sets and note lists to the serial pass, damage and all.
func TestReadDirSalvageConcurrentMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	writeSalvageCorpus(t, dir, 24)

	serialSet, serialNotes, err := readDirSalvage(nil, dir, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialNotes) == 0 {
		t.Fatal("corpus produced no degradation notes; test is vacuous")
	}
	for _, workers := range []int{2, 4, 16} {
		set, notes, err := readDirSalvage(nil, dir, workers, nil, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(notes, serialNotes) {
			t.Fatalf("workers=%d: notes diverge\nserial: %v\nparallel: %v", workers, serialNotes, notes)
		}
		if set.Ranks() != serialSet.Ranks() {
			t.Fatalf("workers=%d: ranks = %d, want %d", workers, set.Ranks(), serialSet.Ranks())
		}
		for r := range set.Traces {
			if !reflect.DeepEqual(set.Traces[r].Events, serialSet.Traces[r].Events) {
				t.Fatalf("workers=%d: rank %d events diverge", workers, r)
			}
		}
	}
}

// TestReadDirSalvageConcurrentMetrics checks the salvage counters are
// recorded exactly once per accepted file regardless of worker count.
func TestReadDirSalvageConcurrentMetrics(t *testing.T) {
	dir := t.TempDir()
	writeSalvageCorpus(t, dir, 14)
	counts := map[int]int64{}
	for _, workers := range []int{1, 8} {
		reg := obs.NewRegistry()
		if _, _, err := readDirSalvage(nil, dir, workers, reg, nil); err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		counts[workers] = snap.CounterValue("mcchecker_trace_truncated_streams_total")
	}
	if counts[1] == 0 || counts[1] != counts[8] {
		t.Fatalf("truncated-stream counts diverge across workers: %v", counts)
	}
}

func TestReadDirSalvageCanceled(t *testing.T) {
	dir := t.TempDir()
	writeSalvageCorpus(t, dir, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ReadDirSalvageContext(ctx, dir, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("salvage under canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestReadDirContextCanceled(t *testing.T) {
	dir := t.TempDir()
	for r := int32(0); r < 3; r++ {
		data, _ := buildTrace(t, r, 10, int64(r+1))
		if err := os.WriteFile(filepath.Join(dir, FileName(r)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReadDirContext(ctx, dir); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadDirContext under canceled ctx: err = %v, want context.Canceled", err)
	}
	set, err := ReadDirContext(context.Background(), dir)
	if err != nil {
		t.Fatalf("ReadDirContext with live ctx: %v", err)
	}
	if set.Ranks() != 3 {
		t.Fatalf("ranks = %d, want 3", set.Ranks())
	}
}
