package trace

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(3)
	if s.Ranks() != 3 || s.TotalEvents() != 0 {
		t.Fatalf("fresh set: ranks=%d events=%d", s.Ranks(), s.TotalEvents())
	}
	s.Traces[1].Events = append(s.Traces[1].Events, Event{Kind: KindBarrier, Rank: 1, Seq: 0})
	if s.TotalEvents() != 1 {
		t.Error("TotalEvents wrong")
	}
	ev := s.Get(ID{Rank: 1, Seq: 0})
	if ev.Kind != KindBarrier {
		t.Error("Get returned wrong event")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSetValidateCatchesCorruption(t *testing.T) {
	s := NewSet(2)
	s.Traces[0].Events = []Event{{Kind: KindBarrier, Rank: 0, Seq: 1}} // bad seq
	if s.Validate() == nil {
		t.Error("expected seq error")
	}
	s = NewSet(2)
	s.Traces[0].Events = []Event{{Kind: KindBarrier, Rank: 1, Seq: 0}} // bad rank
	if s.Validate() == nil {
		t.Error("expected rank error")
	}
	s = NewSet(1)
	s.Traces[0].Events = []Event{{Kind: KindInvalid, Rank: 0, Seq: 0}}
	if s.Validate() == nil {
		t.Error("expected kind error")
	}
}

func TestMemorySinkConcurrent(t *testing.T) {
	sink := NewMemorySink()
	var wg sync.WaitGroup
	const ranks, per = 8, 100
	for r := int32(0); r < ranks; r++ {
		wg.Add(1)
		go func(r int32) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sink.Emit(Event{Kind: KindLoad, Rank: r, Seq: int64(i), Addr: uint64(i)})
			}
		}(r)
	}
	wg.Wait()
	s := sink.Set()
	if s.Ranks() != ranks || s.TotalEvents() != ranks*per {
		t.Fatalf("ranks=%d events=%d", s.Ranks(), s.TotalEvents())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-rank order preserved.
	for i, ev := range s.Traces[3].Events {
		if ev.Addr != uint64(i) {
			t.Fatalf("rank 3 event %d addr=%d", i, ev.Addr)
		}
	}
}

func TestCountingSink(t *testing.T) {
	c := NewCountingSink(nil)
	for _, k := range []Kind{KindLoad, KindStore, KindPut, KindWinFence, KindSend, KindBarrier, KindTypeCreate, KindWaitReq} {
		c.Emit(Event{Kind: k})
	}
	st := c.Stats()
	if st.LoadStore != 2 || st.RMAComm != 1 || st.RMASync != 1 || st.P2P != 2 || st.Collect != 1 || st.Other != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Total() != 8 || st.MPIEvents() != 6 {
		t.Errorf("totals: %d %d", st.Total(), st.MPIEvents())
	}
	// Wrapping another sink forwards events.
	mem := NewMemorySink()
	c2 := NewCountingSink(mem)
	c2.Emit(Event{Kind: KindBarrier, Rank: 0, Seq: 0})
	if mem.Set().TotalEvents() != 1 {
		t.Error("inner sink did not receive event")
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(&Trace{Rank: 0}, &Trace{Rank: 0}); err == nil {
		t.Error("duplicate rank must error")
	}
	if _, err := Merge(&Trace{Rank: 1}); err == nil {
		t.Error("missing rank 0 must error")
	}
	s, err := Merge(&Trace{Rank: 1}, &Trace{Rank: 0})
	if err != nil || s.Ranks() != 2 {
		t.Errorf("merge failed: %v", err)
	}
}

func TestWriteReadDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	rng := rand.New(rand.NewSource(2))
	s := NewSet(4)
	for r := range s.Traces {
		s.Traces[r].Events = sampleEvents(int32(r), 50, rng)
	}
	if err := WriteDir(dir, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ranks() != 4 || got.TotalEvents() != 200 {
		t.Fatalf("ranks=%d events=%d", got.Ranks(), got.TotalEvents())
	}
	for r := range s.Traces {
		for i := range s.Traces[r].Events {
			if !reflect.DeepEqual(normalize(s.Traces[r].Events[i]), normalize(got.Traces[r].Events[i])) {
				t.Fatalf("rank %d event %d differs", r, i)
			}
		}
	}
}

func TestReadDirEmpty(t *testing.T) {
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Error("empty dir must error")
	}
}

func TestFileSink(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewFileSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := int32(0); r < 4; r++ {
		wg.Add(1)
		go func(r int32) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				sink.Emit(Event{Kind: KindStore, Rank: r, Seq: int64(i), Addr: uint64(r*1000 + int32(i))})
			}
		}(r)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ranks() != 4 || s.TotalEvents() != 100 {
		t.Fatalf("ranks=%d events=%d", s.Ranks(), s.TotalEvents())
	}
	if s.Traces[2].Events[10].Addr != 2010 {
		t.Error("file sink mangled event order")
	}
}

func TestSortedKinds(t *testing.T) {
	s := NewSet(1)
	s.Traces[0].Events = []Event{
		{Kind: KindStore, Rank: 0, Seq: 0},
		{Kind: KindLoad, Rank: 0, Seq: 1},
		{Kind: KindStore, Rank: 0, Seq: 2},
	}
	got := s.SortedKinds()
	want := []Kind{KindLoad, KindStore}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKinds = %v, want %v", got, want)
	}
}
