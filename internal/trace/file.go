package trace

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs/tracing"
)

// Trace files are named trace.<rank>.bin inside a trace directory, one per
// rank, mirroring the paper's per-process local trace files.

// FileName returns the trace file name for a rank.
func FileName(rank int32) string { return fmt.Sprintf("trace.%d.bin", rank) }

// WriteDir writes each rank's trace into dir (created if needed).
func WriteDir(dir string, s *Set) error {
	return WriteDirObs(dir, s, nil)
}

// ReadDir loads all trace.<rank>.bin files from dir into a Set. All ranks
// [0, n) must be present. Rank files are independent streams and decode
// concurrently (one worker per processor); the assembled Set and any
// error are identical to a serial read.
func ReadDir(dir string) (*Set, error) {
	return ReadDirContext(nil, dir)
}

// ReadDirContext is ReadDir with cooperative cancellation: ctx is checked
// before each rank file decodes, so a serving watchdog can abandon the
// read of a large or slow trace directory without killing the process. A
// nil ctx never cancels.
func ReadDirContext(ctx context.Context, dir string) (*Set, error) {
	return readDirWith(ctx, dir, decodeWorkers(), nil, func(f *os.File, _ *tracing.Span) (*Trace, error) { return ReadTrace(f) })
}

// nameRank pairs a trace file name with the rank its name claims.
type nameRank struct {
	name string
	rank int
}

// traceFileNames filters and sorts the trace.<rank>.bin entries of a
// directory listing.
func traceFileNames(entries []os.DirEntry) []nameRank {
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "trace.") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var out []nameRank
	for _, name := range names {
		rankStr := strings.TrimSuffix(strings.TrimPrefix(name, "trace."), ".bin")
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			continue // not a trace file
		}
		out = append(out, nameRank{name: name, rank: rank})
	}
	return out
}

// FileSink is a Sink that writes each rank's events directly to its trace
// file as they are emitted — the paper's Profiler "logs the runtime events
// into the local disk independently for each process" (§VII-B). Each rank
// has its own writer and lock, so ranks do not contend on the hot path;
// the sink-level lock guards only writer creation.
type FileSink struct {
	dir     string
	mu      sync.RWMutex // guards the writers map structure
	writers map[int32]*fileWriter
	errOnce sync.Once
	err     error
}

type fileWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *Writer
}

// NewFileSink creates dir (if needed) and returns a sink writing into it.
func NewFileSink(dir string) (*FileSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileSink{dir: dir, writers: make(map[int32]*fileWriter)}, nil
}

func (s *FileSink) writer(rank int32) (*fileWriter, error) {
	s.mu.RLock()
	fw, ok := s.writers[rank]
	s.mu.RUnlock()
	if ok {
		return fw, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if fw, ok = s.writers[rank]; ok {
		return fw, nil
	}
	f, err := os.Create(filepath.Join(s.dir, FileName(rank)))
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, rank)
	if err != nil {
		f.Close()
		return nil, err
	}
	fw = &fileWriter{f: f, w: w}
	s.writers[rank] = fw
	return fw, nil
}

// Emit implements Sink. I/O errors are sticky and surfaced by Close.
func (s *FileSink) Emit(ev Event) {
	fw, err := s.writer(ev.Rank)
	if err != nil {
		s.errOnce.Do(func() { s.err = err })
		return
	}
	fw.mu.Lock()
	fw.w.Emit(ev)
	fw.mu.Unlock()
}

// Err returns the first error recorded so far by the sink or any of its
// per-rank writers, without closing anything. Writer errors are sticky
// (Emit no-ops once a write fails), so run paths should surface Err at
// every close site: a failed trace write must become a visible warning,
// not silent data loss.
func (s *FileSink) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.err != nil {
		return s.err
	}
	ranks := make([]int32, 0, len(s.writers))
	for r := range s.writers {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	for _, r := range ranks {
		fw := s.writers[r]
		fw.mu.Lock()
		err := fw.w.Err()
		fw.mu.Unlock()
		if err != nil {
			return fmt.Errorf("trace: rank %d: %w", r, err)
		}
	}
	return nil
}

// Close flushes and closes all per-rank files, returning the first error
// encountered during emission or closing.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	first := s.err
	for _, fw := range s.writers {
		fw.mu.Lock()
		if err := fw.w.Close(); err != nil && first == nil {
			first = err
		}
		if err := fw.f.Close(); err != nil && first == nil {
			first = err
		}
		fw.mu.Unlock()
	}
	s.writers = make(map[int32]*fileWriter)
	return first
}
