package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/memory"
)

func sampleEvents(rank int32, n int, rng *rand.Rand) []Event {
	kinds := []Kind{KindLoad, KindStore, KindPut, KindGet, KindAccumulate,
		KindWinFence, KindWinLock, KindWinUnlock, KindSend, KindRecv,
		KindBarrier, KindBcast, KindCommCreate, KindTypeCreate, KindWinCreate}
	files := []string{"/src/app.go", "/src/lib/halo.go", "/src/app.go", ""}
	evs := make([]Event, n)
	for i := range evs {
		k := kinds[rng.Intn(len(kinds))]
		ev := Event{
			Kind: k, Rank: rank, Seq: int64(i),
			File: files[rng.Intn(len(files))], Line: int32(rng.Intn(500)),
			Comm: int32(rng.Intn(3)), Peer: int32(rng.Intn(8)), Tag: int32(rng.Intn(100)),
			Req: int32(rng.Intn(50)), Win: int32(rng.Intn(4)), Target: int32(rng.Intn(8)),
			Lock: LockType(rng.Intn(3)), AccOp: AccOp(rng.Intn(6)),
			OriginAddr: rng.Uint64() >> 16, OriginType: TypeInt32, OriginCount: int32(rng.Intn(1000)),
			TargetDisp: uint64(rng.Intn(4096)), TargetType: TypeFloat64, TargetCount: int32(rng.Intn(1000)),
			Assert: int32(rng.Intn(4)), Addr: rng.Uint64() >> 20, Size: uint64(rng.Intn(64)),
		}
		if k == KindTypeCreate {
			ev.TypeID = TypeUserBase + int32(rng.Intn(10))
			ev.TypeMap = memory.DataMap{
				Segments: []memory.Segment{{Disp: 0, Len: 4}, {Disp: 12, Len: 4}},
				Extent:   16,
			}
		}
		if k == KindCommCreate {
			ev.Members = []int32{0, 2, 5}
		}
		if k == KindWinCreate {
			ev.WinBase = 0x10000
			ev.WinSize = 8192
			ev.DispUnit = 8
		}
		evs[i] = ev
	}
	return evs
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	evs := sampleEvents(7, 200, rng)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		w.Emit(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != 7 {
		t.Fatalf("rank = %d", got.Rank)
	}
	if len(got.Events) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got.Events), len(evs))
	}
	for i := range evs {
		if !reflect.DeepEqual(normalize(evs[i]), normalize(got.Events[i])) {
			t.Fatalf("event %d mismatch:\n got %#v\nwant %#v", i, got.Events[i], evs[i])
		}
	}
}

// normalize maps nil and empty slices to a canonical form for comparison.
func normalize(ev Event) Event {
	if len(ev.TypeMap.Segments) == 0 {
		ev.TypeMap.Segments = nil
	}
	if len(ev.Members) == 0 {
		ev.Members = nil
	}
	return ev
}

func TestCodecAutoStamp(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 3)
	w.Emit(Event{Kind: KindBarrier}) // rank/seq zero: stamped
	w.Emit(Event{Kind: KindBarrier, Rank: 3, Seq: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events[0].Rank != 3 || got.Events[0].Seq != 0 || got.Events[1].Seq != 1 {
		t.Errorf("stamping wrong: %+v", got.Events[:2])
	}
}

func TestCodecRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.Emit(Event{Kind: KindBarrier, Rank: 0, Seq: 5})
	if w.Err() == nil {
		t.Error("expected out-of-order error")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("MCCT\x63\x00\x00"))); err == nil {
		t.Error("expected error for bad version")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.Emit(Event{Kind: KindBarrier})
	_ = w.Close()
	data := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("expected error for truncated stream")
	}
}

func TestStringInterningSharesTable(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	for i := 0; i < 100; i++ {
		w.Emit(Event{Kind: KindLoad, Rank: 0, Seq: int64(i), File: "/very/long/path/to/the/source/file.go", Line: int32(i)})
	}
	_ = w.Close()
	// Each event encodes ~25 mostly-zero varint fields (~30 bytes); without
	// interning the 38-byte path would add ~38 bytes per event on top.
	if buf.Len() > 100*40 {
		t.Errorf("stream is %d bytes; interning appears broken", buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events[99].File != "/very/long/path/to/the/source/file.go" {
		t.Error("interned string not restored")
	}
}
