package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReadTrace hardens the binary decoder against corrupt and adversarial
// inputs: it must return an error or a valid trace, never panic and never
// allocate unboundedly.
func FuzzReadTrace(f *testing.F) {
	// Seed with valid streams of growing complexity.
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 10, 100} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 3)
		if err != nil {
			f.Fatal(err)
		}
		for _, ev := range sampleEvents(3, n, rng) {
			w.Emit(ev)
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("MCCT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded trace must be internally consistent.
		for i := range tr.Events {
			ev := &tr.Events[i]
			if ev.Rank != tr.Rank || ev.Seq != int64(i) {
				t.Fatalf("inconsistent decode: event %d = %v", i, ev.ID())
			}
			if ev.Kind == KindInvalid || ev.Kind >= kindMax {
				t.Fatalf("invalid kind decoded: %d", ev.Kind)
			}
		}
	})
}

// FuzzRoundTrip: any event assembled from fuzzed fields must survive
// encode/decode unchanged.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(3), int32(1), int32(2), int64(99), uint64(0x1000), "file.go")
	f.Fuzz(func(t *testing.T, kind uint8, comm, target int32, disp int64, addr uint64, file string) {
		k := Kind(kind)
		if k == KindInvalid || k >= kindMax {
			return
		}
		if disp < 0 {
			disp = -disp
		}
		ev := Event{
			Kind: k, Rank: 5, Seq: 0, File: file, Comm: comm, Target: target,
			TargetDisp: uint64(disp), Addr: addr,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 5)
		if err != nil {
			t.Fatal(err)
		}
		w.Emit(ev)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(got.Events) != 1 {
			t.Fatalf("decoded %d events", len(got.Events))
		}
		d := got.Events[0]
		if d.Kind != k || d.Comm != comm || d.Target != target ||
			d.TargetDisp != uint64(disp) || d.Addr != addr || d.File != file {
			t.Fatalf("mismatch: %+v vs input", d)
		}
	})
}
