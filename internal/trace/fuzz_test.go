package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReadTrace hardens the binary decoder against corrupt and adversarial
// inputs: it must return an error or a valid trace, never panic and never
// allocate unboundedly.
func FuzzReadTrace(f *testing.F) {
	// Seed with valid streams of growing complexity.
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 10, 100} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 3)
		if err != nil {
			f.Fatal(err)
		}
		for _, ev := range sampleEvents(3, n, rng) {
			w.Emit(ev)
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("MCCT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded trace must be internally consistent.
		for i := range tr.Events {
			ev := &tr.Events[i]
			if ev.Rank != tr.Rank || ev.Seq != int64(i) {
				t.Fatalf("inconsistent decode: event %d = %v", i, ev.ID())
			}
			if ev.Kind == KindInvalid || ev.Kind >= kindMax {
				t.Fatalf("invalid kind decoded: %d", ev.Kind)
			}
		}
	})
}

// FuzzReadTraceSalvage hardens the salvage decoder: it must never panic,
// and whatever it recovers must be a valid (possibly empty) event prefix
// with dense sequence numbers and legal kinds. On any stream strict
// ReadTrace accepts, salvage must agree exactly and report completeness.
func FuzzReadTraceSalvage(f *testing.F) {
	rng := rand.New(rand.NewSource(43))
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3)
	if err != nil {
		f.Fatal(err)
	}
	for _, ev := range sampleEvents(3, 40, rng) {
		w.Emit(ev)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	golden := buf.Bytes()
	f.Add(golden)
	for _, cut := range []int{0, 1, 5, len(golden) / 2, len(golden) - 1} {
		f.Add(golden[:cut])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, res, err := ReadTraceSalvage(bytes.NewReader(data))
		strict, serr := ReadTrace(bytes.NewReader(data))
		if err != nil {
			// Salvage gives up only when the header itself is unreadable —
			// then strict decoding must have failed too.
			if serr == nil {
				t.Fatalf("salvage rejected a stream strict decoding accepts")
			}
			return
		}
		if res.Events != len(tr.Events) {
			t.Fatalf("result reports %d events, trace holds %d", res.Events, len(tr.Events))
		}
		if res.Complete == (res.Reason != "") {
			t.Fatalf("inconsistent result: complete=%v reason=%q", res.Complete, res.Reason)
		}
		for i := range tr.Events {
			ev := &tr.Events[i]
			if ev.Rank != tr.Rank || ev.Seq != int64(i) {
				t.Fatalf("invalid prefix: event %d = %v", i, ev.ID())
			}
			if ev.Kind == KindInvalid || ev.Kind >= kindMax {
				t.Fatalf("invalid kind recovered: %d", ev.Kind)
			}
		}
		if serr == nil {
			if !res.Complete {
				t.Fatalf("strict decoding succeeded but salvage reports truncation: %q", res.Reason)
			}
			if len(tr.Events) != len(strict.Events) {
				t.Fatalf("salvage recovered %d events, strict %d", len(tr.Events), len(strict.Events))
			}
		}
	})
}

// TestSalvageEveryTruncationBoundary cuts a golden trace at every byte
// offset — every header and record boundary included — and checks that
// salvage recovers a correct, monotonically growing event prefix.
func TestSalvageEveryTruncationBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	evs := sampleEvents(2, 25, rng)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		w.Emit(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	golden := buf.Bytes()

	full, res, err := ReadTraceSalvage(bytes.NewReader(golden))
	if err != nil || !res.Complete || len(full.Events) != len(evs) {
		t.Fatalf("golden trace: recovered %d/%d events, complete=%v, err=%v",
			len(full.Events), len(evs), res.Complete, err)
	}

	prev, headerDone := 0, false
	for cut := 0; cut <= len(golden); cut++ {
		tr, res, err := ReadTraceSalvage(bytes.NewReader(golden[:cut]))
		if err != nil {
			// Only an unreadable header is fatal, and once any cut clears
			// the header, every longer cut must too.
			if headerDone {
				t.Fatalf("cut %d: header error after a shorter cut succeeded: %v", cut, err)
			}
			continue
		}
		headerDone = true
		if cut < len(golden) && res.Complete {
			t.Fatalf("cut %d: truncated stream claims completeness", cut)
		}
		if cut == len(golden) && !res.Complete {
			t.Fatalf("full stream not recognized as complete: %q", res.Reason)
		}
		if len(tr.Events) < prev {
			t.Fatalf("cut %d: recovered %d events, shorter cut gave %d", cut, len(tr.Events), prev)
		}
		prev = len(tr.Events)
		for i := range tr.Events {
			if tr.Events[i].ID() != full.Events[i].ID() {
				t.Fatalf("cut %d: event %d = %v, want %v", cut, i, tr.Events[i].ID(), full.Events[i].ID())
			}
		}
	}
	if !headerDone {
		t.Fatal("no cut cleared the header")
	}
}

// FuzzRoundTrip: any event assembled from fuzzed fields must survive
// encode/decode unchanged.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(3), int32(1), int32(2), int64(99), uint64(0x1000), "file.go")
	f.Fuzz(func(t *testing.T, kind uint8, comm, target int32, disp int64, addr uint64, file string) {
		k := Kind(kind)
		if k == KindInvalid || k >= kindMax {
			return
		}
		if disp < 0 {
			disp = -disp
		}
		ev := Event{
			Kind: k, Rank: 5, Seq: 0, File: file, Comm: comm, Target: target,
			TargetDisp: uint64(disp), Addr: addr,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 5)
		if err != nil {
			t.Fatal(err)
		}
		w.Emit(ev)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(got.Events) != 1 {
			t.Fatalf("decoded %d events", len(got.Events))
		}
		d := got.Events[0]
		if d.Kind != k || d.Comm != comm || d.Target != target ||
			d.TargetDisp != uint64(disp) || d.Addr != addr || d.File != file {
			t.Fatalf("mismatch: %+v vs input", d)
		}
	})
}
