package trace

import (
	"testing"

	"repro/internal/obs"
)

func obsRoundTripSet() *Set {
	s := NewMemorySink()
	for rank := int32(0); rank < 2; rank++ {
		s.Emit(Event{Kind: KindWinCreate, Rank: rank, Seq: 0, Win: 1})
		s.Emit(Event{Kind: KindStore, Rank: rank, Seq: 1, Addr: 64, Size: 8,
			File: "app.go", Line: 10, Func: "app.body"})
		s.Emit(Event{Kind: KindWinFree, Rank: rank, Seq: 2, Win: 1})
	}
	return s.Set()
}

func TestWriteReadDirObsCounters(t *testing.T) {
	set := obsRoundTripSet()
	dir := t.TempDir()

	wreg := obs.NewRegistry()
	if err := WriteDirObs(dir, set, wreg); err != nil {
		t.Fatal(err)
	}
	wsnap := wreg.Snapshot()
	events := int64(set.TotalEvents())
	if got := wsnap.CounterValue("mcchecker_trace_encoded_events_total"); got != events {
		t.Errorf("encoded events = %d, want %d", got, events)
	}
	encBytes := wsnap.CounterValue("mcchecker_trace_encoded_bytes_total")
	if encBytes <= 0 {
		t.Errorf("encoded bytes = %d, want > 0", encBytes)
	}

	rreg := obs.NewRegistry()
	got, err := ReadDirObs(dir, rreg)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalEvents() != set.TotalEvents() {
		t.Fatalf("round trip lost events: %d != %d", got.TotalEvents(), set.TotalEvents())
	}
	rsnap := rreg.Snapshot()
	if n := rsnap.CounterValue("mcchecker_trace_decoded_events_total"); n != events {
		t.Errorf("decoded events = %d, want %d", n, events)
	}
	decBytes := rsnap.CounterValue("mcchecker_trace_decoded_bytes_total")
	if decBytes != encBytes {
		t.Errorf("decoded bytes = %d, encoded bytes = %d; should match", decBytes, encBytes)
	}
}

func TestReadDirObsNilRegistry(t *testing.T) {
	set := obsRoundTripSet()
	dir := t.TempDir()
	if err := WriteDirObs(dir, set, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDirObs(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalEvents() != set.TotalEvents() {
		t.Errorf("nil-registry round trip lost events: %d != %d", got.TotalEvents(), set.TotalEvents())
	}
}
