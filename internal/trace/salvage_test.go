package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
)

// buildTrace encodes n sample events for one rank.
func buildTrace(t *testing.T, rank int32, n int, seed int64) ([]byte, []Event) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	evs := sampleEvents(rank, n, rng)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, rank)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		w.Emit(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), evs
}

func TestReadDirSalvage(t *testing.T) {
	dir := t.TempDir()
	full, _ := buildTrace(t, 0, 20, 1)
	cutme, _ := buildTrace(t, 1, 20, 2)
	if err := os.WriteFile(filepath.Join(dir, FileName(0)), full, 0o644); err != nil {
		t.Fatal(err)
	}
	// Rank 1's file loses its second half; rank 2 is missing entirely but
	// rank 3 exists, so the set must still span ranks 0..3.
	if err := os.WriteFile(filepath.Join(dir, FileName(1)), cutme[:len(cutme)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	r3, _ := buildTrace(t, 3, 5, 3)
	if err := os.WriteFile(filepath.Join(dir, FileName(3)), r3, 0o644); err != nil {
		t.Fatal(err)
	}

	set, notes, err := ReadDirSalvage(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Traces) != 4 {
		t.Fatalf("set spans %d ranks, want 4", len(set.Traces))
	}
	if len(set.Traces[0].Events) != 20 {
		t.Fatalf("rank 0 lost events: %d", len(set.Traces[0].Events))
	}
	if n := len(set.Traces[1].Events); n == 0 || n >= 20 {
		t.Fatalf("rank 1 salvaged %d events, want a proper prefix", n)
	}
	if len(set.Traces[2].Events) != 0 {
		t.Fatalf("missing rank 2 should be empty, has %d events", len(set.Traces[2].Events))
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	wantNotes := []string{"trace.1.bin: truncated", "rank 2: no events recovered"}
	for _, want := range wantNotes {
		found := false
		for _, n := range notes {
			if bytes.Contains([]byte(n), []byte(want)) {
				found = true
			}
		}
		if !found {
			t.Fatalf("notes %v missing %q", notes, want)
		}
	}
}

func TestReadDirSalvageEmptyDir(t *testing.T) {
	if _, _, err := ReadDirSalvage(t.TempDir(), nil); err == nil {
		t.Fatal("want error for directory without trace files")
	}
}

func TestApplyTruncFaults(t *testing.T) {
	set := NewSet(2)
	rng := rand.New(rand.NewSource(4))
	for r := int32(0); r < 2; r++ {
		set.Traces[r].Events = sampleEvents(r, 30, rng)
	}
	plan := &faults.Plan{Seed: 1, Truncs: []faults.Trunc{{Rank: 1, Frac: 0.5}}}
	out, notes, err := ApplyTruncFaults(set, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Traces[0].Events) != 30 {
		t.Fatalf("untouched rank 0 has %d events", len(out.Traces[0].Events))
	}
	if n := len(out.Traces[1].Events); n == 0 || n >= 30 {
		t.Fatalf("rank 1 has %d events, want a proper prefix", n)
	}
	if len(notes) != 1 {
		t.Fatalf("want one note, got %v", notes)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// No truncation faults: the set passes through untouched.
	same, notes, err := ApplyTruncFaults(set, nil, nil)
	if err != nil || same != set || notes != nil {
		t.Fatalf("nil plan changed the set: %v %v", notes, err)
	}
}

// EncodeTrace must round-trip through the strict reader.
func TestEncodeTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := &Trace{Rank: 7, Events: sampleEvents(7, 15, rng)}
	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != 7 || len(got.Events) != 15 {
		t.Fatalf("round trip: rank %d, %d events", got.Rank, len(got.Events))
	}
}

// A failed write must be visible through FileSink.Err before Close — the
// run path warns on it instead of silently losing a rank's trace.
func TestFileSinkErrSurfacesWriteFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	s, err := NewFileSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Emit(Event{Kind: KindBarrier, Rank: 0})
	if err := s.Err(); err != nil {
		t.Fatalf("healthy sink reports %v", err)
	}
	// Removing the directory makes the next rank's file creation fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	s.Emit(Event{Kind: KindBarrier, Rank: 1})
	if err := s.Err(); err == nil {
		t.Fatal("sink swallowed the write failure")
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close must surface the failure too")
	}
}
