package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// toV1 rewrites a v2 stream as the v1 format: version byte 1, no
// event-count hint. Used to prove readers still accept pre-hint streams.
func toV1(t *testing.T, data []byte) []byte {
	t.Helper()
	if len(data) < 6 || string(data[:4]) != codecMagic || data[4] != codecVersion {
		t.Fatalf("not a v2 stream: % x", data[:6])
	}
	_, rankLen := binary.Varint(data[5:])
	if rankLen <= 0 {
		t.Fatal("bad rank varint")
	}
	_, hintLen := binary.Uvarint(data[5+rankLen:])
	if hintLen <= 0 {
		t.Fatal("bad hint uvarint")
	}
	out := append([]byte(nil), data[:4]...)
	out = append(out, codecVersionV1)
	out = append(out, data[5:5+rankLen]...)
	return append(out, data[5+rankLen+hintLen:]...)
}

func encodeSample(t *testing.T, rank int32, n int) (*Trace, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(rank)*1000 + int64(n)))
	tr := &Trace{Rank: rank, Events: sampleEvents(rank, n, rng)}
	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return tr, data
}

func eventsEqual(t *testing.T, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(normalize(got[i]), normalize(want[i])) {
			t.Fatalf("event %d mismatch:\n got %#v\nwant %#v", i, got[i], want[i])
		}
	}
}

// TestCodecV1StreamsStillDecode: the reader must accept the pre-hint
// format byte-for-byte, both strictly and in salvage mode.
func TestCodecV1StreamsStillDecode(t *testing.T) {
	want, v2 := encodeSample(t, 5, 120)
	v1 := toV1(t, v2)

	got, err := ReadTrace(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("strict v1 decode: %v", err)
	}
	if got.Rank != 5 {
		t.Fatalf("rank = %d", got.Rank)
	}
	eventsEqual(t, got.Events, want.Events)

	sv, res, err := ReadTraceSalvage(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("salvage v1 decode: %v", err)
	}
	if !res.Complete || res.Events != len(want.Events) {
		t.Fatalf("salvage result %+v on a complete v1 stream", res)
	}
	eventsEqual(t, sv.Events, want.Events)
}

// TestCodecSalvageTruncatedV1: truncating a v1 stream still yields a
// valid event prefix, like v2.
func TestCodecSalvageTruncatedV1(t *testing.T) {
	want, v2 := encodeSample(t, 2, 80)
	v1 := toV1(t, v2)
	for _, cut := range []int{len(v1) / 4, len(v1) / 2, len(v1) - 1} {
		got, res, err := ReadTraceSalvage(bytes.NewReader(v1[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if res.Complete {
			t.Fatalf("cut %d: truncated stream reported complete", cut)
		}
		if len(got.Events) > len(want.Events) {
			t.Fatalf("cut %d: salvaged %d events from an %d-event stream", cut, len(got.Events), len(want.Events))
		}
		eventsEqual(t, got.Events, want.Events[:len(got.Events)])
	}
}

// TestCodecHintMismatchTolerated: the count hint is advisory; streams
// carrying hints far above or below the actual event count decode fully.
func TestCodecHintMismatchTolerated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	evs := sampleEvents(0, 37, rng)
	for _, hint := range []int{0, 1, 37, 5000} {
		var buf bytes.Buffer
		w, err := NewWriterHint(&buf, 0, hint)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			w.Emit(ev)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("hint %d: %v", hint, err)
		}
		eventsEqual(t, got.Events, evs)
	}
}

// TestCodecHugeHintClamped: a hostile header hinting 2^40 events must not
// force a giant allocation; the hint is clamped and decode proceeds.
func TestCodecHugeHintClamped(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(codecMagic)
	buf.WriteByte(codecVersion)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], 0) // rank 0
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], 1<<40)
	buf.Write(tmp[:n])
	buf.WriteByte(recEnd)

	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 0 {
		t.Fatalf("decoded %d events from an empty stream", len(got.Events))
	}
	if cap(got.Events) > maxPreallocEvents {
		t.Fatalf("hint preallocated %d slots; clamp is %d", cap(got.Events), maxPreallocEvents)
	}
}

// TestDecodePoolReuseSequential: repeated decodes hit the context pool
// and keep producing identical results.
func TestDecodePoolReuseSequential(t *testing.T) {
	prev := SetDecodePool(true)
	defer SetDecodePool(prev)
	want, data := encodeSample(t, 3, 150)

	hits0, _ := DecodePoolStats()
	for i := 0; i < 10; i++ {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		eventsEqual(t, got.Events, want.Events)
	}
	hits1, _ := DecodePoolStats()
	if hits1 <= hits0 {
		t.Errorf("10 sequential decodes produced no pool hits (hits %d -> %d)", hits0, hits1)
	}
}

// TestDecodePoolOffEquivalence: disabling the pool must not change the
// decoded bytes in any way.
func TestDecodePoolOffEquivalence(t *testing.T) {
	want, data := encodeSample(t, 1, 90)
	prev := SetDecodePool(false)
	defer SetDecodePool(prev)
	for i := 0; i < 3; i++ {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		eventsEqual(t, got.Events, want.Events)
	}
}

// TestDecodePoolConcurrent exercises pooled decode contexts from many
// goroutines; run under -race this proves contexts are never shared.
func TestDecodePoolConcurrent(t *testing.T) {
	prev := SetDecodePool(true)
	defer SetDecodePool(prev)
	traces := make([]*Trace, 4)
	datas := make([][]byte, 4)
	for r := range traces {
		traces[r], datas[r] = encodeSample(t, int32(r), 60+10*r)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				r := (g + i) % len(traces)
				got, err := ReadTrace(bytes.NewReader(datas[r]))
				if err != nil {
					t.Error(err)
					return
				}
				if got.Rank != traces[r].Rank || len(got.Events) != len(traces[r].Events) {
					t.Errorf("goroutine %d: decoded rank %d with %d events, want rank %d with %d",
						g, got.Rank, len(got.Events), traces[r].Rank, len(traces[r].Events))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestReadDirMatchesSerialAssembly: the concurrent per-file decode of
// ReadDir assembles the same set a rank-by-rank strict read does.
func TestReadDirMatchesSerialAssembly(t *testing.T) {
	dir := t.TempDir()
	set := NewSet(6)
	rng := rand.New(rand.NewSource(77))
	for r := range set.Traces {
		set.Traces[r].Events = sampleEvents(int32(r), 40+7*r, rng)
	}
	if err := WriteDir(dir, set); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ranks() != set.Ranks() {
		t.Fatalf("got %d ranks, want %d", got.Ranks(), set.Ranks())
	}
	for r := range set.Traces {
		eventsEqual(t, got.Traces[r].Events, set.Traces[r].Events)
	}
}
