package explore

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/profiler"
)

// schedRunner builds the Runner for the planted schedule-dependent bug.
func schedRunner(t *testing.T, buggy bool) *Runner {
	t.Helper()
	bc := apps.ScheduleCases()[0]
	if bc.Name != "schedrace" {
		t.Fatalf("registry: first schedule case is %q, want schedrace", bc.Name)
	}
	body := bc.Buggy
	if !buggy {
		body = bc.Fixed
	}
	return &Runner{
		Body:  body,
		Ranks: bc.Ranks,
		Rel:   profiler.FromNames(bc.RelevantBuffers),
	}
}

// TestPlantedBugCleanOnDefaultSchedule is the precondition that makes
// exploration necessary: a single plain run of the buggy program (no
// plan at all, and the seed-0 identity schedule) finds nothing.
func TestPlantedBugCleanOnDefaultSchedule(t *testing.T) {
	r := schedRunner(t, true)
	for _, plan := range []*faults.Plan{nil, {Seed: 0}} {
		rep, err := r.Run(plan)
		if err != nil {
			t.Fatalf("Run(%v): %v", plan, err)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("Run(%v): default schedule found %d violations, want clean:\n%s",
				plan, len(rep.Violations), rep)
		}
	}
}

// TestEveryStrategyCatchesPlantedBug: each schedule strategy must expose
// the interleaving-dependent violation within a bounded schedule budget.
func TestEveryStrategyCatchesPlantedBug(t *testing.T) {
	budgets := map[string]int{
		"sweep": 32,
		"walk":  32,
		"pct":   32,
		// One delay step hits the load-bearing (origin, batch) pair with
		// probability 1/(ranks·maxBatch) per schedule, so it needs more.
		"delay": 128,
	}
	for _, strat := range Strategies() {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := Explore(Config{
				Runner:    schedRunner(t, true),
				Strategy:  strat,
				Schedules: budgets[strat.Name()],
				Seed:      1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Distinct() != 1 {
				t.Fatalf("%s: found %d distinct violations in %d schedules, want exactly 1",
					strat.Name(), res.Distinct(), res.Schedules)
			}
			f := res.Findings[0]
			if !strings.Contains(f.Signature, "pending Get") {
				t.Errorf("%s: unexpected signature %q", strat.Name(), f.Signature)
			}
			// The finding must replay: the plan string round-trips through
			// the -faults DSL and reproduces the same signature.
			plan, err := faults.Parse(f.FirstPlan.String())
			if err != nil {
				t.Fatalf("parsing replay plan %q: %v", f.FirstPlan, err)
			}
			rep, err := schedRunner(t, true).Run(plan)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, v := range rep.Violations {
				found = found || v.Signature() == f.Signature
			}
			if !found {
				t.Errorf("%s: replaying %q did not reproduce %s", strat.Name(), f.FirstPlan, f.Signature)
			}
		})
	}
}

// TestFixedVariantCleanUnderEveryStrategy: the fixed program stays clean
// across the same sweeps that catch the buggy one.
func TestFixedVariantCleanUnderEveryStrategy(t *testing.T) {
	for _, strat := range Strategies() {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := Explore(Config{
				Runner:    schedRunner(t, false),
				Strategy:  strat,
				Schedules: 16,
				Seed:      1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Distinct() != 0 {
				t.Fatalf("%s: fixed variant produced %d findings:\n%+v",
					strat.Name(), res.Distinct(), res.Findings[0])
			}
		})
	}
}

// TestDedupAcrossManySchedules is the acceptance sweep: across ≥1000
// schedules the planted bug collapses to exactly one distinct violation,
// however many schedules trigger it.
func TestDedupAcrossManySchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-schedule sweep skipped in -short mode")
	}
	reg := obs.NewRegistry()
	r := schedRunner(t, true)
	r.Obs = reg
	res, err := Explore(Config{
		Runner:    r,
		Strategy:  Sweep{},
		Schedules: 1000,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedules != 1000 {
		t.Fatalf("completed %d schedules, want 1000", res.Schedules)
	}
	if res.Distinct() != 1 {
		t.Fatalf("found %d distinct violations, want 1 (dedup failed)", res.Distinct())
	}
	f := res.Findings[0]
	if f.Count < 100 {
		t.Errorf("signature seen in only %d/1000 schedules; the race should flip often", f.Count)
	}
	if got := reg.Counter("mcchecker_explore_schedules_total").Value(); got != 1000 {
		t.Errorf("obs schedules counter = %d, want 1000", got)
	}
	if got := reg.Gauge("mcchecker_explore_distinct_violations").Value(); got != 1 {
		t.Errorf("obs distinct gauge = %d, want 1", got)
	}
}

// TestFindingsIndependentOfJobs: the aggregate (signatures, counts,
// first-producing schedule, example) must not depend on worker count.
func TestFindingsIndependentOfJobs(t *testing.T) {
	run := func(jobs int) *Result {
		res, err := Explore(Config{
			Runner:    schedRunner(t, true),
			Strategy:  Sweep{},
			Schedules: 64,
			Jobs:      jobs,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, jobs := range []int{2, 8} {
		got := run(jobs)
		if got.Schedules != want.Schedules || got.Violating != want.Violating {
			t.Fatalf("jobs=%d: %d/%d schedules violating, want %d/%d",
				jobs, got.Violating, got.Schedules, want.Violating, want.Schedules)
		}
		if len(got.Findings) != len(want.Findings) {
			t.Fatalf("jobs=%d: %d findings, want %d", jobs, len(got.Findings), len(want.Findings))
		}
		for i, f := range got.Findings {
			w := want.Findings[i]
			if f.Signature != w.Signature || f.Count != w.Count ||
				f.FirstIndex != w.FirstIndex || f.FirstPlan.String() != w.FirstPlan.String() {
				t.Errorf("jobs=%d finding %d: {%s %d %d %s} differs from jobs=1 {%s %d %d %s}",
					jobs, i, f.Signature, f.Count, f.FirstIndex, f.FirstPlan,
					w.Signature, w.Count, w.FirstIndex, w.FirstPlan)
			}
		}
	}
}

// TestBudgetStopsFeedingSchedules: an already-expired budget admits no
// new schedules (in-flight ones would still finish and be counted).
func TestBudgetStopsFeedingSchedules(t *testing.T) {
	res, err := Explore(Config{
		Runner:    schedRunner(t, true),
		Strategy:  Sweep{},
		Schedules: 1000,
		Budget:    time.Nanosecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedules >= 1000 {
		t.Fatalf("budget of 1ns still completed all %d schedules", res.Schedules)
	}
}

// TestRegistrySweepDeterministic explores every registry app for a few
// schedules, twice, asserting no panics, no run failures, and a
// schedule-sweep aggregate that is identical between repetitions.
func TestRegistrySweepDeterministic(t *testing.T) {
	for _, bc := range apps.AllCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			t.Parallel()
			schedules := 3
			if bc.Ranks > 8 && testing.Short() {
				schedules = 2
			}
			sweep := func() []string {
				res, err := Explore(Config{
					Runner: &Runner{
						Body:  bc.Buggy,
						Ranks: bc.Ranks,
						Rel:   profiler.FromNames(bc.RelevantBuffers),
					},
					Strategy:  Sweep{},
					Schedules: schedules,
					Jobs:      2,
					Seed:      7,
				})
				if err != nil {
					t.Fatalf("explore %s: %v", bc.Name, err)
				}
				var sigs []string
				for _, f := range res.Findings {
					sigs = append(sigs, fmt.Sprintf("%s x%d first=%d", f.Signature, f.Count, f.FirstIndex))
				}
				return sigs
			}
			a, b := sweep(), sweep()
			if len(a) != len(b) {
				t.Fatalf("nondeterministic sweep: %d findings then %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("nondeterministic finding %d:\n  %s\n  %s", i, a[i], b[i])
				}
			}
		})
	}
}

// TestSoakInvariance: the soak harness accepts schedule-invariant apps
// and returns the first report.
func TestSoakInvariance(t *testing.T) {
	bc := apps.BugCases()[0] // emulate: deterministic violation on every schedule
	rep, err := Soak(&Runner{
		Body:  bc.Buggy,
		Ranks: bc.Ranks,
		Rel:   profiler.FromNames(bc.RelevantBuffers),
	}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("soak returned a clean report for the emulate bug")
	}
}

// TestSoakDetectsDivergence: schedrace is schedule-*dependent*, so a
// seed-varied soak over a flipping schedule must detect the divergence
// rather than average it away.
func TestSoakDetectsDivergence(t *testing.T) {
	_, err := Soak(schedRunner(t, true), &faults.Plan{Seed: 1, Reorder: true}, 16)
	if err == nil {
		t.Fatal("soak over a schedule-dependent bug reported invariance")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("unexpected soak error: %v", err)
	}
}

func TestParseStrategy(t *testing.T) {
	for _, name := range []string{"sweep", "walk", "pct", "delay"} {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Errorf("ParseStrategy(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ParseStrategy("dfs"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
}

// TestStrategyPlansDeterministic: a strategy's i-th plan is a pure
// function of (i, base, ranks).
func TestStrategyPlansDeterministic(t *testing.T) {
	for _, strat := range Strategies() {
		for i := 0; i < 8; i++ {
			a := strat.Plan(i, 42, 4).String()
			b := strat.Plan(i, 42, 4).String()
			if a != b {
				t.Errorf("%s: plan %d not deterministic: %q vs %q", strat.Name(), i, a, b)
			}
			if _, err := faults.Parse(a); err != nil {
				t.Errorf("%s: plan %d does not round-trip the DSL: %v", strat.Name(), i, err)
			}
		}
	}
}
