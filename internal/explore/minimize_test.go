package explore

import (
	"strings"
	"testing"

	"repro/internal/faults"
)

// TestDdminOneMinimal: ddmin on a synthetic predicate reduces to the
// exact load-bearing subset.
func TestDdminOneMinimal(t *testing.T) {
	atoms := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	needs := func(want ...string) func([]string) bool {
		return func(got []string) bool {
			have := map[string]bool{}
			for _, a := range got {
				have[a] = true
			}
			for _, w := range want {
				if !have[w] {
					return false
				}
			}
			return true
		}
	}
	cases := []struct {
		name string
		test func([]string) bool
		want string
	}{
		{"single", needs("c"), "c"},
		{"pair", needs("c", "f"), "c f"},
		{"ends", needs("a", "h"), "a h"},
		{"triple", needs("b", "d", "g"), "b d g"},
	}
	for _, tc := range cases {
		got := ddmin(append([]string(nil), atoms...), tc.test)
		if strings.Join(got, " ") != tc.want {
			t.Errorf("%s: ddmin = %v, want [%s]", tc.name, got, tc.want)
		}
	}
}

// TestMinimizeSchedule: a deliberately over-specified schedule plan that
// exposes the planted bug shrinks to fewer clauses, and the minimized
// plan string replays through the -faults DSL to the same signature.
func TestMinimizeSchedule(t *testing.T) {
	r := schedRunner(t, true)
	// delay=0@0 pushes rank 0's swap behind rank 1's in the load-bearing
	// batch, so this plan flips the race no matter what the other
	// clauses do; they are pure noise for ddmin to strip.
	plan, err := faults.Parse("seed=5,reorder,yield=25,chg=3,delay=0@0,delay=1@6")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("over-specified plan does not expose the bug; test premise broken")
	}
	sig := rep.Violations[0].Signature()

	min, runs, err := Minimize(r, plan, sig, 64)
	if err != nil {
		t.Fatal(err)
	}
	if min == nil {
		t.Fatal("Minimize failed to reproduce a deterministic finding")
	}
	if runs > 64 {
		t.Errorf("Minimize spent %d runs, budget was 64", runs)
	}
	got, orig := min.ScheduleAtoms(), plan.ScheduleAtoms()
	if len(got) >= len(orig) {
		t.Errorf("minimization kept %d of %d atoms: %v", len(got), len(orig), got)
	}
	// 1-minimality: removing any surviving atom must lose the signature.
	for i := range got {
		sub := append(append([]string(nil), got[:i]...), got[i+1:]...)
		cand, err := plan.WithScheduleAtoms(sub)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(cand)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			if v.Signature() == sig {
				t.Errorf("not 1-minimal: dropping %q still reproduces", got[i])
			}
		}
	}
	// The minimized plan replays via the DSL string.
	replayed, err := faults.Parse(min.String())
	if err != nil {
		t.Fatalf("minimized plan %q does not parse: %v", min, err)
	}
	rep, err = r.Run(replayed)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		found = found || v.Signature() == sig
	}
	if !found {
		t.Errorf("minimized plan %q does not reproduce %s", min, sig)
	}
}

// TestMinimizeFlakyFinding: a plan that does not reproduce the target
// signature yields a nil plan, not an error.
func TestMinimizeFlakyFinding(t *testing.T) {
	r := schedRunner(t, true)
	plan := &faults.Plan{Seed: 0} // identity schedule: clean
	min, runs, err := Minimize(r, plan, "no-such-signature", 8)
	if err != nil {
		t.Fatal(err)
	}
	if min != nil {
		t.Fatalf("Minimize reproduced a nonexistent signature: %v", min)
	}
	if runs != 1 {
		t.Errorf("spent %d runs on a non-reproducing plan, want 1", runs)
	}
}

// TestExploreWithMinimize: the engine end-to-end — sweep, dedup, and a
// minimized replayable string on the finding.
func TestExploreWithMinimize(t *testing.T) {
	res, err := Explore(Config{
		Runner:       schedRunner(t, true),
		Strategy:     Sweep{},
		Schedules:    32,
		Seed:         1,
		Minimize:     true,
		MinimizeRuns: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distinct() != 1 {
		t.Fatalf("distinct = %d, want 1", res.Distinct())
	}
	f := res.Findings[0]
	if f.Minimized == "" {
		t.Fatal("finding has no minimized plan")
	}
	if f.MinimizeRuns == 0 || f.MinimizeRuns > 32 {
		t.Errorf("MinimizeRuns = %d, want 1..32", f.MinimizeRuns)
	}
	plan, err := faults.Parse(f.Minimized)
	if err != nil {
		t.Fatalf("minimized string %q does not parse: %v", f.Minimized, err)
	}
	rep, err := schedRunner(t, true).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		found = found || v.Signature() == f.Signature
	}
	if !found {
		t.Errorf("minimized plan %q does not reproduce %s", f.Minimized, f.Signature)
	}
}
