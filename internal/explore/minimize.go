package explore

import (
	"fmt"

	"repro/internal/faults"
)

// Minimize shrinks a violating schedule plan with the ddmin algorithm
// (Zeller & Hildebrandt, "Simplifying and Isolating Failure-Inducing
// Input"): the plan's schedule clauses are split into atoms
// (faults.Plan.ScheduleAtoms) and ddmin searches for a 1-minimal subset
// that still reproduces the violation signature sig. Structural clauses
// (seed, crashes, truncations) are kept verbatim — the seed is part of
// the schedule's identity, not a removable atom.
//
// It returns the minimized plan (nil if even the full plan no longer
// reproduces — a flaky finding, which deterministic schedules should
// never produce) and the number of verification runs spent, bounded by
// maxRuns. On hitting the run budget the best reduction so far is
// returned; it reproduces, it just may not be 1-minimal.
func Minimize(r *Runner, plan *faults.Plan, sig string, maxRuns int) (*faults.Plan, int, error) {
	if plan == nil {
		return nil, 0, fmt.Errorf("explore: cannot minimize a nil plan")
	}
	if maxRuns <= 0 {
		maxRuns = 64
	}
	runs := 0
	var firstErr error
	// test reports whether the plan rebuilt from atoms still produces a
	// violation with the target signature.
	test := func(atoms []string) bool {
		if runs >= maxRuns || firstErr != nil {
			return false
		}
		runs++
		cand, err := plan.WithScheduleAtoms(atoms)
		if err != nil {
			firstErr = err
			return false
		}
		rep, err := r.Run(cand)
		if err != nil {
			firstErr = err
			return false
		}
		for _, v := range rep.Violations {
			if v.Signature() == sig {
				return true
			}
		}
		return false
	}

	atoms := plan.ScheduleAtoms()
	// The full plan must reproduce, or there is nothing to minimize.
	if !test(atoms) {
		return nil, runs, firstErr
	}
	// Fast path: no schedule clauses at all (the bug needs no schedule).
	if len(atoms) > 0 && test(nil) {
		atoms = nil
	} else {
		atoms = ddmin(atoms, test)
	}
	if firstErr != nil {
		return nil, runs, firstErr
	}
	min, err := plan.WithScheduleAtoms(atoms)
	return min, runs, err
}

// ddmin reduces atoms to a 1-minimal subset under test, which must hold
// for the input set. test is monotone-ish in practice but ddmin does not
// require it; it only requires determinism, which schedule plans give.
func ddmin(atoms []string, test func([]string) bool) []string {
	n := 2
	for len(atoms) >= 2 {
		chunks := split(atoms, n)
		reduced := false
		// Try each chunk alone: a schedule is often one load-bearing clause.
		for _, c := range chunks {
			if test(c) {
				atoms, n, reduced = c, 2, true
				break
			}
		}
		if !reduced {
			// Try each complement: drop one chunk at a time.
			for i := range chunks {
				comp := complement(chunks, i)
				if test(comp) {
					atoms, reduced = comp, true
					n--
					if n < 2 {
						n = 2
					}
					break
				}
			}
		}
		if !reduced {
			if n >= len(atoms) {
				break // 1-minimal at the finest granularity
			}
			n *= 2
			if n > len(atoms) {
				n = len(atoms)
			}
		}
	}
	return atoms
}

// split partitions atoms into n contiguous chunks of near-equal size.
func split(atoms []string, n int) [][]string {
	if n > len(atoms) {
		n = len(atoms)
	}
	chunks := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(atoms)/n, (i+1)*len(atoms)/n
		chunks = append(chunks, atoms[lo:hi])
	}
	return chunks
}

// complement concatenates every chunk except chunk i.
func complement(chunks [][]string, i int) []string {
	var out []string
	for j, c := range chunks {
		if j != i {
			out = append(out, c...)
		}
	}
	return out
}
