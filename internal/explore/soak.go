package explore

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
)

// Soak repeats a run under seed-varied perturbations of one plan and
// verifies the report is invariant: scheduling and legal completion
// reordering must not change what MC-Checker finds. Structural faults
// (crashes, truncations) and schedule clauses keep their places across
// iterations; only the seed varies. A nil plan uses the default
// perturbation (legal reordering plus frequent yields).
//
// Seed-dependent degraded-mode diagnostics are excluded from the
// invariant (and nil'd in the returned report); the violations and
// coverage counters are compared byte-for-byte as JSON. The first
// diverging iteration is reported as an error carrying both reports.
func Soak(r *Runner, plan *faults.Plan, iters int) (*core.Report, error) {
	if plan == nil {
		plan = &faults.Plan{Seed: 1, Reorder: true, Yield: 25}
	}
	var first *core.Report
	var want []byte
	for i := 0; i < iters; i++ {
		p := plan.WithSeed(plan.Seed + uint64(i))
		rep, err := r.Run(p)
		if err != nil {
			return nil, fmt.Errorf("soak iteration %d: %w", i, err)
		}
		rep.Degraded = nil
		data, err := rep.JSON()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first, want = rep, data
			continue
		}
		if !bytes.Equal(data, want) {
			return nil, fmt.Errorf("soak: iteration %d (seed %d) diverged from iteration 0:\n--- iteration 0 ---\n%s\n--- iteration %d ---\n%s",
				i, p.Seed, want, i, data)
		}
	}
	return first, nil
}
