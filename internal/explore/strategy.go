package explore

import (
	"fmt"

	"repro/internal/faults"
)

// Strategy generates the i-th deterministic schedule of a sweep. Plans
// are pure functions of (i, base seed, rank count), so a sweep is
// reproducible and any single schedule can be replayed in isolation via
// its plan's `-faults` string.
type Strategy interface {
	// Name identifies the strategy in progress lines and results.
	Name() string
	// Plan builds schedule i of a sweep with the given base seed for a
	// world of the given rank count.
	Plan(i int, base uint64, ranks int) *faults.Plan
}

// Derivation keys for the seed-derived schedule parameters (arbitrary
// distinct constants; see faults.Derive).
const (
	keyPCTBatch   = 0x70637462 // "pctb": PCT change-point batch ordinals
	keyPCTPrio    = 0x70637470 // "pctp": PCT priority permutation
	keyDelayStep  = 0x646c7973 // "dlys": delay-bounded step parameters
)

// Sweep is the plain seed sweep: schedule i enables legal cross-origin
// completion reordering under seed base+i. Cheap, broad, and the
// default — every seed is a different shuffle of every completion batch.
type Sweep struct{}

func (Sweep) Name() string { return "sweep" }

func (Sweep) Plan(i int, base uint64, ranks int) *faults.Plan {
	return &faults.Plan{Seed: base + uint64(i), Reorder: true}
}

// Walk is the random-walk strategy: completion reordering plus seeded
// scheduler yields, perturbing both the completion order and the
// goroutine interleaving around it.
type Walk struct {
	// Yield is the percent chance of a yield per MPI call (default 25).
	Yield int
}

func (Walk) Name() string { return "walk" }

func (w Walk) Plan(i int, base uint64, ranks int) *faults.Plan {
	y := w.Yield
	if y <= 0 {
		y = 25
	}
	return &faults.Plan{Seed: base + uint64(i), Reorder: true, Yield: y}
}

// PCT is the priority-based strategy in the style of PCT (probabilistic
// concurrency testing): each schedule draws a random rank-priority
// permutation plus Depth change points at which a seed-derived rank's
// priority is demoted below all others. PCT's guarantee is that a bug of
// depth d is found with probability ≥ 1/(n·k^(d-1)) per schedule; here
// the "threads" are origin ranks and the "steps" are completion batches.
type PCT struct {
	// Depth is the number of change points per schedule (default 2).
	Depth int
	// MaxBatch bounds the batch ordinals change points land on
	// (default 8; programs with more completion batches than that just
	// see change points concentrated early, which PCT tolerates).
	MaxBatch int
}

func (PCT) Name() string { return "pct" }

func (p PCT) Plan(i int, base uint64, ranks int) *faults.Plan {
	depth := p.Depth
	if depth <= 0 {
		depth = 2
	}
	maxBatch := p.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 8
	}
	seed := base + uint64(i)
	plan := &faults.Plan{Seed: seed}
	// Random priority permutation of the ranks (Fisher–Yates).
	prio := make([]int, ranks)
	for r := range prio {
		prio[r] = r
	}
	rng := faults.Derive(seed, keyPCTPrio)
	for r := len(prio) - 1; r > 0; r-- {
		j := rng.Intn(r + 1)
		prio[r], prio[j] = prio[j], prio[r]
	}
	plan.Prio = prio
	// Depth change points at seed-derived batch ordinals. The demoted
	// rank itself is derived inside the simulator from (seed, point
	// index), so the clause stays compact.
	rng = faults.Derive(seed, keyPCTBatch)
	for c := 0; c < depth; c++ {
		plan.Changes = append(plan.Changes, rng.Intn(maxBatch))
	}
	return plan
}

// DelayBound is the delay-bounded strategy: each schedule inserts Steps
// delay operations, each deferring one origin rank's operations to the
// back of one completion batch. Small step counts cover the "one unusual
// completion order" bugs with a much smaller space than full reordering.
type DelayBound struct {
	// Steps is the number of delay clauses per schedule (default 1).
	Steps int
	// MaxBatch bounds the batch ordinals delays land on (default 8).
	MaxBatch int
}

func (DelayBound) Name() string { return "delay" }

func (d DelayBound) Plan(i int, base uint64, ranks int) *faults.Plan {
	steps := d.Steps
	if steps <= 0 {
		steps = 1
	}
	maxBatch := d.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 8
	}
	seed := base + uint64(i)
	plan := &faults.Plan{Seed: seed}
	rng := faults.Derive(seed, keyDelayStep)
	for s := 0; s < steps; s++ {
		plan.Delays = append(plan.Delays, faults.Delay{
			Origin: rng.Intn(ranks),
			Batch:  rng.Intn(maxBatch),
		})
	}
	return plan
}

// Strategies returns every built-in strategy with default parameters,
// keyed for CLI listings.
func Strategies() []Strategy {
	return []Strategy{Sweep{}, Walk{}, PCT{}, DelayBound{}}
}

// ParseStrategy resolves a CLI strategy name to a Strategy with default
// parameters.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("explore: unknown strategy %q (want sweep, walk, pct, or delay)", name)
}
