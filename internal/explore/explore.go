// Package explore implements schedule-space exploration for MC-Checker:
// it runs a target program many times under distinct deterministic
// schedules and aggregates what the analyzer finds across the sweep.
//
// A single MC-Checker run observes one interleaving. The paper's dynamic
// analysis is sound for the schedule it saw, but a memory consistency
// error hiding behind a data-dependent branch — a recovery path taken
// only when a legal RMA race resolves the unusual way — never reaches the
// trace. This package closes that gap the way stateless model checkers
// do: enumerate many legal completion orders (internal/faults schedule
// plans, replayed exactly by the simulator), analyze each run, and
// deduplicate the findings by a canonical, rank-stable violation
// signature. Every finding carries the plan that produced it, and ddmin
// minimization (Minimize) shrinks that plan to a minimal `-faults`
// string replayable with `mcchecker run`.
//
// The engine (Explore) fans schedules out over a worker pool, honors a
// schedule count and a wall-clock budget, reports progress, and feeds
// the obs registry so `-stats` covers exploration like every other
// pipeline phase.
package explore

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Runner executes one program under one schedule plan and returns the
// analyzer's report. It is the single-run primitive shared by the
// exploration engine, the minimizer, the soak harness, and the
// `mcchecker run` offline path. A Runner is safe for concurrent use:
// every Run builds its own simulator world and trace sink.
type Runner struct {
	// Body is the per-rank program (a registry BugCase variant).
	Body func(p *mpi.Proc) error
	// Ranks is the simulated world size.
	Ranks int
	// Rel selects the instrumented buffers; nil instruments everything.
	Rel profiler.Relevance
	// Timeout is the per-run deadlock watchdog (0 = simulator default).
	Timeout time.Duration
	// Failstop aborts a run on an injected crash instead of surviving it.
	Failstop bool
	// IntraOnly disables cross-process detection (SyncChecker baseline).
	IntraOnly bool
	// Engine selects the cross-process detector implementation; the zero
	// value is the shadow engine (core.EngineShadow).
	Engine core.Engine
	// Obs receives run metrics; nil disables the accounting.
	Obs *obs.Registry
	// Trace, when non-nil, records the analysis pipeline's span timeline
	// for runs started through this runner. Only set it on single-run
	// paths (`mcchecker run`): the fine-grained pipeline lanes are not
	// meaningful when many schedules analyze concurrently — Explore uses
	// the coarser per-schedule Config.Trace instead.
	Trace *tracing.Recorder
	// OnTrace, when non-nil, observes the padded trace set of each run
	// before analysis (used by `mcchecker run -trace` to persist files).
	OnTrace func(*trace.Set)

	// sinks recycles MemorySinks across runs. A sweep re-collects
	// comparable traces thousands of times, so reusing the per-rank event
	// buffers removes the dominant per-run allocation. Safe because Run
	// hands the aliased set (TakeSet) to nothing that outlives it: the
	// report keeps only value copies of events.
	sinks sync.Pool
}

// getSink returns a recycled (reset) sink when one is available, else a
// fresh one.
func (r *Runner) getSink() *trace.MemorySink {
	if s, ok := r.sinks.Get().(*trace.MemorySink); ok {
		s.Reset()
		r.Obs.Counter("mcchecker_pipeline_sink_pool_hits_total").Inc()
		return s
	}
	r.Obs.Counter("mcchecker_pipeline_sink_pool_misses_total").Inc()
	return trace.NewMemorySink()
}

// Run executes the program once under plan and analyzes the trace. With
// an active plan (or a degraded simulation) the analysis runs in
// degraded mode so the report carries the loss diagnostics; otherwise
// the strict path is used. This mirrors `mcchecker run` exactly, which
// is what makes an explorer finding replayable: the same plan string
// fed to `-faults` reproduces the same report.
func (r *Runner) Run(plan *faults.Plan) (*core.Report, error) {
	sink := r.getSink()
	recycle := true
	defer func() {
		if recycle {
			r.sinks.Put(sink)
		}
	}()
	pr := profiler.NewObs(sink, r.Rel, r.Obs)
	var notes []string
	err := mpi.Run(r.Ranks, mpi.Options{
		Hook: pr, Obs: r.Obs, Timeout: r.Timeout,
		Faults: plan, FaultTolerant: plan.HasCrash() && !r.Failstop,
	}, r.Body)
	if err != nil {
		if !mpi.Degraded(err) {
			// A deadlock watchdog return leaves rank goroutines alive and
			// possibly still emitting; the sink must not be reused.
			recycle = false
			return nil, fmt.Errorf("run failed: %w", err)
		}
		notes = flattenErrs(err)
	}
	set := padSet(sink.TakeSet(), r.Ranks)
	if r.OnTrace != nil {
		r.OnTrace(set)
	}
	set, tnotes, err := trace.ApplyTruncFaults(set, plan, r.Obs)
	if err != nil {
		return nil, err
	}
	notes = append(notes, tnotes...)

	opts := core.DefaultOptions()
	opts.CrossProcess = !r.IntraOnly
	opts.Engine = r.Engine
	opts.Obs = r.Obs
	opts.Trace = r.Trace
	if plan.Active() || len(notes) > 0 {
		return core.AnalyzeDegraded(set, opts, notes)
	}
	rep, err := core.AnalyzeWith(set, opts)
	if err != nil {
		return nil, fmt.Errorf("analysis failed: %w", err)
	}
	return rep, nil
}

// padSet widens a memory-collected set to the full world size: a rank
// that crashed before emitting anything still occupies its slot.
func padSet(s *trace.Set, n int) *trace.Set {
	if len(s.Traces) >= n {
		return s
	}
	out := trace.NewSet(n)
	copy(out.Traces, s.Traces)
	return out
}

// flattenErrs splits a joined error tree into one note per leaf.
func flattenErrs(err error) []string {
	if err == nil {
		return nil
	}
	if j, ok := err.(interface{ Unwrap() []error }); ok {
		var notes []string
		for _, sub := range j.Unwrap() {
			notes = append(notes, flattenErrs(sub)...)
		}
		return notes
	}
	return []string{err.Error()}
}

// Config parameterizes one exploration.
type Config struct {
	Runner   *Runner
	Strategy Strategy
	// Schedules is the number of distinct schedules to try.
	Schedules int
	// Jobs is the worker-pool width; 0 means GOMAXPROCS.
	Jobs int
	// Budget caps wall-clock time; 0 means unlimited. Schedules already
	// running when the budget expires finish and are counted.
	Budget time.Duration
	// Seed is the base seed every strategy derives its schedules from.
	Seed uint64
	// Minimize runs ddmin on each finding's first schedule, capped at
	// MinimizeRuns extra runs per finding.
	Minimize     bool
	MinimizeRuns int
	// Progress, when non-nil, receives a live one-line progress display
	// (schedules/sec, distinct violations) and a final summary line.
	Progress io.Writer
	// Trace, when non-nil, records one span per schedule run on the
	// "explore" track (lanes per pool worker), annotated with the plan
	// and the run's outcome — the sweep-level timeline that shows pool
	// occupancy and stragglers. It is distinct from Runner.Trace, which
	// records pipeline-internal lanes and must stay nil during a sweep.
	Trace *tracing.Recorder
}

// Finding is one distinct violation signature discovered by a sweep,
// with the evidence needed to reproduce it.
type Finding struct {
	// Signature is the canonical rank-stable violation signature.
	Signature string
	// Example is a representative violation (from the earliest schedule
	// index that produced the signature, so it is jobs-independent).
	Example *core.Violation
	// Count is the number of schedules whose report contained the
	// signature (not the number of violation instances).
	Count int
	// FirstIndex and FirstPlan identify the earliest schedule that
	// produced the signature; FirstPlan.String() replays it.
	FirstIndex int
	FirstPlan  *faults.Plan
	// Minimized is the ddmin-reduced plan string ("" when minimization
	// was off or failed to reproduce); MinimizeRuns counts the extra
	// runs it spent.
	Minimized    string
	MinimizeRuns int
}

// Result aggregates one exploration.
type Result struct {
	// Strategy is the schedule generator's name.
	Strategy string
	// Schedules counts completed runs (≤ Config.Schedules under a budget).
	Schedules int
	// Violating counts runs whose report had at least one violation.
	Violating int
	// Failures counts runs that errored outright (no report).
	Failures int
	// Findings are the distinct violations, sorted by signature.
	Findings []*Finding
	// Elapsed is the wall-clock time of the sweep (minimization included).
	Elapsed time.Duration
}

// Distinct returns the number of distinct violation signatures found.
func (r *Result) Distinct() int { return len(r.Findings) }

// SchedulesPerSec returns the sweep throughput.
func (r *Result) SchedulesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Schedules) / r.Elapsed.Seconds()
}

// progressInterval throttles the live progress line.
const progressInterval = 200 * time.Millisecond

// Explore sweeps the schedule space: it generates Config.Schedules plans
// with the strategy, runs them on a pool of Config.Jobs workers, and
// aggregates violations by canonical signature. The findings (signature
// set, counts, first-producing schedule) are deterministic for a given
// (strategy, seed, schedule count) regardless of Jobs; only under an
// expiring Budget can the number of completed schedules — and therefore
// the tail of the aggregate — vary between runs.
func Explore(cfg Config) (*Result, error) {
	if cfg.Runner == nil || cfg.Strategy == nil {
		return nil, fmt.Errorf("explore: Config.Runner and Config.Strategy are required")
	}
	if cfg.Schedules <= 0 {
		return nil, fmt.Errorf("explore: Schedules must be positive (got %d)", cfg.Schedules)
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > cfg.Schedules {
		jobs = cfg.Schedules
	}
	reg := cfg.Runner.Obs
	schedTotal := reg.Counter("mcchecker_explore_schedules_total")
	violTotal := reg.Counter("mcchecker_explore_violating_total")
	failTotal := reg.Counter("mcchecker_explore_failures_total")
	distinctGauge := reg.Gauge("mcchecker_explore_distinct_violations")
	span := reg.StartSpan(core.PhaseSpanName, "phase", "explore")
	defer span.End()

	start := time.Now()
	var deadline time.Time
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}

	res := &Result{Strategy: cfg.Strategy.Name()}
	findings := map[string]*Finding{}
	var mu sync.Mutex
	var firstErr error
	record := func(i int, plan *faults.Plan, rep *core.Report, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			res.Failures++
			failTotal.Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("schedule %d (%s): %w", i, plan, err)
			}
			return
		}
		res.Schedules++
		schedTotal.Inc()
		if len(rep.Violations) == 0 {
			return
		}
		res.Violating++
		violTotal.Inc()
		seen := map[string]bool{} // count each signature once per schedule
		for _, v := range rep.Violations {
			sig := v.Signature()
			if seen[sig] {
				continue
			}
			seen[sig] = true
			f := findings[sig]
			if f == nil {
				f = &Finding{Signature: sig, FirstIndex: i, FirstPlan: plan, Example: v}
				findings[sig] = f
			} else if i < f.FirstIndex {
				f.FirstIndex, f.FirstPlan, f.Example = i, plan, v
			}
			f.Count++
		}
		distinctGauge.Set(int64(len(findings)))
	}

	// Worker pool over schedule indices. The feeder stops handing out
	// work once the budget expires; in-flight runs complete normally.
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				plan := cfg.Strategy.Plan(i, cfg.Seed, cfg.Runner.Ranks)
				var sp *tracing.Span
				if cfg.Trace != nil {
					scope := fmt.Sprintf("schedule %d", i)
					sp = cfg.Trace.Start("explore", cfg.Trace.Lane(fmt.Sprintf("worker %d", w), scope), scope)
					sp.Annotate("plan", plan.String())
				}
				rep, err := cfg.Runner.Run(plan)
				if sp != nil {
					switch {
					case err != nil:
						sp.Annotate("outcome", "failure")
					default:
						sp.Annotate("violations", fmt.Sprintf("%d", len(rep.Violations)))
					}
					sp.End()
				}
				record(i, plan, rep, err)
			}
		}(w)
	}

	lastProgress := start
	progress := func(force bool) {
		if cfg.Progress == nil {
			return
		}
		now := time.Now()
		if !force && now.Sub(lastProgress) < progressInterval {
			return
		}
		lastProgress = now
		mu.Lock()
		done, distinct := res.Schedules, len(findings)
		mu.Unlock()
		rate := float64(done) / now.Sub(start).Seconds()
		fmt.Fprintf(cfg.Progress, "\rexplore[%s]: %d/%d schedules (%.0f/s), %d distinct violation(s)   ",
			cfg.Strategy.Name(), done, cfg.Schedules, rate, distinct)
	}

feed:
	for i := 0; i < cfg.Schedules; i++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break feed
		}
		idx <- i
		progress(false)
	}
	close(idx)
	wg.Wait()
	progress(true)
	if cfg.Progress != nil {
		fmt.Fprintln(cfg.Progress)
	}
	if firstErr != nil {
		return nil, firstErr
	}

	for _, f := range findings {
		res.Findings = append(res.Findings, f)
	}
	sort.Slice(res.Findings, func(a, b int) bool {
		return res.Findings[a].Signature < res.Findings[b].Signature
	})

	if cfg.Minimize {
		budget := cfg.MinimizeRuns
		if budget <= 0 {
			budget = 64
		}
		minTotal := reg.Counter("mcchecker_explore_minimize_runs_total")
		for _, f := range res.Findings {
			min, runs, err := Minimize(cfg.Runner, f.FirstPlan, f.Signature, budget)
			f.MinimizeRuns = runs
			minTotal.Add(int64(runs))
			if err != nil {
				return nil, fmt.Errorf("minimizing %s: %w", f.Signature, err)
			}
			if min != nil {
				f.Minimized = min.String()
			}
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "minimized %s in %d run(s): -faults %q\n",
					f.Signature, runs, f.Minimized)
			}
		}
	}

	res.Elapsed = time.Since(start)
	return res, nil
}
