package explore

// hints.go: seeding the schedule sweep from static-checker findings. A
// static diagnostic names the target ranks of the operations it suspects
// (internal/stanalyzer Diagnostic.Ranks); delaying exactly those origins'
// completions is the most direct way to flip the completion orders the
// diagnostic worries about, so the hinted schedules run before the base
// strategy's broad sweep.

import (
	"sort"

	"repro/internal/faults"
	"repro/internal/stanalyzer"
)

// Hinted prefixes a base strategy with schedules derived from static
// diagnostics: the first len(Ranks)×MaxBatch schedules delay one hinted
// origin rank at one early completion batch each (with reordering enabled
// so the rest of the batch still shuffles), then the base strategy
// continues unchanged with its own schedule indexes.
type Hinted struct {
	Base  Strategy
	Ranks []int

	// MaxBatch bounds the batch ordinals hinted delays land on (default 4).
	MaxBatch int
}

func (h Hinted) Name() string { return h.Base.Name() + "+static-hints" }

func (h Hinted) Plan(i int, base uint64, ranks int) *faults.Plan {
	maxBatch := h.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 4
	}
	hinted := len(h.Ranks) * maxBatch
	if i < hinted {
		r := h.Ranks[i%len(h.Ranks)]
		if r >= 0 && r < ranks {
			return &faults.Plan{
				Seed:    base + uint64(i),
				Reorder: true,
				Delays:  []faults.Delay{{Origin: r, Batch: i / len(h.Ranks)}},
			}
		}
		// A hint outside this world's rank range degrades to the plain sweep.
		return &faults.Plan{Seed: base + uint64(i), Reorder: true}
	}
	return h.Base.Plan(i-hinted, base, ranks)
}

// HintsFromDiagnostics collects the statically-known target ranks named by
// the diagnostics, deduplicated and sorted — the Ranks input for Hinted.
func HintsFromDiagnostics(diags []stanalyzer.Diagnostic) []int {
	seen := map[int]bool{}
	var out []int
	for i := range diags {
		for _, r := range diags[i].Ranks {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Ints(out)
	return out
}
