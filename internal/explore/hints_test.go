package explore

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/stanalyzer"
)

func TestHintedPlanPrefix(t *testing.T) {
	h := Hinted{Base: Sweep{}, Ranks: []int{1, 2}, MaxBatch: 3}
	ranks := 4
	// The first len(Ranks)×MaxBatch schedules are targeted delay plans
	// cycling through the hinted origins and stepping the batch ordinal.
	for i := 0; i < 6; i++ {
		plan := h.Plan(i, 100, ranks)
		if plan == nil || len(plan.Delays) != 1 {
			t.Fatalf("Plan(%d) = %+v, want one targeted delay", i, plan)
		}
		d := plan.Delays[0]
		wantOrigin := []int{1, 2}[i%2]
		wantBatch := i / 2
		if d.Origin != wantOrigin || d.Batch != wantBatch {
			t.Errorf("Plan(%d): delay = %+v, want origin %d batch %d", i, d, wantOrigin, wantBatch)
		}
		if !plan.Reorder {
			t.Errorf("Plan(%d): hinted schedules must keep reordering on", i)
		}
		if plan.Seed != 100+uint64(i) {
			t.Errorf("Plan(%d): seed = %d", i, plan.Seed)
		}
	}
	// After the hinted prefix the base strategy continues from index 0.
	got := h.Plan(6, 100, ranks)
	want := Sweep{}.Plan(0, 100, ranks)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Plan(6) = %+v, want base Plan(0) = %+v", got, want)
	}
}

func TestHintedOutOfRangeRankDegrades(t *testing.T) {
	h := Hinted{Base: Sweep{}, Ranks: []int{7}, MaxBatch: 1}
	plan := h.Plan(0, 0, 2) // rank 7 does not exist in a 2-rank world
	if plan == nil || len(plan.Delays) != 0 || !plan.Reorder {
		t.Errorf("out-of-range hint must degrade to plain reorder, got %+v", plan)
	}
}

func TestHintedName(t *testing.T) {
	h := Hinted{Base: Sweep{}}
	if h.Name() != "sweep+static-hints" {
		t.Errorf("Name() = %q", h.Name())
	}
}

func TestHintsFromDiagnostics(t *testing.T) {
	diags := []stanalyzer.Diagnostic{
		{Ranks: []int{2, 0}},
		{Ranks: []int{0, 1}},
		{},
	}
	if got := HintsFromDiagnostics(diags); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("HintsFromDiagnostics = %v", got)
	}
	if got := HintsFromDiagnostics(nil); len(got) != 0 {
		t.Errorf("empty diags must yield no hints, got %v", got)
	}
}

// TestHintedCatchesScheduleBug: seeding the sweep with the static
// checker's rank hints for the schedrace app must still expose the
// planted schedule-dependent violation within the sweep budget.
func TestHintedCatchesScheduleBug(t *testing.T) {
	srep, err := stanalyzer.CheckFS(apps.SourceFS(), stanalyzer.Options{
		Defines: map[string]bool{"buggy": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	diags := srep.ForFunctions(srep.Reachable("SchedRace"))
	hints := HintsFromDiagnostics(diags)
	if len(hints) == 0 {
		t.Fatal("static checker produced no rank hints for schedrace")
	}
	res, err := Explore(Config{
		Runner:    schedRunner(t, true),
		Strategy:  Hinted{Base: Sweep{}, Ranks: hints},
		Schedules: 32,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distinct() != 1 {
		t.Fatalf("hinted sweep found %d distinct violations, want 1", res.Distinct())
	}
}
