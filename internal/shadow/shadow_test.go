package shadow

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/memory"
)

// clock builds a vector clock literal.
func clock(vs ...int64) []int64 { return vs }

func collectQuery(st *Store, key VectorKey, q Query, fp []memory.Interval, mode Mode,
	modes map[int32]Mode) []int32 {
	var got []int32
	st.Query(key, q, fp, func(rank, class int32) Mode {
		if modes != nil {
			if m, ok := modes[rank]; ok {
				return m
			}
		}
		if rank == q.Rank {
			return ModeSkip
		}
		return mode
	}, func(p int32) { got = append(got, p) })
	return got
}

func TestDepotInternDense(t *testing.T) {
	d := NewDepot()
	a, fresh := d.Intern(1, "f.go", 10, "fn")
	if !fresh || a != 0 {
		t.Fatalf("first intern: id=%d fresh=%v", a, fresh)
	}
	b, fresh := d.Intern(1, "f.go", 10, "fn")
	if fresh || b != a {
		t.Fatalf("re-intern: id=%d fresh=%v", b, fresh)
	}
	c, fresh := d.Intern(2, "f.go", 10, "fn")
	if !fresh || c != 1 {
		t.Fatalf("distinct kind: id=%d fresh=%v", c, fresh)
	}
	if d.Len() != 2 {
		t.Fatalf("Len=%d", d.Len())
	}
}

// Two accesses from different ranks, concurrent, overlapping: the query
// sees the stored one through a cell.
func TestQueryOverlapBasic(t *testing.T) {
	st := NewStore(nil)
	key := VectorKey{Win: 1, Target: 2}
	st.Insert(key, Access{Payload: 7, Rank: 0, Class: 0, Seq: 5,
		Clock: clock(-1, -1, -1), Target: []memory.Interval{{Lo: 100, Hi: 200}}})

	q := Query{Rank: 1, Seq: 3, Clock: clock(-1, -1, -1)}
	got := collectQuery(st, key, q, []memory.Interval{{Lo: 150, Hi: 160}}, ModeOverlap, nil)
	if !reflect.DeepEqual(got, []int32{7}) {
		t.Fatalf("got %v", got)
	}
	// Disjoint probe: no match.
	if got := collectQuery(st, key, q, []memory.Interval{{Lo: 300, Hi: 310}}, ModeOverlap, nil); got != nil {
		t.Fatalf("disjoint probe matched %v", got)
	}
	// Unknown vector: no match.
	if got := collectQuery(st, VectorKey{Win: 9, Target: 2}, q, []memory.Interval{{Lo: 150, Hi: 160}}, ModeOverlap, nil); got != nil {
		t.Fatalf("unknown vector matched %v", got)
	}
}

// Happens-before in either direction suppresses the match.
func TestQueryHappensBeforeSuppresses(t *testing.T) {
	st := NewStore(nil)
	key := VectorKey{Win: 1, Target: 2}
	st.Insert(key, Access{Payload: 1, Rank: 0, Class: 0, Seq: 5,
		Clock: clock(-1, -1, -1), Target: []memory.Interval{{Lo: 0, Hi: 64}}})

	fp := []memory.Interval{{Lo: 0, Hi: 64}}
	// Query knows rank 0 up to seq 5: stored op happens-before the query.
	q := Query{Rank: 1, Seq: 9, Clock: clock(5, -1, -1)}
	if got := collectQuery(st, key, q, fp, ModeOverlap, nil); got != nil {
		t.Fatalf("stored-before-query matched %v", got)
	}
	// Stored op knows the query's rank up to seq 9: query happens-before
	// stored is impossible, but simulate the reverse edge by inserting an
	// op whose clock covers the query.
	st.Insert(key, Access{Payload: 2, Rank: 2, Class: 0, Seq: 1,
		Clock: clock(-1, 9, -1), Target: []memory.Interval{{Lo: 0, Hi: 64}}})
	q2 := Query{Rank: 1, Seq: 9, Clock: clock(5, -1, -1)}
	if got := collectQuery(st, key, q2, fp, ModeOverlap, nil); got != nil {
		t.Fatalf("query-before-stored matched %v", got)
	}
	// A genuinely concurrent query sees only the concurrent member.
	q3 := Query{Rank: 1, Seq: 20, Clock: clock(5, -1, -1)}
	got := collectQuery(st, key, q3, fp, ModeOverlap, nil)
	if !reflect.DeepEqual(got, []int32{2}) {
		t.Fatalf("got %v", got)
	}
}

// ModeAll matches concurrent members regardless of byte overlap,
// including members with empty footprints; ModeSkip matches nothing.
func TestQueryModeAllAndSkip(t *testing.T) {
	st := NewStore(nil)
	key := VectorKey{Win: 3, Target: 0}
	st.Insert(key, Access{Payload: 10, Rank: 1, Class: 0, Seq: 2,
		Clock: clock(-1, -1), Target: []memory.Interval{{Lo: 0, Hi: 8}}})
	st.Insert(key, Access{Payload: 11, Rank: 1, Class: 0, Seq: 4,
		Clock: clock(-1, -1), Target: nil}) // no footprint at all

	q := Query{Rank: 0, Seq: 1, Clock: clock(-1, -1)}
	probe := []memory.Interval{{Lo: 1000, Hi: 1008}} // overlaps nothing
	got := collectQuery(st, key, q, probe, ModeAll, nil)
	if !reflect.DeepEqual(got, []int32{10, 11}) {
		t.Fatalf("ModeAll got %v", got)
	}
	if got := collectQuery(st, key, q, probe, ModeSkip, nil); got != nil {
		t.Fatalf("ModeSkip matched %v", got)
	}
}

// A member spanning several cells is emitted once per query, and matches
// arrive in insertion order even when cells are visited out of order.
func TestQueryDedupAcrossCellsAndOrder(t *testing.T) {
	st := NewStore(nil)
	key := VectorKey{Win: 1, Target: 0}
	// Member A covers [0,100); B covers [50,150) — splits A's cell.
	st.Insert(key, Access{Payload: 0, Rank: 1, Class: 0, Seq: 1,
		Clock: clock(-1, -1), Target: []memory.Interval{{Lo: 0, Hi: 100}}})
	st.Insert(key, Access{Payload: 1, Rank: 2, Class: 0, Seq: 1,
		Clock: clock(-1, -1), Target: []memory.Interval{{Lo: 50, Hi: 150}}})
	if c := st.Cells(key); c != 3 {
		t.Fatalf("cells=%d, want 3 ([0,50) [50,100) [100,150))", c)
	}

	q := Query{Rank: 0, Seq: 1, Clock: clock(-1, -1, -1)}
	// The probe touches both of A's cells and both of B's.
	got := collectQuery(st, key, q, []memory.Interval{{Lo: 0, Hi: 150}}, ModeOverlap, nil)
	if !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("got %v, want each member once in insertion order", got)
	}
	// Probe with two intervals hitting the same member twice: still once.
	got = collectQuery(st, key, q,
		[]memory.Interval{{Lo: 120, Hi: 130}, {Lo: 60, Hi: 70}}, ModeOverlap, nil)
	if !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("two-interval probe got %v", got)
	}
}

// The solo→list spill: the second same-(rank,class) member on the same
// bytes grows the inlined entry, and both match.
func TestCellGroupSpill(t *testing.T) {
	st := NewStore(nil)
	key := VectorKey{Win: 1, Target: 0}
	for i := int32(0); i < 3; i++ {
		st.Insert(key, Access{Payload: i, Rank: 1, Class: 0, Seq: int64(i),
			Clock: clock(-1, -1), Target: []memory.Interval{{Lo: 0, Hi: 8}}})
	}
	if c := st.Cells(key); c != 1 {
		t.Fatalf("cells=%d, want 1", c)
	}
	if g := st.Groups(key); g != 1 {
		t.Fatalf("groups=%d, want 1", g)
	}
	q := Query{Rank: 0, Seq: 100, Clock: clock(-1, -1)}
	got := collectQuery(st, key, q, []memory.Interval{{Lo: 0, Hi: 8}}, ModeOverlap, nil)
	if !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Fatalf("got %v", got)
	}
}

// After a split, appending to one half must not clobber the other
// (the cloneEntries capacity cap).
func TestCellSplitAliasing(t *testing.T) {
	st := NewStore(nil)
	key := VectorKey{Win: 1, Target: 0}
	// Two members of one group share a cell → spilled idxs slice.
	st.Insert(key, Access{Payload: 0, Rank: 1, Class: 0, Seq: 0,
		Clock: clock(-1, -1, -1, -1), Target: []memory.Interval{{Lo: 0, Hi: 100}}})
	st.Insert(key, Access{Payload: 1, Rank: 1, Class: 0, Seq: 1,
		Clock: clock(-1, -1, -1, -1), Target: []memory.Interval{{Lo: 0, Hi: 100}}})
	// Split the cell at 50, then add a member to the RIGHT half only.
	st.Insert(key, Access{Payload: 2, Rank: 2, Class: 0, Seq: 0,
		Clock: clock(-1, -1, -1, -1), Target: []memory.Interval{{Lo: 50, Hi: 100}}})
	// And one more of group (1,0) to the right half: if the split aliased
	// the idxs slices, this append would corrupt the left half's list.
	st.Insert(key, Access{Payload: 3, Rank: 1, Class: 0, Seq: 2,
		Clock: clock(-1, -1, -1, -1), Target: []memory.Interval{{Lo: 50, Hi: 100}}})

	q := Query{Rank: 3, Seq: 0, Clock: clock(-1, -1, -1, -1)}
	left := collectQuery(st, key, q, []memory.Interval{{Lo: 0, Hi: 50}}, ModeOverlap, nil)
	if !reflect.DeepEqual(left, []int32{0, 1}) {
		t.Fatalf("left half got %v, want [0 1]", left)
	}
	right := collectQuery(st, key, q, []memory.Interval{{Lo: 50, Hi: 100}}, ModeOverlap, nil)
	if !reflect.DeepEqual(right, []int32{0, 1, 2, 3}) {
		t.Fatalf("right half got %v", right)
	}
}

// concurrentRange against a brute-force reference over random-ish
// monotone clock histories.
func TestConcurrentRangeMatchesBruteForce(t *testing.T) {
	st := NewStore(nil)
	key := VectorKey{Win: 1, Target: 0}
	// Rank 1's history: clocks (knowledge of rank 0) only grow.
	type m struct {
		seq   int64
		knows int64 // clock[0]
	}
	hist := []m{{0, -1}, {2, -1}, {4, 3}, {6, 3}, {8, 7}, {10, 12}}
	for i, h := range hist {
		st.Insert(key, Access{Payload: int32(i), Rank: 1, Class: 0, Seq: h.seq,
			Clock: clock(h.knows, -1), Target: []memory.Interval{{Lo: 0, Hi: 8}}})
	}
	for _, q := range []Query{
		{Rank: 0, Seq: 0, Clock: clock(-1, -1)},
		{Rank: 0, Seq: 5, Clock: clock(-1, 2)},
		{Rank: 0, Seq: 8, Clock: clock(-1, 6)},
		{Rank: 0, Seq: 13, Clock: clock(-1, 10)},
		{Rank: 0, Seq: 4, Clock: clock(-1, 11)},
	} {
		var want []int32
		for i, h := range hist {
			storedBeforeQ := q.Clock[1] >= h.seq
			qBeforeStored := h.knows >= q.Seq
			if !storedBeforeQ && !qBeforeStored {
				want = append(want, int32(i))
			}
		}
		got := collectQuery(st, key, q, []memory.Interval{{Lo: 0, Hi: 8}}, ModeOverlap, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %+v: got %v want %v", q, got, want)
		}
	}
}

// Gap-filling and boundary splits keep cells sorted, disjoint, and
// covering exactly the inserted footprints.
func TestCoverInvariants(t *testing.T) {
	st := NewStore(nil)
	key := VectorKey{Win: 1, Target: 0}
	ivs := [][]memory.Interval{
		{{Lo: 40, Hi: 60}},
		{{Lo: 10, Hi: 20}, {Lo: 80, Hi: 90}},
		{{Lo: 0, Hi: 100}},
		{{Lo: 55, Hi: 85}},
		{{Lo: 20, Hi: 40}},
	}
	for i, fp := range ivs {
		st.Insert(key, Access{Payload: int32(i), Rank: int32(i % 3), Class: 0,
			Seq: int64(i), Clock: clock(-1, -1, -1), Target: fp})
	}
	v := st.vectors[key]
	for i := range v.cells {
		if v.cells[i].lo >= v.cells[i].hi {
			t.Fatalf("cell %d empty: [%d,%d)", i, v.cells[i].lo, v.cells[i].hi)
		}
		if i > 0 && v.cells[i-1].hi > v.cells[i].lo {
			t.Fatalf("cells %d,%d overlap or unsorted", i-1, i)
		}
	}
	// Every member's footprint is exactly tiled by the cells that hold it.
	for id := int32(0); id < int32(len(ivs)); id++ {
		var covered []memory.Interval
		for i := range v.cells {
			c := &v.cells[i]
			for j := range c.entries {
				cg := &c.entries[j]
				for k := 0; k < cg.size(); k++ {
					if cg.at(k) == id {
						covered = append(covered, memory.Interval{Lo: c.lo, Hi: c.hi})
					}
				}
			}
		}
		sort.Slice(covered, func(i, j int) bool { return covered[i].Lo < covered[j].Lo })
		var want uint64
		for _, iv := range ivs[id] {
			want += iv.Hi - iv.Lo
		}
		var got uint64
		for _, iv := range covered {
			got += iv.Hi - iv.Lo
		}
		if got != want {
			t.Fatalf("member %d covered %d bytes, footprint has %d", id, got, want)
		}
		for _, cv := range covered {
			inside := false
			for _, iv := range ivs[id] {
				if cv.Lo >= iv.Lo && cv.Hi <= iv.Hi {
					inside = true
					break
				}
			}
			if !inside {
				t.Fatalf("member %d covered by cell %v outside its footprint %v", id, cv, ivs[id])
			}
		}
	}
	if st.Members() != len(ivs) {
		t.Fatalf("Members=%d", st.Members())
	}
}

// classify must be called at most once per group per query even when the
// group appears in many probed cells.
func TestClassifyOncePerGroup(t *testing.T) {
	st := NewStore(nil)
	key := VectorKey{Win: 1, Target: 0}
	// One group spread over several cells.
	st.Insert(key, Access{Payload: 0, Rank: 1, Class: 0, Seq: 0,
		Clock: clock(-1, -1), Target: []memory.Interval{{Lo: 0, Hi: 30}}})
	st.Insert(key, Access{Payload: 1, Rank: 1, Class: 0, Seq: 1,
		Clock: clock(-1, -1), Target: []memory.Interval{{Lo: 20, Hi: 60}}})
	calls := 0
	st.Query(key, Query{Rank: 0, Seq: 5, Clock: clock(-1, -1)},
		[]memory.Interval{{Lo: 0, Hi: 60}},
		func(rank, class int32) Mode { calls++; return ModeOverlap },
		func(int32) {})
	if calls != 1 {
		t.Fatalf("classify called %d times, want 1", calls)
	}
	// A second query re-classifies (fresh qstamp).
	st.Query(key, Query{Rank: 0, Seq: 6, Clock: clock(-1, -1)},
		[]memory.Interval{{Lo: 0, Hi: 60}},
		func(rank, class int32) Mode { calls++; return ModeOverlap },
		func(int32) {})
	if calls != 2 {
		t.Fatalf("classify called %d times across two queries, want 2", calls)
	}
}
