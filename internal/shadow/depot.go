package shadow

// SiteID names one interned access site (call kind + source location).
// IDs are dense and start at 0, so callers can keep parallel slices of
// per-site data (the cross-process detector keeps the rendered operand
// string of each site there, shared between the store's members and the
// violation/witness rendering).
type SiteID int32

type siteKey struct {
	kind uint8
	line int32
	file string
	fn   string
}

// Depot interns access sites so a shadow member carries a 4-byte site ID
// instead of three strings, and so everything derived from a site (its
// rendered operand string, per-site statistics) is computed at most once
// per region. The zero Depot is not ready; use NewDepot.
type Depot struct {
	index map[siteKey]SiteID
}

// NewDepot returns an empty site depot.
func NewDepot() *Depot { return &Depot{index: make(map[siteKey]SiteID)} }

// Intern returns the ID of the site (kind, file, line, fn), allocating
// the next dense ID on first sight. fresh is true exactly when the site
// was not known before — the caller's cue to extend any parallel
// per-site slice.
func (d *Depot) Intern(kind uint8, file string, line int32, fn string) (id SiteID, fresh bool) {
	k := siteKey{kind: kind, line: line, file: file, fn: fn}
	if id, ok := d.index[k]; ok {
		return id, false
	}
	id = SiteID(len(d.index))
	d.index[k] = id
	return id, true
}

// Len returns the number of distinct interned sites.
func (d *Depot) Len() int { return len(d.index) }
