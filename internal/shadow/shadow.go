// Package shadow implements the shadow-memory access store behind the
// fast cross-process detection engine (FastTrack, Flanagan & Freund,
// PLDI 2009, adapted to MC-Checker's epoch model). Instead of matching
// every pair of one-sided operations in a (window, target) vector, the
// detector inserts each access into an interval-keyed shadow map and
// asks the map for exactly the stored accesses that can still conflict:
//
//   - the byte ranges of a vector are partitioned into shadow cells;
//     every member's footprint is split across the cells it covers, so a
//     cell interval is a subset of each of its members' footprints and
//     any overlap between a query and a cell implies overlap with every
//     member in it — overlap filtering costs one sorted-slice walk
//     instead of a full vector scan;
//   - within a cell, members are grouped per (origin rank, operation
//     class). A group either matches or is skipped wholesale (same-rank
//     pairs, compatibility-matrix BOTH cells), the analogue of
//     FastTrack's same-epoch fast path; a group holds a single inlined
//     access (the common case — FastTrack's one-epoch summary) and
//     spills to an ordered access list only on sharing (the read-share
//     vector fallback);
//   - each access carries the vector clock of its DAG segment. Along one
//     rank's program order those clocks are elementwise monotone
//     non-decreasing, so the members of a group that are concurrent with
//     a query form one contiguous range found by two binary searches —
//     no per-member happens-before calls;
//   - sites are interned in a Depot (see depot.go) so a member stays a
//     few words and per-site work is done once.
//
// The store knows nothing about MPI semantics: the caller classifies
// groups (skip / overlap-filtered / unconditional) and receives matches
// as opaque payloads, in exactly the insertion order a pairwise scan of
// the vector would have visited them — which is what lets the driving
// detector reproduce the pairwise engine's reports byte for byte.
package shadow

import (
	"sort"

	"repro/internal/memory"
)

// VectorKey names one access vector: a window and the world rank whose
// memory the stored operations target.
type VectorKey struct {
	Win    int32
	Target int32
}

// Access describes one operation inserted into the store.
type Access struct {
	// Payload is an opaque caller value (typically an index into a
	// caller-side slice of rich per-operation state) handed back on match.
	Payload int32
	// Rank is the origin rank of the access; groups never mix ranks.
	Rank int32
	// Class is a caller-interned operation class; all skip/match
	// decisions the caller makes in a Query classify callback must be a
	// pure function of (Rank, Class) plus the query itself.
	Class int32
	// Site is the access's interned site (informational; kept on the
	// member so callers can render operands without re-interning).
	Site SiteID
	// Seq is the event sequence number within the origin rank.
	Seq int64
	// Clock is the vector clock of the access's DAG segment, read-only.
	// Successive inserts from one rank must carry elementwise monotone
	// non-decreasing clocks (true of segment clocks along program order).
	Clock []int64
	// Target is the access's byte footprint: ascending, disjoint
	// intervals. May be empty; the member is then reachable only through
	// ModeAll group matches, never through overlap filtering.
	Target []memory.Interval
}

// Query describes the probing operation of a Query call.
type Query struct {
	Rank  int32
	Seq   int64
	Clock []int64 // segment clock of the query event, read-only
}

// Mode is a caller's verdict on one (rank, class) group for one query.
type Mode uint8

const (
	// ModeSkip: no member of the group can conflict (same rank, or the
	// compatibility matrix permits the combination outright).
	ModeSkip Mode = iota
	// ModeOverlap: members conflict when concurrent and byte-overlapping
	// the query footprint.
	ModeOverlap
	// ModeAll: every concurrent member conflicts, overlap or not (the
	// MPI-2.2 local-store rule).
	ModeAll
)

type member struct {
	payload int32
	site    SiteID
	seq     int64
	clock   []int64
	target  []memory.Interval
	stamp   uint64
}

type group struct {
	rank  int32
	class int32
	all   []int32 // arena indexes, ascending seq (same rank throughout)

	// Per-query classification cache: classify runs once per group per
	// Query call, however many cells the group appears in.
	qstamp uint64
	qmode  Mode
}

// cellGroup is one group's slice of a cell. The single-member case is
// inlined (solo) — FastTrack's one-epoch summary — and spills to an
// index list only when a second member of the same (rank, class) lands
// on the same bytes.
type cellGroup struct {
	g    *group
	solo int32
	idxs []int32 // nil while the group has one member in this cell
}

func (cg *cellGroup) size() int {
	if cg.idxs == nil {
		return 1
	}
	return len(cg.idxs)
}

func (cg *cellGroup) at(i int) int32 {
	if cg.idxs == nil {
		return cg.solo
	}
	return cg.idxs[i]
}

func (cg *cellGroup) add(id int32) {
	if cg.idxs == nil {
		cg.idxs = append(make([]int32, 0, 4), cg.solo, id)
		return
	}
	cg.idxs = append(cg.idxs, id)
}

// cell is one byte interval [lo, hi) of a vector with the members whose
// footprints cover it, partitioned by group.
type cell struct {
	lo, hi  uint64
	entries []cellGroup
}

func (c *cell) add(g *group, id int32) {
	for i := range c.entries {
		if c.entries[i].g == g {
			c.entries[i].add(id)
			return
		}
	}
	c.entries = append(c.entries, cellGroup{g: g, solo: id})
}

// cloneEntries deep-copies a cell's group slices for a split: the index
// lists share backing arrays capped at their current length, so a later
// append to either half reallocates instead of clobbering the other.
func cloneEntries(es []cellGroup) []cellGroup {
	out := make([]cellGroup, len(es))
	for i, e := range es {
		e.idxs = e.idxs[:len(e.idxs):len(e.idxs)]
		out[i] = e
	}
	return out
}

type groupKey struct {
	rank  int32
	class int32
}

type vector struct {
	cells  []cell // sorted by lo, pairwise disjoint
	groups []*group
	gindex map[groupKey]*group
}

func (v *vector) group(rank, class int32) *group {
	k := groupKey{rank: rank, class: class}
	if g, ok := v.gindex[k]; ok {
		return g
	}
	g := &group{rank: rank, class: class}
	v.gindex[k] = g
	v.groups = append(v.groups, g)
	return g
}

func (v *vector) insertCell(i int, c cell) {
	v.cells = append(v.cells, cell{})
	copy(v.cells[i+1:], v.cells[i:])
	v.cells[i] = c
}

// cover registers member id of group g over interval iv: boundary cells
// are split so the covered cells tile iv exactly, gaps get fresh cells,
// and the member is appended to every covered cell.
func (v *vector) cover(iv memory.Interval, g *group, id int32) {
	lo := iv.Lo
	if lo >= iv.Hi {
		return
	}
	i := sort.Search(len(v.cells), func(i int) bool { return v.cells[i].hi > lo })
	for lo < iv.Hi {
		if i == len(v.cells) || v.cells[i].lo >= iv.Hi {
			// No existing cell before iv.Hi: one fresh cell for the rest.
			v.insertCell(i, cell{lo: lo, hi: iv.Hi, entries: []cellGroup{{g: g, solo: id}}})
			return
		}
		c := &v.cells[i]
		if c.lo > lo {
			// Gap before the next cell.
			v.insertCell(i, cell{lo: lo, hi: c.lo, entries: []cellGroup{{g: g, solo: id}}})
			i++
			lo = v.cells[i].lo
			continue
		}
		if c.lo < lo {
			// Split off the uncovered left part [c.lo, lo).
			left := cell{lo: c.lo, hi: lo, entries: c.entries}
			right := cell{lo: lo, hi: c.hi, entries: cloneEntries(c.entries)}
			v.cells[i] = left
			v.insertCell(i+1, right)
			i++
			continue
		}
		// c.lo == lo.
		if c.hi > iv.Hi {
			// Split off the uncovered right part [iv.Hi, c.hi).
			left := cell{lo: c.lo, hi: iv.Hi, entries: cloneEntries(c.entries)}
			right := cell{lo: iv.Hi, hi: c.hi, entries: c.entries}
			v.cells[i] = left
			v.insertCell(i+1, right)
			c = &v.cells[i]
		}
		// Cell is now a subset of iv.
		c.add(g, id)
		lo = c.hi
		i++
	}
}

// Store is the shadow map of one concurrent region: every vector's cell
// partition plus a shared member arena. Not safe for concurrent use;
// the detector builds one store per region scope.
type Store struct {
	depot   *Depot
	vectors map[VectorKey]*vector
	arena   []member
	scratch []int32
	qstamp  uint64
}

// NewStore returns an empty store. depot may be nil when the caller does
// its own site bookkeeping.
func NewStore(depot *Depot) *Store {
	return &Store{depot: depot, vectors: make(map[VectorKey]*vector)}
}

// Depot returns the depot the store was built with (may be nil).
func (s *Store) Depot() *Depot { return s.depot }

// Members returns the total number of inserted accesses.
func (s *Store) Members() int { return len(s.arena) }

// Cells returns the number of shadow cells of one vector.
func (s *Store) Cells(key VectorKey) int {
	if v := s.vectors[key]; v != nil {
		return len(v.cells)
	}
	return 0
}

// Groups returns the number of (rank, class) groups of one vector.
func (s *Store) Groups(key VectorKey) int {
	if v := s.vectors[key]; v != nil {
		return len(v.groups)
	}
	return 0
}

// Insert adds an access to a vector, splitting shadow cells as needed.
// Accesses must be inserted in the global order the pairwise detector
// would have scanned them (rank-major, ascending seq within a rank):
// Query reproduces exactly that order on match.
func (s *Store) Insert(key VectorKey, a Access) {
	v := s.vectors[key]
	if v == nil {
		v = &vector{gindex: make(map[groupKey]*group)}
		s.vectors[key] = v
	}
	g := v.group(a.Rank, a.Class)
	id := int32(len(s.arena))
	s.arena = append(s.arena, member{
		payload: a.Payload, site: a.Site, seq: a.Seq, clock: a.Clock, target: a.Target,
	})
	g.all = append(g.all, id)
	for _, iv := range a.Target {
		v.cover(iv, g, id)
	}
}

// concurrentRange returns the half-open index range of list whose
// members are concurrent with q. list holds arena indexes of one rank's
// accesses in ascending seq order; rank is that origin rank. A member m
// is concurrent iff neither happens-before holds:
//
//	m before q  ⇔  q.Clock[rank] >= m.seq   — fails on a suffix of list;
//	q before m  ⇔  m.clock[q.Rank] >= q.Seq — holds on a suffix of list
//	                                          (clocks are monotone).
//
// The intersection of the first suffix and the second's complement (a
// prefix) is one contiguous range.
func (s *Store) concurrentRange(list []int32, rank int32, q Query) (int, int) {
	known := q.Clock[rank]
	lo := sort.Search(len(list), func(i int) bool { return s.arena[list[i]].seq > known })
	hi := sort.Search(len(list), func(i int) bool { return s.arena[list[i]].clock[q.Rank] >= q.Seq })
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Query probes one vector with a footprint and streams back the stored
// accesses that match, in vector insertion order. classify is called at
// most once per (rank, class) group and decides how the group matches;
// emit receives each matching member's payload exactly once per Query
// call, even when its footprint spans several probed cells (per-member
// stamps dedup the cell walk). fp may differ from the probing event's
// own footprint slice passed at insert time; it is only read.
func (s *Store) Query(key VectorKey, q Query, fp []memory.Interval,
	classify func(rank, class int32) Mode, emit func(payload int32)) {
	v := s.vectors[key]
	if v == nil {
		return
	}
	s.qstamp++
	s.scratch = s.scratch[:0]

	mode := func(g *group) Mode {
		if g.qstamp != s.qstamp {
			g.qstamp = s.qstamp
			g.qmode = classify(g.rank, g.class)
		}
		return g.qmode
	}
	collect := func(id int32) {
		m := &s.arena[id]
		if m.stamp == s.qstamp {
			return
		}
		m.stamp = s.qstamp
		s.scratch = append(s.scratch, id)
	}

	// Unconditional groups: the whole concurrent range of the vector-wide
	// list matches, byte overlap or not.
	for _, g := range v.groups {
		if mode(g) != ModeAll {
			continue
		}
		lo, hi := s.concurrentRange(g.all, g.rank, q)
		for _, id := range g.all[lo:hi] {
			collect(id)
		}
	}

	// Overlap-filtered groups: walk only the cells the query footprint
	// touches. A cell interval is a subset of each member's footprint, so
	// touching a cell proves overlap with every member in it.
	for _, iv := range fp {
		if iv.Lo >= iv.Hi {
			continue
		}
		i := sort.Search(len(v.cells), func(i int) bool { return v.cells[i].hi > iv.Lo })
		for ; i < len(v.cells) && v.cells[i].lo < iv.Hi; i++ {
			c := &v.cells[i]
			for j := range c.entries {
				cg := &c.entries[j]
				if mode(cg.g) != ModeOverlap {
					continue
				}
				lo, hi := s.concurrentRangeCell(cg, q)
				for k := lo; k < hi; k++ {
					collect(cg.at(k))
				}
			}
		}
	}

	// Arena indexes increase in insertion order, so sorting the matches
	// restores exactly the order a pairwise vector scan reports pairs in.
	sort.Slice(s.scratch, func(i, j int) bool { return s.scratch[i] < s.scratch[j] })
	for _, id := range s.scratch {
		emit(s.arena[id].payload)
	}
}

// concurrentRangeCell is concurrentRange over a cellGroup's (possibly
// inlined) member list.
func (s *Store) concurrentRangeCell(cg *cellGroup, q Query) (int, int) {
	if cg.idxs == nil {
		m := &s.arena[cg.solo]
		if m.seq > q.Clock[cg.g.rank] && m.clock[q.Rank] < q.Seq {
			return 0, 1
		}
		return 0, 0
	}
	known := q.Clock[cg.g.rank]
	lo := sort.Search(len(cg.idxs), func(i int) bool { return s.arena[cg.idxs[i]].seq > known })
	hi := sort.Search(len(cg.idxs), func(i int) bool { return s.arena[cg.idxs[i]].clock[q.Rank] >= q.Seq })
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
