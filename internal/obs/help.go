package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Help text for every metric family the tools register. The exposition
// writer emits these as "# HELP" lines, the README's metric inventory is
// generated from them, and the registry hygiene test fails when a family
// shows up here without help or in the code without an entry — keeping
// the three views of the metric surface from drifting apart.

// metricKind is the Prometheus exposition kind of a family, for the
// generated inventory. It mirrors the kind WritePrometheus emits.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
	kindSummary   metricKind = "summary"
)

// metricHelp describes one metric family.
type metricHelp struct {
	Kind metricKind
	Help string
}

// helpText maps every known metric family name to its kind and help
// string. Keep entries sorted by name; the inventory is generated in
// this order.
var helpText = map[string]metricHelp{
	"mcchecker_analysis_degraded_total": {kindCounter,
		"Analyses that produced a degraded report (salvaged prefix or upstream loss notes)."},
	"mcchecker_analysis_epochs_total": {kindCounter,
		"Access epochs extracted and checked by the analyzer."},
	"mcchecker_analysis_events_total": {kindCounter,
		"Trace events consumed by the analysis pipeline."},
	"mcchecker_analysis_regions_total": {kindCounter,
		"Concurrent regions examined by the cross-process detector."},
	"mcchecker_analysis_salvage_retries_total": {kindCounter,
		"Salvage attempts that failed and were retried at an earlier synchronization cut."},
	"mcchecker_analysis_violations_total": {kindCounter,
		"Memory consistency violations reported, labeled by class."},
	"mcchecker_explore_distinct_violations": {kindGauge,
		"Distinct violation signatures found across an exploration sweep."},
	"mcchecker_explore_failures_total": {kindCounter,
		"Schedule runs that failed to execute or analyze during exploration."},
	"mcchecker_explore_minimize_runs_total": {kindCounter,
		"Extra program runs spent minimizing violating schedules (ddmin)."},
	"mcchecker_explore_schedules_total": {kindCounter,
		"Schedules executed by the exploration sweep."},
	"mcchecker_explore_violating_total": {kindCounter,
		"Schedules whose run produced at least one violation."},
	"mcchecker_faults_injected_total": {kindCounter,
		"Faults injected by the simulator, labeled by kind."},
	"mcchecker_phase_seconds": {kindSummary,
		"Wall-clock seconds spent per named pipeline phase."},
	"mcchecker_pipeline_decode_events_per_sec": {kindGauge,
		"Decode throughput of the most recent trace read, in events per second."},
	"mcchecker_pipeline_decode_pool_hits_total": {kindCounter,
		"Decoder scratch-buffer pool hits."},
	"mcchecker_pipeline_decode_pool_misses_total": {kindCounter,
		"Decoder scratch-buffer pool misses (fresh allocations)."},
	"mcchecker_pipeline_decode_workers": {kindGauge,
		"Worker goroutines used by the most recent parallel trace decode."},
	"mcchecker_pipeline_front_end_workers": {kindGauge,
		"Worker goroutines used by the analyzer front end (model build and epoch extraction)."},
	"mcchecker_pipeline_sink_pool_hits_total": {kindCounter,
		"Event-sink slab pool hits."},
	"mcchecker_pipeline_sink_pool_misses_total": {kindCounter,
		"Event-sink slab pool misses (fresh allocations)."},
	"mcchecker_profiler_events_total": {kindCounter,
		"Events observed by the online profiler, per rank."},
	"mcchecker_profiler_rank_events": {kindGauge,
		"Events currently attributed to each rank by the online profiler."},
	"mcchecker_profiler_relevance_total": {kindCounter,
		"Profiler relevance-filter decisions, labeled hit (kept) or miss (discarded)."},
	"mcchecker_serve_inflight_jobs": {kindGauge,
		"Jobs admitted by the serve daemon and not yet in a terminal state."},
	"mcchecker_serve_job_latency_us": {kindHistogram,
		"Submission-to-terminal latency of serve jobs, in microseconds (log2 buckets)."},
	"mcchecker_serve_jobs_submitted_total": {kindCounter,
		"Jobs admitted by the serve daemon."},
	"mcchecker_serve_jobs_total": {kindCounter,
		"Serve jobs reaching a terminal state, labeled by result (done, degraded, failed, quarantined)."},
	"mcchecker_serve_panics_recovered_total": {kindCounter,
		"Analysis panics the serve daemon recovered into degraded reports."},
	"mcchecker_serve_queue_depth": {kindGauge,
		"Jobs sitting in the serve daemon's run queue."},
	"mcchecker_serve_retries_total": {kindCounter,
		"Failed serve job attempts scheduled for a backoff retry."},
	"mcchecker_serve_shed_total": {kindCounter,
		"Submissions shed by admission control because the queue budget was exhausted."},
	"mcchecker_sim_collectives_total": {kindCounter,
		"Collective operations executed by the simulator, per rank."},
	"mcchecker_sim_epochs_total": {kindCounter,
		"Synchronization epochs opened and closed by the simulator, labeled by mode."},
	"mcchecker_sim_messages_total": {kindCounter,
		"Point-to-point messages through the simulator, per rank, labeled by direction."},
	"mcchecker_sim_rank_failures_total": {kindCounter,
		"Simulated rank crashes (fail-stop fault injection)."},
	"mcchecker_sim_rma_ops_total": {kindCounter,
		"RMA operations issued in the simulator, labeled deferred (queued per rank) or applied."},
	"mcchecker_static_diagnostics_total": {kindCounter,
		"Diagnostics emitted by the static epoch-state checker, labeled by rule."},
	"mcchecker_static_files_parsed_total": {kindCounter,
		"Source files parsed by the static checker."},
	"mcchecker_static_functions_checked_total": {kindCounter,
		"Function bodies checked by the static checker."},
	"mcchecker_static_functions_summarized_total": {kindCounter,
		"Function summaries computed for interprocedural static analysis."},
	"mcchecker_stream_boundaries_total": {kindCounter,
		"Global synchronization boundaries detected by the streaming checker."},
	"mcchecker_stream_coalesced_regions_total": {kindCounter,
		"Adjacent slabs coalesced into one concurrent region by the streaming checker."},
	"mcchecker_stream_peak_buffered_events": {kindGauge,
		"Peak number of events buffered by the streaming checker."},
	"mcchecker_stream_slab_events": {kindHistogram,
		"Events per streamed slab (distribution)."},
	"mcchecker_stream_slabs_total": {kindCounter,
		"Slabs flushed by the streaming checker."},
	"mcchecker_trace_decoded_bytes_total": {kindCounter,
		"Bytes of trace data decoded."},
	"mcchecker_trace_decoded_events_total": {kindCounter,
		"Trace events decoded."},
	"mcchecker_trace_encoded_bytes_total": {kindCounter,
		"Bytes of trace data encoded by writers."},
	"mcchecker_trace_encoded_events_total": {kindCounter,
		"Trace events encoded by writers."},
	"mcchecker_trace_salvaged_events_total": {kindCounter,
		"Events recovered from truncated trace streams by the salvaging reader."},
	"mcchecker_trace_truncated_streams_total": {kindCounter,
		"Trace streams found truncated or unreadable by the salvaging reader."},
}

// Help returns the help string for a metric family, or "" when the
// family is unknown.
func Help(name string) string {
	return helpText[name].Help
}

// HelpNames returns every family name with help text, sorted.
func HelpNames() []string {
	names := make([]string, 0, len(helpText))
	for name := range helpText {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// InventoryMarkdown renders the metric inventory as a GitHub-flavored
// markdown table, one row per family, sorted by name. The README embeds
// it between "<!-- metrics:begin -->" and "<!-- metrics:end -->"
// markers; a golden test regenerates the table and fails when the README
// copy is stale.
func InventoryMarkdown() string {
	var b strings.Builder
	b.WriteString("| Metric | Kind | Description |\n")
	b.WriteString("|---|---|---|\n")
	for _, name := range HelpNames() {
		h := helpText[name]
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", name, h.Kind, h.Help)
	}
	return b.String()
}
