// Package obs is the observability layer of the MC-Checker reproduction:
// counters, gauges, log-scale histograms, and lightweight phase spans,
// registered in a Registry and exposed as a stable Snapshot (text,
// Prometheus exposition, or JSON).
//
// The paper's evaluation (§VII) is entirely about measured behaviour —
// per-phase analysis time, profiling overhead with and without ST-Analyzer
// selection, trace volume — and this package is what makes those numbers
// observable outside ad-hoc benchmarks.
//
// Two properties keep the instrumentation from perturbing what it
// measures:
//
//   - Every metric type is nil-safe: a nil *Registry hands out nil metric
//     handles, and every mutating method on a nil handle is a no-op. The
//     disabled path is a single pointer check with no allocation, so hot
//     paths (the profiler's emit, the simulator's per-call accounting) can
//     be instrumented unconditionally.
//   - Hot counters touched concurrently by rank goroutines are sharded
//     across cache-line-padded slots (RankCounter), the same false-sharing
//     discipline as the profiler's per-rank sequence counters.
//
// The package is dependency-free (stdlib only) so that every layer of the
// pipeline — simulator, profiler, trace codec, offline analyzer, streaming
// checker — can import it without cycles.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// meta is the identity of one metric: its family name and its rendered
// label pairs (`k="v",k2="v2"`, empty for an unlabeled metric).
type meta struct {
	name   string
	labels string
}

// renderLabels turns alternating key/value pairs into a deterministic
// Prometheus-style label body. Keys are sorted so that the same logical
// metric always maps to the same registry entry.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd number of label key/value arguments")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	s := ""
	for i, p := range pairs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", p.k, p.v)
	}
	return s
}

func (m meta) key() string { return m.name + "{" + m.labels + "}" }

// Counter is a monotonically increasing value updated with atomic adds.
// Use RankCounter instead when many rank goroutines hit it concurrently.
type Counter struct {
	meta
	v atomic.Int64
}

// Add increases the counter. A nil receiver is a no-op.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one. A nil receiver is a no-op.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// rankShards is the number of cache-line-padded slots of a RankCounter.
// Ranks map to slots modulo rankShards, so worlds up to 64 ranks see zero
// inter-rank contention and larger worlds see only bounded sharing.
const rankShards = 64

type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// RankCounter is a counter sharded by rank across cache-line-padded slots,
// for hot paths touched concurrently by every rank goroutine.
type RankCounter struct {
	meta
	shards [rankShards]paddedInt64
}

// Inc increases the shard of rank by one. A nil receiver is a no-op.
func (c *RankCounter) Inc(rank int32) {
	if c == nil {
		return
	}
	c.shards[uint32(rank)%rankShards].v.Add(1)
}

// Add increases the shard of rank by n. A nil receiver is a no-op.
func (c *RankCounter) Add(rank int32, n int64) {
	if c == nil {
		return
	}
	c.shards[uint32(rank)%rankShards].v.Add(n)
}

// Value returns the sum across shards (0 on a nil receiver).
func (c *RankCounter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a value that can move both ways (or track a maximum).
type Gauge struct {
	meta
	v atomic.Int64
}

// Set stores v. A nil receiver is a no-op.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n. A nil receiver is a no-op.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of histogram buckets: upper bounds 1, 2, 4, …,
// 2^(histBuckets-2), and a final +Inf bucket. Values are non-negative
// integers (event counts, byte counts, nanoseconds).
const histBuckets = 28

// BucketUpper returns the inclusive upper bound of bucket i, or -1 for the
// final +Inf bucket.
func BucketUpper(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return 1 << uint(i)
}

// bucketIndex maps a value to the smallest bucket whose upper bound holds
// it: v ≤ 2^i.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	return i
}

// Histogram is a fixed log2-bucketed distribution (counts per power-of-two
// upper bound, plus total count and sum).
type Histogram struct {
	meta
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. A nil receiver is a no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// SpanStats accumulates the wall time of a named phase: how often it ran,
// total and maximum duration.
type SpanStats struct {
	meta
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

// Span is one in-flight timed section; End records it.
type Span struct {
	s     *SpanStats
	start time.Time
}

// Start opens a timed section. On a nil receiver the returned Span is
// inert (End is a no-op and the clock is never read).
func (s *SpanStats) Start() Span {
	if s == nil {
		return Span{}
	}
	return Span{s: s, start: time.Now()}
}

// End closes the section and folds its duration into the stats.
func (sp Span) End() {
	if sp.s == nil {
		return
	}
	d := time.Since(sp.start).Nanoseconds()
	sp.s.count.Add(1)
	sp.s.totalNs.Add(d)
	sp.s.maxNs.Store(maxInt64(sp.s.maxNs.Load(), d))
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Count returns how many times the span completed (0 on a nil receiver).
func (s *SpanStats) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Total returns the accumulated duration (0 on a nil receiver).
func (s *SpanStats) Total() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.totalNs.Load())
}

// Registry holds the metrics of one run. The zero value is not usable; a
// nil *Registry is the disabled configuration: every lookup returns a nil
// handle whose methods are no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	rankCtrs   map[string]*RankCounter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	spans      map[string]*SpanStats
	collectors []func() []GaugeValue

	// famKind records each family name's exposition kind ("counter",
	// "gauge", "histogram", "summary") and instKind each full (name,
	// labels) key's Go instrument type. Both exist to fail loudly on
	// collisions that the per-type maps would otherwise silently merge
	// or, worse, double-render: one name exposed under two TYPEs, or the
	// same sample emitted by both a Counter and a RankCounter.
	famKind  map[string]string
	instKind map[string]string
}

// NewRegistry returns an empty registry, safe for concurrent use.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		rankCtrs: map[string]*RankCounter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*SpanStats{},
		famKind:  map[string]string{},
		instKind: map[string]string{},
	}
}

// checkKindsLocked validates one registration against the collision
// rules and records it. Caller holds mu.
func (r *Registry) checkKindsLocked(m meta, instrument, exposition string) {
	if prev, ok := r.famKind[m.name]; ok && prev != exposition {
		panic(fmt.Sprintf("obs: metric family %q registered as both %s and %s",
			m.name, prev, exposition))
	}
	r.famKind[m.name] = exposition
	if prev, ok := r.instKind[m.key()]; ok && prev != instrument {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s",
			m.key(), prev, instrument))
	}
	r.instKind[m.key()] = instrument
}

// Counter returns (registering on first use) the counter with the given
// name and label key/value pairs. Nil registry returns nil.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	m := meta{name: name, labels: renderLabels(kv)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[m.key()]; ok {
		return c
	}
	r.checkKindsLocked(m, "Counter", "counter")
	c := &Counter{meta: m}
	r.counters[m.key()] = c
	return c
}

// RankCounter returns (registering on first use) the sharded counter with
// the given name and labels. Nil registry returns nil.
func (r *Registry) RankCounter(name string, kv ...string) *RankCounter {
	if r == nil {
		return nil
	}
	m := meta{name: name, labels: renderLabels(kv)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.rankCtrs[m.key()]; ok {
		return c
	}
	r.checkKindsLocked(m, "RankCounter", "counter")
	c := &RankCounter{meta: m}
	r.rankCtrs[m.key()] = c
	return c
}

// Gauge returns (registering on first use) the gauge with the given name
// and labels. Nil registry returns nil.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := meta{name: name, labels: renderLabels(kv)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[m.key()]; ok {
		return g
	}
	r.checkKindsLocked(m, "Gauge", "gauge")
	g := &Gauge{meta: m}
	r.gauges[m.key()] = g
	return g
}

// Histogram returns (registering on first use) the histogram with the
// given name and labels. Nil registry returns nil.
func (r *Registry) Histogram(name string, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := meta{name: name, labels: renderLabels(kv)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[m.key()]; ok {
		return h
	}
	r.checkKindsLocked(m, "Histogram", "histogram")
	h := &Histogram{meta: m}
	r.hists[m.key()] = h
	return h
}

// Span returns (registering on first use) the span stats with the given
// name and labels. Nil registry returns nil.
func (r *Registry) Span(name string, kv ...string) *SpanStats {
	if r == nil {
		return nil
	}
	m := meta{name: name, labels: renderLabels(kv)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.spans[m.key()]; ok {
		return s
	}
	r.checkKindsLocked(m, "SpanStats", "summary")
	s := &SpanStats{meta: m}
	r.spans[m.key()] = s
	return s
}

// StartSpan opens a timed section in one call: StartSpan(...).End() brackets
// a phase. On a nil registry the returned Span is inert.
func (r *Registry) StartSpan(name string, kv ...string) Span {
	return r.Span(name, kv...).Start()
}

// AddCollector registers a function contributing computed gauge values at
// snapshot time (for state owned by a component, e.g. the profiler's exact
// per-rank event counts). A nil registry ignores the collector.
func (r *Registry) AddCollector(f func() []GaugeValue) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}
