package obs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The metric surface is governed by three invariants: every family name
// in the source has help text, every name is well-formed snake_case, and
// the registry refuses to merge conflicting registrations. These tests
// pin all three.

var metricNameRe = regexp.MustCompile(`mcchecker_[a-z0-9_]*`)

// sourceMetricNames scans every non-test .go file in the repository for
// mcchecker_* string fragments. Concatenated names (e.g. a "_total"
// suffix appended at runtime) surface as prefixes of full names.
func sourceMetricNames(t *testing.T) map[string][]string {
	t.Helper()
	root := filepath.Join("..", "..")
	found := map[string][]string{} // fragment -> files
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricNameRe.FindAllString(string(data), -1) {
			found[m] = append(found[m], path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	return found
}

func TestEveryMetricInSourceHasHelp(t *testing.T) {
	names := sourceMetricNames(t)
	if len(names) == 0 {
		t.Fatal("found no mcchecker_* metric names in source; scan is broken")
	}
	for name, files := range names {
		if _, ok := helpText[name]; ok {
			continue
		}
		// A concatenation fragment is fine if at least one full family
		// name extends it.
		fragment := false
		for full := range helpText {
			if len(full) > len(name) && strings.HasPrefix(full, name) {
				fragment = true
				break
			}
		}
		if !fragment {
			t.Errorf("metric %q (used in %s) has no helpText entry; add one in help.go",
				name, files[0])
		}
	}
}

func TestHelpEntriesAreWellFormed(t *testing.T) {
	wellFormed := regexp.MustCompile(`^mcchecker_[a-z0-9]+(_[a-z0-9]+)*$`)
	for name, h := range helpText {
		if !wellFormed.MatchString(name) {
			t.Errorf("metric name %q is not snake_case with the mcchecker_ prefix", name)
		}
		if strings.TrimSpace(h.Help) == "" {
			t.Errorf("metric %q has empty help text", name)
		}
		switch h.Kind {
		case kindCounter, kindGauge, kindHistogram, kindSummary:
		default:
			t.Errorf("metric %q has unknown kind %q", name, h.Kind)
		}
		if h.Kind == kindCounter != strings.HasSuffix(name, "_total") {
			t.Errorf("metric %q: counters and only counters must end in _total (kind %s)", name, h.Kind)
		}
	}
}

func TestHelpNamesSortedAndComplete(t *testing.T) {
	names := HelpNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("HelpNames not strictly sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
	for _, name := range names {
		if Help(name) == "" {
			t.Errorf("Help(%q) empty despite inventory entry", name)
		}
	}
	if Help("mcchecker_no_such_metric") != "" {
		t.Error("Help of unknown metric should be empty")
	}
}

func expectPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", what)
		}
	}()
	f()
}

func TestRegistryRejectsCollisions(t *testing.T) {
	// Family-level: one name cannot expose as two different kinds.
	reg := NewRegistry()
	reg.Counter("mcchecker_test_total")
	expectPanic(t, "counter family reused as gauge", func() {
		reg.Gauge("mcchecker_test_total")
	})
	reg2 := NewRegistry()
	reg2.Histogram("mcchecker_test_events")
	expectPanic(t, "histogram family reused as summary", func() {
		reg2.Span("mcchecker_test_events")
	})

	// Instrument-level: the same (name, labels) cannot be two Go types
	// even when the exposition kind matches.
	reg3 := NewRegistry()
	reg3.Counter("mcchecker_test_ops_total", "state", "applied")
	expectPanic(t, "Counter instrument reused as RankCounter", func() {
		reg3.RankCounter("mcchecker_test_ops_total", "state", "applied")
	})
}

func TestRegistryAllowsCounterRankCounterSplitFamilies(t *testing.T) {
	// The simulator's mcchecker_sim_rma_ops_total pattern: one family,
	// plain Counter for one label value and RankCounter for another.
	// Same exposition kind, different label sets — legal.
	reg := NewRegistry()
	reg.Counter("mcchecker_test_ops_total", "state", "applied").Inc()
	reg.RankCounter("mcchecker_test_ops_total", "state", "deferred").Inc(0)
	snap := reg.Snapshot()
	if got := snap.CounterValue("mcchecker_test_ops_total", "state", "applied"); got != 1 {
		t.Errorf("applied = %d, want 1", got)
	}
	if got := snap.CounterValue("mcchecker_test_ops_total", "state", "deferred"); got != 1 {
		t.Errorf("deferred = %d, want 1", got)
	}
}

func TestRegistryIdempotentReregistration(t *testing.T) {
	// Same name, labels, and type returns the same instrument — no panic.
	reg := NewRegistry()
	a := reg.Counter("mcchecker_test_total")
	b := reg.Counter("mcchecker_test_total")
	if a != b {
		t.Error("re-registration returned a distinct counter")
	}
}
