package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StatsServer is a small HTTP listener exposing the live metric registry
// and the runtime profiling endpoints while a long-running command
// (analyze, explore, soak) is in flight:
//
//	/metrics        Prometheus text exposition of the registry
//	/stats          human-readable breakdown (WriteText)
//	/stats.json     JSON snapshot
//	/debug/pprof/*  net/http/pprof handlers (profile, heap, trace, ...)
type StatsServer struct {
	ln  net.Listener
	srv *http.Server
}

// RegisterStats mounts the metric and profiling endpoints (/metrics,
// /stats, /stats.json, /debug/pprof/*) on an existing mux, so servers
// with their own API surface — the serve daemon — expose the same
// observability contract as the standalone stats listener. The registry
// may be nil, in which case the metric endpoints serve empty snapshots.
func RegisterStats(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeStats starts a stats server on addr (":0" picks a free port) and
// returns once the listener is bound; requests are served in the
// background. The registry may be nil, in which case the metric endpoints
// serve empty snapshots and only the pprof endpoints are interesting.
func ServeStats(addr string, reg *Registry) (*StatsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stats listener: %w", err)
	}
	mux := http.NewServeMux()
	RegisterStats(mux, reg)
	s := &StatsServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *StatsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *StatsServer) Close() error { return s.srv.Close() }
