package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Chrome trace-event export: the JSON Array/Object format understood by
// Perfetto (ui.perfetto.dev) and chrome://tracing. Tracks become
// processes (pid), lanes become threads (tid), spans become complete
// ("X") events with microsecond timestamps, instants become "i" events.
// The export is rendered with a fixed field order and fully sorted
// (tracks and lanes in natural order, events by timestamp with the
// per-lane sequence as tie-breaker), so the same recording always
// serializes to the same bytes — the property the determinism tests pin.

// WriteChromeTrace renders the recording as Chrome trace-event JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	var events []event
	if r != nil {
		events = r.snapshot()
	}

	// Deterministic track/lane numbering: natural order of names.
	trackLanes := map[string]map[string]bool{}
	for i := range events {
		ev := &events[i]
		if trackLanes[ev.track] == nil {
			trackLanes[ev.track] = map[string]bool{}
		}
		trackLanes[ev.track][ev.lane] = true
	}
	tracks := make([]string, 0, len(trackLanes))
	for t := range trackLanes {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool { return naturalLess(tracks[i], tracks[j]) })
	pid := map[string]int{}
	tid := map[laneKey]int{}
	laneOrder := map[string][]string{}
	for i, t := range tracks {
		pid[t] = i + 1
		lanes := make([]string, 0, len(trackLanes[t]))
		for l := range trackLanes[t] {
			lanes = append(lanes, l)
		}
		sort.Slice(lanes, func(a, b int) bool { return naturalLess(lanes[a], lanes[b]) })
		laneOrder[t] = lanes
		for j, l := range lanes {
			tid[laneKey{t, l}] = j
		}
	}

	sort.Slice(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if a.track != b.track {
			return naturalLess(a.track, b.track)
		}
		if a.lane != b.lane {
			return naturalLess(a.lane, b.lane)
		}
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.dur != b.dur {
			return a.dur > b.dur // parent spans before the spans they contain
		}
		return a.seq < b.seq
	})

	var sb strings.Builder
	sb.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(line string) {
		if !first {
			sb.WriteString(",\n")
		} else {
			sb.WriteString("\n")
			first = false
		}
		sb.WriteString(line)
	}
	// Metadata: process (track) and thread (lane) names, plus sort
	// indexes so Perfetto lists them in our natural order.
	for _, t := range tracks {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid[t], strconv.Quote(t)))
		emit(fmt.Sprintf(`{"name":"process_sort_index","ph":"M","pid":%d,"tid":0,"args":{"sort_index":%d}}`,
			pid[t], pid[t]))
		for _, l := range laneOrder[t] {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pid[t], tid[laneKey{t, l}], strconv.Quote(l)))
			emit(fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
				pid[t], tid[laneKey{t, l}], tid[laneKey{t, l}]))
		}
	}
	for i := range events {
		ev := &events[i]
		var line strings.Builder
		fmt.Fprintf(&line, `{"name":%s,`, strconv.Quote(ev.name))
		if ev.dur < 0 {
			fmt.Fprintf(&line, `"ph":"i","s":"t","ts":%d,`, ev.ts)
		} else {
			fmt.Fprintf(&line, `"ph":"X","ts":%d,"dur":%d,`, ev.ts, ev.dur)
		}
		fmt.Fprintf(&line, `"pid":%d,"tid":%d`, pid[ev.track], tid[laneKey{ev.track, ev.lane}])
		if len(ev.args) >= 2 {
			line.WriteString(`,"args":{`)
			for k := 0; k+1 < len(ev.args); k += 2 {
				if k > 0 {
					line.WriteByte(',')
				}
				line.WriteString(strconv.Quote(ev.args[k]))
				line.WriteByte(':')
				line.WriteString(strconv.Quote(ev.args[k+1]))
			}
			line.WriteByte('}')
		}
		line.WriteByte('}')
		emit(line.String())
	}
	sb.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteText renders the recording as a plain-text tree: tracks, lanes,
// and spans nested by containment, with instants as leaf lines. The
// same ordering rules as the Chrome export apply, so the text form of a
// deterministic recording is reproducible too.
func (r *Recorder) WriteText(w io.Writer) error {
	var events []event
	unit := "µs"
	if r != nil {
		events = r.snapshot()
		if r.det {
			unit = "t" // logical ticks
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if a.track != b.track {
			return naturalLess(a.track, b.track)
		}
		if a.lane != b.lane {
			return naturalLess(a.lane, b.lane)
		}
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.dur != b.dur {
			return a.dur > b.dur
		}
		return a.seq < b.seq
	})

	var sb strings.Builder
	curTrack, curLane := "", ""
	type open struct{ end int64 }
	var stack []open
	for i := range events {
		ev := &events[i]
		if ev.track != curTrack {
			fmt.Fprintf(&sb, "== %s ==\n", ev.track)
			curTrack, curLane = ev.track, ""
			stack = stack[:0]
		}
		if ev.lane != curLane {
			fmt.Fprintf(&sb, "  -- %s --\n", ev.lane)
			curLane = ev.lane
			stack = stack[:0]
		}
		for len(stack) > 0 && ev.ts >= stack[len(stack)-1].end {
			stack = stack[:len(stack)-1]
		}
		indent := strings.Repeat("  ", 2+len(stack))
		if ev.dur < 0 {
			fmt.Fprintf(&sb, "%s@%d%s %s", indent, ev.ts, unit, ev.name)
		} else {
			fmt.Fprintf(&sb, "%s%s [%d%s +%d%s]", indent, ev.name, ev.ts, unit, ev.dur, unit)
			stack = append(stack, open{end: ev.ts + ev.dur})
		}
		for k := 0; k+1 < len(ev.args); k += 2 {
			fmt.Fprintf(&sb, " %s=%s", ev.args[k], ev.args[k+1])
		}
		sb.WriteByte('\n')
	}
	if len(events) == 0 {
		sb.WriteString("(no spans recorded)\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Summary describes a validated Chrome trace for smoke checks.
type Summary struct {
	Events   int // span + instant events (metadata excluded)
	Tracks   int
	Lanes    int
	Metadata int
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and checks
// the shape every consumer (Perfetto, chrome://tracing, catapult)
// relies on: a traceEvents array whose entries carry name/ph/pid/tid,
// with numeric ts and dur on complete events. It returns a summary of
// what the trace contains, or an error naming the first malformed event.
func ValidateChromeTrace(data []byte) (*Summary, error) {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("tracing: not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return nil, fmt.Errorf("tracing: traceEvents is missing or empty")
	}
	sum := &Summary{}
	pids := map[float64]bool{}
	lanes := map[[2]float64]bool{}
	for i, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		if name == "" {
			return nil, fmt.Errorf("tracing: event %d has no name", i)
		}
		ph, _ := ev["ph"].(string)
		pidV, pidOK := ev["pid"].(float64)
		tidV, tidOK := ev["tid"].(float64)
		if !pidOK || !tidOK {
			return nil, fmt.Errorf("tracing: event %d (%s) lacks numeric pid/tid", i, name)
		}
		switch ph {
		case "M":
			sum.Metadata++
			continue
		case "X":
			ts, tsOK := ev["ts"].(float64)
			dur, durOK := ev["dur"].(float64)
			if !tsOK || !durOK || ts < 0 || dur < 0 {
				return nil, fmt.Errorf("tracing: complete event %d (%s) needs ts and dur >= 0", i, name)
			}
		case "i":
			if _, ok := ev["ts"].(float64); !ok {
				return nil, fmt.Errorf("tracing: instant event %d (%s) needs a numeric ts", i, name)
			}
		default:
			return nil, fmt.Errorf("tracing: event %d (%s) has unsupported phase %q", i, name, ph)
		}
		sum.Events++
		pids[pidV] = true
		lanes[[2]float64{pidV, tidV}] = true
	}
	if sum.Events == 0 {
		return nil, fmt.Errorf("tracing: trace holds only metadata, no spans or instants")
	}
	sum.Tracks = len(pids)
	sum.Lanes = len(lanes)
	return sum, nil
}

// naturalLess compares strings with embedded integers numerically, so
// "worker 2" sorts before "worker 10" and "region 9" before "region 12".
func naturalLess(a, b string) bool {
	for a != "" && b != "" {
		ad, an := leadingInt(a)
		bd, bn := leadingInt(b)
		if an > 0 && bn > 0 {
			if ad != bd {
				return ad < bd
			}
			a, b = a[an:], b[bn:]
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return a == "" && b != ""
}

// leadingInt parses the digit prefix of s, returning its value and length
// (0 length when s does not start with a digit).
func leadingInt(s string) (int64, int) {
	n := 0
	var v int64
	for n < len(s) && s[n] >= '0' && s[n] <= '9' {
		if v < 1<<56 {
			v = v*10 + int64(s[n]-'0')
		}
		n++
	}
	return v, n
}
