// Package tracing is the causal-tracing layer of the MC-Checker
// reproduction: a low-overhead span recorder whose timelines export to
// Chrome trace-event JSON (loadable in Perfetto or chrome://tracing) and
// to a plain-text tree.
//
// Where internal/obs aggregates (counters, histograms, total phase
// times), this package keeps *individual* timed events with their track
// and lane, so the interleaving itself is visible: which worker ran
// which region when, how long each rank's decode took, where a pool sat
// idle. That is the same idea the paper applies to user programs —
// reconstructing causal order from observed events — pointed at the
// checker's own pipeline.
//
// A Recorder organizes spans into tracks (Perfetto "processes": one per
// pipeline stage — decode, model, epochs, detect_cross, ...) and lanes
// within a track (Perfetto "threads": one per worker, or one per scope
// in deterministic mode). All methods are goroutine-safe and nil-safe: a
// nil *Recorder hands out nil *Spans whose methods are no-ops, so
// pipeline code instruments unconditionally and pays one pointer check
// when tracing is off.
//
// Two clock modes:
//
//   - Wall mode (New): timestamps are microseconds since the recorder
//     was created, lanes are per-worker. This is the real timeline used
//     to diagnose scheduling and load imbalance.
//   - Deterministic mode (NewDeterministic): timestamps are per-lane
//     logical ticks and Lane routes spans to per-scope lanes (a scope —
//     one rank's decode, one region's detection — is processed
//     sequentially whatever the worker count, unlike the worker that
//     happens to pick it up). Two runs of the same analysis produce
//     byte-identical exports at any worker count, which is what makes
//     recordings testable.
package tracing

import (
	"sync"
	"time"
)

// Config parameterizes a Recorder.
type Config struct {
	// Clock supplies wall timestamps; nil means time.Now. Ignored in
	// deterministic mode (which uses per-lane logical ticks).
	Clock func() time.Time
	// Deterministic selects logical-tick timestamps and per-scope lanes
	// (see the package comment).
	Deterministic bool
}

// Recorder collects completed spans and instants. Create one with New,
// NewDeterministic, or NewWithConfig; the zero value is not usable, but a
// nil *Recorder is the disabled configuration (every method no-ops).
type Recorder struct {
	det   bool
	clock func() time.Time
	start time.Time

	mu     sync.Mutex
	events []event
	lanes  map[laneKey]*laneState
}

type laneKey struct{ track, lane string }

// laneState orders one lane's events: tick is the deterministic-mode
// logical clock, seq the per-lane append order used as the sort
// tie-breaker in exports.
type laneState struct {
	tick int64
	seq  int64
}

// event is one completed span (dur >= 0) or instant (dur < 0).
type event struct {
	track string
	lane  string
	name  string
	ts    int64 // µs since start (wall mode) or lane-local tick
	dur   int64 // µs or ticks; < 0 marks an instant
	seq   int64 // per-(track,lane) append order
	args  []string
}

// New returns a wall-clock recorder (lanes per worker, µs timestamps).
func New() *Recorder { return NewWithConfig(Config{}) }

// NewDeterministic returns a recorder whose exports are byte-identical
// across runs and worker counts: logical-tick timestamps, scope lanes.
func NewDeterministic() *Recorder { return NewWithConfig(Config{Deterministic: true}) }

// NewWithConfig returns a recorder with an explicit configuration.
func NewWithConfig(cfg Config) *Recorder {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	r := &Recorder{
		det:   cfg.Deterministic,
		clock: clock,
		lanes: map[laneKey]*laneState{},
	}
	r.start = clock()
	return r
}

// Deterministic reports whether the recorder is in deterministic mode.
// A nil recorder reports false.
func (r *Recorder) Deterministic() bool { return r != nil && r.det }

// Lane selects the lane for a unit of work: the worker's lane in wall
// mode (so pool occupancy and idle time are visible), the scope's lane in
// deterministic mode (so the export does not depend on which worker
// happened to pick the scope up). On a nil recorder it returns worker.
func (r *Recorder) Lane(worker, scope string) string {
	if r != nil && r.det {
		return scope
	}
	return worker
}

// lane returns the lane state for (track, lane), creating it on first
// use. Caller holds mu.
func (r *Recorder) laneLocked(track, lane string) *laneState {
	k := laneKey{track, lane}
	ls := r.lanes[k]
	if ls == nil {
		ls = &laneState{}
		r.lanes[k] = ls
	}
	return ls
}

// now returns the next timestamp for a lane. Caller holds mu.
func (r *Recorder) nowLocked(ls *laneState) int64 {
	if r.det {
		t := ls.tick
		ls.tick++
		return t
	}
	return r.clock().Sub(r.start).Microseconds()
}

// Span is one in-flight timed section. Annotate and End must be called
// by the goroutine that started the span (spans are not shared); a nil
// *Span (from a nil Recorder) ignores both.
type Span struct {
	r     *Recorder
	track string
	lane  string
	name  string
	ts    int64
	args  []string
}

// Start opens a span on (track, lane). A nil recorder returns a nil span.
func (r *Recorder) Start(track, lane, name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ts := r.nowLocked(r.laneLocked(track, lane))
	r.mu.Unlock()
	return &Span{r: r, track: track, lane: lane, name: name, ts: ts}
}

// Annotate attaches a key/value argument to the span (rendered in the
// Perfetto "args" pane). No-op on a nil span.
func (sp *Span) Annotate(key, value string) {
	if sp == nil {
		return
	}
	sp.args = append(sp.args, key, value)
}

// End completes the span and records it. No-op on a nil span.
func (sp *Span) End() {
	if sp == nil || sp.r == nil {
		return
	}
	r := sp.r
	r.mu.Lock()
	ls := r.laneLocked(sp.track, sp.lane)
	end := r.nowLocked(ls)
	r.events = append(r.events, event{
		track: sp.track, lane: sp.lane, name: sp.name,
		ts: sp.ts, dur: end - sp.ts, seq: ls.seq, args: sp.args,
	})
	ls.seq++
	r.mu.Unlock()
	sp.r = nil // a second End is a no-op
}

// Instant records a point event on (track, lane). No-op on a nil recorder.
func (r *Recorder) Instant(track, lane, name string, kv ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ls := r.laneLocked(track, lane)
	ts := r.nowLocked(ls)
	r.events = append(r.events, event{
		track: track, lane: lane, name: name, ts: ts, dur: -1, seq: ls.seq, args: kv,
	})
	ls.seq++
	r.mu.Unlock()
}

// AddSpanAt records a completed span with explicit timestamps, for
// synthesized timelines (e.g. a violation's happens-before witness laid
// out by step index rather than by clock). No-op on a nil recorder.
func (r *Recorder) AddSpanAt(track, lane, name string, ts, dur int64, kv ...string) {
	if r == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	r.addAt(track, lane, name, ts, dur, kv)
}

// AddInstantAt records a point event with an explicit timestamp. No-op on
// a nil recorder.
func (r *Recorder) AddInstantAt(track, lane, name string, ts int64, kv ...string) {
	if r == nil {
		return
	}
	r.addAt(track, lane, name, ts, -1, kv)
}

func (r *Recorder) addAt(track, lane, name string, ts, dur int64, kv []string) {
	r.mu.Lock()
	ls := r.laneLocked(track, lane)
	r.events = append(r.events, event{
		track: track, lane: lane, name: name, ts: ts, dur: dur, seq: ls.seq, args: kv,
	})
	ls.seq++
	if r.det && ls.tick <= ts {
		ls.tick = ts + 1 // keep later Start/Instant ticks after explicit times
	}
	r.mu.Unlock()
}

// Len returns the number of recorded events (0 on a nil recorder).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// snapshot copies the recorded events for export.
func (r *Recorder) snapshot() []event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]event(nil), r.events...)
}
