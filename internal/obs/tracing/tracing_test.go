package tracing

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a clock that advances stepMicros µs per call.
func fixedClock(stepMicros int64) func() time.Time {
	base := time.Unix(1000, 0)
	n := int64(0)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t := base.Add(time.Duration(n*stepMicros) * time.Microsecond)
		n++
		return t
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	sp := r.Start("track", "lane", "work")
	sp.Annotate("k", "v")
	sp.End()
	r.Instant("track", "lane", "note")
	r.AddSpanAt("track", "lane", "x", 0, 1)
	r.AddInstantAt("track", "lane", "y", 0)
	if r.Len() != 0 {
		t.Fatal("nil recorder recorded something")
	}
	if r.Deterministic() {
		t.Fatal("nil recorder claims determinism")
	}
	if got := r.Lane("worker 3", "scope"); got != "worker 3" {
		t.Fatalf("nil Lane = %q, want worker", got)
	}
	var sb strings.Builder
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	// The empty export is well-formed JSON but fails validation, which
	// demands at least one event — an empty timeline is always a bug at
	// the call sites that record one.
	if _, err := ValidateChromeTrace([]byte(sb.String())); err == nil {
		t.Fatal("empty export unexpectedly validated")
	}
}

func TestSpanRecordingWallMode(t *testing.T) {
	r := NewWithConfig(Config{Clock: fixedClock(10)})
	sp := r.Start("decode", "worker 0", "rank 0")
	sp.Annotate("events", "24")
	sp.End()
	r.Instant("pipeline", "main", "note", "k", "v")
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	evs := r.snapshot()
	if evs[0].dur <= 0 {
		t.Errorf("span duration = %d, want > 0", evs[0].dur)
	}
	if evs[1].dur >= 0 {
		t.Errorf("instant duration = %d, want < 0", evs[1].dur)
	}
}

func TestDeterministicLaneRouting(t *testing.T) {
	r := NewDeterministic()
	if got := r.Lane("worker 5", "rank 2"); got != "rank 2" {
		t.Fatalf("deterministic Lane = %q, want scope", got)
	}
	w := New()
	if got := w.Lane("worker 5", "rank 2"); got != "worker 5" {
		t.Fatalf("wall Lane = %q, want worker", got)
	}
}

// Two deterministic recordings of the same logical work, performed with
// different goroutine interleavings, must export byte-identically.
func TestDeterministicExportIsScheduleInvariant(t *testing.T) {
	record := func(shuffle bool) string {
		r := NewDeterministic()
		work := []string{"rank 0", "rank 1", "rank 2", "rank 3"}
		var wg sync.WaitGroup
		for i, scope := range work {
			wg.Add(1)
			go func(i int, scope string) {
				defer wg.Done()
				if shuffle {
					time.Sleep(time.Duration(len(work)-i) * time.Millisecond)
				}
				sp := r.Start("decode", r.Lane("worker X", scope), scope)
				sp.Annotate("events", "7")
				sp.End()
			}(i, scope)
		}
		wg.Wait()
		var sb strings.Builder
		if err := r.WriteChromeTrace(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := record(false), record(true)
	if a != b {
		t.Fatalf("deterministic exports differ across schedules:\n%s\n---\n%s", a, b)
	}
}

func TestChromeTraceShape(t *testing.T) {
	r := NewWithConfig(Config{Clock: fixedClock(10)})
	r.Start("decode", "worker 10", "rank 0").End()
	r.Start("decode", "worker 2", "rank 1").End()
	r.Start("pipeline", "main", "model").End()
	r.Instant("pipeline", "main", "salvaging", "error", "boom")

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid export: %v\n%s", err, buf.String())
	}
	if sum.Tracks != 2 || sum.Lanes != 3 || sum.Events != 4 {
		t.Errorf("summary = %+v, want 2 tracks, 3 lanes, 4 events", sum)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// Natural lane ordering: worker 2 before worker 10.
	var laneNames []string
	for _, e := range doc.TraceEvents {
		if e["ph"] == "M" && e["name"] == "thread_name" {
			args := e["args"].(map[string]any)
			laneNames = append(laneNames, args["name"].(string))
		}
	}
	want := []string{"worker 2", "worker 10", "main"}
	if len(laneNames) != len(want) {
		t.Fatalf("lane metadata = %v, want %v", laneNames, want)
	}
	for i := range want {
		if laneNames[i] != want[i] {
			t.Fatalf("lane order = %v, want %v (natural sort)", laneNames, want)
		}
	}
}

func TestWriteTextTree(t *testing.T) {
	r := NewDeterministic()
	outer := r.Start("detect_cross", "region 0", "region 0")
	r.Start("detect_cross", "region 0", "inner").End()
	outer.End()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"detect_cross", "region 0", "inner"} {
		if !strings.Contains(out, want) {
			t.Errorf("text export missing %q:\n%s", want, out)
		}
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not json",
		`{"traceEvents": "nope"}`,
		`{"traceEvents": [{"ph":"X","name":"x"}]}`, // missing pid/tid/ts
	} {
		if _, err := ValidateChromeTrace([]byte(bad)); err == nil {
			t.Errorf("ValidateChromeTrace(%q) accepted malformed input", bad)
		}
	}
}

func TestAddSpanAtExplicitPlacement(t *testing.T) {
	r := NewDeterministic()
	r.AddSpanAt("violation 1", "rank 0", "epoch open", 0, 1, "side", "sync")
	r.AddSpanAt("violation 1", "rank 1", "conflicting access (2)", 2, 1, "side", "second")
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 2 || sum.Lanes != 2 {
		t.Errorf("summary = %+v, want 2 events in 2 lanes", sum)
	}
}
