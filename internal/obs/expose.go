package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is a stable, point-in-time view of a registry: every metric
// family sorted by (name, labels). It is the exchange format of the three
// expositions (text, Prometheus, JSON) and of Report.Stats.
type Snapshot struct {
	Counters   []GaugeValue     `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
	Spans      []SpanValue      `json:"spans,omitempty"`
}

// GaugeValue is one scalar sample (used for both counters and gauges).
type GaugeValue struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"` // rendered `k="v",...`
	Value  int64  `json:"value"`
}

// BucketValue is one cumulative histogram bucket.
type BucketValue struct {
	Le    string `json:"le"` // upper bound as decimal, or "+Inf"
	Count int64  `json:"count"`
}

// HistogramValue is one histogram sample with cumulative buckets.
type HistogramValue struct {
	Name    string        `json:"name"`
	Labels  string        `json:"labels,omitempty"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketValue `json:"buckets"`
}

// SpanValue is the accumulated wall time of one phase.
type SpanValue struct {
	Name       string `json:"name"`
	Labels     string `json:"labels,omitempty"`
	Count      int64  `json:"count"`
	TotalNanos int64  `json:"total_nanos"`
	MaxNanos   int64  `json:"max_nanos"`
}

// Total returns the span's accumulated duration.
func (s SpanValue) Total() time.Duration { return time.Duration(s.TotalNanos) }

// Snapshot captures the current state of every registered metric. Counters
// and rank counters land in the same Counters section (rank counters
// summed across shards). On a nil registry it returns an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	rankCtrs := make([]*RankCounter, 0, len(r.rankCtrs))
	for _, c := range r.rankCtrs {
		rankCtrs = append(rankCtrs, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	spans := make([]*SpanStats, 0, len(r.spans))
	for _, s := range r.spans {
		spans = append(spans, s)
	}
	collectors := append([]func() []GaugeValue(nil), r.collectors...)
	r.mu.Unlock()

	for _, c := range counters {
		snap.Counters = append(snap.Counters, GaugeValue{c.name, c.labels, c.Value()})
	}
	for _, c := range rankCtrs {
		snap.Counters = append(snap.Counters, GaugeValue{c.name, c.labels, c.Value()})
	}
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeValue{g.name, g.labels, g.Value()})
	}
	for _, f := range collectors {
		snap.Gauges = append(snap.Gauges, f()...)
	}
	for _, h := range hists {
		hv := HistogramValue{Name: h.name, Labels: h.labels, Count: h.count.Load(), Sum: h.sum.Load()}
		cum := int64(0)
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			cum += n
			if n == 0 && i != histBuckets-1 {
				continue // sparse: only buckets that moved, plus +Inf
			}
			le := "+Inf"
			if up := BucketUpper(i); up >= 0 {
				le = strconv.FormatInt(up, 10)
			}
			hv.Buckets = append(hv.Buckets, BucketValue{Le: le, Count: cum})
		}
		snap.Histograms = append(snap.Histograms, hv)
	}
	for _, s := range spans {
		snap.Spans = append(snap.Spans, SpanValue{
			Name: s.name, Labels: s.labels,
			Count: s.count.Load(), TotalNanos: s.totalNs.Load(), MaxNanos: s.maxNs.Load(),
		})
	}

	sortGV := func(vs []GaugeValue) {
		sort.Slice(vs, func(i, j int) bool {
			if vs[i].Name != vs[j].Name {
				return vs[i].Name < vs[j].Name
			}
			return vs[i].Labels < vs[j].Labels
		})
	}
	sortGV(snap.Counters)
	sortGV(snap.Gauges)
	sort.Slice(snap.Histograms, func(i, j int) bool {
		if snap.Histograms[i].Name != snap.Histograms[j].Name {
			return snap.Histograms[i].Name < snap.Histograms[j].Name
		}
		return snap.Histograms[i].Labels < snap.Histograms[j].Labels
	})
	sort.Slice(snap.Spans, func(i, j int) bool {
		if snap.Spans[i].Name != snap.Spans[j].Name {
			return snap.Spans[i].Name < snap.Spans[j].Name
		}
		return snap.Spans[i].Labels < snap.Spans[j].Labels
	})
	return snap
}

// Span returns the span value with the given name and rendered labels, or
// a zero SpanValue if absent.
func (s *Snapshot) Span(name string, kv ...string) SpanValue {
	labels := renderLabels(kv)
	for _, sp := range s.Spans {
		if sp.Name == name && sp.Labels == labels {
			return sp
		}
	}
	return SpanValue{}
}

// CounterValue returns the value of the counter with the given name and
// labels (0 if absent).
func (s *Snapshot) CounterValue(name string, kv ...string) int64 {
	labels := renderLabels(kv)
	for _, c := range s.Counters {
		if c.Name == name && c.Labels == labels {
			return c.Value
		}
	}
	return 0
}

// GaugeValue returns the value of the gauge with the given name and labels
// (0 if absent).
func (s *Snapshot) GaugeValue(name string, kv ...string) int64 {
	labels := renderLabels(kv)
	for _, g := range s.Gauges {
		if g.Name == name && g.Labels == labels {
			return g.Value
		}
	}
	return 0
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(data))
	return err
}

func promSample(name, labels string, suffix, extraLabel string) string {
	all := labels
	if extraLabel != "" {
		if all != "" {
			all += ","
		}
		all += extraLabel
	}
	if all == "" {
		return name + suffix
	}
	return name + suffix + "{" + all + "}"
}

// escapeHelp escapes a metric help string for a "# HELP" line in the
// text exposition format: backslash and newline are the only characters
// the format requires escaped there.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as scalar samples, spans as
// summaries over seconds, histograms with cumulative le buckets. Families
// with registered help text get a "# HELP" line immediately before their
// "# TYPE" line.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var sb strings.Builder
	lastType := func() func(name, typ string) {
		prev := ""
		return func(name, typ string) {
			if name != prev {
				if help := Help(name); help != "" {
					fmt.Fprintf(&sb, "# HELP %s %s\n", name, escapeHelp(help))
				}
				fmt.Fprintf(&sb, "# TYPE %s %s\n", name, typ)
				prev = name
			}
		}
	}

	ct := lastType()
	for _, c := range s.Counters {
		ct(c.Name, "counter")
		fmt.Fprintf(&sb, "%s %d\n", promSample(c.Name, c.Labels, "", ""), c.Value)
	}
	gt := lastType()
	for _, g := range s.Gauges {
		gt(g.Name, "gauge")
		fmt.Fprintf(&sb, "%s %d\n", promSample(g.Name, g.Labels, "", ""), g.Value)
	}
	ht := lastType()
	for _, h := range s.Histograms {
		ht(h.Name, "histogram")
		for _, b := range h.Buckets {
			fmt.Fprintf(&sb, "%s %d\n", promSample(h.Name, h.Labels, "_bucket", `le="`+b.Le+`"`), b.Count)
		}
		fmt.Fprintf(&sb, "%s %d\n", promSample(h.Name, h.Labels, "_sum", ""), h.Sum)
		fmt.Fprintf(&sb, "%s %d\n", promSample(h.Name, h.Labels, "_count", ""), h.Count)
	}
	st := lastType()
	for _, sp := range s.Spans {
		st(sp.Name, "summary")
		fmt.Fprintf(&sb, "%s %g\n", promSample(sp.Name, sp.Labels, "_sum", ""),
			time.Duration(sp.TotalNanos).Seconds())
		fmt.Fprintf(&sb, "%s %d\n", promSample(sp.Name, sp.Labels, "_count", ""), sp.Count)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteText renders a human-readable breakdown: phases first (the per-phase
// wall times of the paper's evaluation), then counters, gauges, and
// histogram summaries.
func (s *Snapshot) WriteText(w io.Writer) error {
	var sb strings.Builder
	if len(s.Spans) > 0 {
		sb.WriteString("phases:\n")
		for _, sp := range s.Spans {
			name := sp.Name
			if sp.Labels != "" {
				name += "{" + sp.Labels + "}"
			}
			fmt.Fprintf(&sb, "  %-60s %12v", name, time.Duration(sp.TotalNanos).Round(time.Microsecond))
			if sp.Count != 1 {
				fmt.Fprintf(&sb, "  (%d runs, max %v)", sp.Count,
					time.Duration(sp.MaxNanos).Round(time.Microsecond))
			}
			sb.WriteByte('\n')
		}
	}
	writeGV := func(title string, vs []GaugeValue) {
		if len(vs) == 0 {
			return
		}
		sb.WriteString(title + ":\n")
		for _, v := range vs {
			name := v.Name
			if v.Labels != "" {
				name += "{" + v.Labels + "}"
			}
			fmt.Fprintf(&sb, "  %-60s %12d\n", name, v.Value)
		}
	}
	writeGV("counters", s.Counters)
	writeGV("gauges", s.Gauges)
	if len(s.Histograms) > 0 {
		sb.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			name := h.Name
			if h.Labels != "" {
				name += "{" + h.Labels + "}"
			}
			mean := int64(0)
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Fprintf(&sb, "  %-60s count %d, sum %d, mean %d\n", name, h.Count, h.Sum, mean)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
