package obs

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total")
	rc := reg.RankCounter("t_rank_total")
	h := reg.Histogram("t_sizes")
	g := reg.Gauge("t_peak")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rank int32) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				rc.Inc(rank)
				h.Observe(int64(i))
				g.SetMax(int64(i))
			}
		}(int32(w))
	}
	// Snapshots are safe concurrently with updates.
	for i := 0; i < 10; i++ {
		reg.Snapshot()
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Errorf("Counter = %d, want %d", got, workers*per)
	}
	if got := rc.Value(); got != workers*per {
		t.Errorf("RankCounter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("Histogram count = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != per-1 {
		t.Errorf("Gauge SetMax = %d, want %d", got, per-1)
	}
}

func TestRankCounterWraps(t *testing.T) {
	reg := NewRegistry()
	rc := reg.RankCounter("t_total")
	// Ranks beyond the shard count share slots but must not lose counts.
	for rank := int32(0); rank < 3*rankShards; rank++ {
		rc.Inc(rank)
	}
	if got := rc.Value(); got != 3*rankShards {
		t.Errorf("Value = %d, want %d", got, 3*rankShards)
	}
}

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, // le="1"
		{2, 1},         // le="2"
		{3, 2}, {4, 2}, // le="4"
		{5, 3}, {8, 3}, // le="8"
		{1 << 26, 26},                             // last finite bucket
		{1<<26 + 1, histBuckets - 1},              // clamps to +Inf
		{1 << 40, histBuckets - 1},                // way past the top
		{int64(^uint64(0) >> 1), histBuckets - 1}, // MaxInt64
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if BucketUpper(0) != 1 || BucketUpper(1) != 2 || BucketUpper(26) != 1<<26 {
		t.Error("BucketUpper finite bounds wrong")
	}
	if BucketUpper(histBuckets-1) != -1 {
		t.Error("last bucket must be +Inf")
	}
}

func TestRenderLabels(t *testing.T) {
	if got := renderLabels(nil); got != "" {
		t.Errorf("empty labels = %q", got)
	}
	// Keys sort, values quote.
	got := renderLabels([]string{"z", "1", "a", `x"y`})
	want := `a="x\"y",z="1"`
	if got != want {
		t.Errorf("renderLabels = %q, want %q", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd label count must panic")
		}
	}()
	renderLabels([]string{"only-key"})
}

func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	reg.Counter("a").Inc()
	reg.Counter("a").Add(5)
	reg.RankCounter("b").Inc(3)
	reg.RankCounter("b").Add(3, 5)
	reg.Gauge("c").Set(1)
	reg.Gauge("c").SetMax(2)
	reg.Histogram("d").Observe(9)
	reg.StartSpan("e", "phase", "x").End()
	reg.Span("e").Start().End()
	reg.AddCollector(func() []GaugeValue { return nil })

	if reg.Counter("a").Value() != 0 || reg.Gauge("c").Value() != 0 ||
		reg.Histogram("d").Count() != 0 || reg.Span("e").Count() != 0 {
		t.Error("nil handles must read as zero")
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Spans) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestRegistryDedupsByNameAndLabels(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("t", "k", "v")
	b := reg.Counter("t", "k", "v")
	other := reg.Counter("t", "k", "w")
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	if a == other {
		t.Error("different labels must return distinct counters")
	}
}

func TestSpanAccounting(t *testing.T) {
	reg := NewRegistry()
	sp := reg.StartSpan("t_phase_seconds", "phase", "model")
	time.Sleep(time.Millisecond)
	sp.End()
	reg.StartSpan("t_phase_seconds", "phase", "model").End()

	s := reg.Span("t_phase_seconds", "phase", "model")
	if s.Count() != 2 {
		t.Fatalf("span count = %d, want 2", s.Count())
	}
	if s.Total() < time.Millisecond {
		t.Errorf("span total = %v, want >= 1ms", s.Total())
	}
	snap := reg.Snapshot()
	sv := snap.Span("t_phase_seconds", "phase", "model")
	if sv.Count != 2 || sv.TotalNanos != s.Total().Nanoseconds() || sv.MaxNanos <= 0 {
		t.Errorf("snapshot span = %+v", sv)
	}
}

func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("t_events_total", "kind", "put").Add(3)
	reg.Counter("t_events_total", "kind", "get").Inc()
	reg.RankCounter("t_msgs_total").Add(0, 10)
	reg.Gauge("t_peak").Set(7)
	h := reg.Histogram("t_sizes")
	h.Observe(1)
	h.Observe(3)
	h.Observe(300)
	return reg
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE t_events_total counter
t_events_total{kind="get"} 1
t_events_total{kind="put"} 3
# TYPE t_msgs_total counter
t_msgs_total 10
# TYPE t_peak gauge
t_peak 7
# TYPE t_sizes histogram
t_sizes_bucket{le="1"} 1
t_sizes_bucket{le="4"} 2
t_sizes_bucket{le="512"} 3
t_sizes_bucket{le="+Inf"} 3
t_sizes_sum 304
t_sizes_count 3
`
	if buf.String() != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// promLine matches one sample of the text exposition format: a metric name,
// an optional label body, and a value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// ValidatePrometheus checks every line of a text exposition: samples match
// the format and every # TYPE family is declared before its samples.
func validatePrometheus(t *testing.T, text string) {
	t.Helper()
	declared := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Errorf("bad TYPE line %q", line)
				continue
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary":
			default:
				t.Errorf("bad metric type in %q", line)
			}
			declared[parts[0]] = true
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
	if len(declared) == 0 {
		t.Error("no TYPE declarations")
	}
}

func TestPrometheusValidExposition(t *testing.T) {
	reg := goldenRegistry()
	reg.StartSpan("t_phase_seconds", "phase", "model").End()
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	validatePrometheus(t, buf.String())
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.CounterValue("t_events_total", "kind", "put") != 3 ||
		got.CounterValue("t_msgs_total") != 10 {
		t.Errorf("counters did not round-trip: %+v", got.Counters)
	}
	if got.GaugeValue("t_peak") != 7 {
		t.Errorf("gauge did not round-trip: %+v", got.Gauges)
	}
	if len(got.Histograms) != 1 || got.Histograms[0].Count != 3 || got.Histograms[0].Sum != 304 {
		t.Errorf("histogram did not round-trip: %+v", got.Histograms)
	}
}

func TestWriteText(t *testing.T) {
	reg := goldenRegistry()
	reg.StartSpan("t_phase_seconds", "phase", "model").End()
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"phases:", `t_phase_seconds{phase="model"}`,
		"counters:", `t_events_total{kind="put"}`,
		"gauges:", "t_peak",
		"histograms:", "count 3, sum 304, mean 101",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestCollector(t *testing.T) {
	reg := NewRegistry()
	reg.AddCollector(func() []GaugeValue {
		return []GaugeValue{{Name: "t_collected", Value: 42}}
	})
	if got := reg.Snapshot().GaugeValue("t_collected"); got != 42 {
		t.Errorf("collector gauge = %d, want 42", got)
	}
}
