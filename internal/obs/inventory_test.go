package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateInventory = flag.Bool("update-inventory", false,
	"rewrite README.md's generated metric inventory table instead of diffing it")

const (
	inventoryBegin = "<!-- metrics:begin -->\n"
	inventoryEnd   = "<!-- metrics:end -->"
)

// TestReadmeMetricInventoryCurrent is the golden test keeping README's
// metric table in lockstep with the help registry: the table between the
// metrics markers must be exactly InventoryMarkdown(). Regenerate with
//
//	go test ./internal/obs -run Inventory -update-inventory
func TestReadmeMetricInventoryCurrent(t *testing.T) {
	path := filepath.Join("..", "..", "README.md")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	i := strings.Index(s, inventoryBegin)
	j := strings.Index(s, inventoryEnd)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %q/%q markers", strings.TrimSpace(inventoryBegin), inventoryEnd)
	}
	got := s[i+len(inventoryBegin) : j]
	want := InventoryMarkdown()
	if got == want {
		return
	}
	if *updateInventory {
		out := s[:i+len(inventoryBegin)] + want + s[j:]
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s metric inventory", path)
		return
	}
	t.Errorf("README.md metric inventory is stale; regenerate with:\n"+
		"  go test ./internal/obs -run Inventory -update-inventory\n"+
		"--- README ---\n%s\n--- generated ---\n%s", got, want)
}
