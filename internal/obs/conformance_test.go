package obs

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

// Conformance of WritePrometheus to the text exposition format (0.0.4):
// HELP immediately precedes TYPE, each family is announced exactly once,
// label values and help text are escaped, and histogram buckets are
// cumulative and end at +Inf.

func conformanceSnapshot() *Snapshot {
	reg := NewRegistry()
	// A name with registered help text, plus labels needing escaping.
	reg.Counter("mcchecker_trace_decoded_events_total").Add(7)
	reg.Counter("mcchecker_analysis_violations_total", "class", `quo"te`).Inc()
	reg.Counter("mcchecker_analysis_violations_total", "class", "back\\slash\nnewline").Inc()
	reg.Gauge("mcchecker_pipeline_decode_workers").Set(4)
	h := reg.Histogram("mcchecker_stream_slab_events")
	h.Observe(1)
	h.Observe(100)
	sp := reg.Span("mcchecker_phase_seconds", "phase", "model")
	sp.count.Add(1)
	sp.totalNs.Add(int64(250 * time.Millisecond))
	sp.maxNs.Store(int64(250 * time.Millisecond))
	return reg.Snapshot()
}

func TestPrometheusExpositionConformance(t *testing.T) {
	var sb strings.Builder
	if err := conformanceSnapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	helpRe := regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

	typed := map[string]string{}
	lastHelp := ""
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := helpRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed HELP line %q", i+1, line)
			}
			if strings.ContainsAny(m[2], "\n") {
				t.Fatalf("line %d: unescaped newline in help text", i+1)
			}
			lastHelp = m[1]
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE line %q", i+1, line)
			}
			name := m[1]
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: family %s announced twice", i+1, name)
			}
			typed[name] = m[2]
			if Help(name) != "" && lastHelp != name {
				t.Fatalf("line %d: family %s has help text but no immediately preceding HELP line", i+1, name)
			}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", i+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample %q", i+1, line)
			}
			lastHelp = ""
			// Every sample belongs to an announced family (stripping
			// histogram/summary suffixes).
			name := m[1]
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if b := strings.TrimSuffix(name, suf); b != name {
					if _, ok := typed[b]; ok {
						base = b
					}
				}
			}
			if _, ok := typed[base]; !ok {
				t.Fatalf("line %d: sample %s has no TYPE announcement", i+1, name)
			}
		}
	}

	// Label escaping: the raw quote, backslash, and newline must appear
	// escaped inside label values, never raw.
	if !strings.Contains(out, `class="quo\"te"`) {
		t.Errorf("quote not escaped in label value:\n%s", out)
	}
	if !strings.Contains(out, `class="back\\slash\nnewline"`) {
		t.Errorf("backslash/newline not escaped in label value:\n%s", out)
	}

	// Families exposing as the right kinds.
	for name, want := range map[string]string{
		"mcchecker_trace_decoded_events_total": "counter",
		"mcchecker_pipeline_decode_workers":    "gauge",
		"mcchecker_stream_slab_events":         "histogram",
		"mcchecker_phase_seconds":              "summary",
	} {
		if got := typed[name]; got != want {
			t.Errorf("family %s: TYPE %q, want %q", name, got, want)
		}
	}

	// Histogram shape: cumulative buckets ending at +Inf, plus _sum/_count.
	if !strings.Contains(out, `mcchecker_stream_slab_events_bucket{le="+Inf"} 2`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "mcchecker_stream_slab_events_count 2") ||
		!strings.Contains(out, "mcchecker_stream_slab_events_sum 101") {
		t.Errorf("missing histogram _sum/_count:\n%s", out)
	}

	// Summary: seconds as float.
	if !strings.Contains(out, `mcchecker_phase_seconds_sum{phase="model"} 0.25`) {
		t.Errorf("span summary not exposed in seconds:\n%s", out)
	}
}

func TestHelpOrderingBeforeType(t *testing.T) {
	var sb strings.Builder
	if err := conformanceSnapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "# HELP ") {
			continue
		}
		name := strings.Fields(line)[2]
		if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
			t.Errorf("HELP for %s not immediately followed by its TYPE line", name)
		}
	}
}

func TestEscapeHelp(t *testing.T) {
	in := `back\slash` + "\nand newline"
	want := `back\\slash\nand newline`
	if got := escapeHelp(in); got != want {
		t.Errorf("escapeHelp(%q) = %q, want %q", in, got, want)
	}
}
