package dag

import (
	"testing"

	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func buildDAG(t *testing.T, b *testutil.TraceBuilder) *DAG {
	t.Helper()
	m, err := model.Build(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := match.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(m, ms)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProgramOrder(t *testing.T) {
	b := testutil.NewTraceBuilder(1)
	a := b.Add(0, trace.Event{Kind: trace.KindLoad, Addr: 1, Size: 1})
	c := b.Add(0, trace.Event{Kind: trace.KindStore, Addr: 1, Size: 1})
	d := buildDAG(t, b)
	if !d.HappensBefore(a, c) || d.HappensBefore(c, a) {
		t.Error("program order broken")
	}
	if d.Concurrent(a, c) || d.Concurrent(a, a) {
		t.Error("same-rank events are never concurrent")
	}
}

func TestSendRecvEdge(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	before := b.Add(0, trace.Event{Kind: trace.KindStore, Addr: 1, Size: 1})
	send := b.Add(0, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 0})
	after0 := b.Add(0, trace.Event{Kind: trace.KindStore, Addr: 2, Size: 1})
	pre1 := b.Add(1, trace.Event{Kind: trace.KindStore, Addr: 3, Size: 1})
	recv := b.Add(1, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: 0, Tag: 0})
	after1 := b.Add(1, trace.Event{Kind: trace.KindStore, Addr: 4, Size: 1})
	d := buildDAG(t, b)

	if !d.HappensBefore(send, recv) {
		t.Error("send must happen-before recv")
	}
	if !d.HappensBefore(before, after1) {
		t.Error("hb must be transitive through the message")
	}
	if d.HappensBefore(after0, after1) {
		t.Error("event after send is not ordered with receiver")
	}
	if !d.Concurrent(pre1, before) {
		t.Error("pre-recv events are concurrent with sender")
	}
	if d.HappensBefore(recv, send) {
		t.Error("reverse edge must not exist")
	}
	if !d.Concurrent(after0, after1) {
		t.Error("post-sync independent events are concurrent")
	}
}

func TestBarrierOrdersBothDirections(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	var pre, post [3]trace.ID
	for r := int32(0); r < 3; r++ {
		pre[r] = b.Add(r, trace.Event{Kind: trace.KindStore, Addr: uint64(r), Size: 1})
	}
	b.Barrier()
	for r := int32(0); r < 3; r++ {
		post[r] = b.Add(r, trace.Event{Kind: trace.KindLoad, Addr: uint64(r), Size: 1})
	}
	d := buildDAG(t, b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !d.HappensBefore(pre[i], post[j]) {
				t.Errorf("pre[%d] must hb post[%d]", i, j)
			}
			if i != j && !d.Concurrent(pre[i], pre[j]) {
				t.Errorf("pre[%d] and pre[%d] must be concurrent", i, j)
			}
		}
	}
}

func TestRootedCollectiveDirections(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	var bc [3]trace.ID
	for r := int32(0); r < 3; r++ {
		bc[r] = b.Add(r, trace.Event{Kind: trace.KindBcast, Comm: 0, Peer: 0})
	}
	d := buildDAG(t, b)
	if !d.HappensBefore(bc[0], bc[1]) || !d.HappensBefore(bc[0], bc[2]) {
		t.Error("bcast root must hb non-roots")
	}
	if !d.Concurrent(bc[1], bc[2]) {
		t.Error("bcast non-roots are not ordered with each other")
	}
	if d.HappensBefore(bc[1], bc[0]) {
		t.Error("bcast must not order non-root before root")
	}
}

func TestReduceToRoot(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	r0 := b.Add(0, trace.Event{Kind: trace.KindReduce, Comm: 0, Peer: 0})
	r1 := b.Add(1, trace.Event{Kind: trace.KindReduce, Comm: 0, Peer: 0})
	after := b.Add(0, trace.Event{Kind: trace.KindLoad, Addr: 0, Size: 1})
	d := buildDAG(t, b)
	if !d.HappensBefore(r1, r0) || !d.HappensBefore(r1, after) {
		t.Error("reduce contributors must hb root")
	}
	if d.HappensBefore(r0, r1) {
		t.Error("root must not hb contributors")
	}
}

func TestPSCWEdges(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	preStore := b.Add(0, trace.Event{Kind: trace.KindStore, Addr: 0x1000, Size: 4})
	post := b.Add(0, trace.Event{Kind: trace.KindWinPost, Win: 1, Members: []int32{1}})
	wait := b.Add(0, trace.Event{Kind: trace.KindWinWait, Win: 1})
	postLoad := b.Add(0, trace.Event{Kind: trace.KindLoad, Addr: 0x1000, Size: 4})
	start := b.Add(1, trace.Event{Kind: trace.KindWinStart, Win: 1, Members: []int32{0}})
	put := b.Add(1, trace.Event{Kind: trace.KindPut, Win: 1, Target: 0,
		OriginAddr: 0x500, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1})
	complete := b.Add(1, trace.Event{Kind: trace.KindWinComplete, Win: 1})
	d := buildDAG(t, b)

	if !d.HappensBefore(post, start) {
		t.Error("post must hb start")
	}
	if !d.HappensBefore(preStore, put) {
		t.Error("target store before post must hb origin ops in epoch")
	}
	if !d.HappensBefore(complete, wait) {
		t.Error("complete must hb wait")
	}
	if !d.HappensBefore(put, postLoad) {
		t.Error("epoch ops must hb target loads after wait")
	}
	if d.HappensBefore(postLoad, put) {
		t.Error("target load after wait must not hb epoch ops")
	}
}

func TestIsendWaitEdges(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	is := b.Add(0, trace.Event{Kind: trace.KindIsend, Comm: 0, Peer: 1, Tag: 0, Req: 1})
	b.Add(1, trace.Event{Kind: trace.KindIrecv, Comm: 0, Peer: 0, Tag: 0, Req: 4})
	wr := b.Add(1, trace.Event{Kind: trace.KindWaitReq, Comm: 0, Peer: 0, Tag: 0, Req: 4})
	afterWait := b.Add(1, trace.Event{Kind: trace.KindLoad, Addr: 0, Size: 1})
	d := buildDAG(t, b)
	if !d.HappensBefore(is, wr) || !d.HappensBefore(is, afterWait) {
		t.Error("isend must hb the completing wait")
	}
}

// TestFigure3Regions reproduces the structure of paper Figures 3 and 4:
// three processes, two concurrent regions split by a barrier. Operations in
// different regions are ordered; operations within one region but on
// different ranks are concurrent.
func TestFigure3Regions(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	// Region A: P0 puts to P1 (a); P1 stores locally (bStore); P2 puts to P1 (c).
	a := b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x500, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1})
	bStore := b.Add(1, trace.Event{Kind: trace.KindStore, Addr: 0x1000, Size: 4})
	c := b.Add(2, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x600, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1})
	b.Fence(1)
	b.Barrier()
	// Region B: P1 gets from P2 (dGet); P1 loads (eLoad).
	b.Fence(1)
	dGet := b.Add(1, trace.Event{Kind: trace.KindGet, Win: 1, Target: 2,
		OriginAddr: 0x700, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1})
	b.Fence(1)
	d := buildDAG(t, b)

	// Within region A: a, bStore, c mutually concurrent (different ranks).
	if !d.Concurrent(a, c) || !d.Concurrent(a, bStore) || !d.Concurrent(c, bStore) {
		t.Error("region A operations must be concurrent")
	}
	// Across the barrier: c happens before dGet (paper: "the barriers in
	// P0, P1, and P2 make c always happens before d").
	if !d.HappensBefore(c, dGet) || !d.HappensBefore(a, dGet) {
		t.Error("cross-region operations must be ordered")
	}

	// Regions: fences and the barrier are global sync points over 3 ranks.
	// WinCreate + 2 fences + barrier + 2 fences = 6 boundaries → 7 regions.
	regions := d.Regions()
	if len(regions) != 7 {
		t.Fatalf("regions = %d, want 7", len(regions))
	}
	// a and c must fall into the same region; dGet into a later one.
	findRegion := func(id trace.ID) int {
		for _, rg := range regions {
			if id.Seq >= rg.Start[id.Rank] && id.Seq < rg.End[id.Rank] {
				return rg.Index
			}
		}
		return -1
	}
	ra, rc, rd := findRegion(a), findRegion(c), findRegion(dGet)
	if ra != rc {
		t.Errorf("a in region %d but c in region %d", ra, rc)
	}
	if rd <= ra {
		t.Errorf("dGet region %d not after region %d", rd, ra)
	}
}

func TestSubCommBarrierNotGlobal(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.Add(0, trace.Event{Kind: trace.KindCommCreate, Comm: 7, Members: []int32{0, 1}})
	b.Add(1, trace.Event{Kind: trace.KindCommCreate, Comm: 7, Members: []int32{0, 1}})
	b.Add(0, trace.Event{Kind: trace.KindBarrier, Comm: 7})
	b.Add(1, trace.Event{Kind: trace.KindBarrier, Comm: 7})
	x := b.Add(2, trace.Event{Kind: trace.KindStore, Addr: 0, Size: 1})
	y := b.Add(0, trace.Event{Kind: trace.KindStore, Addr: 0, Size: 1})
	d := buildDAG(t, b)
	// Sub-communicator barrier orders ranks 0 and 1 but not rank 2.
	if !d.Concurrent(x, y) {
		t.Error("rank 2 must be unaffected by sub-comm barrier")
	}
	if len(d.Regions()) != 1 {
		t.Errorf("sub-comm sync must not split global regions; got %d", len(d.Regions()))
	}
}

func TestSegmentsGrowOnlyAtSync(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	for i := 0; i < 100; i++ {
		b.Add(0, trace.Event{Kind: trace.KindStore, Addr: uint64(i), Size: 1})
		b.Add(1, trace.Event{Kind: trace.KindStore, Addr: uint64(i), Size: 1})
	}
	b.Barrier()
	d := buildDAG(t, b)
	if d.Segments(0) != 2 {
		t.Errorf("segments = %d, want 2 (initial + post-barrier)", d.Segments(0))
	}
}

func TestClock(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	s := b.Add(0, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 0})
	r := b.Add(1, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: 0, Tag: 0})
	d := buildDAG(t, b)
	vc := d.Clock(r)
	if vc[0] != s.Seq {
		t.Errorf("recv clock[0] = %d, want %d", vc[0], s.Seq)
	}
	if d.Clock(s)[1] != -1 {
		t.Error("send must not know receiver")
	}
}
