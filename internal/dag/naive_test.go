package dag

import (
	"math/rand"
	"testing"

	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// randomSyncTrace builds a trace mixing barriers, rooted collectives,
// p2p chains, and local accesses.
func randomSyncTrace(seed int64, ranks, rounds int) *testutil.TraceBuilder {
	rng := rand.New(rand.NewSource(seed))
	b := testutil.NewTraceBuilder(ranks)
	for round := 0; round < rounds; round++ {
		switch rng.Intn(5) {
		case 0:
			b.Barrier()
		case 1:
			root := int32(rng.Intn(ranks))
			for r := int32(0); r < int32(ranks); r++ {
				b.Add(r, trace.Event{Kind: trace.KindBcast, Comm: 0, Peer: root})
			}
		case 2:
			root := int32(rng.Intn(ranks))
			for r := int32(0); r < int32(ranks); r++ {
				b.Add(r, trace.Event{Kind: trace.KindReduce, Comm: 0, Peer: root})
			}
		case 3:
			src := int32(rng.Intn(ranks))
			dst := (src + 1 + int32(rng.Intn(ranks-1))) % int32(ranks)
			b.Add(src, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: dst, Tag: int32(rng.Intn(2))})
			b.Add(dst, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: src, Tag: 0}) // may mismatch tag
		case 4:
			r := int32(rng.Intn(ranks))
			b.Add(r, trace.Event{Kind: trace.KindStore, Addr: uint64(rng.Intn(64)), Size: 1})
		}
	}
	return b
}

// fixTags repairs the p2p tags so that every send matches a receive (the
// generator may emit mismatched tags; rewrite all tags to 0).
func fixTags(set *trace.Set) {
	for _, t := range set.Traces {
		for i := range t.Events {
			if t.Events[i].Kind.IsP2P() {
				t.Events[i].Tag = 0
			}
		}
	}
}

func TestNaiveAgreesWithVectorClocks(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		set := randomSyncTrace(seed, 4, 20).Set()
		fixTags(set)
		m, err := model.Build(set)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := match.Run(m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d, err := Build(m, ms)
		if err != nil {
			t.Fatal(err)
		}
		n := BuildNaive(m, ms)

		// Compare on every pair of events across different ranks, plus a
		// sample of same-rank pairs.
		rng := rand.New(rand.NewSource(seed + 1000))
		var ids []trace.ID
		for _, tr := range set.Traces {
			for i := range tr.Events {
				ids = append(ids, tr.Events[i].ID())
			}
		}
		checks := 0
		for i := 0; i < len(ids); i++ {
			for j := 0; j < len(ids); j++ {
				if i == j || (ids[i].Rank == ids[j].Rank && rng.Intn(4) != 0) {
					continue
				}
				a, b := ids[i], ids[j]
				if d.HappensBefore(a, b) != n.HappensBefore(a, b) {
					t.Fatalf("seed %d: hb(%v,%v): clocks=%v naive=%v",
						seed, a, b, d.HappensBefore(a, b), n.HappensBefore(a, b))
				}
				checks++
			}
		}
		if checks == 0 {
			t.Fatal("no pairs checked")
		}
	}
}

func TestNaiveBasics(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	s := b.Add(0, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 0})
	r := b.Add(1, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: 0, Tag: 0})
	after := b.Add(1, trace.Event{Kind: trace.KindStore, Addr: 0, Size: 1})
	m, _ := model.Build(b.Set())
	ms, _ := match.Run(m)
	n := BuildNaive(m, ms)
	if !n.HappensBefore(s, r) || !n.HappensBefore(s, after) {
		t.Error("naive missed send→recv ordering")
	}
	if n.HappensBefore(r, s) || n.Concurrent(s, s) {
		t.Error("naive reversed ordering")
	}
}
