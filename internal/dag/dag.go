// Package dag builds DN-Analyzer's data-access DAG (paper §III-B): every
// runtime event is a vertex, vertices within a rank are ordered by program
// order, and matched synchronization calls contribute cross-process edges
// according to the happens-before relation. Blocking receives and waits
// gain an edge from the matched send; PSCW synchronization gains
// post→start and complete→wait edges; all-to-all collectives such as
// barriers order every member against every other.
//
// Rather than materializing edges, the builder computes vector clocks: each
// rank's trace is split into segments at every event that receives an
// incoming cross-process ordering, and each segment stores one clock — the
// highest event sequence number of every rank known to happen-before the
// segment. Concurrency queries are then O(1) (paper §III-B's "unordered in
// the DAG"), and the storage is proportional to the number of
// synchronization events rather than all events.
//
// The package also extracts concurrent regions: global synchronization
// events that all ranks participate in partition the DAG into sequentially
// ordered regions (paper §III-B, Figure 4), which the detector analyzes
// independently.
package dag

import (
	"fmt"

	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/trace"
)

// VC is a vector clock: VC[r] is the highest event seq of rank r known to
// happen-before this point, or -1 if none.
type VC []int64

func newVC(n int) VC {
	vc := make(VC, n)
	for i := range vc {
		vc[i] = -1
	}
	return vc
}

func (vc VC) clone() VC { return append(VC(nil), vc...) }

// join sets vc to the elementwise max of vc and o.
func (vc VC) join(o VC) {
	for i, v := range o {
		if v > vc[i] {
			vc[i] = v
		}
	}
}

// DAG is the built happens-before structure over one trace set.
type DAG struct {
	set   *trace.Set
	segOf [][]int32 // [rank][eventSeq] → segment index
	segs  [][]VC    // [rank][segment] → base clock

	regions []Region
}

// Region is one concurrent region: for every rank, the half-open event
// range [Start[r], End[r]) belonging to the region. Regions are delimited
// by global synchronization events spanning all ranks; the delimiting
// events themselves belong to the earlier region.
type Region struct {
	Index int
	Start []int64
	End   []int64
}

// Events returns the event ids of one rank inside the region.
func (rg *Region) Span(rank int32) (int64, int64) {
	return rg.Start[rank], rg.End[rank]
}

// Build constructs the DAG for the model's trace set using the matches.
func Build(m *model.Model, ms *match.Matches) (*DAG, error) {
	set := m.Set
	n := set.Ranks()
	d := &DAG{
		set:   set,
		segOf: make([][]int32, n),
		segs:  make([][]VC, n),
	}
	for r := 0; r < n; r++ {
		d.segOf[r] = make([]int32, len(set.Traces[r].Events))
		d.segs[r] = []VC{newVC(n)}
	}

	// Index incoming pair edges and collective groups by receiving event.
	incoming := map[trace.ID][]trace.ID{}
	addPair := func(p match.Pair) { incoming[p.To] = append(incoming[p.To], p.From) }
	for _, p := range ms.P2P {
		addPair(p)
	}
	for _, p := range ms.PostStart {
		addPair(p)
	}
	for _, p := range ms.CompleteWait {
		addPair(p)
	}

	type groupState struct {
		g       *match.Group
		arrived int
	}
	groupAt := map[trace.ID]*groupState{}
	var globals [][]trace.ID // ordered list of global (all-ranks) sync instances
	for i := range ms.Groups {
		g := &ms.Groups[i]
		switch g.Direction {
		case match.DirFromRoot:
			for _, id := range g.Events {
				if id != g.Root {
					incoming[id] = append(incoming[id], g.Root)
				}
			}
		case match.DirToRoot:
			for _, id := range g.Events {
				if id != g.Root {
					incoming[g.Root] = append(incoming[g.Root], id)
				}
			}
		default:
			gs := &groupState{g: g}
			for _, id := range g.Events {
				groupAt[id] = gs
			}
			if len(g.Events) == n {
				globals = append(globals, g.Events)
			}
		}
	}

	// Process events in a deadlock-free simulation order (the trace came
	// from a real run, so one exists).
	cursor := make([]int64, n)
	curVC := make([]VC, n)
	curSeg := make([]int32, n)
	for r := range curVC {
		curVC[r] = d.segs[r][0]
	}

	// eventClock returns the clock that event id exports to its successors.
	eventClock := func(id trace.ID) VC {
		base := d.segs[id.Rank][d.segOf[id.Rank][id.Seq]]
		vc := base.clone()
		if id.Seq > vc[id.Rank] {
			vc[id.Rank] = id.Seq
		}
		return vc
	}
	processed := func(id trace.ID) bool {
		return cursor[id.Rank] > id.Seq
	}

	total := set.TotalEvents()
	done := 0
	for done < total {
		progress := false
		for r := 0; r < n; r++ {
			for cursor[r] < int64(len(set.Traces[r].Events)) {
				ev := &set.Traces[r].Events[cursor[r]]
				id := ev.ID()

				if gs, ok := groupAt[id]; ok {
					// Barrier-like group: wait until every member is at its
					// group event, then join all clocks.
					ready := true
					for _, mid := range gs.g.Events {
						if mid != id && cursor[mid.Rank] < mid.Seq {
							ready = false
							break
						}
					}
					if !ready {
						break // stall this rank
					}
					joint := newVC(n)
					for _, mid := range gs.g.Events {
						joint.join(d.segs[mid.Rank][curSegFor(d, curSeg, mid)])
						if mid.Seq > joint[mid.Rank] {
							joint[mid.Rank] = mid.Seq
						}
					}
					// Every member starts a fresh segment with the joint
					// clock; advance all member cursors past the event.
					for _, mid := range gs.g.Events {
						d.segOf[mid.Rank][mid.Seq] = int32(len(d.segs[mid.Rank]))
						seg := joint.clone()
						d.segs[mid.Rank] = append(d.segs[mid.Rank], seg)
						curVC[mid.Rank] = seg
						curSeg[mid.Rank] = int32(len(d.segs[mid.Rank]) - 1)
						cursor[mid.Rank] = mid.Seq + 1
						done++
					}
					progress = true
					continue
				}

				if ins := incoming[id]; len(ins) > 0 {
					ready := true
					for _, from := range ins {
						if !processed(from) {
							ready = false
							break
						}
					}
					if !ready {
						break // stall until senders processed
					}
					nv := curVC[r].clone()
					for _, from := range ins {
						nv.join(eventClock(from))
					}
					d.segOf[r][id.Seq] = int32(len(d.segs[r]))
					d.segs[r] = append(d.segs[r], nv)
					curVC[r] = nv
					curSeg[r] = int32(len(d.segs[r]) - 1)
					cursor[r]++
					done++
					progress = true
					continue
				}

				// Plain event: stays in the current segment.
				d.segOf[r][id.Seq] = curSeg[r]
				cursor[r]++
				done++
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("dag: no progress with %d of %d events processed; trace ordering is cyclic or matches are inconsistent", done, total)
		}
	}

	d.buildRegions(globals)
	return d, nil
}

// curSegFor returns the segment index holding the clock visible just
// before mid executes (its own current segment).
func curSegFor(d *DAG, curSeg []int32, mid trace.ID) int32 {
	return curSeg[mid.Rank]
}

// buildRegions partitions the trace by global synchronization instances.
// globals arrive in completion order per Build's processing; sort by the
// per-rank sequence of rank 0's member (global instances are totally
// ordered, so any rank's order works).
func (d *DAG) buildRegions(globals [][]trace.ID) {
	n := d.set.Ranks()
	// Order the global sync instances by their event seq on rank 0.
	ordered := make([][]trace.ID, len(globals))
	copy(ordered, globals)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && seqOn(ordered[j], 0) < seqOn(ordered[j-1], 0); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	start := make([]int64, n)
	idx := 0
	for _, g := range ordered {
		end := make([]int64, n)
		for _, id := range g {
			end[id.Rank] = id.Seq + 1 // delimiter belongs to earlier region
		}
		d.regions = append(d.regions, Region{Index: idx, Start: append([]int64(nil), start...), End: end})
		idx++
		copy(start, end)
	}
	final := Region{Index: idx, Start: append([]int64(nil), start...), End: make([]int64, n)}
	for r := 0; r < n; r++ {
		final.End[r] = int64(len(d.set.Traces[r].Events))
	}
	d.regions = append(d.regions, final)
}

func seqOn(g []trace.ID, rank int32) int64 {
	for _, id := range g {
		if id.Rank == rank {
			return id.Seq
		}
	}
	return -1
}

// HappensBefore reports whether a is ordered before b by program order or
// the synchronization edges.
func (d *DAG) HappensBefore(a, b trace.ID) bool {
	if a.Rank == b.Rank {
		return a.Seq < b.Seq
	}
	seg := d.segs[b.Rank][d.segOf[b.Rank][b.Seq]]
	return seg[a.Rank] >= a.Seq
}

// Concurrent reports whether a and b are unordered (and distinct).
func (d *DAG) Concurrent(a, b trace.ID) bool {
	if a == b {
		return false
	}
	return !d.HappensBefore(a, b) && !d.HappensBefore(b, a)
}

// Regions returns the concurrent regions in order.
func (d *DAG) Regions() []Region { return d.regions }

// Segments returns the number of clock segments of one rank (a measure of
// how much synchronization the rank observed); exported for tests and
// diagnostics.
func (d *DAG) Segments(rank int32) int { return len(d.segs[rank]) }

// Clock returns a copy of the vector clock in effect for an event.
func (d *DAG) Clock(id trace.ID) VC {
	return d.segs[id.Rank][d.segOf[id.Rank][id.Seq]].clone()
}

// ClockRef returns the vector clock in effect for an event without
// copying: the clock of the segment the event belongs to. The returned
// slice is owned by the DAG and must be treated as read-only. This is
// the clock-edge export the shadow-memory engine builds its
// concurrent-range searches on; along one rank's program order the
// returned clocks are elementwise monotone non-decreasing (segments
// only ever join in more knowledge), which is what makes binary search
// over per-rank access lists sound. Use Clock for a safe mutable copy.
func (d *DAG) ClockRef(id trace.ID) VC {
	return d.segs[id.Rank][d.segOf[id.Rank][id.Seq]]
}
