package dag

import (
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/trace"
)

// NaiveHB answers happens-before queries by explicit graph traversal — the
// straightforward implementation that the segment vector clocks replace
// (DESIGN.md decision 2). Building it is cheap (it only indexes edges);
// every query walks the DAG, so query cost grows with trace size instead
// of being O(1). It exists as the ablation baseline for the vector-clock
// benchmark and as an independent oracle in tests.
type NaiveHB struct {
	set *trace.Set
	// cross[id] lists the cross-process (or intra-group) targets ordered
	// after id, in addition to id's program-order successor.
	cross map[trace.ID][]trace.ID
}

// BuildNaive indexes the ordering edges without computing clocks.
func BuildNaive(m *model.Model, ms *match.Matches) *NaiveHB {
	n := &NaiveHB{set: m.Set, cross: map[trace.ID][]trace.ID{}}
	add := func(from, to trace.ID) {
		n.cross[from] = append(n.cross[from], to)
	}
	for _, p := range ms.P2P {
		add(p.From, p.To)
	}
	for _, p := range ms.PostStart {
		add(p.From, p.To)
	}
	for _, p := range ms.CompleteWait {
		add(p.From, p.To)
	}
	for i := range ms.Groups {
		g := &ms.Groups[i]
		switch g.Direction {
		case match.DirFromRoot:
			for _, id := range g.Events {
				if id != g.Root {
					add(g.Root, id)
				}
			}
		case match.DirToRoot:
			for _, id := range g.Events {
				if id != g.Root {
					add(id, g.Root)
				}
			}
		default:
			// Barrier: every member's event is ordered before every other
			// member's event — the same mutual ordering the vector clocks
			// assign to one synchronization instance. The resulting
			// two-cycles among the group's events are harmless: the
			// reachability walk prunes by earliest-reached sequence.
			for _, from := range g.Events {
				for _, to := range g.Events {
					if to.Rank != from.Rank {
						add(from, to)
					}
				}
			}
		}
	}
	return n
}

// HappensBefore walks the graph from a, tracking per rank the earliest
// reached sequence number (everything later on that rank is then reachable
// by program order).
func (n *NaiveHB) HappensBefore(a, b trace.ID) bool {
	if a.Rank == b.Rank {
		return a.Seq < b.Seq
	}
	// earliest[r] = smallest seq reached on rank r so far (math.MaxInt64
	// when unreached).
	earliest := make([]int64, n.set.Ranks())
	for i := range earliest {
		earliest[i] = int64(1) << 62
	}
	var work []trace.ID
	push := func(id trace.ID) {
		if id.Seq >= int64(len(n.set.Traces[id.Rank].Events)) {
			return
		}
		if id.Seq >= earliest[id.Rank] {
			return // already covered by program order from an earlier point
		}
		earliest[id.Rank] = id.Seq
		work = append(work, id)
	}
	// Everything strictly after a on a's rank is reachable.
	push(trace.ID{Rank: a.Rank, Seq: a.Seq + 1})
	for _, to := range n.cross[a] {
		push(to)
	}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		// Walk cur's rank forward from cur, following cross edges of every
		// event passed; stop early if this stretch was already covered.
		t := n.set.Traces[cur.Rank]
		for s := cur.Seq; s < int64(len(t.Events)); s++ {
			id := trace.ID{Rank: cur.Rank, Seq: s}
			for _, to := range n.cross[id] {
				push(to)
			}
		}
	}
	return earliest[b.Rank] <= b.Seq
}

// Concurrent reports whether a and b are unordered and distinct.
func (n *NaiveHB) Concurrent(a, b trace.ID) bool {
	if a == b {
		return false
	}
	return !n.HappensBefore(a, b) && !n.HappensBefore(b, a)
}
