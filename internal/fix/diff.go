package fix

import (
	"fmt"
	"strings"
)

// diffOp is one line of an opcode stream: ' ' keep, '-' delete, '+' add.
type diffOp struct {
	kind byte
	line string
}

// UnifiedDiff renders a unified diff (3 context lines) between two
// sources — the patch artifact `mcchecker fix -diff-dir` publishes. The
// line-level LCS is quadratic, which is fine at application-source sizes.
func UnifiedDiff(aName, bName string, a, b []byte) string {
	ops := diffOps(splitLines(a), splitLines(b))

	// Group changed ops into hunks: two changes merge when separated by at
	// most 2*context unchanged lines.
	const context = 3
	var changed []int
	for i, op := range ops {
		if op.kind != ' ' {
			changed = append(changed, i)
		}
	}
	if len(changed) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", aName, bName)
	for g := 0; g < len(changed); {
		h := g
		for h+1 < len(changed) && changed[h+1]-changed[h] <= 2*context {
			h++
		}
		start := changed[g] - context
		if start < 0 {
			start = 0
		}
		end := changed[h] + context + 1
		if end > len(ops) {
			end = len(ops)
		}
		// Line numbers of ops[start] in each source (1-based).
		aStart, bStart := 1, 1
		for i := 0; i < start; i++ {
			switch ops[i].kind {
			case ' ':
				aStart++
				bStart++
			case '-':
				aStart++
			case '+':
				bStart++
			}
		}
		aCount, bCount := 0, 0
		for i := start; i < end; i++ {
			switch ops[i].kind {
			case ' ':
				aCount++
				bCount++
			case '-':
				aCount++
			case '+':
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart, aCount, bStart, bCount)
		for i := start; i < end; i++ {
			sb.WriteByte(ops[i].kind)
			sb.WriteString(ops[i].line)
			sb.WriteByte('\n')
		}
		g = h + 1
	}
	return sb.String()
}

// diffOps computes a line-level LCS opcode stream.
func diffOps(al, bl []string) []diffOp {
	n, m := len(al), len(bl)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	for i, j := 0, 0; i < n || j < m; {
		switch {
		case i < n && j < m && al[i] == bl[j]:
			ops = append(ops, diffOp{' ', al[i]})
			i++
			j++
		case j < m && (i == n || lcs[i+1][j] < lcs[i][j+1]):
			ops = append(ops, diffOp{'+', bl[j]})
			j++
		default:
			ops = append(ops, diffOp{'-', al[i]})
			i++
		}
	}
	return ops
}

func splitLines(b []byte) []string {
	s := strings.TrimSuffix(string(b), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
