// Package fix is the static-analysis-driven repair engine: it consumes
// stanalyzer diagnostics carrying structured FixActions and rewrites the
// application source with one repair template per action kind, iterating
// until the scoped diagnostics drain. Every patch is then proven, not
// trusted: the patched program is re-type-checked, re-analyzed statically,
// and executed under the dynamic analyzer and a schedule-exploration sweep
// by an AST interpreter running against the real MPI simulator.
package fix

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"sort"
)

// edit is one byte-range replacement of the source: the half-open range
// [start, end) is replaced by text. Insertions use start == end.
type edit struct {
	start, end int
	text       string
}

// applyEdits applies non-overlapping edits to src. Edits are applied in
// descending start order so earlier offsets stay valid.
func applyEdits(src []byte, edits []edit) ([]byte, error) {
	sorted := append([]edit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].start > sorted[j].start })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].end > sorted[i-1].start {
			return nil, fmt.Errorf("fix: overlapping edits at %d and %d", sorted[i].start, sorted[i-1].start)
		}
	}
	out := append([]byte(nil), src...)
	for _, e := range sorted {
		if e.start < 0 || e.end > len(out) || e.start > e.end {
			return nil, fmt.Errorf("fix: edit range [%d, %d) outside source of %d bytes", e.start, e.end, len(out))
		}
		out = append(out[:e.start], append([]byte(e.text), out[e.end:]...)...)
	}
	return out, nil
}

// gofmt formats patched source, normalizing the indentation of inserted
// and moved lines.
func gofmt(src []byte) ([]byte, error) { return format.Source(src) }

// parsed bundles one parsed file with its fileset and raw source — the
// working state of a repair iteration.
type parsed struct {
	fset *token.FileSet
	file *ast.File
	src  []byte
	name string
}

func parseSource(name string, src []byte) (*parsed, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, 0)
	if err != nil {
		return nil, err
	}
	return &parsed{fset: fset, file: f, src: src, name: name}, nil
}

// offsetOf translates a node position into a byte offset of src.
func (p *parsed) offsetOf(pos token.Pos) int { return p.fset.Position(pos).Offset }

// nodePath returns the chain of nodes containing the byte offset,
// outermost first. Offsets sit inside a node when Pos <= off < End.
func (p *parsed) nodePath(off int) []ast.Node {
	var path []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if p.offsetOf(n.Pos()) <= off && off < p.offsetOf(n.End()) {
			path = append(path, n)
			return true
		}
		return false
	}
	ast.Inspect(p.file, visit)
	return path
}

// stmtAt returns the innermost statement containing the offset, or nil.
func (p *parsed) stmtAt(off int) ast.Stmt {
	path := p.nodePath(off)
	for i := len(path) - 1; i >= 0; i-- {
		if s, ok := path[i].(ast.Stmt); ok {
			if _, isBlock := s.(*ast.BlockStmt); !isBlock {
				return s
			}
		}
	}
	return nil
}

// stmtAncestors returns the statement chain containing the offset,
// outermost first, excluding plain blocks.
func (p *parsed) stmtAncestors(off int) []ast.Stmt {
	var out []ast.Stmt
	for _, n := range p.nodePath(off) {
		if s, ok := n.(ast.Stmt); ok {
			if _, isBlock := s.(*ast.BlockStmt); !isBlock {
				out = append(out, s)
			}
		}
	}
	return out
}

// enclosingBlock returns the innermost block statement strictly containing
// the statement (by identity), or nil.
func (p *parsed) enclosingBlock(s ast.Stmt) *ast.BlockStmt {
	off := p.offsetOf(s.Pos())
	var best *ast.BlockStmt
	for _, n := range p.nodePath(off) {
		if b, ok := n.(*ast.BlockStmt); ok {
			for _, in := range b.List {
				if in == s {
					best = b
				}
			}
		}
	}
	return best
}

// exprText returns the source spelling of an expression.
func (p *parsed) exprText(e ast.Expr) string {
	return string(p.src[p.offsetOf(e.Pos()):p.offsetOf(e.End())])
}

// lineStart returns the offset of the first byte of the line containing off.
func lineStart(src []byte, off int) int {
	for off > 0 && src[off-1] != '\n' {
		off--
	}
	return off
}

// lineEnd returns the offset one past the newline of the line containing
// off (or len(src) for an unterminated last line), so that the slice
// [lineStart, lineEnd) is the whole line including trailing comments.
func lineEnd(src []byte, off int) int {
	for off < len(src) && src[off] != '\n' {
		off++
	}
	if off < len(src) {
		off++
	}
	return off
}

// stmtLines returns the byte range covering every full line a statement
// spans, including a trailing same-line comment.
func (p *parsed) stmtLines(s ast.Stmt) (start, end int) {
	start = lineStart(p.src, p.offsetOf(s.Pos()))
	end = lineEnd(p.src, p.offsetOf(s.End())-1)
	return start, end
}
