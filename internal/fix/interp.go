package fix

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strconv"

	"repro/internal/mpi"
)

// This file is a small AST interpreter for the application subset of Go
// the planted corpus uses. It exists so a *patched* program — which is
// source text, not compiled code — can be executed against the real MPI
// simulator and proven clean by the dynamic analyzer and the schedule
// explorer. Method calls on simulator objects (*mpi.Proc, *mpi.Win,
// *memory.Buffer, ...) dispatch through reflection, so interpreted
// programs produce genuine traces; Repair gates on interpreter fidelity
// by first reproducing the compiled variants' verdicts from the pristine
// source.

// pkgSyms resolves qualified identifiers of the packages the corpus
// imports. Function values dispatch through reflection like methods.
var pkgSyms = map[string]map[string]any{
	"mpi": {
		"Byte": mpi.Byte, "Int32": mpi.Int32, "Int64": mpi.Int64,
		"Float32": mpi.Float32, "Float64": mpi.Float64,
		"OpSum": mpi.OpSum, "OpProd": mpi.OpProd, "OpMax": mpi.OpMax,
		"OpMin": mpi.OpMin, "OpReplace": mpi.OpReplace,
		"LockShared": mpi.LockShared, "LockExclusive": mpi.LockExclusive,
		"AssertNone": mpi.AssertNone,
		"NewGroup":   mpi.NewGroup,
	},
	"fmt": {
		"Errorf":  fmt.Errorf,
		"Sprintf": fmt.Sprintf,
	},
}

// Interp executes top-level functions of one parsed source file.
type Interp struct {
	fset *token.FileSet
	fns  map[string]*ast.FuncDecl
}

// NewInterp parses src and indexes its top-level functions.
func NewInterp(name string, src []byte) (*Interp, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, 0)
	if err != nil {
		return nil, err
	}
	ip := &Interp{fset: fset, fns: map[string]*ast.FuncDecl{}}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil {
			ip.fns[fd.Name.Name] = fd
		}
	}
	return ip, nil
}

// Closure evaluates root(buggy) — an app constructor returning a rank
// body — and wraps the resulting interpreted closure as a native body for
// mpi.Run. The wrapper deliberately does not recover: simulator control
// panics (abort, crash) must unwind to the rank goroutine's own handler,
// exactly as they do for compiled bodies.
func (ip *Interp) Closure(root string, buggy bool) (func(p *mpi.Proc) error, error) {
	fd, ok := ip.fns[root]
	if !ok {
		return nil, fmt.Errorf("interp: no function %q", root)
	}
	out, err := ip.callFunc(fd.Type, fd.Body, newScope(nil), []any{buggy})
	if err != nil {
		return nil, fmt.Errorf("interp: %s(%v): %w", root, buggy, err)
	}
	if len(out) != 1 {
		return nil, fmt.Errorf("interp: %s returned %d values, want 1", root, len(out))
	}
	cl, ok := out[0].(*closureVal)
	if !ok {
		return nil, fmt.Errorf("interp: %s did not return a closure", root)
	}
	return func(p *mpi.Proc) error {
		res, err := ip.callFunc(cl.typ, cl.body, cl.env, []any{p})
		if err != nil {
			return err
		}
		if len(res) == 0 || res[0] == nil {
			return nil
		}
		e, ok := res[0].(error)
		if !ok {
			return fmt.Errorf("interp: body returned %T, want error", res[0])
		}
		return e
	}, nil
}

// closureVal is a function literal closed over its defining scope.
type closureVal struct {
	typ  *ast.FuncType
	body *ast.BlockStmt
	env  *scope
}

type scope struct {
	vars   map[string]any
	parent *scope
}

func newScope(parent *scope) *scope { return &scope{vars: map[string]any{}, parent: parent} }

func (s *scope) lookup(name string) (any, bool) {
	for c := s; c != nil; c = c.parent {
		if v, ok := c.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (s *scope) assign(name string, v any) error {
	for c := s; c != nil; c = c.parent {
		if _, ok := c.vars[name]; ok {
			c.vars[name] = v
			return nil
		}
	}
	return fmt.Errorf("interp: assignment to undeclared %q", name)
}

// control carries a return through nested statement execution.
type control struct{ ret []any }

func (ip *Interp) pos(n ast.Node) token.Position { return ip.fset.Position(n.Pos()) }

// callFunc binds arguments in a fresh child scope and executes the body.
// Each invocation gets its own scope chain, so one interpreted closure is
// safe to run concurrently from every rank goroutine (the shared defining
// scope is only read).
func (ip *Interp) callFunc(typ *ast.FuncType, body *ast.BlockStmt, env *scope, args []any) ([]any, error) {
	sc := newScope(env)
	i := 0
	for _, field := range typ.Params.List {
		for _, name := range field.Names {
			if i >= len(args) {
				return nil, fmt.Errorf("interp: too few arguments (%d)", len(args))
			}
			sc.vars[name.Name] = args[i]
			i++
		}
	}
	if i != len(args) {
		return nil, fmt.Errorf("interp: %d arguments for %d parameters", len(args), i)
	}
	ctl, err := ip.execBlock(body, sc)
	if err != nil {
		return nil, err
	}
	if ctl != nil {
		return ctl.ret, nil
	}
	return nil, nil
}

func (ip *Interp) execBlock(b *ast.BlockStmt, sc *scope) (*control, error) {
	inner := newScope(sc)
	for _, s := range b.List {
		ctl, err := ip.execStmt(s, inner)
		if err != nil || ctl != nil {
			return ctl, err
		}
	}
	return nil, nil
}

func (ip *Interp) execStmt(s ast.Stmt, sc *scope) (*control, error) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return ip.execBlock(st, sc)
	case *ast.ExprStmt:
		// Statement-position calls discard their results, so void methods
		// (Barrier, Fence, Put, ...) are legal here.
		if call, ok := st.X.(*ast.CallExpr); ok {
			_, err := ip.evalCall(call, sc)
			return nil, err
		}
		_, err := ip.eval(st.X, sc)
		return nil, err
	case *ast.AssignStmt:
		return nil, ip.execAssign(st, sc)
	case *ast.DeclStmt:
		return nil, ip.execDecl(st, sc)
	case *ast.IncDecStmt:
		v, err := ip.eval(st.X, sc)
		if err != nil {
			return nil, err
		}
		op := token.ADD
		if st.Tok == token.DEC {
			op = token.SUB
		}
		nv, err := binOp(op, v, 1)
		if err != nil {
			return nil, fmt.Errorf("interp: %s: %w", ip.pos(st), err)
		}
		id, ok := st.X.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("interp: %s: unsupported inc/dec target", ip.pos(st))
		}
		return nil, sc.assign(id.Name, nv)
	case *ast.ReturnStmt:
		ctl := &control{ret: []any{}}
		for _, e := range st.Results {
			v, err := ip.eval(e, sc)
			if err != nil {
				return nil, err
			}
			ctl.ret = append(ctl.ret, v)
		}
		return ctl, nil
	case *ast.IfStmt:
		inner := newScope(sc)
		if st.Init != nil {
			if ctl, err := ip.execStmt(st.Init, inner); err != nil || ctl != nil {
				return ctl, err
			}
		}
		cond, err := ip.evalBool(st.Cond, inner)
		if err != nil {
			return nil, err
		}
		if cond {
			return ip.execBlock(st.Body, inner)
		}
		if st.Else != nil {
			return ip.execStmt(st.Else, inner)
		}
		return nil, nil
	case *ast.ForStmt:
		inner := newScope(sc)
		if st.Init != nil {
			if ctl, err := ip.execStmt(st.Init, inner); err != nil || ctl != nil {
				return ctl, err
			}
		}
		for {
			if st.Cond != nil {
				ok, err := ip.evalBool(st.Cond, inner)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, nil
				}
			}
			if ctl, err := ip.execBlock(st.Body, inner); err != nil || ctl != nil {
				return ctl, err
			}
			if st.Post != nil {
				if ctl, err := ip.execStmt(st.Post, inner); err != nil || ctl != nil {
					return ctl, err
				}
			}
		}
	case *ast.RangeStmt:
		if st.Tok != token.DEFINE {
			return nil, fmt.Errorf("interp: %s: unsupported range form", ip.pos(st))
		}
		v, err := ip.eval(st.X, sc)
		if err != nil {
			return nil, err
		}
		rv := reflect.ValueOf(v)
		if rv.Kind() != reflect.Slice {
			return nil, fmt.Errorf("interp: %s: range over %T", ip.pos(st), v)
		}
		for i := 0; i < rv.Len(); i++ {
			inner := newScope(sc)
			if id, ok := st.Key.(*ast.Ident); ok && id.Name != "_" {
				inner.vars[id.Name] = i
			}
			if st.Value != nil {
				if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
					inner.vars[id.Name] = rv.Index(i).Interface()
				}
			}
			if ctl, err := ip.execBlock(st.Body, inner); err != nil || ctl != nil {
				return ctl, err
			}
		}
		return nil, nil
	case *ast.EmptyStmt:
		return nil, nil
	}
	return nil, fmt.Errorf("interp: %s: unsupported statement %T", ip.pos(s), s)
}

func (ip *Interp) execAssign(st *ast.AssignStmt, sc *scope) error {
	// Compound assignment desugars to a binary op on a single pair.
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		var op token.Token
		switch st.Tok {
		case token.ADD_ASSIGN:
			op = token.ADD
		case token.SUB_ASSIGN:
			op = token.SUB
		case token.MUL_ASSIGN:
			op = token.MUL
		case token.QUO_ASSIGN:
			op = token.QUO
		case token.REM_ASSIGN:
			op = token.REM
		default:
			return fmt.Errorf("interp: %s: unsupported assignment %s", ip.pos(st), st.Tok)
		}
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return fmt.Errorf("interp: %s: compound assignment arity", ip.pos(st))
		}
		cur, err := ip.eval(st.Lhs[0], sc)
		if err != nil {
			return err
		}
		rhs, err := ip.eval(st.Rhs[0], sc)
		if err != nil {
			return err
		}
		nv, err := binOp(op, cur, rhs)
		if err != nil {
			return fmt.Errorf("interp: %s: %w", ip.pos(st), err)
		}
		id, ok := st.Lhs[0].(*ast.Ident)
		if !ok {
			return fmt.Errorf("interp: %s: unsupported assignment target", ip.pos(st))
		}
		return sc.assign(id.Name, nv)
	}

	var vals []any
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return fmt.Errorf("interp: %s: multi-assign needs a call", ip.pos(st))
		}
		out, err := ip.evalCall(call, sc)
		if err != nil {
			return err
		}
		vals = out
	} else {
		for _, e := range st.Rhs {
			v, err := ip.eval(e, sc)
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
	}
	if len(vals) != len(st.Lhs) {
		return fmt.Errorf("interp: %s: %d values for %d targets", ip.pos(st), len(vals), len(st.Lhs))
	}
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return fmt.Errorf("interp: %s: unsupported assignment target %T", ip.pos(st), lhs)
		}
		if id.Name == "_" {
			continue
		}
		if st.Tok == token.DEFINE {
			sc.vars[id.Name] = vals[i]
		} else if err := sc.assign(id.Name, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

func (ip *Interp) execDecl(st *ast.DeclStmt, sc *scope) error {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || (gd.Tok != token.CONST && gd.Tok != token.VAR) {
		return fmt.Errorf("interp: %s: unsupported declaration", ip.pos(st))
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			return fmt.Errorf("interp: %s: unsupported spec", ip.pos(st))
		}
		for i, name := range vs.Names {
			var v any
			if i < len(vs.Values) {
				var err error
				v, err = ip.eval(vs.Values[i], sc)
				if err != nil {
					return err
				}
			}
			if name.Name != "_" {
				sc.vars[name.Name] = v
			}
		}
	}
	return nil
}

func (ip *Interp) evalBool(e ast.Expr, sc *scope) (bool, error) {
	v, err := ip.eval(e, sc)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("interp: %s: condition is %T, want bool", ip.pos(e), v)
	}
	return b, nil
}

func (ip *Interp) eval(e ast.Expr, sc *scope) (any, error) {
	switch ex := e.(type) {
	case *ast.BasicLit:
		switch ex.Kind {
		case token.INT:
			n, err := strconv.ParseInt(ex.Value, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("interp: %s: %w", ip.pos(ex), err)
			}
			return int(n), nil
		case token.FLOAT:
			f, err := strconv.ParseFloat(ex.Value, 64)
			if err != nil {
				return nil, fmt.Errorf("interp: %s: %w", ip.pos(ex), err)
			}
			return f, nil
		case token.STRING:
			return strconv.Unquote(ex.Value)
		}
		return nil, fmt.Errorf("interp: %s: unsupported literal %s", ip.pos(ex), ex.Kind)
	case *ast.Ident:
		switch ex.Name {
		case "true":
			return true, nil
		case "false":
			return false, nil
		case "nil":
			return nil, nil
		}
		if v, ok := sc.lookup(ex.Name); ok {
			return v, nil
		}
		return nil, fmt.Errorf("interp: %s: undefined %q", ip.pos(ex), ex.Name)
	case *ast.ParenExpr:
		return ip.eval(ex.X, sc)
	case *ast.UnaryExpr:
		v, err := ip.eval(ex.X, sc)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case token.NOT:
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("interp: %s: ! on %T", ip.pos(ex), v)
			}
			return !b, nil
		case token.SUB:
			return binOp(token.SUB, 0, v)
		case token.ADD:
			return v, nil
		}
		return nil, fmt.Errorf("interp: %s: unsupported unary %s", ip.pos(ex), ex.Op)
	case *ast.BinaryExpr:
		if ex.Op == token.LAND || ex.Op == token.LOR {
			l, err := ip.evalBool(ex.X, sc)
			if err != nil {
				return nil, err
			}
			if (ex.Op == token.LAND && !l) || (ex.Op == token.LOR && l) {
				return l, nil
			}
			return ip.evalBool(ex.Y, sc)
		}
		l, err := ip.eval(ex.X, sc)
		if err != nil {
			return nil, err
		}
		r, err := ip.eval(ex.Y, sc)
		if err != nil {
			return nil, err
		}
		v, err := binOp(ex.Op, l, r)
		if err != nil {
			return nil, fmt.Errorf("interp: %s: %w", ip.pos(ex), err)
		}
		return v, nil
	case *ast.CallExpr:
		out, err := ip.evalCall(ex, sc)
		if err != nil {
			return nil, err
		}
		if len(out) != 1 {
			return nil, fmt.Errorf("interp: %s: call yields %d values in single-value context", ip.pos(ex), len(out))
		}
		return out[0], nil
	case *ast.SelectorExpr:
		return ip.evalSelector(ex, sc)
	case *ast.CompositeLit:
		return ip.evalComposite(ex, sc)
	case *ast.FuncLit:
		return &closureVal{typ: ex.Type, body: ex.Body, env: sc}, nil
	}
	return nil, fmt.Errorf("interp: %s: unsupported expression %T", ip.pos(e), e)
}

// evalSelector resolves pkg.Symbol references (mpi.Float64, mpi.OpSum).
func (ip *Interp) evalSelector(sel *ast.SelectorExpr, sc *scope) (any, error) {
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, shadowed := sc.lookup(id.Name); !shadowed {
			if syms, ok := pkgSyms[id.Name]; ok {
				if v, ok := syms[sel.Sel.Name]; ok {
					return v, nil
				}
				return nil, fmt.Errorf("interp: %s: unknown symbol %s.%s", ip.pos(sel), id.Name, sel.Sel.Name)
			}
		}
	}
	return nil, fmt.Errorf("interp: %s: unsupported selector", ip.pos(sel))
}

func (ip *Interp) evalComposite(lit *ast.CompositeLit, sc *scope) (any, error) {
	at, ok := lit.Type.(*ast.ArrayType)
	if !ok || at.Len != nil {
		return nil, fmt.Errorf("interp: %s: unsupported composite literal", ip.pos(lit))
	}
	elt, ok := at.Elt.(*ast.Ident)
	if !ok {
		return nil, fmt.Errorf("interp: %s: unsupported element type", ip.pos(lit))
	}
	var conv func(any) (any, error)
	var mk func(n int) reflect.Value
	switch elt.Name {
	case "float64":
		conv = func(v any) (any, error) { return convertBuiltin("float64", v) }
		mk = func(n int) reflect.Value { return reflect.ValueOf(make([]float64, 0, n)) }
	case "int":
		conv = func(v any) (any, error) { return convertBuiltin("int", v) }
		mk = func(n int) reflect.Value { return reflect.ValueOf(make([]int, 0, n)) }
	default:
		return nil, fmt.Errorf("interp: %s: unsupported slice of %s", ip.pos(lit), elt.Name)
	}
	out := mk(len(lit.Elts))
	for _, el := range lit.Elts {
		v, err := ip.eval(el, sc)
		if err != nil {
			return nil, err
		}
		cv, err := conv(v)
		if err != nil {
			return nil, fmt.Errorf("interp: %s: %w", ip.pos(el), err)
		}
		out = reflect.Append(out, reflect.ValueOf(cv))
	}
	return out.Interface(), nil
}

// builtinConversions are the type-conversion spellings the apps use.
var builtinConversions = map[string]bool{
	"int": true, "int32": true, "int64": true,
	"uint32": true, "uint64": true, "byte": true, "uint8": true,
	"float32": true, "float64": true,
}

func (ip *Interp) evalCall(call *ast.CallExpr, sc *scope) ([]any, error) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, shadowed := sc.lookup(fun.Name); !shadowed && builtinConversions[fun.Name] && len(call.Args) == 1 {
			v, err := ip.eval(call.Args[0], sc)
			if err != nil {
				return nil, err
			}
			cv, err := convertBuiltin(fun.Name, v)
			if err != nil {
				return nil, fmt.Errorf("interp: %s: %w", ip.pos(call), err)
			}
			return []any{cv}, nil
		}
		args, err := ip.evalArgs(call.Args, sc)
		if err != nil {
			return nil, err
		}
		if v, ok := sc.lookup(fun.Name); ok {
			cl, ok := v.(*closureVal)
			if !ok {
				return nil, fmt.Errorf("interp: %s: calling %T", ip.pos(call), v)
			}
			return ip.callFunc(cl.typ, cl.body, cl.env, args)
		}
		if fd, ok := ip.fns[fun.Name]; ok {
			return ip.callFunc(fd.Type, fd.Body, newScope(nil), args)
		}
		return nil, fmt.Errorf("interp: %s: undefined function %q", ip.pos(call), fun.Name)
	case *ast.SelectorExpr:
		// Package function (mpi.NewGroup, fmt.Errorf) or method call.
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, shadowed := sc.lookup(id.Name); !shadowed {
				if syms, ok := pkgSyms[id.Name]; ok {
					fv, ok := syms[fun.Sel.Name]
					if !ok {
						return nil, fmt.Errorf("interp: %s: unknown function %s.%s", ip.pos(call), id.Name, fun.Sel.Name)
					}
					args, err := ip.evalArgs(call.Args, sc)
					if err != nil {
						return nil, err
					}
					return callReflect(reflect.ValueOf(fv), args, id.Name+"."+fun.Sel.Name)
				}
			}
		}
		recv, err := ip.eval(fun.X, sc)
		if err != nil {
			return nil, err
		}
		m := reflect.ValueOf(recv).MethodByName(fun.Sel.Name)
		if !m.IsValid() {
			return nil, fmt.Errorf("interp: %s: %T has no method %s", ip.pos(call), recv, fun.Sel.Name)
		}
		args, err := ip.evalArgs(call.Args, sc)
		if err != nil {
			return nil, err
		}
		return callReflect(m, args, fmt.Sprintf("(%T).%s", recv, fun.Sel.Name))
	}
	return nil, fmt.Errorf("interp: %s: unsupported call target %T", ip.pos(call), call.Fun)
}

func (ip *Interp) evalArgs(exprs []ast.Expr, sc *scope) ([]any, error) {
	args := make([]any, 0, len(exprs))
	for _, e := range exprs {
		v, err := ip.eval(e, sc)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, nil
}

// callReflect invokes a native function/method, converting interpreter
// values to the declared parameter types.
func callReflect(fn reflect.Value, args []any, what string) ([]any, error) {
	ft := fn.Type()
	fixed := ft.NumIn()
	if ft.IsVariadic() {
		fixed--
		if len(args) < fixed {
			return nil, fmt.Errorf("interp: %s: %d args for %d+ parameters", what, len(args), fixed)
		}
	} else if len(args) != fixed {
		return nil, fmt.Errorf("interp: %s: %d args for %d parameters", what, len(args), fixed)
	}
	in := make([]reflect.Value, len(args))
	for i, a := range args {
		var pt reflect.Type
		if i < fixed {
			pt = ft.In(i)
		} else {
			pt = ft.In(ft.NumIn() - 1).Elem()
		}
		cv, err := convertArg(a, pt)
		if err != nil {
			return nil, fmt.Errorf("interp: %s arg %d: %w", what, i, err)
		}
		in[i] = cv
	}
	out := fn.Call(in)
	res := make([]any, len(out))
	for i, v := range out {
		res[i] = v.Interface()
	}
	return res, nil
}

func convertArg(a any, pt reflect.Type) (reflect.Value, error) {
	if a == nil {
		return reflect.Zero(pt), nil
	}
	av := reflect.ValueOf(a)
	if av.Type().AssignableTo(pt) {
		return av, nil
	}
	if numericKind(av.Kind()) && numericKind(pt.Kind()) && av.Type().ConvertibleTo(pt) {
		return av.Convert(pt), nil
	}
	if pt.Kind() == reflect.Interface && av.Type().Implements(pt) {
		return av, nil
	}
	return reflect.Value{}, fmt.Errorf("cannot use %T as %s", a, pt)
}

func numericKind(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64:
		return true
	}
	return false
}

func convertBuiltin(name string, v any) (any, error) {
	rv := reflect.ValueOf(v)
	if !rv.IsValid() || !numericKind(rv.Kind()) {
		return nil, fmt.Errorf("cannot convert %T to %s", v, name)
	}
	switch name {
	case "int":
		return int(asFloat(rv)), nil
	case "int32":
		return int32(asFloat(rv)), nil
	case "int64":
		return int64(asFloat(rv)), nil
	case "uint32":
		return uint32(asUint(rv)), nil
	case "uint64":
		return asUint(rv), nil
	case "byte", "uint8":
		return byte(asUint(rv)), nil
	case "float32":
		return float32(asFloat(rv)), nil
	case "float64":
		return asFloat(rv), nil
	}
	return nil, fmt.Errorf("unsupported conversion to %s", name)
}

func asFloat(rv reflect.Value) float64 {
	switch rv.Kind() {
	case reflect.Float32, reflect.Float64:
		return rv.Float()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return float64(rv.Uint())
	default:
		return float64(rv.Int())
	}
}

func asUint(rv reflect.Value) uint64 {
	switch rv.Kind() {
	case reflect.Float32, reflect.Float64:
		return uint64(rv.Float())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return rv.Uint()
	default:
		return uint64(rv.Int())
	}
}

// binOp evaluates an arithmetic or comparison operator with Go-like
// numeric promotion: float if either side is float, unsigned if either
// side is unsigned, int otherwise.
func binOp(op token.Token, a, b any) (any, error) {
	av, bv := reflect.ValueOf(a), reflect.ValueOf(b)
	if av.IsValid() && bv.IsValid() && numericKind(av.Kind()) && numericKind(bv.Kind()) {
		aF := av.Kind() == reflect.Float32 || av.Kind() == reflect.Float64
		bF := bv.Kind() == reflect.Float32 || bv.Kind() == reflect.Float64
		if aF || bF {
			return floatOp(op, asFloat(av), asFloat(bv))
		}
		aU := av.Kind() >= reflect.Uint && av.Kind() <= reflect.Uintptr
		bU := bv.Kind() >= reflect.Uint && bv.Kind() <= reflect.Uintptr
		if aU || bU {
			return uintOp(op, asUint(av), asUint(bv))
		}
		return intOp(op, av.Int(), bv.Int())
	}
	// Non-numeric equality: bools, strings, nil.
	switch op {
	case token.EQL:
		return a == b, nil
	case token.NEQ:
		return a != b, nil
	}
	return nil, fmt.Errorf("unsupported operands %T %s %T", a, op, b)
}

func floatOp(op token.Token, a, b float64) (any, error) {
	switch op {
	case token.ADD:
		return a + b, nil
	case token.SUB:
		return a - b, nil
	case token.MUL:
		return a * b, nil
	case token.QUO:
		return a / b, nil
	case token.EQL:
		return a == b, nil
	case token.NEQ:
		return a != b, nil
	case token.LSS:
		return a < b, nil
	case token.LEQ:
		return a <= b, nil
	case token.GTR:
		return a > b, nil
	case token.GEQ:
		return a >= b, nil
	}
	return nil, fmt.Errorf("unsupported float op %s", op)
}

func uintOp(op token.Token, a, b uint64) (any, error) {
	switch op {
	case token.ADD:
		return a + b, nil
	case token.SUB:
		return a - b, nil
	case token.MUL:
		return a * b, nil
	case token.QUO:
		return a / b, nil
	case token.REM:
		return a % b, nil
	case token.EQL:
		return a == b, nil
	case token.NEQ:
		return a != b, nil
	case token.LSS:
		return a < b, nil
	case token.LEQ:
		return a <= b, nil
	case token.GTR:
		return a > b, nil
	case token.GEQ:
		return a >= b, nil
	}
	return nil, fmt.Errorf("unsupported uint op %s", op)
}

func intOp(op token.Token, a, b int64) (any, error) {
	switch op {
	case token.ADD:
		return int(a + b), nil
	case token.SUB:
		return int(a - b), nil
	case token.MUL:
		return int(a * b), nil
	case token.QUO:
		return int(a / b), nil
	case token.REM:
		return int(a % b), nil
	case token.EQL:
		return a == b, nil
	case token.NEQ:
		return a != b, nil
	case token.LSS:
		return a < b, nil
	case token.LEQ:
		return a <= b, nil
	case token.GTR:
		return a > b, nil
	case token.GEQ:
		return a >= b, nil
	}
	return nil, fmt.Errorf("unsupported int op %s", op)
}
