package fix

import (
	"strings"
	"testing"

	"repro/internal/stanalyzer"
)

// Each snippet is a minimal buggy program triggering exactly one repair
// template; the table pins kind -> action -> patched shape.
const snippetHeader = `package apps

import "repro/internal/mpi"

`

var templateCases = []struct {
	name     string
	root     string
	src      string
	kind     stanalyzer.Kind
	action   stanalyzer.FixActionKind
	contains []string // substrings the patched source must gain
}{
	{
		name: "get-origin-use/insert-flush-all",
		root: "SnipGetAll",
		src: `func SnipGetAll(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		buf := p.AllocFloat64(2, "sa_win")
		snap := p.AllocFloat64(2, "sa_snap")
		w := p.WinCreate(buf, 8, p.CommWorld())
		w.LockAll()
		w.Get(snap, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
		if buggy {
			_ = snap.Float64At(0)
		}
		w.FlushAll()
		if !buggy {
			_ = snap.Float64At(0)
		}
		w.UnlockAll()
		w.Free()
		return nil
	}
}
`,
		kind:     stanalyzer.KindGetOriginUse,
		action:   stanalyzer.FixInsertFlushAll,
		contains: []string{"w.FlushAll()\n\t\t\t_ = snap.Float64At(0)"},
	},
	{
		name: "get-origin-use/insert-flush",
		root: "SnipGetLock",
		src: `func SnipGetLock(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		buf := p.AllocFloat64(2, "sb_win")
		snap := p.AllocFloat64(1, "sb_snap")
		w := p.WinCreate(buf, 8, p.CommWorld())
		w.Lock(mpi.LockShared, 1)
		w.Get(snap, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
		if buggy {
			_ = snap.Float64At(0)
		}
		w.Unlock(1)
		if !buggy {
			_ = snap.Float64At(0)
		}
		w.Free()
		return nil
	}
}
`,
		kind:     stanalyzer.KindGetOriginUse,
		action:   stanalyzer.FixInsertFlush,
		contains: []string{"w.Flush(1)\n\t\t\t_ = snap.Float64At(0)"},
	},
	{
		name: "put-origin-store/insert-flush",
		root: "SnipPutStore",
		src: `func SnipPutStore(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		slab := p.AllocFloat64(1, "sc_slab")
		chunk := p.AllocFloat64(1, "sc_chunk")
		w := p.WinCreate(slab, 8, p.CommWorld())
		w.Lock(mpi.LockShared, 1)
		chunk.SetFloat64(0, 1)
		w.Put(chunk, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
		if buggy {
			chunk.SetFloat64(0, 2)
		}
		w.Unlock(1)
		if !buggy {
			chunk.SetFloat64(0, 2)
		}
		w.Free()
		return nil
	}
}
`,
		kind:     stanalyzer.KindPutOriginStore,
		action:   stanalyzer.FixInsertFlush,
		contains: []string{"w.Flush(1)\n\t\t\tchunk.SetFloat64(0, 2)"},
	},
	{
		name: "epoch-target-conflict/widen-flush-local",
		root: "SnipFlushLocal",
		src: `func SnipFlushLocal(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		slab := p.AllocFloat64(1, "sd_slab")
		chunk := p.AllocFloat64(1, "sd_chunk")
		w := p.WinCreate(slab, 8, p.CommWorld())
		if p.Rank() == 0 {
			w.Lock(mpi.LockShared, 1)
			chunk.SetFloat64(0, 1)
			w.Put(chunk, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
			if buggy {
				w.FlushLocal(1)
			} else {
				w.Flush(1)
			}
			chunk.SetFloat64(0, 2)
			w.Put(chunk, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
			w.Unlock(1)
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}
`,
		kind:     stanalyzer.KindEpochTargetConflict,
		action:   stanalyzer.FixWidenFlushLocal,
		contains: []string{"if buggy {\n\t\t\t\tw.Flush(1)\n\t\t\t} else {"},
	},
	{
		name: "epoch-target-conflict/split-epoch",
		root: "SnipSameGuard",
		src: `func SnipSameGuard(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		board := p.AllocFloat64(4, "se_board")
		srca := p.AllocFloat64(4, "se_a")
		srcb := p.AllocFloat64(4, "se_b")
		w := p.WinCreate(board, 8, p.CommWorld())
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			w.Put(srca, 0, 2, mpi.Float64, 1, 0, 2, mpi.Float64)
			if buggy {
				w.Put(srcb, 0, 2, mpi.Float64, 1, 1, 2, mpi.Float64)
			} else {
				w.Put(srcb, 0, 2, mpi.Float64, 1, 2, 2, mpi.Float64)
			}
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	}
}
`,
		kind:     stanalyzer.KindEpochTargetConflict,
		action:   stanalyzer.FixSplitEpoch,
		contains: []string{"}\n\t\tw.Fence(mpi.AssertNone)\n\t\tif p.Rank() == 0 {"},
	},
	{
		name: "exposure-access/move-out-of-exposure",
		root: "SnipExpose",
		src: `func SnipExpose(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		tile := p.AllocFloat64(2, "sf_tile")
		w := p.WinCreate(tile, 8, p.CommWorld())
		if p.Rank() == 0 {
			w.Post(mpi.NewGroup([]int{1}))
			if buggy {
				tile.SetFloat64(8, 1)
			}
			w.WaitEpoch()
		} else if p.Rank() == 1 {
			src := p.AllocFloat64(1, "sf_src")
			w.Start(mpi.NewGroup([]int{0}))
			w.Put(src, 0, 1, mpi.Float64, 0, 0, 1, mpi.Float64)
			w.Complete()
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}
`,
		kind:     stanalyzer.KindExposureAccess,
		action:   stanalyzer.FixMoveOutOfExposure,
		contains: []string{"w.WaitEpoch()\n\t\t\tif buggy {\n\t\t\t\ttile.SetFloat64(8, 1)\n\t\t\t}"},
	},
	{
		name: "cross-local-conflict/move-after-sync",
		root: "SnipPoll",
		src: `func SnipPoll(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		box := p.AllocFloat64(1, "sg_box")
		w := p.WinCreate(box, 8, p.CommWorld())
		if p.Rank() == 0 {
			flag := p.AllocFloat64(1, "sg_flag")
			w.Lock(mpi.LockShared, 1)
			w.Put(flag, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
			w.Unlock(1)
			p.Barrier(p.CommWorld())
		} else if p.Rank() == 1 {
			if buggy {
				_ = box.Float64At(0)
			}
			p.Barrier(p.CommWorld())
			if !buggy {
				_ = box.Float64At(0)
			}
		} else {
			p.Barrier(p.CommWorld())
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}
`,
		kind:     stanalyzer.KindCrossLocalConflict,
		action:   stanalyzer.FixMoveAfterSync,
		contains: []string{"p.Barrier(p.CommWorld())\n\t\t\tif buggy {\n\t\t\t\t_ = box.Float64At(0)\n\t\t\t}"},
	},
	{
		name: "cross-target-conflict/rewrite-accumulate",
		root: "SnipMix",
		src: `func SnipMix(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		hot := p.AllocFloat64(1, "sh_hot")
		w := p.WinCreate(hot, 8, p.CommWorld())
		if p.Rank() == 1 {
			bump := p.AllocFloat64(1, "sh_bump")
			prior := p.AllocFloat64(1, "sh_prior")
			w.LockAll()
			w.FetchAndOp(bump, 0, prior, 0, 0, 0, mpi.Float64, mpi.OpSum)
			w.UnlockAll()
		}
		if p.Rank() == 2 {
			reset := p.AllocFloat64(1, "sh_reset")
			w.LockAll()
			if buggy {
				w.Put(reset, 0, 1, mpi.Float64, 0, 0, 1, mpi.Float64)
			} else {
				w.Accumulate(reset, 0, 1, mpi.Float64, 0, 0, 1, mpi.Float64, mpi.OpSum)
			}
			w.UnlockAll()
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}
`,
		kind:     stanalyzer.KindCrossTargetConflict,
		action:   stanalyzer.FixRewriteAccumulate,
		contains: []string{"w.Accumulate(reset, 0, 1, mpi.Float64, 0, 0, 1, mpi.Float64, mpi.OpSum)\n\t\t\t} else {"},
	},
}

func TestTemplates(t *testing.T) {
	for _, tc := range templateCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			src := []byte(snippetHeader + tc.src)
			if err := Typecheck("snip.go", src); err != nil {
				t.Fatalf("snippet does not type-check: %v", err)
			}
			res, err := PatchSource("snip.go", src, Config{Root: tc.root})
			if err != nil {
				t.Fatalf("PatchSource: %v", err)
			}
			if len(res.Steps) != 1 {
				t.Fatalf("got %d repair steps, want 1: %+v", len(res.Steps), res.Steps)
			}
			st := res.Steps[0]
			if st.Kind != tc.kind || st.Action != tc.action {
				t.Fatalf("repaired %s via %s, want %s via %s", st.Kind, st.Action, tc.kind, tc.action)
			}
			patched := string(res.Patched)
			for _, want := range tc.contains {
				if !strings.Contains(patched, want) {
					t.Errorf("patched source lacks %q:\n%s", want, patched)
				}
			}
			if formatted, err := gofmt(res.Patched); err != nil || string(formatted) != patched {
				t.Errorf("patched source is not gofmt-idempotent (err=%v)", err)
			}
			if err := Typecheck("snip.go", res.Patched); err != nil {
				t.Errorf("patched source does not type-check: %v", err)
			}
		})
	}
}
