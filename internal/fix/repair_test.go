package fix

import (
	"strings"
	"testing"

	"repro/internal/apps"
)

// TestRepairCorpus is the acceptance gate the issue demands: every
// planted buggy corpus variant must auto-repair to a program whose
// dynamic and exploration verdicts match its checked-in fixed variant.
func TestRepairCorpus(t *testing.T) {
	for _, bc := range apps.CorpusCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			res, err := Repair(bc, VerifyConfig{})
			if err != nil {
				t.Fatalf("Repair: %v", err)
			}
			if !res.Verified {
				t.Fatalf("repair not verified: %s\ncompiled buggy=%+v fixed=%+v\ninterp buggy=%+v fixed=%+v\npatched buggy=%+v fixed=%+v\ndiff:\n%s",
					res.Reason, res.CompiledBuggy, res.CompiledFixed,
					res.InterpBuggy, res.InterpFixed,
					res.PatchedBuggy, res.PatchedFixed, res.Diff)
			}
			if len(res.Steps) == 0 {
				t.Fatalf("verified repair recorded no steps")
			}
			if res.Diff == "" {
				t.Fatalf("verified repair produced an empty diff")
			}
			if !strings.Contains(res.Diff, "+++ b/"+res.File) {
				t.Fatalf("diff header does not name %s:\n%s", res.File, res.Diff)
			}
		})
	}
}

// TestRepairAllAggregates exercises the batch entry point the CLI uses.
func TestRepairAllAggregates(t *testing.T) {
	cases := apps.CorpusCases()
	results, err := RepairAll(cases, VerifyConfig{})
	if err != nil {
		t.Fatalf("RepairAll: %v", err)
	}
	if len(results) != len(cases) {
		t.Fatalf("got %d results for %d cases", len(results), len(cases))
	}
	for _, res := range results {
		if !res.Verified {
			t.Errorf("%s: not verified: %s", res.Name, res.Reason)
		}
	}
}
