package fix

import (
	"bytes"
	"io/fs"
	"testing"

	"repro/internal/apps"
)

// FuzzApplyPatch feeds arbitrary Go sources through the repair loop and
// checks the invariants the issue pins: repairing is idempotent (a
// repaired source re-repairs to itself with no further steps), and every
// produced patch passes go/format and — when the input type-checked
// against the application API — still type-checks.
func FuzzApplyPatch(f *testing.F) {
	for _, e := range mustReadDir(f) {
		src, err := fs.ReadFile(apps.SourceFS(), e.Name())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	for _, tc := range templateCases {
		f.Add([]byte(snippetHeader + tc.src))
	}
	f.Add([]byte("package apps\n\nfunc Nop(buggy bool) int { return 0 }\n"))
	f.Add([]byte("not go at all"))

	f.Fuzz(func(t *testing.T, src []byte) {
		res, err := PatchSource("fuzz.go", src, Config{})
		if err != nil {
			return // unparseable or unrepairable input: rejected, not patched
		}
		formatted, err := gofmt(res.Patched)
		if err != nil {
			t.Fatalf("patched source does not format: %v\n%s", err, res.Patched)
		}
		if len(res.Steps) > 0 && !bytes.Equal(formatted, res.Patched) {
			t.Fatalf("patched source is not gofmt-idempotent")
		}
		if Typecheck("fuzz.go", src) == nil {
			if err := Typecheck("fuzz.go", res.Patched); err != nil {
				t.Fatalf("repair broke type-checking: %v\n%s", err, res.Patched)
			}
		}
		again, err := PatchSource("fuzz.go", res.Patched, Config{})
		if err != nil {
			t.Fatalf("re-repairing a repaired source failed: %v", err)
		}
		if len(again.Steps) != 0 {
			t.Fatalf("repair not idempotent: second pass applied %d more steps", len(again.Steps))
		}
		if !bytes.Equal(again.Patched, res.Patched) {
			t.Fatalf("repair not idempotent: second pass changed the source")
		}
	})
}

func mustReadDir(f *testing.F) []fs.DirEntry {
	entries, err := fs.ReadDir(apps.SourceFS(), ".")
	if err != nil {
		f.Fatal(err)
	}
	return entries
}
