package fix

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// VerifyConfig sizes the dynamic proof of one repair.
type VerifyConfig struct {
	Schedules int    // explorer schedules per sweep (default 6)
	Seed      uint64 // explorer seed (default 1)
	MaxRanks  int    // cap on registry rank counts (default 8)
}

func (c VerifyConfig) withDefaults() VerifyConfig {
	if c.Schedules == 0 {
		c.Schedules = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxRanks == 0 {
		c.MaxRanks = 8
	}
	return c
}

// Verdict is one program variant's outcome under the dynamic analyzer
// (default schedule) and the schedule-exploration sweep.
type Verdict struct {
	Err     string `json:"err,omitempty"` // execution error, empty on success
	Dynamic bool   `json:"dynamic"`       // default-schedule run reported violations
	Explore bool   `json:"explore"`       // sweep found violating schedules
}

// Clean reports an error-free run with nothing flagged by either engine.
func (v Verdict) Clean() bool { return v.Err == "" && !v.Dynamic && !v.Explore }

// Matches reports engine-verdict agreement between two variants.
func (v Verdict) Matches(o Verdict) bool {
	return v.Err == o.Err && v.Dynamic == o.Dynamic && v.Explore == o.Explore
}

// CaseResult is the proven (or refuted) repair of one registry bug case.
type CaseResult struct {
	Name  string `json:"name"`
	File  string `json:"file"`
	Ranks int    `json:"ranks"`

	Steps      []Step `json:"steps,omitempty"`
	Iterations int    `json:"iterations"`
	Diff       string `json:"diff,omitempty"`

	// Engine verdicts: the compiled variants (ground truth), the pristine
	// source under the interpreter (fidelity gate), and the patched source
	// under the interpreter (the proof).
	CompiledBuggy Verdict `json:"compiled_buggy"`
	CompiledFixed Verdict `json:"compiled_fixed"`
	InterpBuggy   Verdict `json:"interp_buggy"`
	InterpFixed   Verdict `json:"interp_fixed"`
	PatchedBuggy  Verdict `json:"patched_buggy"`
	PatchedFixed  Verdict `json:"patched_fixed"`

	// Gates. Verified is their conjunction.
	InterpFidelity bool   `json:"interp_fidelity"` // interpreter reproduces compiled verdicts
	BuggyCaught    bool   `json:"buggy_caught"`    // pristine bug visible to some engine (else there is nothing to prove)
	PatchedClean   bool   `json:"patched_clean"`   // patched planted variant analyzes clean
	CleanPreserved bool   `json:"clean_preserved"` // patched clean variant still clean
	MatchesFixed   bool   `json:"matches_fixed"`   // patched verdicts equal the checked-in fixed variant's
	StaticClean    bool   `json:"static_clean"`    // patched source re-analyzes without diagnostics
	Formatted      bool   `json:"formatted"`       // patched source is gofmt-idempotent
	Typechecks     bool   `json:"typechecks"`      // patched source re-type-checks
	Verified       bool   `json:"verified"`
	Reason         string `json:"reason,omitempty"` // first failing gate or repair error
}

// runBody executes one body under the dynamic analyzer — the same
// pipeline experiments.runChecked uses, duplicated here because the
// experiments package layers its repair column on top of this package.
func runBody(ranks int, body func(p *mpi.Proc) error, relevant []string) (*core.Report, error) {
	sink := trace.NewMemorySink()
	var rel profiler.Relevance
	if relevant != nil {
		rel = profiler.FromNames(relevant)
	}
	pr := profiler.New(sink, rel)
	if err := mpi.Run(ranks, mpi.Options{Hook: pr}, body); err != nil {
		return nil, err
	}
	return core.Analyze(sink.Set())
}

// verdict scores one body under both dynamic engines.
func (c VerifyConfig) verdict(body func(p *mpi.Proc) error, ranks int, relevant []string) Verdict {
	rep, err := runBody(ranks, body, relevant)
	if err != nil {
		return Verdict{Err: err.Error()}
	}
	v := Verdict{Dynamic: len(rep.Violations) > 0}
	var rel profiler.Relevance
	if relevant != nil {
		rel = profiler.FromNames(relevant)
	}
	strat, err := explore.ParseStrategy("sweep")
	if err != nil {
		return Verdict{Err: err.Error()}
	}
	res, err := explore.Explore(explore.Config{
		Runner:    &explore.Runner{Body: body, Ranks: ranks, Rel: rel},
		Strategy:  strat,
		Schedules: c.Schedules,
		Seed:      c.Seed,
	})
	if err != nil {
		return Verdict{Err: err.Error()}
	}
	v.Explore = res.Distinct() > 0
	return v
}

// sourceFor locates the embedded application source file declaring the
// case's entry function.
func sourceFor(root string) (string, []byte, error) {
	entries, err := fs.ReadDir(apps.SourceFS(), ".")
	if err != nil {
		return "", nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		src, err := fs.ReadFile(apps.SourceFS(), name)
		if err != nil {
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, name, src, 0)
		if err != nil {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == root {
				return name, src, nil
			}
		}
	}
	return "", nil, fmt.Errorf("fix: no embedded source declares %q", root)
}

// interpVerdict builds the interpreted variant's body and scores it.
func (c VerifyConfig) interpVerdict(ip *Interp, root string, buggy bool, ranks int, relevant []string) Verdict {
	body, err := ip.Closure(root, buggy)
	if err != nil {
		return Verdict{Err: err.Error()}
	}
	return c.verdict(body, ranks, relevant)
}

// Repair patches one registry bug case's source and proves the repair:
// the interpreter must reproduce the compiled variants' engine verdicts
// from the pristine source (fidelity), the patched planted variant must
// analyze clean under the dynamic analyzer and an exploration sweep with
// verdicts matching the checked-in fixed variant, the clean variant's
// behavior must be preserved, and the patched source must re-format,
// re-type-check, and re-analyze statically without diagnostics.
func Repair(bc apps.BugCase, cfg VerifyConfig) (*CaseResult, error) {
	cfg = cfg.withDefaults()
	name, src, err := sourceFor(bc.StaticRoot)
	if err != nil {
		return nil, err
	}
	ranks := bc.Ranks
	if ranks > cfg.MaxRanks {
		ranks = cfg.MaxRanks
	}
	res := &CaseResult{Name: bc.Name, File: name, Ranks: ranks}

	fail := func(reason string) (*CaseResult, error) {
		if res.Reason == "" {
			res.Reason = reason
		}
		return res, nil
	}

	// Ground truth and interpreter fidelity on the pristine source.
	res.CompiledBuggy = cfg.verdict(bc.Buggy, ranks, bc.RelevantBuffers)
	res.CompiledFixed = cfg.verdict(bc.Fixed, ranks, bc.RelevantBuffers)
	ip, err := NewInterp(name, src)
	if err != nil {
		return fail(fmt.Sprintf("parsing %s: %v", name, err))
	}
	res.InterpBuggy = cfg.interpVerdict(ip, bc.StaticRoot, true, ranks, bc.RelevantBuffers)
	res.InterpFixed = cfg.interpVerdict(ip, bc.StaticRoot, false, ranks, bc.RelevantBuffers)
	res.InterpFidelity = res.InterpBuggy.Matches(res.CompiledBuggy) && res.InterpFixed.Matches(res.CompiledFixed)
	res.BuggyCaught = res.CompiledBuggy.Dynamic || res.CompiledBuggy.Explore

	// The repair itself.
	patch, err := PatchSource(name, src, Config{Root: bc.StaticRoot})
	if err != nil {
		return fail(fmt.Sprintf("repair: %v", err))
	}
	res.Steps, res.Iterations = patch.Steps, patch.Iterations
	res.Diff = UnifiedDiff("a/"+name, "b/"+name, src, patch.Patched)

	// Structural gates.
	if formatted, err := gofmt(patch.Patched); err != nil || string(formatted) != string(patch.Patched) {
		res.Formatted = false
	} else {
		res.Formatted = true
	}
	res.Typechecks = Typecheck(name, patch.Patched) == nil
	_, diags, err := checkScoped(name, patch.Patched, Config{Root: bc.StaticRoot}.withDefaults())
	res.StaticClean = err == nil && len(diags) == 0

	// Dynamic proof on the patched source.
	ipp, err := NewInterp(name, patch.Patched)
	if err != nil {
		return fail(fmt.Sprintf("parsing patched %s: %v", name, err))
	}
	res.PatchedBuggy = cfg.interpVerdict(ipp, bc.StaticRoot, true, ranks, bc.RelevantBuffers)
	res.PatchedFixed = cfg.interpVerdict(ipp, bc.StaticRoot, false, ranks, bc.RelevantBuffers)
	res.PatchedClean = res.PatchedBuggy.Clean()
	res.CleanPreserved = res.PatchedFixed.Clean() && res.PatchedFixed.Matches(res.CompiledFixed)
	res.MatchesFixed = res.PatchedBuggy.Matches(res.CompiledFixed)

	gates := []struct {
		ok     bool
		reason string
	}{
		{res.InterpFidelity, "interpreter verdicts diverge from compiled variants"},
		{res.BuggyCaught, "planted bug not visible to any dynamic engine"},
		{res.PatchedClean, "patched planted variant still flagged"},
		{res.CleanPreserved, "patched clean variant no longer clean"},
		{res.MatchesFixed, "patched verdicts differ from the checked-in fixed variant"},
		{res.StaticClean, "patched source still carries static diagnostics"},
		{res.Formatted, "patched source is not gofmt-idempotent"},
		{res.Typechecks, "patched source fails to type-check"},
	}
	res.Verified = true
	for _, g := range gates {
		if !g.ok {
			res.Verified = false
			if res.Reason == "" {
				res.Reason = g.reason
			}
		}
	}
	return res, nil
}

// RepairAll repairs every given case, collecting per-case results; the
// error is reserved for infrastructure failures (missing sources).
func RepairAll(cases []apps.BugCase, cfg VerifyConfig) ([]*CaseResult, error) {
	var out []*CaseResult
	for _, bc := range cases {
		res, err := Repair(bc, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bc.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}
