package fix

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sync"
)

// Patched sources are re-type-checked against stub declarations of the
// packages the applications import, built once with go/types. Stubs avoid
// depending on a source checkout or export data for the repo's own
// packages; the typecheck audit test pins every stub method to the real
// API via reflection, so drift fails loudly.

const memoryStub = `package memory

type Buffer struct{}

func (b *Buffer) Name() string                      { return "" }
func (b *Buffer) Size() uint64                      { return 0 }
func (b *Buffer) Float64At(off uint64) float64      { return 0 }
func (b *Buffer) SetFloat64(off uint64, v float64)  {}
func (b *Buffer) Int32At(off uint64) int32          { return 0 }
func (b *Buffer) SetInt32(off uint64, v int32)      {}
func (b *Buffer) Int64At(off uint64) int64          { return 0 }
func (b *Buffer) SetInt64(off uint64, v int64)      {}
func (b *Buffer) Uint8At(off uint64) byte           { return 0 }
func (b *Buffer) SetUint8(off uint64, v byte)       {}
func (b *Buffer) Float64SliceAt(off uint64, n int) []float64  { return nil }
func (b *Buffer) SetFloat64Slice(off uint64, vs []float64)    {}
`

const mpiStub = `package mpi

import "repro/internal/memory"

type Datatype struct{}
type Comm struct{}
type Group struct{}
type LockType uint8
type AccOp uint8

const (
	LockShared LockType = iota
	LockExclusive
)

const (
	OpSum AccOp = iota
	OpProd
	OpMax
	OpMin
	OpReplace
)

const AssertNone = 0

var (
	Byte    *Datatype
	Int32   *Datatype
	Int64   *Datatype
	Float32 *Datatype
	Float64 *Datatype
)

func NewGroup(worldRanks []int) *Group { return nil }

type Proc struct{}

func (p *Proc) Rank() int                                      { return 0 }
func (p *Proc) Size() int                                      { return 0 }
func (p *Proc) CommWorld() *Comm                               { return nil }
func (p *Proc) Barrier(c *Comm)                                {}
func (p *Proc) Alloc(size uint64, name string) *memory.Buffer  { return nil }
func (p *Proc) AllocFloat64(n int, name string) *memory.Buffer { return nil }
func (p *Proc) AllocInt32(n int, name string) *memory.Buffer   { return nil }
func (p *Proc) WinCreate(buf *memory.Buffer, dispUnit uint32, c *Comm) *Win { return nil }
func (p *Proc) WinAllocate(size uint64, dispUnit uint32, c *Comm, name string) (*Win, *memory.Buffer) {
	return nil, nil
}
func (p *Proc) TypeVector(count, blocklen, stride int, base *Datatype) *Datatype { return nil }
func (p *Proc) TypeContiguous(count int, base *Datatype) *Datatype               { return nil }

type Win struct{}

func (w *Win) Fence(assert int)              {}
func (w *Win) Lock(lt LockType, target int)  {}
func (w *Win) Unlock(target int)             {}
func (w *Win) LockAll()                      {}
func (w *Win) UnlockAll()                    {}
func (w *Win) Flush(target int)              {}
func (w *Win) FlushAll()                     {}
func (w *Win) FlushLocal(target int)         {}
func (w *Win) FlushLocalAll()                {}
func (w *Win) Post(group *Group)             {}
func (w *Win) Start(group *Group)            {}
func (w *Win) Complete()                     {}
func (w *Win) WaitEpoch()                    {}
func (w *Win) Free()                         {}
func (w *Win) LocalBuffer() *memory.Buffer   { return nil }
func (w *Win) Put(origin *memory.Buffer, originOff uint64, originCount int, originType *Datatype, target int, targetDisp uint64, targetCount int, targetType *Datatype) {
}
func (w *Win) Get(origin *memory.Buffer, originOff uint64, originCount int, originType *Datatype, target int, targetDisp uint64, targetCount int, targetType *Datatype) {
}
func (w *Win) Accumulate(origin *memory.Buffer, originOff uint64, originCount int, originType *Datatype, target int, targetDisp uint64, targetCount int, targetType *Datatype, op AccOp) {
}
func (w *Win) GetAccumulate(origin *memory.Buffer, originOff uint64, originCount int, originType *Datatype, result *memory.Buffer, resultOff uint64, resultCount int, resultType *Datatype, target int, targetDisp uint64, targetCount int, targetType *Datatype, op AccOp) {
}
func (w *Win) FetchAndOp(origin *memory.Buffer, originOff uint64, result *memory.Buffer, resultOff uint64, target int, targetDisp uint64, dtype *Datatype, op AccOp) {
}
func (w *Win) CompareAndSwap(origin *memory.Buffer, originOff uint64, compare *memory.Buffer, compareOff uint64, result *memory.Buffer, resultOff uint64, target int, targetDisp uint64, dtype *Datatype) {
}
`

// fmtStub declares the two fmt functions the applications use. Stubbing
// fmt too keeps the typechecker independent of compiler export data,
// which recent toolchains no longer ship pre-built.
const fmtStub = `package fmt

func Errorf(format string, a ...interface{}) error  { return nil }
func Sprintf(format string, a ...interface{}) string { return "" }
`

// stubSources maps import path to stub source, in dependency order.
var stubSources = []struct{ path, src string }{
	{"repro/internal/memory", memoryStub},
	{"repro/internal/mpi", mpiStub},
	{"fmt", fmtStub},
}

type stubImporter map[string]*types.Package

func (m stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("fix: no stub for import %q", path)
}

var (
	stubOnce sync.Once
	stubPkgs stubImporter
	stubErr  error
)

func buildStubs() (stubImporter, error) {
	stubOnce.Do(func() {
		pkgs := stubImporter{}
		for _, s := range stubSources {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, s.path+"/stub.go", s.src, 0)
			if err != nil {
				stubErr = fmt.Errorf("fix: parsing stub %s: %w", s.path, err)
				return
			}
			conf := types.Config{Importer: pkgs}
			pkg, err := conf.Check(s.path, fset, []*ast.File{f}, nil)
			if err != nil {
				stubErr = fmt.Errorf("fix: type-checking stub %s: %w", s.path, err)
				return
			}
			pkgs[s.path] = pkg
		}
		stubPkgs = pkgs
	})
	return stubPkgs, stubErr
}

// Typecheck type-checks one application source file against the stub
// packages, returning the first type error.
func Typecheck(name string, src []byte) error {
	pkgs, err := buildStubs()
	if err != nil {
		return err
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, 0)
	if err != nil {
		return err
	}
	conf := types.Config{Importer: pkgs}
	_, err = conf.Check("repro/internal/apps", fset, []*ast.File{f}, nil)
	return err
}
