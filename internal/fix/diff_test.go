package fix

import "testing"

func TestUnifiedDiff(t *testing.T) {
	a := []byte("l1\nl2\nl3\nl4\nl5\nl6\nl7\nl8\nl9\n")
	if got := UnifiedDiff("a/f", "b/f", a, a); got != "" {
		t.Fatalf("identical inputs produced a diff:\n%s", got)
	}
	b := []byte("l1\nl2\nl3\nl4x\nl5\nl6\nl7\nl8\nl9\n")
	got := UnifiedDiff("a/f", "b/f", a, b)
	want := "--- a/f\n+++ b/f\n@@ -1,7 +1,7 @@\n l1\n l2\n l3\n-l4\n+l4x\n l5\n l6\n l7\n"
	if got != want {
		t.Fatalf("diff mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestUnifiedDiffSeparateHunks(t *testing.T) {
	a := []byte("a\nb\nc\nd\ne\nf\ng\nh\ni\nj\nk\nl\nm\nn\n")
	b := []byte("a\nB\nc\nd\ne\nf\ng\nh\ni\nj\nk\nl\nM\nn\n")
	got := UnifiedDiff("a/f", "b/f", a, b)
	want := "--- a/f\n+++ b/f\n" +
		"@@ -1,5 +1,5 @@\n a\n-b\n+B\n c\n d\n e\n" +
		"@@ -10,5 +10,5 @@\n j\n k\n l\n-m\n+M\n n\n"
	if got != want {
		t.Fatalf("diff mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestUnifiedDiffInsertion(t *testing.T) {
	a := []byte("one\ntwo\nthree\n")
	b := []byte("one\ntwo\nnew\nthree\n")
	got := UnifiedDiff("a/f", "b/f", a, b)
	want := "--- a/f\n+++ b/f\n@@ -1,3 +1,4 @@\n one\n two\n+new\n three\n"
	if got != want {
		t.Fatalf("diff mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
