package fix

import (
	"go/types"
	"reflect"
	"testing"

	"repro/internal/memory"
	"repro/internal/mpi"
)

// TestStubsMatchRealAPI pins every stub method to the real simulator API:
// each method declared on a stub type must exist on the corresponding
// real type with the same parameter and result counts, so the stubs
// cannot silently accept programs the real package would reject (or
// vice versa) as the API evolves.
func TestStubsMatchRealAPI(t *testing.T) {
	pkgs, err := buildStubs()
	if err != nil {
		t.Fatal(err)
	}
	real := map[string]map[string]reflect.Type{
		"repro/internal/mpi": {
			"Proc": reflect.TypeOf(&mpi.Proc{}),
			"Win":  reflect.TypeOf(&mpi.Win{}),
		},
		"repro/internal/memory": {
			"Buffer": reflect.TypeOf(&memory.Buffer{}),
		},
	}
	for path, typesByName := range real {
		stub := pkgs[path]
		if stub == nil {
			t.Fatalf("no stub package for %s", path)
		}
		for typeName, rt := range typesByName {
			obj := stub.Scope().Lookup(typeName)
			if obj == nil {
				t.Errorf("%s: stub lacks type %s", path, typeName)
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				t.Errorf("%s.%s: stub object is not a named type", path, typeName)
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				sig := m.Type().(*types.Signature)
				rm, ok := rt.MethodByName(m.Name())
				if !ok {
					t.Errorf("%s.%s.%s: stubbed method missing on the real type", path, typeName, m.Name())
					continue
				}
				// reflect counts the receiver as parameter 0.
				if got, want := rm.Type.NumIn()-1, sig.Params().Len(); got != want {
					t.Errorf("%s.%s.%s: real method takes %d params, stub declares %d", path, typeName, m.Name(), got, want)
				}
				if got, want := rm.Type.NumOut(), sig.Results().Len(); got != want {
					t.Errorf("%s.%s.%s: real method returns %d values, stub declares %d", path, typeName, m.Name(), got, want)
				}
			}
		}
	}
}

// TestTypecheckRejects pins the negative direction: sources using the
// API wrongly must fail, so the repair gate cannot pass vacuously.
func TestTypecheckRejects(t *testing.T) {
	bad := []string{
		"package apps\n\nimport \"repro/internal/mpi\"\n\nfunc Bad(p *mpi.Proc) { p.NoSuchMethod() }\n",
		"package apps\n\nimport \"repro/internal/mpi\"\n\nfunc Bad(w *mpi.Win) { w.Fence() }\n",
		"package apps\n\nimport \"nonexistent/pkg\"\n\nvar _ = pkg.X\n",
	}
	for i, src := range bad {
		if err := Typecheck("bad.go", []byte(src)); err == nil {
			t.Errorf("case %d: ill-typed source passed Typecheck", i)
		}
	}
	good := "package apps\n\nimport \"repro/internal/mpi\"\n\nfunc Good(w *mpi.Win) { w.Fence(mpi.AssertNone) }\n"
	if err := Typecheck("good.go", []byte(good)); err != nil {
		t.Errorf("well-typed source rejected: %v", err)
	}
}
