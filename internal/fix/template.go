package fix

import (
	"fmt"
	"go/ast"
	"go/token"

	"repro/internal/stanalyzer"
)

// syncCalls are the method names whose call statements order RMA against
// local accesses — the insertion/move targets of the repair templates.
var syncCalls = map[string]bool{
	"Barrier": true, "WaitEpoch": true, "Fence": true, "Complete": true,
	"Unlock": true, "UnlockAll": true, "Flush": true, "FlushAll": true,
}

// isDefineGuard reports whether the statement is an if on a -define'd
// variant selector (`if buggy { ... }` or its negation): the boundary the
// templates must not hoist repairs across, so the clean variant's behavior
// stays untouched.
func isDefineGuard(s ast.Stmt, defines map[string]bool) bool {
	ifs, ok := s.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond := ifs.Cond
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond = u.X
	}
	id, ok := cond.(*ast.Ident)
	if !ok {
		return false
	}
	_, defined := defines[id.Name]
	return defined
}

// applyTemplate maps one diagnostic's FixAction onto concrete edits.
func applyTemplate(p *parsed, d *stanalyzer.Diagnostic, defines map[string]bool) ([]edit, string, error) {
	act := d.Action
	if act == nil {
		return nil, "", fmt.Errorf("fix: %s at %s carries no action", d.Kind, d.Pos)
	}
	switch act.Kind {
	case stanalyzer.FixInsertFlushAll:
		return insertCompletion(p, d, act.Win+".FlushAll()", defines)
	case stanalyzer.FixInsertFlush:
		return insertCompletion(p, d, act.Win+".Flush("+act.Target+")", defines)
	case stanalyzer.FixWidenFlushLocal:
		return widenFlushLocal(p, d)
	case stanalyzer.FixSplitEpoch:
		return splitEpoch(p, d)
	case stanalyzer.FixMoveAfterSync, stanalyzer.FixMoveOutOfExposure:
		return moveAfterNextSync(p, d, defines)
	case stanalyzer.FixRewriteAccumulate:
		return rewriteAccumulate(p, d)
	}
	return nil, "", fmt.Errorf("fix: unknown action kind %q", act.Kind)
}

// insertCompletion inserts a completion call (Flush/FlushAll) before the
// statement using the still-pending transfer. The insertion point ascends
// from the flagged statement to the outermost enclosing statement that
// neither contains the conflicting operation (the transfer must stay
// before the flush) nor crosses a variant guard (the clean variant must
// not inherit the extra call).
func insertCompletion(p *parsed, d *stanalyzer.Diagnostic, call string, defines map[string]bool) ([]edit, string, error) {
	anchorOff := d.Action.Anchor.Offset
	chain := p.stmtAncestors(anchorOff)
	if len(chain) == 0 {
		return nil, "", fmt.Errorf("fix: no statement at %s", d.Action.Anchor)
	}
	refOff := -1
	if d.Ref.IsValid() {
		refOff = d.Ref.Offset
	}
	target := chain[len(chain)-1]
	for i := len(chain) - 2; i >= 0; i-- {
		s := chain[i]
		if refOff >= 0 && p.offsetOf(s.Pos()) <= refOff && refOff < p.offsetOf(s.End()) {
			break
		}
		if isDefineGuard(s, defines) {
			break
		}
		target = s
	}
	at := lineStart(p.src, p.offsetOf(target.Pos()))
	note := fmt.Sprintf("insert %s before %s:%d", call, p.name, p.fset.Position(target.Pos()).Line)
	return []edit{{start: at, end: at, text: call + "\n"}}, note, nil
}

// widenFlushLocal rewrites the FlushLocal between the two conflicting
// operations into a full Flush: local completion frees the origin buffer
// but leaves the transfer pending at the target, so a second update to the
// same cell still races.
func widenFlushLocal(p *parsed, d *stanalyzer.Diagnostic) ([]edit, string, error) {
	lo, hi := 0, len(p.src)
	if d.Ref.IsValid() {
		lo = d.Ref.Offset
	}
	if d.Action.Anchor.Offset > lo {
		hi = d.Action.Anchor.Offset
	}
	var sel *ast.SelectorExpr
	ast.Inspect(p.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		s, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || s.Sel.Name != "FlushLocal" {
			return true
		}
		off := p.offsetOf(call.Pos())
		if off >= lo && off < hi && (d.Action.Win == "" || p.exprText(s.X) == d.Action.Win) {
			sel = s
		}
		return true
	})
	if sel == nil {
		return nil, "", fmt.Errorf("fix: no %s.FlushLocal between %s and %s", d.Action.Win, d.Ref, d.Action.Anchor)
	}
	note := fmt.Sprintf("widen %s.FlushLocal to Flush at %s:%d", d.Action.Win, p.name, p.fset.Position(sel.Sel.Pos()).Line)
	return []edit{{start: p.offsetOf(sel.Sel.Pos()), end: p.offsetOf(sel.Sel.End()), text: "Flush"}}, note, nil
}

// splitEpoch inserts a collective Fence between the two conflicting
// operations of one fence epoch, splitting it in two. The fence is placed
// in the block that opened the epoch — outside any rank guard the
// operations sit under, because every rank of the window's communicator
// must reach a fence for it to complete.
func splitEpoch(p *parsed, d *stanalyzer.Diagnostic) ([]edit, string, error) {
	act := d.Action
	if !act.Open.IsValid() || !d.Ref.IsValid() {
		return nil, "", fmt.Errorf("fix: split-epoch at %s lacks open/ref positions", act.Anchor)
	}
	openStmt := p.stmtAt(act.Open.Offset)
	if openStmt == nil {
		return nil, "", fmt.Errorf("fix: no epoch-opening statement at %s", act.Open)
	}
	epochBlock := p.enclosingBlock(openStmt)
	if epochBlock == nil {
		return nil, "", fmt.Errorf("fix: epoch-opening statement at %s not in a block", act.Open)
	}
	childUnder := func(b *ast.BlockStmt, off int) ast.Stmt {
		for _, s := range b.List {
			if p.offsetOf(s.Pos()) <= off && off < p.offsetOf(s.End()) {
				return s
			}
		}
		return nil
	}
	fence := act.Win + ".Fence(mpi.AssertNone)"
	tPos, tRef := childUnder(epochBlock, act.Anchor.Offset), childUnder(epochBlock, d.Ref.Offset)
	if tPos == nil || tRef == nil {
		return nil, "", fmt.Errorf("fix: conflicting operations of %s not under the epoch block", act.Anchor)
	}
	if tPos != tRef {
		later := tPos
		if p.offsetOf(tRef.Pos()) > p.offsetOf(later.Pos()) {
			later = tRef
		}
		at := lineStart(p.src, p.offsetOf(later.Pos()))
		note := fmt.Sprintf("split fence epoch: insert %s before %s:%d", fence, p.name, p.fset.Position(later.Pos()).Line)
		return []edit{{start: at, end: at, text: fence + "\n"}}, note, nil
	}
	// Both operations sit under one guard (`if p.Rank() == 0 { ... }`):
	// split the guard itself, closing it, fencing collectively, and
	// reopening the same condition.
	guard, ok := tPos.(*ast.IfStmt)
	if !ok || guard.Else != nil || guard.Init != nil {
		return nil, "", fmt.Errorf("fix: cannot split epoch inside %s:%d", p.name, p.fset.Position(tPos.Pos()).Line)
	}
	uPos, uRef := childUnder(guard.Body, act.Anchor.Offset), childUnder(guard.Body, d.Ref.Offset)
	if uPos == nil || uRef == nil || uPos == uRef {
		return nil, "", fmt.Errorf("fix: conflicting operations inseparable under guard at %s:%d", p.name, p.fset.Position(guard.Pos()).Line)
	}
	later := uPos
	if p.offsetOf(uRef.Pos()) > p.offsetOf(later.Pos()) {
		later = uRef
	}
	at := lineStart(p.src, p.offsetOf(later.Pos()))
	cond := p.exprText(guard.Cond)
	note := fmt.Sprintf("split fence epoch across guard %q: insert %s before %s:%d",
		cond, fence, p.name, p.fset.Position(later.Pos()).Line)
	return []edit{{start: at, end: at, text: "}\n" + fence + "\nif " + cond + " {\n"}}, note, nil
}

// moveAfterNextSync moves the flagged local access past the next
// synchronization statement in its block, deferring it until the pending
// transfer has completed (FixMoveAfterSync) or the exposure epoch has
// closed (FixMoveOutOfExposure). When the access is the lone statement of
// a variant guard, the whole guard moves, so the clean variant's path is
// untouched.
func moveAfterNextSync(p *parsed, d *stanalyzer.Diagnostic, defines map[string]bool) ([]edit, string, error) {
	moved := p.stmtAt(d.Action.Anchor.Offset)
	if moved == nil {
		return nil, "", fmt.Errorf("fix: no statement at %s", d.Action.Anchor)
	}
	for {
		block := p.enclosingBlock(moved)
		if block == nil {
			return nil, "", fmt.Errorf("fix: statement at %s not inside a block", d.Action.Anchor)
		}
		chain := p.stmtAncestors(p.offsetOf(moved.Pos()))
		var guard ast.Stmt
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i] == moved && i > 0 {
				guard = chain[i-1]
			}
		}
		if guard != nil && isDefineGuard(guard, defines) && len(block.List) == 1 && guard.(*ast.IfStmt).Body == block {
			moved = guard
			continue
		}
		break
	}
	block := p.enclosingBlock(moved)
	idx := -1
	for i, s := range block.List {
		if s == moved {
			idx = i
		}
	}
	if idx < 0 {
		return nil, "", fmt.Errorf("fix: lost statement at %s", d.Action.Anchor)
	}
	var sync ast.Stmt
	for _, s := range block.List[idx+1:] {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && syncCalls[sel.Sel.Name] {
			sync = s
			break
		}
	}
	if sync == nil {
		return nil, "", fmt.Errorf("fix: no synchronization after %s:%d in its block",
			p.name, p.fset.Position(moved.Pos()).Line)
	}
	ms, me := p.stmtLines(moved)
	_, syncEnd := p.stmtLines(sync)
	note := fmt.Sprintf("move %s:%d after the synchronization at %s:%d",
		p.name, p.fset.Position(moved.Pos()).Line, p.name, p.fset.Position(sync.Pos()).Line)
	return []edit{
		{start: ms, end: me, text: ""},
		{start: syncEnd, end: syncEnd, text: string(p.src[ms:me])},
	}, note, nil
}

// rewriteAccumulate rewrites the plain Put at the anchor into an
// Accumulate with the reduction op the conflicting accumulate-family
// operation already uses, restoring Table I compatibility (same-op
// accumulates may overlap; a plain Put may not).
func rewriteAccumulate(p *parsed, d *stanalyzer.Diagnostic) ([]edit, string, error) {
	act := d.Action
	if act.Op == "" {
		return nil, "", fmt.Errorf("fix: rewrite-accumulate at %s lacks a reduction op", act.Anchor)
	}
	var call *ast.CallExpr
	var sel *ast.SelectorExpr
	for _, n := range p.nodePath(act.Anchor.Offset) {
		if c, ok := n.(*ast.CallExpr); ok {
			if s, ok := c.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "Put" {
				call, sel = c, s
			}
		}
	}
	if call == nil {
		return nil, "", fmt.Errorf("fix: no Put call at %s", act.Anchor)
	}
	note := fmt.Sprintf("rewrite Put at %s:%d to Accumulate(%s)", p.name, p.fset.Position(call.Pos()).Line, act.Op)
	return []edit{
		{start: p.offsetOf(sel.Sel.Pos()), end: p.offsetOf(sel.Sel.End()), text: "Accumulate"},
		{start: p.offsetOf(call.Rparen), end: p.offsetOf(call.Rparen), text: ", " + act.Op},
	}, note, nil
}
