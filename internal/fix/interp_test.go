package fix

import (
	"strings"
	"testing"
)

// The interpreter only needs to run the application subset faithfully;
// these tests pin the language features the corpus exercises without
// touching the simulator.
const interpProg = `package apps

import "fmt"

func helper(x int) int { return x * 2 }

func Arith(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		sum := 0.0
		for i := 0; i < 4; i++ {
			sum += float64(i)
		}
		if sum != 6 {
			return fmt.Errorf("loop sum = %v", sum)
		}
		total := 0.0
		for i, want := range []float64{1, 2, 3} {
			total += want * float64(i+1)
		}
		if total != 14 {
			return fmt.Errorf("range total = %v", total)
		}
		const base = 10
		n := helper(base)
		if n != 20 {
			return fmt.Errorf("helper = %v", n)
		}
		u := uint64(3) * 8
		if u != 24 {
			return fmt.Errorf("uint math = %v", u)
		}
		if got := fmt.Sprintf("%d-%v", n, buggy); buggy && got != "20-true" {
			return fmt.Errorf("sprintf = %q", got)
		}
		if buggy {
			return fmt.Errorf("buggy branch taken")
		}
		return nil
	}
}
`

func TestInterpLanguageSubset(t *testing.T) {
	ip, err := NewInterp("interp.go", []byte(interpProg))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ip.Closure("Arith", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean(nil); err != nil {
		t.Fatalf("clean variant: %v", err)
	}
	buggy, err := ip.Closure("Arith", true)
	if err != nil {
		t.Fatal(err)
	}
	err = buggy(nil)
	if err == nil || !strings.Contains(err.Error(), "buggy branch taken") {
		t.Fatalf("buggy variant returned %v, want the planted error", err)
	}
}

func TestInterpUnknownRoot(t *testing.T) {
	ip, err := NewInterp("interp.go", []byte(interpProg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Closure("Missing", false); err == nil {
		t.Fatal("Closure on an undeclared root did not fail")
	}
}
