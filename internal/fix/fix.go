package fix

import (
	"fmt"
	"go/ast"
	"sort"

	"repro/internal/stanalyzer"
)

// Config scopes one repair run.
type Config struct {
	// Root scopes diagnostics to the functions reachable from this entry
	// point (BugCase.StaticRoot); empty repairs the whole file.
	Root string

	// Defines fixes variant selectors for the static checker, normally
	// {"buggy": true}: the planted variant is repaired, and the templates
	// refuse to cross the guards these selectors control.
	Defines map[string]bool

	// MaxIterations bounds the repair loop (default 16). Every accepted
	// iteration must strictly shrink the scoped diagnostic set, so the
	// bound only trips on unrepairable inputs.
	MaxIterations int
}

func (c Config) withDefaults() Config {
	if c.Defines == nil {
		c.Defines = map[string]bool{"buggy": true}
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 16
	}
	return c
}

// Step records one accepted repair iteration.
type Step struct {
	Kind   stanalyzer.Kind          `json:"kind"`
	Action stanalyzer.FixActionKind `json:"action"`
	Anchor string                   `json:"anchor"`
	Note   string                   `json:"note"`
}

// PatchResult is the outcome of PatchSource: the repaired source and the
// repair steps that produced it.
type PatchResult struct {
	Patched    []byte
	Steps      []Step
	Iterations int
}

// kindPriority orders diagnostics for repair: structural epoch errors
// first (their repairs frequently clear downstream phase conflicts too),
// cross-process phase conflicts last.
var kindPriority = map[stanalyzer.Kind]int{
	stanalyzer.KindExposureAccess:      0,
	stanalyzer.KindEpochTargetConflict: 1,
	stanalyzer.KindGetOriginUse:        2,
	stanalyzer.KindPutOriginStore:      3,
	stanalyzer.KindCrossTargetConflict: 4,
	stanalyzer.KindCrossLocalConflict:  5,
}

// checkScoped parses src and returns the scoped diagnostics plus the
// parse state the templates operate on.
func checkScoped(name string, src []byte, cfg Config) (*parsed, []stanalyzer.Diagnostic, error) {
	p, err := parseSource(name, src)
	if err != nil {
		return nil, nil, err
	}
	rep, err := stanalyzer.Check(p.fset, []*ast.File{p.file}, stanalyzer.Options{Defines: cfg.Defines})
	if err != nil {
		return nil, nil, err
	}
	if cfg.Root == "" {
		return p, rep.Diags, nil
	}
	return p, rep.ForFunctions(rep.Reachable(cfg.Root)), nil
}

func countKind(diags []stanalyzer.Diagnostic, k stanalyzer.Kind) int {
	n := 0
	for i := range diags {
		if diags[i].Kind == k {
			n++
		}
	}
	return n
}

// PatchSource repairs one source file to a fixpoint: each iteration picks
// the highest-priority actionable diagnostic, applies its repair template,
// and accepts the candidate only if re-analysis shows the diagnostic set
// strictly shrinking — both overall and for the repaired kind. The loop
// ends when the scoped diagnostics drain; a candidate that fails to make
// progress is rejected and the next diagnostic is tried.
func PatchSource(name string, src []byte, cfg Config) (*PatchResult, error) {
	cfg = cfg.withDefaults()
	res := &PatchResult{Patched: src}
	for {
		p, diags, err := checkScoped(name, res.Patched, cfg)
		if err != nil {
			return nil, err
		}
		if len(diags) == 0 {
			return res, nil
		}
		if res.Iterations >= cfg.MaxIterations {
			return nil, fmt.Errorf("fix: %d diagnostic(s) remain after %d iterations", len(diags), res.Iterations)
		}
		ordered := append([]stanalyzer.Diagnostic(nil), diags...)
		sort.SliceStable(ordered, func(i, j int) bool {
			a, b := &ordered[i], &ordered[j]
			if kindPriority[a.Kind] != kindPriority[b.Kind] {
				return kindPriority[a.Kind] < kindPriority[b.Kind]
			}
			if a.Confidence != b.Confidence {
				return a.Confidence > b.Confidence
			}
			return a.Pos.Offset < b.Pos.Offset
		})
		var lastErr error
		applied := false
		for i := range ordered {
			d := &ordered[i]
			if d.Action == nil {
				continue
			}
			edits, note, err := applyTemplate(p, d, cfg.Defines)
			if err != nil {
				lastErr = err
				continue
			}
			cand, err := applyEdits(p.src, edits)
			if err != nil {
				lastErr = err
				continue
			}
			cand, err = gofmt(cand)
			if err != nil {
				lastErr = fmt.Errorf("fix: %s produced unparseable source: %w", d.Action.Kind, err)
				continue
			}
			_, after, err := checkScoped(name, cand, cfg)
			if err != nil {
				lastErr = err
				continue
			}
			if len(after) >= len(diags) || countKind(after, d.Kind) >= countKind(diags, d.Kind) {
				lastErr = fmt.Errorf("fix: %s at %s did not reduce the diagnostics (%d -> %d)",
					d.Action.Kind, d.Pos, len(diags), len(after))
				continue
			}
			res.Patched = cand
			res.Steps = append(res.Steps, Step{
				Kind: d.Kind, Action: d.Action.Kind,
				Anchor: fmt.Sprintf("%s:%d", name, d.Action.Anchor.Line), Note: note,
			})
			res.Iterations++
			applied = true
			break
		}
		if !applied {
			if lastErr == nil {
				lastErr = fmt.Errorf("fix: %d diagnostic(s) carry no repair action", len(diags))
			}
			return nil, lastErr
		}
	}
}
