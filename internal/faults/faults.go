// Package faults defines deterministic, seeded fault and schedule plans
// for the MC-Checker pipeline. A Plan is parsed from a compact DSL
// ("seed=7,crash=1@120,trunc=0.5,reorder,yield=20,prio=1.0,chg=2,delay=0@3")
// and consumed by the simulator (rank crashes, scheduler yields, RMA
// completion scheduling), the trace layer (byte truncation), and the CLI
// (soak and explore modes). Everything is derived from the plan's seed
// through a splitmix64 generator, so the same plan produces the same
// faults — and therefore the same report — on every run.
//
// Beyond failure injection, a Plan doubles as a deterministic *schedule*
// over the space of legal RMA completion orders: reorder (random batch
// permutation), prio (rank completion priorities), chg (PCT-style
// priority change points), and delay (delay-bounded reordering) pick one
// legal completion order per batch. internal/explore sweeps that space
// and shrinks violating plans back to a minimal, replayable clause set
// (ScheduleAtoms / WithScheduleAtoms).
//
// The package is dependency-free (standard library only) so that every
// layer of the pipeline can import it without coupling.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Crash stops one rank at its Nth MPI call (1-based), before the call
// takes effect or is traced.
type Crash struct {
	Rank int
	Call int
}

// Trunc truncates the encoded trace of one rank (or every rank when
// Rank < 0) to the leading Frac of its bytes.
type Trunc struct {
	Rank int // -1 = all ranks
	Frac float64
}

// Delay defers one origin rank's operations to the back of one RMA
// completion batch — the unit step of delay-bounded scheduling.
type Delay struct {
	Origin int // world rank whose operations are delayed
	Batch  int // 0-based per-window completion-batch ordinal
}

// Plan is one deterministic fault plan. The zero value injects nothing.
type Plan struct {
	Seed    uint64
	Crashes []Crash
	Truncs  []Trunc
	Reorder bool // legal cross-origin reordering of RMA completion batches
	Yield   int  // percent chance of a scheduler yield per MPI call

	// Schedule clauses: deterministic choices of legal RMA completion
	// orders, explored by internal/explore and replayed via the DSL.
	Prio    []int   // completion priority per world rank (higher applies later; ranks beyond the list use their rank)
	Changes []int   // PCT-style change points: batch ordinals at which a seed-derived rank is demoted
	Delays  []Delay // delay-bounded reordering steps
}

// Parse decodes the fault DSL: comma-separated clauses of
//
//	seed=N          PRNG seed (default 1)
//	crash=R@N       rank R crashes at its Nth MPI call
//	trunc=F         truncate every rank's trace to fraction F of its bytes
//	trunc=F@R       truncate only rank R's trace
//	reorder         legally reorder RMA completion batches across origins
//	yield=P         P percent chance of a scheduler yield per MPI call
//	prio=P0.P1...   completion priority per rank (higher applies later)
//	chg=K           PCT-style change point at completion batch K
//	delay=R@K       delay rank R's operations to the back of batch K
//
// An empty string yields a nil plan (no faults).
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := p.applyClause(clause); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// applyClause folds one DSL clause into the plan.
func (p *Plan) applyClause(clause string) error {
	key, val, hasVal := strings.Cut(clause, "=")
	switch key {
	case "seed":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil || !hasVal {
			return fmt.Errorf("faults: bad seed clause %q", clause)
		}
		p.Seed = n
	case "crash":
		rankStr, callStr, ok := strings.Cut(val, "@")
		if !ok || !hasVal {
			return fmt.Errorf("faults: bad crash clause %q (want crash=RANK@CALL)", clause)
		}
		rank, err1 := strconv.Atoi(rankStr)
		call, err2 := strconv.Atoi(callStr)
		if err1 != nil || err2 != nil || rank < 0 || call < 1 {
			return fmt.Errorf("faults: bad crash clause %q (want crash=RANK@CALL, CALL >= 1)", clause)
		}
		p.Crashes = append(p.Crashes, Crash{Rank: rank, Call: call})
	case "trunc":
		fracStr, rankStr, hasRank := strings.Cut(val, "@")
		frac, err := strconv.ParseFloat(fracStr, 64)
		if err != nil || !hasVal || frac < 0 || frac > 1 {
			return fmt.Errorf("faults: bad trunc clause %q (want trunc=FRAC[@RANK], 0 <= FRAC <= 1)", clause)
		}
		rank := -1
		if hasRank {
			rank, err = strconv.Atoi(rankStr)
			if err != nil || rank < 0 {
				return fmt.Errorf("faults: bad trunc clause %q", clause)
			}
		}
		p.Truncs = append(p.Truncs, Trunc{Rank: rank, Frac: frac})
	case "reorder":
		if hasVal {
			return fmt.Errorf("faults: reorder takes no value (got %q)", clause)
		}
		p.Reorder = true
	case "yield":
		n, err := strconv.Atoi(val)
		if err != nil || !hasVal || n < 0 || n > 100 {
			return fmt.Errorf("faults: bad yield clause %q (want yield=PERCENT)", clause)
		}
		p.Yield = n
	case "prio":
		if !hasVal || val == "" {
			return fmt.Errorf("faults: bad prio clause %q (want prio=P0.P1...)", clause)
		}
		var prio []int
		for _, part := range strings.Split(val, ".") {
			n, err := strconv.Atoi(part)
			if err != nil || n < 0 {
				return fmt.Errorf("faults: bad prio clause %q (priorities are non-negative ints)", clause)
			}
			prio = append(prio, n)
		}
		p.Prio = prio
	case "chg":
		n, err := strconv.Atoi(val)
		if err != nil || !hasVal || n < 0 {
			return fmt.Errorf("faults: bad chg clause %q (want chg=BATCH)", clause)
		}
		p.Changes = append(p.Changes, n)
	case "delay":
		rankStr, batchStr, ok := strings.Cut(val, "@")
		if !ok || !hasVal {
			return fmt.Errorf("faults: bad delay clause %q (want delay=RANK@BATCH)", clause)
		}
		rank, err1 := strconv.Atoi(rankStr)
		batch, err2 := strconv.Atoi(batchStr)
		if err1 != nil || err2 != nil || rank < 0 || batch < 0 {
			return fmt.Errorf("faults: bad delay clause %q (want delay=RANK@BATCH)", clause)
		}
		p.Delays = append(p.Delays, Delay{Origin: rank, Batch: batch})
	default:
		return fmt.Errorf("faults: unknown clause %q", clause)
	}
	return nil
}

// String renders the plan in canonical DSL form, round-trippable through
// Parse.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	crashes := append([]Crash(nil), p.Crashes...)
	sort.Slice(crashes, func(i, j int) bool {
		if crashes[i].Rank != crashes[j].Rank {
			return crashes[i].Rank < crashes[j].Rank
		}
		return crashes[i].Call < crashes[j].Call
	})
	for _, c := range crashes {
		parts = append(parts, fmt.Sprintf("crash=%d@%d", c.Rank, c.Call))
	}
	for _, t := range p.Truncs {
		if t.Rank < 0 {
			parts = append(parts, fmt.Sprintf("trunc=%g", t.Frac))
		} else {
			parts = append(parts, fmt.Sprintf("trunc=%g@%d", t.Frac, t.Rank))
		}
	}
	parts = append(parts, p.ScheduleAtoms()...)
	return strings.Join(parts, ",")
}

// ScheduleAtoms returns the plan's schedule clauses in canonical DSL form,
// one independently removable atom per entry — the unit the ddmin schedule
// minimizer (internal/explore) adds and removes. Crashes and truncations
// are structural faults, not schedule atoms.
func (p *Plan) ScheduleAtoms() []string {
	if p == nil {
		return nil
	}
	var atoms []string
	if p.Reorder {
		atoms = append(atoms, "reorder")
	}
	if p.Yield > 0 {
		atoms = append(atoms, fmt.Sprintf("yield=%d", p.Yield))
	}
	if len(p.Prio) > 0 {
		strs := make([]string, len(p.Prio))
		for i, n := range p.Prio {
			strs[i] = strconv.Itoa(n)
		}
		atoms = append(atoms, "prio="+strings.Join(strs, "."))
	}
	changes := append([]int(nil), p.Changes...)
	sort.Ints(changes)
	for _, c := range changes {
		atoms = append(atoms, fmt.Sprintf("chg=%d", c))
	}
	for _, d := range p.Delays {
		atoms = append(atoms, fmt.Sprintf("delay=%d@%d", d.Origin, d.Batch))
	}
	return atoms
}

// WithScheduleAtoms returns a copy of the plan whose schedule clauses are
// replaced by exactly the given atoms (as produced by ScheduleAtoms),
// keeping the seed and the structural faults. It is how the minimizer
// tests whether a subset of schedule decisions still reproduces a
// violation.
func (p *Plan) WithScheduleAtoms(atoms []string) (*Plan, error) {
	q := &Plan{}
	if p != nil {
		q.Seed = p.Seed
		q.Crashes = append([]Crash(nil), p.Crashes...)
		q.Truncs = append([]Trunc(nil), p.Truncs...)
	}
	for _, a := range atoms {
		if err := q.applyClause(a); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	return p != nil && (len(p.Crashes) > 0 || len(p.Truncs) > 0 || p.Reorder || p.Yield > 0 ||
		len(p.Prio) > 0 || len(p.Changes) > 0 || len(p.Delays) > 0)
}

// HasCrash reports whether any rank crash is planned.
func (p *Plan) HasCrash() bool { return p != nil && len(p.Crashes) > 0 }

// CrashAt returns the 1-based MPI call ordinal at which rank crashes, or
// (0, false) when the rank survives. With several clauses for one rank
// the earliest call wins.
func (p *Plan) CrashAt(rank int) (int, bool) {
	if p == nil {
		return 0, false
	}
	call := 0
	for _, c := range p.Crashes {
		if c.Rank == rank && (call == 0 || c.Call < call) {
			call = c.Call
		}
	}
	return call, call > 0
}

// TruncFor returns the byte fraction to keep of rank's trace, or
// (1, false) when the trace is untouched. Rank-specific clauses override
// all-rank clauses; among equally specific clauses the smallest fraction
// wins.
func (p *Plan) TruncFor(rank int) (float64, bool) {
	if p == nil {
		return 1, false
	}
	frac, specific, found := 1.0, false, false
	for _, t := range p.Truncs {
		switch {
		case t.Rank == rank && (!specific || t.Frac < frac):
			frac, specific, found = t.Frac, true, true
		case t.Rank < 0 && !specific && (!found || t.Frac < frac):
			frac, found = t.Frac, true
		}
	}
	return frac, found
}

// TruncateBytes cuts data to the leading frac of its length, simulating a
// trace file that stopped being written mid-stream.
func TruncateBytes(data []byte, frac float64) []byte {
	if frac >= 1 {
		return data
	}
	if frac <= 0 {
		return data[:0]
	}
	return data[:int(float64(len(data))*frac)]
}

// WithSeed returns a copy of the plan with a different seed, for soak
// iterations that vary the perturbation schedule while keeping the
// structural faults (crashes, truncations) fixed.
func (p *Plan) WithSeed(seed uint64) *Plan {
	if p == nil {
		return nil
	}
	q := *p
	q.Seed = seed
	return &q
}

// RNG is a splitmix64 generator: tiny, fast, and stable across releases
// (unlike math/rand, whose stream is not part of any compatibility
// promise). Fault injection must reproduce bit-for-bit from a seed.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Derive returns an independent generator keyed by the seed and the given
// labels — one stream per (rank, window, batch, ...) without any shared,
// order-dependent state.
func Derive(seed uint64, keys ...uint64) *RNG {
	r := &RNG{state: seed}
	for _, k := range keys {
		r.state ^= mix(k + 0x9e3779b97f4a7c15)
		r.Uint64()
	}
	return r
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next value of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}
