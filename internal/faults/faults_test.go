package faults

import (
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"seed=7",
		"seed=7,crash=1@120",
		"seed=7,crash=0@3,crash=1@120,trunc=0.5",
		"seed=2,trunc=0.25@2,reorder,yield=20",
		"seed=1,reorder",
		"seed=3,prio=1.0.2",
		"seed=4,chg=0,chg=5",
		"seed=5,delay=0@0,delay=2@7",
		"seed=6,reorder,yield=10,prio=2.1.0,chg=1,delay=1@3",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if q.String() != p.String() {
			t.Errorf("round trip diverged: %q vs %q", q.String(), p.String())
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || p != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", p, err)
	}
	if p.Active() {
		t.Error("nil plan must not be active")
	}
}

func TestParseDefaultsSeed(t *testing.T) {
	p, err := Parse("reorder")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1 {
		t.Errorf("default seed = %d, want 1", p.Seed)
	}
	if !p.Active() || p.HasCrash() {
		t.Errorf("Active=%v HasCrash=%v", p.Active(), p.HasCrash())
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"seed=x", "seed", "crash=1", "crash=@5", "crash=1@0", "crash=-1@5",
		"trunc=2", "trunc=-0.1", "trunc=0.5@x", "yield=101", "yield=-1",
		"reorder=1", "bogus=3", "wat",
		"prio=", "prio=1.x", "prio=-1", "chg=-2", "chg=x", "chg",
		"delay=1", "delay=@3", "delay=-1@2", "delay=0@-1",
	} {
		if p, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", s, p)
		}
	}
}

func TestCrashAt(t *testing.T) {
	p, _ := Parse("seed=1,crash=1@120,crash=1@40,crash=3@9")
	if call, ok := p.CrashAt(1); !ok || call != 40 {
		t.Errorf("CrashAt(1) = %d, %v; want 40, true (earliest wins)", call, ok)
	}
	if call, ok := p.CrashAt(3); !ok || call != 9 {
		t.Errorf("CrashAt(3) = %d, %v", call, ok)
	}
	if _, ok := p.CrashAt(0); ok {
		t.Error("rank 0 must survive")
	}
	if _, ok := (*Plan)(nil).CrashAt(0); ok {
		t.Error("nil plan must not crash anyone")
	}
}

func TestTruncFor(t *testing.T) {
	p, _ := Parse("seed=1,trunc=0.5,trunc=0.25@2")
	if f, ok := p.TruncFor(0); !ok || f != 0.5 {
		t.Errorf("TruncFor(0) = %g, %v; want 0.5, true", f, ok)
	}
	if f, ok := p.TruncFor(2); !ok || f != 0.25 {
		t.Errorf("TruncFor(2) = %g, %v; want 0.25 (specific overrides)", f, ok)
	}
	if _, ok := (*Plan)(nil).TruncFor(2); ok {
		t.Error("nil plan must not truncate")
	}
}

func TestTruncateBytes(t *testing.T) {
	data := []byte("0123456789")
	if got := TruncateBytes(data, 0.5); string(got) != "01234" {
		t.Errorf("TruncateBytes(0.5) = %q", got)
	}
	if got := TruncateBytes(data, 1.0); len(got) != 10 {
		t.Errorf("TruncateBytes(1.0) kept %d bytes", len(got))
	}
	if got := TruncateBytes(data, 0); len(got) != 0 {
		t.Errorf("TruncateBytes(0) kept %d bytes", len(got))
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds produced the same first value")
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Derived streams must depend on every key and be order-sensitive.
	a := Derive(7, 1, 2).Uint64()
	if a != Derive(7, 1, 2).Uint64() {
		t.Error("Derive not deterministic")
	}
	for _, other := range []*RNG{Derive(7, 2, 1), Derive(7, 1, 3), Derive(8, 1, 2), Derive(7, 1)} {
		if other.Uint64() == a {
			t.Error("derived streams collide")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 5 {
		t.Errorf("Intn(7) hit only %d distinct values in 200 draws", len(seen))
	}
}

func TestScheduleAtomsRoundTrip(t *testing.T) {
	p, err := Parse("seed=9,crash=1@5,reorder,yield=15,prio=1.0,chg=2,chg=0,delay=0@1,delay=1@0")
	if err != nil {
		t.Fatal(err)
	}
	atoms := p.ScheduleAtoms()
	want := []string{"reorder", "yield=15", "prio=1.0", "chg=0", "chg=2", "delay=0@1", "delay=1@0"}
	if len(atoms) != len(want) {
		t.Fatalf("ScheduleAtoms = %v, want %v", atoms, want)
	}
	for i := range want {
		if atoms[i] != want[i] {
			t.Fatalf("ScheduleAtoms = %v, want %v", atoms, want)
		}
	}
	// Rebuilding from all atoms reproduces the schedule; the structural
	// crash and the seed ride along untouched.
	q, err := p.WithScheduleAtoms(atoms)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != p.String() {
		t.Errorf("WithScheduleAtoms(all) = %q, want %q", q.String(), p.String())
	}
	// A subset drops exactly the removed clauses.
	q, err = p.WithScheduleAtoms([]string{"delay=1@0"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Reorder || q.Yield != 0 || q.Prio != nil || q.Changes != nil || len(q.Delays) != 1 {
		t.Errorf("subset rebuild kept extra clauses: %q", q.String())
	}
	if q.Seed != 9 || len(q.Crashes) != 1 {
		t.Errorf("subset rebuild lost seed or structural faults: %q", q.String())
	}
	// Empty subset: structural plan only.
	q, err = p.WithScheduleAtoms(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.String(); got != "seed=9,crash=1@5" {
		t.Errorf("WithScheduleAtoms(nil) = %q", got)
	}
}

func TestScheduleClausesActive(t *testing.T) {
	for _, s := range []string{"prio=1.0", "chg=0", "delay=0@0"} {
		p, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Active() {
			t.Errorf("Parse(%q).Active() = false, want true", s)
		}
	}
}

func TestWithSeed(t *testing.T) {
	p, _ := Parse("seed=1,crash=1@10,reorder")
	q := p.WithSeed(99)
	if q.Seed != 99 || !q.Reorder || len(q.Crashes) != 1 {
		t.Errorf("WithSeed lost fields: %+v", q)
	}
	if p.Seed != 1 {
		t.Error("WithSeed mutated the receiver")
	}
	if (*Plan)(nil).WithSeed(5) != nil {
		t.Error("nil plan WithSeed must stay nil")
	}
}
