package testutil

import (
	"testing"

	"repro/internal/trace"
)

func TestTraceBuilder(t *testing.T) {
	b := NewTraceBuilder(3)
	id := b.Add(1, trace.Event{Kind: trace.KindStore, Addr: 4, Size: 4})
	if id.Rank != 1 || id.Seq != 0 {
		t.Errorf("id = %+v", id)
	}
	ids := b.Barrier()
	if len(ids) != 3 || ids[1].Seq != 1 || ids[0].Seq != 0 {
		t.Errorf("barrier ids = %v", ids)
	}
	b.WinCreate(7, 0x100, 32)
	b.Fence(7)
	set := b.Set()
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.Ranks() != 3 {
		t.Errorf("ranks = %d", set.Ranks())
	}
	// Rank 1 has: store, barrier, wincreate, fence.
	kinds := []trace.Kind{trace.KindStore, trace.KindBarrier, trace.KindWinCreate, trace.KindWinFence}
	for i, k := range kinds {
		if set.Traces[1].Events[i].Kind != k {
			t.Errorf("event %d = %v, want %v", i, set.Traces[1].Events[i].Kind, k)
		}
	}
}

func TestTraceBuilderPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid built trace must panic at Set()")
		}
	}()
	b := NewTraceBuilder(1)
	b.Add(0, trace.Event{Kind: trace.KindInvalid})
	b.Set()
}
