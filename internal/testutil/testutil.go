// Package testutil provides helpers for building synthetic traces in
// analyzer tests, mirroring the hand-drawn execution timelines of the paper
// (e.g. Figure 3).
package testutil

import (
	"repro/internal/trace"
)

// TraceBuilder assembles a trace.Set event by event, stamping ranks and
// dense per-rank sequence numbers.
type TraceBuilder struct {
	set *trace.Set
}

// NewTraceBuilder returns a builder for n ranks.
func NewTraceBuilder(n int) *TraceBuilder {
	return &TraceBuilder{set: trace.NewSet(n)}
}

// Add appends ev to rank's trace, stamping Rank and Seq, and returns the
// event id.
func (b *TraceBuilder) Add(rank int32, ev trace.Event) trace.ID {
	t := b.set.Traces[rank]
	ev.Rank = rank
	ev.Seq = int64(len(t.Events))
	t.Events = append(t.Events, ev)
	return ev.ID()
}

// Barrier appends a world barrier event to every rank and returns the ids.
func (b *TraceBuilder) Barrier() []trace.ID {
	ids := make([]trace.ID, b.set.Ranks())
	for r := 0; r < b.set.Ranks(); r++ {
		ids[r] = b.Add(int32(r), trace.Event{Kind: trace.KindBarrier, Comm: 0})
	}
	return ids
}

// WinCreate appends a window-creation event to every rank for a window of
// size bytes at base (same base in every rank's address space, which is
// fine for tests) with displacement unit 1.
func (b *TraceBuilder) WinCreate(win int32, base, size uint64) {
	for r := 0; r < b.set.Ranks(); r++ {
		b.Add(int32(r), trace.Event{
			Kind: trace.KindWinCreate, Win: win, Comm: 0,
			WinBase: base, WinSize: size, DispUnit: 1,
		})
	}
}

// Fence appends a fence on win to every rank.
func (b *TraceBuilder) Fence(win int32) {
	for r := 0; r < b.set.Ranks(); r++ {
		b.Add(int32(r), trace.Event{Kind: trace.KindWinFence, Win: win, Comm: 0})
	}
}

// Set finalizes and returns the trace set.
func (b *TraceBuilder) Set() *trace.Set {
	if err := b.set.Validate(); err != nil {
		panic("testutil: invalid built trace: " + err.Error())
	}
	return b.set
}
