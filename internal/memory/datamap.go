package memory

import (
	"fmt"
	"sort"
	"strings"
)

// Segment is one contiguous piece of a data-map: Len bytes starting Disp
// bytes from the element origin (paper §IV-C-1c).
type Segment struct {
	Disp uint64
	Len  uint64
}

// DataMap describes the byte layout of one element of an MPI datatype as a
// sorted list of disjoint segments plus the type extent (the stride between
// consecutive elements when a count > 1 is used).
//
// MPI_INT is {Segments: [{0,4}], Extent: 4}. A derived type of two ints
// separated by an 8-byte gap is {Segments: [{0,4},{12,4}], Extent: 16}.
type DataMap struct {
	Segments []Segment
	Extent   uint64
}

// Contig returns the data-map of a contiguous type of n bytes.
func Contig(n uint64) DataMap {
	if n == 0 {
		return DataMap{}
	}
	return DataMap{Segments: []Segment{{Disp: 0, Len: n}}, Extent: n}
}

// Size returns the number of bytes actually touched by one element
// (the sum of segment lengths, not the extent).
func (dm DataMap) Size() uint64 {
	var n uint64
	for _, s := range dm.Segments {
		n += s.Len
	}
	return n
}

// Span returns the distance from the first touched byte to one past the
// last touched byte of a single element.
func (dm DataMap) Span() uint64 {
	if len(dm.Segments) == 0 {
		return 0
	}
	first := dm.Segments[0].Disp
	last := dm.Segments[len(dm.Segments)-1]
	return last.Disp + last.Len - first
}

// Normalize sorts segments by displacement and merges adjacent or
// overlapping ones, returning a canonical equivalent map.
func (dm DataMap) Normalize() DataMap {
	if len(dm.Segments) == 0 {
		return DataMap{Extent: dm.Extent}
	}
	segs := make([]Segment, len(dm.Segments))
	copy(segs, dm.Segments)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Disp < segs[j].Disp })
	out := segs[:1]
	for _, s := range segs[1:] {
		top := &out[len(out)-1]
		if s.Disp <= top.Disp+top.Len { // adjacent or overlapping
			end := s.Disp + s.Len
			if end > top.Disp+top.Len {
				top.Len = end - top.Disp
			}
			continue
		}
		out = append(out, s)
	}
	ext := dm.Extent
	if ext == 0 {
		ext = out[len(out)-1].Disp + out[len(out)-1].Len
	}
	return DataMap{Segments: out, Extent: ext}
}

// Tile instantiates count elements of the datatype at simulated address
// base and returns the touched byte intervals in ascending order.
// Intervals of adjacent elements are coalesced when contiguous.
func (dm DataMap) Tile(base uint64, count int) []Interval {
	if count <= 0 || len(dm.Segments) == 0 {
		return nil
	}
	out := make([]Interval, 0, count*len(dm.Segments))
	for e := 0; e < count; e++ {
		origin := base + uint64(e)*dm.Extent
		for _, s := range dm.Segments {
			iv := Iv(origin+s.Disp, s.Len)
			if n := len(out); n > 0 && out[n-1].Hi == iv.Lo {
				out[n-1].Hi = iv.Hi // coalesce
				continue
			}
			out = append(out, iv)
		}
	}
	return out
}

// TileBytes returns Size()*count, the bytes moved by a count-element access.
func (dm DataMap) TileBytes(count int) uint64 {
	if count <= 0 {
		return 0
	}
	return dm.Size() * uint64(count)
}

// Offsets returns, element by element, the flattened byte offsets (relative
// to the access base) touched by count elements, in transfer order. The
// transfer order of MPI pack/unpack is segment order within each element.
// The result has length TileBytes(count). Intended for small datatypes;
// the simulator uses it to move bytes between packed and typed layouts.
func (dm DataMap) Offsets(count int) []uint64 {
	out := make([]uint64, 0, dm.TileBytes(count))
	for e := 0; e < count; e++ {
		origin := uint64(e) * dm.Extent
		for _, s := range dm.Segments {
			for b := uint64(0); b < s.Len; b++ {
				out = append(out, origin+s.Disp+b)
			}
		}
	}
	return out
}

func (dm DataMap) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range dm.Segments {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%d,%d)", s.Disp, s.Len)
	}
	fmt.Fprintf(&b, "} ext=%d", dm.Extent)
	return b.String()
}

// TilesOverlap reports whether the byte sets of (a at baseA × countA) and
// (b at baseB × countB) intersect, and returns the first overlapping
// interval pair's intersection if so.
func TilesOverlap(a DataMap, baseA uint64, countA int, b DataMap, baseB uint64, countB int) (Interval, bool) {
	ivA := a.Tile(baseA, countA)
	ivB := b.Tile(baseB, countB)
	// Merge-scan the two sorted interval lists.
	i, j := 0, 0
	for i < len(ivA) && j < len(ivB) {
		if x, ok := ivA[i].Intersect(ivB[j]); ok {
			return x, true
		}
		if ivA[i].Hi <= ivB[j].Hi {
			i++
		} else {
			j++
		}
	}
	return Interval{}, false
}
