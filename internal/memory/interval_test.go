package memory

import (
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Iv(100, 10)
	if iv.Lo != 100 || iv.Hi != 110 {
		t.Fatalf("Iv(100,10) = %v", iv)
	}
	if iv.Len() != 10 {
		t.Errorf("Len = %d, want 10", iv.Len())
	}
	if iv.Empty() {
		t.Error("non-empty interval reported Empty")
	}
	if !(Interval{}).Empty() {
		t.Error("zero interval should be empty")
	}
	if (Interval{Lo: 5, Hi: 5}).Len() != 0 {
		t.Error("degenerate interval should have zero length")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Iv(0, 10), Iv(5, 10), true},
		{Iv(0, 10), Iv(10, 10), false}, // adjacent, half-open
		{Iv(0, 10), Iv(20, 10), false},
		{Iv(5, 1), Iv(5, 1), true},
		{Iv(0, 0), Iv(0, 10), false}, // empty never overlaps
		{Iv(3, 100), Iv(50, 1), true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	big := Iv(10, 100)
	if !big.Contains(Iv(10, 100)) {
		t.Error("interval should contain itself")
	}
	if !big.Contains(Iv(50, 10)) {
		t.Error("should contain inner interval")
	}
	if big.Contains(Iv(5, 10)) {
		t.Error("should not contain interval crossing the low edge")
	}
	if !big.Contains(Interval{}) {
		t.Error("everything contains the empty interval")
	}
	if !big.ContainsAddr(10) || big.ContainsAddr(110) {
		t.Error("ContainsAddr half-open bounds wrong")
	}
}

func TestIntervalIntersect(t *testing.T) {
	x, ok := Iv(0, 10).Intersect(Iv(5, 10))
	if !ok || x != Iv(5, 5) {
		t.Errorf("Intersect = %v,%v; want [5,10),true", x, ok)
	}
	if _, ok := Iv(0, 10).Intersect(Iv(10, 5)); ok {
		t.Error("adjacent intervals must not intersect")
	}
}

func TestIntervalOverlapEquivalentToIntersect(t *testing.T) {
	f := func(a, b uint32, la, lb uint8) bool {
		x := Iv(uint64(a), uint64(la))
		y := Iv(uint64(b), uint64(lb))
		_, ok := x.Intersect(y)
		return ok == x.Overlaps(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalSetAddAndQuery(t *testing.T) {
	var s IntervalSet
	s.Add(Iv(0, 10))
	s.Add(Iv(20, 10))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Overlaps(Iv(5, 1)) || !s.Overlaps(Iv(25, 100)) {
		t.Error("missing expected overlaps")
	}
	if s.Overlaps(Iv(10, 10)) {
		t.Error("gap [10,20) must not overlap")
	}
	// Bridge the gap; the set must coalesce to a single interval.
	s.Add(Iv(10, 10))
	if s.Len() != 1 {
		t.Fatalf("after bridging, Len = %d, want 1; set=%v", s.Len(), s.Intervals())
	}
	if got := s.Intervals()[0]; got != Iv(0, 30) {
		t.Errorf("coalesced = %v, want [0,30)", got)
	}
	if s.TotalBytes() != 30 {
		t.Errorf("TotalBytes = %d, want 30", s.TotalBytes())
	}
}

func TestIntervalSetAdjacentCoalesce(t *testing.T) {
	var s IntervalSet
	s.Add(Iv(0, 10))
	s.Add(Iv(10, 10)) // exactly adjacent
	if s.Len() != 1 {
		t.Fatalf("adjacent intervals should coalesce, got %v", s.Intervals())
	}
}

func TestIntervalSetFirstOverlap(t *testing.T) {
	var s IntervalSet
	s.Add(Iv(100, 50))
	s.Add(Iv(300, 50))
	got, ok := s.FirstOverlap(Iv(320, 5))
	if !ok || got != Iv(300, 50) {
		t.Errorf("FirstOverlap = %v,%v", got, ok)
	}
	if _, ok := s.FirstOverlap(Iv(200, 50)); ok {
		t.Error("unexpected overlap in gap")
	}
	if _, ok := s.FirstOverlap(Interval{}); ok {
		t.Error("empty query must not overlap")
	}
}

func TestIntervalSetReset(t *testing.T) {
	var s IntervalSet
	s.Add(Iv(1, 2))
	s.Reset()
	if s.Len() != 0 || s.Overlaps(Iv(0, 100)) {
		t.Error("Reset did not clear set")
	}
}

// Property: IntervalSet membership matches a naive byte-set model.
func TestIntervalSetMatchesModel(t *testing.T) {
	f := func(adds []uint16, query uint16) bool {
		var s IntervalSet
		model := map[uint64]bool{}
		for _, a := range adds {
			lo := uint64(a % 256)
			ln := uint64(a/256)%16 + 1
			s.Add(Iv(lo, ln))
			for i := lo; i < lo+ln; i++ {
				model[i] = true
			}
		}
		qlo := uint64(query % 256)
		qln := uint64(query/256)%16 + 1
		want := false
		for i := qlo; i < qlo+qln; i++ {
			if model[i] {
				want = true
				break
			}
		}
		if s.Overlaps(Iv(qlo, qln)) != want {
			return false
		}
		// Coalescing invariant: intervals sorted, disjoint, non-adjacent.
		prev := Interval{}
		for i, iv := range s.Intervals() {
			if iv.Empty() {
				return false
			}
			if i > 0 && iv.Lo <= prev.Hi {
				return false
			}
			prev = iv
		}
		var total uint64
		for k := range model {
			_ = k
			total++
		}
		return s.TotalBytes() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
