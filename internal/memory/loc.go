package memory

import (
	"runtime"
	"sync"
)

// Loc is a resolved source location.
type Loc struct {
	File string
	Line int
	Func string
}

var funcNameCache sync.Map // uintptr (pc) → string

// CallerLoc returns the source location skip frames above the caller.
// runtime.Caller is used for the file/line because its skip counting is
// inlining-aware; the (comparatively expensive) function-name symbolization
// is cached per program counter. Real instrumentation knows its source
// location statically at zero runtime cost; the cache keeps the simulated
// profiler's per-access cost within the same order as the access itself.
func CallerLoc(skip int) Loc {
	pc, file, line, ok := runtime.Caller(skip + 1)
	if !ok {
		return Loc{}
	}
	loc := Loc{File: file, Line: line}
	if v, ok := funcNameCache.Load(pc); ok {
		loc.Func = v.(string)
		return loc
	}
	frames := runtime.CallersFrames([]uintptr{pc})
	frame, _ := frames.Next()
	loc.Func = frame.Function
	funcNameCache.Store(pc, loc.Func)
	return loc
}
