package memory

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestContig(t *testing.T) {
	dm := Contig(4)
	if dm.Size() != 4 || dm.Extent != 4 || len(dm.Segments) != 1 {
		t.Fatalf("Contig(4) = %v", dm)
	}
	if Contig(0).Size() != 0 {
		t.Error("Contig(0) should be empty")
	}
}

func TestDataMapPaperExample(t *testing.T) {
	// Paper §IV-C-1c: two MPI_INTs separated by an 8-byte gap is
	// {(0,4),(12,4)}.
	dm := DataMap{Segments: []Segment{{0, 4}, {12, 4}}, Extent: 16}
	if dm.Size() != 8 {
		t.Errorf("Size = %d, want 8", dm.Size())
	}
	if dm.Span() != 16 {
		t.Errorf("Span = %d, want 16", dm.Span())
	}
	ivs := dm.Tile(1000, 2)
	// Element 1 starts at 1016, so element 0's (12,4) segment [1012,1016)
	// coalesces with element 1's (0,4) segment [1016,1020).
	want := []Interval{Iv(1000, 4), Iv(1012, 8), Iv(1028, 4)}
	if !reflect.DeepEqual(ivs, want) {
		t.Errorf("Tile = %v, want %v", ivs, want)
	}
}

func TestDataMapNormalize(t *testing.T) {
	dm := DataMap{Segments: []Segment{{8, 4}, {0, 4}, {4, 4}, {20, 2}}}
	n := dm.Normalize()
	want := []Segment{{0, 12}, {20, 2}}
	if !reflect.DeepEqual(n.Segments, want) {
		t.Errorf("Normalize = %v, want %v", n.Segments, want)
	}
	if n.Extent != 22 {
		t.Errorf("Extent defaulted to %d, want 22", n.Extent)
	}
	// Overlapping segments merge too.
	n2 := DataMap{Segments: []Segment{{0, 10}, {5, 10}}}.Normalize()
	if !reflect.DeepEqual(n2.Segments, []Segment{{0, 15}}) {
		t.Errorf("overlap merge = %v", n2.Segments)
	}
}

func TestDataMapTileCoalesces(t *testing.T) {
	// Contiguous elements tile into a single interval.
	ivs := Contig(8).Tile(0, 4)
	if len(ivs) != 1 || ivs[0] != Iv(0, 32) {
		t.Errorf("contig tile = %v", ivs)
	}
	// Extent > size leaves gaps.
	dm := DataMap{Segments: []Segment{{0, 4}}, Extent: 8}
	ivs = dm.Tile(0, 3)
	want := []Interval{Iv(0, 4), Iv(8, 4), Iv(16, 4)}
	if !reflect.DeepEqual(ivs, want) {
		t.Errorf("strided tile = %v, want %v", ivs, want)
	}
}

func TestDataMapOffsets(t *testing.T) {
	dm := DataMap{Segments: []Segment{{0, 2}, {4, 1}}, Extent: 8}
	got := dm.Offsets(2)
	want := []uint64{0, 1, 4, 8, 9, 12}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Offsets = %v, want %v", got, want)
	}
	if uint64(len(got)) != dm.TileBytes(2) {
		t.Error("Offsets length must equal TileBytes")
	}
}

func TestTilesOverlap(t *testing.T) {
	a := Contig(4)
	// Same base: must overlap.
	if _, ok := TilesOverlap(a, 100, 1, a, 100, 1); !ok {
		t.Error("identical tiles must overlap")
	}
	// Disjoint bases.
	if _, ok := TilesOverlap(a, 100, 1, a, 104, 1); ok {
		t.Error("adjacent tiles must not overlap")
	}
	// Interleaved strided types that never touch: {0,4} ext 8 vs {4,4} ext 8.
	x := DataMap{Segments: []Segment{{0, 4}}, Extent: 8}
	y := DataMap{Segments: []Segment{{4, 4}}, Extent: 8}
	if _, ok := TilesOverlap(x, 0, 10, y, 0, 10); ok {
		t.Error("interleaved disjoint tiles must not overlap")
	}
	// Shift y by 2 bytes: now they collide.
	if iv, ok := TilesOverlap(x, 0, 10, y, 2, 10); !ok || iv.Empty() {
		t.Error("shifted interleave must overlap")
	}
}

// Property: TilesOverlap agrees with a naive byte-set comparison.
func TestTilesOverlapMatchesModel(t *testing.T) {
	f := func(baseA, baseB uint8, extA, extB uint8, lenA, lenB uint8, cA, cB uint8) bool {
		a := DataMap{Segments: []Segment{{0, uint64(lenA%8) + 1}}, Extent: uint64(extA%8) + uint64(lenA%8) + 1}
		b := DataMap{Segments: []Segment{{0, uint64(lenB%8) + 1}}, Extent: uint64(extB%8) + uint64(lenB%8) + 1}
		countA, countB := int(cA%6)+1, int(cB%6)+1
		bytesOf := func(dm DataMap, base uint64, count int) map[uint64]bool {
			m := map[uint64]bool{}
			for _, off := range dm.Offsets(count) {
				m[base+off] = true
			}
			return m
		}
		ma := bytesOf(a, uint64(baseA), countA)
		mb := bytesOf(b, uint64(baseB), countB)
		want := false
		for k := range ma {
			if mb[k] {
				want = true
				break
			}
		}
		_, got := TilesOverlap(a, uint64(baseA), countA, b, uint64(baseB), countB)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: Tile covers exactly TileBytes bytes and intervals are sorted.
func TestTileInvariant(t *testing.T) {
	f := func(segs []uint16, count uint8) bool {
		if len(segs) == 0 {
			return true
		}
		if len(segs) > 4 {
			segs = segs[:4]
		}
		dm := DataMap{}
		for i, s := range segs {
			dm.Segments = append(dm.Segments, Segment{
				Disp: uint64(i*32) + uint64(s%16),
				Len:  uint64(s/16)%8 + 1,
			})
		}
		dm.Extent = dm.Span() + 8
		n := int(count%5) + 1
		ivs := dm.Tile(500, n)
		var total uint64
		var prev Interval
		for i, iv := range ivs {
			if iv.Empty() {
				return false
			}
			if i > 0 && iv.Lo < prev.Hi {
				return false
			}
			total += iv.Len()
			prev = iv
		}
		return total == dm.TileBytes(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
