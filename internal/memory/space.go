package memory

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// AccessKind distinguishes program loads from stores.
type AccessKind uint8

const (
	Load AccessKind = iota
	Store
)

func (k AccessKind) String() string {
	if k == Load {
		return "load"
	}
	return "store"
}

// Access describes one observed program load or store on a tracked buffer.
type Access struct {
	Kind AccessKind
	Addr uint64 // simulated address of the first byte
	Size uint64 // bytes accessed
	File string // source location of the access in the application
	Line int
	Func string // routine containing the access
}

// Interval returns the byte range touched by the access.
func (a Access) Interval() Interval { return Iv(a.Addr, a.Size) }

// Observer receives program loads/stores performed through a Buffer's
// accessor methods. Accesses are reported from the goroutine performing
// them; an Observer shared across buffers of one rank sees them in program
// order.
type Observer interface {
	ObserveAccess(b *Buffer, a Access)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(b *Buffer, a Access)

// ObserveAccess calls f(b, a).
func (f ObserverFunc) ObserveAccess(b *Buffer, a Access) { f(b, a) }

// AddressSpace allocates non-overlapping simulated address ranges for one
// rank. The zero value is not usable; create with NewAddressSpace.
type AddressSpace struct {
	mu   sync.Mutex
	next uint64
	bufs []*Buffer
}

// spaceBase leaves low addresses unused so that a zero address is never a
// valid buffer address, mirroring real processes where page zero is unmapped.
const spaceBase = 0x1000

// allocAlign rounds allocations so distinct buffers never share a
// cache-line-sized granule; it also makes addresses easier to read in traces.
const allocAlign = 64

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: spaceBase}
}

// Alloc carves a fresh buffer of size bytes out of the space. name is a
// diagnostic label (typically the variable name in the application).
func (as *AddressSpace) Alloc(size uint64, name string) *Buffer {
	as.mu.Lock()
	defer as.mu.Unlock()
	b := &Buffer{
		space: as,
		base:  as.next,
		data:  make([]byte, size),
		name:  name,
	}
	as.next += (size + allocAlign - 1) / allocAlign * allocAlign
	if size == 0 {
		as.next += allocAlign
	}
	as.bufs = append(as.bufs, b)
	return b
}

// FindBuffer returns the buffer containing the simulated address, if any.
func (as *AddressSpace) FindBuffer(addr uint64) (*Buffer, bool) {
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, b := range as.bufs {
		if b.Interval().ContainsAddr(addr) {
			return b, true
		}
	}
	return nil, false
}

// Buffer is a tracked allocation in a simulated address space. Accessor
// methods report loads and stores to the attached Observer; raw methods
// (ReadRaw, WriteRaw, UpdateRaw) are for the simulator runtime moving data
// at epoch close and are not reported — they are not program loads/stores.
//
// The data mutex exists because the MPI simulator completes one-sided
// operations from the *origin* rank's goroutine while the target rank may
// concurrently access the same buffer. That concurrency is the very race
// MC-Checker detects; the mutex keeps it from also being a Go data race
// without hiding it (interleaving between lock acquisitions stays
// arbitrary, so buggy programs still compute corrupted results).
type Buffer struct {
	space    *AddressSpace
	base     uint64
	mu       sync.Mutex // guards data
	data     []byte
	name     string
	observer Observer
}

// Name returns the diagnostic label given at allocation.
func (b *Buffer) Name() string { return b.name }

// Base returns the simulated address of the first byte.
func (b *Buffer) Base() uint64 { return b.base }

// Size returns the buffer length in bytes.
func (b *Buffer) Size() uint64 { return uint64(len(b.data)) }

// Interval returns the simulated address range occupied by the buffer.
func (b *Buffer) Interval() Interval { return Iv(b.base, uint64(len(b.data))) }

// Addr returns the simulated address of byte offset off.
func (b *Buffer) Addr(off uint64) uint64 { return b.base + off }

// SetObserver attaches (or with nil detaches) the load/store observer.
// It must not be called concurrently with accesses to the buffer.
func (b *Buffer) SetObserver(o Observer) { b.observer = o }

// Observer returns the currently attached observer, or nil.
func (b *Buffer) Observer() Observer { return b.observer }

// Bytes exposes the backing storage without tracking or locking. It is
// intended for single-goroutine tests and for read-only inspection after a
// run; concurrent contexts must use the raw methods instead.
func (b *Buffer) Bytes() []byte { return b.data }

// ReadRaw copies len(dst) bytes starting at off into dst under the data
// lock, without reporting an access.
func (b *Buffer) ReadRaw(off uint64, dst []byte) {
	b.check(off, uint64(len(dst)))
	b.mu.Lock()
	copy(dst, b.data[off:])
	b.mu.Unlock()
}

// WriteRaw copies src into the buffer at off under the data lock, without
// reporting an access.
func (b *Buffer) WriteRaw(off uint64, src []byte) {
	b.check(off, uint64(len(src)))
	b.mu.Lock()
	copy(b.data[off:], src)
	b.mu.Unlock()
}

// UpdateRaw applies fn to the byte window [off, off+size) under the data
// lock, without reporting an access. It is the read-modify-write primitive
// used by accumulate.
func (b *Buffer) UpdateRaw(off, size uint64, fn func(data []byte)) {
	b.check(off, size)
	b.mu.Lock()
	fn(b.data[off : off+size])
	b.mu.Unlock()
}

func (b *Buffer) check(off, size uint64) {
	if off+size > uint64(len(b.data)) || off+size < off {
		panic(fmt.Sprintf("memory: access [%d,%d) out of range of buffer %q (%d bytes)",
			off, off+size, b.name, len(b.data)))
	}
}

// observe reports an access; skip counts frames between the application
// call site and the accessor calling observe.
func (b *Buffer) observe(kind AccessKind, off, size uint64, skip int) {
	if b.observer == nil {
		return
	}
	loc := CallerLoc(skip + 1)
	b.observer.ObserveAccess(b, Access{
		Kind: kind, Addr: b.base + off, Size: size,
		File: loc.File, Line: loc.Line, Func: loc.Func,
	})
}

// LoadBytes copies size bytes starting at off into a fresh slice,
// reporting a load.
func (b *Buffer) LoadBytes(off, size uint64) []byte {
	b.check(off, size)
	b.observe(Load, off, size, 1)
	out := make([]byte, size)
	b.mu.Lock()
	copy(out, b.data[off:off+size])
	b.mu.Unlock()
	return out
}

// StoreBytes copies p into the buffer at off, reporting a store.
func (b *Buffer) StoreBytes(off uint64, p []byte) {
	b.check(off, uint64(len(p)))
	b.observe(Store, off, uint64(len(p)), 1)
	b.mu.Lock()
	copy(b.data[off:], p)
	b.mu.Unlock()
}

// Fill stores the byte v into every position of [off, off+size),
// reporting one store.
func (b *Buffer) Fill(off, size uint64, v byte) {
	b.check(off, size)
	b.observe(Store, off, size, 1)
	b.mu.Lock()
	for i := off; i < off+size; i++ {
		b.data[i] = v
	}
	b.mu.Unlock()
}

// Uint8At loads the byte at off.
func (b *Buffer) Uint8At(off uint64) byte {
	b.check(off, 1)
	b.observe(Load, off, 1, 1)
	b.mu.Lock()
	v := b.data[off]
	b.mu.Unlock()
	return v
}

// SetUint8 stores v at off.
func (b *Buffer) SetUint8(off uint64, v byte) {
	b.check(off, 1)
	b.observe(Store, off, 1, 1)
	b.mu.Lock()
	b.data[off] = v
	b.mu.Unlock()
}

// Int32At loads a little-endian int32 at off.
func (b *Buffer) Int32At(off uint64) int32 {
	b.check(off, 4)
	b.observe(Load, off, 4, 1)
	b.mu.Lock()
	v := binary.LittleEndian.Uint32(b.data[off:])
	b.mu.Unlock()
	return int32(v)
}

// SetInt32 stores a little-endian int32 at off.
func (b *Buffer) SetInt32(off uint64, v int32) {
	b.check(off, 4)
	b.observe(Store, off, 4, 1)
	b.mu.Lock()
	binary.LittleEndian.PutUint32(b.data[off:], uint32(v))
	b.mu.Unlock()
}

// Int64At loads a little-endian int64 at off.
func (b *Buffer) Int64At(off uint64) int64 {
	b.check(off, 8)
	b.observe(Load, off, 8, 1)
	b.mu.Lock()
	v := binary.LittleEndian.Uint64(b.data[off:])
	b.mu.Unlock()
	return int64(v)
}

// SetInt64 stores a little-endian int64 at off.
func (b *Buffer) SetInt64(off uint64, v int64) {
	b.check(off, 8)
	b.observe(Store, off, 8, 1)
	b.mu.Lock()
	binary.LittleEndian.PutUint64(b.data[off:], uint64(v))
	b.mu.Unlock()
}

// Float64At loads a little-endian float64 at off.
func (b *Buffer) Float64At(off uint64) float64 {
	b.check(off, 8)
	b.observe(Load, off, 8, 1)
	b.mu.Lock()
	v := binary.LittleEndian.Uint64(b.data[off:])
	b.mu.Unlock()
	return math.Float64frombits(v)
}

// SetFloat64 stores a little-endian float64 at off.
func (b *Buffer) SetFloat64(off uint64, v float64) {
	b.check(off, 8)
	b.observe(Store, off, 8, 1)
	b.mu.Lock()
	binary.LittleEndian.PutUint64(b.data[off:], math.Float64bits(v))
	b.mu.Unlock()
}

// Float64SliceAt loads n consecutive float64 values starting at off,
// reporting a single load of 8n bytes (compilers vectorize; the paper's
// profiler likewise logs one event per instrumented access site execution).
func (b *Buffer) Float64SliceAt(off uint64, n int) []float64 {
	size := uint64(n) * 8
	b.check(off, size)
	b.observe(Load, off, size, 1)
	out := make([]float64, n)
	b.mu.Lock()
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b.data[off+uint64(i)*8:]))
	}
	b.mu.Unlock()
	return out
}

// SetFloat64Slice stores vs consecutively starting at off, reporting a
// single store of 8·len(vs) bytes.
func (b *Buffer) SetFloat64Slice(off uint64, vs []float64) {
	size := uint64(len(vs)) * 8
	b.check(off, size)
	b.observe(Store, off, size, 1)
	b.mu.Lock()
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b.data[off+uint64(i)*8:], math.Float64bits(v))
	}
	b.mu.Unlock()
}

func (b *Buffer) String() string {
	return fmt.Sprintf("%s%s", b.name, b.Interval())
}
