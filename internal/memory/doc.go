// Package memory provides the simulated process address space used by the
// MPI simulator and the checker.
//
// Real MC-Checker reasons about native virtual addresses captured by
// LLVM-instrumented loads and stores. This reproduction gives every
// simulated rank its own AddressSpace from which Buffers are allocated;
// each Buffer occupies a unique, stable interval of simulated addresses, so
// overlap reasoning in the analyzer works exactly as it does on native
// addresses.
//
// The package also implements the analyzer's data-map representation of MPI
// datatypes (paper §IV-C-1c): a DataMap is a sorted list of
// (displacement, length) segments describing the bytes touched by one
// element of a datatype, plus the type extent used when tiling multiple
// elements.
//
// Buffers are "tracked": loads and stores performed through the accessor
// methods are reported to an Observer when one is attached. This is the
// moral equivalent of the paper's selective instrumentation — the profiler
// attaches observers only to buffers that the ST-Analyzer report marks
// relevant.
package memory
