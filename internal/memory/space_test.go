package memory

import (
	"strings"
	"testing"
)

func TestAddressSpaceAllocDisjoint(t *testing.T) {
	as := NewAddressSpace()
	a := as.Alloc(100, "a")
	b := as.Alloc(1, "b")
	c := as.Alloc(0, "c")
	d := as.Alloc(64, "d")
	bufs := []*Buffer{a, b, c, d}
	for i := range bufs {
		for j := i + 1; j < len(bufs); j++ {
			if bufs[i].Interval().Overlaps(bufs[j].Interval()) {
				t.Errorf("buffers %q and %q overlap: %v %v",
					bufs[i].Name(), bufs[j].Name(), bufs[i].Interval(), bufs[j].Interval())
			}
		}
	}
	if a.Base() < spaceBase {
		t.Errorf("first buffer below space base: %#x", a.Base())
	}
	if a.Base()%allocAlign != 0 || d.Base()%allocAlign != 0 {
		t.Error("buffers not aligned")
	}
}

func TestFindBuffer(t *testing.T) {
	as := NewAddressSpace()
	a := as.Alloc(10, "a")
	b := as.Alloc(10, "b")
	if got, ok := as.FindBuffer(a.Addr(5)); !ok || got != a {
		t.Error("FindBuffer missed buffer a")
	}
	if got, ok := as.FindBuffer(b.Addr(0)); !ok || got != b {
		t.Error("FindBuffer missed buffer b")
	}
	if _, ok := as.FindBuffer(a.Addr(10) + 1); ok && a.Addr(11) < b.Base() {
		t.Error("FindBuffer matched padding gap")
	}
	if _, ok := as.FindBuffer(0); ok {
		t.Error("address 0 must not be mapped")
	}
}

func TestBufferTypedAccessors(t *testing.T) {
	as := NewAddressSpace()
	b := as.Alloc(64, "buf")
	b.SetInt32(0, -42)
	if got := b.Int32At(0); got != -42 {
		t.Errorf("Int32 roundtrip = %d", got)
	}
	b.SetInt64(8, 1<<40)
	if got := b.Int64At(8); got != 1<<40 {
		t.Errorf("Int64 roundtrip = %d", got)
	}
	b.SetFloat64(16, 3.5)
	if got := b.Float64At(16); got != 3.5 {
		t.Errorf("Float64 roundtrip = %g", got)
	}
	b.SetUint8(24, 0xAB)
	if got := b.Uint8At(24); got != 0xAB {
		t.Errorf("Uint8 roundtrip = %#x", got)
	}
	b.SetFloat64Slice(32, []float64{1, 2, 3})
	if got := b.Float64SliceAt(32, 3); got[0] != 1 || got[2] != 3 {
		t.Errorf("Float64Slice roundtrip = %v", got)
	}
	b.StoreBytes(56, []byte{9, 8})
	if got := b.LoadBytes(56, 2); got[0] != 9 || got[1] != 8 {
		t.Errorf("bytes roundtrip = %v", got)
	}
}

func TestBufferFill(t *testing.T) {
	as := NewAddressSpace()
	b := as.Alloc(8, "f")
	b.Fill(2, 4, 0xFF)
	raw := b.Bytes()
	want := []byte{0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0}
	for i := range want {
		if raw[i] != want[i] {
			t.Fatalf("Fill result %v, want %v", raw, want)
		}
	}
}

func TestBufferObserverReportsAccesses(t *testing.T) {
	as := NewAddressSpace()
	b := as.Alloc(64, "w")
	var got []Access
	b.SetObserver(ObserverFunc(func(buf *Buffer, a Access) {
		if buf != b {
			t.Error("observer got wrong buffer")
		}
		got = append(got, a)
	}))
	b.SetInt32(4, 7)
	_ = b.Int32At(4)
	_ = b.LoadBytes(0, 8)
	if len(got) != 3 {
		t.Fatalf("observed %d accesses, want 3", len(got))
	}
	if got[0].Kind != Store || got[0].Addr != b.Addr(4) || got[0].Size != 4 {
		t.Errorf("store access = %+v", got[0])
	}
	if got[1].Kind != Load || got[1].Size != 4 {
		t.Errorf("load access = %+v", got[1])
	}
	if got[2].Size != 8 || got[2].Addr != b.Base() {
		t.Errorf("bytes load access = %+v", got[2])
	}
	for _, a := range got {
		if !strings.HasSuffix(a.File, "space_test.go") || a.Line == 0 {
			t.Errorf("source location not captured: %+v", a)
		}
	}
	// Detach: no further observations.
	b.SetObserver(nil)
	b.SetInt32(0, 1)
	if len(got) != 3 {
		t.Error("detached observer still observed")
	}
}

func TestBufferOutOfRangePanics(t *testing.T) {
	as := NewAddressSpace()
	b := as.Alloc(4, "small")
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	b.SetInt64(0, 1) // 8 bytes into a 4-byte buffer
}

func TestAccessInterval(t *testing.T) {
	a := Access{Kind: Store, Addr: 100, Size: 8}
	if a.Interval() != Iv(100, 8) {
		t.Errorf("Access.Interval = %v", a.Interval())
	}
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("AccessKind.String wrong")
	}
}

func TestBufferUntrackedBytesNotObserved(t *testing.T) {
	as := NewAddressSpace()
	b := as.Alloc(8, "raw")
	n := 0
	b.SetObserver(ObserverFunc(func(*Buffer, Access) { n++ }))
	copy(b.Bytes(), []byte{1, 2, 3}) // runtime copy: untracked
	if n != 0 {
		t.Error("Bytes() access must not be observed")
	}
}
