package memory

import (
	"fmt"
	"sort"
)

// Interval is a half-open byte range [Lo, Hi) in a simulated address space.
// The zero Interval is empty.
type Interval struct {
	Lo, Hi uint64
}

// Iv constructs the interval [lo, lo+size).
func Iv(lo, size uint64) Interval { return Interval{Lo: lo, Hi: lo + size} }

// Empty reports whether the interval contains no bytes.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Len returns the number of bytes in the interval.
func (iv Interval) Len() uint64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Overlaps reports whether iv and o share at least one byte.
func (iv Interval) Overlaps(o Interval) bool {
	return !iv.Empty() && !o.Empty() && iv.Lo < o.Hi && o.Lo < iv.Hi
}

// Contains reports whether o is entirely inside iv. The empty interval is
// contained in everything.
func (iv Interval) Contains(o Interval) bool {
	if o.Empty() {
		return true
	}
	return iv.Lo <= o.Lo && o.Hi <= iv.Hi
}

// ContainsAddr reports whether the single byte at addr lies inside iv.
func (iv Interval) ContainsAddr(addr uint64) bool {
	return iv.Lo <= addr && addr < iv.Hi
}

// Intersect returns the overlap of iv and o and whether it is non-empty.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	r := Interval{Lo: max64(iv.Lo, o.Lo), Hi: min64(iv.Hi, o.Hi)}
	if r.Empty() {
		return Interval{}, false
	}
	return r, true
}

func (iv Interval) String() string {
	return fmt.Sprintf("[0x%x,0x%x)", iv.Lo, iv.Hi)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// IntervalSet is a collection of intervals supporting overlap queries.
// It keeps intervals sorted and coalesced, so both Add and Overlaps run in
// O(log n) amortized. The zero value is an empty set ready to use.
type IntervalSet struct {
	ivs []Interval // sorted by Lo, pairwise disjoint, non-adjacent
}

// Add inserts iv into the set, merging with neighbours as needed.
func (s *IntervalSet) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Find the first existing interval whose Hi >= iv.Lo: everything from
	// there that starts at or before iv.Hi merges with iv.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= iv.Lo })
	j := i
	for j < len(s.ivs) && s.ivs[j].Lo <= iv.Hi {
		iv.Lo = min64(iv.Lo, s.ivs[j].Lo)
		iv.Hi = max64(iv.Hi, s.ivs[j].Hi)
		j++
	}
	s.ivs = append(s.ivs[:i], append([]Interval{iv}, s.ivs[j:]...)...)
}

// Overlaps reports whether iv shares a byte with any interval in the set.
func (s *IntervalSet) Overlaps(iv Interval) bool {
	_, ok := s.FirstOverlap(iv)
	return ok
}

// FirstOverlap returns the first stored interval overlapping iv.
func (s *IntervalSet) FirstOverlap(iv Interval) (Interval, bool) {
	if iv.Empty() {
		return Interval{}, false
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi > iv.Lo })
	if i < len(s.ivs) && s.ivs[i].Lo < iv.Hi {
		return s.ivs[i], true
	}
	return Interval{}, false
}

// Len returns the number of disjoint stored intervals.
func (s *IntervalSet) Len() int { return len(s.ivs) }

// TotalBytes returns the number of distinct bytes covered by the set.
func (s *IntervalSet) TotalBytes() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Intervals returns a copy of the coalesced intervals in ascending order.
func (s *IntervalSet) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Reset empties the set, retaining capacity.
func (s *IntervalSet) Reset() { s.ivs = s.ivs[:0] }
