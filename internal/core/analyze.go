// Package core implements DN-Analyzer, the offline analysis component of
// MC-Checker (paper §III and §IV-C): it preprocesses the per-rank traces,
// matches synchronization calls, builds the happens-before DAG with its
// concurrent regions, extracts one-sided access epochs, and detects memory
// consistency errors by checking unordered operations against the MPI-2.2
// compatibility rules (Table I).
//
// The two error classes of the paper map to the two detectors:
//
//   - within-epoch conflicts at a single process (Figures 1 and 2a), found
//     by examining the nonblocking operations and local accesses inside
//     each epoch;
//   - conflicts across processes (Figures 2b–2d), found per concurrent
//     region by recording all one-sided operations per target window and
//     then checking local operations of the target processes against them —
//     time linear in the number of operations rather than quadratic.
//
// Detected violations carry the paper's diagnostic information: the pair of
// conflicting operations with file, routine, and line of each.
package core

import (
	"repro/internal/dag"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/trace"
)

// PhaseSpanName is the span family under which the pipeline phases record
// their wall time, one sample per phase label: model, match, dag, epochs,
// detect_intra, detect_cross.
const PhaseSpanName = "mcchecker_phase_seconds"

// Analyze runs the full MC-Checker offline pipeline on a trace set.
func Analyze(set *trace.Set) (*Report, error) {
	return AnalyzeWith(set, DefaultOptions())
}

// AnalyzeWith runs the pipeline with explicit detector options. With
// opts.Obs set, each phase (model build, sync matching, DAG construction,
// epoch extraction, detection) records a wall-time span — the per-phase
// breakdown of the paper's evaluation (§VII).
//
// opts.Workers also parallelizes the per-rank front-end phases (trace
// validation, model build, epoch extraction); sync matching and DAG
// construction are inherently cross-rank and stay serial. The report is
// byte-identical for every worker count.
//
// opts.Ctx, when non-nil, cancels the pipeline cooperatively at phase
// boundaries (and, inside the detectors, between epochs/regions): a
// serving watchdog can reclaim a stuck analysis without killing the
// process.
func AnalyzeWith(set *trace.Set, opts Options) (*Report, error) {
	reg := opts.Obs
	tr := opts.Trace
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	reg.Gauge("mcchecker_pipeline_front_end_workers").Set(int64(workers))
	sp := reg.StartSpan(PhaseSpanName, "phase", "model")
	psp := tr.Start("pipeline", "main", "model")
	m, err := model.BuildWorkersTraced(set, workers, tr)
	psp.End()
	sp.End()
	if err != nil {
		return nil, err
	}
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	sp = reg.StartSpan(PhaseSpanName, "phase", "match")
	psp = tr.Start("pipeline", "main", "match")
	ms, err := match.Run(m)
	psp.End()
	sp.End()
	if err != nil {
		return nil, err
	}
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	sp = reg.StartSpan(PhaseSpanName, "phase", "dag")
	psp = tr.Start("pipeline", "main", "dag")
	d, err := dag.Build(m, ms)
	psp.End()
	sp.End()
	if err != nil {
		return nil, err
	}
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	sp = reg.StartSpan(PhaseSpanName, "phase", "epochs")
	psp = tr.Start("pipeline", "main", "epochs")
	epochs, opEpoch, err := ExtractEpochsWorkersTraced(m, workers, tr)
	psp.End()
	sp.End()
	if err != nil {
		return nil, err
	}
	return NewAnalyzer(m, d, epochs, opEpoch, opts).Run()
}
