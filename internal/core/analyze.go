// Package core implements DN-Analyzer, the offline analysis component of
// MC-Checker (paper §III and §IV-C): it preprocesses the per-rank traces,
// matches synchronization calls, builds the happens-before DAG with its
// concurrent regions, extracts one-sided access epochs, and detects memory
// consistency errors by checking unordered operations against the MPI-2.2
// compatibility rules (Table I).
//
// The two error classes of the paper map to the two detectors:
//
//   - within-epoch conflicts at a single process (Figures 1 and 2a), found
//     by examining the nonblocking operations and local accesses inside
//     each epoch;
//   - conflicts across processes (Figures 2b–2d), found per concurrent
//     region by recording all one-sided operations per target window and
//     then checking local operations of the target processes against them —
//     time linear in the number of operations rather than quadratic.
//
// Detected violations carry the paper's diagnostic information: the pair of
// conflicting operations with file, routine, and line of each.
package core

import (
	"repro/internal/dag"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/trace"
)

// Analyze runs the full MC-Checker offline pipeline on a trace set.
func Analyze(set *trace.Set) (*Report, error) {
	return AnalyzeWith(set, DefaultOptions())
}

// AnalyzeWith runs the pipeline with explicit detector options.
func AnalyzeWith(set *trace.Set, opts Options) (*Report, error) {
	m, err := model.Build(set)
	if err != nil {
		return nil, err
	}
	ms, err := match.Run(m)
	if err != nil {
		return nil, err
	}
	d, err := dag.Build(m, ms)
	if err != nil {
		return nil, err
	}
	epochs, opEpoch, err := ExtractEpochs(m)
	if err != nil {
		return nil, err
	}
	return NewAnalyzer(m, d, epochs, opEpoch, opts).Run()
}
