package core

import (
	"strings"
	"testing"

	"repro/internal/testutil"
	"repro/internal/trace"
)

func TestHints(t *testing.T) {
	cases := []struct {
		name  string
		build func() *testutil.TraceBuilder
		want  string
	}{
		{
			name: "get-origin",
			build: func() *testutil.TraceBuilder {
				b := testutil.NewTraceBuilder(2)
				b.WinCreate(1, 0x1000, 64)
				b.Fence(1)
				b.Add(0, getEv(1, 0x500, 0, 1))
				b.Add(0, loc(trace.Event{Kind: trace.KindLoad, Addr: 0x500, Size: 4}, 2))
				b.Fence(1)
				return b
			},
			want: "close the epoch",
		},
		{
			name: "put-origin",
			build: func() *testutil.TraceBuilder {
				b := testutil.NewTraceBuilder(2)
				b.WinCreate(1, 0x1000, 64)
				b.Fence(1)
				b.Add(0, putEv(1, 0x500, 0, 1))
				b.Add(0, loc(trace.Event{Kind: trace.KindStore, Addr: 0x500, Size: 4}, 2))
				b.Fence(1)
				return b
			},
			want: "delay reuse of the origin buffer",
		},
		{
			name: "store-rule",
			build: func() *testutil.TraceBuilder {
				b := testutil.NewTraceBuilder(2)
				b.WinCreate(1, 0x1000, 64)
				b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared}, 1))
				b.Add(0, putEv(1, 0x500, 0, 2))
				b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1}, 3))
				b.Add(1, loc(trace.Event{Kind: trace.KindStore, Addr: 0x1020, Size: 4}, 4))
				return b
			},
			want: "interprocess synchronization",
		},
		{
			name: "cross-rma",
			build: func() *testutil.TraceBuilder {
				b := testutil.NewTraceBuilder(3)
				b.WinCreate(1, 0x1000, 64)
				b.Fence(1)
				b.Add(0, putEv(1, 0x500, 0, 1))
				b.Add(2, putEv(1, 0x700, 0, 2))
				b.Fence(1)
				return b
			},
			want: "order the conflicting epochs",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := analyze(t, c.build())
			if len(rep.Violations) == 0 {
				t.Fatal("no violation")
			}
			v := rep.Violations[0]
			if !strings.Contains(v.Hint(), c.want) {
				t.Errorf("hint = %q, want substring %q (rule %q)", v.Hint(), c.want, v.Rule)
			}
			if !strings.Contains(v.String(), "hint: ") {
				t.Error("String() must include the hint")
			}
		})
	}
}
