package core

import (
	"strings"
	"testing"

	"repro/internal/memory"
	"repro/internal/trace"
)

func sigViolation(rankA, rankB int32, win int32, region int, overlap memory.Interval) *Violation {
	return &Violation{
		Severity: SevError,
		Class:    AcrossProcesses,
		Rule:     "local store conflicts with a remote Put",
		A: trace.Event{Kind: trace.KindStore, Rank: rankA,
			File: "/tmp/src/app.go", Line: 42, Func: "repro/internal/apps.body"},
		B: trace.Event{Kind: trace.KindPut, Rank: rankB,
			File: "/tmp/src/app.go", Line: 17, Func: "repro/internal/apps.body"},
		Win: win, Region: region, Overlap: overlap, Count: 1,
	}
}

// TestSignatureRankStable is the contract the schedule explorer depends
// on: permuting rank IDs (and everything else placement- or
// schedule-dependent — window IDs, region indexes, overlap offsets,
// counts) must not change the signature.
func TestSignatureRankStable(t *testing.T) {
	base := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	perms := []*Violation{
		sigViolation(1, 0, 3, 2, memory.Iv(100, 8)),  // ranks swapped
		sigViolation(5, 63, 3, 2, memory.Iv(100, 8)), // ranks relabeled
		sigViolation(0, 1, 7, 2, memory.Iv(100, 8)),  // different window id
		sigViolation(0, 1, 3, 9, memory.Iv(100, 8)),  // different region
		sigViolation(0, 1, 3, 2, memory.Iv(512, 4)),  // different overlap
	}
	for i, v := range perms {
		if v.Signature() != base.Signature() {
			t.Errorf("perm %d: signature changed:\n  base %s\n  perm %s", i, base.Signature(), v.Signature())
		}
	}
	if base.Signature() == "" || !strings.Contains(base.Signature(), "app.go:42") {
		t.Errorf("signature %q should carry the call sites", base.Signature())
	}
}

// TestSignatureSwappedOperandsStable: the (A, B) operand order is an
// artifact of detection order; the signature must not depend on it.
func TestSignatureSwappedOperandsStable(t *testing.T) {
	v := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	w := &Violation{Severity: v.Severity, Class: v.Class, Rule: v.Rule,
		A: v.B, B: v.A, Win: v.Win, Region: v.Region, Overlap: v.Overlap}
	if v.Signature() != w.Signature() {
		t.Errorf("operand swap changed signature:\n  %s\n  %s", v.Signature(), w.Signature())
	}
}

// TestSignatureSeparatesDistinctBugs: different rule, site, severity, or
// class must produce different signatures.
func TestSignatureSeparatesDistinctBugs(t *testing.T) {
	base := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	diffRule := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	diffRule.Rule = "another rule"
	diffSite := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	diffSite.A.Line = 43
	diffSev := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	diffSev.Severity = SevWarning
	diffClass := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	diffClass.Class = WithinEpoch
	for i, v := range []*Violation{diffRule, diffSite, diffSev, diffClass} {
		if v.Signature() == base.Signature() {
			t.Errorf("variant %d: distinct bug collided with base signature %q", i, base.Signature())
		}
	}
}

// TestSortBySignatureDeterministic: shuffled insertion orders converge to
// one output order.
func TestSortBySignatureDeterministic(t *testing.T) {
	mk := func() []*Violation {
		a := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
		b := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
		b.Rule = "zz later rule"
		c := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
		c.Severity = SevWarning
		d := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
		d.Class = WithinEpoch
		return []*Violation{a, b, c, d}
	}
	r1 := &Report{Violations: mk()}
	vs := mk()
	r2 := &Report{Violations: []*Violation{vs[3], vs[1], vs[0], vs[2]}}
	r1.Sort()
	r2.Sort()
	for i := range r1.Violations {
		if r1.Violations[i].Signature() != r2.Violations[i].Signature() {
			t.Fatalf("position %d: %s vs %s", i, r1.Violations[i].Signature(), r2.Violations[i].Signature())
		}
	}
}
