package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/memory"
	"repro/internal/trace"
)

func sigViolation(rankA, rankB int32, win int32, region int, overlap memory.Interval) *Violation {
	return &Violation{
		Severity: SevError,
		Class:    AcrossProcesses,
		Rule:     "local store conflicts with a remote Put",
		A: trace.Event{Kind: trace.KindStore, Rank: rankA,
			File: "/tmp/src/app.go", Line: 42, Func: "repro/internal/apps.body"},
		B: trace.Event{Kind: trace.KindPut, Rank: rankB,
			File: "/tmp/src/app.go", Line: 17, Func: "repro/internal/apps.body"},
		Win: win, Region: region, Overlap: overlap, Count: 1,
	}
}

// TestSignatureRankStable is the contract the schedule explorer depends
// on: permuting rank IDs (and everything else placement- or
// schedule-dependent — window IDs, region indexes, overlap offsets,
// counts) must not change the signature.
func TestSignatureRankStable(t *testing.T) {
	base := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	perms := []*Violation{
		sigViolation(1, 0, 3, 2, memory.Iv(100, 8)),  // ranks swapped
		sigViolation(5, 63, 3, 2, memory.Iv(100, 8)), // ranks relabeled
		sigViolation(0, 1, 7, 2, memory.Iv(100, 8)),  // different window id
		sigViolation(0, 1, 3, 9, memory.Iv(100, 8)),  // different region
		sigViolation(0, 1, 3, 2, memory.Iv(512, 4)),  // different overlap
	}
	for i, v := range perms {
		if v.Signature() != base.Signature() {
			t.Errorf("perm %d: signature changed:\n  base %s\n  perm %s", i, base.Signature(), v.Signature())
		}
	}
	if base.Signature() == "" || !strings.Contains(base.Signature(), "app.go:42") {
		t.Errorf("signature %q should carry the call sites", base.Signature())
	}
}

// TestSignatureSwappedOperandsStable: the (A, B) operand order is an
// artifact of detection order; the signature must not depend on it.
func TestSignatureSwappedOperandsStable(t *testing.T) {
	v := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	w := &Violation{Severity: v.Severity, Class: v.Class, Rule: v.Rule,
		A: v.B, B: v.A, Win: v.Win, Region: v.Region, Overlap: v.Overlap}
	if v.Signature() != w.Signature() {
		t.Errorf("operand swap changed signature:\n  %s\n  %s", v.Signature(), w.Signature())
	}
}

// TestSignatureSeparatesDistinctBugs: different rule, site, severity, or
// class must produce different signatures.
func TestSignatureSeparatesDistinctBugs(t *testing.T) {
	base := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	diffRule := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	diffRule.Rule = "another rule"
	diffSite := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	diffSite.A.Line = 43
	diffSev := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	diffSev.Severity = SevWarning
	diffClass := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	diffClass.Class = WithinEpoch
	for i, v := range []*Violation{diffRule, diffSite, diffSev, diffClass} {
		if v.Signature() == base.Signature() {
			t.Errorf("variant %d: distinct bug collided with base signature %q", i, base.Signature())
		}
	}
}

// referenceKey and referenceSignature are the original fmt.Sprintf
// renderings that the cached strings.Builder paths replaced. The cached
// values must stay byte-identical to them: signatures are persisted in
// explorer findings and golden reports.
func referenceKey(v *Violation) string {
	a := fmt.Sprintf("%s@%s#%s", v.A.Kind, v.A.Loc(), v.A.Func)
	b := fmt.Sprintf("%s@%s#%s", v.B.Kind, v.B.Loc(), v.B.Func)
	if b < a {
		a, b = b, a
	}
	return fmt.Sprintf("%s|%s|%s|%d", a, b, v.Rule, v.Win)
}

func referenceSignature(v *Violation) string {
	a := fmt.Sprintf("%s@%s#%s", v.A.Kind, v.A.Loc(), shortFunc(v.A.Func))
	b := fmt.Sprintf("%s@%s#%s", v.B.Kind, v.B.Loc(), shortFunc(v.B.Func))
	if b < a {
		a, b = b, a
	}
	win := "nowin"
	if v.Win != 0 || v.Class == AcrossProcesses {
		win = "win"
	}
	return fmt.Sprintf("%s|%s|%s|%s|%s|%s", v.Severity, v.Class, v.Rule, a, b, win)
}

// TestSignatureMatchesSprintfReference pins the cached identity strings
// to the historical fmt.Sprintf formats across the tricky shapes: empty
// file (Loc "?"), empty func, path-qualified func names, warning
// severity, both classes, zero and nonzero windows.
func TestSignatureMatchesSprintfReference(t *testing.T) {
	cases := []*Violation{
		sigViolation(0, 1, 3, 2, memory.Iv(100, 8)),
		sigViolation(5, 2, 0, 0, memory.Interval{}),
		{
			Severity: SevWarning, Class: WithinEpoch,
			Rule: "Put and Get to overlapping target regions within one epoch",
			A:    trace.Event{Kind: trace.KindPut}, // no file, no func
			B:    trace.Event{Kind: trace.KindGet, File: "x.go", Line: 1, Func: "f"},
			Win:  0,
		},
		{
			Severity: SevError, Class: AcrossProcesses,
			Rule: "rule",
			A:    trace.Event{Kind: trace.KindStore, File: "/deep/a/b/c.go", Line: 999, Func: "pkg/sub.fn"},
			B:    trace.Event{Kind: trace.KindAccumulate, File: "c.go", Line: 999, Func: "fn"},
			Win:  -7,
		},
	}
	for i, v := range cases {
		if got, want := v.key(), referenceKey(v); got != want {
			t.Errorf("case %d key:\n got %q\nwant %q", i, got, want)
		}
		if got, want := v.Signature(), referenceSignature(v); got != want {
			t.Errorf("case %d signature:\n got %q\nwant %q", i, got, want)
		}
		// Cached: a second call returns the same string.
		if v.Signature() != referenceSignature(v) || v.key() != referenceKey(v) {
			t.Errorf("case %d: cached value differs from first computation", i)
		}
	}
}

// BenchmarkSignature measures the first (cache-filling) identity
// computation — the cost every deduplicated violation pays once.
func BenchmarkSignature(b *testing.B) {
	template := *sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := template
		if v.Signature() == "" {
			b.Fatal("empty signature")
		}
	}
}

// BenchmarkViolationKey measures the dedup-key computation the same way.
func BenchmarkViolationKey(b *testing.B) {
	template := *sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := template
		if v.key() == "" {
			b.Fatal("empty key")
		}
	}
}

// TestSortBySignatureDeterministic: shuffled insertion orders converge to
// one output order.
func TestSortBySignatureDeterministic(t *testing.T) {
	mk := func() []*Violation {
		a := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
		b := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
		b.Rule = "zz later rule"
		c := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
		c.Severity = SevWarning
		d := sigViolation(0, 1, 3, 2, memory.Iv(100, 8))
		d.Class = WithinEpoch
		return []*Violation{a, b, c, d}
	}
	r1 := &Report{Violations: mk()}
	vs := mk()
	r2 := &Report{Violations: []*Violation{vs[3], vs[1], vs[0], vs[2]}}
	r1.Sort()
	r2.Sort()
	for i := range r1.Violations {
		if r1.Violations[i].Signature() != r2.Violations[i].Signature() {
			t.Fatalf("position %d: %s vs %s", i, r1.Violations[i].Signature(), r2.Violations[i].Signature())
		}
	}
}
