package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Parallel cross-process analysis must produce exactly the serial result,
// in the same order, on both clean and buggy programs.
func TestParallelAnalysisEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, bug := range []int{-1, 1} {
			g := &progGen{rng: rand.New(rand.NewSource(seed)), ranks: 4, rounds: 12, bug: bug, bugTyp: int(seed) % 3}
			sink := trace.NewMemorySink()
			pr := profiler.New(sink, nil)
			if err := mpi.Run(g.ranks, mpi.Options{Hook: pr}, g.body()); err != nil {
				t.Fatal(err)
			}
			set := sink.Set()
			serial, err := AnalyzeWith(set, Options{IntraEpoch: true, CrossProcess: true})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := AnalyzeWith(set, Options{IntraEpoch: true, CrossProcess: true, Workers: runtime.NumCPU()})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(serial) != fmt.Sprint(parallel) {
				t.Errorf("seed %d bug %d: parallel differs from serial:\nserial:\n%s\nparallel:\n%s",
					seed, bug, serial, parallel)
			}
		}
	}
}

func TestParallelAnalysisOnBugSuiteTrace(t *testing.T) {
	// The lockopts trace has many regions and real violations; counts must
	// fold identically.
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	body := lockoptsLike()
	if err := mpi.Run(8, mpi.Options{Hook: pr}, body); err != nil {
		t.Fatal(err)
	}
	set := sink.Set()
	serial, err := AnalyzeWith(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Workers = 4
	par, err := AnalyzeWith(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(serial) != fmt.Sprint(par) {
		t.Errorf("parallel differs:\n%s\nvs\n%s", serial, par)
	}
	if len(serial.Errors()) == 0 {
		t.Error("scenario should contain errors")
	}
}

// lockoptsLike repeats a racy lock/put pattern across many barrier-split
// regions.
func lockoptsLike() func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		p.Barrier(p.CommWorld())
		for i := 0; i < 6; i++ {
			if p.Rank() != 0 {
				src := p.Alloc(8, "src")
				w.Lock(mpi.LockShared, 0)
				w.Put(src, 0, 1, mpi.Int64, 0, 0, 1, mpi.Int64)
				w.Unlock(0)
			} else {
				win.SetInt64(0, int64(i))
			}
			p.Barrier(p.CommWorld())
		}
		w.Free()
		return nil
	}
}
