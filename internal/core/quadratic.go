package core

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/trace"
)

// QuadraticCrossProcess is the straightforward cross-process detector the
// paper describes and rejects in §IV-C-4: "DN-Analyzer examining each pair
// of operations in a concurrent region against the compatibility table.
// Unfortunately, the time complexity is combinatorial with respect to the
// total number of operations within one concurrent region."
//
// It reports the same conflicts as Analyzer's linear detector (same rules,
// same deduplication) and exists as the ablation baseline for the
// linear-vs-quadratic benchmark.
func QuadraticCrossProcess(m *model.Model, d *dag.DAG) (*Report, error) {
	epochs, opEpoch, err := ExtractEpochs(m)
	if err != nil {
		return nil, err
	}
	a := NewAnalyzer(m, d, epochs, opEpoch, Options{})
	a.report.EventsAnalyzed = m.Set.TotalEvents()
	regions := d.Regions()
	a.report.Regions = len(regions)
	for _, rg := range regions {
		if err := a.quadraticRegion(rg); err != nil {
			return nil, err
		}
	}
	a.report.Sort()
	return a.report, nil
}

// site is one memory operation occurrence considered by the all-pairs scan.
type site struct {
	ev       *trace.Event
	isTarget bool // true: RMA target-window side; false: local access or RMA origin side
	cls      Op   // access class of this side
	fp       model.Footprint
	epoch    *Epoch
	// storeRule is true for genuine local stores (the no-overlap rule
	// applies), not for Get origin-buffer writes (paper §IV-C-4).
	storeRule bool
}

func (a *Analyzer) quadraticRegion(rg dag.Region) error {
	var sites []site
	for r := 0; r < a.m.Set.Ranks(); r++ {
		t := a.m.Set.Traces[r]
		lo, hi := rg.Span(int32(r))
		for seq := lo; seq < hi; seq++ {
			ev := &t.Events[seq]
			switch {
			case ev.Kind.IsRMAComm():
				target, err := a.m.TargetFootprint(ev)
				if err != nil {
					return err
				}
				cls, _ := OpOf(ev.Kind)
				sites = append(sites, site{ev: ev, isTarget: true, cls: cls, fp: target, epoch: a.opEpoch[ev.ID()]})
				origin, err := a.m.OriginFootprint(ev)
				if err != nil {
					return err
				}
				sites = append(sites, site{ev: ev, cls: originClass(ev.Kind), fp: origin, epoch: a.opEpoch[ev.ID()]})
				if ev.ResultCount > 0 {
					result, err := a.m.ResultFootprint(ev)
					if err != nil {
						return err
					}
					sites = append(sites, site{ev: ev, cls: OpStore, fp: result, epoch: a.opEpoch[ev.ID()]})
				}
			case ev.Kind.IsLocalAccess():
				cls := OpLoad
				if ev.Kind == trace.KindStore {
					cls = OpStore
				}
				sites = append(sites, site{ev: ev, cls: cls, fp: model.AccessFootprint(ev), storeRule: cls == OpStore})
			default:
				if cls, ok := a.messageBufferClass(ev); ok {
					fp, err := a.m.OriginFootprint(ev)
					if err != nil {
						return err
					}
					sites = append(sites, site{ev: ev, cls: cls, fp: fp})
				}
			}
		}
	}

	// All pairs — the combinatorial scan.
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			a.checkSitePair(rg, &sites[i], &sites[j])
		}
	}
	return nil
}

func (a *Analyzer) checkSitePair(rg dag.Region, x, y *site) {
	if x.ev.Rank == y.ev.Rank {
		return // same-process pairs belong to the intra-epoch detector
	}
	// Order so that target sites come first for uniform handling.
	if !x.isTarget && y.isTarget {
		x, y = y, x
	}
	if !x.isTarget {
		return // local×local never conflicts across processes (only window buffers at targets can race)
	}
	if !a.d.Concurrent(x.ev.ID(), y.ev.ID()) {
		return
	}

	if y.isTarget {
		// RMA target × RMA target: same window, same target process.
		if x.ev.Win != y.ev.Win || x.fp.Rank != y.fp.Rank {
			return
		}
		iv, overlap := x.fp.Overlaps(y.fp)
		if !overlap {
			return
		}
		if EffectiveCompat(x.ev, y.ev) == Both {
			return
		}
		sx := storedOp{ev: x.ev, target: x.fp, epoch: x.epoch}
		sy := storedOp{ev: y.ev, target: y.fp, epoch: y.epoch}
		a.addCross(&collector{report: a.report, vindex: a.vindex}, rg, x.epoch, y.epoch, &Violation{
			Severity: a.rmaPairSeverity(&sx, &sy),
			Class:    AcrossProcesses,
			Rule: fmt.Sprintf("concurrent %s and %s from different processes overlap in the target window",
				x.ev.Kind, y.ev.Kind),
			A: *x.ev, B: *y.ev, Win: x.ev.Win, Overlap: iv, Region: rg.Index,
		})
		return
	}

	// RMA target × local side: the local side must be at the target
	// process and inside the same window.
	if y.fp.Rank != x.fp.Rank {
		return
	}
	inWindow := false
	for _, iv := range y.fp.Intervals {
		if wi, ok := a.m.WindowAt(y.fp.Rank, iv); ok && wi.ID == x.ev.Win {
			inWindow = true
			break
		}
	}
	if !inWindow {
		return
	}
	opCls, _ := OpOf(x.ev.Kind)
	cell := Table(opCls, y.cls)
	var overlapIv memory.Interval
	conflict := false
	switch cell {
	case Both:
		return
	case NonOverlap:
		overlapIv, conflict = y.fp.Overlaps(x.fp)
	case Error:
		if y.storeRule {
			conflict = true
			overlapIv, _ = y.fp.Overlaps(x.fp)
		} else {
			overlapIv, conflict = y.fp.Overlaps(x.fp)
		}
	}
	if !conflict {
		return
	}
	rule := fmt.Sprintf("local %s at the target process conflicts with a concurrent remote %s",
		y.cls, x.ev.Kind)
	if cell == Error && overlapIv.Empty() {
		rule = fmt.Sprintf("local %s to window %d while a concurrent remote %s updates the window (erroneous even without overlap)",
			y.cls, x.ev.Win, x.ev.Kind)
	}
	sx := storedOp{ev: x.ev, target: x.fp, epoch: x.epoch}
	a.addCross(&collector{report: a.report, vindex: a.vindex}, rg, x.epoch, y.epoch, &Violation{
		Severity: a.localPairSeverity(&sx),
		Class:    AcrossProcesses,
		Rule:     rule,
		A:        *x.ev, B: *y.ev, Win: x.ev.Win, Overlap: overlapIv, Region: rg.Index,
	})
}
