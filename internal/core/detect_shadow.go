package core

// The shadow cross-process engine: the same detection semantics as
// checkRegion (detect.go), restated over internal/shadow's shadow-memory
// store so the per-vector cost drops from O(ops²) pairwise scans to
// interval-keyed cell lookups plus vector-clock binary searches
// (FastTrack, Flanagan & Freund, PLDI 2009, transposed to MC-Checker's
// epoch model). The contract is byte-identical reports — every
// violation, dedup count, representative instance, and witness chain
// must match the pairwise engine exactly; EngineDifferential and the
// differential test sweep enforce it.
//
// How the semantics map onto the store:
//
//   - group classification replaces the per-pair guards. Stored
//     accesses are grouped by (origin rank, operation class) where a
//     class interns (Kind, AccOp, TargetType) — exactly the fields
//     EffectiveCompat and Table read — so "same rank" and
//     "compatibility BOTH" skip whole groups once per query instead of
//     once per pair;
//   - the DAG Concurrent() calls become the store's concurrent-range
//     binary searches over segment clocks (dag.ClockRef);
//   - byte-overlap guards become shadow-cell membership: a query only
//     walks the cells its footprint touches, and a cell interval is a
//     subset of every member's footprint, so touching one proves
//     overlap. The MPI-2.2 no-overlap store rule (Error × local store)
//     maps to ModeAll, walking the group's full concurrent range;
//   - the store emits matches in vector insertion order, which keeps
//     the first recorded instance of every dedup key — and therefore
//     the surviving representative fields and witness — identical to
//     the pairwise scan.
import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/shadow"
	"repro/internal/trace"
)

// opClassKey interns the event fields that all group-level decisions
// (EffectiveCompat, OpOf/Table) are pure functions of.
type opClassKey struct {
	kind       trace.Kind
	accOp      trace.AccOp
	targetType int32
}

// localRuleKey caches the step-2 rule strings per (local class, remote
// kind); the no-overlap variant additionally names the window (window
// IDs start at 0, so the variant needs its own flag, not a sentinel).
type localRuleKey struct {
	cls       Op
	kind      trace.Kind
	win       int32
	noOverlap bool
}

// shadowRegion is the per-region state of the shadow engine: the store,
// the stored-op payload arena, and the interning tables (operation
// classes, access sites, rule strings) that keep the emit path free of
// fmt.Sprintf calls.
type shadowRegion struct {
	a  *Analyzer
	st *shadow.Store

	ops    []storedOp      // arena: Access.Payload indexes this
	opSite []shadow.SiteID // site of each stored op, parallel to ops

	depot   *shadow.Depot
	siteOps []string // rendered operand (operandString short=false) per SiteID

	classIdx map[opClassKey]int32
	classRep []*trace.Event // representative event per class

	pairRules  map[[2]trace.Kind]string
	localRules map[localRuleKey]string
}

func newShadowRegion(a *Analyzer) *shadowRegion {
	depot := shadow.NewDepot()
	return &shadowRegion{
		a:          a,
		st:         shadow.NewStore(depot),
		depot:      depot,
		classIdx:   map[opClassKey]int32{},
		pairRules:  map[[2]trace.Kind]string{},
		localRules: map[localRuleKey]string{},
	}
}

// siteOf interns an event's access site, rendering its operand string
// (shared by dedup-key presetting and witness/report rendering) once.
func (sr *shadowRegion) siteOf(ev *trace.Event) shadow.SiteID {
	id, fresh := sr.depot.Intern(uint8(ev.Kind), ev.File, ev.Line, ev.Func)
	if fresh {
		sr.siteOps = append(sr.siteOps, operandString(ev, false))
	}
	return id
}

// classOf interns an event's operation class.
func (sr *shadowRegion) classOf(ev *trace.Event) int32 {
	k := opClassKey{kind: ev.Kind, accOp: ev.AccOp, targetType: ev.TargetType}
	if id, ok := sr.classIdx[k]; ok {
		return id
	}
	id := int32(len(sr.classRep))
	sr.classIdx[k] = id
	sr.classRep = append(sr.classRep, ev)
	return id
}

func (sr *shadowRegion) pairRule(prev, cur trace.Kind) string {
	k := [2]trace.Kind{prev, cur}
	if r, ok := sr.pairRules[k]; ok {
		return r
	}
	r := fmt.Sprintf("concurrent %s and %s from different processes overlap in the target window", prev, cur)
	sr.pairRules[k] = r
	return r
}

func (sr *shadowRegion) localRule(cls Op, kind trace.Kind, win int32, noOverlap bool) string {
	k := localRuleKey{cls: cls, kind: kind, noOverlap: noOverlap}
	if noOverlap {
		k.win = win
	}
	if r, ok := sr.localRules[k]; ok {
		return r
	}
	var r string
	if noOverlap {
		r = fmt.Sprintf("local %s to window %d while a concurrent remote %s updates the window (erroneous even without overlap)",
			cls, win, kind)
	} else {
		r = fmt.Sprintf("local %s at the target process conflicts with a concurrent remote %s", cls, kind)
	}
	sr.localRules[k] = r
	return r
}

// detectCrossProcessShadow is detectCrossProcess with the shadow engine
// per region; the parallelization and merge order are identical.
func (a *Analyzer) detectCrossProcessShadow() error {
	regions := a.d.Regions()
	a.report.Regions = len(regions)
	scope := func(i int) string { return fmt.Sprintf("region %d", i) }
	return a.parallelCollect(len(regions), "detect_cross", scope, func(i int, col *collector) error {
		return a.checkRegionShadow(regions[i], col)
	})
}

func (a *Analyzer) checkRegionShadow(rg dag.Region, col *collector) error {
	sr := newShadowRegion(a)

	// Step 1: remote one-sided operations. Each is checked against the
	// store (same check-then-insert discipline as the pairwise vector
	// scan, so an operation never matches itself or its successors).
	if err := sr.matchRMA(rg, col); err != nil {
		return err
	}

	// Step 2: local operations at each target process, via the walker
	// shared with the pairwise engine.
	return a.forEachLocalAccess(rg, func(ev *trace.Event, cls Op, fp model.Footprint, storeRule bool) error {
		sr.checkLocal(rg, ev, cls, fp, storeRule, col)
		return nil
	})
}

func (sr *shadowRegion) matchRMA(rg dag.Region, col *collector) error {
	a := sr.a
	for r := 0; r < a.m.Set.Ranks(); r++ {
		t := a.m.Set.Traces[r]
		lo, hi := rg.Span(int32(r))
		for seq := lo; seq < hi; seq++ {
			ev := &t.Events[seq]
			if !ev.Kind.IsRMAComm() {
				continue
			}
			target, err := a.m.TargetFootprint(ev)
			if err != nil {
				return err
			}
			id := ev.ID()
			key := shadow.VectorKey{Win: ev.Win, Target: target.Rank}
			cur := storedOp{ev: ev, target: target, epoch: a.opEpoch[id]}
			curSite := sr.siteOf(ev)
			clock := a.d.ClockRef(id)

			sr.st.Query(key, shadow.Query{Rank: ev.Rank, Seq: id.Seq, Clock: clock},
				target.Intervals,
				func(rank, class int32) shadow.Mode {
					if rank == ev.Rank {
						// Same-process pairs are the intra-epoch detector's job.
						return shadow.ModeSkip
					}
					if EffectiveCompat(sr.classRep[class], ev) == Both {
						return shadow.ModeSkip
					}
					return shadow.ModeOverlap
				},
				func(payload int32) {
					prev := &sr.ops[payload]
					iv, _ := target.Overlaps(prev.target)
					v := &Violation{
						Severity: a.rmaPairSeverity(prev, &cur),
						Class:    AcrossProcesses,
						Rule:     sr.pairRule(prev.ev.Kind, ev.Kind),
						A:        *prev.ev, B: *ev, Win: ev.Win, Overlap: iv, Region: rg.Index,
					}
					presetKey(v, sr.siteOps[sr.opSite[payload]], sr.siteOps[curSite])
					a.addCross(col, rg, prev.epoch, cur.epoch, v)
				})

			payload := int32(len(sr.ops))
			sr.ops = append(sr.ops, cur)
			sr.opSite = append(sr.opSite, curSite)
			sr.st.Insert(key, shadow.Access{
				Payload: payload, Rank: ev.Rank, Class: sr.classOf(ev), Site: curSite,
				Seq: id.Seq, Clock: clock, Target: target.Intervals,
			})
		}
	}
	return nil
}

// checkLocal is checkLocalAgainstVectors over the store: one query per
// (footprint interval → window) hit, probing with the full footprint —
// the pairwise scan's conflict test uses the whole footprint too, and
// its per-interval vector rescans (which multiply dedup counts) are
// reproduced by issuing one store query per hit.
func (sr *shadowRegion) checkLocal(rg dag.Region, ev *trace.Event, cls Op,
	fp model.Footprint, storeRule bool, col *collector) {
	a := sr.a
	id := ev.ID()
	evEpoch := a.opEpoch[id]
	q := shadow.Query{Rank: ev.Rank, Seq: id.Seq, Clock: a.d.ClockRef(id)}
	evSite := shadow.SiteID(-1)

	for _, iv := range fp.Intervals {
		wi, ok := a.m.WindowAt(fp.Rank, iv)
		if !ok {
			continue
		}
		sr.st.Query(shadow.VectorKey{Win: wi.ID, Target: fp.Rank}, q, fp.Intervals,
			func(rank, class int32) shadow.Mode {
				if rank == ev.Rank {
					return shadow.ModeSkip
				}
				opCls, _ := OpOf(sr.classRep[class].Kind)
				switch Table(opCls, cls) {
				case Both:
					return shadow.ModeSkip
				case Error:
					// Store vs Put/Acc: erroneous without overlap — but only
					// for true local stores, not Get origin-buffer writes.
					if storeRule {
						return shadow.ModeAll
					}
					return shadow.ModeOverlap
				default: // NonOverlap
					return shadow.ModeOverlap
				}
			},
			func(payload int32) {
				op := &sr.ops[payload]
				overlapIv, _ := fp.Overlaps(op.target)
				opCls, _ := OpOf(op.ev.Kind)
				noOverlap := Table(opCls, cls) == Error && overlapIv.Empty()
				if evSite < 0 {
					evSite = sr.siteOf(ev)
				}
				v := &Violation{
					Severity: a.localPairSeverity(op),
					Class:    AcrossProcesses,
					Rule:     sr.localRule(cls, op.ev.Kind, wi.ID, noOverlap),
					A:        *op.ev, B: *ev, Win: wi.ID, Overlap: overlapIv, Region: rg.Index,
				}
				presetKey(v, sr.siteOps[sr.opSite[payload]], sr.siteOps[evSite])
				a.addCross(col, rg, op.epoch, evEpoch, v)
			})
	}
}

// detectCrossDifferential runs the pairwise oracle and the shadow engine
// on private sub-analyzers, fails if their sorted cross-process reports
// differ in any violation, count, or rendered byte, and merges the
// shadow result into the main report.
func (a *Analyzer) detectCrossDifferential() error {
	a.report.Regions = len(a.d.Regions())
	run := func(engine Engine) (*Report, error) {
		opts := a.opts
		opts.Engine = engine
		if engine == EnginePairwise {
			// The oracle run is redundant work; keep it off the causal
			// timeline so span lanes reflect the production engine only.
			opts.Trace = nil
		}
		sub := NewAnalyzer(a.m, a.d, a.epochs, a.opEpoch, opts)
		var err error
		if engine == EnginePairwise {
			err = sub.detectCrossProcess()
		} else {
			err = sub.detectCrossProcessShadow()
		}
		if err != nil {
			return nil, err
		}
		sub.report.Sort()
		return sub.report, nil
	}
	pw, err := run(EnginePairwise)
	if err != nil {
		return err
	}
	sh, err := run(EngineShadow)
	if err != nil {
		return err
	}
	if err := diffCrossReports(pw, sh); err != nil {
		return err
	}
	for _, v := range sh.Violations {
		a.report.addCounted(a.vindex, v)
	}
	return nil
}

// diffCrossReports compares two sorted cross-process reports for byte
// identity: same violations, same dedup counts, same renderings.
func diffCrossReports(pw, sh *Report) error {
	if len(pw.Violations) != len(sh.Violations) {
		return fmt.Errorf("differential engine mismatch: pairwise reports %d violation(s), shadow %d",
			len(pw.Violations), len(sh.Violations))
	}
	for i := range pw.Violations {
		p, s := pw.Violations[i], sh.Violations[i]
		if p.key() != s.key() {
			return fmt.Errorf("differential engine mismatch at violation %d: pairwise key %q, shadow key %q",
				i, p.key(), s.key())
		}
		if p.Count != s.Count {
			return fmt.Errorf("differential engine mismatch at violation %d (%s): pairwise count %d, shadow count %d",
				i, p.key(), p.Count, s.Count)
		}
		if ps, ss := p.String(), s.String(); ps != ss {
			return fmt.Errorf("differential engine mismatch at violation %d: renderings differ\npairwise:\n%s\nshadow:\n%s",
				i, ps, ss)
		}
	}
	return nil
}
