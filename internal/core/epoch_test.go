package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func extract(t *testing.T, b *testutil.TraceBuilder) ([]*Epoch, map[trace.ID]*Epoch) {
	t.Helper()
	m, err := model.Build(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	epochs, opEpoch, err := ExtractEpochs(m)
	if err != nil {
		t.Fatal(err)
	}
	return epochs, opEpoch
}

func put(win, target int32) trace.Event {
	return trace.Event{Kind: trace.KindPut, Win: win, Target: target,
		OriginAddr: 0x100, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1}
}

func TestFenceEpochs(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	p1 := b.Add(0, put(1, 1))
	b.Fence(1)
	p2 := b.Add(0, put(1, 1))
	b.Fence(1)
	epochs, opEpoch := extract(t, b)

	// Rank 0 has 3 fence epochs (the last closed at trace end), ranks 1 has 3 empty ones.
	var rank0 []*Epoch
	for _, e := range epochs {
		if e.Rank == 0 && e.Kind == EpochFence {
			rank0 = append(rank0, e)
		}
	}
	if len(rank0) != 3 {
		t.Fatalf("rank 0 fence epochs = %d", len(rank0))
	}
	if opEpoch[p1] == opEpoch[p2] {
		t.Error("puts in different fence epochs share an epoch")
	}
	if len(opEpoch[p1].Ops) != 1 || opEpoch[p1].Ops[0] != p1 {
		t.Errorf("epoch ops = %v", opEpoch[p1].Ops)
	}
}

func TestLockEpochs(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared})
	pa := b.Add(0, put(1, 1))
	// Nested lock to a different target is legal.
	b.Add(0, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 2, Lock: trace.LockExclusive})
	pb := b.Add(0, put(1, 2))
	b.Add(0, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 2})
	b.Add(0, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1})
	epochs, opEpoch := extract(t, b)

	ea, eb := opEpoch[pa], opEpoch[pb]
	if ea == nil || eb == nil || ea == eb {
		t.Fatalf("lock epochs not separated: %v %v", ea, eb)
	}
	if ea.Kind != EpochLockShared || ea.Target != 1 {
		t.Errorf("epoch a = %v", ea)
	}
	if eb.Kind != EpochLockExclusive || eb.Target != 2 {
		t.Errorf("epoch b = %v", eb)
	}
	count := 0
	for _, e := range epochs {
		if e.Rank == 0 && (e.Kind == EpochLockShared || e.Kind == EpochLockExclusive) {
			count++
		}
	}
	if count != 2 {
		t.Errorf("lock epochs = %d", count)
	}
}

func TestPSCWEpochs(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinPost, Win: 1, Members: []int32{1}})
	b.Add(1, trace.Event{Kind: trace.KindWinStart, Win: 1, Members: []int32{0}})
	p := b.Add(1, put(1, 0))
	b.Add(1, trace.Event{Kind: trace.KindWinComplete, Win: 1})
	b.Add(0, trace.Event{Kind: trace.KindWinWait, Win: 1})
	_, opEpoch := extract(t, b)
	e := opEpoch[p]
	if e == nil || e.Kind != EpochPSCW || e.Rank != 1 {
		t.Fatalf("pscw epoch = %v", e)
	}
}

func TestEpochErrors(t *testing.T) {
	// RMA op with no epoch at all.
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, put(1, 1))
	m, err := model.Build(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExtractEpochs(m); err == nil {
		t.Error("op outside epoch must error")
	}

	// Unlock without lock.
	b = testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1})
	m, _ = model.Build(b.Set())
	if _, _, err := ExtractEpochs(m); err == nil {
		t.Error("unlock without lock must error")
	}

	// Double lock of the same target.
	b = testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared})
	b.Add(0, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared})
	m, _ = model.Build(b.Set())
	if _, _, err := ExtractEpochs(m); err == nil {
		t.Error("double lock must error")
	}
}

func TestTruncatedEpochClosedAtTraceEnd(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared})
	p := b.Add(0, put(1, 1))
	// No unlock: trace truncated (e.g. crashed run).
	_, opEpoch := extract(t, b)
	e := opEpoch[p]
	if e == nil {
		t.Fatal("truncated epoch lost its op")
	}
	if e.End != 3 { // trace length of rank 0
		t.Errorf("truncated epoch end = %d", e.End)
	}
}
