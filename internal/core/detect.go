package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/dag"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/trace"
)

// Engine selects the cross-process detection implementation. The contract
// between the engines is byte-identical reports: EngineShadow must produce
// exactly the violations, dedup counts, and witness traces of
// EnginePairwise, only faster — which is why the zero value is the shadow
// engine and EngineDifferential exists to enforce the contract at runtime.
type Engine uint8

const (
	// EngineShadow is the FastTrack-style shadow-memory engine
	// (detect_shadow.go): accesses are inserted into an interval-keyed
	// shadow map and matched via vector-clock binary searches instead of
	// pairwise vector scans. The default.
	EngineShadow Engine = iota
	// EnginePairwise is the original O(ops²)-per-vector reference
	// implementation (checkRegion), kept as the differential oracle.
	EnginePairwise
	// EngineDifferential runs both engines and fails the analysis if
	// their reports differ in any violation, count, or rendered byte.
	EngineDifferential
)

func (e Engine) String() string {
	switch e {
	case EngineShadow:
		return "shadow"
	case EnginePairwise:
		return "pairwise"
	case EngineDifferential:
		return "differential"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine converts a -engine flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "shadow", "":
		return EngineShadow, nil
	case "pairwise":
		return EnginePairwise, nil
	case "differential":
		return EngineDifferential, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want shadow, pairwise, or differential)", s)
}

// Options selects which detectors run; the defaults (via Analyze) run both.
// Disabling one reproduces the baselines the paper compares against:
// SyncChecker detects only within-epoch errors (§VII).
type Options struct {
	IntraEpoch   bool
	CrossProcess bool

	// Engine selects the cross-process detector implementation. The zero
	// value is EngineShadow — safe because every engine is required to
	// produce byte-identical reports (enforced by EngineDifferential and
	// the differential test sweep).
	Engine Engine

	// Workers parallelizes the cross-process detection across concurrent
	// regions (regions are independent by construction) — the
	// multithreaded analyzer the paper names as planned work (§VI: the
	// offline analyzer "is implemented as a single-threaded application
	// ... We plan to further improve it by using multithreaded
	// programming"). 0 or 1 analyzes serially; results are identical and
	// deterministically ordered either way.
	Workers int

	// Obs, when non-nil, receives per-phase wall-time spans and analysis
	// volume counters (events, regions, epochs). Nil disables the
	// accounting entirely.
	Obs *obs.Registry

	// Trace, when non-nil, records the pipeline's causal timeline: one
	// span per phase on the "pipeline" track and one span per unit of
	// work (rank decode, epoch check, region check) on the per-stage
	// tracks, with per-worker lanes. Nil disables span recording.
	Trace *tracing.Recorder

	// Ctx, when non-nil, cancels the analysis cooperatively: the
	// pipeline checks it between phases and between per-epoch /
	// per-region detection scopes, returning an error wrapping the
	// context's cause. This is how a serving watchdog reclaims a worker
	// from a stuck or oversized job. Nil never cancels.
	Ctx context.Context
}

// ctxErr reports the cancellation state of the analysis context; a nil
// Ctx never cancels.
func (o *Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	if err := o.Ctx.Err(); err != nil {
		return fmt.Errorf("analysis canceled: %w", err)
	}
	return nil
}

// DefaultOptions runs the full MC-Checker analysis with the shadow engine.
func DefaultOptions() Options {
	return Options{IntraEpoch: true, CrossProcess: true, Engine: EngineShadow}
}

// Analyzer runs DN-Analyzer's detection phase over a built model, matching
// and DAG (paper §IV-C-3 and §IV-C-4).
type Analyzer struct {
	m       *model.Model
	d       *dag.DAG
	epochs  []*Epoch
	opEpoch map[trace.ID]*Epoch
	opts    Options

	report *Report
	vindex map[string]*Violation
}

// NewAnalyzer assembles an analyzer from the pipeline pieces.
func NewAnalyzer(m *model.Model, d *dag.DAG, epochs []*Epoch, opEpoch map[trace.ID]*Epoch, opts Options) *Analyzer {
	return &Analyzer{
		m: m, d: d, epochs: epochs, opEpoch: opEpoch, opts: opts,
		report: &Report{}, vindex: map[string]*Violation{},
	}
}

// Run executes the enabled detectors and returns the report.
func (a *Analyzer) Run() (*Report, error) {
	reg := a.opts.Obs
	tr := a.opts.Trace
	a.report.EventsAnalyzed = a.m.Set.TotalEvents()
	if a.opts.IntraEpoch {
		sp := reg.StartSpan(PhaseSpanName, "phase", "detect_intra")
		psp := tr.Start("pipeline", "main", "detect_intra")
		err := a.detectIntraEpoch()
		psp.End()
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	if a.opts.CrossProcess {
		sp := reg.StartSpan(PhaseSpanName, "phase", "detect_cross")
		psp := tr.Start("pipeline", "main", "detect_cross")
		var err error
		switch a.opts.Engine {
		case EnginePairwise:
			err = a.detectCrossProcess()
		case EngineDifferential:
			err = a.detectCrossDifferential()
		default:
			err = a.detectCrossProcessShadow()
		}
		psp.End()
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	a.report.Sort()
	reg.Counter("mcchecker_analysis_events_total").Add(int64(a.report.EventsAnalyzed))
	reg.Counter("mcchecker_analysis_regions_total").Add(int64(a.report.Regions))
	reg.Counter("mcchecker_analysis_epochs_total").Add(int64(a.report.EpochsChecked))
	reg.Counter("mcchecker_analysis_violations_total").Add(int64(len(a.report.Violations)))
	return a.report, nil
}

// originClass returns how an RMA operation uses its origin buffer: Put and
// Accumulate read it (load-like), Get writes it (store-like).
func originClass(k trace.Kind) Op {
	if k == trace.KindGet {
		return OpStore
	}
	return OpLoad
}

// messageBufferClass classifies how a point-to-point or collective call
// uses the buffer logged in its origin fields, per the paper's rule that
// "the local operations include the local load/store and all MPI calls
// performed to a local buffer" (§IV-C-4). The trace records one buffer per
// call: the send side for sends and contributing collectives, the receive
// side for receives and Scatter, and the root-dependent single buffer for
// Bcast. Receive-side buffers of Gather/Allgather/Alltoall are not logged —
// a documented under-approximation shared with the paper's scope.
func (a *Analyzer) messageBufferClass(ev *trace.Event) (Op, bool) {
	if ev.OriginCount <= 0 {
		return 0, false
	}
	switch ev.Kind {
	case trace.KindSend, trace.KindIsend:
		return OpLoad, true
	case trace.KindRecv, trace.KindIrecv, trace.KindScatter:
		return OpStore, true
	case trace.KindReduce, trace.KindAllreduce, trace.KindGather,
		trace.KindAllgather, trace.KindAlltoall:
		return OpLoad, true
	case trace.KindBcast:
		ci, err := a.m.Comm(ev.Comm)
		if err != nil {
			return 0, false
		}
		root, err := ci.World(ev.Peer)
		if err != nil {
			return 0, false
		}
		if root == ev.Rank {
			return OpLoad, true
		}
		return OpStore, true
	}
	return 0, false
}

// detectIntraEpoch finds conflicts inside single epochs (paper §IV-C-3,
// error class 1; Figures 1 and 2a). Within an epoch, issued one-sided
// operations are unordered with everything that follows them up to the
// closing synchronization call, so:
//
//   - a local access overlapping the origin buffer of an issued Get
//     conflicts (the Get may complete at any time up to the close);
//   - a local store overlapping the origin buffer of an issued Put or
//     Accumulate conflicts (the transfer may read the buffer at any time);
//   - two issued operations conflict if their origin buffers overlap with
//     at least one writer, or if their target regions at the same target
//     process overlap incompatibly per Table I.
//
// Epochs are checked independently (each scan reads only its own rank's
// events), so with Options.Workers > 1 they are checked concurrently and
// merged in epoch order — the same order the serial loop produces.
func (a *Analyzer) detectIntraEpoch() error {
	a.report.EpochsChecked += len(a.epochs)
	scope := func(i int) string {
		e := a.epochs[i]
		return fmt.Sprintf("epoch %d (rank %d, %s)", i, e.Rank, e.Kind)
	}
	return a.parallelCollect(len(a.epochs), "detect_intra", scope, func(i int, col *collector) error {
		return a.checkEpoch(a.epochs[i], col)
	})
}

// localSide is one origin-process buffer an issued operation touches: the
// origin buffer (read by Put/Acc-family, written by Get) and, for fetching
// atomics, the result buffer (written at completion).
type localSide struct {
	fp    model.Footprint
	write bool
	role  string // "origin" or "result", for diagnostics
}

type issuedOp struct {
	ev     *trace.Event
	locals []localSide
	target model.Footprint
	tw     int32
	// localDone is set by Win_flush_local: the operation's local buffers
	// are complete, so later local accesses are ordered after them.
	localDone bool
}

func (a *Analyzer) localSidesOf(ev *trace.Event) ([]localSide, error) {
	origin, err := a.m.OriginFootprint(ev)
	if err != nil {
		return nil, err
	}
	sides := []localSide{{fp: origin, write: ev.Kind == trace.KindGet, role: "origin"}}
	if ev.ResultCount > 0 {
		result, err := a.m.ResultFootprint(ev)
		if err != nil {
			return nil, err
		}
		sides = append(sides, localSide{fp: result, write: true, role: "result"})
	}
	return sides, nil
}

// checkEpoch finds conflicts inside one epoch, reporting into col.
// Win_flush completes all pending operations to its target (removing them
// from consideration); Win_flush_local completes only their local buffers.
func (a *Analyzer) checkEpoch(e *Epoch, col *collector) error {
	t := a.m.Set.Traces[e.Rank]
	var ops []issuedOp
	opSet := make(map[trace.ID]bool, len(e.Ops))
	for _, id := range e.Ops {
		opSet[id] = true
	}
	flushTargetWorld := func(ev *trace.Event) (int32, bool, error) {
		if ev.Target < 0 {
			return 0, true, nil // flush_all
		}
		tw, err := lockTargetWorld(a.m, ev)
		return tw, false, err
	}

	for seq := e.Start + 1; seq < e.End && seq < int64(len(t.Events)); seq++ {
		ev := &t.Events[seq]
		switch {
		case ev.Kind == trace.KindWinFlush && ev.Win == e.Win:
			tw, all, err := flushTargetWorld(ev)
			if err != nil {
				return err
			}
			kept := ops[:0]
			for _, o := range ops {
				if !all && o.tw != tw {
					kept = append(kept, o)
				}
			}
			ops = kept
		case ev.Kind == trace.KindWinFlushLocal && ev.Win == e.Win:
			tw, all, err := flushTargetWorld(ev)
			if err != nil {
				return err
			}
			for i := range ops {
				if all || ops[i].tw == tw {
					ops[i].localDone = true
				}
			}
		case ev.Kind.IsLocalAccess():
			acc := model.AccessFootprint(ev)
			accWrite := ev.Kind == trace.KindStore
			for i := range ops {
				o := &ops[i]
				if o.localDone {
					continue
				}
				for _, side := range o.locals {
					iv, overlap := acc.Overlaps(side.fp)
					if !overlap || (!accWrite && !side.write) {
						continue
					}
					a.addIntra(col, e, &Violation{
						Severity: SevError,
						Class:    WithinEpoch,
						Rule: fmt.Sprintf("local %s overlaps the %s buffer of a pending %s in the same epoch",
							ev.Kind, side.role, o.ev.Kind),
						A: *o.ev, B: *ev, Win: e.Win, Overlap: iv,
					})
				}
			}
		case opSet[ev.ID()]:
			locals, err := a.localSidesOf(ev)
			if err != nil {
				return err
			}
			target, err := a.m.TargetFootprint(ev)
			if err != nil {
				return err
			}
			tw := target.Rank
			for i := range ops {
				o := &ops[i]
				// Local-side pairs: conflict when overlapping with at
				// least one writer, unless the older op's local buffers
				// were completed by a flush_local.
				if !o.localDone {
					for _, os := range o.locals {
						for _, ns := range locals {
							if !os.write && !ns.write {
								continue
							}
							if iv, ok := ns.fp.Overlaps(os.fp); ok {
								a.addIntra(col, e, &Violation{
									Severity: SevError,
									Class:    WithinEpoch,
									Rule: fmt.Sprintf("%s buffer of %s overlaps the %s buffer of %s within one epoch",
										ns.role, ev.Kind, os.role, o.ev.Kind),
									A: *o.ev, B: *ev, Win: e.Win, Overlap: iv,
								})
							}
						}
					}
				}
				// Target-target at the same target process.
				if o.tw == tw {
					if iv, ok := target.Overlaps(o.target); ok {
						if EffectiveCompat(o.ev, ev) != Both {
							a.addIntra(col, e, &Violation{
								Severity: SevError,
								Class:    WithinEpoch,
								Rule: fmt.Sprintf("%s and %s to overlapping target regions within one epoch",
									o.ev.Kind, ev.Kind),
								A: *o.ev, B: *ev, Win: e.Win, Overlap: iv,
							})
						}
					}
				}
			}
			ops = append(ops, issuedOp{ev: ev, locals: locals, target: target, tw: tw})
		}
	}
	return nil
}

// storedOp is one remote one-sided operation recorded in a window vector
// during cross-process detection (paper §IV-C-4).
type storedOp struct {
	ev     *trace.Event
	target model.Footprint
	epoch  *Epoch
}

// detectCrossProcess finds conflicts between processes (paper §IV-C-4,
// error class 2; Figures 2b–2d). For each concurrent region it records all
// one-sided operations per (window, target process) vector, checking each
// new operation against the stored ones, then checks every local operation
// (loads, stores, and RMA origin-buffer accesses) of each target process
// against the stored remote operations — the two-step linear-time approach
// of the paper, rather than examining every pair of operations in the
// region.
//
// Regions are sequentially ordered and independent, so with Options.Workers
// > 1 they are analyzed concurrently and the per-region results merged in
// region order, keeping the output deterministic.
func (a *Analyzer) detectCrossProcess() error {
	regions := a.d.Regions()
	a.report.Regions = len(regions)
	scope := func(i int) string { return fmt.Sprintf("region %d", i) }
	return a.parallelCollect(len(regions), "detect_cross", scope, func(i int, col *collector) error {
		return a.checkRegion(regions[i], col)
	})
}

// collector receives the violations of one analysis scope.
type collector struct {
	report *Report
	vindex map[string]*Violation
}

func (c *collector) add(v *Violation) { c.report.add(c.vindex, v) }

// parallelCollect runs check over n independent scopes (epochs, regions).
// With Workers <= 1 (or fewer than two scopes) the scopes share the
// analyzer's collector and run serially, failing fast. Otherwise each
// scope gets a private collector on a worker pool and the per-scope
// results merge into the report in scope index order via addCounted, so
// the violations, their dedup counts, and the first error reported are
// identical to the serial run. Each scope's check is recorded as a span
// on opts.Trace (track names the detector, lanes name the workers); the
// scope string is only built when tracing is on.
func (a *Analyzer) parallelCollect(n int, track string, scope func(i int) string,
	check func(i int, col *collector) error) error {
	tr := a.opts.Trace
	startSpan := func(worker, i int) *tracing.Span {
		if tr == nil {
			return nil
		}
		s := scope(i)
		return tr.Start(track, tr.Lane(fmt.Sprintf("worker %d", worker), s), s)
	}
	if a.opts.Workers <= 1 || n < 2 {
		col := &collector{report: a.report, vindex: a.vindex}
		for i := 0; i < n; i++ {
			if err := a.opts.ctxErr(); err != nil {
				return err
			}
			sp := startSpan(0, i)
			err := check(i, col)
			sp.End()
			if err != nil {
				return err
			}
		}
		return nil
	}

	type result struct {
		col *collector
		err error
	}
	results := make([]result, n)
	work := make(chan int)
	var wg sync.WaitGroup
	workers := a.opts.Workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				if err := a.opts.ctxErr(); err != nil {
					results[i] = result{col: &collector{report: &Report{}}, err: err}
					continue // keep draining so the feeder never blocks
				}
				col := &collector{report: &Report{}, vindex: map[string]*Violation{}}
				sp := startSpan(w, i)
				err := check(i, col)
				sp.End()
				results[i] = result{col: col, err: err}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	for _, res := range results {
		if res.err != nil {
			return res.err
		}
		for _, v := range res.col.report.Violations {
			a.report.addCounted(a.vindex, v)
		}
	}
	return nil
}

type winTarget struct {
	win int32
	tw  int32
}

func (a *Analyzer) checkRegion(rg dag.Region, col *collector) error {
	vectors := map[winTarget][]storedOp{}

	// Step 1: remote one-sided operations, checked pairwise per vector.
	for r := 0; r < a.m.Set.Ranks(); r++ {
		t := a.m.Set.Traces[r]
		lo, hi := rg.Span(int32(r))
		for seq := lo; seq < hi; seq++ {
			ev := &t.Events[seq]
			if !ev.Kind.IsRMAComm() {
				continue
			}
			target, err := a.m.TargetFootprint(ev)
			if err != nil {
				return err
			}
			key := winTarget{win: ev.Win, tw: target.Rank}
			cur := storedOp{ev: ev, target: target, epoch: a.opEpoch[ev.ID()]}
			for i := range vectors[key] {
				prev := &vectors[key][i]
				if prev.ev.Rank == ev.Rank {
					continue // same-process pairs are the intra-epoch detector's job
				}
				if !a.d.Concurrent(prev.ev.ID(), ev.ID()) {
					continue
				}
				iv, overlap := target.Overlaps(prev.target)
				if !overlap {
					continue
				}
				if EffectiveCompat(prev.ev, ev) == Both {
					continue
				}
				a.addCross(col, rg, prev.epoch, cur.epoch, &Violation{
					Severity: a.rmaPairSeverity(prev, &cur),
					Class:    AcrossProcesses,
					Rule: fmt.Sprintf("concurrent %s and %s from different processes overlap in the target window",
						prev.ev.Kind, ev.Kind),
					A: *prev.ev, B: *ev, Win: ev.Win, Overlap: iv, Region: rg.Index,
				})
			}
			vectors[key] = append(vectors[key], cur)
		}
	}

	// Step 2: local operations at each process against the stored remote
	// operations on that process's window buffers.
	return a.forEachLocalAccess(rg, func(ev *trace.Event, cls Op, fp model.Footprint, storeRuleApplies bool) error {
		a.checkLocalAgainstVectors(rg, vectors, ev, cls, fp, storeRuleApplies, col)
		return nil
	})
}

// forEachLocalAccess walks a region rank-major and visits every local
// buffer access the cross-process detector's step 2 must check: plain
// loads and stores (with the MPI-2.2 no-overlap store rule in force),
// RMA origin buffers (load-like for Put/Acc, store-like for Get; store
// rule off per paper §IV-C-4), result buffers of fetching atomics
// (store-class at completion), and the logged message buffers of
// point-to-point and collective calls ("all MPI calls performed to a
// local buffer"). Shared by the pairwise and shadow engines so the two
// cannot drift on what counts as a local access.
func (a *Analyzer) forEachLocalAccess(rg dag.Region,
	visit func(ev *trace.Event, cls Op, fp model.Footprint, storeRuleApplies bool) error) error {
	for r := 0; r < a.m.Set.Ranks(); r++ {
		t := a.m.Set.Traces[r]
		lo, hi := rg.Span(int32(r))
		for seq := lo; seq < hi; seq++ {
			ev := &t.Events[seq]
			switch {
			case ev.Kind.IsLocalAccess():
				cls := OpLoad
				if ev.Kind == trace.KindStore {
					cls = OpStore
				}
				if err := visit(ev, cls, model.AccessFootprint(ev), true); err != nil {
					return err
				}
			case ev.Kind.IsRMAComm():
				// The origin buffer access of an RMA call is treated as a
				// local load (Put/Acc) or store (Get); the no-overlap store
				// rule explicitly does not apply to it (paper §IV-C-4).
				origin, err := a.m.OriginFootprint(ev)
				if err != nil {
					return err
				}
				if err := visit(ev, originClass(ev.Kind), origin, false); err != nil {
					return err
				}
				if ev.ResultCount > 0 {
					// The result buffer of a fetching atomic is written at
					// completion: a store-class local access.
					result, err := a.m.ResultFootprint(ev)
					if err != nil {
						return err
					}
					if err := visit(ev, OpStore, result, false); err != nil {
						return err
					}
				}
			default:
				// Point-to-point and collective calls access local buffers
				// too ("all MPI calls performed to a local buffer").
				if cls, ok := a.messageBufferClass(ev); ok {
					fp, err := a.m.OriginFootprint(ev)
					if err != nil {
						return err
					}
					if err := visit(ev, cls, fp, false); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// checkLocalAgainstVectors compares one local operation of process
// fp.Rank against the remote one-sided operations stored for windows at
// that process. storeRuleApplies enables the MPI-2.2 rule that a local
// store may not be concurrent with any Put or Accumulate epoch exposing
// the same window, even without byte overlap.
func (a *Analyzer) checkLocalAgainstVectors(rg dag.Region, vectors map[winTarget][]storedOp,
	ev *trace.Event, cls Op, fp model.Footprint, storeRuleApplies bool, col *collector) {
	for _, iv := range fp.Intervals {
		wi, ok := a.m.WindowAt(fp.Rank, iv)
		if !ok {
			continue
		}
		for i := range vectors[winTarget{win: wi.ID, tw: fp.Rank}] {
			op := &vectors[winTarget{win: wi.ID, tw: fp.Rank}][i]
			if op.ev.Rank == ev.Rank {
				continue
			}
			if !a.d.Concurrent(op.ev.ID(), ev.ID()) {
				continue
			}
			opCls, _ := OpOf(op.ev.Kind)
			cell := Table(opCls, cls)
			var overlapIv memory.Interval
			conflict := false
			switch cell {
			case Both:
				continue
			case NonOverlap:
				overlapIv, conflict = fp.Overlaps(op.target)
			case Error:
				// Store vs Put/Acc: erroneous without overlap — but only
				// for true local stores, not Get origin-buffer writes.
				if storeRuleApplies {
					conflict = true
					overlapIv, _ = fp.Overlaps(op.target)
				} else {
					overlapIv, conflict = fp.Overlaps(op.target)
				}
			}
			if !conflict {
				continue
			}
			rule := fmt.Sprintf("local %s at the target process conflicts with a concurrent remote %s",
				cls, op.ev.Kind)
			if cell == Error && overlapIv.Empty() {
				rule = fmt.Sprintf("local %s to window %d while a concurrent remote %s updates the window (erroneous even without overlap)",
					cls, wi.ID, op.ev.Kind)
			}
			a.addCross(col, rg, op.epoch, a.opEpoch[ev.ID()], &Violation{
				Severity: a.localPairSeverity(op),
				Class:    AcrossProcesses,
				Rule:     rule,
				A:        *op.ev, B: *ev, Win: wi.ID, Overlap: overlapIv, Region: rg.Index,
			})
		}
	}
}

// rmaPairSeverity downgrades conflicts serialized by exclusive locks to
// warnings (paper §VII-A-2: the original lockopts bug with an exclusive
// lock is reported as a warning only).
func (a *Analyzer) rmaPairSeverity(x, y *storedOp) Severity {
	if x.epoch != nil && y.epoch != nil &&
		x.epoch.Kind == EpochLockExclusive && y.epoch.Kind == EpochLockExclusive &&
		x.epoch.Target == y.epoch.Target {
		return SevWarning
	}
	return SevError
}

func (a *Analyzer) localPairSeverity(op *storedOp) Severity {
	if op.epoch != nil && op.epoch.Kind == EpochLockExclusive {
		return SevWarning
	}
	return SevError
}
