package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// buildPipeline runs preprocessing + matching + DAG construction.
func buildPipeline(t *testing.T, set *trace.Set) (*model.Model, *dag.DAG) {
	t.Helper()
	m, err := model.Build(set)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := match.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dag.Build(m, ms)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

// Tests for the §IV-C-4 rule that point-to-point and collective calls
// accessing a local buffer participate in cross-process conflict detection
// like local loads and stores.

// sendRecvTrace builds: rank 0 puts into rank 1's window while rank 1
// concurrently uses overlapping window bytes as the buffer of a p2p or
// collective call of the given kind. tag 5 traffic between ranks 1 and 2
// makes the p2p call well-matched.
func msgBufTrace(kind trace.Kind, peerFill func(b *testutil.TraceBuilder)) *testutil.TraceBuilder {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared, File: "a.go", Line: 1})
	b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x500, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1, File: "a.go", Line: 2})
	b.Add(0, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1, File: "a.go", Line: 3})
	b.Add(1, trace.Event{Kind: kind, Comm: 0, Peer: 2, Tag: 5,
		OriginAddr: 0x1000, OriginType: trace.TypeInt32, OriginCount: 1, File: "a.go", Line: 4})
	if peerFill != nil {
		peerFill(b)
	}
	return b
}

func TestRecvBufferInWindowConflictsWithPut(t *testing.T) {
	// Rank 1 receives INTO its window bytes while rank 0's Put lands there:
	// Put × Store(recv) — conflict.
	b := msgBufTrace(trace.KindRecv, func(b *testutil.TraceBuilder) {
		b.Add(2, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 5,
			OriginAddr: 0x900, OriginType: trace.TypeInt32, OriginCount: 1, File: "a.go", Line: 9})
	})
	// Adjust: the Recv's Peer must be its source (rank 2).
	rep, err := Analyze(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 {
		t.Fatalf("errors = %d:\n%s", len(rep.Errors()), rep)
	}
	v := rep.Errors()[0]
	if v.A.Kind != trace.KindPut || v.B.Kind != trace.KindRecv {
		t.Errorf("pair = %v,%v", v.A.Kind, v.B.Kind)
	}
}

func TestSendBufferInWindowConflictsWithPut(t *testing.T) {
	// Rank 1 sends FROM its window bytes while rank 0's Put lands there:
	// Put × Load(send) — conflict on overlap.
	b := msgBufTrace(trace.KindSend, func(b *testutil.TraceBuilder) {
		b.Add(2, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: 1, Tag: 5,
			OriginAddr: 0x900, OriginType: trace.TypeInt32, OriginCount: 1, File: "a.go", Line: 9})
	})
	rep, err := Analyze(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 {
		t.Fatalf("errors = %d:\n%s", len(rep.Errors()), rep)
	}
	if rep.Errors()[0].B.Kind != trace.KindSend {
		t.Errorf("pair = %v", rep.Errors()[0])
	}
}

func TestSendBufferDisjointFromPutIsFine(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared, File: "a.go", Line: 1})
	b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x500, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1, File: "a.go", Line: 2})
	b.Add(0, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1, File: "a.go", Line: 3})
	// Send from window bytes [0x1020,0x1024): disjoint from the Put.
	b.Add(1, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 2, Tag: 5,
		OriginAddr: 0x1020, OriginType: trace.TypeInt32, OriginCount: 1, File: "a.go", Line: 4})
	b.Add(2, trace.Event{Kind: trace.KindRecv, Comm: 0, Peer: 1, Tag: 5,
		OriginAddr: 0x900, OriginType: trace.TypeInt32, OriginCount: 1, File: "a.go", Line: 9})
	rep, err := Analyze(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("disjoint send buffer flagged:\n%s", rep)
	}
}

func TestBcastBufferClass(t *testing.T) {
	// Root's Bcast buffer is read (Load class): vs a remote Get it is fine;
	// a non-root's Bcast buffer is written (Store class): vs a remote Get
	// on overlapping bytes it conflicts.
	build := func(root int32) *testutil.TraceBuilder {
		b := testutil.NewTraceBuilder(3)
		b.WinCreate(1, 0x1000, 64)
		b.Add(0, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared, File: "a.go", Line: 1})
		b.Add(0, trace.Event{Kind: trace.KindGet, Win: 1, Target: 1,
			OriginAddr: 0x600, OriginType: trace.TypeInt32, OriginCount: 1,
			TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1, File: "a.go", Line: 2})
		b.Add(0, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1, File: "a.go", Line: 3})
		// All three ranks join a Bcast; rank 1's buffer is its window base.
		for r := int32(0); r < 3; r++ {
			addr := uint64(0x700)
			if r == 1 {
				addr = 0x1000
			}
			b.Add(r, trace.Event{Kind: trace.KindBcast, Comm: 0, Peer: root,
				OriginAddr: addr, OriginType: trace.TypeInt32, OriginCount: 1, File: "a.go", Line: 10 + int32(r)})
		}
		return b
	}

	// Rank 1 is the root: its buffer is only read → Load × Get = BOTH.
	rep, err := Analyze(build(1).Set())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("root bcast buffer flagged vs Get:\n%s", rep)
	}

	// Rank 0 is the root of a sub-communicator bcast {0,1}: rank 1's buffer
	// (window bytes) is written → Store × Get conflict with rank 2's
	// concurrent Get. Rank 2 is outside the bcast, so no happens-before
	// edge orders the two.
	b2 := testutil.NewTraceBuilder(3)
	b2.WinCreate(1, 0x1000, 64)
	b2.Add(0, trace.Event{Kind: trace.KindCommCreate, Comm: 7, Members: []int32{0, 1}, File: "a.go", Line: 20})
	b2.Add(1, trace.Event{Kind: trace.KindCommCreate, Comm: 7, Members: []int32{0, 1}, File: "a.go", Line: 20})
	b2.Add(2, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared, File: "a.go", Line: 1})
	b2.Add(2, trace.Event{Kind: trace.KindGet, Win: 1, Target: 1,
		OriginAddr: 0x600, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1, File: "a.go", Line: 2})
	b2.Add(2, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1, File: "a.go", Line: 3})
	b2.Add(0, trace.Event{Kind: trace.KindBcast, Comm: 7, Peer: 0,
		OriginAddr: 0x700, OriginType: trace.TypeInt32, OriginCount: 1, File: "a.go", Line: 10})
	b2.Add(1, trace.Event{Kind: trace.KindBcast, Comm: 7, Peer: 0,
		OriginAddr: 0x1000, OriginType: trace.TypeInt32, OriginCount: 1, File: "a.go", Line: 11})
	rep, err = Analyze(b2.Set())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 {
		t.Fatalf("non-root bcast buffer vs Get: errors = %d:\n%s", len(rep.Errors()), rep)
	}
	if rep.Errors()[0].B.Kind != trace.KindBcast {
		t.Errorf("pair = %v", rep.Errors()[0])
	}
}

func TestQuadraticAgreesOnMessageBuffers(t *testing.T) {
	b := msgBufTrace(trace.KindRecv, func(b *testutil.TraceBuilder) {
		b.Add(2, trace.Event{Kind: trace.KindSend, Comm: 0, Peer: 1, Tag: 5,
			OriginAddr: 0x900, OriginType: trace.TypeInt32, OriginCount: 1, File: "a.go", Line: 9})
	})
	set := b.Set()
	lin, err := AnalyzeWith(set, Options{CrossProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	m, d := buildPipeline(t, set)
	quad, err := QuadraticCrossProcess(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin.Violations) != len(quad.Violations) {
		t.Errorf("linear %d vs quadratic %d:\n%s\n%s", len(lin.Violations), len(quad.Violations), lin, quad)
	}
}
