package core

import (
	"fmt"

	"repro/internal/trace"
)

// Degraded analysis: produce the best possible report from a partial
// trace set (crashed ranks, truncated traces) instead of erroring. The
// strict pipeline rejects anything unmatched — an incomplete collective,
// a send whose receive was lost — so salvage works by cutting every rank
// back to a common global synchronization point: a prefix in which all
// structure is complete and the ordinary analyzers apply unchanged. The
// cut is retried at earlier synchronization points when point-to-point
// or request structure straddles the chosen boundary.

// maxSalvageRetries bounds how many successively earlier synchronization
// cuts AnalyzeDegraded tries before giving up with an empty prefix.
const maxSalvageRetries = 32

// AnalyzeDegraded analyzes a possibly partial trace set. It first tries
// the strict pipeline; on failure it salvages the longest analyzable
// prefix. The report's Degraded field carries the given upstream notes
// (crash and truncation diagnostics from the producer) plus a description
// of any prefix cut; it is empty exactly when the inputs were complete
// and analyzed in full with no notes.
func AnalyzeDegraded(set *trace.Set, opts Options, notes []string) (*Report, error) {
	mDegraded := opts.Obs.Counter("mcchecker_analysis_degraded_total")
	mRetries := opts.Obs.Counter("mcchecker_analysis_salvage_retries_total")
	tr := opts.Trace

	sp := tr.Start("pipeline", "main", "strict attempt")
	rep, err := AnalyzeWith(set, opts)
	sp.End()
	if err == nil {
		rep.Degraded = append(rep.Degraded, notes...)
		if len(rep.Degraded) > 0 {
			mDegraded.Inc()
		}
		return rep, nil
	}
	mDegraded.Inc()
	// A canceled analysis must not be "salvaged": the watchdog asked for
	// the worker back, and each salvage retry would just re-hit the dead
	// context. Surface the cancellation instead.
	if cerr := opts.ctxErr(); cerr != nil {
		return nil, cerr
	}
	tr.Instant("pipeline", "main", "strict analysis failed; salvaging", "error", err.Error())
	notes = append(notes[:len(notes):len(notes)],
		fmt.Sprintf("full analysis failed (%v); salvaging a clean prefix", err))

	// Cut every rank at its k-th global synchronization event, for the
	// largest k all ranks share, retrying earlier boundaries until the
	// prefix analyzes. A boundary can fail when point-to-point structure
	// straddles it (send before, receive after); the straddling pair is
	// wholly behind some earlier boundary, so decrementing k converges.
	syncs := globalSyncPositions(set)
	k := -1
	for _, pos := range syncs {
		if k < 0 || len(pos) < k {
			k = len(pos)
		}
	}
	for try := 0; k >= 0 && try < maxSalvageRetries; k, try = k-1, try+1 {
		if cerr := opts.ctxErr(); cerr != nil {
			return nil, cerr
		}
		cut := cutAt(set, syncs, k)
		sp := tr.Start("pipeline", "main", fmt.Sprintf("salvage attempt (cut at sync %d)", k))
		rep, err := AnalyzeWith(cut, opts)
		sp.End()
		if err != nil {
			mRetries.Inc()
			continue
		}
		rep.Degraded = append(notes, fmt.Sprintf(
			"salvage: analyzed prefix up to global synchronization %d (%d of %d events)",
			k, cut.TotalEvents(), set.TotalEvents()))
		return rep, nil
	}

	// Nothing analyzable: report emptiness rather than failing, so the
	// caller still sees the diagnostics.
	rep = &Report{}
	rep.Degraded = append(notes, "salvage: no analyzable prefix found; report is empty")
	return rep, nil
}

// globalSyncPositions returns, per rank, the event indexes of global
// synchronizations: barrier-like collectives over a communicator spanning
// all ranks, and fence/create/free on windows of such a communicator.
// This mirrors the slab-boundary classification of the streaming checker.
func globalSyncPositions(set *trace.Set) [][]int {
	ranks := set.Ranks()
	commSize := map[int32]int{0: ranks}
	winComm := map[int32]int32{}
	for _, t := range set.Traces {
		for i := range t.Events {
			switch ev := &t.Events[i]; ev.Kind {
			case trace.KindCommCreate:
				commSize[ev.Comm] = len(ev.Members)
			case trace.KindWinCreate:
				winComm[ev.Win] = ev.Comm
			}
		}
	}
	pos := make([][]int, ranks)
	for r, t := range set.Traces {
		for i := range t.Events {
			ev := &t.Events[i]
			global := false
			switch ev.Kind {
			case trace.KindBarrier, trace.KindAllreduce, trace.KindAllgather, trace.KindAlltoall:
				global = commSize[ev.Comm] == ranks
			case trace.KindWinFence, trace.KindWinCreate, trace.KindWinFree:
				comm, ok := winComm[ev.Win]
				global = ok && commSize[comm] == ranks
			}
			if global {
				pos[r] = append(pos[r], i)
			}
		}
	}
	return pos
}

// cutAt truncates every rank's trace just after its k-th global sync
// (1-based, clamped to the syncs the rank has); k = 0 yields empty
// traces. Tails beyond the last common boundary are dropped — they are
// exactly where the structure is incomplete.
func cutAt(set *trace.Set, syncs [][]int, k int) *trace.Set {
	out := trace.NewSet(set.Ranks())
	for r, t := range set.Traces {
		kk := k
		if kk > len(syncs[r]) {
			kk = len(syncs[r])
		}
		end := 0
		if kk > 0 {
			end = syncs[r][kk-1] + 1
		}
		out.Traces[r].Events = append([]trace.Event(nil), t.Events[:end]...)
	}
	return out
}
