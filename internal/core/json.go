package core

import (
	"encoding/json"
	"path"

	"repro/internal/obs"
)

// JSON representations for tooling: a stable, flat schema independent of
// the internal event structure.

type eventJSON struct {
	Rank int32  `json:"rank"`
	Op   string `json:"op"`
	File string `json:"file"`
	Line int32  `json:"line"`
	Func string `json:"func,omitempty"`
}

type overlapJSON struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// witnessStepJSON is one step of the happens-before witness chain: side
// attributes the event ("sync" for shared synchronization context, "first"
// or "second" for the operands' sides), role names its function on the
// chain, and seq is the event's position in its rank's trace.
type witnessStepJSON struct {
	Side string `json:"side"`
	Role string `json:"role"`
	Rank int32  `json:"rank"`
	Seq  int64  `json:"seq"`
	Op   string `json:"op"`
	File string `json:"file"`
	Line int32  `json:"line"`
	Func string `json:"func,omitempty"`
}

type violationJSON struct {
	Severity  string            `json:"severity"`
	Class     string            `json:"class"`
	Rule      string            `json:"rule"`
	Signature string            `json:"signature"`
	Hint      string            `json:"hint"`
	First     eventJSON         `json:"first"`
	Second    eventJSON         `json:"second"`
	Window    int32             `json:"window"`
	Overlap   *overlapJSON      `json:"overlap,omitempty"`
	Region    int               `json:"region"`
	Count     int               `json:"count"`
	Witness   []witnessStepJSON `json:"witness,omitempty"`
}

type reportJSON struct {
	Violations     []violationJSON `json:"violations"`
	Errors         int             `json:"errors"`
	Warnings       int             `json:"warnings"`
	EventsAnalyzed int             `json:"events_analyzed"`
	Regions        int             `json:"regions"`
	Epochs         int             `json:"epochs"`
	Degraded       []string        `json:"degraded,omitempty"`
	Stats          *obs.Snapshot   `json:"stats,omitempty"`
}

// JSON renders the report as indented JSON with a stable schema.
func (r *Report) JSON() ([]byte, error) {
	out := reportJSON{
		Violations:     []violationJSON{},
		Errors:         len(r.Errors()),
		Warnings:       len(r.Warnings()),
		EventsAnalyzed: r.EventsAnalyzed,
		Regions:        r.Regions,
		Epochs:         r.EpochsChecked,
		Degraded:       r.Degraded,
		Stats:          r.Stats,
	}
	for _, v := range r.Violations {
		vj := violationJSON{
			Severity:  v.Severity.String(),
			Class:     v.Class.String(),
			Rule:      v.Rule,
			Signature: v.Signature(),
			Hint:      v.Hint(),
			First: eventJSON{Rank: v.A.Rank, Op: v.A.Kind.String(),
				File: path.Base(v.A.File), Line: v.A.Line, Func: shortFunc(v.A.Func)},
			Second: eventJSON{Rank: v.B.Rank, Op: v.B.Kind.String(),
				File: path.Base(v.B.File), Line: v.B.Line, Func: shortFunc(v.B.Func)},
			Window: v.Win,
			Region: v.Region,
			Count:  v.Count,
		}
		if !v.Overlap.Empty() {
			vj.Overlap = &overlapJSON{Lo: v.Overlap.Lo, Hi: v.Overlap.Hi}
		}
		for _, s := range v.Witness {
			side := "sync"
			switch s.Side {
			case 1:
				side = "first"
			case 2:
				side = "second"
			}
			vj.Witness = append(vj.Witness, witnessStepJSON{
				Side: side, Role: s.Role, Rank: s.Ev.Rank, Seq: s.Ev.Seq,
				Op: s.Ev.Kind.String(), File: path.Base(s.Ev.File), Line: s.Ev.Line,
				Func: shortFunc(s.Ev.Func),
			})
		}
		out.Violations = append(out.Violations, vj)
	}
	return json.MarshalIndent(out, "", "  ")
}
