package core

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// plantedBody puts a within-epoch violation into the first fence epoch
// (rank 0 stores into the origin buffer of a pending Put) and then runs
// several more uneventful epochs — the part a truncation fault cuts away.
func plantedBody(p *mpi.Proc) error {
	win := p.Alloc(64, "win")
	w := p.WinCreate(win, 1, p.CommWorld())
	w.Fence(mpi.AssertNone)
	if p.Rank() == 0 {
		src := p.Alloc(8, "src")
		w.Put(src, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
		src.SetFloat64(0, 2) // BUG: store to the origin buffer of the pending Put
	}
	w.Fence(mpi.AssertNone)
	for i := 0; i < 6; i++ {
		w.Fence(mpi.AssertNone)
	}
	w.Free()
	return nil
}

func collectPlanted(t *testing.T) *trace.Set {
	t.Helper()
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	if err := mpi.Run(2, mpi.Options{Hook: pr}, plantedBody); err != nil {
		t.Fatal(err)
	}
	return sink.Set()
}

// A violation planted before the truncation point must survive into the
// degraded report, and the report must say what was lost.
func TestDegradedReportKeepsViolationBeforeTruncation(t *testing.T) {
	set := collectPlanted(t)
	plan := &faults.Plan{Seed: 1, Truncs: []faults.Trunc{{Rank: 1, Frac: 0.5}}}
	cut, notes, err := trace.ApplyTruncFaults(set, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 {
		t.Fatalf("want one truncation note, got %v", notes)
	}
	rep, err := AnalyzeDegraded(cut, DefaultOptions(), notes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) == 0 {
		t.Fatal("report does not admit its degradation")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v.Rule, "origin buffer of a pending") {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted violation lost; report:\n%s", rep)
	}
}

// A complete set through AnalyzeDegraded must match strict analysis
// exactly, with no degradation recorded.
func TestAnalyzeDegradedCleanPassThrough(t *testing.T) {
	set := collectPlanted(t)
	strict, err := AnalyzeWith(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeDegraded(set, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) != 0 {
		t.Fatalf("clean inputs marked degraded: %v", rep.Degraded)
	}
	if len(rep.Violations) != len(strict.Violations) || rep.EventsAnalyzed != strict.EventsAnalyzed {
		t.Fatalf("degraded path diverged from strict: %d/%d violations, %d/%d events",
			len(rep.Violations), len(strict.Violations), rep.EventsAnalyzed, strict.EventsAnalyzed)
	}
}

// When no prefix analyzes at all, AnalyzeDegraded reports emptiness with
// diagnostics instead of failing.
func TestAnalyzeDegradedEmptyFallback(t *testing.T) {
	set := trace.NewSet(2)
	set.Traces[0].Events = []trace.Event{
		{Kind: trace.KindBarrier, Rank: 0, Seq: 0, File: "x.go", Line: 1},
	}
	if _, err := AnalyzeWith(set, DefaultOptions()); err == nil {
		t.Skip("half-open barrier unexpectedly analyzable; fallback untestable this way")
	}
	rep, err := AnalyzeDegraded(set, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsAnalyzed != 0 || len(rep.Violations) != 0 {
		t.Fatalf("empty fallback analyzed something: %s", rep)
	}
	joined := strings.Join(rep.Degraded, "\n")
	if !strings.Contains(joined, "salvage") {
		t.Fatalf("fallback notes missing salvage diagnostics: %v", rep.Degraded)
	}
}
