package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/testutil"
	"repro/internal/trace"
)

// fenceConflictSet builds a small two-rank set with a fence epoch so the
// full pipeline (model, match, dag, epochs, detectors) has work to do.
func fenceConflictSet() *trace.Set {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, trace.Event{
		Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x2000, OriginType: trace.TypeInt32, OriginCount: 8,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 8,
	})
	b.Fence(1)
	b.Barrier()
	return b.Set()
}

func TestAnalyzeCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Ctx = ctx
	_, err := AnalyzeWith(fenceConflictSet(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeWith under canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeNilContextRuns(t *testing.T) {
	opts := DefaultOptions()
	opts.Ctx = nil
	if _, err := AnalyzeWith(fenceConflictSet(), opts); err != nil {
		t.Fatalf("AnalyzeWith with nil ctx: %v", err)
	}
	// A live (uncanceled) context must be equally transparent.
	opts.Ctx = context.Background()
	if _, err := AnalyzeWith(fenceConflictSet(), opts); err != nil {
		t.Fatalf("AnalyzeWith with background ctx: %v", err)
	}
}

func TestAnalyzeCanceledContextParallelWorkers(t *testing.T) {
	// The parallel detector path drains its work channel even when the
	// context is already dead; the cancellation must surface as the error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Ctx = ctx
	opts.Workers = 4
	_, err := AnalyzeWith(fenceConflictSet(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel AnalyzeWith under canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeDegradedDoesNotSalvageCanceled(t *testing.T) {
	// AnalyzeDegraded retries salvage cuts on strict failure; a canceled
	// context must short-circuit that loop and report the cancellation,
	// not return an empty "salvaged" report.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Ctx = ctx
	_, err := AnalyzeDegraded(fenceConflictSet(), opts, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeDegraded under canceled ctx: err = %v, want context.Canceled", err)
	}
}
