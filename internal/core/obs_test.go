package core

import (
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// TestAnalyzeWithObsRecordsPhases checks that an analysis run with a
// registry attached records every pipeline phase span and the analysis
// counters, and that the counters agree with the report.
func TestAnalyzeWithObsRecordsPhases(t *testing.T) {
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	err := mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Obs = reg
	rep, err := AnalyzeWith(sink.Set(), opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	for _, phase := range []string{"model", "match", "dag", "epochs", "detect_intra", "detect_cross"} {
		sp := snap.Span(PhaseSpanName, "phase", phase)
		if sp.Count != 1 {
			t.Errorf("phase %q span count = %d, want 1", phase, sp.Count)
		}
	}
	if got := snap.CounterValue("mcchecker_analysis_events_total"); got != int64(rep.EventsAnalyzed) {
		t.Errorf("events_total = %d, want %d", got, rep.EventsAnalyzed)
	}
	if got := snap.CounterValue("mcchecker_analysis_regions_total"); got != int64(rep.Regions) {
		t.Errorf("regions_total = %d, want %d", got, rep.Regions)
	}
	if got := snap.CounterValue("mcchecker_analysis_epochs_total"); got != int64(rep.EpochsChecked) {
		t.Errorf("epochs_total = %d, want %d", got, rep.EpochsChecked)
	}
	if got := snap.CounterValue("mcchecker_analysis_violations_total"); got != int64(len(rep.Violations)) {
		t.Errorf("violations_total = %d, want %d", got, len(rep.Violations))
	}
}

// TestReportStatsInJSON checks that an attached snapshot travels through
// the report's JSON rendering.
func TestReportStatsInJSON(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("mcchecker_analysis_events_total").Add(5)
	rep := &Report{Stats: reg.Snapshot()}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if want := `"mcchecker_analysis_events_total"`; !strings.Contains(string(data), want) {
		t.Errorf("JSON report missing stats section:\n%s", data)
	}
	// Without a snapshot the stats key is omitted entirely.
	plain, err := (&Report{}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), `"stats"`) {
		t.Errorf("stats key present without a snapshot:\n%s", plain)
	}
}
