package core

import (
	"path/filepath"
	"testing"

	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// runAndAnalyze executes a simulated MPI program under the profiler and
// analyzes the collected trace — the full MC-Checker pipeline.
func runAndAnalyze(t *testing.T, n int, body func(p *mpi.Proc) error) *Report {
	t.Helper()
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	if err := mpi.Run(n, mpi.Options{Hook: pr}, body); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(sink.Set())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEndToEndCleanProgram(t *testing.T) {
	rep := runAndAnalyze(t, 4, func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		src := p.Alloc(8, "src")
		src.SetFloat64(0, float64(p.Rank()))
		// Each rank puts to a disjoint slot of rank 0's window.
		w.Put(src, 0, 1, mpi.Float64, 0, uint64(p.Rank())*8, 1, mpi.Float64)
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			_ = w.LocalBuffer().Float64At(16)
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	})
	if len(rep.Violations) != 0 {
		t.Errorf("clean program flagged:\n%s", rep)
	}
}

func TestEndToEndFig2aBug(t *testing.T) {
	rep := runAndAnalyze(t, 2, func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			buf := p.Alloc(8, "buf")
			buf.SetInt64(0, 7)
			w.Put(buf, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			buf.SetInt64(0, 9) // BUG: store before the epoch closes
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	})
	errs := rep.Errors()
	if len(errs) != 1 {
		t.Fatalf("errors = %d:\n%s", len(errs), rep)
	}
	v := errs[0]
	if v.Class != WithinEpoch || v.A.Kind != trace.KindPut || v.B.Kind != trace.KindStore {
		t.Errorf("violation = %v", v)
	}
	if filepath.Base(v.B.File) != "endtoend_test.go" || v.B.Line == 0 {
		t.Errorf("diagnostics lack real location: %s", v.B.Loc())
	}
}

func TestEndToEndFig2dBug(t *testing.T) {
	rep := runAndAnalyze(t, 2, func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			w.Lock(trace.LockShared, 1)
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			w.Unlock(1)
		} else {
			win.SetInt64(0, 42) // BUG: concurrent local store to the window
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	errs := rep.Errors()
	if len(errs) == 0 {
		t.Fatalf("cross-process bug not detected:\n%s", rep)
	}
	found := false
	for _, v := range errs {
		if v.Class == AcrossProcesses {
			found = true
		}
	}
	if !found {
		t.Errorf("no across-processes violation:\n%s", rep)
	}
}

func TestEndToEndOrderedBySendRecv(t *testing.T) {
	// Same access pattern as Fig 2d, but the store is ordered after the
	// unlock by a send/recv sync: no error.
	rep := runAndAnalyze(t, 2, func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		flag := p.Alloc(4, "flag")
		w := p.WinCreate(win, 1, p.CommWorld())
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			w.Lock(trace.LockShared, 1)
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			w.Unlock(1)
			p.Send(p.CommWorld(), flag, 0, 1, mpi.Int32, 1, 0)
		} else {
			p.Recv(p.CommWorld(), flag, 0, 1, mpi.Int32, 0, 0)
			win.SetInt64(0, 42) // ordered after the Put by the recv
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if len(rep.Violations) != 0 {
		t.Errorf("ordered program flagged:\n%s", rep)
	}
}

func TestEndToEndTraceFilesRoundTrip(t *testing.T) {
	// Write traces to disk, read them back, analyze: the offline workflow.
	dir := t.TempDir()
	sink, err := trace.NewFileSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	pr := profiler.New(sink, nil)
	err = mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			buf := p.Alloc(8, "buf")
			w.Get(buf, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			_ = buf.Int64At(0) // BUG: read before fence
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	set, err := trace.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 {
		t.Fatalf("errors:\n%s", rep)
	}
	if rep.Errors()[0].A.Kind != trace.KindGet {
		t.Errorf("wrong pair: %v", rep.Errors()[0])
	}
}
