package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testutil"
	"repro/internal/trace"
)

// Robustness: the analyzer must reject malformed traces with a diagnostic,
// never panic or silently mis-analyze.

func TestAnalyzeRejectsUndefinedDatatype(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x500, OriginType: 999, OriginCount: 1, // undefined type
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1})
	b.Fence(1)
	_, err := Analyze(b.Set())
	if err == nil || !strings.Contains(err.Error(), "datatype") {
		t.Errorf("err = %v", err)
	}
}

func TestAnalyzeRejectsUnknownWindow(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.Add(0, trace.Event{Kind: trace.KindWinFence, Win: 42, Comm: 0})
	b.Add(1, trace.Event{Kind: trace.KindWinFence, Win: 42, Comm: 0})
	_, err := Analyze(b.Set())
	if err == nil {
		t.Error("fence on unknown window must error")
	}
}

func TestAnalyzeRejectsTargetOutOfComm(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 9, // no rank 9
		OriginAddr: 0x500, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1})
	b.Fence(1)
	_, err := Analyze(b.Set())
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestAnalyzeRejectsDanglingUnlock(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1})
	_, err := Analyze(b.Set())
	if err == nil || !strings.Contains(err.Error(), "without lock") {
		t.Errorf("err = %v", err)
	}
}

func TestAnalyzeRejectsCollectiveDeadlockTrace(t *testing.T) {
	// Rank 0 entered a barrier no one else reached (truncated run).
	b := testutil.NewTraceBuilder(3)
	b.Add(0, trace.Event{Kind: trace.KindBarrier, Comm: 0})
	_, err := Analyze(b.Set())
	if err == nil || !strings.Contains(err.Error(), "matched only") {
		t.Errorf("err = %v", err)
	}
}

func TestAnalyzeCorruptedTraceDir(t *testing.T) {
	dir := t.TempDir()
	// One valid file, one corrupted.
	b := testutil.NewTraceBuilder(2)
	b.Barrier()
	set := b.Set()
	if err := trace.WriteDir(dir, set); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, trace.FileName(1)), []byte("MCCTgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ReadDir(dir); err == nil {
		t.Error("corrupted trace file must error")
	}

	// Truncated valid file.
	data, err := os.ReadFile(filepath.Join(dir, trace.FileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, trace.FileName(0)), data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ReadDir(dir); err == nil {
		t.Error("truncated trace file must error")
	}
}

func TestAnalyzeMissingRankFile(t *testing.T) {
	dir := t.TempDir()
	b := testutil.NewTraceBuilder(3)
	b.Barrier()
	if err := trace.WriteDir(dir, b.Set()); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, trace.FileName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ReadDir(dir); err == nil {
		t.Error("missing rank file must error")
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	// A trace with zero events per rank is valid and clean.
	rep, err := Analyze(trace.NewSet(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 || rep.Regions != 1 {
		t.Errorf("empty trace: %s", rep)
	}
}

func TestAnalyzeSingleRank(t *testing.T) {
	// Single-rank programs exercise the degenerate DAG.
	b := testutil.NewTraceBuilder(1)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, trace.Event{Kind: trace.KindGet, Win: 1, Target: 0,
		OriginAddr: 0x500, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1, File: "a.go", Line: 1})
	b.Add(0, trace.Event{Kind: trace.KindLoad, Addr: 0x500, Size: 4, File: "a.go", Line: 2})
	b.Fence(1)
	rep, err := Analyze(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 {
		t.Errorf("self-targeted get bug not found:\n%s", rep)
	}
}
