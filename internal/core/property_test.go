package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Property tests: randomized MPI one-sided programs that are race-free by
// construction must analyze clean (no false positives), and a single
// injected conflict must be detected (no false negatives for the paper's
// bug classes). The generator's stripe discipline guarantees freedom:
//
//   - every rank's window has 2R stripes of 64 bytes;
//   - stripe o (o < R) is written remotely ONLY by origin rank o, with
//     same-op accumulates as the only overlapping combination;
//   - stripe R+r is touched ONLY by the owner's local loads and stores;
//   - remote reads (Get) target a dedicated read-only stripe region that
//     no one writes during the run.
type progGen struct {
	rng    *rand.Rand
	ranks  int
	rounds int
	bug    int // -1 = none; otherwise index of the round that injects a bug
	bugTyp int
}

const stripe = 64

func (g *progGen) winSize() uint64 { return uint64(2*g.ranks+1) * stripe }

// body builds the program; all ranks derive identical control flow from
// the same seed, as SPMD programs do.
func (g *progGen) body() func(p *mpi.Proc) error {
	seed := g.rng.Int63()
	rounds, bug, bugTyp, ranks := g.rounds, g.bug, g.bugTyp, g.ranks
	winSize := g.winSize()
	return func(p *mpi.Proc) error {
		rng := rand.New(rand.NewSource(seed)) // same stream on every rank
		win := p.Alloc(winSize, "pwin")
		w := p.WinCreate(win, 1, p.CommWorld())
		src := p.AllocFloat64(4, "psrc")
		dst := p.AllocFloat64(4, "pdst")
		scratch := p.AllocFloat64(8, "pscratch") // private, never in RMA
		me := p.Rank()
		myRemoteStripe := uint64(me) * stripe      // stripe written by me remotely
		myLocalStripe := uint64(ranks+me) * stripe // stripe touched locally
		roStripe := uint64(2*ranks) * stripe       // read-only stripe

		for round := 0; round < rounds; round++ {
			pattern := rng.Intn(6)
			target := rng.Intn(ranks)
			off := uint64(rng.Intn(6)) * 8
			switch pattern {
			case 0: // fence put into own remote stripe of the target
				w.Fence(mpi.AssertNone)
				src.SetFloat64(0, float64(round))
				w.Put(src, 0, 1, mpi.Float64, target, myRemoteStripe+off, 1, mpi.Float64)
				if bug == round && bugTyp == 0 && me == 0 {
					src.SetFloat64(0, -1) // BUG: store to put origin in epoch
				}
				w.Fence(mpi.AssertNone)
			case 1: // lock/put into own remote stripe
				w.Lock(mpi.LockShared, target)
				w.Put(src, 0, 2, mpi.Float64, target, myRemoteStripe+off, 2, mpi.Float64)
				w.Unlock(target)
				if bug == round && bugTyp == 1 {
					// BUG: every rank also puts to a COMMON stripe cell.
					w.Lock(mpi.LockShared, target)
					w.Put(src, 0, 1, mpi.Float64, target, 0, 1, mpi.Float64)
					w.Unlock(target)
				}
			case 2: // local traffic: loads of the window are fine (no one
				// targets local stripes remotely); stores go to private
				// scratch — MPI-2.2 forbids a local window store concurrent
				// with ANY remote Put/Acc epoch on the window, even
				// non-overlapping, so a race-free SPMD program must not
				// store into the window while peers may be updating it.
				scratch.SetFloat64(off, float64(round))
				_ = win.Float64At(myLocalStripe + off)
			case 3: // get from the read-only stripe
				w.Lock(mpi.LockShared, target)
				w.Get(dst, 0, 2, mpi.Float64, target, roStripe+off, 2, mpi.Float64)
				w.Unlock(target)
				_ = dst.Float64At(0)
			case 4: // all ranks accumulate with the same op: exempt
				w.Fence(mpi.AssertNone)
				w.Accumulate(src, 0, 2, mpi.Float64, target, roStripe+16, 2, mpi.Float64, mpi.OpSum)
				w.Fence(mpi.AssertNone)
			case 5: // collectives and a barrier
				p.Allreduce(p.CommWorld(), src, 0, dst, 0, 2, mpi.Float64, mpi.OpMax)
				p.Barrier(p.CommWorld())
			}
			if bug == round && bugTyp == 2 && me == 1 {
				// BUG: local store into the window, which other ranks
				// update with Put concurrently in the same region.
				win.SetFloat64(0*stripe+off, -2)
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}

func runProg(t *testing.T, g *progGen) *Report {
	t.Helper()
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	if err := mpi.Run(g.ranks, mpi.Options{Hook: pr}, g.body()); err != nil {
		t.Fatalf("seeded program failed: %v", err)
	}
	rep, err := Analyze(sink.Set())
	if err != nil {
		t.Fatalf("analysis failed: %v", err)
	}
	return rep
}

func TestPropertyNoFalsePositives(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(seed)), ranks: 4, rounds: 12, bug: -1}
		rep := runProg(t, g)
		if len(rep.Violations) != 0 {
			t.Errorf("seed %d: race-free program flagged:\n%s", seed, rep)
		}
	}
}

func TestPropertyInjectedBugsDetected(t *testing.T) {
	detected := 0
	attempts := 0
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := &progGen{rng: rng, ranks: 4, rounds: 12}
		// Choose the bug type and a round; the round must execute the
		// corresponding pattern for the injection to fire, so scan the
		// pattern stream with a clone of the rank-side RNG.
		g.bugTyp = int(seed) % 3
		g.bug = -1
		// Peek at which pattern each round draws.
		probe := rand.New(rand.NewSource(0))
		_ = probe
		// Simply try all rounds until a run reports an error; injections
		// on non-matching rounds are no-ops, making the run clean.
		found := false
		for round := 0; round < g.rounds && !found; round++ {
			g2 := &progGen{rng: rand.New(rand.NewSource(seed)), ranks: 4, rounds: 12, bug: round, bugTyp: g.bugTyp}
			rep := runProg(t, g2)
			attempts++
			if len(rep.Errors()) > 0 {
				found = true
				detected++
			}
		}
		if !found {
			// The bug type's pattern may never have been drawn with a
			// conflicting configuration for this seed; tolerate a few.
			t.Logf("seed %d: injection never fired (bug type %d)", seed, g.bugTyp)
		}
	}
	if detected < 20 {
		t.Errorf("only %d/30 seeds produced a detected injection (%d runs)", detected, attempts)
	}
}

// The linear and quadratic cross-process detectors agree on random
// race-free and buggy programs alike.
func TestPropertyLinearQuadraticAgree(t *testing.T) {
	for seed := int64(200); seed < 208; seed++ {
		for _, bug := range []int{-1, 3} {
			g := &progGen{rng: rand.New(rand.NewSource(seed)), ranks: 4, rounds: 8, bug: bug, bugTyp: int(seed) % 3}
			sink := trace.NewMemorySink()
			pr := profiler.New(sink, nil)
			if err := mpi.Run(g.ranks, mpi.Options{Hook: pr}, g.body()); err != nil {
				t.Fatal(err)
			}
			set := sink.Set()
			lin, err := AnalyzeWith(set, Options{CrossProcess: true})
			if err != nil {
				t.Fatal(err)
			}
			m, d := buildPipeline(t, set)
			quad, err := QuadraticCrossProcess(m, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(lin.Violations) != len(quad.Violations) {
				t.Errorf("seed %d bug %d: linear %d vs quadratic %d",
					seed, bug, len(lin.Violations), len(quad.Violations))
			}
		}
	}
}

// Determinism: analyzing the same trace twice yields identical reports.
func TestPropertyDeterministicAnalysis(t *testing.T) {
	g := &progGen{rng: rand.New(rand.NewSource(7)), ranks: 4, rounds: 10, bug: 2, bugTyp: 1}
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	if err := mpi.Run(g.ranks, mpi.Options{Hook: pr}, g.body()); err != nil {
		t.Fatal(err)
	}
	set := sink.Set()
	a, err := Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("nondeterministic analysis:\n%s\nvs\n%s", a, b)
	}
}
