package core

import (
	"fmt"
	"strconv"

	"repro/internal/model"
	"repro/internal/obs/tracing"
	"repro/internal/par"
	"repro/internal/trace"
)

// EpochKind classifies the synchronization mode that opened an epoch.
type EpochKind uint8

const (
	EpochFence EpochKind = iota
	EpochLockShared
	EpochLockExclusive
	EpochPSCW
	EpochLockAll // MPI-3 Win_lock_all..Win_unlock_all (shared to all ranks)
)

func (k EpochKind) String() string {
	switch k {
	case EpochFence:
		return "fence"
	case EpochLockShared:
		return "lock(shared)"
	case EpochLockExclusive:
		return "lock(exclusive)"
	case EpochLockAll:
		return "lock_all"
	default:
		return "start/complete"
	}
}

// Epoch is one access epoch at one rank on one window: a program execution
// region delimited by RMA synchronization operations (paper §II-A).
// Nonblocking one-sided operations issued within it are unordered with each
// other and with the local accesses that follow them until End.
type Epoch struct {
	Kind   EpochKind
	Rank   int32
	Win    int32
	Target int32 // world rank locked (lock epochs only); -1 otherwise
	Start  int64 // seq of the opening sync event
	End    int64 // seq of the closing sync event (len(trace) if truncated)
	Ops    []trace.ID
}

func (e *Epoch) String() string {
	return fmt.Sprintf("rank %d win %d %s epoch [%d,%d] with %d ops",
		e.Rank, e.Win, e.Kind, e.Start, e.End, len(e.Ops))
}

// ExtractEpochs walks every rank's trace and groups RMA operations into
// epochs by matching the synchronization calls (paper §III-C: "MC-Checker
// first scans all the vertices belonging to a process and identifies all
// the epochs within the process by matching the synchronization calls").
// It returns the epochs and a map from each RMA operation to its epoch.
func ExtractEpochs(m *model.Model) ([]*Epoch, map[trace.ID]*Epoch, error) {
	return ExtractEpochsWorkers(m, 1)
}

// ExtractEpochsWorkers is ExtractEpochs with the per-rank scans fanned
// out over a worker pool. Epoch matching never crosses ranks, so each
// rank's epochs and op→epoch assignments are computed independently and
// concatenated in rank order — the exact sequence the serial walk
// produces, keeping every downstream consumer byte-identical.
func ExtractEpochsWorkers(m *model.Model, workers int) ([]*Epoch, map[trace.ID]*Epoch, error) {
	return ExtractEpochsWorkersTraced(m, workers, nil)
}

// ExtractEpochsWorkersTraced is ExtractEpochsWorkers with each rank's
// sync-matching scan recorded as a span on tr (track "epochs"). tr may
// be nil.
func ExtractEpochsWorkersTraced(m *model.Model, workers int, tr *tracing.Recorder) ([]*Epoch, map[trace.ID]*Epoch, error) {
	n := len(m.Set.Traces)
	type rankResult struct {
		epochs  []*Epoch
		opEpoch map[trace.ID]*Epoch
	}
	per := make([]rankResult, n)
	scope := func(r int) string { return fmt.Sprintf("rank %d", r) }
	err := par.RanksTraced(n, workers, tr, "epochs", scope, func(r int, sp *tracing.Span) error {
		epochs, opEpoch, err := extractRankEpochs(m, m.Set.Traces[r])
		per[r] = rankResult{epochs: epochs, opEpoch: opEpoch}
		if sp != nil {
			sp.Annotate("epochs", strconv.Itoa(len(epochs)))
			sp.Annotate("ops", strconv.Itoa(len(opEpoch)))
		}
		return err
	})
	if err != nil {
		return nil, nil, err
	}

	total, totalOps := 0, 0
	for r := range per {
		total += len(per[r].epochs)
		totalOps += len(per[r].opEpoch)
	}
	epochs := make([]*Epoch, 0, total)
	opEpoch := make(map[trace.ID]*Epoch, totalOps)
	for r := range per {
		epochs = append(epochs, per[r].epochs...)
		for id, e := range per[r].opEpoch {
			opEpoch[id] = e
		}
	}
	return epochs, opEpoch, nil
}

// extractRankEpochs matches the synchronization calls of one rank's
// trace. It reads only the (immutable after Build) model registries and
// the rank's own events, so ranks may run concurrently.
func extractRankEpochs(m *model.Model, t *trace.Trace) ([]*Epoch, map[trace.ID]*Epoch, error) {
	rank := t.Rank
	var epochs []*Epoch
	opEpoch := make(map[trace.ID]*Epoch)
	// Per-window open-epoch state for this rank.
	fence := map[int32]*Epoch{}    // win → open fence epoch
	fenceSeen := map[int32]bool{}  // win → at least one fence seen
	locks := map[[2]int32]*Epoch{} // (win, targetWorld) → open lock epoch
	pscw := map[int32]*Epoch{}     // win → open access (start) epoch
	lockAll := map[int32]*Epoch{}  // win → open lock_all epoch

	closeEpoch := func(e *Epoch, end int64) {
		e.End = end
		epochs = append(epochs, e)
	}

	for i := range t.Events {
		ev := &t.Events[i]
		seq := int64(i)
		switch ev.Kind {
		case trace.KindWinFence:
			if open := fence[ev.Win]; open != nil {
				closeEpoch(open, seq)
			}
			fence[ev.Win] = &Epoch{Kind: EpochFence, Rank: rank, Win: ev.Win, Target: -1, Start: seq}
			fenceSeen[ev.Win] = true
		case trace.KindWinLock:
			tw, err := lockTargetWorld(m, ev)
			if err != nil {
				return nil, nil, err
			}
			kind := EpochLockShared
			if ev.Lock == trace.LockExclusive {
				kind = EpochLockExclusive
			}
			key := [2]int32{ev.Win, tw}
			if locks[key] != nil {
				return nil, nil, fmt.Errorf("core: rank %d double-locks win %d target %d at %s",
					rank, ev.Win, tw, ev.Loc())
			}
			locks[key] = &Epoch{Kind: kind, Rank: rank, Win: ev.Win, Target: tw, Start: seq}
		case trace.KindWinUnlock:
			tw, err := lockTargetWorld(m, ev)
			if err != nil {
				return nil, nil, err
			}
			key := [2]int32{ev.Win, tw}
			open := locks[key]
			if open == nil {
				return nil, nil, fmt.Errorf("core: rank %d unlocks win %d target %d without lock at %s",
					rank, ev.Win, tw, ev.Loc())
			}
			closeEpoch(open, seq)
			delete(locks, key)
		case trace.KindWinStart:
			if pscw[ev.Win] != nil {
				return nil, nil, fmt.Errorf("core: rank %d nested Win_start on win %d at %s",
					rank, ev.Win, ev.Loc())
			}
			pscw[ev.Win] = &Epoch{Kind: EpochPSCW, Rank: rank, Win: ev.Win, Target: -1, Start: seq}
		case trace.KindWinComplete:
			open := pscw[ev.Win]
			if open == nil {
				return nil, nil, fmt.Errorf("core: rank %d Win_complete without Win_start at %s",
					rank, ev.Loc())
			}
			closeEpoch(open, seq)
			delete(pscw, ev.Win)
		case trace.KindWinLockAll:
			if lockAll[ev.Win] != nil {
				return nil, nil, fmt.Errorf("core: rank %d nested Win_lock_all on win %d at %s",
					rank, ev.Win, ev.Loc())
			}
			lockAll[ev.Win] = &Epoch{Kind: EpochLockAll, Rank: rank, Win: ev.Win, Target: -1, Start: seq}
		case trace.KindWinUnlockAll:
			open := lockAll[ev.Win]
			if open == nil {
				return nil, nil, fmt.Errorf("core: rank %d Win_unlock_all without Win_lock_all at %s",
					rank, ev.Loc())
			}
			closeEpoch(open, seq)
			delete(lockAll, ev.Win)
		case trace.KindPut, trace.KindGet, trace.KindAccumulate,
			trace.KindGetAccumulate, trace.KindFetchOp, trace.KindCompareSwap:
			tw, err := m.TargetWorld(ev)
			if err != nil {
				return nil, nil, err
			}
			var e *Epoch
			switch {
			case locks[[2]int32{ev.Win, tw}] != nil:
				e = locks[[2]int32{ev.Win, tw}]
			case lockAll[ev.Win] != nil:
				e = lockAll[ev.Win]
			case pscw[ev.Win] != nil:
				e = pscw[ev.Win]
			case fence[ev.Win] != nil:
				e = fence[ev.Win]
			default:
				return nil, nil, fmt.Errorf("core: rank %d issues %s outside any epoch at %s",
					rank, ev.Kind, ev.Loc())
			}
			e.Ops = append(e.Ops, ev.ID())
			opEpoch[ev.ID()] = e
		}
	}

	// Close epochs truncated by the end of the trace.
	end := int64(len(t.Events))
	for _, e := range fence {
		if e != nil {
			closeEpoch(e, end)
		}
	}
	for _, e := range locks {
		closeEpoch(e, end)
	}
	for _, e := range pscw {
		closeEpoch(e, end)
	}
	for _, e := range lockAll {
		closeEpoch(e, end)
	}
	return epochs, opEpoch, nil
}

func lockTargetWorld(m *model.Model, ev *trace.Event) (int32, error) {
	wi, err := m.Win(ev.Win)
	if err != nil {
		return 0, err
	}
	ci, err := m.Comm(wi.Comm)
	if err != nil {
		return 0, err
	}
	return ci.World(ev.Target)
}
